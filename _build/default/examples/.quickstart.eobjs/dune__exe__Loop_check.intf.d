examples/loop_check.mli:
