(** OLSR control messages (RFC 3626 subset: HELLO and TC). *)

type link_kind =
  | Sym  (** bidirectional link confirmed *)
  | Asym  (** heard but not yet confirmed bidirectional *)
  | Mpr  (** symmetric neighbor selected as multipoint relay *)

type hello = { neighbors : (Node_id.t * link_kind) list }

type tc = {
  tc_origin : Node_id.t;
  ansn : int;  (** advertised neighbor sequence number *)
  advertised : Node_id.t list;  (** the origin's MPR selectors *)
}

type t =
  | Hello of hello
  | Tc of { origin : Node_id.t; msg_seq : int; ttl : int; tc : tc }
      (** flooding envelope: duplicate set keyed by (origin, msg_seq) *)

val kind : t -> string
(** "HELLO" | "TC". *)

val pp : Format.formatter -> t -> unit
