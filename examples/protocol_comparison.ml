(* Compare LDR, AODV, DSR and OLSR on the same mobile scenario: 30 nodes
   on 1000x300m, random waypoint at 1-15 m/s with no pauses (continuous
   motion), 5 CBR flows, 60 simulated seconds.

   Run with: dune exec examples/protocol_comparison.exe *)

open Experiment

let scenario protocol =
  {
    Scenario.label = "comparison";
    num_nodes = 30;
    terrain = Geom.Terrain.create ~width:1000. ~height:300.;
    placement = Scenario.Uniform;
    speed_min = 1.;
    speed_max = 15.;
    pause = Sim.Time.sec 0.;
    duration = Sim.Time.sec 60.;
    traffic =
      {
        Traffic.num_flows = 5;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Sim.Time.sec 40.;
        startup_window = Sim.Time.sec 5.;
      };
    protocol;
    net = Net.Params.default;
    seed = 11;
    audit_loops = false;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

let () =
  let rows =
    List.map
      (fun protocol ->
        let outcome = Runner.run (scenario protocol) in
        let m = outcome.metrics in
        [
          Scenario.protocol_name protocol;
          Printf.sprintf "%.3f" (Metrics.delivery_ratio m);
          Printf.sprintf "%.1f" (Metrics.mean_latency_ms m);
          Printf.sprintf "%.2f" (Metrics.network_load m);
          Printf.sprintf "%.2f" (Metrics.rreq_load m);
          string_of_int (Metrics.delivered m);
          string_of_int (Metrics.originated m);
        ])
      [ Scenario.ldr; Scenario.aodv; Scenario.dsr; Scenario.olsr ]
  in
  print_endline
    "30 mobile nodes, 5 CBR flows @ 4 pps, 60 s, same seed for all:";
  print_endline
    (Stats.Table.render
       ~header:
         [ "protocol"; "delivery"; "latency ms"; "net load"; "rreq load";
           "recv"; "sent" ]
       rows)
