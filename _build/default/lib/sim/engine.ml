type handle = Event_queue.handle

type t = {
  queue : Event_queue.t;
  rng : Rng.t;
  mutable clock : Time.t;
  mutable fired : int;
}

let create ?(seed = 1) () =
  { queue = Event_queue.create (); rng = Rng.create seed; clock = Time.zero; fired = 0 }

let now t = t.clock
let rng t = t.rng

let at t time action =
  if Time.(time < t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.at: scheduling in the past (%s < %s)"
         (Time.to_string time) (Time.to_string t.clock));
  Event_queue.schedule t.queue time action

let after t d action = at t (Time.add t.clock d) action

let cancel = Event_queue.cancel

let every t ?(jitter = fun () -> Time.zero) ~start ~interval ~until action =
  let rec arm time =
    if Time.(time < until) then
      ignore
        (at t (Time.add time (jitter ())) (fun () ->
             action ();
             arm (Time.add time interval)))
  in
  arm start

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, action) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      action ();
      true

let run ?until ?max_events t =
  let horizon_ok () =
    match until with
    | None -> true
    | Some limit -> (
        match Event_queue.next_time t.queue with
        | None -> false
        | Some next -> Time.(next <= limit))
  in
  let budget_ok () =
    match max_events with None -> true | Some m -> t.fired < m
  in
  while horizon_ok () && budget_ok () && step t do
    ()
  done;
  (* Advance the clock to the horizon — idle virtual time passes too, so
     repeated bounded runs observe consistent timestamps. *)
  match until with
  | Some limit when Time.(t.clock < limit) -> t.clock <- limit
  | Some _ | None -> ()

let events_processed t = t.fired
