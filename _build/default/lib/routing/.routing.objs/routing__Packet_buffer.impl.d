lib/routing/packet_buffer.ml: Data_msg Engine List Node_id Packets Queue Sim Time
