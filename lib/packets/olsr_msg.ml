type link_kind = Sym | Asym | Mpr

type hello = { neighbors : (Node_id.t * link_kind) list }

type tc = { tc_origin : Node_id.t; ansn : int; advertised : Node_id.t list }

type t =
  | Hello of hello
  | Tc of { origin : Node_id.t; msg_seq : int; ttl : int; tc : tc }

let kind = function Hello _ -> "HELLO" | Tc _ -> "TC"

let pp_kind fmt = function
  | Sym -> Format.pp_print_string fmt "sym"
  | Asym -> Format.pp_print_string fmt "asym"
  | Mpr -> Format.pp_print_string fmt "mpr"

let pp fmt = function
  | Hello { neighbors } ->
      Format.fprintf fmt "olsr-hello[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f " ")
           (fun f (n, k) -> Format.fprintf f "%a:%a" Node_id.pp n pp_kind k))
        neighbors
  | Tc { origin; msg_seq; tc; _ } ->
      Format.fprintf fmt "olsr-tc[%a#%d ansn=%d %d sel]" Node_id.pp origin
        msg_seq tc.ansn (List.length tc.advertised)
