open Sim
open Packets
module RA = Routing.Agent

let name = "ldr"

(* Engaged-node state cached per computation (origin, rreq_id). *)
type engaged = {
  last_hop : Node_id.t;
  mutable best_forwarded : (Seqnum.t * int) option;
      (* strongest (sn, dist) advertisement relayed for this computation *)
}

(* Active-state bookkeeping at the computation origin (Procedure 1). *)
type pending = {
  mutable p_ttl : int;
  mutable p_diameter_tries : int;
  mutable p_timer : Engine.handle option;
}

type state = {
  ctx : RA.ctx;
  cfg : Config.t;
  table : Route_table.t;
  cache : engaged Routing.Rreq_cache.t;
  buffer : Routing.Packet_buffer.t;
  mutable own_sn : Seqnum.t;
  mutable own_increments : int;
  mutable next_rreq_id : int;
  pending : pending Node_id.Table.t;
}

let now (t : state) = Engine.now t.ctx.engine
let clock_stamp t = int_of_float (Time.to_sec (now t))

let increment_own t =
  let now_stamp = Stdlib.max (clock_stamp t) (t.own_sn.Seqnum.stamp + 1) in
  t.own_sn <-
    Seqnum.increment ~counter_limit:t.cfg.seqnum_counter_limit ~now_stamp
      t.own_sn;
  t.own_increments <- t.own_increments + 1

(* The reduced-distance optimization: any answering bound no greater than
   the feasible distance is sound; the paper uses floor(0.8 fd), min 1. *)
let reduce t d =
  if t.cfg.opt_reduced_distance && d < Conditions.infinity then
    Stdlib.max 1 (int_of_float (t.cfg.reduced_distance_factor *. float_of_int d))
  else d

let min_lifetime t =
  Time.scale t.cfg.active_route_timeout t.cfg.min_lifetime_fraction

(* Can this node's route answer, given the minimum-lifetime rule? *)
let answerable_entry t dst =
  match Route_table.active t.table dst with
  | None -> None
  | Some e ->
      if
        t.cfg.opt_min_lifetime
        && Time.(Route_table.remaining_lifetime t.table e < min_lifetime t)
      then None
      else Some e

let send_ldr t ~dst msg = t.ctx.send ~dst (Payload.Ldr msg)

let broadcast_rerr t unreachable =
  if unreachable <> [] then
    send_ldr t ~dst:Net.Frame.Broadcast (Ldr_msg.Rerr { unreachable })

(* Learn from the advertisement part of a message; returns whether the
   route is now active. *)
let learn_advert t ~dst ~adv_sn ~adv_dist ~via ~lifetime =
  if Node_id.equal dst t.ctx.id then `Refreshed
  else begin
    let lc = t.cfg.link_cost t.ctx.id via in
    let verdict =
      Route_table.apply_advert t.table ~lc ~dst ~adv_sn ~adv_dist ~via
        ~lifetime ()
    in
    (match verdict with
    | `Installed -> t.ctx.table_changed ()
    | `Refreshed | `Rejected -> ());
    verdict
  end

let forward_data t (e : Route_table.entry) msg =
  match e.next_hop with
  | None -> assert false
  | Some nh ->
      Route_table.refresh t.table e ~lifetime:t.cfg.active_route_timeout;
      t.ctx.send ~dst:(Net.Frame.Unicast nh) (Payload.Data (Data_msg.hop msg))

let flush_buffer t dst =
  match Route_table.active t.table dst with
  | None -> ()
  | Some e ->
      List.iter (fun msg -> forward_data t e msg)
        (Routing.Packet_buffer.take t.buffer dst)

(* ---- Procedure 1: initiate solicitation ------------------------------ *)

let fresh_rreq_id t =
  t.next_rreq_id <- t.next_rreq_id + 1;
  t.next_rreq_id

(* Discovery-side span: one record per ring/probe attempt, keyed by the
   sought destination and rreq id rather than a packet's (flow, seq). *)
let emit_ring_span t ~dst ~ttl ~rreq_id =
  if Obs.Bus.on t.ctx.RA.obs then
    Obs.Bus.span t.ctx.RA.obs
      ~time:(Engine.now t.ctx.RA.engine)
      ~node:(Node_id.to_int t.ctx.RA.id)
      ~stage:Obs.Span.Stage.ring ~flow:(-1) ~seq:(-1)
      ~d:(Node_id.to_int dst) ~e:ttl ~f:rreq_id

let request_invariants t dst =
  match Route_table.find t.table dst with
  | None -> (None, Conditions.infinity)
  | Some e -> (Some e.sn, e.fd)

let rec issue_rreq t dst pend =
  let dst_sn, fd = request_invariants t dst in
  let answer_dist = reduce t fd in
  let rreq =
    {
      Ldr_msg.dst;
      dst_sn;
      rreq_id = fresh_rreq_id t;
      origin = t.ctx.id;
      origin_sn = t.own_sn;
      fd;
      answer_dist;
      dist = 0;
      ttl = pend.p_ttl;
      reset = false;
      no_reverse = false;
      unicast_probe = false;
    }
  in
  t.ctx.event ~dst "rreq_init";
  emit_ring_span t ~dst ~ttl:rreq.Ldr_msg.ttl ~rreq_id:rreq.Ldr_msg.rreq_id;
  send_ldr t ~dst:Net.Frame.Broadcast (Ldr_msg.Rreq rreq);
  let timeout =
    Routing.Discovery.attempt_timeout t.cfg.ring ~ttl:pend.p_ttl
  in
  pend.p_timer <-
    Some (Engine.after t.ctx.engine timeout (fun () -> attempt_expired t dst pend))

and attempt_expired t dst pend =
  pend.p_timer <- None;
  if Route_table.active t.table dst <> None then finish_discovery t dst
  else begin
    let ring = t.cfg.ring in
    match Routing.Discovery.next_ttl ring ~prev:(Some pend.p_ttl) with
    | Some ttl ->
        pend.p_ttl <- ttl;
        issue_rreq t dst pend
    | None ->
        if pend.p_diameter_tries < ring.max_retries then begin
          pend.p_diameter_tries <- pend.p_diameter_tries + 1;
          pend.p_ttl <- ring.net_diameter;
          issue_rreq t dst pend
        end
        else begin
          (* Procedure 1: final attempt failed; report and drop. *)
          Node_id.Table.remove t.pending dst;
          Routing.Packet_buffer.drop_all t.buffer dst
            ~reason:"discovery-failed"
        end
  end

and finish_discovery t dst =
  (match Node_id.Table.find_opt t.pending dst with
  | Some pend -> (
      match pend.p_timer with
      | Some h -> Engine.cancel t.ctx.engine h
      | None -> ())
  | None -> ());
  Node_id.Table.remove t.pending dst;
  flush_buffer t dst

let start_discovery t dst =
  if not (Node_id.Table.mem t.pending dst) then begin
    let first_ttl =
      let ring = t.cfg.ring in
      let default_ttl =
        match Routing.Discovery.next_ttl ring ~prev:None with
        | Some ttl -> ttl
        | None -> ring.net_diameter
      in
      if t.cfg.opt_optimal_ttl then
        match Route_table.find t.table dst with
        | Some e when e.dist < Conditions.infinity ->
            (* Optimal-TTL optimization: TTL = D - FD + LOCAL_ADD_TTL. *)
            let fd_req = reduce t e.fd in
            Stdlib.min ring.net_diameter
              (Stdlib.max default_ttl (e.dist - fd_req + t.cfg.local_add_ttl))
        | Some _ | None -> default_ttl
      else default_ttl
    in
    let pend = { p_ttl = first_ttl; p_diameter_tries = 0; p_timer = None } in
    Node_id.Table.replace t.pending dst pend;
    issue_rreq t dst pend
  end

(* ---- Data plane ------------------------------------------------------- *)

let origin_data t msg =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else
    let msg = { msg with Data_msg.ttl = t.cfg.data_ttl } in
    match Route_table.active t.table msg.Data_msg.dst with
    | Some e -> forward_data t e msg
    | None ->
        Routing.Packet_buffer.push t.buffer msg;
        start_discovery t msg.Data_msg.dst

let handle_data t msg ~from:_ =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else
    match Data_msg.decr_ttl msg with
    | None -> t.ctx.drop_data msg ~reason:"ttl-expired"
    | Some msg -> (
        match Route_table.active t.table msg.Data_msg.dst with
        | Some e -> forward_data t e msg
        | None ->
            (* Mid-path with no route: shed the packet and warn
               upstream. *)
            t.ctx.drop_data msg ~reason:"no-route";
            let sn =
              Option.map (fun (e : Route_table.entry) -> e.sn)
                (Route_table.find t.table msg.Data_msg.dst)
            in
            broadcast_rerr t [ (msg.Data_msg.dst, sn) ])

(* ---- Procedure 2: relay solicitation (Eqs. 5-8) ----------------------- *)

(* Fold this node's stored invariants into a solicitation it relays;
   [from] is the neighbor the solicitation arrived over, whose link cost
   extends the measured distance. *)
let update_invariants t ~from (r : Ldr_msg.rreq) =
  let r = { r with Ldr_msg.dist = r.dist + t.cfg.link_cost t.ctx.id from } in
  match Route_table.find t.table r.dst with
  | None -> r
  | Some e ->
      if Conditions.sn_gt_opt e.sn r.dst_sn then
        (* Eq 5 raises the number, Eq 6 takes our fd, Eq 8 clears T: any
           reply now acts as a path reset. *)
        {
          r with
          dst_sn = Some e.sn;
          fd = e.fd;
          answer_dist = reduce t e.fd;
          reset = false;
        }
      else if Conditions.sn_eq_opt e.sn r.dst_sn then
        (* Eq 6 running minimum; Eq 8: T set unless we satisfy FDC. *)
        {
          r with
          fd = Stdlib.min e.fd r.fd;
          answer_dist = Stdlib.min r.answer_dist (reduce t e.fd);
          reset = (if e.fd < r.fd then r.reset else true);
        }
      else (* Our number is stale: no constraint on the requested one. *)
        r

let destination_reply t (r : Ldr_msg.rreq) ~last_hop =
  (* Only the destination may raise its own number (the reset). *)
  if r.reset && not (Conditions.sn_gt_opt t.own_sn r.dst_sn) then
    increment_own t;
  let rrep =
    {
      Ldr_msg.dst = t.ctx.id;
      dst_sn = t.own_sn;
      origin = r.origin;
      rreq_id = r.rreq_id;
      dist = 0;
      lifetime = t.cfg.my_route_timeout;
      rrep_no_reverse = r.no_reverse;
    }
  in
  t.ctx.event ~dst:t.ctx.id "rrep_init";
  send_ldr t ~dst:(Net.Frame.Unicast last_hop) (Ldr_msg.Rrep rrep)

let intermediate_reply t (e : Route_table.entry) (r : Ldr_msg.rreq) ~last_hop =
  let rrep =
    {
      Ldr_msg.dst = r.dst;
      dst_sn = e.sn;
      origin = r.origin;
      rreq_id = r.rreq_id;
      dist = e.dist;
      lifetime = Route_table.remaining_lifetime t.table e;
      rrep_no_reverse = r.no_reverse;
    }
  in
  t.ctx.event ~dst:r.dst "rrep_init";
  Routing.Rreq_cache.update t.cache ~origin:r.origin ~rreq_id:r.rreq_id
    (fun eng ->
      eng.best_forwarded <- Some (e.sn, e.dist);
      eng);
  send_ldr t ~dst:(Net.Frame.Unicast last_hop) (Ldr_msg.Rrep rrep)

(* Convert the flood into a unicast RREQ that must reach the destination
   (the T-bit reset path), or continue an existing unicast probe. *)
let forward_unicast_probe t ~from (e : Route_table.entry) (r : Ldr_msg.rreq) =
  match e.next_hop with
  | None -> assert false
  | Some nh ->
      let r = update_invariants t ~from r in
      let ttl =
        (* Must be able to reach the destination even if the ring search
           would have died out (Section 2.2). *)
        Stdlib.max (r.ttl - 1) (e.dist + t.cfg.local_add_ttl)
      in
      send_ldr t ~dst:(Net.Frame.Unicast nh)
        (Ldr_msg.Rreq { r with ttl; unicast_probe = true })

let relay_broadcast t ~from (r : Ldr_msg.rreq) ~reverse_ok =
  if r.ttl > 1 then begin
    let r = update_invariants t ~from r in
    let r =
      { r with Ldr_msg.ttl = r.ttl - 1; no_reverse = r.no_reverse || not reverse_ok }
    in
    (* Per-hop rebroadcast jitter decorrelates the flood. *)
    let delay = Rng.uniform_time t.ctx.rng t.cfg.flood_jitter in
    ignore
      (Engine.after t.ctx.engine delay (fun () ->
           send_ldr t ~dst:Net.Frame.Broadcast (Ldr_msg.Rreq r)))
  end

let request_as_error t (r : Ldr_msg.rreq) ~from =
  (* Our next hop toward D is asking for D: it must have lost its route,
     or it would have answered (its distance is ours minus one). *)
  match Route_table.active t.table r.dst with
  | Some e
    when e.next_hop = Some from
         && Conditions.sn_ge_opt e.sn r.dst_sn
         && r.answer_dist > e.dist - 1 ->
      Route_table.invalidate t.table r.dst;
      t.ctx.table_changed ()
  | Some _ | None -> ()

let handle_rreq t (r : Ldr_msg.rreq) ~from =
  if Node_id.equal r.origin t.ctx.id then ()
  else if Routing.Rreq_cache.mem t.cache ~origin:r.origin ~rreq_id:r.rreq_id
  then () (* not passive for this computation: silently ignore *)
  else begin
    (* Become engaged; remember the reverse hop for the reply path. *)
    Routing.Rreq_cache.add t.cache ~origin:r.origin ~rreq_id:r.rreq_id
      { last_hop = from; best_forwarded = None };
    (* The RREQ doubles as an advertisement for its origin (unless the
       N bit says the reverse chain already broke upstream). *)
    let reverse_ok =
      if r.no_reverse then Route_table.active t.table r.origin <> None
      else begin
        match
          learn_advert t ~dst:r.origin ~adv_sn:r.origin_sn ~adv_dist:r.dist
            ~via:from ~lifetime:t.cfg.active_route_timeout
        with
        | `Installed | `Refreshed -> true
        | `Rejected -> Route_table.active t.table r.origin <> None
      end
    in
    if t.cfg.opt_request_as_error then request_as_error t r ~from;
    if Node_id.equal r.dst t.ctx.id then destination_reply t r ~last_hop:from
    else if r.unicast_probe then begin
      (* D bit: carry the request straight to the destination. *)
      match Route_table.active t.table r.dst with
      | Some e when r.ttl > 1 -> forward_unicast_probe t ~from e r
      | Some _ | None -> ()
    end
    else begin
      let own = Route_table.invariants t.table r.dst in
      match answerable_entry t r.dst with
      | Some e
        when Conditions.sdc ~own ~active:true ~req_sn:r.dst_sn
               ~answer_dist:r.answer_dist ~reset:r.reset ->
          intermediate_reply t e r ~last_hop:from
      | Some e
        when r.reset
             && Conditions.sdc_ignoring_reset ~own ~active:true
                  ~req_sn:r.dst_sn ~answer_dist:r.answer_dist ->
          (* First node able to answer but for the T bit: unicast the
             request to the destination for a path reset (Section 2.2). *)
          forward_unicast_probe t ~from e r
      | Some _ | None -> relay_broadcast t ~from r ~reverse_ok
    end
  end

(* ---- Procedures 3-4: accept and relay advertisements ------------------ *)

let n_bit_probe t dst =
  (* The reply said some relay lacked a reverse route to us: raise our own
     number and probe along the forward path so the next advertisements
     for us are accepted everywhere (Section 2.2, D bit). *)
  match Route_table.active t.table dst with
  | None -> ()
  | Some e -> (
      match e.next_hop with
      | None -> ()
      | Some nh ->
          increment_own t;
          let rreq =
            {
              Ldr_msg.dst;
              dst_sn = Some e.sn;
              rreq_id = fresh_rreq_id t;
              origin = t.ctx.id;
              origin_sn = t.own_sn;
              fd = e.fd;
              answer_dist = reduce t e.fd;
              dist = 0;
              ttl = e.dist + t.cfg.local_add_ttl;
              reset = false;
              no_reverse = false;
              unicast_probe = true;
            }
          in
          t.ctx.event ~dst "rreq_init";
          emit_ring_span t ~dst ~ttl:rreq.Ldr_msg.ttl
            ~rreq_id:rreq.Ldr_msg.rreq_id;
          send_ldr t ~dst:(Net.Frame.Unicast nh) (Ldr_msg.Rreq rreq))

let handle_rrep t (r : Ldr_msg.rrep) ~from =
  let verdict =
    learn_advert t ~dst:r.dst ~adv_sn:r.dst_sn ~adv_dist:r.dist ~via:from
      ~lifetime:r.lifetime
  in
  let feasible = verdict <> `Rejected in
  if feasible then t.ctx.event ~dst:r.dst "rrep_usable_recv";
  (* Any node whose own computation for this destination is now satisfied
     terminates it — relays can be active for a destination while engaged
     in other computations for it. *)
  if
    Node_id.Table.mem t.pending r.dst
    && Route_table.active t.table r.dst <> None
  then finish_discovery t r.dst;
  if Node_id.equal r.origin t.ctx.id then begin
    if feasible && r.rrep_no_reverse then n_bit_probe t r.dst
  end
  else begin
    (* Procedure 4: relay along the computation's reverse path, always
       re-advertising from our own (possibly stronger) invariants. *)
    match
      Routing.Rreq_cache.find t.cache ~origin:r.origin ~rreq_id:r.rreq_id
    with
    | None -> () (* never engaged, or engagement expired *)
    | Some eng -> (
        match Route_table.active t.table r.dst with
        | None -> () (* stronger invariants but no valid route: discard *)
        | Some e ->
            let stronger =
              match eng.best_forwarded with
              | None -> true
              | Some (bsn, bdist) ->
                  t.cfg.opt_multiple_rreps
                  && (Seqnum.(e.sn > bsn)
                     || (Seqnum.equal e.sn bsn && e.dist < bdist))
            in
            if stronger then begin
              eng.best_forwarded <- Some (e.sn, e.dist);
              let r' =
                {
                  r with
                  Ldr_msg.dst_sn = e.sn;
                  dist = e.dist;
                  lifetime = Route_table.remaining_lifetime t.table e;
                }
              in
              send_ldr t ~dst:(Net.Frame.Unicast eng.last_hop)
                (Ldr_msg.Rrep r')
            end)
  end

(* ---- Route maintenance ------------------------------------------------ *)

let handle_rerr t unreachable ~from =
  let changed = ref false in
  let invalidated =
    List.filter_map
      (fun (dst, _sn) ->
        match Route_table.fail_route t.table dst ~via:from with
        | `Invalidated ->
            changed := true;
            Some
              ( dst,
                Option.map (fun (e : Route_table.entry) -> e.sn)
                  (Route_table.find t.table dst) )
        | `Promoted ->
            (* The error stops here: the alternate keeps us reachable. *)
            changed := true;
            t.ctx.event ~dst "alternate_promoted";
            None
        | `Untouched -> None)
      unreachable
  in
  if !changed then t.ctx.table_changed ();
  broadcast_rerr t invalidated

let link_failure t payload ~next_hop =
  let invalidated, promoted = Route_table.invalidate_via t.table next_hop in
  if invalidated <> [] || promoted <> [] then t.ctx.table_changed ();
  List.iter (fun dst -> t.ctx.event ~dst "alternate_promoted") promoted;
  (match payload with
  | Payload.Data msg -> (
      (* A promoted alternate carries the packet on immediately; failing
         that, the origin holds it and rediscovers, relays shed it. *)
      match Route_table.active t.table msg.Data_msg.dst with
      | Some e -> forward_data t e msg
      | None ->
          if Node_id.equal msg.Data_msg.src t.ctx.id then begin
            Routing.Packet_buffer.push t.buffer msg;
            start_discovery t msg.Data_msg.dst
          end
          else t.ctx.drop_data msg ~reason:"link-failure")
  | Payload.Ldr _ | Payload.Aodv _ | Payload.Dsr _ | Payload.Olsr _ -> ());
  let with_sns =
    List.map
      (fun dst ->
        ( dst,
          Option.map (fun (e : Route_table.entry) -> e.sn)
            (Route_table.find t.table dst) ))
      invalidated
  in
  broadcast_rerr t with_sns

(* ---- Wiring ----------------------------------------------------------- *)

let recv t payload ~from =
  match payload with
  | Payload.Data msg -> handle_data t msg ~from
  | Payload.Ldr (Ldr_msg.Rreq r) -> handle_rreq t r ~from
  | Payload.Ldr (Ldr_msg.Rreq_agg rs) ->
      (* Aggregated flood: each member RREQ is its own computation. *)
      List.iter (fun r -> handle_rreq t r ~from) rs
  | Payload.Ldr (Ldr_msg.Rrep r) -> handle_rrep t r ~from
  | Payload.Ldr (Ldr_msg.Rerr { unreachable }) ->
      handle_rerr t unreachable ~from
  | Payload.Aodv _ | Payload.Dsr _ | Payload.Olsr _ -> ()

(* Churn teardown (Agent.reset).  A crash additionally loses the node's
   own sequence number — rebooting at [Seqnum.initial] is exactly the
   volatile-seqno scenario where plain seqno protocols loop; LDR's
   clock-stamped numbers recover because the next increment jumps to the
   wall clock (see [increment_own]). *)
let reset t ~crash =
  Node_id.Table.iter
    (fun _ (p : pending) ->
      match p.p_timer with
      | Some h ->
          Engine.cancel t.ctx.engine h;
          p.p_timer <- None
      | None -> ())
    t.pending;
  Node_id.Table.reset t.pending;
  Routing.Packet_buffer.clear t.buffer ~reason:"node-down";
  Route_table.clear t.table;
  Routing.Rreq_cache.clear t.cache;
  t.ctx.table_changed ();
  if crash then begin
    t.own_sn <- Seqnum.initial ~stamp:0;
    t.own_increments <- 0;
    t.next_rreq_id <- 0
  end

let make ?(config = Config.default) (ctx : RA.ctx) =
  let t =
    {
      ctx;
      cfg = config;
      table =
        Route_table.create ~multipath:config.multipath ~obs:ctx.obs
          ~owner:(Node_id.to_int ctx.id) ~engine:ctx.engine ();
      cache =
        Routing.Rreq_cache.create ~engine:ctx.engine
          ~ttl:config.rreq_cache_ttl;
      buffer =
        Routing.Packet_buffer.create ~obs:ctx.obs
          ~owner:(Node_id.to_int ctx.id) ~engine:ctx.engine
          ~capacity:config.buffer_capacity ~max_age:config.buffer_max_age
          ~on_drop:ctx.drop_data ();
      own_sn = Seqnum.initial ~stamp:0;
      own_increments = 0;
      next_rreq_id = 0;
      pending = Node_id.Table.create 8;
    }
  in
  let agent =
    {
      RA.origin_data = (fun msg -> origin_data t msg);
      recv = (fun payload ~from -> recv t payload ~from);
      overheard = (fun _ ~from:_ ~dst:_ -> ());
      link_failure = (fun payload ~next_hop -> link_failure t payload ~next_hop);
      start = (fun () -> ());
      successor =
        (fun dst ->
          if Node_id.equal dst ctx.id then None
          else Route_table.successor t.table dst);
      own_seqno = (fun () -> float_of_int t.own_increments);
      invariants =
        (fun dst ->
          if Node_id.equal dst ctx.id then
            (* A node is its own destination at distance 0 with its own
               number — what its neighbors' SNC/FDC compare against. *)
            Some { Obs.Event.i_sn = Seqnum.pack t.own_sn; i_dist = 0; i_fd = 0 }
          else
            match Route_table.invariants t.table dst with
            | None -> None
            | Some { Conditions.sn; dist; fd } ->
                Some { Obs.Event.i_sn = Seqnum.pack sn; i_dist = dist; i_fd = fd });
      route_stats =
        (fun () ->
          let entries = ref 0 and finite = ref 0 and fd_sum = ref 0 in
          Route_table.iter t.table (fun _ e ->
              incr entries;
              if e.Route_table.fd < Conditions.infinity then begin
                incr finite;
                fd_sum := !fd_sum + e.Route_table.fd
              end);
          (!entries, !finite, !fd_sum));
      reset = (fun ~crash -> reset t ~crash);
    }
  in
  (agent, t)

let factory ?config () ctx = fst (make ?config ctx)

type debug = {
  table : Route_table.t;
  own_sn : unit -> Seqnum.t;
  pending_discoveries : unit -> Node_id.t list;
}

let factory_with_debug ?config () ctx =
  let agent, t = make ?config ctx in
  ( agent,
    {
      table = t.table;
      own_sn = (fun () -> t.own_sn);
      pending_discoveries =
        (fun () ->
          Node_id.Table.fold (fun dst _ acc -> dst :: acc) t.pending []);
    } )
