open Packets

type t = {
  mutable originated : int;
  mutable delivered : int;
  mutable duplicates : int;
  latency : Stats.Welford.t;
  (* Percentiles come from a log-bucketed histogram over integer
     nanoseconds: O(1) add, exactly mergeable across PDES shards
     (bucket counts just sum), no sort-per-query reservoir. *)
  latency_h : Stats.Hdr.t;
  hop_count : Stats.Welford.t;
  seen : (int, unit) Hashtbl.t;  (* delivered uids, packed *)
  control_tx : (string, int ref) Hashtbl.t;
  control_bytes : (string, int ref) Hashtbl.t;
  mutable data_tx : int;
  mutable ack_tx : int;
  mutable data_bytes : int;
  mutable ack_bytes : int;
  events : (string, int ref) Hashtbl.t;
  drops : (string, int ref) Hashtbl.t;
  mutable loop_violations : int;
  mutable mean_dest_seqno : float;
  (* Per-delivery journal, recorded only by PDES shards: merging the
     per-shard Welford states directly would re-associate the float
     sums, so [merge_all] instead replays every shard's samples in
     global delivery-time order into fresh accumulators — bit-identical
     to the single-engine run, which adds in exactly that order.  (The
     integer histogram needs no replay; bucket sums are exact.) *)
  journal : bool;
  mutable j_time : int array;  (* delivery time, ns *)
  mutable j_lat : float array;
  mutable j_hops : float array;
  mutable j_n : int;
}

let create ?(journal = false) () =
  {
    originated = 0;
    delivered = 0;
    duplicates = 0;
    latency = Stats.Welford.create ();
    latency_h = Stats.Hdr.create ();
    hop_count = Stats.Welford.create ();
    seen = Hashtbl.create 4096;
    control_tx = Hashtbl.create 8;
    control_bytes = Hashtbl.create 8;
    data_tx = 0;
    ack_tx = 0;
    data_bytes = 0;
    ack_bytes = 0;
    events = Hashtbl.create 8;
    drops = Hashtbl.create 8;
    loop_violations = 0;
    mean_dest_seqno = 0.;
    journal;
    j_time = (if journal then Array.make 1024 0 else [||]);
    j_lat = (if journal then Array.make 1024 0. else [||]);
    j_hops = (if journal then Array.make 1024 0. else [||]);
    j_n = 0;
  }

let journal_sample t ~now latency_ms hops =
  let n = t.j_n in
  if n = Array.length t.j_time then begin
    let cap = Stdlib.max 1024 (2 * n) in
    let time' = Array.make cap 0
    and lat' = Array.make cap 0.
    and hops' = Array.make cap 0. in
    Array.blit t.j_time 0 time' 0 n;
    Array.blit t.j_lat 0 lat' 0 n;
    Array.blit t.j_hops 0 hops' 0 n;
    t.j_time <- time';
    t.j_lat <- lat';
    t.j_hops <- hops'
  end;
  t.j_time.(n) <- (now : Sim.Time.t :> int);
  t.j_lat.(n) <- latency_ms;
  t.j_hops.(n) <- hops;
  t.j_n <- n + 1

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let bump_by tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let data_originated t _msg = t.originated <- t.originated + 1

(* Pack a (flow_id, seq) uid into one immediate so the seen-set hashes
   an int instead of a boxed pair.  Flow ids and per-flow sequence
   numbers are both far below 2^31 in any feasible run. *)
let packed_uid msg =
  let flow, seq = Data_msg.uid msg in
  (flow lsl 31) lxor seq

let data_delivered t ~now msg =
  let uid = packed_uid msg in
  if Hashtbl.mem t.seen uid then t.duplicates <- t.duplicates + 1
  else begin
    Hashtbl.replace t.seen uid ();
    t.delivered <- t.delivered + 1;
    let latency_ns = (Sim.Time.diff now msg.Data_msg.origin_time :> int) in
    let latency_ms = Sim.Time.to_ms (Sim.Time.diff now msg.Data_msg.origin_time) in
    let hops = float_of_int msg.Data_msg.hops in
    Stats.Welford.add t.latency latency_ms;
    Stats.Hdr.add t.latency_h latency_ns;
    Stats.Welford.add t.hop_count hops;
    if t.journal then journal_sample t ~now latency_ms hops
  end

let data_dropped t _msg ~reason = bump t.drops reason

let transmitted t (f : Net.Frame.t) =
  let bytes = Net.Frame.encoded_length f in
  match f.body with
  | Net.Frame.Ack ->
      t.ack_tx <- t.ack_tx + 1;
      t.ack_bytes <- t.ack_bytes + bytes
  | Net.Frame.Payload p ->
      (* [is_data]/[class_name] instead of [classify]: this runs per
         transmission and must not allocate the classify variant. *)
      if Payload.is_data p then begin
        t.data_tx <- t.data_tx + 1;
        t.data_bytes <- t.data_bytes + bytes
      end
      else begin
        let kind = Payload.class_name p in
        bump t.control_tx kind;
        bump_by t.control_bytes kind bytes
      end

(* Merge per-shard metrics from a PDES run into one account.  Integer
   counters and per-kind tables are exact sums; the latency/hop
   accumulators are rebuilt by replaying every shard's journal in global
   delivery-time order (stable across shards, so same-nanosecond ties
   keep shard order), which reproduces the single-engine float state
   bit-for-bit — see the journal comment on [t]. *)
let merge_all parts =
  let m = create () in
  let add_tbl dst src = Hashtbl.iter (fun k r -> bump_by dst k !r) src in
  List.iter
    (fun p ->
      if not p.journal then
        invalid_arg "Metrics.merge_all: part recorded no delivery journal";
      m.originated <- m.originated + p.originated;
      m.delivered <- m.delivered + p.delivered;
      m.duplicates <- m.duplicates + p.duplicates;
      m.data_tx <- m.data_tx + p.data_tx;
      m.ack_tx <- m.ack_tx + p.ack_tx;
      m.data_bytes <- m.data_bytes + p.data_bytes;
      m.ack_bytes <- m.ack_bytes + p.ack_bytes;
      m.loop_violations <- m.loop_violations + p.loop_violations;
      add_tbl m.control_tx p.control_tx;
      add_tbl m.control_bytes p.control_bytes;
      add_tbl m.events p.events;
      add_tbl m.drops p.drops;
      (* Histogram buckets are plain int counts: merging is exact and
         order-independent, so no replay is needed for percentiles. *)
      Stats.Hdr.merge_into ~into:m.latency_h p.latency_h)
    parts;
  let total = List.fold_left (fun acc p -> acc + p.j_n) 0 parts in
  let time = Array.make (Stdlib.max 1 total) 0 in
  let lat = Array.make (Stdlib.max 1 total) 0. in
  let hops = Array.make (Stdlib.max 1 total) 0. in
  let off = ref 0 in
  List.iter
    (fun p ->
      Array.blit p.j_time 0 time !off p.j_n;
      Array.blit p.j_lat 0 lat !off p.j_n;
      Array.blit p.j_hops 0 hops !off p.j_n;
      off := !off + p.j_n)
    parts;
  let order = Array.init total Fun.id in
  Array.stable_sort (fun a b -> Stdlib.compare time.(a) time.(b)) order;
  Array.iter
    (fun i ->
      Stats.Welford.add m.latency lat.(i);
      Stats.Welford.add m.hop_count hops.(i))
    order;
  m

let protocol_event t name = bump t.events name
let loop_violation t = t.loop_violations <- t.loop_violations + 1
let set_mean_dest_seqno t x = t.mean_dest_seqno <- x

let originated t = t.originated
let delivered t = t.delivered
let duplicates t = t.duplicates

let delivery_ratio t =
  if t.originated = 0 then 0.
  else float_of_int t.delivered /. float_of_int t.originated

let mean_latency_ms t = Stats.Welford.mean t.latency
let latency_quantile_ms t q =
  float_of_int (Stats.Hdr.quantile t.latency_h q) /. 1e6

let median_latency_ms t = latency_quantile_ms t 0.5
let p95_latency_ms t = latency_quantile_ms t 0.95
let p99_latency_ms t = latency_quantile_ms t 0.99
let latency_histogram t = t.latency_h
let mean_hops t = Stats.Welford.mean t.hop_count

let control_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.control_tx []
  |> List.sort compare

let control_transmissions t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.control_tx 0

let data_transmissions t = t.data_tx

let control_bytes_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.control_bytes []
  |> List.sort compare

let control_bytes t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.control_bytes 0

let data_bytes t = t.data_bytes
let ack_bytes t = t.ack_bytes

let per_delivered t count =
  if t.delivered = 0 then 0. else float_of_int count /. float_of_int t.delivered

let network_load t = per_delivered t (control_transmissions t)
let byte_load t = per_delivered t (control_bytes t)

let rreq_load t =
  per_delivered t
    (match Hashtbl.find_opt t.control_tx "RREQ" with Some r -> !r | None -> 0)

let event_count t name =
  match Hashtbl.find_opt t.events name with Some r -> !r | None -> 0

let per_rreq t count =
  let rreqs = event_count t "rreq_init" in
  if rreqs = 0 then 0. else float_of_int count /. float_of_int rreqs

let rrep_init_per_rreq t = per_rreq t (event_count t "rrep_init")
let rrep_recv_per_rreq t = per_rreq t (event_count t "rrep_usable_recv")

let drops_by_reason t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.drops [] |> List.sort compare

let loop_violations t = t.loop_violations
let mean_dest_seqno t = t.mean_dest_seqno

type summary = {
  s_delivery_ratio : float;
  s_latency_ms : float;
  s_network_load : float;
  s_byte_load : float;
  s_rreq_load : float;
  s_rrep_init : float;
  s_rrep_recv : float;
  s_mean_dest_seqno : float;
}

let summary t =
  {
    s_delivery_ratio = delivery_ratio t;
    s_latency_ms = mean_latency_ms t;
    s_network_load = network_load t;
    s_byte_load = byte_load t;
    s_rreq_load = rreq_load t;
    s_rrep_init = rrep_init_per_rreq t;
    s_rrep_recv = rrep_recv_per_rreq t;
    s_mean_dest_seqno = mean_dest_seqno t;
  }
