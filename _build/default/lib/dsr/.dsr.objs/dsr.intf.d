lib/dsr/dsr.mli: Route_cache Routing Sim
