(* Model checker: replay determinism, DPOR/state-matching soundness,
   the AODV loop counterexample vs LDR silence over the same bounded
   space, the golden minimized trace, and Testnet link edge cases
   under the controlled scheduler. *)

open Sim
open Mcheck

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fx3 = Fixture.aodv_loop_3

(* dune runtest runs in _build/default/test, dune exec in the project
   root — accept either. *)
let fixture_path file =
  let up = Filename.concat (Filename.concat ".." "fixtures/mcheck") file in
  if Sys.file_exists up then up else Filename.concat "fixtures/mcheck" file

(* The headline pair: exhaustive DFS over the same bounded schedule
   space finds the routing loop under AODV and nothing under LDR.
   The bound matches bench/CI (BENCH_mcheck.json). *)

let aodv_finds_loop () =
  let r = Explorer.explore ~max_steps:8 fx3 Explorer.Aodv in
  match r.Explorer.violation with
  | Some { v_kind = Explorer.Cycle (dst, nodes); _ } ->
      checki "loop is for destination 2" 2 dst;
      checkb "cycle is 0<->1" true (List.sort compare nodes = [ 0; 1 ])
  | Some { v_kind = Explorer.Monitor _; _ } ->
      Alcotest.fail "expected a cycle violation, got a monitor one"
  | None -> Alcotest.fail "AODV loop not found in the bounded space"

let ldr_silent_same_space () =
  let r = Explorer.explore ~max_steps:18 ~stop_at_first:false fx3 Explorer.Ldr in
  checkb "space fully explored" true r.Explorer.stats.Explorer.complete;
  checkb "no violation anywhere" true (r.Explorer.violation = None)

(* Stateless replay: a state is its decision prefix, so replaying the
   same prefix twice (two full rebuilds) must land on the same digest.
   A differing digest would mean nondeterministic replay — every
   exploration result would be suspect. *)
let replay_determinism () =
  let r = Explorer.explore ~max_steps:8 fx3 Explorer.Aodv in
  let trace =
    match r.Explorer.violation with
    | Some v -> v.Explorer.v_trace
    | None -> Alcotest.fail "no violation to replay"
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  for n = 0 to List.length trace do
    let p = take n trace in
    checki
      (Printf.sprintf "digest stable at prefix %d" n)
      (Explorer.digest fx3 Explorer.Aodv p)
      (Explorer.digest fx3 Explorer.Aodv p)
  done;
  (* And the replayed full trace reproduces the violation. *)
  match Explorer.replay fx3 Explorer.Aodv trace with
  | Some (Explorer.Cycle (2, _)) -> ()
  | _ -> Alcotest.fail "replayed trace lost the violation"

(* Pruning soundness smoke: sleep sets + state matching must not hide
   the violation an unpruned search finds.  Bound 6 keeps the unpruned
   space small. *)
let pruned_matches_unpruned () =
  let kind r =
    match r.Explorer.violation with
    | Some { Explorer.v_kind = Explorer.Cycle (d, n); _ } ->
        Some (d, List.sort compare n)
    | Some { v_kind = Explorer.Monitor _; _ } | None -> None
  in
  let pruned = Explorer.explore ~max_steps:6 fx3 Explorer.Aodv in
  let unpruned = Explorer.explore ~max_steps:6 ~dedup:false fx3 Explorer.Aodv in
  checkb "both searches find the same loop" true
    (kind pruned = kind unpruned && kind pruned <> None);
  checkb "state matching actually pruned" true
    (pruned.Explorer.stats.Explorer.states
    <= unpruned.Explorer.stats.Explorer.states)

(* Minimization tightens the bound until the space below is silent, so
   the result is a shortest-depth witness; it must still replay. *)
let minimized_trace_replays () =
  let r = Explorer.explore ~max_steps:8 fx3 Explorer.Aodv in
  let v =
    match r.Explorer.violation with
    | Some v -> v
    | None -> Alcotest.fail "no violation"
  in
  let m = Explorer.minimize fx3 Explorer.Aodv v in
  checkb "minimization never lengthens" true
    (List.length m.Explorer.v_trace <= List.length v.Explorer.v_trace);
  checki "known minimal witness depth" 4 (List.length m.Explorer.v_trace);
  match Explorer.replay fx3 Explorer.Aodv m.Explorer.v_trace with
  | Some (Explorer.Cycle (2, _)) -> ()
  | _ -> Alcotest.fail "minimized trace lost the violation"

(* The checked-in golden trace must replay against current code — a
   protocol change that invalidates the published counterexample fails
   here, loudly. *)
let golden_trace_replays () =
  match Explorer.read_trace ~path:(fixture_path "aodv-loop-3.trace.jsonl") with
  | Error e -> Alcotest.fail ("golden trace unreadable: " ^ e)
  | Ok (name, proto, steps, recorded) -> (
      Alcotest.(check string) "trace names the fixture" "aodv-loop-3" name;
      checkb "trace is for aodv" true (proto = Explorer.Aodv);
      checki "golden witness depth" 4 (List.length steps);
      match (Explorer.replay fx3 proto steps, recorded) with
      | Some (Explorer.Cycle (d, n)), Explorer.Cycle (rd, rn) ->
          checki "same destination" rd d;
          checkb "same cycle" true (List.sort compare n = List.sort compare rn)
      | _ -> Alcotest.fail "golden trace did not reproduce its violation")

(* The prelude must quiesce: at exploration start the only ready event
   is the next script step — no residual discovery traffic leaks into
   the explored window. *)
let prelude_quiesces () =
  match Explorer.debug_ready fx3 Explorer.Aodv [] with
  | [ r ] ->
      Alcotest.(check string)
        "only the link-down script step is ready" "SCRIPT down 0-2"
        r.Controlled_queue.r_label
  | l -> Alcotest.fail (Printf.sprintf "%d events ready" (List.length l))

(* The .topo file and the compiled-in builtin must stay in sync. *)
let topo_file_matches_builtin () =
  match Fixture.load (fixture_path "aodv-loop-3.topo") with
  | Error e -> Alcotest.fail ("fixture unreadable: " ^ e)
  | Ok fx -> checkb ".topo equals builtin" true (fx = fx3)

let topo_parse_errors () =
  let bad s =
    match Fixture.parse ~name:"t" s with Error _ -> true | Ok _ -> false
  in
  checkb "missing nodes" true (bad "link 0 1");
  checkb "link out of range" true (bad "nodes 2\nlink 0 5");
  checkb "self link" true (bad "nodes 2\nlink 1 1");
  checkb "bad action" true (bad "nodes 2\nat 1.0 explode 0 1");
  checkb "hold out of range" true (bad "nodes 2\nhold RREP 0 9 until 1.0");
  checkb "bad hold shape" true (bad "nodes 2\nhold RREP 0 until 1.0");
  match
    Fixture.parse ~name:"t"
      "nodes 3\nlink 0 1\n# comment\nat 0.5 origin 0 1\nhold DATA 0 1 until \
       2.0\nexplore_from 1.5"
  with
  | Error e -> Alcotest.fail e
  | Ok fx ->
      checki "nodes" 3 fx.Fixture.nodes;
      checkb "hold parsed" true
        (fx.Fixture.holds
        = [ { Fixture.h_class = "DATA"; h_src = 0; h_dst = 1; h_until = 2.0 } ]);
      checkb "explore_from parsed" true (fx.Fixture.explore_from = 1.5)

(* ---- Testnet link edge cases under the controlled scheduler ---------- *)

let ready_with prefix engine =
  List.find_opt
    (fun (r : Controlled_queue.ready) ->
      String.length r.Controlled_queue.r_label >= String.length prefix
      && String.sub r.r_label 0 (String.length prefix) = prefix)
    (Engine.ready_set engine)

(* A link dropping while an RREP is in flight: delivery is re-checked
   at fire time, the packet is lost, and the sender gets MAC-style
   link-failure feedback as its own floating event. *)
let flap_during_inflight_rrep () =
  let engine = Engine.create ~scheduler:`Controlled () in
  let net =
    Experiment.Testnet.create ~engine ~factory:(Aodv.factory ()) ~n:3 ()
  in
  Experiment.Testnet.connect_chain net [ 0; 1; 2 ];
  Experiment.Testnet.origin net ~src:0 ~dst:2;
  (* FIFO-drive until the RREP hop 1->0 is in flight. *)
  let rec drive n =
    if n = 0 then Alcotest.fail "no RREP 1->0 appeared"
    else
      match ready_with "RREP 1->0" engine with
      | Some r -> r
      | None ->
          checkb "engine still live" true (Engine.step engine);
          drive (n - 1)
  in
  let rrep = drive 200 in
  Experiment.Testnet.disconnect net 0 1;
  ignore (Engine.fire_seq engine rrep.Controlled_queue.r_seq);
  checkb "sender sees link failure" true
    (ready_with "LINKFAIL 1->0" engine <> None);
  (* The feedback fires without tripping anything; the run quiesces. *)
  Engine.run ~until:(Time.sec 30.) engine;
  checki "data never delivered across the cut" 0
    (Experiment.Testnet.delivered net)

(* Partition then heal on the 4-node line (the line-4 fixture script):
   random schedules across the flap must never form a loop, under
   either protocol, and after healing the third origination gets
   through on at least one schedule. *)
let partition_heal_line4 () =
  List.iter
    (fun proto ->
      let r =
        Explorer.random_walks ~max_steps:25 ~walks:40 ~seed:7 Fixture.line_4
          proto
      in
      checkb
        (Printf.sprintf "no loop under %s" (Explorer.protocol_name proto))
        true
        (r.Explorer.violation = None))
    [ Explorer.Aodv; Explorer.Ldr ]

let () =
  Alcotest.run "mcheck"
    [
      ( "counterexample",
        [
          Alcotest.test_case "aodv loop found" `Quick aodv_finds_loop;
          Alcotest.test_case "ldr silent over same space" `Quick
            ldr_silent_same_space;
          Alcotest.test_case "minimized trace replays" `Quick
            minimized_trace_replays;
          Alcotest.test_case "golden trace replays" `Quick golden_trace_replays;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "replay determinism" `Quick replay_determinism;
          Alcotest.test_case "pruned matches unpruned" `Quick
            pruned_matches_unpruned;
          Alcotest.test_case "prelude quiesces" `Quick prelude_quiesces;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "topo file matches builtin" `Quick
            topo_file_matches_builtin;
          Alcotest.test_case "parse errors" `Quick topo_parse_errors;
        ] );
      ( "links",
        [
          Alcotest.test_case "flap during in-flight rrep" `Quick
            flap_during_inflight_rrep;
          Alcotest.test_case "partition then heal" `Quick partition_heal_line4;
        ] );
    ]
