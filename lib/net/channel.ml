open Sim
open Packets

(* Per-receiver reception state.  Records are pooled inside [tx_job]s
   and reused across transmissions — every field is mutable and reset
   on reuse, so the steady-state delivery path allocates nothing. *)
type rx = {
  mutable rx_frame : Frame.t;
  mutable tx_dist : float;
      (** receiver-to-transmitter distance, for capture (transiently
          holds the squared distance between candidate collection and
          the delivery pass) *)
  mutable gain : float;
      (** shadowing range factor of this link; exactly [1.] without a
          link model, in which case the delivery pass is bit-identical
          to the plain unit disk *)
  mutable corrupted : bool;
  mutable locked : bool;  (** this arrival captured the receiver *)
  mutable rx_radio : radio;
}

and radio = {
  id : Node_id.t;
  seq : int;  (** attach order; fixes query ordering across index modes *)
  idx : int;  (** SoA slot (node id); -1 when not backed by a store *)
  position : unit -> Geom.Vec2.t;
  mutable attached : bool;
      (** false while the node is down (churn): the radio is skipped as
          a reception candidate and dropped from the spatial index *)
  mutable receive : Frame.t -> unit;
  mutable medium : bool -> unit;
  mutable busy_count : int;  (** in-range transmissions currently in the air *)
  mutable tx_count : int;  (** own transmissions in the air (0 or 1) *)
  mutable current_rx : rx;  (** == [no_rx] when not locked to a frame *)
  mutable crossed : bool;
      (** last transmission was forwarded cross-shard (PDES): its remote
          copies arrive one delivery latency late, so unicast senders
          must extend their ACK wait by the round-trip grace *)
}

let dummy_frame =
  { Frame.src = Node_id.of_int 0; dst = Frame.Broadcast; body = Frame.Ack }

let dummy_pos = Geom.Vec2.v 0. 0.

(* Sentinels, compared physically.  [no_rx]/[dummy_radio] are mutually
   recursive so an idle radio and a free rx slot can point at them
   instead of carrying options. *)
let rec no_rx =
  {
    rx_frame = dummy_frame;
    tx_dist = 0.;
    gain = 1.;
    corrupted = true;
    locked = false;
    rx_radio = dummy_radio;
  }

and dummy_radio =
  {
    id = Node_id.of_int 0;
    seq = -1;
    idx = -1;
    position = (fun () -> dummy_pos);
    attached = false;
    receive = ignore;
    medium = ignore;
    busy_count = 0;
    tx_count = 0;
    current_rx = no_rx;
    crossed = false;
  }

let new_rx () =
  {
    rx_frame = dummy_frame;
    tx_dist = 0.;
    gain = 1.;
    corrupted = false;
    locked = false;
    rx_radio = dummy_radio;
  }

type mode = Naive | Grid | Soa

(* How far a radio's true position may drift from its bucketed position
   before the grid is rebuilt.  Queries are inflated by the current drift
   bound, so any margin is exact; smaller margins rebuild more often,
   larger ones scan more cells. *)
let slack_margin_m = 25.

(* One in-flight transmission: the source plus the touched radios'
   reception records, alive from [transmit] to its end-of-transmission
   event.  Jobs are pooled on a free stack; the job itself is the
   argument of the closure-free end-of-tx event, so a transmission
   schedules without allocating. *)
type tx_job = {
  mutable job_src : radio;
  mutable job_rxs : rx array;
  mutable job_n : int;
  job_owner : t;
}

and t = {
  engine : Engine.t;
  params : Params.t;
  mode : mode;
  max_speed : float option;
      (* [Some v]: no radio moves faster than [v] m/s, so bucketed
         positions age at a known rate.  [None]: unknown speeds — the
         grid is rebuilt whenever the clock has advanced, which is exact
         for any mobility and still no worse than a naive scan. *)
  mutable radios : radio list;  (* newest first *)
  mutable next_seq : int;
  mutable detached : int;  (* radios with [attached = false] *)
  grid : radio Geom.Grid.t;
  world : world option;  (* Some iff [mode = Soa] *)
  link : Link_model.t option;
      (* None on the classic unit disk — the propagate fast path then
         skips every per-candidate gain/wall lookup *)
  mutable grid_built_at : Time.t;
  mutable grid_fresh : bool;
  mutable hooks : (Node_id.t -> Frame.t -> unit) list;
  mutable tx_total : int;
  mutable job_pool : tx_job array;
  mutable job_free : int;  (* jobs [0, job_free) are free *)
  obs : Obs.Bus.t;
  (* PDES hook: decides whether a transmission concerns other shards and
     posts remote copies; returns true when it did (see [radio.crossed]).
     [remote_grace] is the extra unicast ACK wait a crossed transmission
     needs (two crossings: data out, ACK back). *)
  mutable remote : (Frame.t -> src:radio -> duration:Time.t -> bool) option;
  mutable remote_grace : Time.t;
}

(* SoA backing: positions come from the shared [Pos_store] planes and
   cell membership is maintained incrementally (ids only; the exact
   filter reads live store positions).  [w_radios] maps a store slot
   back to its radio — [dummy_radio] until that slot attaches. *)
and world = {
  w_store : Mobility.Pos_store.t;
  w_index : Geom.Cell_index.t;
  w_radios : radio array;
}

let create ~engine ?(mode = Grid) ?max_speed ?obs ?world ?link ~params () =
  (* Cell side = half the carrier-sense range: a CS-disk query scans
     ~25 cells, but the cells hug the disk, so the candidate superset
     is ~1.7x the true disk population (a full-range cell side gives
     9 coarse cells and a ~2.9x superset — more wasted exact distance
     checks per query, which dominate now that cells are one array
     load each). *)
  let cell = params.Params.cs_range_m /. 2. in
  let world =
    match (mode, world) with
    | Soa, Some (store, width, height) ->
        let n = Mobility.Pos_store.length store in
        Some
          {
            w_store = store;
            w_index = Geom.Cell_index.create ~cell ~width ~height ~ids:n;
            w_radios = Array.make n dummy_radio;
          }
    | Soa, None -> invalid_arg "Channel.create: Soa mode needs a world"
    | (Naive | Grid), _ -> None
  in
  {
    engine;
    params;
    mode;
    max_speed;
    radios = [];
    next_seq = 0;
    detached = 0;
    grid = Geom.Grid.create ~cell;
    world;
    link;
    grid_built_at = Time.zero;
    grid_fresh = false;
    hooks = [];
    tx_total = 0;
    job_pool = [||];
    job_free = 0;
    obs = (match obs with Some b -> b | None -> Obs.Bus.create ());
    remote = None;
    remote_grace = Time.zero;
  }

let set_remote t ~grace fn =
  t.remote <- Some fn;
  t.remote_grace <- grace

let remote_grace t = t.remote_grace
let crossed r = r.crossed

let params t = t.params
let mode t = t.mode
let obs t = t.obs

let frame_dst_int (f : Frame.t) =
  match f.dst with Frame.Broadcast -> -1 | Frame.Unicast d -> Node_id.to_int d

let attach t ?(idx = -1) ~id ~position () =
  let r =
    {
      id;
      seq = t.next_seq;
      idx;
      position;
      attached = true;
      receive = ignore;
      medium = ignore;
      busy_count = 0;
      tx_count = 0;
      current_rx = no_rx;
      crossed = false;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.radios <- r :: t.radios;
  (match t.world with
  | Some w when idx >= 0 -> w.w_radios.(idx) <- r
  | Some _ -> invalid_arg "Channel.attach: Soa mode needs a store slot (idx)"
  | None -> ());
  t.grid_fresh <- false;
  r

let set_receiver r f = r.receive <- f
let set_medium_listener r f = r.medium <- f
let radio_id r = r.id
let radio_pos r = r.position ()
let transmitting r = r.tx_count > 0

let carrier_busy r = r.busy_count > 0 || r.tx_count > 0

let busy _t r = carrier_busy r

(* ---- Transmission-job pool --------------------------------------------- *)

let new_job owner =
  {
    job_src = dummy_radio;
    job_rxs = Array.init 8 (fun _ -> new_rx ());
    job_n = 0;
    job_owner = owner;
  }

let alloc_job t =
  if t.job_free = 0 then begin
    let extra = Stdlib.max 4 (Array.length t.job_pool) in
    t.job_pool <-
      Array.append (Array.init extra (fun _ -> new_job t)) t.job_pool;
    t.job_free <- extra
  end;
  t.job_free <- t.job_free - 1;
  let job = t.job_pool.(t.job_free) in
  job.job_n <- 0;
  job

let free_job t job =
  t.job_pool.(t.job_free) <- job;
  t.job_free <- t.job_free + 1

(* Append a touched radio, keeping entries sorted by attach seq
   descending — the set and order a naive scan of [t.radios] (newest
   first) produces, so grid and naive modes stay byte-identical.  The
   naive path appends in already-descending order (zero shifts); grid
   candidates arrive in cell order and insertion-sort into place, a
   handful of pointer rotations for the few radios a disk holds. *)
let job_add job r d2 gain =
  let n = job.job_n in
  if n = Array.length job.job_rxs then
    job.job_rxs <-
      Array.append job.job_rxs (Array.init (Stdlib.max 8 n) (fun _ -> new_rx ()));
  let rxs = job.job_rxs in
  let i = ref n in
  while !i > 0 && rxs.(!i - 1).rx_radio.seq < r.seq do decr i done;
  let spare = rxs.(n) in
  for k = n downto !i + 1 do
    rxs.(k) <- rxs.(k - 1)
  done;
  rxs.(!i) <- spare;
  spare.rx_radio <- r;
  spare.tx_dist <- d2;
  spare.gain <- gain;
  spare.corrupted <- false;
  spare.locked <- false;
  job.job_n <- n + 1

(* ---- Spatial index ----------------------------------------------------- *)

(* Upper bound on how far any radio may be from where the grid bucketed
   it.  With a known speed bound this is speed x age; with an unknown one
   [refresh] rebuilds on every clock advance, so the drift is zero. *)
let drift_bound t =
  match t.max_speed with
  | None -> 0.
  | Some v ->
      let age = Time.diff (Engine.now t.engine) t.grid_built_at in
      if Time.equal age Time.zero then 0. else v *. Time.to_sec age

let rebuild_grid t =
  let batch =
    if t.detached = 0 then t.radios
    else List.filter (fun r -> r.attached) t.radios
  in
  Geom.Grid.build t.grid ~pos:(fun r -> r.position ()) batch;
  t.grid_built_at <- Engine.now t.engine;
  t.grid_fresh <- true

(* SoA resync: refresh every attached slot's store position in place
   (a scalar lerp unless the leg advanced) and move it between cells
   only when its cell changed — O(n) float work, no rebuild, no
   allocation. *)
let sweep_soa t w =
  let now = Engine.now t.engine in
  let store = w.w_store and index = w.w_index in
  for i = 0 to Array.length w.w_radios - 1 do
    let r = Array.unsafe_get w.w_radios i in
    if r.attached then begin
      Mobility.Pos_store.refresh store i now;
      Geom.Cell_index.update index i ~x:(Mobility.Pos_store.x store i)
        ~y:(Mobility.Pos_store.y store i)
    end
  done;
  t.grid_built_at <- now;
  t.grid_fresh <- true

let resync t =
  match t.world with Some w -> sweep_soa t w | None -> rebuild_grid t

(* Resync the index if stale; returns the post-resync drift bound so
   queries pay for at most one clock-to-seconds conversion. *)
let refresh t =
  if not t.grid_fresh then resync t;
  match t.max_speed with
  | None ->
      if Time.(Engine.now t.engine > t.grid_built_at) then resync t;
      0.
  | Some _ ->
      let b = drift_bound t in
      if b > slack_margin_m then begin
        resync t;
        0.
      end
      else b

(* Churn: a detached radio stops being a reception candidate in every
   index mode and is dropped from the incremental index immediately;
   frames already locked on it are discarded by the down-gated MAC.
   Reattaching re-inserts it at its current position. *)
let set_attached t r v =
  if r.attached <> v then begin
    r.attached <- v;
    t.detached <- (if v then t.detached - 1 else t.detached + 1);
    match t.world with
    | Some w when r.idx >= 0 ->
        if v then begin
          Mobility.Pos_store.refresh w.w_store r.idx (Engine.now t.engine);
          Geom.Cell_index.update w.w_index r.idx
            ~x:(Mobility.Pos_store.x w.w_store r.idx)
            ~y:(Mobility.Pos_store.y w.w_store r.idx)
        end
        else Geom.Cell_index.remove w.w_index r.idx
    | Some _ | None -> t.grid_fresh <- false
  end

let attached r = r.attached

(* Spatial-index health gauges (Obs.Telemetry). *)
let index_stats t =
  match (t.mode, t.world) with
  | Soa, Some w ->
      let s = Geom.Cell_index.stats w.w_index in
      (s.Geom.Cell_index.cells, s.occupied, s.max_occupancy)
  | _ ->
      let s = Geom.Grid.stats t.grid in
      (s.Geom.Grid.cells, s.occupied, s.max_occupancy)

(* Grid queries visit each candidate exactly once, applying the exact
   range predicate against live positions; survivors are ordered by
   attach sequence, newest first — the exact set and order a naive scan
   of [t.radios] produces.  The query disk is inflated by the drift
   bound, so the candidate superset always covers the true disk
   population; per-seed determinism therefore does not depend on the
   index. *)
let rec ins_radio x l =
  match l with
  | [] -> [ x ]
  | (y :: tl) as full -> if x.seq > y.seq then x :: full else y :: ins_radio x tl

let neighbors_in_range t r =
  let center = r.position () in
  let rng2 = t.params.range_m *. t.params.range_m in
  match (t.mode, t.world) with
  | Naive, _ ->
      List.filter_map
        (fun other ->
          if
            other != r && other.attached
            && Geom.Vec2.dist2 center (other.position ()) <= rng2
          then Some other.id
          else None)
        t.radios
  | (Grid | Soa), None ->
      let radius = t.params.range_m +. refresh t in
      let acc = ref [] in
      Geom.Grid.iter_disk t.grid ~center ~radius (fun other ->
          if
            other != r && other.attached
            && Geom.Vec2.dist2 center (other.position ()) <= rng2
          then acc := ins_radio other !acc);
      List.map (fun o -> o.id) !acc
  | (Grid | Soa), Some w ->
      let radius = t.params.range_m +. refresh t in
      let now = Engine.now t.engine in
      let acc = ref [] in
      Geom.Cell_index.iter_disk w.w_index ~x:center.Geom.Vec2.x
        ~y:center.Geom.Vec2.y ~radius (fun i ->
          let other = w.w_radios.(i) in
          if other != r && other.attached then begin
            Mobility.Pos_store.refresh w.w_store i now;
            let dx = Mobility.Pos_store.x w.w_store i -. center.Geom.Vec2.x
            and dy = Mobility.Pos_store.y w.w_store i -. center.Geom.Vec2.y in
            if (dx *. dx) +. (dy *. dy) <= rng2 then
              acc := ins_radio other !acc
          end);
      List.map (fun o -> o.id) !acc

let add_transmit_hook t f = t.hooks <- t.hooks @ [ f ]
let transmissions t = t.tx_total

(* Allocated jobs live in [job_pool.(job_free..)]; each is one
   transmission still in the air. *)
let in_flight t = Array.length t.job_pool - t.job_free

let mark_busy r =
  let was = carrier_busy r in
  r.busy_count <- r.busy_count + 1;
  if not was then r.medium true

let mark_idle r =
  r.busy_count <- r.busy_count - 1;
  assert (r.busy_count >= 0);
  if not (carrier_busy r) then r.medium false

(* End of transmission: release the medium, deliver surviving locked
   frames, and recycle the job.  Clearing each rx's frame and radio
   drops the job's references into live simulation state between
   transmissions. *)
let end_of_tx job =
  let t = job.job_owner in
  let src = job.job_src in
  src.tx_count <- src.tx_count - 1;
  if not (carrier_busy src) then src.medium false;
  for k = 0 to job.job_n - 1 do
    let rx = job.job_rxs.(k) in
    let r = rx.rx_radio in
    mark_idle r;
    if rx.locked then begin
      (* Only clear the lock if it is still ours (a corrupting overlap
         never replaces the lock, so it is). *)
      if r.current_rx == rx then r.current_rx <- no_rx;
      (* Starting to transmit mid-reception also kills it. *)
      if (not rx.corrupted) && r.tx_count = 0 then r.receive rx.rx_frame
      else if Obs.Bus.on t.obs then
        (* A locked frame the radio would have decoded, lost to an
           overlapping transmission (or its own). *)
        Obs.Bus.collision t.obs
          ~time:(Engine.now t.engine)
          ~node:(Node_id.to_int r.id)
          ~cls:(Obs.Bus.intern t.obs (Frame.class_name rx.rx_frame))
          ~from:(Node_id.to_int rx.rx_frame.Frame.src)
    end;
    rx.rx_frame <- dummy_frame;
    rx.rx_radio <- dummy_radio
  done;
  job.job_src <- dummy_radio;
  free_job t job

(* Shared propagation body: collect the touched radios around the
   source position (scalars — no Vec2 box on this path), resolve
   capture, and arm the end-of-transmission event.  [transmit] runs it
   for a local transmission; [transmit_from] for the remote copy of a
   cross-shard one (a phantom source radio standing in for a node homed
   on another shard). *)
let propagate t src ~sx ~sy frame ~duration =
  (* Touched radios are fixed at transmission start: node movement within
     one frame airtime (~2 ms) is a fraction of a millimetre.  Radios out
     to the carrier-sense range defer and suffer interference; only those
     within decode range can receive the frame.  A shadowed pair's
     ranges are both scaled by its gain; the partition wall absorbs the
     crossing frame entirely. *)
  let cs2 = t.params.cs_range_m *. t.params.cs_range_m in
  let rng2 = t.params.range_m *. t.params.range_m in
  let job = alloc_job t in
  job.job_src <- src;
  let link = t.link in
  let now = Engine.now t.engine in
  let src_int = Node_id.to_int src.id in
  (* Candidate query disks are inflated by the largest possible gain so
     the superset covers every shadowed-but-decodable pair; the exact
     per-pair predicate below then decides.  Without a link model this
     is exactly the old unit-disk collection, same float ops, same
     order. *)
  let inflate =
    match link with None -> 1. | Some l -> Link_model.f_max l
  in
  (* One distance computation per candidate, stashed squared in
     [tx_dist]; the delivery pass replaces it with [sqrt d2], which
     equals [Vec2.dist] bit-for-bit, so caching cannot change
     outcomes. *)
  (match (t.mode, t.world) with
  | Naive, _ | _, None -> (
      match t.mode with
      | Naive ->
          List.iter
            (fun r ->
              if r != src && r.attached then begin
                let p = r.position () in
                let dx = p.Geom.Vec2.x -. sx and dy = p.Geom.Vec2.y -. sy in
                let d2 = (dx *. dx) +. (dy *. dy) in
                match link with
                | None -> if d2 <= cs2 then job_add job r d2 1.
                | Some l ->
                    if not (Link_model.blocked l ~now ~x1:sx ~x2:p.Geom.Vec2.x)
                    then begin
                      let g = Link_model.gain l src_int (Node_id.to_int r.id) in
                      if d2 <= cs2 *. (g *. g) then job_add job r d2 g
                    end
              end)
            t.radios
      | Grid | Soa ->
          let radius = (t.params.cs_range_m *. inflate) +. refresh t in
          Geom.Grid.iter_disk t.grid ~center:(Geom.Vec2.v sx sy) ~radius
            (fun r ->
              if r != src && r.attached then begin
                let p = r.position () in
                let dx = p.Geom.Vec2.x -. sx and dy = p.Geom.Vec2.y -. sy in
                let d2 = (dx *. dx) +. (dy *. dy) in
                match link with
                | None -> if d2 <= cs2 then job_add job r d2 1.
                | Some l ->
                    if not (Link_model.blocked l ~now ~x1:sx ~x2:p.Geom.Vec2.x)
                    then begin
                      let g = Link_model.gain l src_int (Node_id.to_int r.id) in
                      if d2 <= cs2 *. (g *. g) then job_add job r d2 g
                    end
              end))
  | _, Some w ->
      let radius = (t.params.cs_range_m *. inflate) +. refresh t in
      let store = w.w_store in
      Geom.Cell_index.iter_disk w.w_index ~x:sx ~y:sy ~radius (fun i ->
          let r = Array.unsafe_get w.w_radios i in
          if r != src && r.attached then begin
            Mobility.Pos_store.refresh store i now;
            let ox = Mobility.Pos_store.x store i
            and oy = Mobility.Pos_store.y store i in
            let dx = ox -. sx and dy = oy -. sy in
            let d2 = (dx *. dx) +. (dy *. dy) in
            match link with
            | None -> if d2 <= cs2 then job_add job r d2 1.
            | Some l ->
                if not (Link_model.blocked l ~now ~x1:sx ~x2:ox) then begin
                  let g = Link_model.gain l src_int (Node_id.to_int r.id) in
                  if d2 <= cs2 *. (g *. g) then job_add job r d2 g
                end
          end));
  let was_busy_src = carrier_busy src in
  src.tx_count <- src.tx_count + 1;
  if not was_busy_src then src.medium true;
  let ratio = t.params.capture_distance_ratio in
  for k = 0 to job.job_n - 1 do
    let rx = job.job_rxs.(k) in
    let r = rx.rx_radio in
    mark_busy r;
    let d2 = rx.tx_dist in
    let g = rx.gain in
    (* Effective distance folds the shadowing gain in: capture compares
       effective signal strengths.  [g = 1.] (no link model) leaves
       every float untouched. *)
    let dist = sqrt d2 in
    let dist = if g = 1. then dist else dist /. g in
    rx.tx_dist <- dist;
    rx.rx_frame <- frame;
    let decodable = if g = 1. then d2 <= rng2 else d2 <= rng2 *. (g *. g) in
    (* A radio that is transmitting decodes nothing.  An overlap is
       resolved by the capture effect: the markedly closer (stronger)
       transmitter wins; comparable powers corrupt both frames. *)
    if r.tx_count > 0 then ()
    else begin
      let cur = r.current_rx in
      if cur != no_rx then begin
        if dist >= ratio *. cur.tx_dist then
          (* New arrival too weak to disturb the locked frame. *)
          ()
        else if cur.tx_dist >= ratio *. dist && decodable then begin
          (* New arrival captures the receiver. *)
          cur.corrupted <- true;
          rx.locked <- true;
          r.current_rx <- rx
        end
        else cur.corrupted <- true
      end
      else if decodable then begin
        rx.locked <- true;
        r.current_rx <- rx
      end
    end
  done;
  ignore (Engine.after_fn t.engine duration end_of_tx job)

let transmit t src frame ~duration =
  t.tx_total <- t.tx_total + 1;
  List.iter (fun hook -> hook src.id frame) t.hooks;
  if Obs.Bus.on t.obs then
    Obs.Bus.tx t.obs
      ~time:(Engine.now t.engine)
      ~node:(Node_id.to_int src.id)
      ~cls:(Obs.Bus.intern t.obs (Frame.class_name frame))
      ~dst:(frame_dst_int frame) ~bytes:(Frame.encoded_length frame);
  src.crossed <-
    (match t.remote with None -> false | Some fn -> fn frame ~src ~duration);
  match t.world with
  | Some w when src.idx >= 0 ->
      (* SoA source: refresh the store row in place and read the scalar
         planes — no Vec2 box per transmission. *)
      Mobility.Pos_store.refresh w.w_store src.idx (Engine.now t.engine);
      propagate t src
        ~sx:(Mobility.Pos_store.x w.w_store src.idx)
        ~sy:(Mobility.Pos_store.y w.w_store src.idx)
        frame ~duration
  | Some _ | None ->
      let p = src.position () in
      propagate t src ~sx:p.Geom.Vec2.x ~sy:p.Geom.Vec2.y frame ~duration

(* Remote copy of a transmission whose source is homed on another shard.
   The phantom radio carries the source's id and position snapshot; it
   is not attached, so it never appears as a reception candidate, and
   nothing global is counted again here — the home shard already paid
   [tx_total], the transmit hooks and the obs Tx event. *)
let transmit_from t ~src_id ~pos frame ~duration =
  let phantom =
    {
      id = src_id;
      seq = -2;
      idx = -1;
      position = (fun () -> pos);
      attached = true;
      receive = ignore;
      medium = ignore;
      busy_count = 0;
      tx_count = 0;
      current_rx = no_rx;
      crossed = false;
    }
  in
  propagate t phantom ~sx:pos.Geom.Vec2.x ~sy:pos.Geom.Vec2.y frame ~duration
