(** DSR messages.

    DSR control and data packets carry explicit routes.  [sr_remaining]
    lists the hops still to traverse (next hop first); agents rebuild the
    payload at each hop with the head consumed. *)

type rreq = {
  origin : Node_id.t;
  dst : Node_id.t;
  rreq_id : int;
  route : Node_id.t list;
      (** accumulated relay addresses, origin first, excluding origin
          itself per the DSR spec — so a one-hop request has [route = []] *)
  ttl : int;
}

type rrep = {
  origin : Node_id.t;  (** requester the reply is for *)
  dst : Node_id.t;
  full_route : Node_id.t list;  (** origin .. dst inclusive *)
}

type rerr = {
  err_from : Node_id.t;  (** node that detected the break *)
  broken_from : Node_id.t;
  broken_to : Node_id.t;
  err_dst : Node_id.t;  (** source being told *)
}

type t =
  | Rreq of rreq
  | Rrep of { sr_remaining : Node_id.t list; rrep : rrep }
  | Rerr of { sr_remaining : Node_id.t list; rerr : rerr }
  | Data of {
      sr_remaining : Node_id.t list;
      full_route : Node_id.t list;  (** origin .. dst, for cache snooping *)
      data : Data_msg.t;
      salvage : int;  (** times this packet has been salvaged *)
    }

val kind : t -> string
(** "RREQ" | "RREP" | "RERR" | "DATA". *)

val pp : Format.formatter -> t -> unit
