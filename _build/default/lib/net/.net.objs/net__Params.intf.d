lib/net/params.mli: Sim
