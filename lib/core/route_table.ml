open Sim
open Packets

type alternate = { alt_via : Node_id.t; alt_adv : int; alt_dist : int }

type entry = {
  mutable sn : Seqnum.t;
  mutable dist : int;
  mutable fd : int;
  mutable next_hop : Node_id.t option;
  mutable expires : Time.t;
  mutable alternates : alternate list;
}

type t = {
  engine : Engine.t;
  entries : entry Node_id.Table.t;
  multipath : bool;
  obs : Obs.Bus.t;
  owner : int;
}

let create ?(multipath = false) ?obs ?(owner = -1) ~engine () =
  let obs = match obs with Some b -> b | None -> Obs.Bus.create () in
  { engine; entries = Node_id.Table.create 32; multipath; obs; owner }

let now t = Engine.now t.engine

let succ_int (e : entry) =
  match e.next_hop with Some n -> Node_id.to_int n | None -> -1

(* One event per structural table write: the monitor checks the written
   edge, the analyzer counts successor flaps. *)
let emit_write t ~dst ~old_succ (e : entry) =
  if Obs.Bus.on t.obs then
    Obs.Bus.table_write t.obs ~time:(now t) ~node:t.owner
      ~dst:(Node_id.to_int dst) ~old_succ ~new_succ:(succ_int e) ~dist:e.dist
      ~fd:e.fd ~sn:(Seqnum.pack e.sn)

let find t dst = Node_id.Table.find_opt t.entries dst

let is_active t e = e.next_hop <> None && Time.(e.expires > now t)

let active t dst =
  match find t dst with Some e when is_active t e -> Some e | _ -> None

let invariants t dst =
  match find t dst with
  | None -> None
  | Some e -> Some { Conditions.sn = e.sn; dist = e.dist; fd = e.fd }

let remaining_lifetime t e =
  if Time.(e.expires > now t) then Time.diff e.expires (now t) else Time.zero

let refresh t e ~lifetime =
  let candidate = Time.add (now t) lifetime in
  if Time.(candidate > e.expires) then e.expires <- candidate

(* LFI feasibility of a stored alternate under the entry's current fd:
   fd only ratchets down within a number, so this must be re-checked at
   every use. *)
let feasible_alt (e : entry) a = a.alt_adv < e.fd

let prune_alternates e =
  e.alternates <- List.filter (feasible_alt e) e.alternates

let remember_alternate t e ~via ~adv_dist ~lc =
  if t.multipath && adv_dist < e.fd && e.next_hop <> Some via then begin
    let others = List.filter (fun a -> not (Node_id.equal a.alt_via via)) e.alternates in
    e.alternates <-
      { alt_via = via; alt_adv = adv_dist; alt_dist = adv_dist + lc } :: others
  end

let drop_alternate e via =
  e.alternates <- List.filter (fun a -> not (Node_id.equal a.alt_via via)) e.alternates

let apply_advert t ?(lc = 1) ~dst ~adv_sn ~adv_dist ~via ~lifetime () =
  if lc <= 0 then invalid_arg "Route_table.apply_advert: link cost must be positive";
  let new_dist = adv_dist + lc in
  let expires = Time.add (now t) lifetime in
  match find t dst with
  | None ->
      let e =
        {
          sn = adv_sn;
          dist = new_dist;
          fd = new_dist;
          next_hop = Some via;
          expires;
          alternates = [];
        }
      in
      Node_id.Table.replace t.entries dst e;
      emit_write t ~dst ~old_succ:(-1) e;
      `Installed
  | Some e ->
      let own = { Conditions.sn = e.sn; dist = e.dist; fd = e.fd } in
      if not (Conditions.ndc ~own:(Some own) ~adv_sn ~adv_dist) then begin
        (* This neighbor can no longer serve as an alternate either. *)
        if Seqnum.equal adv_sn e.sn then drop_alternate e via;
        (* NDC failed, but the same successor repeating the same-number
           route keeps it alive. *)
        if
          is_active t e && e.next_hop = Some via && Seqnum.equal adv_sn e.sn
          && new_dist <= e.dist
        then begin
          let old_succ = succ_int e in
          e.dist <- new_dist;
          (* Procedure 3: feasible distance only ratchets down within a
             sequence number. *)
          e.fd <- Stdlib.min e.fd new_dist;
          prune_alternates e;
          refresh t e ~lifetime;
          emit_write t ~dst ~old_succ e;
          `Refreshed
        end
        else `Rejected
      end
      else if
        (* Stable-path rule: with an active route and an equal number,
           only switch for a strictly shorter path. *)
        is_active t e
        && Seqnum.equal adv_sn e.sn
        && new_dist >= e.dist
        && e.next_hop <> Some via
      then begin
        (* Feasible but not better: exactly the LFI alternate case. *)
        remember_alternate t e ~via ~adv_dist ~lc;
        `Rejected
      end
      else begin
        (* Procedure 3 (Set Route). *)
        let old_succ = succ_int e in
        let sn_increased = Seqnum.(adv_sn > e.sn) in
        e.sn <- adv_sn;
        e.dist <- new_dist;
        e.fd <- (if sn_increased then new_dist else Stdlib.min e.fd new_dist);
        e.next_hop <- Some via;
        e.expires <- expires;
        if sn_increased then e.alternates <- []
        else begin
          drop_alternate e via;
          prune_alternates e
        end;
        emit_write t ~dst ~old_succ e;
        `Installed
      end

let invalidate t dst =
  match find t dst with
  | None -> ()
  | Some e ->
      let old_succ = succ_int e in
      e.next_hop <- None;
      if old_succ >= 0 then emit_write t ~dst ~old_succ e

(* Best alternate = smallest distance through it, ties to smaller id. *)
let best_alternate e =
  List.fold_left
    (fun acc a ->
      if not (feasible_alt e a) then acc
      else
        match acc with
        | Some b
          when b.alt_dist < a.alt_dist
               || (b.alt_dist = a.alt_dist
                  && Node_id.compare b.alt_via a.alt_via <= 0) ->
            acc
        | _ -> Some a)
    None e.alternates

let invalidate_via t neighbor =
  Node_id.Table.fold
    (fun dst e (invalidated, promoted) ->
      drop_alternate e neighbor;
      if e.next_hop = Some neighbor then begin
        let old_succ = succ_int e in
        match if t.multipath then best_alternate e else None with
        | Some a ->
            (* LFI failover: a.alt_adv < fd, so the switch cannot form a
               loop; our distance may grow but never below fd. *)
            e.next_hop <- Some a.alt_via;
            e.dist <- a.alt_dist;
            e.alternates <-
              List.filter (fun x -> not (Node_id.equal x.alt_via a.alt_via))
                e.alternates;
            emit_write t ~dst ~old_succ e;
            (invalidated, dst :: promoted)
        | None ->
            e.next_hop <- None;
            emit_write t ~dst ~old_succ e;
            (dst :: invalidated, promoted)
      end
      else (invalidated, promoted))
    t.entries ([], [])

let fail_route t dst ~via =
  match find t dst with
  | None -> `Untouched
  | Some e ->
      drop_alternate e via;
      if e.next_hop <> Some via then `Untouched
      else begin
        let old_succ = succ_int e in
        match if t.multipath then best_alternate e else None with
        | Some a ->
            e.next_hop <- Some a.alt_via;
            e.dist <- a.alt_dist;
            e.alternates <-
              List.filter (fun x -> not (Node_id.equal x.alt_via a.alt_via))
                e.alternates;
            emit_write t ~dst ~old_succ e;
            `Promoted
        | None ->
            e.next_hop <- None;
            emit_write t ~dst ~old_succ e;
            `Invalidated
      end

(* Churn teardown: every active route is invalidated through the normal
   observable write (the monitor and flap analyzer must see the edges
   disappear — a silently vanishing successor could pair with a rebooted
   node's fresh state to fake a loop), then the entries are dropped. *)
let clear t =
  Node_id.Table.iter
    (fun dst e ->
      let old_succ = succ_int e in
      e.next_hop <- None;
      e.alternates <- [];
      if old_succ >= 0 then emit_write t ~dst ~old_succ e)
    t.entries;
  Node_id.Table.reset t.entries

let successor t dst =
  match active t dst with Some e -> e.next_hop | None -> None

let iter t f = Node_id.Table.iter (fun dst e -> f dst e) t.entries
