type t = int

let zero = 0

let ns n =
  if Int64.compare n 0L < 0 then invalid_arg "Time.ns: negative";
  Int64.to_int n

let of_float_ns x =
  if x < 0. then invalid_arg "Time: negative duration";
  int_of_float (Float.round x)

let us x = of_float_ns (x *. 1e3)
let ms x = of_float_ns (x *. 1e6)
let sec x = of_float_ns (x *. 1e9)

let unsafe_of_ns n = n
let to_ns t = Int64.of_int t
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

let add a b = a + b

let diff a b =
  if b > a then invalid_arg "Time.diff: negative result";
  a - b

let mul t k =
  if k < 0 then invalid_arg "Time.mul: negative factor";
  t * k

let div t k =
  if k <= 0 then invalid_arg "Time.div: non-positive divisor";
  t / k

let scale t x =
  if x < 0. then invalid_arg "Time.scale: negative factor";
  of_float_ns (float_of_int t *. x)

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b

let pp fmt t =
  let x = float_of_int t in
  if Stdlib.( < ) x 1e3 then Format.fprintf fmt "%.0fns" x
  else if Stdlib.( < ) x 1e6 then Format.fprintf fmt "%.3fus" (x /. 1e3)
  else if Stdlib.( < ) x 1e9 then Format.fprintf fmt "%.3fms" (x /. 1e6)
  else Format.fprintf fmt "%.3fs" (x /. 1e9)

let to_string t = Format.asprintf "%a" pp t
