(* Array-of-records event set.  Everything here is O(n) scans: mcheck
   topologies hold a few dozen pending events at most, and the point of
   this scheduler is to *enumerate* the pending set anyway. *)

type ev = {
  e_seq : int;
  e_time : int;
  e_tag : int;
  e_label : string;
  e_floating : bool;
  e_cb : unit -> unit;
  mutable e_live : bool;
}

type ready = {
  r_seq : int;
  r_tag : int;
  r_time : int;
  r_floating : bool;
  r_label : string;
}

type t = {
  mutable evs : ev array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let dummy =
  {
    e_seq = -1;
    e_time = 0;
    e_tag = -1;
    e_label = "";
    e_floating = false;
    e_cb = ignore;
    e_live = false;
  }

let create () = { evs = Array.make 64 dummy; len = 0; next_seq = 0; live = 0 }

(* Drop dead slots in place (preserving order, which carries the FIFO
   tie-break) before growing. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    if t.evs.(i).e_live then begin
      t.evs.(!j) <- t.evs.(i);
      incr j
    end
  done;
  t.len <- !j

let schedule t ?(floating = false) ?(tag = -1) ?(label = "") ~time cb =
  if t.len = Array.length t.evs then begin
    compact t;
    if t.len > Array.length t.evs / 2 then begin
      let evs' = Array.make (2 * Array.length t.evs) dummy in
      Array.blit t.evs 0 evs' 0 t.len;
      t.evs <- evs'
    end
  end;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.evs.(t.len) <-
    {
      e_seq = seq;
      e_time = time;
      e_tag = tag;
      e_label = label;
      e_floating = floating;
      e_cb = cb;
      e_live = true;
    };
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  seq

let find t seq =
  let found = ref (-1) in
  (try
     for i = 0 to t.len - 1 do
       if t.evs.(i).e_live && t.evs.(i).e_seq = seq then begin
         found := i;
         raise Exit
       end
     done
   with Exit -> ());
  !found

let cancel t seq =
  let i = find t seq in
  if i >= 0 then begin
    t.evs.(i).e_live <- false;
    t.live <- t.live - 1
  end

let live_count t = t.live

let next_time_ns t =
  let best = ref max_int in
  for i = 0 to t.len - 1 do
    let ev = t.evs.(i) in
    if ev.e_live && ev.e_time < !best then best := ev.e_time
  done;
  !best

let ready t =
  (* Earliest timed instant first... *)
  let timed_min = ref max_int in
  for i = 0 to t.len - 1 do
    let ev = t.evs.(i) in
    if ev.e_live && (not ev.e_floating) && ev.e_time < !timed_min then
      timed_min := ev.e_time
  done;
  (* ...then every floating event plus the timed ties, in seq order
     (slots are kept in insertion order, which is seq order). *)
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    let ev = t.evs.(i) in
    if ev.e_live && (ev.e_floating || ev.e_time = !timed_min) then
      acc :=
        { r_seq = ev.e_seq; r_tag = ev.e_tag; r_time = ev.e_time;
          r_floating = ev.e_floating; r_label = ev.e_label }
        :: !acc
  done;
  !acc

let pending t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    let ev = t.evs.(i) in
    if ev.e_live then
      acc :=
        { r_seq = ev.e_seq; r_tag = ev.e_tag; r_time = ev.e_time;
          r_floating = ev.e_floating; r_label = ev.e_label }
        :: !acc
  done;
  !acc

let take t seq =
  let i = find t seq in
  if i < 0 then None
  else begin
    let ev = t.evs.(i) in
    ev.e_live <- false;
    t.live <- t.live - 1;
    Some (ev.e_time, ev.e_cb)
  end

let pop_min t ?(limit = max_int) () =
  let best = ref (-1) in
  for i = t.len - 1 downto 0 do
    let ev = t.evs.(i) in
    if ev.e_live && ev.e_time <= limit then
      if
        !best < 0
        || ev.e_time < t.evs.(!best).e_time
        || (ev.e_time = t.evs.(!best).e_time && ev.e_seq < t.evs.(!best).e_seq)
      then best := i
  done;
  if !best < 0 then None
  else begin
    let ev = t.evs.(!best) in
    ev.e_live <- false;
    t.live <- t.live - 1;
    Some (ev.e_time, ev.e_cb)
  end
