(** Expanding-ring-search schedule shared by the on-demand protocols.

    Constants follow the AODV draft the paper measures against:
    TTL_START = 1, TTL_INCREMENT = 2, TTL_THRESHOLD = 7, NET_DIAMETER
    = 35, with per-attempt timeouts of RING_TRAVERSAL_TIME =
    2 x node traversal time x (TTL + TIMEOUT_BUFFER) per RFC 3561
    section 10, and a bounded number of full-diameter retries. *)

type t = {
  ttl_start : int;
  ttl_increment : int;
  ttl_threshold : int;
  net_diameter : int;
  node_traversal : Sim.Time.t;  (** conservative one-hop latency estimate *)
  timeout_buffer : int;
      (** RFC 3561 TIMEOUT_BUFFER: extra TTL-equivalents of slack in the
          per-attempt timeout so a slow reply is not re-flooded over *)
  max_retries : int;  (** network-wide attempts after the ring search *)
}

val default : t

val next_ttl : t -> prev:int option -> int option
(** TTL of the attempt after one with TTL [prev] ([None] = first
    attempt).  [None] when the retry budget is exhausted. *)

val attempt_timeout : t -> ttl:int -> Sim.Time.t
(** How long to wait for a reply to an attempt with this TTL. *)

val ttl_for_known_distance : t -> dist:int -> int
(** Initial TTL when a (stale) distance to the destination is known. *)
