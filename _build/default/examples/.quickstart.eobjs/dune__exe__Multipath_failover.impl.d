examples/multipath_failover.ml: Experiment Format Geom List Metrics Net Runner Scenario Sim Stats Sweep Traffic
