lib/core/config.ml: Packets Routing Sim Time
