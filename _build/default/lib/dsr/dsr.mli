(** DSR — Dynamic Source Routing, the paper's second on-demand baseline.

    Routes are discovered by accumulating the traversed path in RREQs and
    carried explicitly in every packet header.  Implemented features, per
    the drafts the paper simulates: path route cache, replies from cache,
    a non-propagating first request, packet salvaging at intermediate
    nodes, RERRs routed back over the traversed prefix, and promiscuous
    route snooping.  Not implemented: automatic route shortening and flow
    state. *)

module Route_cache = Route_cache
(** Re-exported so library users reach the cache as [Dsr.Route_cache]. *)

type config = {
  cache_capacity : int;
  cache_ttl : Sim.Time.t;
  nonprop_timeout : Sim.Time.t;  (** wait after the TTL-1 request *)
  flood_timeout : Sim.Time.t;  (** base timeout, doubled per retry *)
  max_flood_attempts : int;
  buffer_capacity : int;
  buffer_max_age : Sim.Time.t;
  flood_jitter : Sim.Time.t;
  max_salvage : int;
  reply_from_cache : bool;
      (** intermediate nodes may answer with cached routes (on in the
          paper's draft-3 runs; the Fig-6 "QualNet / draft 7" cross-check
          runs with it off) *)
  route_shortening : bool;
      (** automatic route shortening: a node that promiscuously overhears
          a source-routed packet listing it further down the route sends
          the source a gratuitous RREP with the intermediate hops cut
          out *)
}

val default_config : config

val factory : ?config:config -> unit -> Routing.Agent.factory

val name : string
