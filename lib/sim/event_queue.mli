(** Pending-event set for discrete-event simulation.

    A binary min-heap ordered by (time, insertion sequence): events at the
    same instant fire in the order they were scheduled, which keeps runs
    deterministic.  Cancellation is O(1) lazy — a cancelled event is
    skipped when it reaches the top of the heap. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val schedule : t -> Time.t -> (unit -> unit) -> handle
(** [schedule q at f] arranges for [f] to run at time [at]. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool

val next_time : t -> Time.t option
(** Time of the earliest live event, if any. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Remove and return the earliest live event. *)

val pop_until : t -> Time.t -> (Time.t * (unit -> unit)) option
(** [pop_until q limit] is [pop q] if the earliest live event is at or
    before [limit], and [None] (leaving the event queued) otherwise.
    Cheaper than [next_time] followed by [pop]. *)

val is_empty : t -> bool
(** True when no live events remain. *)

val live_count : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events.  O(n). *)

val capacity : t -> int
(** Current backing-array size.  The heap grows by doubling and shrinks
    by halving once occupancy falls below a quarter (floor 64), so a
    burst does not pin peak memory for the rest of the run. *)
