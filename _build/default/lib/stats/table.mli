(** Fixed-width text tables for the benchmark reports. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** Render rows under a header with per-column alignment (default
    right-aligned except the first column).  Rows shorter than the header
    are padded with empty cells. *)

val mean_ci : mean:float -> ci:float -> string
(** "0.987 ± 0.004" formatting used throughout the reports. *)
