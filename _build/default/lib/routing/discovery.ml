open Sim

type t = {
  ttl_start : int;
  ttl_increment : int;
  ttl_threshold : int;
  net_diameter : int;
  node_traversal : Time.t;
  max_retries : int;
}

let default =
  {
    ttl_start = 1;
    ttl_increment = 2;
    ttl_threshold = 7;
    net_diameter = 35;
    node_traversal = Time.ms 40.;
    max_retries = 2;
  }

let next_ttl t ~prev =
  match prev with
  | None -> Some t.ttl_start
  | Some p ->
      if p < t.ttl_threshold then
        Some (Stdlib.min (p + t.ttl_increment) t.ttl_threshold)
      else if p < t.net_diameter then Some t.net_diameter
      else None
(* Full-diameter retries are counted by the caller against
   [max_retries]; [next_ttl] only shapes the ring growth. *)

let attempt_timeout t ~ttl = Time.mul t.node_traversal (2 * ttl)

let ttl_for_known_distance t ~dist =
  Stdlib.min t.net_diameter (Stdlib.max t.ttl_start dist + 2)
