(* Tests for node ids, sequence numbers and message formats. *)

open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let n = Node_id.of_int

(* ---- Node_id -------------------------------------------------------- *)

let node_id_basics () =
  checki "roundtrip" 5 (Node_id.to_int (n 5));
  checkb "equal" true (Node_id.equal (n 3) (n 3));
  checkb "not equal" false (Node_id.equal (n 3) (n 4));
  checkb "ordered" true (Node_id.compare (n 1) (n 2) < 0);
  Alcotest.check Alcotest.string "pp" "n7" (Node_id.to_string (n 7));
  Alcotest.check_raises "negative" (Invalid_argument "Node_id.of_int: negative")
    (fun () -> ignore (Node_id.of_int (-1)))

let node_id_containers () =
  let s = Node_id.Set.of_list [ n 1; n 2; n 2; n 3 ] in
  checki "set dedups" 3 (Node_id.Set.cardinal s);
  let m = Node_id.Map.(empty |> add (n 1) "a" |> add (n 2) "b") in
  Alcotest.check Alcotest.string "map" "b" (Node_id.Map.find (n 2) m);
  let t = Node_id.Table.create 4 in
  Node_id.Table.replace t (n 9) 99;
  checki "table" 99 (Node_id.Table.find t (n 9))

(* ---- Seqnum ---------------------------------------------------------- *)

let seqnum_ordering () =
  let s0 = Seqnum.initial ~stamp:10 in
  let s1 = Seqnum.increment ~now_stamp:10 s0 in
  checkb "increment greater" true Seqnum.(s1 > s0);
  checkb "initial le" true Seqnum.(s0 <= s0);
  let newer_stamp = Seqnum.initial ~stamp:11 in
  checkb "stamp dominates counter" true Seqnum.(newer_stamp > s1);
  checkb "max" true (Seqnum.equal (Seqnum.max s0 s1) s1)

let seqnum_counter_wrap () =
  let s = Seqnum.initial ~stamp:1 in
  let s = Seqnum.increment ~counter_limit:3 ~now_stamp:1 s in
  let s = Seqnum.increment ~counter_limit:3 ~now_stamp:1 s in
  let s = Seqnum.increment ~counter_limit:3 ~now_stamp:1 s in
  checki "counter at limit" 3 s.Seqnum.counter;
  (* Next increment must restamp. *)
  let s' = Seqnum.increment ~counter_limit:3 ~now_stamp:5 s in
  checki "fresh stamp" 5 s'.Seqnum.stamp;
  checki "counter reset" 0 s'.Seqnum.counter;
  checkb "still increasing" true Seqnum.(s' > s)

let seqnum_increments_metric () =
  let s = Seqnum.initial ~stamp:0 in
  let s = Seqnum.increment ~now_stamp:0 s in
  let s = Seqnum.increment ~now_stamp:0 s in
  checki "2 increments" 2 (Seqnum.increments s)

let seqnum_total_order_prop =
  let gen =
    QCheck.map
      (fun (a, b) -> { Seqnum.stamp = a; counter = b })
      QCheck.(pair (int_bound 1000) (int_bound 1000))
  in
  QCheck.Test.make ~name:"seqnum total order" ~count:500 (QCheck.triple gen gen gen)
    (fun (a, b, c) ->
      let trans =
        (not (Seqnum.(a <= b) && Seqnum.(b <= c))) || Seqnum.(a <= c)
      in
      let anti =
        (not (Seqnum.(a <= b) && Seqnum.(b <= a))) || Seqnum.equal a b
      in
      let total = Seqnum.(a <= b) || Seqnum.(b <= a) in
      trans && anti && total)

let seqnum_increment_monotone_prop =
  QCheck.Test.make ~name:"increment strictly increases" ~count:500
    QCheck.(pair (int_bound 100) (int_bound 50))
    (fun (stamp, times) ->
      let s0 = Seqnum.initial ~stamp in
      let rec go s k = if k = 0 then true
        else
          let s' = Seqnum.increment ~now_stamp:(stamp + 1) s in
          Seqnum.(s' > s) && go s' (k - 1)
      in
      go s0 times)

(* ---- Message sizes ---------------------------------------------------- *)

let data_sizes () =
  let msg =
    Data_msg.fresh ~flow_id:1 ~seq:2 ~src:(n 0) ~dst:(n 1) ~payload_bytes:512
      ~origin_time:Sim.Time.zero
  in
  checki "512B + data header" 540 (Wire.Data.encoded_length msg);
  checkb "uid" true (Data_msg.uid msg = (1, 2));
  checki "fresh has full ttl" Data_msg.default_ttl msg.Data_msg.ttl;
  checki "fresh has zero hops" 0 msg.Data_msg.hops;
  checki "hop counts up" 1 (Data_msg.hop msg).Data_msg.hops;
  (match Data_msg.decr_ttl msg with
  | Some m -> checki "ttl decremented" 63 m.Data_msg.ttl
  | None -> Alcotest.fail "ttl should not expire");
  checkb "ttl 1 expires" true (Data_msg.decr_ttl { msg with ttl = 1 } = None)

let ldr_sizes () =
  let rreq =
    Ldr_msg.Rreq
      {
        dst = n 1;
        dst_sn = None;
        rreq_id = 1;
        origin = n 0;
        origin_sn = Seqnum.initial ~stamp:0;
        fd = 10;
        answer_dist = 8;
        dist = 0;
        ttl = 5;
        reset = false;
        no_reverse = false;
        unicast_probe = false;
      }
  in
  checki "rreq" 44 (Wire.Ldr.encoded_length rreq);
  Alcotest.check Alcotest.string "kind" "RREQ" (Ldr_msg.kind rreq);
  let rrep =
    Ldr_msg.Rrep
      {
        dst = n 1;
        dst_sn = Seqnum.initial ~stamp:0;
        origin = n 0;
        rreq_id = 1;
        dist = 3;
        lifetime = Sim.Time.sec 3.;
        rrep_no_reverse = false;
      }
  in
  checki "rrep" 32 (Wire.Ldr.encoded_length rrep);
  let rerr = Ldr_msg.Rerr { unreachable = [ (n 1, None); (n 2, None) ] } in
  checki "rerr grows with dests" (4 + 24) (Wire.Ldr.encoded_length rerr);
  Alcotest.check Alcotest.string "rerr kind" "RERR" (Ldr_msg.kind rerr)

let aodv_sizes () =
  let rreq =
    Aodv_msg.Rreq
      { dst = n 1; dst_sn = None; rreq_id = 1; origin = n 0; origin_sn = 1;
        hop_count = 0; ttl = 5 }
  in
  checki "rreq rfc3561" 24 (Wire.Aodv.encoded_length rreq);
  let rrep =
    Aodv_msg.Rrep
      { dst = n 1; dst_sn = 3; origin = n 0; hop_count = 2; lifetime = Sim.Time.sec 3. }
  in
  checki "rrep rfc3561" 20 (Wire.Aodv.encoded_length rrep);
  checki "rerr" 12
    (Wire.Aodv.encoded_length (Aodv_msg.Rerr { unreachable = [ (n 1, 2) ] }))

let dsr_sizes () =
  let rreq =
    Dsr_msg.Rreq { origin = n 0; dst = n 5; rreq_id = 1; route = [ n 1; n 2 ]; ttl = 5 }
  in
  checki "rreq grows with route" (16 + 8) (Wire.Dsr.encoded_length rreq);
  let data =
    Dsr_msg.Data
      {
        sr_remaining = [ n 2; n 3 ];
        full_route = [ n 0; n 1; n 2; n 3 ];
        data =
          Data_msg.fresh ~flow_id:0 ~seq:0 ~src:(n 0) ~dst:(n 3)
            ~payload_bytes:512 ~origin_time:Sim.Time.zero;
        salvage = 0;
      }
  in
  (* DSR fixed header + SR option + 4 addresses + data header + payload *)
  checki "source-routed data" (8 + 16 + 540) (Wire.Dsr.encoded_length data);
  Alcotest.check Alcotest.string "data is DATA" "DATA" (Dsr_msg.kind data)

let olsr_sizes () =
  let hello = Olsr_msg.Hello { neighbors = [ (n 1, Olsr_msg.Sym); (n 2, Olsr_msg.Mpr) ] } in
  (* packet + message header + hello header, then one link-code block
     per populated neighbor kind *)
  checki "hello" (20 + 8 + 8) (Wire.Olsr.encoded_length hello);
  let tc =
    Olsr_msg.Tc
      { origin = n 0; msg_seq = 1; ttl = 255;
        tc = { tc_origin = n 0; ansn = 1; advertised = [ n 1; n 2; n 3 ] } }
  in
  checki "tc" (20 + 12) (Wire.Olsr.encoded_length tc);
  Alcotest.check Alcotest.string "tc kind" "TC" (Olsr_msg.kind tc)

let payload_classify () =
  let data =
    Payload.Data
      (Data_msg.fresh ~flow_id:0 ~seq:0 ~src:(n 0) ~dst:(n 1)
         ~payload_bytes:64 ~origin_time:Sim.Time.zero)
  in
  checkb "data is data" true (Payload.is_data data);
  let dsr_data =
    Payload.Dsr
      (Dsr_msg.Data
         {
           sr_remaining = [];
           full_route = [ n 0; n 1 ];
           data =
             Data_msg.fresh ~flow_id:0 ~seq:0 ~src:(n 0) ~dst:(n 1)
               ~payload_bytes:64 ~origin_time:Sim.Time.zero;
           salvage = 0;
         })
  in
  checkb "dsr data classifies as data" true (Payload.is_data dsr_data);
  let hello = Payload.Olsr (Olsr_msg.Hello { neighbors = [] }) in
  (match Payload.classify hello with
  | `Control "HELLO" -> ()
  | `Control other -> Alcotest.failf "wrong bucket %s" other
  | `Data _ -> Alcotest.fail "hello is not data");
  checkb "hello not data" false (Payload.is_data hello)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "packets"
    [
      ( "node_id",
        [
          Alcotest.test_case "basics" `Quick node_id_basics;
          Alcotest.test_case "containers" `Quick node_id_containers;
        ] );
      ( "seqnum",
        [
          Alcotest.test_case "ordering" `Quick seqnum_ordering;
          Alcotest.test_case "counter wrap restamps" `Quick seqnum_counter_wrap;
          Alcotest.test_case "increments metric" `Quick seqnum_increments_metric;
          qt seqnum_total_order_prop;
          qt seqnum_increment_monotone_prop;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "data" `Quick data_sizes;
          Alcotest.test_case "ldr" `Quick ldr_sizes;
          Alcotest.test_case "aodv" `Quick aodv_sizes;
          Alcotest.test_case "dsr" `Quick dsr_sizes;
          Alcotest.test_case "olsr" `Quick olsr_sizes;
          Alcotest.test_case "payload classify" `Quick payload_classify;
        ] );
    ]
