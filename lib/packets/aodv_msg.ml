type rreq = {
  dst : Node_id.t;
  dst_sn : int option;
  rreq_id : int;
  origin : Node_id.t;
  origin_sn : int;
  hop_count : int;
  ttl : int;
}

type rrep = {
  dst : Node_id.t;
  dst_sn : int;
  origin : Node_id.t;
  hop_count : int;
  lifetime : Sim.Time.t;
}

type rerr = { unreachable : (Node_id.t * int) list }

type t = Rreq of rreq | Rrep of rrep | Rerr of rerr | Rreq_agg of rreq list

let kind = function
  | Rreq _ | Rreq_agg _ -> "RREQ"
  | Rrep _ -> "RREP"
  | Rerr _ -> "RERR"

let rec pp fmt = function
  | Rreq_agg rs ->
      Format.fprintf fmt "aodv-rreq-agg[%d dests:@ %a]" (List.length rs)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        (List.map (fun r -> Rreq r) rs)
  | Rreq r ->
      Format.fprintf fmt "aodv-rreq[dst=%a id=(%a,%d) hops=%d ttl=%d]"
        Node_id.pp r.dst Node_id.pp r.origin r.rreq_id r.hop_count r.ttl
  | Rrep r ->
      Format.fprintf fmt "aodv-rrep[dst=%a sn=%d hops=%d to=%a]" Node_id.pp
        r.dst r.dst_sn r.hop_count Node_id.pp r.origin
  | Rerr { unreachable } ->
      Format.fprintf fmt "aodv-rerr[%d dests]" (List.length unreachable)
