(* Fixed-capacity ring buffer.  The backing array is allocated lazily at
   the first push (sized by the first element, so no dummy value is
   needed) and never grows — the capacity is the drop-tail bound.  A
   popped slot keeps its element until the ring wraps over it; at most
   [capacity] stale references is an accepted bound, traded for a
   Queue-free, allocation-free steady state. *)
type 'a t = {
  mutable buf : 'a array;  (* [||] until the first push *)
  capacity : int;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
  mutable drops : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ifq.create: non-positive capacity";
  { buf = [||]; capacity; head = 0; len = 0; drops = 0 }

let push t x =
  if t.len >= t.capacity then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    if Array.length t.buf = 0 then t.buf <- Array.make t.capacity x;
    t.buf.((t.head + t.len) mod t.capacity) <- x;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.head <- (t.head + 1) mod t.capacity;
    t.len <- t.len - 1;
    Some x
  end

let clear t =
  t.head <- 0;
  t.len <- 0

let length t = t.len
let is_empty t = t.len = 0
let drops t = t.drops
