(** Exact sample quantiles over a bounded reservoir.

    Keeps up to [capacity] samples (uniform reservoir sampling beyond
    that), answering arbitrary quantiles at read time.  Simulation runs
    produce at most a few hundred thousand latency samples, so a 64k
    reservoir gives sub-percent quantile error at negligible memory. *)

type t

val create : ?capacity:int -> rng_seed:int -> unit -> t
val add : t -> float -> unit
val count : t -> int
(** Total samples offered (not just retained). *)

val quantile : t -> float -> float
(** [quantile t q] for q in [0, 1]; 0 when empty.  Nearest-rank on the
    retained reservoir. *)

val median : t -> float
val p95 : t -> float
val p99 : t -> float
