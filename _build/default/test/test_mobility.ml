(* Tests for the mobility models. *)

open Sim

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-6)

let terrain = Geom.Terrain.create ~width:1000. ~height:500.

let static_never_moves () =
  let p = Geom.Vec2.v 10. 20. in
  let m = Mobility.static p in
  List.iter
    (fun t -> checkb "same spot" true (Geom.Vec2.equal p (Mobility.position m (Time.sec t))))
    [ 0.; 1.; 100.; 10_000. ]

let waypoint_stays_in_terrain () =
  let rng = Rng.create 42 in
  for _ = 1 to 10 do
    let start = Geom.Terrain.random_point terrain rng in
    let m =
      Mobility.waypoint ~terrain ~rng:(Rng.split rng) ~speed_min:1.
        ~speed_max:20. ~pause:(Time.sec 5.) ~start
    in
    for t = 0 to 500 do
      let p = Mobility.position m (Time.sec (float_of_int t)) in
      checkb "inside terrain" true (Geom.Terrain.contains terrain p)
    done
  done

let waypoint_respects_speed () =
  let rng = Rng.create 7 in
  let start = Geom.Vec2.v 500. 250. in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:1. ~speed_max:20.
      ~pause:(Time.sec 0.001) ~start
  in
  (* Displacement over any dt cannot exceed max speed x dt. *)
  let prev = ref (Mobility.position m Time.zero) in
  let dt = 0.5 in
  for i = 1 to 2000 do
    let p = Mobility.position m (Time.sec (dt *. float_of_int i)) in
    let moved = Geom.Vec2.dist !prev p in
    checkb "bounded speed" true (moved <= (20. *. dt) +. 1e-6);
    prev := p
  done

let waypoint_pauses () =
  let rng = Rng.create 9 in
  let start = Geom.Vec2.v 100. 100. in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:5. ~speed_max:5.
      ~pause:(Time.sec 10.) ~start
  in
  (* During the initial pause the node sits still. *)
  let p0 = Mobility.position m Time.zero in
  let p5 = Mobility.position m (Time.sec 5.) in
  let p9 = Mobility.position m (Time.sec 9.9) in
  checkb "paused at 5s" true (Geom.Vec2.equal p0 p5);
  checkb "paused at 9.9s" true (Geom.Vec2.equal p0 p9)

let waypoint_eventually_moves () =
  let rng = Rng.create 10 in
  let start = Geom.Vec2.v 100. 100. in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:5. ~speed_max:10.
      ~pause:(Time.sec 1.) ~start
  in
  let p = Mobility.position m (Time.sec 60.) in
  checkb "moved by 60s" false (Geom.Vec2.equal p start)

let monotonicity_enforced () =
  let rng = Rng.create 11 in
  let m =
    Mobility.waypoint ~terrain ~rng ~speed_min:1. ~speed_max:2.
      ~pause:(Time.sec 1.) ~start:(Geom.Vec2.v 0. 0.)
  in
  ignore (Mobility.position m (Time.sec 10.));
  Alcotest.check_raises "backwards query"
    (Invalid_argument "Mobility.position: query times must be non-decreasing")
    (fun () -> ignore (Mobility.position m (Time.sec 5.)))

let random_walk_in_terrain () =
  let rng = Rng.create 13 in
  let m =
    Mobility.random_walk ~terrain ~rng ~speed:10. ~epoch:(Time.sec 2.)
      ~start:(Geom.Vec2.v 999. 499.)
  in
  for t = 0 to 300 do
    let p = Mobility.position m (Time.sec (float_of_int t)) in
    checkb "inside" true (Geom.Terrain.contains terrain p)
  done

let scripted_follows_waypoints () =
  let m =
    Mobility.scripted
      [
        (Time.sec 0., Geom.Vec2.v 0. 0.);
        (Time.sec 10., Geom.Vec2.v 100. 0.);
        (Time.sec 20., Geom.Vec2.v 100. 100.);
      ]
  in
  let p = Mobility.position m (Time.sec 5.) in
  checkf "halfway x" 50. p.Geom.Vec2.x;
  checkf "halfway y" 0. p.Geom.Vec2.y;
  let q = Mobility.position m (Time.sec 15.) in
  checkf "second leg x" 100. q.Geom.Vec2.x;
  checkf "second leg y" 50. q.Geom.Vec2.y;
  let r = Mobility.position m (Time.sec 100.) in
  checkb "constant after last" true (Geom.Vec2.equal r (Geom.Vec2.v 100. 100.))

let scripted_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Mobility.scripted: empty trajectory")
    (fun () -> ignore (Mobility.scripted []));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Mobility.scripted: times must increase") (fun () ->
      ignore
        (Mobility.scripted
           [ (Time.sec 5., Geom.Vec2.zero); (Time.sec 5., Geom.Vec2.zero) ]))

let waypoint_validation () =
  Alcotest.check_raises "bad speeds"
    (Invalid_argument "Mobility.waypoint: need 0 < speed_min <= speed_max")
    (fun () ->
      ignore
        (Mobility.waypoint ~terrain ~rng:(Rng.create 1) ~speed_min:0.
           ~speed_max:5. ~pause:Time.zero ~start:Geom.Vec2.zero))

(* qcheck: waypoint containment for arbitrary seeds and query sequences. *)
let waypoint_contained_prop =
  QCheck.Test.make ~name:"waypoint always inside terrain" ~count:50
    QCheck.(pair small_int (list_of_size (QCheck.Gen.return 100) (float_bound_inclusive 10.)))
    (fun (seed, dts) ->
      let rng = Rng.create seed in
      let m =
        Mobility.waypoint ~terrain ~rng ~speed_min:1. ~speed_max:20.
          ~pause:(Time.sec 2.) ~start:(Geom.Terrain.random_point terrain rng)
      in
      let t = ref Time.zero in
      List.for_all
        (fun dt ->
          t := Time.add !t (Time.sec dt);
          Geom.Terrain.contains terrain (Mobility.position m !t))
        dts)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mobility"
    [
      ( "models",
        [
          Alcotest.test_case "static" `Quick static_never_moves;
          Alcotest.test_case "waypoint stays inside" `Quick waypoint_stays_in_terrain;
          Alcotest.test_case "waypoint speed bound" `Quick waypoint_respects_speed;
          Alcotest.test_case "waypoint pauses" `Quick waypoint_pauses;
          Alcotest.test_case "waypoint moves" `Quick waypoint_eventually_moves;
          Alcotest.test_case "monotone queries" `Quick monotonicity_enforced;
          Alcotest.test_case "random walk inside" `Quick random_walk_in_terrain;
          Alcotest.test_case "scripted" `Quick scripted_follows_waypoints;
          Alcotest.test_case "scripted validation" `Quick scripted_validation;
          Alcotest.test_case "waypoint validation" `Quick waypoint_validation;
          qt waypoint_contained_prop;
        ] );
    ]
