(* The multipath extension in action: LDR vs LDR+LFI-alternates on the
   same mobile scenario.  With alternates, link breaks fail over locally
   instead of triggering route rediscovery floods.

   Run with: dune exec examples/multipath_failover.exe *)

open Experiment

let scenario protocol seed =
  {
    Scenario.label = "multipath";
    num_nodes = 40;
    terrain = Geom.Terrain.create ~width:1200. ~height:300.;
    placement = Scenario.Uniform;
    speed_min = 1.;
    speed_max = 18.;
    pause = Sim.Time.sec 0.;
    duration = Sim.Time.sec 90.;
    traffic =
      {
        Traffic.num_flows = 8;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Sim.Time.sec 60.;
        startup_window = Sim.Time.sec 5.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = true;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

let run name protocol =
  let p = Sweep.empty_point () in
  let promotions = ref 0 and loops = ref 0 in
  List.iter
    (fun seed ->
      let o = Runner.run (scenario protocol seed) in
      Sweep.add_summary p o.summary;
      promotions := !promotions + Metrics.event_count o.metrics "alternate_promoted";
      loops := !loops + Metrics.loop_violations o.metrics)
    [ 1; 2; 3 ];
  let mean w = Stats.Welford.mean w in
  Format.printf "%-14s delivery %.3f  latency %6.1f ms  rreq-load %.3f  promotions %4d  loops %d@."
    name
    (mean p.Sweep.delivery_ratio)
    (mean p.Sweep.latency_ms)
    (mean p.Sweep.rreq_load)
    !promotions !loops;
  !loops

let () =
  Format.printf
    "40 mobile nodes, 8 flows, 90 s, 3 seeds, loop auditor on every table write:@.";
  let l1 = run "LDR" Scenario.ldr in
  let l2 = run "LDR+multipath" Scenario.ldr_multipath in
  if l1 + l2 > 0 then begin
    Format.printf "FAIL: loops detected@.";
    exit 1
  end
  else
    Format.printf
      "OK: failover happened without rediscovery and without loops@."
