(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4), plus an ablation study over LDR's
   optimizations and a Bechamel microbenchmark suite over the simulation
   kernels.

     dune exec bench/main.exe                 -- reduced scale, everything
     dune exec bench/main.exe -- table1 fig7  -- selected experiments
     dune exec bench/main.exe -- --full all   -- paper-scale parameters
     dune exec bench/main.exe -- --quick all  -- smoke-test scale

   The paper's full scale is 900 s runs x 10 trials x 7 pause times; the
   default here is a calibrated reduction (shorter runs, fewer trials,
   trend-defining pause times) whose shapes match; see EXPERIMENTS.md. *)

open Experiment
module Time = Sim.Time

type scale = {
  duration : float;  (** seconds of simulated time per run *)
  trials : int;
  pauses : float list;  (** pause times, seconds *)
}

let full_scale =
  { duration = 900.; trials = 10; pauses = [ 0.; 30.; 60.; 120.; 300.; 600.; 900. ] }

let default_scale = { duration = 120.; trials = 2; pauses = [ 0.; 120.; 900. ] }
let quick_scale = { duration = 30.; trials = 1; pauses = [ 0.; 900. ] }

let protocols =
  [
    Scenario.ldr;
    Scenario.ldr_agg;
    Scenario.aodv;
    Scenario.aodv_agg;
    Scenario.dsr;
    Scenario.olsr;
  ]

let scenario_for ~scale ~nodes ~flows protocol =
  let base =
    if nodes = 100 then Scenario.paper_100 protocol
    else Scenario.paper_50 protocol
  in
  base
  |> Scenario.with_flows flows
  |> Scenario.with_duration (Time.sec scale.duration)

let point ~scale ~nodes ~flows ~pause protocol =
  Sweep.trials
    (scenario_for ~scale ~nodes ~flows protocol
    |> Scenario.with_pause (Time.sec pause))
    ~n:scale.trials

let fmt_ci w = Stats.Table.mean_ci ~mean:(Stats.Welford.mean w) ~ci:(Stats.Welford.ci95 w)

let heading title = Printf.printf "\n==== %s ====\n%!" title

(* Optional plot-ready CSV output (--csv DIR). *)
let csv_dir : string option ref = ref None

let write_csv ~name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      output_string oc (String.concat "," header ^ "\n");
      List.iter (fun row -> output_string oc (String.concat "," row ^ "\n")) rows;
      close_out oc;
      Printf.printf "  (wrote %s)\n%!" path

let csv_point p =
  [
    Printf.sprintf "%.6f" (Stats.Welford.mean p.Sweep.delivery_ratio);
    Printf.sprintf "%.6f" (Stats.Welford.ci95 p.Sweep.delivery_ratio);
    Printf.sprintf "%.3f" (Stats.Welford.mean p.Sweep.latency_ms);
    Printf.sprintf "%.4f" (Stats.Welford.mean p.Sweep.network_load);
    Printf.sprintf "%.4f" (Stats.Welford.mean p.Sweep.rreq_load);
    Printf.sprintf "%.4f" (Stats.Welford.mean p.Sweep.mean_dest_seqno);
  ]

let csv_point_header =
  [ "delivery"; "delivery_ci95"; "latency_ms"; "network_load"; "rreq_load";
    "mean_dest_seqno" ]

(* ---- Table 1: summary over all pause times, per traffic load ---------- *)

let table1 ~scale () =
  heading
    "Table 1: per-protocol summary (mean ± 95% CI over pause times, 50-node scenario)";
  List.iter
    (fun flows ->
      Printf.printf "\n-- %d flows (%g pps aggregate) --\n" flows
        (float_of_int flows *. 4.);
      let rows =
        List.map
          (fun protocol ->
            let agg =
              List.fold_left
                (fun acc pause ->
                  Sweep.merge_points acc
                    (point ~scale ~nodes:50 ~flows ~pause protocol))
                (Sweep.empty_point ())
                scale.pauses
            in
            [
              Scenario.protocol_name protocol;
              fmt_ci agg.Sweep.delivery_ratio;
              fmt_ci agg.Sweep.latency_ms;
              fmt_ci agg.Sweep.network_load;
              fmt_ci agg.Sweep.rreq_load;
              fmt_ci agg.Sweep.rrep_init;
              fmt_ci agg.Sweep.rrep_recv;
            ])
          protocols
      in
      print_endline
        (Stats.Table.render
           ~header:
             [ "protocol"; "delivery"; "latency ms"; "net load"; "rreq load";
               "rrep init/rreq"; "rrep recv/rreq" ]
           rows))
    [ 10; 30 ]

(* ---- Figures 2-5: delivery ratio vs pause time ------------------------- *)

let delivery_figure ~scale ~nodes ~flows title =
  heading
    (Printf.sprintf "%s: delivery ratio vs pause time (%d nodes, %d flows)"
       title nodes flows);
  let series =
    List.map
      (fun protocol ->
        ( Scenario.protocol_name protocol,
          List.map (fun pause -> point ~scale ~nodes ~flows ~pause protocol)
            scale.pauses ))
      protocols
  in
  let rows =
    List.mapi
      (fun i pause ->
        string_of_int (int_of_float pause)
        :: List.map
             (fun (_, pts) -> fmt_ci (List.nth pts i).Sweep.delivery_ratio)
             series)
      scale.pauses
  in
  print_endline
    (Stats.Table.render ~header:("pause s" :: List.map fst series) rows);
  List.iter
    (fun (name, pts) ->
      write_csv
        ~name:
          (Printf.sprintf "%s-%s"
             (String.map (fun c -> if c = ' ' then '_' else c)
                (String.lowercase_ascii title))
             name)
        ~header:("pause_s" :: csv_point_header)
        (List.map2
           (fun pause p -> Printf.sprintf "%g" pause :: csv_point p)
           scale.pauses pts))
    series

let fig2 ~scale () = delivery_figure ~scale ~nodes:50 ~flows:10 "Fig 2"
let fig3 ~scale () = delivery_figure ~scale ~nodes:50 ~flows:30 "Fig 3"
let fig4 ~scale () = delivery_figure ~scale ~nodes:100 ~flows:10 "Fig 4"
let fig5 ~scale () = delivery_figure ~scale ~nodes:100 ~flows:30 "Fig 5"

(* ---- Figure 6: the QualNet cross-check (DSR draft 3 vs draft 7) -------- *)

let fig6 ~scale () =
  heading
    "Fig 6: Fig-3 cross-check, DSR with (draft 3) and without (draft 7) cache replies";
  let variants =
    [
      ("DSR/cache-replies", Scenario.dsr);
      ("DSR/no-cache-replies", Scenario.dsr_draft7);
      ("LDR (reference)", Scenario.ldr);
    ]
  in
  let rows =
    List.map
      (fun pause ->
        string_of_int (int_of_float pause)
        :: List.map
             (fun (_, p) ->
               fmt_ci
                 (point ~scale ~nodes:50 ~flows:30 ~pause p).Sweep.delivery_ratio)
             variants)
      scale.pauses
  in
  print_endline
    (Stats.Table.render ~header:("pause s" :: List.map fst variants) rows)

(* ---- Figure 7: mean destination sequence number ------------------------- *)

let fig7 ~scale () =
  heading "Fig 7: mean destination sequence number, LDR vs AODV (50 nodes)";
  List.iter
    (fun flows ->
      Printf.printf "\n-- %d flows --\n" flows;
      let rows =
        List.map
          (fun pause ->
            string_of_int (int_of_float pause)
            :: List.map
                 (fun p ->
                   fmt_ci
                     (point ~scale ~nodes:50 ~flows ~pause p)
                       .Sweep.mean_dest_seqno)
                 [ Scenario.ldr; Scenario.aodv ])
          scale.pauses
      in
      print_endline (Stats.Table.render ~header:[ "pause s"; "LDR"; "AODV" ] rows))
    [ 10; 30 ]

(* ---- Ablation: LDR's Section-4 optimizations --------------------------- *)

let ablation ~scale () =
  heading "Ablation: LDR optimizations (50 nodes, 10 flows, pause 0)";
  let variants =
    [
      ("all on (paper)", Ldr.Config.default);
      ("no multiple-RREPs", { Ldr.Config.default with opt_multiple_rreps = false });
      ("no request-as-error", { Ldr.Config.default with opt_request_as_error = false });
      ("no reduced-distance", { Ldr.Config.default with opt_reduced_distance = false });
      ("no min-lifetime", { Ldr.Config.default with opt_min_lifetime = false });
      ("no optimal-TTL", { Ldr.Config.default with opt_optimal_ttl = false });
      ("all off (plain)", Ldr.Config.plain);
      ("multipath extension", { Ldr.Config.default with multipath = true });
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let p = point ~scale ~nodes:50 ~flows:10 ~pause:0. (Scenario.Ldr config) in
        [
          name;
          fmt_ci p.Sweep.delivery_ratio;
          fmt_ci p.Sweep.latency_ms;
          fmt_ci p.Sweep.network_load;
          fmt_ci p.Sweep.rreq_load;
        ])
      variants
  in
  print_endline
    (Stats.Table.render
       ~header:[ "variant"; "delivery"; "latency ms"; "net load"; "rreq load" ]
       rows)

(* ---- Aggregation: RREQ batching / suppression / RREP fan-out ------------ *)

(* Per-seed [Runner.run ~monitor:true] — {!Sweep} never arms the
   invariant monitor, and the whole point of this table is showing the
   loop-freedom monitor stays silent while the aggregation layer
   rewrites and fans out RREPs.  Alongside the paper's metrics it
   accumulates the layer's own event counters. *)

type agg_row = {
  ar_point : Sweep.point;
  ar_suppressed : int;
  ar_aggregated : int;
  ar_fanout : int;
  ar_violations : int;
}

let monitored_point ~scale ~nodes ~flows ~pause protocol =
  let sc =
    scenario_for ~scale ~nodes ~flows protocol
    |> Scenario.with_pause (Time.sec pause)
  in
  let p = Sweep.empty_point () in
  let suppressed = ref 0 and aggregated = ref 0 in
  let fanout = ref 0 and violations = ref 0 in
  for i = 0 to scale.trials - 1 do
    let o =
      Runner.run ~monitor:true (Scenario.with_seed (sc.Scenario.seed + i) sc)
    in
    Sweep.add_summary p o.Runner.summary;
    let count = Metrics.event_count o.Runner.metrics in
    suppressed := !suppressed + count "rreq_suppressed";
    aggregated := !aggregated + count "rreq_aggregated";
    fanout := !fanout + count "rrep_fanout";
    violations := !violations + o.Runner.invariant_violations
  done;
  {
    ar_point = p;
    ar_suppressed = !suppressed;
    ar_aggregated = !aggregated;
    ar_fanout = !fanout;
    ar_violations = !violations;
  }

let aggregation ~scale () =
  heading
    "Aggregation: stock vs aggregated request floods (50 nodes, pause 0, monitor armed)";
  List.iter
    (fun flows ->
      Printf.printf "\n-- %d flows --\n" flows;
      let per_run c = Printf.sprintf "%.1f" (float_of_int c /. float_of_int scale.trials) in
      let rows =
        List.map
          (fun protocol ->
            let r = monitored_point ~scale ~nodes:50 ~flows ~pause:0. protocol in
            [
              Scenario.protocol_name protocol;
              fmt_ci r.ar_point.Sweep.delivery_ratio;
              fmt_ci r.ar_point.Sweep.latency_ms;
              fmt_ci r.ar_point.Sweep.network_load;
              fmt_ci r.ar_point.Sweep.rreq_load;
              per_run r.ar_suppressed;
              per_run r.ar_aggregated;
              per_run r.ar_fanout;
              string_of_int r.ar_violations;
            ])
          [ Scenario.ldr; Scenario.ldr_agg; Scenario.aodv; Scenario.aodv_agg ]
      in
      print_endline
        (Stats.Table.render
           ~header:
             [ "protocol"; "delivery"; "latency ms"; "net load"; "rreq load";
               "suppr/run"; "piggyb/run"; "fanout/run"; "monitor viol" ]
           rows))
    [ 10; 30; 100 ]

(* ---- Discovery: floods per delivered packet, before/after the fixes ----- *)

(* The pre-fix ring-search behaviour is emulated where configuration
   can reach it: TIMEOUT_BUFFER = 0 reproduces the premature-retry bug
   (the per-attempt timer expiring with zero slack, so in-flight RREPs
   lose the race against the next flood).  The old [next_ttl] threshold
   overshoot (TTL 7 -> 9 -> ... instead of the RFC's jump to
   NET_DIAMETER) is not config-reachable post-fix; its effect is folded
   into the post-fix schedule these rows measure. *)

type discovery_row = {
  dr_label : string;
  dr_floods : float;  (* rreq_init per delivered data packet *)
  dr_rreq_tx : float;  (* hop-wise RREQ transmissions per delivered *)
  dr_delivery : float;
  dr_latency_ms : float;
}

let discovery_bench_json rows =
  let row r =
    Printf.sprintf
      "    { \"variant\": %S, \"floods_per_delivered\": %.4f, \
       \"rreq_tx_per_delivered\": %.4f, \"delivery\": %.4f, \
       \"latency_ms\": %.2f }"
      r.dr_label r.dr_floods r.dr_rreq_tx r.dr_delivery r.dr_latency_ms
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"discovery\",";
      "  \"scenario\": \"50 nodes, 30 flows, pause 0\",";
      "  \"note\": \"pre-fix variants emulate the shipped timeout bug via \
       TIMEOUT_BUFFER = 0; the next_ttl threshold-overshoot bug is not \
       config-reachable after the fix\",";
      "  \"rows\": [";
      String.concat ",\n" (List.map row rows);
      "  ]";
      "}";
    ]

let discovery ~scale () =
  heading
    "Discovery: route-request floods per delivered packet (50 nodes, 30 flows, pause 0)";
  let pre_ring = { Routing.Discovery.default with timeout_buffer = 0 } in
  let variants =
    [
      ("LDR pre-fix timeouts",
       Scenario.Ldr { Ldr.Config.default with ring = pre_ring });
      ("LDR", Scenario.ldr);
      ("LDR-AGG", Scenario.ldr_agg);
      ("AODV pre-fix timeouts",
       Scenario.Aodv { Aodv.default_config with ring = pre_ring });
      ("AODV", Scenario.aodv);
      ("AODV-AGG", Scenario.aodv_agg);
    ]
  in
  let results =
    List.map
      (fun (label, protocol) ->
        let sc =
          scenario_for ~scale ~nodes:50 ~flows:30 protocol
          |> Scenario.with_pause (Time.sec 0.)
        in
        let floods = ref 0 and rreq_tx = ref 0 and delivered = ref 0 in
        let delivery = Stats.Welford.create () in
        let latency = Stats.Welford.create () in
        for i = 0 to scale.trials - 1 do
          let o = Runner.run (Scenario.with_seed (sc.Scenario.seed + i) sc) in
          floods := !floods + Metrics.event_count o.Runner.metrics "rreq_init";
          rreq_tx :=
            !rreq_tx
            + (try List.assoc "RREQ" (Metrics.control_by_kind o.Runner.metrics)
               with Not_found -> 0);
          delivered := !delivered + Metrics.delivered o.Runner.metrics;
          Stats.Welford.add delivery o.Runner.summary.Metrics.s_delivery_ratio;
          Stats.Welford.add latency o.Runner.summary.Metrics.s_latency_ms
        done;
        let per_delivered c =
          if !delivered = 0 then 0. else float_of_int c /. float_of_int !delivered
        in
        {
          dr_label = label;
          dr_floods = per_delivered !floods;
          dr_rreq_tx = per_delivered !rreq_tx;
          dr_delivery = Stats.Welford.mean delivery;
          dr_latency_ms = Stats.Welford.mean latency;
        })
      variants
  in
  print_endline
    (Stats.Table.render
       ~header:
         [ "variant"; "floods/delivered"; "rreq tx/delivered"; "delivery";
           "latency ms" ]
       (List.map
          (fun r ->
            [
              r.dr_label;
              Printf.sprintf "%.4f" r.dr_floods;
              Printf.sprintf "%.4f" r.dr_rreq_tx;
              Printf.sprintf "%.4f" r.dr_delivery;
              Printf.sprintf "%.2f" r.dr_latency_ms;
            ])
          results));
  let oc = open_out "BENCH_discovery.json" in
  output_string oc (discovery_bench_json results);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_discovery.json)\n%!"

(* ---- Channel scaling: naive O(N) scan vs the spatial grid --------------- *)

(* A fixed mobile scenario grown to N nodes at constant node density
   (the paper's 5:1 terrain aspect), with flows scaled alongside so the
   offered load per node is constant.  Every N runs under the naive
   linear-scan channel, the spatial grid, and the struct-of-arrays
   layout (shared position planes + incremental cell index) — checking
   the outcomes are byte-identical and recording the wall-clock and
   allocation trajectories into BENCH_channel.json.  The naive scan is
   quadratic in N, so it is skipped past [channel_naive_cap]; the
   2000/5000-node points exist to put the SoA trajectory on one axis. *)

let channel_node_counts = [ 50; 200; 500; 1000; 2000; 5000 ]
let channel_naive_cap = 1000
let channel_duration_s = 60.

(* Sparser than the paper's boxes (the paper packs ~105 nodes inside one
   carrier-sense disk, so per-transmission contention work swamps the
   neighbour scan at any index).  200 m spacing keeps the decode-range
   degree near 6 — floods still percolate — while the scan itself is the
   hot path, which is exactly what this benchmark tracks. *)
let channel_area_per_node = 55_000.

let channel_scenario ~nodes =
  let height = sqrt (float_of_int nodes *. channel_area_per_node /. 5.) in
  let terrain = Geom.Terrain.create ~width:(5. *. height) ~height in
  {
    (Scenario.paper_50 Scenario.ldr) with
    Scenario.label = Printf.sprintf "channel-%dn" nodes;
    num_nodes = nodes;
    terrain;
    duration = Time.sec channel_duration_s;
    net = { Net.Params.default with Net.Params.cs_range_m = 350. };
    traffic =
      { Traffic.default_config with Traffic.num_flows = 10 };
  }

(* Runs are deterministic, so repetitions produce identical outcomes;
   the minimum wall time is the repetition least disturbed by the OS.
   Allocation counters come from the last repetition — they are as
   deterministic as the run itself. *)
let timed_run ?(reps = 3) sc =
  let best = ref infinity in
  let out = ref None in
  let minor = ref 0. in
  let promoted = ref 0. in
  for _ = 1 to reps do
    let p0 = (Gc.quick_stat ()).Gc.promoted_words in
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let o = Runner.run sc in
    let dt = Unix.gettimeofday () -. t0 in
    minor := Gc.minor_words () -. m0;
    promoted := (Gc.quick_stat ()).Gc.promoted_words -. p0;
    if dt < !best then best := dt;
    out := Some o
  done;
  (!best, Option.get !out, !minor, !promoted)

let identical_outcomes (a : Runner.outcome) (b : Runner.outcome) =
  Stdlib.compare a.Runner.summary b.Runner.summary = 0
  && a.Runner.events_processed = b.Runner.events_processed
  && a.Runner.transmissions = b.Runner.transmissions
  && a.Runner.mac_queue_drops = b.Runner.mac_queue_drops
  && a.Runner.mac_unicast_failures = b.Runner.mac_unicast_failures

type channel_point = {
  cp_nodes : int;
  cp_naive_s : float option;  (* None past the quadratic-scan cap *)
  cp_grid_s : float;
  cp_soa_s : float;
  cp_identical : bool;
  cp_transmissions : int;
  cp_events : int;
  cp_minor_words : float;  (* grid run *)
  cp_promoted_words : float;
  cp_soa_minor_words : float;
  cp_soa_promoted_words : float;
}

let channel_bench_json points =
  let point p =
    let ev = float_of_int p.cp_events in
    Printf.sprintf
      "    { \"nodes\": %d, \"naive_s\": %s, \"grid_s\": %.4f, \
       \"soa_s\": %.4f, \"speedup\": %s, \"soa_speedup_vs_grid\": %.2f, \
       \"identical\": %b, \"transmissions\": %d, \"events\": %d, \
       \"minor_words\": %.0f, \"promoted_words\": %.0f, \
       \"minor_words_per_event\": %.1f, \"soa_minor_words\": %.0f, \
       \"soa_promoted_words\": %.0f, \"soa_minor_words_per_event\": %.1f }"
      p.cp_nodes
      (match p.cp_naive_s with
      | Some s -> Printf.sprintf "%.4f" s
      | None -> "null")
      p.cp_grid_s p.cp_soa_s
      (match p.cp_naive_s with
      | Some s -> Printf.sprintf "%.2f" (s /. p.cp_grid_s)
      | None -> "null")
      (p.cp_grid_s /. p.cp_soa_s)
      p.cp_identical p.cp_transmissions p.cp_events p.cp_minor_words
      p.cp_promoted_words
      (p.cp_minor_words /. ev)
      p.cp_soa_minor_words p.cp_soa_promoted_words
      (p.cp_soa_minor_words /. ev)
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"channel-scaling\",";
      Printf.sprintf "  \"scenario\": \"LDR random-waypoint, %g s simulated, %g m2/node, 10 flows\","
        channel_duration_s channel_area_per_node;
      Printf.sprintf
        "  \"naive_note\": \"the O(N)-scan channel is quadratic in N and \
         skipped past %d nodes; soa = shared position planes + incremental \
         cell index, digest-checked against both other modes\","
        channel_naive_cap;
      "  \"points\": [";
      String.concat ",\n" (List.map point points);
      "  ]";
      "}";
    ]

let channel_scaling ~scale:_ () =
  heading
    "Channel scaling: naive O(N) scan vs spatial grid vs struct-of-arrays (byte-identical outcomes)";
  let points =
    List.map
      (fun nodes ->
        let sc = channel_scenario ~nodes in
        let naive =
          if nodes <= channel_naive_cap then
            let s, o, _, _ = timed_run (Scenario.with_naive_channel true sc) in
            Some (s, o)
          else None
        in
        let grid_s, og, minor, promoted = timed_run sc in
        let soa_s, os, s_minor, s_promoted =
          timed_run (Scenario.with_soa true sc)
        in
        let identical =
          identical_outcomes og os
          && match naive with
             | Some (_, on) -> identical_outcomes on og
             | None -> true
        in
        if not identical then
          Printf.printf "  !! %d nodes: channel-mode outcomes DIVERGE\n%!"
            nodes;
        {
          cp_nodes = nodes;
          cp_naive_s = Option.map fst naive;
          cp_grid_s = grid_s;
          cp_soa_s = soa_s;
          cp_identical = identical;
          cp_transmissions = og.Runner.transmissions;
          cp_events = og.Runner.events_processed;
          cp_minor_words = minor;
          cp_promoted_words = promoted;
          cp_soa_minor_words = s_minor;
          cp_soa_promoted_words = s_promoted;
        })
      channel_node_counts
  in
  let rows =
    List.map
      (fun p ->
        let ev = float_of_int p.cp_events in
        [
          string_of_int p.cp_nodes;
          (match p.cp_naive_s with
          | Some s -> Printf.sprintf "%.3f" s
          | None -> "-");
          Printf.sprintf "%.3f" p.cp_grid_s;
          Printf.sprintf "%.3f" p.cp_soa_s;
          Printf.sprintf "%.1f" (p.cp_minor_words /. ev);
          Printf.sprintf "%.1f" (p.cp_soa_minor_words /. ev);
          (if p.cp_identical then "yes" else "NO");
          string_of_int p.cp_transmissions;
        ])
      points
  in
  print_endline
    (Stats.Table.render
       ~header:
         [ "nodes"; "naive s"; "grid s"; "soa s"; "minW/ev"; "soa minW/ev";
           "identical"; "tx" ]
       rows);
  let oc = open_out "BENCH_channel.json" in
  output_string oc (channel_bench_json points);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_channel.json)\n%!"

(* ---- City scale: struct-of-arrays node state and the new families ------- *)

(* Two parts, both on the channel-scaling density (5:1 aspect, 10
   flows, grid channel):

   - Layout: the scenario at growing N under both node-state layouts —
     per-node records (boxed positions, full grid rebuilds) and
     struct-of-arrays (shared unboxed position planes, incremental
     cell index) — with digest equality as the gate.  The 1000-node
     row carries the allocation before/after this PR tracks: the
     committed pre-SoA BENCH_channel.json measured 31,109,620 minor
     words over 438,265 events = 71.0 words/event on the record path.
     The default run tops out at the 10k-node, 60 s point.
   - Families: one delivery/overhead row per scenario family —
     waypoint, Manhattan grid, RPGM groups, shadowing, churn,
     partition-then-heal — on the SoA path with the LDR invariant
     monitor armed throughout (churn's crash-rebooted sequence numbers
     are the van Glabbeek loop stressor). *)

let scale_alloc_before_1000n = 71.0

type layout_point = {
  lp_nodes : int;
  lp_record_s : float;
  lp_soa_s : float;
  lp_identical : bool;
  lp_events : int;
  lp_transmissions : int;
  lp_delivery : float;
  lp_record_minor_per_ev : float;
  lp_soa_minor_per_ev : float;
  lp_record_promoted_per_ev : float;
  lp_soa_promoted_per_ev : float;
}

type family_row = {
  fr_name : string;
  fr_delivery : float;
  fr_latency_ms : float;
  fr_network_load : float;
  fr_byte_load : float;
  fr_violations : int;
  fr_events : int;
}

(* The family sweep uses a much denser terrain than the channel-scaling
   one: ~15,000 m^2/node puts the mean decode-range degree around 13,
   comfortably above the continuum-percolation threshold, so the network
   is connected, delivery figures are meaningful, and the partition wall
   actually severs live paths (at channel density the network is already
   fragmented and a wall through it changes nothing). *)
let scale_family_area_per_node = 15_000.

let scale_families ~nodes ~duration =
  let height =
    sqrt (float_of_int nodes *. scale_family_area_per_node /. 5.)
  in
  let terrain = Geom.Terrain.create ~width:(5. *. height) ~height in
  let base =
    {
      (channel_scenario ~nodes) with
      Scenario.label = Printf.sprintf "scale-%dn" nodes;
      terrain;
      duration = Time.sec duration;
    }
    |> Scenario.with_soa true
  in
  let manhattan = Scenario.Manhattan { spacing = 200. } in
  let rpgm =
    Scenario.Rpgm { groups = Stdlib.max 2 (nodes / 50); radius = 100. }
  in
  let partition =
    {
      Scenario.part_at = Time.sec (duration /. 4.);
      part_heal = Time.sec (duration *. 3. /. 4.);
      part_x_frac = 0.5;
    }
  in
  [
    ("waypoint", base);
    ("manhattan", Scenario.with_mobility manhattan base);
    ("rpgm", Scenario.with_mobility rpgm base);
    ("waypoint+shadow",
     Scenario.with_shadowing (Some Scenario.default_shadowing) base);
    ("waypoint+churn",
     Scenario.with_churn (Some Scenario.default_churn) base);
    ("manhattan+churn",
     base
     |> Scenario.with_mobility manhattan
     |> Scenario.with_churn (Some Scenario.default_churn));
    ("partition-heal", Scenario.with_partition (Some partition) base);
  ]

let scale_bench_json ~family_nodes ~family_duration layout families =
  let lp p =
    Printf.sprintf
      "    { \"nodes\": %d, \"record_s\": %.4f, \"soa_s\": %.4f, \
       \"speedup\": %.2f, \"identical\": %b, \"events\": %d, \
       \"events_per_s_soa\": %.0f, \"transmissions\": %d, \
       \"delivery_ratio\": %.4f, \"minor_words_per_event_record\": %.1f, \
       \"minor_words_per_event_soa\": %.1f, \
       \"promoted_words_per_event_record\": %.2f, \
       \"promoted_words_per_event_soa\": %.2f }"
      p.lp_nodes p.lp_record_s p.lp_soa_s
      (p.lp_record_s /. p.lp_soa_s)
      p.lp_identical p.lp_events
      (float_of_int p.lp_events /. p.lp_soa_s)
      p.lp_transmissions p.lp_delivery p.lp_record_minor_per_ev
      p.lp_soa_minor_per_ev p.lp_record_promoted_per_ev
      p.lp_soa_promoted_per_ev
  in
  let fr r =
    Printf.sprintf
      "    { \"family\": %S, \"delivery\": %.4f, \"latency_ms\": %.2f, \
       \"network_load\": %.4f, \"byte_load\": %.1f, \
       \"monitor_violations\": %d, \"events\": %d }"
      r.fr_name r.fr_delivery r.fr_latency_ms r.fr_network_load
      r.fr_byte_load r.fr_violations r.fr_events
  in
  let alloc_1000n =
    match List.find_opt (fun p -> p.lp_nodes = 1000) layout with
    | None -> []
    | Some p ->
        [
          Printf.sprintf
            "  \"alloc_1000n\": { \"minor_words_per_event_before\": %.1f, \
             \"minor_words_per_event_record\": %.1f, \
             \"minor_words_per_event_soa\": %.1f, \
             \"reduction_pct_vs_before\": %.1f },"
            scale_alloc_before_1000n p.lp_record_minor_per_ev
            p.lp_soa_minor_per_ev
            (100.
            *. (scale_alloc_before_1000n -. p.lp_soa_minor_per_ev)
            /. scale_alloc_before_1000n);
        ]
  in
  String.concat "\n"
    ([
       "{";
       "  \"benchmark\": \"city-scale\",";
       Printf.sprintf
         "  \"scenario\": \"LDR, %g m2/node (5:1 aspect), 10 flows, grid \
          channel; soa = shared unboxed position planes + incremental \
          cell index + flat MAC counter planes\","
         channel_area_per_node;
       Printf.sprintf
         "  \"families_scenario\": \"%d nodes, %g s simulated, monitor \
          armed, soa layout\","
         family_nodes family_duration;
     ]
    @ alloc_1000n
    @ [ "  \"layout_points\": [" ]
    @ [ String.concat ",\n" (List.map lp layout) ]
    @ [ "  ],"; "  \"families\": [" ]
    @ [ String.concat ",\n" (List.map fr families) ]
    @ [ "  ]"; "}" ])

let scale_bench ~scale () =
  heading
    "City scale: struct-of-arrays node state vs per-node records (identical outcomes)";
  let quick = scale.duration <= 30. in
  let counts = if quick then [ 500 ] else [ 1000; 10_000 ] in
  let duration = if quick then 20. else 60. in
  let layout =
    List.map
      (fun nodes ->
        (* Flows scale with the node count (10 per 1000 nodes) so the
           10k point carries real traffic; 1000 nodes keeps the exact
           channel-bench workload, preserving comparability with the
           pre-PR allocation baseline. *)
        let sc =
          {
            (channel_scenario ~nodes) with
            Scenario.label = Printf.sprintf "scale-%dn" nodes;
            duration = Time.sec duration;
            traffic =
              {
                Traffic.default_config with
                Traffic.num_flows = Stdlib.max 10 (nodes / 100);
              };
          }
        in
        let reps = if nodes >= 10_000 then 2 else 3 in
        let record_s, orec, r_minor, r_promoted = timed_run ~reps sc in
        let soa_s, osoa, s_minor, s_promoted =
          timed_run ~reps (Scenario.with_soa true sc)
        in
        let identical = identical_outcomes orec osoa in
        if not identical then
          Printf.printf "  !! %d nodes: soa and record outcomes DIVERGE\n%!"
            nodes;
        let ev = float_of_int orec.Runner.events_processed in
        {
          lp_nodes = nodes;
          lp_record_s = record_s;
          lp_soa_s = soa_s;
          lp_identical = identical;
          lp_events = orec.Runner.events_processed;
          lp_transmissions = orec.Runner.transmissions;
          lp_delivery = Metrics.delivery_ratio orec.Runner.metrics;
          lp_record_minor_per_ev = r_minor /. ev;
          lp_soa_minor_per_ev = s_minor /. ev;
          lp_record_promoted_per_ev = r_promoted /. ev;
          lp_soa_promoted_per_ev = s_promoted /. ev;
        })
      counts
  in
  print_endline
    (Stats.Table.render
       ~header:
         [ "nodes"; "record s"; "soa s"; "speedup"; "identical";
           "minW/ev rec"; "minW/ev soa"; "delivery" ]
       (List.map
          (fun p ->
            [
              string_of_int p.lp_nodes;
              Printf.sprintf "%.3f" p.lp_record_s;
              Printf.sprintf "%.3f" p.lp_soa_s;
              Printf.sprintf "%.2fx" (p.lp_record_s /. p.lp_soa_s);
              (if p.lp_identical then "yes" else "NO");
              Printf.sprintf "%.1f" p.lp_record_minor_per_ev;
              Printf.sprintf "%.1f" p.lp_soa_minor_per_ev;
              Printf.sprintf "%.4f" p.lp_delivery;
            ])
          layout));
  (match List.find_opt (fun p -> p.lp_nodes = 1000) layout with
  | Some p ->
      Printf.printf
        "  1000-node allocation: %.1f minor words/event before this PR, \
         %.1f record, %.1f soa (%.1f%% below the pre-PR baseline)\n%!"
        scale_alloc_before_1000n p.lp_record_minor_per_ev
        p.lp_soa_minor_per_ev
        (100.
        *. (scale_alloc_before_1000n -. p.lp_soa_minor_per_ev)
        /. scale_alloc_before_1000n)
  | None -> ());
  let family_nodes = if quick then 300 else 1000 in
  let family_duration = if quick then 20. else 60. in
  Printf.printf "\n  families: %d nodes, %g s, monitor armed, soa layout\n%!"
    family_nodes family_duration;
  let families =
    List.map
      (fun (name, sc) ->
        let o = Runner.run ~monitor:true sc in
        let m = o.Runner.metrics in
        if o.Runner.invariant_violations > 0 then
          Printf.printf "  !! %s: %d monitor violations\n%!" name
            o.Runner.invariant_violations;
        {
          fr_name = name;
          fr_delivery = Metrics.delivery_ratio m;
          fr_latency_ms = Metrics.mean_latency_ms m;
          fr_network_load = Metrics.network_load m;
          fr_byte_load = Metrics.byte_load m;
          fr_violations = o.Runner.invariant_violations;
          fr_events = o.Runner.events_processed;
        })
      (scale_families ~nodes:family_nodes ~duration:family_duration)
  in
  print_endline
    (Stats.Table.render
       ~header:
         [ "family"; "delivery"; "latency ms"; "net load"; "ctl B/pkt";
           "monitor viol" ]
       (List.map
          (fun r ->
            [
              r.fr_name;
              Printf.sprintf "%.4f" r.fr_delivery;
              Printf.sprintf "%.2f" r.fr_latency_ms;
              Printf.sprintf "%.4f" r.fr_network_load;
              Printf.sprintf "%.1f" r.fr_byte_load;
              string_of_int r.fr_violations;
            ])
          families));
  let oc = open_out "BENCH_scale.json" in
  output_string oc
    (scale_bench_json ~family_nodes ~family_duration layout families);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_scale.json)\n%!"

(* ---- Engine scaling: binary-heap scheduler vs the calendar queue -------- *)

(* Two measurements per scenario, both over event-for-event identical
   outcomes:

   - Scheduler replay (the headline): the scenario runs once recording
     its exact schedule/cancel/pop op sequence ({!Engine.record_trace}),
     and that trace replays through each scheduler with no-op callbacks.
     This times the engine hot path alone — schedule, cancel, pop, and
     the per-event allocation each mode pays — on the real op mix,
     cancels and all.
   - Full simulation: the scenario runs end-to-end under each scheduler.
     Protocol and channel work (identical either way) dominates here, so
     this ratio mostly bounds how much of the wall clock the scheduler
     was to begin with.

   The N-sweep reuses the channel-scaling scenarios (grid channel both
   times, so only the scheduler differs); the last point is the
   congested Fig-5 shape the tentpole targets. *)

type engine_point = {
  ep_label : string;
  ep_nodes : int;
  ep_replay_heap_s : float;
  ep_replay_cal_s : float;
  ep_trace_ops : int;
  ep_sim_heap_s : float;
  ep_sim_cal_s : float;
  ep_identical : bool;
  ep_events : int;
  ep_replay_heap_minor_per_ev : float;
  ep_replay_cal_minor_per_ev : float;
  ep_sim_heap_minor_per_ev : float;
  ep_sim_cal_minor_per_ev : float;
  ep_sim_heap_promoted_per_ev : float;
  ep_sim_cal_promoted_per_ev : float;
}

(* Same protocol as [timed_run]: deterministic, min wall time of 3,
   allocation counters from the last repetition. *)
let timed_replay ?(reps = 3) ~scheduler trace =
  let best = ref infinity in
  let minor = ref 0. in
  let fired = ref 0 in
  for _ = 1 to reps do
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let n = Sim.Engine.replay_trace ~scheduler trace in
    let dt = Unix.gettimeofday () -. t0 in
    minor := Gc.minor_words () -. m0;
    if dt < !best then best := dt;
    fired := n
  done;
  (!best, !fired, !minor)

(* Minor words/event (calendar scheduler) measured on this container
   before the hot-path allocation trims in lib/net/mac.ml and the
   runner's metrics transmit hook, so the JSON records the before/after
   trajectory the trims bought. *)
let engine_alloc_baseline =
  [
    ("50n", 64.9);
    ("200n", 73.2);
    ("500n", 69.4);
    ("1000n", 71.0);
    ("fig5-100n-30f-p0", 269.9);
  ]

let engine_bench_json points =
  let point p =
    let before_fields =
      match List.assoc_opt p.ep_label engine_alloc_baseline with
      | None -> ""
      | Some before ->
          Printf.sprintf
            " \"sim_minor_words_per_event_calendar_before\": %.1f, \
             \"sim_minor_words_reduction_pct\": %.1f,"
            before
            (100. *. (before -. p.ep_sim_cal_minor_per_ev) /. before)
    in
    Printf.sprintf
      "    { \"label\": %S, \"nodes\": %d, \"events\": %d, \
       \"trace_ops\": %d, \"identical\": %b,\n\
      \      \"replay_heap_s\": %.4f, \"replay_calendar_s\": %.4f, \
       \"speedup\": %.2f, \"replay_events_per_sec\": %.0f, \
       \"replay_minor_words_per_event_heap\": %.1f, \
       \"replay_minor_words_per_event_calendar\": %.1f,\n\
      \      \"sim_heap_s\": %.4f, \"sim_calendar_s\": %.4f, \
       \"sim_speedup\": %.2f, \"sim_events_per_sec\": %.0f, \
       \"sim_minor_words_per_event_heap\": %.1f, \
       \"sim_minor_words_per_event_calendar\": %.1f,%s \
       \"sim_promoted_words_per_event_heap\": %.2f, \
       \"sim_promoted_words_per_event_calendar\": %.2f }"
      p.ep_label p.ep_nodes p.ep_events p.ep_trace_ops p.ep_identical
      p.ep_replay_heap_s p.ep_replay_cal_s
      (p.ep_replay_heap_s /. p.ep_replay_cal_s)
      (float_of_int p.ep_events /. p.ep_replay_cal_s)
      p.ep_replay_heap_minor_per_ev p.ep_replay_cal_minor_per_ev
      p.ep_sim_heap_s p.ep_sim_cal_s
      (p.ep_sim_heap_s /. p.ep_sim_cal_s)
      (float_of_int p.ep_events /. p.ep_sim_cal_s)
      p.ep_sim_heap_minor_per_ev p.ep_sim_cal_minor_per_ev before_fields
      p.ep_sim_heap_promoted_per_ev p.ep_sim_cal_promoted_per_ev
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"engine-scaling\",";
      Printf.sprintf
        "  \"scenario\": \"LDR random-waypoint, %g s simulated; N-sweep at %g m2/node plus the Fig-5 shape (100 nodes, 30 flows, pause 0)\","
        channel_duration_s channel_area_per_node;
      "  \"method\": \"speedup = recorded scheduler-op trace replayed through each scheduler (no-op callbacks); sim_speedup = full simulation wall clock, where protocol+channel work common to both schedulers dominates\",";
      "  \"alloc_history\": \"*_before values predate three hot-path trims: a cached immutable ACK frame per MAC (was one fresh record per unicast ACK), int division replacing Int64 arithmetic in Mac.on_medium airtime accounting, and a direct Payload.is_data match in the metrics transmit hook (was a classify allocation per frame)\",";
      "  \"points\": [";
      String.concat ",\n" (List.map point points);
      "  ]";
      "}";
    ]

let engine_scaling ~scale:_ () =
  heading
    "Engine scaling: binary-heap vs calendar-queue scheduler (identical outcomes)";
  let scenarios =
    List.map
      (fun nodes -> (Printf.sprintf "%dn" nodes, nodes, channel_scenario ~nodes))
      channel_node_counts
    @ [
        ( "fig5-100n-30f-p0",
          100,
          Scenario.paper_100 Scenario.ldr
          |> Scenario.with_flows 30
          |> Scenario.with_pause (Time.sec 0.)
          |> Scenario.with_duration (Time.sec channel_duration_s) );
      ]
  in
  let points =
    List.map
      (fun (label, nodes, sc) ->
        let sim_heap_s, oh, h_minor, h_promoted =
          timed_run (Scenario.with_heap_scheduler true sc)
        in
        let sim_cal_s, oc, c_minor, c_promoted = timed_run sc in
        let identical = identical_outcomes oh oc in
        if not identical then
          Printf.printf "  !! %s: heap and calendar outcomes DIVERGE\n%!" label;
        let trace = ref None in
        ignore
          (Runner.run
             ~on_engine:(fun e -> trace := Some (Sim.Engine.record_trace e))
             sc);
        let trace = Option.get !trace in
        let rh_s, rh_fired, rh_minor = timed_replay ~scheduler:`Heap trace in
        let rc_s, rc_fired, rc_minor =
          timed_replay ~scheduler:`Calendar trace
        in
        if
          rh_fired <> Sim.Engine.Trace.pops trace
          || rc_fired <> Sim.Engine.Trace.pops trace
        then
          Printf.printf "  !! %s: replay fired-event counts DIVERGE\n%!" label;
        let ev = float_of_int oc.Runner.events_processed in
        let pops = float_of_int (Sim.Engine.Trace.pops trace) in
        {
          ep_label = label;
          ep_nodes = nodes;
          ep_replay_heap_s = rh_s;
          ep_replay_cal_s = rc_s;
          ep_trace_ops = Sim.Engine.Trace.length trace;
          ep_sim_heap_s = sim_heap_s;
          ep_sim_cal_s = sim_cal_s;
          ep_identical = identical;
          ep_events = oc.Runner.events_processed;
          ep_replay_heap_minor_per_ev = rh_minor /. pops;
          ep_replay_cal_minor_per_ev = rc_minor /. pops;
          ep_sim_heap_minor_per_ev = h_minor /. ev;
          ep_sim_cal_minor_per_ev = c_minor /. ev;
          ep_sim_heap_promoted_per_ev = h_promoted /. ev;
          ep_sim_cal_promoted_per_ev = c_promoted /. ev;
        })
      scenarios
  in
  let rows =
    List.map
      (fun p ->
        [
          p.ep_label;
          Printf.sprintf "%.3f" p.ep_replay_heap_s;
          Printf.sprintf "%.3f" p.ep_replay_cal_s;
          Printf.sprintf "%.2fx" (p.ep_replay_heap_s /. p.ep_replay_cal_s);
          Printf.sprintf "%.2fx" (p.ep_sim_heap_s /. p.ep_sim_cal_s);
          (if p.ep_identical then "yes" else "NO");
          Printf.sprintf "%.1f" p.ep_replay_heap_minor_per_ev;
          Printf.sprintf "%.1f" p.ep_replay_cal_minor_per_ev;
        ])
      points
  in
  print_endline
    (Stats.Table.render
       ~header:
         [ "scenario"; "replay heap s"; "replay cal s"; "speedup";
           "sim speedup"; "identical"; "minW/ev heap"; "minW/ev cal" ]
       rows);
  let oc = open_out "BENCH_engine.json" in
  output_string oc (engine_bench_json points);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_engine.json)\n%!"

(* ---- Observability overhead: disabled bus vs null sink vs JSONL --------- *)

(* The bus's contract is that a run without observers pays one branch
   per emit site and nothing else.  Three measurements over the
   congested Fig-5 shape (the tentpole scenario of the engine bench):

   - disabled: no sinks attached — the production configuration;
   - null sink: a do-nothing sink, so every emit site actually fills
     the scratch record and dispatches;
   - jsonl: the trace writer streaming every event to disk.

   Emission touches no RNG and no scheduling, so all three must process
   identical event counts; the pre-change baseline (before any obs code
   existed) is embedded for the same-seed identity check.

   Wall-clock verdicts need care here: the shared container's ambient
   load swings run time by 5-25% in minutes-long waves (it shows up in
   user CPU time too, so it is memory-subsystem contention, not
   scheduler steal, and no in-process calibration loop tracks it --
   integer-mixing, allocation-heavy and sim-duration variants were all
   tried and either stay flat or fluctuate more than the sim).  The
   budget was therefore settled by a controlled A/B: min-of-5
   invocations of the pre-change binary strictly alternated with the
   instrumented one on the same machine, order reversed halfway.
   Those results are recorded below; this bench re-reports the live wall
   clock against the pre-change floor (expect ambient drift) and the
   budget verdict combines the deterministic event-identity check with
   the recorded A/B overhead. *)

(* Re-baselined after the expanding-ring fixes and RREQ aggregation:
   both change which discovery frames hit the air, so the event
   schedule — and the deterministic count — moved with them.  (The
   span/telemetry layer was verified against this count: disabled,
   null-sink and jsonl configurations all process exactly this many
   events, same as the uninstrumented parent build.) *)
let obs_baseline_events = 317_873
let obs_baseline_wall_s = 1.303

(* +1.46%: instrumented-vs-parent floor from an alternated A/B of the
   disabled configuration — 10 rounds of min-of-5 invocations each,
   same machine and seed, invocation order reversed halfway to cancel
   drift bias.  Floors 1.303 s parent vs 1.322 s instrumented; the
   median of per-round paired deltas (+1.2%) agrees. *)
let obs_ab_overhead_pct = 1.46

let timed_run_f ?(reps = 3) f =
  let best = ref infinity in
  let out = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let o = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    out := Some o
  done;
  (!best, Option.get !out)

let obs_overhead ~scale:_ () =
  heading "Observability overhead: disabled bus vs null sink vs JSONL writer";
  let sc =
    Scenario.paper_100 Scenario.ldr
    |> Scenario.with_flows 30
    |> Scenario.with_pause (Time.sec 0.)
    |> Scenario.with_duration (Time.sec channel_duration_s)
  in
  let disabled_s, od = timed_run_f ~reps:5 (fun () -> Runner.run sc) in
  let bus_events = ref 0 in
  let null_s, on =
    timed_run_f (fun () ->
        let bus = Obs.Bus.create () in
        bus_events := 0;
        Obs.Bus.add_sink bus (fun _ -> incr bus_events);
        Runner.run ~obs:bus sc)
  in
  let trace_file = Filename.temp_file "bench_obs" ".jsonl" in
  let jsonl_s, oj = timed_run_f (fun () -> Runner.run ~trace_out:trace_file sc) in
  let trace_bytes = (Unix.stat trace_file).Unix.st_size in
  Sys.remove trace_file;
  let events_ok =
    od.Runner.events_processed = obs_baseline_events
    && on.Runner.events_processed = obs_baseline_events
    && oj.Runner.events_processed = obs_baseline_events
  in
  if not events_ok then
    Printf.printf
      "  !! event counts DIVERGE from pre-change baseline %d (got %d/%d/%d)\n%!"
      obs_baseline_events od.Runner.events_processed
      on.Runner.events_processed oj.Runner.events_processed;
  let pct base v = (v -. base) /. base *. 100. in
  let disabled_pct = pct obs_baseline_wall_s disabled_s in
  let null_pct = pct disabled_s null_s in
  let jsonl_pct = pct disabled_s jsonl_s in
  (* The guard: a run with no sinks must cost within 2% of the
     pre-change build (the emit sites' bool checks are the only new
     work). *)
  if disabled_pct >= 2. then
    Printf.printf
      "  !! disabled-bus overhead %.2f%% vs pre-change floor exceeds the 2%% \
       budget -- on a shared container this usually means an ambient \
       slowdown; re-run in a quiet period (event counts are the \
       deterministic check)\n\
       %!"
      disabled_pct;
  print_endline
    (Stats.Table.render
       ~header:[ "configuration"; "wall s"; "overhead"; "bus events" ]
       [
         [
           "disabled";
           Printf.sprintf "%.3f" disabled_s;
           Printf.sprintf "%+.2f%% vs pre-change" disabled_pct;
           "0";
         ];
         [
           "null sink";
           Printf.sprintf "%.3f" null_s;
           Printf.sprintf "%+.2f%%" null_pct;
           string_of_int !bus_events;
         ];
         [
           "jsonl";
           Printf.sprintf "%.3f" jsonl_s;
           Printf.sprintf "%+.2f%%" jsonl_pct;
           Printf.sprintf "%d B" trace_bytes;
         ];
       ]);
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"obs-overhead\",";
        Printf.sprintf
          "  \"scenario\": \"fig5-100n-30f-p0: LDR, 100 nodes, 2200x600 m, \
           30 flows @ 4 pps, pause 0, %g s simulated, seed 1\","
          channel_duration_s;
        Printf.sprintf
          "  \"baseline_pre_change\": { \"events\": %d, \"wall_floor_s\": \
           %.3f },"
          obs_baseline_events obs_baseline_wall_s;
        Printf.sprintf "  \"events_processed\": %d," od.Runner.events_processed;
        Printf.sprintf "  \"events_match_baseline\": %b," events_ok;
        Printf.sprintf "  \"bus_events\": %d," !bus_events;
        Printf.sprintf "  \"disabled_s\": %.4f," disabled_s;
        Printf.sprintf "  \"disabled_overhead_pct_vs_baseline\": %.2f,"
          disabled_pct;
        Printf.sprintf "  \"null_sink_s\": %.4f," null_s;
        Printf.sprintf "  \"null_sink_overhead_pct\": %.2f," null_pct;
        Printf.sprintf "  \"jsonl_s\": %.4f," jsonl_s;
        Printf.sprintf "  \"jsonl_overhead_pct\": %.2f," jsonl_pct;
        Printf.sprintf "  \"jsonl_trace_bytes\": %d," trace_bytes;
        Printf.sprintf "  \"ab_overhead_pct\": %.2f," obs_ab_overhead_pct;
        "  \"ab_method\": \"10 rounds of min-of-5 invocations, parent \
         binary alternated with the instrumented one, order reversed \
         halfway; floor vs floor\",";
        Printf.sprintf "  \"within_2pct\": %b"
          (events_ok && obs_ab_overhead_pct < 2.);
        "}";
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_obs.json)\n%!"

(* ---- Parallel sweep: domain fan-out over the Fig-5 trial matrix --------- *)

(* The tentpole scenario again (100 nodes, 30 flows — the costliest
   figure), swept over the scale's pause times x seeds as one trial
   matrix, at jobs = 1/2/4/8.  Every jobs value must aggregate to
   bit-identical Welford statistics (the digest check below); the wall
   clocks give the fan-out speedup.  Per-trial wall and GC figures are
   measured inside the trial on its own domain — OCaml 5 GC counters
   are per-domain, and one trial never migrates. *)

let parallel_jobs = [ 1; 2; 4; 8 ]

type parallel_run = {
  pl_jobs : int;
  pl_workers : int;  (* effective: jobs clamped to matrix size *)
  pl_wall_s : float;
  pl_digest : string;
  pl_trial_mean_s : float;
  pl_trial_min_s : float;
  pl_trial_max_s : float;
  pl_minor_words : float;  (* summed over trials *)
  pl_promoted_words : float;
}

(* Full-precision rendering of every aggregate: any drift in count,
   mean or variance of any field of any point shows up as a digest
   mismatch. *)
let point_digest (p : Sweep.point) =
  let field w =
    Printf.sprintf "%d:%.17g:%.17g" (Stats.Welford.count w)
      (Stats.Welford.mean w) (Stats.Welford.variance w)
  in
  String.concat ";"
    (List.map field
       [
         p.Sweep.delivery_ratio; p.Sweep.latency_ms; p.Sweep.network_load;
         p.Sweep.rreq_load; p.Sweep.rrep_init; p.Sweep.rrep_recv;
         p.Sweep.mean_dest_seqno;
       ])

let parallel_sweep ~scale () =
  heading
    "Parallel sweep: Fig-5 trial matrix fanned across domains (identical aggregates)";
  let trials_n = Stdlib.max scale.trials 2 in
  let base =
    Scenario.paper_100 Scenario.ldr
    |> Scenario.with_flows 30
    |> Scenario.with_duration (Time.sec scale.duration)
  in
  let scs =
    Array.of_list
      (List.map
         (fun pause -> Scenario.with_pause (Time.sec pause) base)
         scale.pauses)
  in
  let npts = Array.length scs in
  let n = npts * trials_n in
  Printf.printf
    "  matrix: %d pause times x %d seeds = %d trials (%g s each), %d core(s) recommended\n%!"
    npts trials_n n scale.duration
    (Experiment.Parallel.recommended_jobs ());
  let trial k =
    let sc = scs.(k / trials_n) in
    let sc = { sc with Scenario.seed = sc.Scenario.seed + (k mod trials_n) } in
    let m0 = Gc.minor_words () in
    let p0 = (Gc.quick_stat ()).Gc.promoted_words in
    let t0 = Unix.gettimeofday () in
    let o = Runner.run sc in
    let dt = Unix.gettimeofday () -. t0 in
    ( o.Runner.summary,
      dt,
      Gc.minor_words () -. m0,
      (Gc.quick_stat ()).Gc.promoted_words -. p0 )
  in
  let run_at jobs =
    let t0 = Unix.gettimeofday () in
    let results = Experiment.Parallel.map ~jobs n trial in
    let wall = Unix.gettimeofday () -. t0 in
    (* Merge in seed order exactly as Sweep.run does — completion order
       must not matter. *)
    let points =
      List.init npts (fun pi ->
          let p = Sweep.empty_point () in
          for t = 0 to trials_n - 1 do
            let s, _, _, _ = results.((pi * trials_n) + t) in
            Sweep.add_summary p s
          done;
          p)
    in
    let walls = Array.map (fun (_, dt, _, _) -> dt) results in
    let sum f = Array.fold_left (fun acc r -> acc +. f r) 0. results in
    {
      pl_jobs = jobs;
      pl_workers = Stdlib.min jobs n;
      pl_wall_s = wall;
      pl_digest = String.concat "|" (List.map point_digest points);
      pl_trial_mean_s =
        Array.fold_left ( +. ) 0. walls /. float_of_int n;
      pl_trial_min_s = Array.fold_left Stdlib.min infinity walls;
      pl_trial_max_s = Array.fold_left Stdlib.max 0. walls;
      pl_minor_words = sum (fun (_, _, m, _) -> m);
      pl_promoted_words = sum (fun (_, _, _, p) -> p);
    }
  in
  let runs = List.map run_at parallel_jobs in
  let baseline = List.hd runs in
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.pl_jobs;
          string_of_int r.pl_workers;
          Printf.sprintf "%.3f" r.pl_wall_s;
          Printf.sprintf "%.2fx" (baseline.pl_wall_s /. r.pl_wall_s);
          (if r.pl_digest = baseline.pl_digest then "yes" else "NO");
          Printf.sprintf "%.3f" r.pl_trial_mean_s;
          Printf.sprintf "%.3f/%.3f" r.pl_trial_min_s r.pl_trial_max_s;
          Printf.sprintf "%.2e" r.pl_minor_words;
        ])
      runs
  in
  List.iter
    (fun r ->
      if r.pl_digest <> baseline.pl_digest then
        Printf.printf "  !! jobs=%d aggregates DIVERGE from jobs=1\n%!"
          r.pl_jobs)
    runs;
  print_endline
    (Stats.Table.render
       ~header:
         [ "jobs"; "workers"; "wall s"; "speedup"; "identical";
           "trial mean s"; "trial min/max s"; "minor words" ]
       rows);
  if Experiment.Parallel.recommended_jobs () = 1 then
    Printf.printf
      "  note: this machine exposes 1 core; fan-out cannot beat 1.0x here.\n\
      \  The >=2x-at-4-jobs target applies to multi-core (CI-class) hosts.\n%!";
  let json_run r =
    Printf.sprintf
      "    { \"jobs\": %d, \"workers\": %d, \"wall_s\": %.4f, \"speedup\": \
       %.2f, \"identical\": %b, \"trial_wall_mean_s\": %.4f, \
       \"trial_wall_min_s\": %.4f, \"trial_wall_max_s\": %.4f, \
       \"minor_words\": %.0f, \"promoted_words\": %.0f }"
      r.pl_jobs r.pl_workers r.pl_wall_s
      (baseline.pl_wall_s /. r.pl_wall_s)
      (r.pl_digest = baseline.pl_digest)
      r.pl_trial_mean_s r.pl_trial_min_s r.pl_trial_max_s r.pl_minor_words
      r.pl_promoted_words
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"parallel-sweep\",";
        Printf.sprintf
          "  \"scenario\": \"fig5 sweep: LDR, 100 nodes, 30 flows, %d pause \
           times x %d seeds, %g s simulated per trial\","
          npts trials_n scale.duration;
        Printf.sprintf "  \"recommended_domains\": %d,"
          (Experiment.Parallel.recommended_jobs ());
        Printf.sprintf "  \"trials\": %d," n;
        "  \"runs\": [";
        String.concat ",\n" (List.map json_run runs);
        "  ]";
        "}";
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_parallel.json)\n%!"

(* ---- Intra-run PDES: one simulation sharded across spatial regions ------ *)

(* One Fig-5-shaped simulation grown to 1000 nodes at constant density
   (5:1 aspect, 30 flows, pause 0), run whole at shards = 1, 2, 4, 8.
   Unlike the parallel sweep — many independent trials — this shards a
   single run, so the speedup ceiling is the window-synchronisation
   overhead and the border traffic, both of which BENCH_pdes.json
   records.  Two conformance gates ride along: a border-free fixture
   must produce byte-identical outcomes at every shard count, and a
   border-crossing fixture must be exactly reproducible at fixed K. *)

let pdes_shard_counts = [ 1; 2; 4; 8 ]
let pdes_duration ~scale = Stdlib.min scale.duration 20.

let pdes_scenario ~scale ~shards =
  {
    (channel_scenario ~nodes:1000) with
    Scenario.label = Printf.sprintf "pdes-1000n-k%d" shards;
    duration = Time.sec (pdes_duration ~scale);
    traffic = { Traffic.default_config with Traffic.num_flows = 30 };
    shards;
  }

(* The same border-free two-cluster fixture test/test_pdes.ml pins:
   every node is > 550 m (one carrier-sense range) from the other
   cluster and from any border a 2-, 3- or 4-way split produces. *)
let pdes_border_free ~shards =
  let cluster x0 =
    List.concat_map
      (fun dx ->
        List.map (fun y -> Geom.Vec2.v (x0 +. dx) y) [ 60.; 150.; 240. ])
      [ 0.; 150.; 300. ]
  in
  let positions = cluster 150. @ cluster 1950. in
  {
    (Scenario.paper_50 Scenario.ldr) with
    Scenario.label = "pdes-border-free";
    num_nodes = List.length positions;
    terrain = Geom.Terrain.create ~width:2400. ~height:300.;
    placement = Scenario.Fixed positions;
    speed_min = 0.;
    speed_max = 0.;
    duration = Time.sec 10.;
    traffic = { Traffic.default_config with Traffic.num_flows = 3 };
    shards;
  }

type pdes_point = {
  pd_shards : int;
  pd_workers : int;
  pd_wall_s : float;
  pd_events : int;
  pd_windows : int;
  pd_messages : int;
  pd_transmissions : int;
  pd_delivery : float;
  pd_minor_words : float;
  pd_promoted_words : float;
  pd_worker_minor : float array;
}

let pdes_bench_json ~scale ~conformant ~reproducible points =
  let baseline = List.hd points in
  let point p =
    let workers_json =
      String.concat ", "
        (Array.to_list (Array.map (Printf.sprintf "%.0f") p.pd_worker_minor))
    in
    Printf.sprintf
      "    { \"shards\": %d, \"workers\": %d, \"wall_s\": %.4f, \"speedup\": \
       %.2f, \"events\": %d, \"events_per_s\": %.0f, \"windows\": %d, \
       \"cross_shard_frames\": %d, \"cross_shard_frames_per_tx\": %.3f, \
       \"transmissions\": %d, \"delivery_ratio\": %.4f, \"minor_words\": \
       %.0f, \"promoted_words\": %.0f, \"worker_minor_words\": [%s] }"
      p.pd_shards p.pd_workers p.pd_wall_s
      (baseline.pd_wall_s /. p.pd_wall_s)
      p.pd_events
      (float_of_int p.pd_events /. p.pd_wall_s)
      p.pd_windows p.pd_messages
      (float_of_int p.pd_messages
      /. float_of_int (Stdlib.max 1 p.pd_transmissions))
      p.pd_transmissions p.pd_delivery p.pd_minor_words p.pd_promoted_words
      workers_json
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"pdes-sharding\",";
      Printf.sprintf
        "  \"scenario\": \"one LDR random-waypoint run, 1000 nodes at %g \
         m2/node (5:1 aspect), 30 flows, pause 0, %g s simulated\","
        channel_area_per_node (pdes_duration ~scale);
      Printf.sprintf "  \"recommended_domains\": %d,"
        (Experiment.Parallel.recommended_jobs ());
      "  \"lookahead_note\": \"window width = difs + slot = 70 us; \
       cross-border frames arrive one window late (documented relaxation, \
       docs/PARALLELISM.md)\",";
      Printf.sprintf "  \"border_free_identical_shards_1_2_4\": %b,"
        conformant;
      Printf.sprintf "  \"fixed_k_reproducible\": %b," reproducible;
      "  \"shards_1_is_classic_dispatch\": true,";
      "  \"points\": [";
      String.concat ",\n" (List.map point points);
      "  ]";
      "}";
    ]

let pdes_bench ~scale () =
  heading "PDES: one 1000-node run spatially sharded (Sim.Pdes)";
  let reps = Stdlib.max 1 (Stdlib.min 2 scale.trials) in
  Printf.printf
    "  1000 nodes, 30 flows, %g s simulated; shards %s; %d core(s) \
     recommended\n%!"
    (pdes_duration ~scale)
    (String.concat "/" (List.map string_of_int pdes_shard_counts))
    (Experiment.Parallel.recommended_jobs ());
  let points =
    List.map
      (fun k ->
        let wall, o, minor, promoted =
          timed_run ~reps (pdes_scenario ~scale ~shards:k)
        in
        {
          pd_shards = k;
          pd_workers =
            Stdlib.max 1
              (Stdlib.min (Experiment.Parallel.recommended_jobs ()) k);
          pd_wall_s = wall;
          pd_events = o.Runner.events_processed;
          pd_windows = o.Runner.pdes_windows;
          pd_messages = o.Runner.pdes_messages;
          pd_transmissions = o.Runner.transmissions;
          pd_delivery = Metrics.delivery_ratio o.Runner.metrics;
          pd_minor_words = minor;
          pd_promoted_words = promoted;
          pd_worker_minor = o.Runner.pdes_worker_minor_words;
        })
      pdes_shard_counts
  in
  let baseline = List.hd points in
  print_endline
    (Stats.Table.render
       ~header:
         [ "shards"; "workers"; "wall s"; "speedup"; "events/s"; "windows";
           "x-shard frames"; "delivery" ]
       (List.map
          (fun p ->
            [
              string_of_int p.pd_shards;
              string_of_int p.pd_workers;
              Printf.sprintf "%.3f" p.pd_wall_s;
              Printf.sprintf "%.2fx" (baseline.pd_wall_s /. p.pd_wall_s);
              Printf.sprintf "%.2e"
                (float_of_int p.pd_events /. p.pd_wall_s);
              string_of_int p.pd_windows;
              string_of_int p.pd_messages;
              Printf.sprintf "%.4f" p.pd_delivery;
            ])
          points));
  (* Conformance gate 1: when no radio interaction crosses a border,
     the shard count must be unobservable — byte-identical outcomes. *)
  let base = Runner.run (pdes_border_free ~shards:1) in
  let conformant =
    List.for_all
      (fun k -> identical_outcomes base (Runner.run (pdes_border_free ~shards:k)))
      [ 2; 4 ]
  in
  Printf.printf
    "  conformance: border-free outcomes identical across shards 1/2/4: %b\n%!"
    conformant;
  (* Conformance gate 2: border-crossing runs are exactly reproducible
     at a fixed shard count. *)
  let crossing =
    {
      (pdes_border_free ~shards:4) with
      Scenario.label = "pdes-crossing";
      num_nodes = 24;
      terrain = Geom.Terrain.create ~width:1200. ~height:300.;
      placement = Scenario.Grid;
    }
  in
  let c1 = Runner.run crossing and c2 = Runner.run crossing in
  let reproducible = identical_outcomes c1 c2 && c1.Runner.pdes_messages > 0 in
  Printf.printf
    "  conformance: border-crossing run reproducible at fixed K=4: %b\n%!"
    reproducible;
  if Experiment.Parallel.recommended_jobs () = 1 then
    Printf.printf
      "  note: this machine exposes 1 core; every shard runs on one worker \
       domain,\n\
      \  so sharding can only add window overhead here.  The >=2x-at-4-shards\n\
      \  target applies to multi-core (CI-class) hosts.\n%!";
  let json = pdes_bench_json ~scale ~conformant ~reproducible points in
  let oc = open_out "BENCH_pdes.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_pdes.json)\n%!"

(* ---- Wire codec: encode/decode throughput over the Fig-5 mix ------------ *)

(* The packet population is not synthetic: a short Fig-5 run captures
   its own transmissions through the pcap sink, and the bench times
   [Frame.encode]/[Frame.decode] over exactly those frames — the same
   class mix (DATA/ACK/RREQ/...) the simulator meters airtime for.
   Decode includes the FCS verification, as on the hot trace path. *)

let codec_duration_s = 20.

let codec_bench ~scale:_ () =
  heading "Wire codec: encode/decode throughput over a captured Fig-5 packet mix";
  let sc =
    Scenario.paper_100 Scenario.ldr
    |> Scenario.with_flows 30
    |> Scenario.with_pause (Time.sec 0.)
    |> Scenario.with_duration (Time.sec codec_duration_s)
  in
  let pcap = Filename.temp_file "bench_codec" ".pcap" in
  ignore (Runner.run ~pcap_out:pcap sc);
  let records =
    match Net.Pcap.load pcap with
    | Ok r -> r
    | Error msg -> failwith ("codec bench: cannot re-read capture: " ^ msg)
  in
  Sys.remove pcap;
  let frames =
    Array.of_list
      (List.filter_map
         (fun (r : Net.Pcap.record) -> Result.to_option r.Net.Pcap.r_frame)
         records)
  in
  let n = Array.length frames in
  if n = 0 then failwith "codec bench: empty capture";
  let total_bytes =
    Array.fold_left (fun acc f -> acc + Net.Frame.encoded_length f) 0 frames
  in
  let encoded =
    Array.map
      (fun f -> (Net.Frame.family f, f.Net.Frame.src, Net.Frame.encode f))
      frames
  in
  (* Enough passes over the population for O(100 ms) timings. *)
  let reps = Stdlib.max 1 (2_000_000 / n) in
  let packets = reps * n in
  let decode_errors = ref 0 in
  let measure pass =
    let m0 = Gc.minor_words () in
    let wall, () = timed_run_f (fun () -> for _ = 1 to reps do pass () done) in
    let minor = (Gc.minor_words () -. m0) /. 3. (* reps of timed_run_f *) in
    (wall, minor /. float_of_int packets)
  in
  let enc_s, enc_minor =
    measure (fun () ->
        Array.iter (fun f -> ignore (Sys.opaque_identity (Net.Frame.encode f))) frames)
  in
  let dec_s, dec_minor =
    measure (fun () ->
        Array.iter
          (fun (family, src, b) ->
            match Net.Frame.decode ~family ~ack_src:src b with
            | Ok _ -> ()
            | Error _ -> incr decode_errors)
          encoded)
  in
  if !decode_errors > 0 then
    Printf.printf "  !! %d decode errors on a clean capture\n%!" !decode_errors;
  let per_pkt_ns s = s /. float_of_int packets *. 1e9 in
  let mb_per_s s = float_of_int (total_bytes * reps) /. s /. 1e6 in
  let mix = Net.Pcap.class_counts records in
  print_endline
    (Stats.Table.render
       ~header:[ "direction"; "ns/packet"; "MB/s"; "minor words/packet" ]
       [
         [
           "encode";
           Printf.sprintf "%.1f" (per_pkt_ns enc_s);
           Printf.sprintf "%.1f" (mb_per_s enc_s);
           Printf.sprintf "%.1f" enc_minor;
         ];
         [
           "decode";
           Printf.sprintf "%.1f" (per_pkt_ns dec_s);
           Printf.sprintf "%.1f" (mb_per_s dec_s);
           Printf.sprintf "%.1f" dec_minor;
         ];
       ]);
  Printf.printf "  mix: %s\n%!"
    (String.concat ", "
       (List.map (fun (cls, (c, _)) -> Printf.sprintf "%s %d" cls c) mix));
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"wire-codec\",";
        Printf.sprintf
          "  \"scenario\": \"fig5-100n-30f-p0 capture, %g s simulated, seed 1\","
          codec_duration_s;
        Printf.sprintf "  \"packets\": %d," n;
        Printf.sprintf "  \"on_air_bytes\": %d," total_bytes;
        Printf.sprintf "  \"bench_passes\": %d," reps;
        "  \"mix\": [";
        String.concat ",\n"
          (List.map
             (fun (cls, (c, b)) ->
               Printf.sprintf "    { \"class\": %S, \"count\": %d, \"bytes\": %d }"
                 cls c b)
             mix);
        "  ],";
        Printf.sprintf
          "  \"encode\": { \"ns_per_packet\": %.1f, \"mb_per_s\": %.1f, \
           \"minor_words_per_packet\": %.1f },"
          (per_pkt_ns enc_s) (mb_per_s enc_s) enc_minor;
        Printf.sprintf
          "  \"decode\": { \"ns_per_packet\": %.1f, \"mb_per_s\": %.1f, \
           \"minor_words_per_packet\": %.1f },"
          (per_pkt_ns dec_s) (mb_per_s dec_s) dec_minor;
        Printf.sprintf "  \"decode_errors\": %d" !decode_errors;
        "}";
      ]
  in
  let oc = open_out "BENCH_wire.json" in
  output_string oc json;
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_wire.json)\n%!"

(* ---- Bechamel microbenchmarks: one Test.make per table/figure kernel ---- *)

let kernel ~nodes ~flows protocol () =
  let sc =
    scenario_for
      ~scale:{ duration = 5.; trials = 1; pauses = [] }
      ~nodes ~flows protocol
    |> Scenario.with_pause (Time.sec 0.)
  in
  ignore (Runner.run sc)

let bechamel_suite () =
  heading "Bechamel: per-experiment simulation kernels (5 simulated seconds each)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"table1-kernel-ldr-10f"
        (Staged.stage (kernel ~nodes:50 ~flows:10 Scenario.ldr));
      Test.make ~name:"fig2-kernel-aodv-10f"
        (Staged.stage (kernel ~nodes:50 ~flows:10 Scenario.aodv));
      Test.make ~name:"fig3-kernel-ldr-30f"
        (Staged.stage (kernel ~nodes:50 ~flows:30 Scenario.ldr));
      Test.make ~name:"fig4-kernel-ldr-100n"
        (Staged.stage (kernel ~nodes:100 ~flows:10 Scenario.ldr));
      Test.make ~name:"fig5-kernel-aodv-100n-30f"
        (Staged.stage (kernel ~nodes:100 ~flows:30 Scenario.aodv));
      Test.make ~name:"fig6-kernel-dsr-30f"
        (Staged.stage (kernel ~nodes:50 ~flows:30 Scenario.dsr));
      Test.make ~name:"fig7-kernel-olsr-10f"
        (Staged.stage (kernel ~nodes:50 ~flows:10 Scenario.olsr));
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Bechamel.Time.second 2.0) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-30s %10.2f ms/run\n%!" name (est /. 1e6)
          | Some _ | None -> Printf.printf "  %-30s (no estimate)\n%!" name)
        stats)
    tests

(* ---- Model-checker exhaustiveness report --------------------------------- *)

(* One row per (fixture, protocol): the bounded schedule space explored
   exhaustively, with the pruning breakdown and the violation (if any).
   The AODV/LDR pair on the same fixture and bound is the paper's core
   claim in mechanical form: same space, AODV loops, LDR is silent. *)
let mcheck_bound = 18

let mcheck_json rows =
  let row (fixture, proto, secs, (r : Mcheck.Explorer.result)) =
    let s = r.Mcheck.Explorer.stats in
    Printf.sprintf
      "    {\"fixture\": \"%s\", \"protocol\": \"%s\", \"max_steps\": %d, \
       \"states\": %d, \"transitions\": %d, \"sleep_pruned\": %d, \
       \"state_merged\": %d, \"depth_cut\": %d, \"terminals\": %d, \
       \"replays\": %d, \"replayed_events\": %d, \"max_depth\": %d, \
       \"complete\": %b, \"violation\": %s, \"violation_depth\": %d, \
       \"wall_s\": %.3f}"
      fixture
      (Mcheck.Explorer.protocol_name proto)
      mcheck_bound s.Mcheck.Explorer.states s.transitions s.sleep_skipped
      s.state_merged s.depth_cut s.terminals s.replays s.replayed_events
      s.max_depth s.complete
      (match r.Mcheck.Explorer.violation with
      | Some v ->
          Printf.sprintf "\"%s\"" (Mcheck.Explorer.render_vkind v.v_kind)
      | None -> "null")
      (match r.Mcheck.Explorer.violation with
      | Some v -> List.length v.v_trace
      | None -> -1)
      secs
  in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"mcheck-exhaustiveness\",";
      "  \"method\": \"DFS over message-delivery/timer interleavings from \
       the fixture's post-prelude state; sleep-set DPOR plus digest-based \
       state matching; every state checked for successor-graph cycles and \
       monitor violations\",";
      "  \"runs\": [";
      String.concat ",\n" (List.map row rows);
      "  ]";
      "}";
    ]

let mcheck_bench ~scale:_ () =
  heading "Model checker: AODV loop vs LDR silence, same bounded space";
  let cases =
    [
      (Mcheck.Fixture.aodv_loop_3, Mcheck.Explorer.Aodv);
      (Mcheck.Fixture.aodv_loop_3, Mcheck.Explorer.Ldr);
    ]
  in
  let rows =
    List.map
      (fun (fx, proto) ->
        let t0 = Unix.gettimeofday () in
        let r =
          Mcheck.Explorer.explore ~max_steps:mcheck_bound
            ~stop_at_first:false fx proto
        in
        let secs = Unix.gettimeofday () -. t0 in
        let s = r.Mcheck.Explorer.stats in
        Printf.printf
          "  %-12s %-5s states=%-8d merged=%-8d sleep=%-6d complete=%b %s \
           (%.2f s)\n%!"
          fx.Mcheck.Fixture.name
          (Mcheck.Explorer.protocol_name proto)
          s.Mcheck.Explorer.states s.state_merged s.sleep_skipped s.complete
          (match r.Mcheck.Explorer.violation with
          | Some v -> Mcheck.Explorer.render_vkind v.v_kind
          | None -> "silent")
          secs;
        (fx.Mcheck.Fixture.name, proto, secs, r))
      cases
  in
  let oc = open_out "BENCH_mcheck.json" in
  output_string oc (mcheck_json rows);
  output_string oc "\n";
  close_out oc;
  Printf.printf "  (wrote BENCH_mcheck.json)\n%!"

(* ---- Driver -------------------------------------------------------------- *)

let all_experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("ablation", ablation);
    ("aggregation", aggregation);
    ("discovery", discovery);
    ("channel", channel_scaling);
    ("scale", scale_bench);
    ("engine", engine_scaling);
    ("obs", obs_overhead);
    ("parallel", parallel_sweep);
    ("pdes", pdes_bench);
    ("codec", codec_bench);
    ("mcheck", mcheck_bench);
  ]

let () =
  (* A benchmarking-sized minor heap (32 MB): the simulator's steady
     allocation rate otherwise makes minor-collection pauses a visible
     fraction of every measurement, for both channel modes alike. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let args = List.tl (Array.to_list Sys.argv) in
  let scale = ref default_scale in
  let selected = ref [] in
  let run_bechamel = ref false in
  List.iter
    (fun a ->
      match a with
      | "--full" -> scale := full_scale
      | "--quick" -> scale := quick_scale
      | a when String.length a > 6 && String.sub a 0 6 = "--csv=" ->
          csv_dir := Some (String.sub a 6 (String.length a - 6))
      | "all" ->
          selected := List.map fst all_experiments;
          run_bechamel := true
      | "bechamel" -> run_bechamel := true
      | name when List.mem_assoc name all_experiments ->
          selected := !selected @ [ name ]
      | other ->
          Printf.eprintf
            "unknown argument %S (expected: table1 fig2..fig7 ablation aggregation discovery channel scale engine obs parallel pdes codec mcheck bechamel all --full --quick --csv=DIR)\n"
            other;
          exit 2)
    args;
  let selected, run_bechamel =
    if !selected = [] && not !run_bechamel then
      (List.map fst all_experiments, true)
    else (!selected, !run_bechamel)
  in
  let scale = !scale in
  Printf.printf
    "Reproduction scale: %g s simulated, %d trial(s), pause times [%s]\n"
    scale.duration scale.trials
    (String.concat "; " (List.map (Printf.sprintf "%g") scale.pauses));
  Printf.printf "(paper scale: 900 s, 10 trials, 7 pause times -- pass --full)\n%!";
  let t0 = Unix.gettimeofday () in
  List.iter (fun name -> (List.assoc name all_experiments) ~scale ()) selected;
  if run_bechamel then bechamel_suite ();
  Printf.printf "\nTotal wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
