(** Zero-allocation log-bucketed histogram with exact mergeability.

    Values are non-negative integers (typically latencies in
    nanoseconds).  Buckets are log-linear: values below [2^sub_bits]
    are recorded exactly; above that, each power-of-two range is split
    into [2^sub_bits] equal sub-buckets, so the relative quantile
    error is bounded by [2^-sub_bits] (< 1 % at the default
    [sub_bits = 7]).  Recording touches one array cell and a few
    scalar fields — no allocation, no sorting, O(1).

    Merging adds bucket counts elementwise, which makes [merge_into]
    exactly associative and commutative: aggregating per-trial or
    per-shard histograms yields bit-identical quantiles in any order.
    This replaces the sort-per-query reservoir ([Quantile]) for
    latency percentiles and backs the span-stage timings. *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] in [0, 14], default 7. *)

val clear : t -> unit

val add : t -> int -> unit
(** Record one observation.  Negative values are clamped to 0. *)

val count : t -> int
(** Number of observations recorded. *)

val sum : t -> int
(** Exact sum of recorded values (not bucket midpoints). *)

val mean : t -> float
(** [sum / count]; 0 when empty. *)

val min_value : t -> int
(** Smallest recorded value, exact; 0 when empty. *)

val max_value : t -> int
(** Largest recorded value, exact; 0 when empty. *)

val quantile : t -> float -> int
(** [quantile t q] for q in [0, 1]; 0 when empty.  Nearest-rank
    (rank [ceil (q * count)]): returns the highest value equivalent to
    the bucket holding that rank, clamped to [[min_value, max_value]],
    so the result never under-reports and exceeds the exact sorted
    nearest-rank value by less than one bucket width.
    @raise Invalid_argument if q is outside [0, 1]. *)

val sub_bits : t -> int

val lowest_equivalent : t -> int -> int
(** Smallest value sharing a bucket with the argument. *)

val highest_equivalent : t -> int -> int
(** Largest value sharing a bucket with the argument.  The bucket
    width at value [v] is [highest_equivalent t v - lowest_equivalent
    t v + 1]. *)

val merge_into : into:t -> t -> unit
(** Add every observation of the second histogram into [into].
    Exactly associative and commutative.
    @raise Invalid_argument if the two histograms have different
    [sub_bits]. *)

val iter_buckets : t -> (value:int -> count:int -> unit) -> unit
(** Visit non-empty buckets in increasing value order; [value] is the
    bucket's highest equivalent value. *)
