(** AODV (RFC 3561 / draft-10 era) — the paper's primary on-demand
    baseline.

    Loop freedom comes from destination sequence numbers alone.  The
    behaviours LDR improves on are kept faithful here:

    - a node increments its {e own} sequence number before every RREQ it
      originates;
    - a node that detects a link break increments the {e stored} sequence
      number of every destination routed over that link and advertises the
      bumped numbers in RERRs — so non-owners effectively raise other
      nodes' numbers, which inhibits replies from valid downstream routes
      and makes sequence numbers grow with mobility (the paper's Fig. 7);
    - an intermediate node may answer a RREQ only with a route whose
      stored number is at least the requested one. *)

type config = {
  use_hello : bool;
      (** RFC 3561 6.9: nodes with active routes broadcast periodic HELLOs
          (TTL-1 RREPs for themselves); missing [allowed_hello_loss]
          consecutive ones declares the link broken.  Off by default — the
          paper's scenarios rely on link-layer feedback instead. *)
  hello_interval : Sim.Time.t;
  allowed_hello_loss : int;
  active_route_timeout : Sim.Time.t;
  my_route_timeout : Sim.Time.t;
  ring : Routing.Discovery.t;
  rreq_cache_ttl : Sim.Time.t;
  buffer_capacity : int;
  buffer_max_age : Sim.Time.t;
  flood_jitter : Sim.Time.t;
  data_ttl : int;
}

val default_config : config

val factory : ?config:config -> unit -> Routing.Agent.factory

val name : string
