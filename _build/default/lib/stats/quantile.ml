type t = {
  capacity : int;
  mutable samples : float array;
  mutable retained : int;
  mutable offered : int;
  mutable rng : int64;  (** splitmix64 state, self-contained *)
  mutable sorted : bool;
}

let create ?(capacity = 65536) ~rng_seed () =
  if capacity <= 0 then invalid_arg "Quantile.create: capacity";
  {
    capacity;
    samples = Array.make (Stdlib.min capacity 1024) 0.;
    retained = 0;
    offered = 0;
    rng = Int64.of_int (rng_seed lxor 0x9E3779B9);
    sorted = true;
  }

let next_rand t bound =
  (* splitmix64 step. *)
  t.rng <- Int64.add t.rng 0x9E3779B97F4A7C15L;
  let z = t.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.rem (Int64.shift_right_logical z 1) (Int64.of_int bound))

let grow t =
  let bigger = Array.make (Stdlib.min t.capacity (2 * Array.length t.samples)) 0. in
  Array.blit t.samples 0 bigger 0 t.retained;
  t.samples <- bigger

let add t x =
  t.offered <- t.offered + 1;
  if t.retained < t.capacity then begin
    if t.retained = Array.length t.samples then grow t;
    t.samples.(t.retained) <- x;
    t.retained <- t.retained + 1;
    t.sorted <- false
  end
  else begin
    (* Vitter's algorithm R: replace a random slot with probability
       capacity/offered. *)
    let j = next_rand t t.offered in
    if j < t.capacity then begin
      t.samples.(j) <- x;
      t.sorted <- false
    end
  end

let count t = t.offered

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.retained in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.retained;
    t.sorted <- true
  end

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Quantile.quantile: q outside [0,1]";
  if t.retained = 0 then 0.
  else begin
    ensure_sorted t;
    let rank =
      Stdlib.min (t.retained - 1)
        (int_of_float (Float.round (q *. float_of_int (t.retained - 1))))
    in
    t.samples.(rank)
  end

let median t = quantile t 0.5
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99
