lib/geom/vec2.mli: Format
