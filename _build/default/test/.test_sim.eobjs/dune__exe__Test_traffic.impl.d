test/test_traffic.ml: Alcotest Data_msg Engine Hashtbl List Node_id Packets Rng Sim Stdlib Time Traffic
