let src = Logs.Src.create "manet" ~doc:"MANET simulator run trace"

module Log = (val Logs.src_log src)

let enable ?(out = Format.err_formatter) () =
  (* Compose: trace lines go to [out], every other source keeps flowing
     through whatever reporter was installed before us. *)
  let previous = Logs.reporter () in
  let report rsrc level ~over k msgf =
    if rsrc == src then
      msgf (fun ?header:_ ?tags:_ fmt ->
          Format.kfprintf
            (fun f ->
              Format.pp_print_newline f ();
              over ();
              k ())
            out fmt)
    else previous.Logs.report rsrc level ~over k msgf
  in
  Logs.set_reporter { Logs.report };
  Logs.Src.set_level src (Some Logs.Debug)

(* Rendering sits on the per-event hot path; even a disabled [Log.debug]
   allocates its message closure and walks the Logs dispatch.  A level
   check first keeps the disabled case to one read. *)
let on () = Logs.Src.level src = Some Logs.Debug

let obs_sink bus ev =
  if on () then
    Log.debug (fun m -> m "%a" (Obs.Event.pp ~name:(Obs.Bus.name bus)) ev)
