lib/packets/node_id.mli: Format Hashtbl Map Set
