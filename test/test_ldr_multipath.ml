(* Tests for the multipath (LFI alternate-successor) extension. *)

open Ldr
open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int
let sn c = { Seqnum.stamp = 0; counter = c }
let lifetime = Time.sec 100.

let mp_table () =
  let engine = Engine.create () in
  (engine, Route_table.create ~multipath:true ~engine ())

let advert t ?(lc = 1) ~dst ~s ~d ~via () =
  Route_table.apply_advert t ~lc ~dst:(n dst) ~adv_sn:(sn s) ~adv_dist:d
    ~via:(n via) ~lifetime ()

(* ---- Route-table mechanics ---------------------------------------------- *)

let alternate_recorded_and_promoted () =
  let _, t = mp_table () in
  (* Primary via 1 at distance 2. *)
  ignore (advert t ~dst:9 ~s:0 ~d:1 ~via:1 ());
  (* Same-length feasible path via 2: stable-path keeps 1, records 2. *)
  (match advert t ~dst:9 ~s:0 ~d:1 ~via:2 () with
  | `Rejected -> ()
  | _ -> Alcotest.fail "stable-path keeps the primary");
  let e = Option.get (Route_table.find t (n 9)) in
  checki "one alternate" 1 (List.length e.alternates);
  (* The primary's neighbor dies: instant failover. *)
  let invalidated, promoted = Route_table.invalidate_via t (n 1) in
  checki "nothing invalidated" 0 (List.length invalidated);
  checki "one promotion" 1 (List.length promoted);
  checkb "now via 2" true (Route_table.successor t (n 9) = Some (n 2));
  let e = Option.get (Route_table.find t (n 9)) in
  checki "distance through alternate" 2 e.dist;
  checki "fd untouched" 2 e.fd;
  checki "alternate consumed" 0 (List.length e.alternates)

let infeasible_alternate_not_kept () =
  let _, t = mp_table () in
  ignore (advert t ~dst:9 ~s:0 ~d:1 ~via:1 ());
  (* fd = 2: an advert at distance 2 violates LFI (2 < 2 is false) and is
     rejected outright by NDC — no alternate. *)
  (match advert t ~dst:9 ~s:0 ~d:2 ~via:2 () with
  | `Rejected -> ()
  | _ -> Alcotest.fail "ndc rejects");
  let e = Option.get (Route_table.find t (n 9)) in
  checki "no alternate" 0 (List.length e.alternates);
  let invalidated, promoted = Route_table.invalidate_via t (n 1) in
  checki "invalidated" 1 (List.length invalidated);
  checki "no promotion" 0 (List.length promoted)

let fd_shrink_prunes_alternates () =
  let _, t = mp_table () in
  (* Primary at distance 5 (fd 5); alternate at advertised 3. *)
  ignore (advert t ~dst:9 ~s:0 ~d:4 ~via:1 ());
  ignore (advert t ~dst:9 ~s:0 ~d:4 ~via:2 ());
  (* ndc: 4 < fd 5, same length -> alternate *)
  let e = Option.get (Route_table.find t (n 9)) in
  checki "alternate stored" 1 (List.length e.alternates);
  (* A much shorter primary arrives: fd ratchets to 2; the stored
     alternate (advertised 4) is no longer feasible. *)
  ignore (advert t ~dst:9 ~s:0 ~d:1 ~via:3 ());
  let invalidated, promoted = Route_table.invalidate_via t (n 3) in
  checki "stale alternate not promoted" 1 (List.length invalidated);
  checki "no promotion" 0 (List.length promoted)

let seqnum_change_clears_alternates () =
  let _, t = mp_table () in
  ignore (advert t ~dst:9 ~s:0 ~d:3 ~via:1 ());
  ignore (advert t ~dst:9 ~s:0 ~d:3 ~via:2 ());
  (* Newer number: alternates refer to the old one and must go. *)
  ignore (advert t ~dst:9 ~s:1 ~d:6 ~via:3 ());
  let e = Option.get (Route_table.find t (n 9)) in
  checki "alternates cleared" 0 (List.length e.alternates)

let fail_route_semantics () =
  let _, t = mp_table () in
  ignore (advert t ~dst:9 ~s:0 ~d:1 ~via:1 ());
  ignore (advert t ~dst:9 ~s:0 ~d:1 ~via:2 ());
  checkb "untouched for wrong via" true
    (Route_table.fail_route t (n 9) ~via:(n 5) = `Untouched);
  checkb "promoted" true (Route_table.fail_route t (n 9) ~via:(n 1) = `Promoted);
  checkb "then invalidated" true
    (Route_table.fail_route t (n 9) ~via:(n 2) = `Invalidated);
  checkb "absent dst untouched" true
    (Route_table.fail_route t (n 5) ~via:(n 1) = `Untouched)

let best_alternate_is_shortest () =
  let _, t = mp_table () in
  ignore (advert t ~dst:9 ~s:0 ~d:4 ~via:1 ());
  (* fd 5 *)
  ignore (advert t ~dst:9 ~s:0 ~d:4 ~via:2 ());
  (* dist 5 *)
  ignore (advert t ~dst:9 ~s:0 ~d:3 ~via:3 ());
  (* 3 < fd 5: shorter -> becomes primary (dist 4, fd 4); via 2's
     alternate (adv 4) pruned (4 >= fd 4)... re-add a feasible one: *)
  ignore (advert t ~dst:9 ~s:0 ~d:3 ~via:4 ());
  (* adv 3 < fd 4, dist 4 >= dist 4 -> alternate via 4 *)
  let _, promoted = Route_table.invalidate_via t (n 3) in
  checki "promoted" 1 (List.length promoted);
  checkb "via the feasible alternate" true
    (Route_table.successor t (n 9) = Some (n 4))

(* ---- Protocol-level failover --------------------------------------------- *)

module TN = Experiment.Testnet

let mp_config = { Config.default with multipath = true }

let make_net_debug ?(config = mp_config) k =
  let engine = Engine.create ~seed:3 () in
  let debugs = Array.make k None in
  let factories =
    Array.init k (fun i ctx ->
        let agent, dbg = Protocol.factory_with_debug ~config () ctx in
        debugs.(i) <- Some dbg;
        agent)
  in
  let net = Experiment.Testnet.create_custom ~engine ~factories () in
  (engine, net, fun i -> Option.get debugs.(i))

let failover_without_rediscovery () =
  let _, net, dbg = make_net_debug 4 in
  (* Diamond: 0-1-3 and 0-2-3. *)
  TN.connect net 0 1;
  TN.connect net 0 2;
  TN.connect net 1 3;
  TN.connect net 2 3;
  (* Seed both relays with active routes so that 0's flood draws two
     replies (primary + alternate). *)
  TN.origin net ~src:1 ~dst:3;
  TN.origin net ~src:2 ~dst:3;
  TN.run net ~for_:(Time.sec 1.);
  checki "relays seeded" 2 (TN.delivered net);
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 1.);
  checki "origin delivered" 3 (TN.delivered net);
  let e0 = Option.get (Route_table.find (dbg 0).Protocol.table (n 3)) in
  checki "alternate in place" 1 (List.length e0.Route_table.alternates);
  let primary =
    match e0.Route_table.next_hop with Some h -> Node_id.to_int h | None -> -1
  in
  checkb "primary is a relay" true (primary = 1 || primary = 2);
  let rreqs_before = Experiment.Metrics.event_count (TN.metrics net) "rreq_init" in
  (* Cut the primary link: the data packet fails at the MAC, the agent
     promotes the alternate and forwards the same packet on. *)
  TN.disconnect net 0 primary;
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  checki "delivered over the alternate" 4 (TN.delivered net);
  checki "no new discovery" rreqs_before
    (Experiment.Metrics.event_count (TN.metrics net) "rreq_init");
  checkb "promotion counted" true
    (Experiment.Metrics.event_count (TN.metrics net) "alternate_promoted" >= 1)

let loop_free_with_multipath =
  QCheck.Test.make ~name:"multipath LDR loop-free under churn" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let engine = Engine.create ~seed () in
      let k = 8 in
      let net =
        Experiment.Testnet.create ~engine
          ~factory:(Protocol.factory ~config:mp_config ())
          ~n:k ()
      in
      let rng = Rng.create (seed * 3) in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          if Rng.coin rng 0.45 then TN.connect net a b
        done
      done;
      let ok = ref true in
      for _ = 1 to 60 do
        (match Rng.int rng 4 with
        | 0 | 1 ->
            let s = Rng.int rng k in
            let d = (s + 1 + Rng.int rng (k - 1)) mod k in
            TN.origin net ~src:s ~dst:d
        | 2 ->
            let a = Rng.int rng k and b = Rng.int rng k in
            if a <> b then TN.connect net a b
        | _ ->
            let a = Rng.int rng k and b = Rng.int rng k in
            TN.disconnect net a b);
        TN.run net ~for_:(Time.ms (float_of_int (10 + Rng.int rng 500)));
        TN.audit_loops net;
        if Experiment.Metrics.loop_violations (TN.metrics net) > 0 then
          ok := false
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ldr-multipath"
    [
      ( "route_table",
        [
          Alcotest.test_case "record and promote" `Quick alternate_recorded_and_promoted;
          Alcotest.test_case "infeasible not kept" `Quick infeasible_alternate_not_kept;
          Alcotest.test_case "fd shrink prunes" `Quick fd_shrink_prunes_alternates;
          Alcotest.test_case "seqnum change clears" `Quick seqnum_change_clears_alternates;
          Alcotest.test_case "fail_route semantics" `Quick fail_route_semantics;
          Alcotest.test_case "best alternate" `Quick best_alternate_is_shortest;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "failover without rediscovery" `Quick
            failover_without_rediscovery;
          qt loop_free_with_multipath;
        ] );
    ]
