(** Continuous LDR loop-freedom monitor.

    A bus sink that checks the paper's ordering invariant across the
    written edge on every routing-table write: the new successor's
    stored (sn, fd) must dominate the writer's —

    {[ sn_succ > sn_own  ||  (sn_succ = sn_own && fd_succ < fd_own) ]}

    Because a successor's fd only ratchets down within a sequence
    number and its sn only grows, writes at the successor cannot break
    existing edges, so checking each write in O(1) covers the global
    invariant continuously — every transition, not sample points.

    On violation the monitor emits an [Event.Violation] on the same
    bus (so JSONL traces record it) and snapshots the last-K event
    ring filtered to that destination's causal neighbourhood
    ({!Event.relevant_to}) — the same window [manet_sim trace
    --violations] reconstructs from the trace file. *)

type t

val default_ring : int
(** Ring capacity used when [?ring] is omitted (256) — the analyzer's
    default window size must match. *)

val create :
  ?ring:int ->
  ?quiet:bool ->
  lookup:(node:int -> dst:int -> Event.inv option) ->
  Bus.t ->
  t
(** Attach a monitor to the bus.  [lookup] returns a node's current
    stored invariants for a destination ([None]: that node keeps no
    LDR invariants — the edge is skipped).  Unless [quiet], each
    violation prints itself and its ring dump to stderr. *)

val violations : t -> int

val last_window : t -> string list
(** Rendered ring dump of the most recent violation (oldest line
    first); empty when none fired. *)
