(** Idealized protocol-level network for tests and walkthroughs.

    Agents are wired over an explicit, mutable adjacency: no MAC, no
    collisions, just deterministic per-link delays.  Broadcast reaches the
    current neighbors (in id order, at slightly staggered times, so reply
    ordering is deterministic); unicast to a disconnected node triggers
    the agent's [link_failure] callback after a short delay, imitating
    MAC retry exhaustion.  This isolates protocol logic from radio
    effects — the full stack is exercised by {!Runner}. *)


type t

val create :
  engine:Sim.Engine.t -> factory:Routing.Agent.factory -> n:int -> t

val create_custom :
  engine:Sim.Engine.t ->
  factories:(Routing.Agent.ctx -> Routing.Agent.t) array ->
  t
(** Per-node factories (e.g. to keep debug handles on some nodes). *)

val agent : t -> int -> Routing.Agent.t
val connect : t -> int -> int -> unit
val disconnect : t -> int -> int -> unit
val connected : t -> int -> int -> bool
val connect_chain : t -> int list -> unit
val metrics : t -> Metrics.t

val origin : t -> src:int -> dst:int -> unit
(** Originate one data packet at [src] for [dst] (counted in metrics). *)

val delivered : t -> int
val run : t -> for_:Sim.Time.t -> unit
(** Advance the engine by the given amount of virtual time. *)

val audit_loops : t -> unit
(** Walk every successor chain; any cycle increments the metric's
    loop-violation counter. *)
