(** Builds and runs one complete simulation from a {!Scenario.t}:
    mobility processes, radio channel, per-node MAC + routing agent,
    CBR workload, metrics hooks, and (optionally) the loop-freedom
    auditor. *)

type outcome = {
  metrics : Metrics.t;
  summary : Metrics.summary;
  events_processed : int;
  mac_queue_drops : int;  (** interface-queue overflows, all nodes *)
  mac_unicast_failures : int;  (** retry-limit link failures, all nodes *)
  transmissions : int;  (** every frame on the air, ACKs included *)
}

val run : ?on_engine:(Sim.Engine.t -> unit) -> Scenario.t -> outcome

(** A handle over a built-but-not-yet-run simulation, for tests and
    examples that need to inspect or intervene mid-run. *)
type sim = {
  engine : Sim.Engine.t;
  agents : Routing.Agent.t array;
  macs : Net.Mac.t array;
  channel : Net.Channel.t;
  inject : src:int -> dst:int -> unit;
      (** originate one data packet now (unique uid per call) *)
  sim_metrics : Metrics.t;
  finalize : unit -> unit;  (** collect end-of-run gauges *)
}

val build : ?on_engine:(Sim.Engine.t -> unit) -> Scenario.t -> sim
(** Construct the simulation with its workload scheduled; the caller runs
    the engine. *)
