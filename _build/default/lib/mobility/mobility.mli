(** Node mobility processes.

    A mobility process answers "where is this node at time [t]?".  Query
    times must be non-decreasing for each process — the natural access
    pattern of a discrete-event simulation — which lets every model run in
    O(1) amortised time per query.

    Models:
    - {!static}: the node never moves.
    - {!waypoint}: the random waypoint model used by the paper's scenarios
      (pause, pick a uniform destination, move at a uniform-random speed).
    - {!random_walk}: direction/epoch random walk with boundary
      reflection; used by tests that want denser topology churn. *)

type t

val position : t -> Sim.Time.t -> Geom.Vec2.t
(** Position at [t].  Raises [Invalid_argument] if [t] precedes an earlier
    query on the same process. *)

val model_name : t -> string

val static : Geom.Vec2.t -> t

val waypoint :
  terrain:Geom.Terrain.t ->
  rng:Sim.Rng.t ->
  speed_min:float ->
  speed_max:float ->
  pause:Sim.Time.t ->
  start:Geom.Vec2.t ->
  t
(** Random waypoint: starting from [start], the node pauses for [pause],
    then moves to a uniform-random point of [terrain] at a speed drawn
    uniformly from [\[speed_min, speed_max\]], and repeats.  Speeds must
    satisfy [0 < speed_min <= speed_max]. *)

val random_walk :
  terrain:Geom.Terrain.t ->
  rng:Sim.Rng.t ->
  speed:float ->
  epoch:Sim.Time.t ->
  start:Geom.Vec2.t ->
  t
(** Fixed-speed walk choosing a fresh uniform direction every [epoch],
    reflecting off the terrain boundary. *)

val scripted : (Sim.Time.t * Geom.Vec2.t) list -> t
(** Piecewise-linear trajectory through the given (time, position)
    waypoints; constant before the first and after the last.  The list
    must be non-empty and strictly increasing in time.  Used by tests to
    force exact topology changes. *)
