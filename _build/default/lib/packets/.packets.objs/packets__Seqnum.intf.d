lib/packets/seqnum.mli: Format
