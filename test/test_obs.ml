(* Observability subsystem: event bus determinism, the continuous
   invariant monitor (clean runs and seeded corruption), and the JSONL
   round-trip through the trace analyzer. *)

open Sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

open Experiment

let scenario ?(seed = 7) ?(speed_max = 0.) ?(duration = 20.) ?(flows = 2)
    ?(nodes = 10) () =
  {
    Scenario.label = "obs-test";
    num_nodes = nodes;
    terrain = Geom.Terrain.create ~width:500. ~height:400.;
    placement = Scenario.Uniform;
    speed_min = (if speed_max > 0. then 1. else 0.);
    speed_max;
    pause = Time.sec 0.;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = flows;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Time.sec duration;
        startup_window = Time.sec 2.;
      };
    protocol = Scenario.ldr;
    net = Net.Params.default;
    seed;
    audit_loops = false;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

(* Sequence-number packing must preserve the lexicographic (stamp,
   counter) order — the monitor and the analyzer compare packed values
   only. *)
let seqnum_pack_order () =
  let open Packets in
  let cases =
    [
      (Seqnum.{ stamp = 0; counter = 0 }, Seqnum.{ stamp = 0; counter = 1 });
      (Seqnum.{ stamp = 0; counter = 999 }, Seqnum.{ stamp = 1; counter = 0 });
      (Seqnum.{ stamp = 3; counter = 7 }, Seqnum.{ stamp = 3; counter = 8 });
      ( Seqnum.{ stamp = 5; counter = 1 lsl 29 },
        Seqnum.{ stamp = 6; counter = 0 } );
    ]
  in
  List.iter
    (fun (lo, hi) ->
      checkb "pack preserves order" true (Seqnum.pack lo < Seqnum.pack hi);
      checkb "compare agrees" true Seqnum.(hi > lo))
    cases

(* The null-sink differential: attaching a sink that does nothing must
   not change the simulation at all — emission touches no RNG and no
   scheduling. *)
let null_sink_differential () =
  let plain = Runner.run (scenario ()) in
  let counted = ref 0 in
  let bus = Obs.Bus.create () in
  Obs.Bus.add_sink bus (fun _ -> incr counted);
  let sunk = Runner.run ~obs:bus (scenario ()) in
  checki "events processed equal" plain.Runner.events_processed
    sunk.Runner.events_processed;
  checki "transmissions equal" plain.Runner.transmissions
    sunk.Runner.transmissions;
  checki "delivered equal"
    (Metrics.delivered plain.Runner.metrics)
    (Metrics.delivered sunk.Runner.metrics);
  checkb "bus saw events" true (!counted > 100)

(* A healthy LDR run must never trip the monitor (Theorem 1). *)
let monitor_clean_run () =
  let outcome =
    Runner.run ~monitor:true (scenario ~speed_max:10. ~duration:30. ())
  in
  checki "no violations in clean run" 0 outcome.Runner.invariant_violations;
  checkb "delivered some" true (Metrics.delivered outcome.Runner.metrics > 0)

(* Seeded corruption: a forged newer-number RREP must trip the monitor
   at the offending write, and the analyzer must reconstruct the
   monitor's exact ring dump from the JSONL trace. *)
let monitor_catches_stale_seqno () =
  let trace_file = Filename.temp_file "obs_test" ".jsonl" in
  let injection = ref None in
  let first_viol = ref None in
  let window = ref [] in
  let viols = ref 0 in
  let outcome =
    Runner.run ~trace_out:trace_file
      ~prepare:(fun sim ->
        let m = Runner.attach_monitor ~quiet:true sim in
        Obs.Bus.add_sink sim.Runner.bus (fun ev ->
            if ev.Obs.Event.kind = Obs.Event.Violation && !first_viol = None
            then first_viol := Some (ev.Obs.Event.node, ev.Obs.Event.a));
        injection := Some (Fault.stale_seqno sim ~at:(Time.sec 10.));
        sim.Runner.cleanup <-
          (fun () ->
            viols := Obs.Monitor.violations m;
            window := Obs.Monitor.last_window m)
          :: sim.Runner.cleanup)
      (scenario ())
  in
  let inj = Option.get !injection in
  checkb "fault injected" true !(inj.Fault.injected);
  checkb "monitor fired" true (!viols >= 1);
  (* The injection record names the corrupted write: the first violation
     must be at the victim node, for the forged destination. *)
  (match !first_viol with
  | None -> Alcotest.fail "no violation event on the bus"
  | Some (node, dst) ->
      checki "violation at the injection victim" inj.Fault.victim node;
      checki "violation for the forged destination" inj.Fault.dst dst);
  checki "outcome reports violations" !viols
    outcome.Runner.invariant_violations;
  checkb "window non-empty" true (!window <> []);
  (match Obs.Reader.load trace_file with
  | Error e -> Alcotest.fail e
  | Ok t ->
      checki "trace records the violations" !viols (Obs.Reader.violations t);
      (match Obs.Reader.violation_window t (!viols - 1) with
      | None -> Alcotest.fail "violation window missing from trace"
      | Some (_line, lines) ->
          Alcotest.(check (list string))
            "analyzer window matches live ring dump" !window lines));
  Sys.remove trace_file

(* JSONL round-trip: every event written must come back, with labels
   re-interned so rendering matches the live pretty-printer. *)
let jsonl_roundtrip () =
  let trace_file = Filename.temp_file "obs_rt" ".jsonl" in
  let counted = ref 0 in
  let bus = Obs.Bus.create () in
  let oc = open_out trace_file in
  Obs.Bus.add_sink bus (Obs.Jsonl.sink bus oc);
  Obs.Bus.add_sink bus (fun _ -> incr counted);
  ignore (Runner.run ~obs:bus (scenario ~duration:10. ()));
  close_out oc;
  (match Obs.Reader.load trace_file with
  | Error e -> Alcotest.fail e
  | Ok t -> checki "all events round-trip" !counted (Obs.Reader.length t));
  Sys.remove trace_file

(* The sampler emits one line per interval with valid flat JSON. *)
let sampler_emits () =
  let sample_file = Filename.temp_file "obs_sample" ".jsonl" in
  ignore
    (Runner.run ~sample:(Time.sec 2.) ~sample_out:sample_file
       (scenario ~duration:10. ()));
  let ic = open_in sample_file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove sample_file;
  (* 10 s run + 2 s drain sampled every 2 s from t=0. *)
  checkb "several samples" true (List.length !lines >= 5);
  List.iter
    (fun l ->
      match Obs.Jsonl.parse_line l with
      | None -> Alcotest.fail ("unparseable sample line: " ^ l)
      | Some fields ->
          checkb "has t" true (List.mem_assoc "t" fields);
          checkb "has pending" true (List.mem_assoc "pending" fields))
    !lines

let () =
  Alcotest.run "obs"
    [
      ( "bus",
        [
          Alcotest.test_case "seqnum pack order" `Quick seqnum_pack_order;
          Alcotest.test_case "null-sink differential" `Slow
            null_sink_differential;
          Alcotest.test_case "jsonl roundtrip" `Slow jsonl_roundtrip;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "clean run" `Slow monitor_clean_run;
          Alcotest.test_case "catches stale seqno" `Slow
            monitor_catches_stale_seqno;
        ] );
      ( "sampler",
        [ Alcotest.test_case "emits gauges" `Slow sampler_emits ] );
    ]
