open Sim
open Packets

type config = {
  num_flows : int;
  packets_per_sec : float;
  payload_bytes : int;
  mean_flow_duration : Time.t;
  startup_window : Time.t;
}

let default_config =
  {
    num_flows = 10;
    packets_per_sec = 4.;
    payload_bytes = 512;
    mean_flow_duration = Time.sec 100.;
    startup_window = Time.sec 10.;
  }

(* One slot = an endless succession of flows.  The slot record carries
   the current flow's state and is re-armed by two pre-bound callbacks
   — one per packet tick, one per flow restart — via [Engine.at_fn], so
   steady-state traffic generation schedules without allocating
   closures.  RNG draw order (flow id, src/dst pair, duration) and
   event scheduling order (packet tick before restart) match the
   original closure-based generator exactly; same-instant determinism
   depends on it. *)
type slot = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  until : Time.t;
  num_nodes : int;
  emit : src:Node_id.t -> Data_msg.t -> unit;
  interval : Time.t;
  next_flow_id : int ref;  (* shared across slots *)
  mutable s_flow_id : int;
  mutable s_src : Node_id.t;
  mutable s_dst : Node_id.t;
  mutable s_seq : int;
  mutable s_stop : Time.t;
  mutable s_at : Time.t;  (* next packet tick *)
}

let pick_pair s =
  let src = Rng.int s.rng s.num_nodes in
  let rec pick_dst () =
    let d = Rng.int s.rng s.num_nodes in
    if d = src then pick_dst () else d
  in
  (Node_id.of_int src, Node_id.of_int (pick_dst ()))

let rec start_flow s start =
  if Time.(start < s.until) then begin
    s.s_flow_id <- !(s.next_flow_id);
    incr s.next_flow_id;
    let src, dst = pick_pair s in
    s.s_src <- src;
    s.s_dst <- dst;
    let duration =
      Time.sec (Rng.exponential s.rng (Time.to_sec s.config.mean_flow_duration))
    in
    s.s_stop <- Time.min s.until (Time.add start duration);
    s.s_seq <- 0;
    emit_packet s start;
    (* The slot restarts as soon as this flow ends. *)
    ignore (Engine.at_fn s.engine s.s_stop restart s)
  end

and emit_packet s at =
  if Time.(at < s.s_stop) then begin
    s.s_at <- at;
    ignore (Engine.at_fn s.engine at packet_tick s)
  end

and packet_tick s =
  let at = s.s_at in
  let msg =
    Data_msg.fresh ~flow_id:s.s_flow_id ~seq:s.s_seq ~src:s.s_src ~dst:s.s_dst
      ~payload_bytes:s.config.payload_bytes ~origin_time:at
  in
  s.s_seq <- s.s_seq + 1;
  s.emit ~src:s.s_src msg;
  emit_packet s (Time.add at s.interval)

and restart s = start_flow s s.s_stop

let setup ~engine ~rng ~num_nodes ~config ~until ~emit =
  if num_nodes < 2 then invalid_arg "Traffic.setup: need at least two nodes";
  let next_flow_id = ref 0 in
  let interval = Time.sec (1. /. config.packets_per_sec) in
  for _ = 1 to config.num_flows do
    let s =
      {
        engine;
        rng;
        config;
        until;
        num_nodes;
        emit;
        interval;
        next_flow_id;
        s_flow_id = 0;
        s_src = Node_id.of_int 0;
        s_dst = Node_id.of_int 0;
        s_seq = 0;
        s_stop = Time.zero;
        s_at = Time.zero;
      }
    in
    start_flow s (Rng.uniform_time rng config.startup_window)
  done

(* ---- Static flow plan (PDES) ------------------------------------------- *)

(* The sharded runner cannot draw flows lazily: a slot's restart draws
   (pair, duration) from the one shared traffic stream at its stop
   event, and under PDES that event lives on one shard while the next
   flow may belong to another.  [plan] replays the generator's exact
   draw sequence at setup instead — slot starts in slot order, then
   restart draws in stop-time order (ties in arming order, matching the
   scheduler's FIFO tie-break; draw-bearing ties are measure-zero
   anyway, since only stops clamped to [until] coincide and those draw
   nothing) — producing the same flows with no engine involved.  [arm]
   then schedules each flow on its owning shard: the first packet tick
   (subsequent ticks re-arm lazily, as the slot machinery does) plus a
   no-op marker at the stop time standing in for the restart event, so
   per-engine event counts match the classic path exactly. *)

type flow = {
  f_id : int;
  f_src : Node_id.t;
  f_dst : Node_id.t;
  f_start : Time.t;
  f_stop : Time.t;
}

let plan ~rng ~num_nodes ~config ~until =
  if num_nodes < 2 then invalid_arg "Traffic.plan: need at least two nodes";
  let pick_pair () =
    let src = Rng.int rng num_nodes in
    let rec pick_dst () =
      let d = Rng.int rng num_nodes in
      if d = src then pick_dst () else d
    in
    let src = Node_id.of_int src in
    (src, Node_id.of_int (pick_dst ()))
  in
  let next_flow_id = ref 0 in
  let flows = ref [] in
  (* Pending restarts, ordered by (stop time, arming order). *)
  let pending = ref [] in
  let rec insert ((t, s, _) as x) = function
    | [] -> [ x ]
    | ((t', s', _) as y) :: rest ->
        if (t, s) < (t', s') then x :: y :: rest else y :: insert x rest
  in
  let arm_seq = ref 0 in
  let start_flow start =
    if Time.(start < until) then begin
      let id = !next_flow_id in
      incr next_flow_id;
      let src, dst = pick_pair () in
      let duration =
        Time.sec (Rng.exponential rng (Time.to_sec config.mean_flow_duration))
      in
      let stop = Time.min until (Time.add start duration) in
      flows :=
        { f_id = id; f_src = src; f_dst = dst; f_start = start; f_stop = stop }
        :: !flows;
      pending := insert ((stop :> int), !arm_seq, ()) !pending;
      incr arm_seq
    end
  in
  for _ = 1 to config.num_flows do
    start_flow (Rng.uniform_time rng config.startup_window)
  done;
  let rec drain () =
    match !pending with
    | [] -> ()
    | (stop_ns, _, ()) :: rest ->
        pending := rest;
        start_flow (Time.unsafe_of_ns stop_ns);
        drain ()
  in
  drain ();
  List.rev !flows

(* Armed-flow state: like [slot], but single-flow (no restart chain). *)
type armed = {
  a_engine : Engine.t;
  a_config : config;
  a_emit : src:Node_id.t -> Data_msg.t -> unit;
  a_interval : Time.t;
  a_flow : flow;
  mutable a_seq : int;
  mutable a_at : Time.t;
}

let stop_marker (_ : armed) = ()

let rec arm_tick a at =
  if Time.(at < a.a_flow.f_stop) then begin
    a.a_at <- at;
    ignore (Engine.at_fn a.a_engine at armed_tick a)
  end

and armed_tick a =
  let at = a.a_at in
  let msg =
    Data_msg.fresh ~flow_id:a.a_flow.f_id ~seq:a.a_seq ~src:a.a_flow.f_src
      ~dst:a.a_flow.f_dst ~payload_bytes:a.a_config.payload_bytes
      ~origin_time:at
  in
  a.a_seq <- a.a_seq + 1;
  a.a_emit ~src:a.a_flow.f_src msg;
  arm_tick a (Time.add at a.a_interval)

let arm ~engine ~config ~emit flow =
  let a =
    {
      a_engine = engine;
      a_config = config;
      a_emit = emit;
      a_interval = Time.sec (1. /. config.packets_per_sec);
      a_flow = flow;
      a_seq = 0;
      a_at = Time.zero;
    }
  in
  arm_tick a flow.f_start;
  (* Stands in for the classic restart event so event counts match. *)
  ignore (Engine.at_fn engine flow.f_stop stop_marker a)
