(** The interface every routing protocol implements.

    A protocol is a {!factory}: given a per-node {!ctx} (the services the
    node stack provides), it returns the {!t} record of entry points the
    stack invokes.  Using plain records keeps the four protocols
    hot-swappable in the experiment runner and lets unit tests drive an
    agent with a hand-rolled context, no simulator required. *)

open Packets

type ctx = {
  id : Node_id.t;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  send : dst:Net.Frame.dst -> Payload.t -> unit;
      (** hand a packet to the MAC (unicast with ACK/retries, or
          broadcast) *)
  deliver : Data_msg.t -> unit;
      (** data arrived at its destination: hand to the application *)
  drop_data : Data_msg.t -> reason:string -> unit;
      (** data given up on (no route, buffer overflow, TTL...) *)
  event : ?dst:Node_id.t -> string -> unit;
      (** protocol-event counters for the paper's metrics, e.g.
          "rreq_init", "rrep_init", "rrep_usable_recv"; [dst] is the
          destination the event concerns, when there is one, and feeds
          the observability bus's [Proto] events *)
  table_changed : unit -> unit;
      (** invoked after every routing-table write; hook for the
          loop-freedom auditor *)
  obs : Obs.Bus.t;
      (** the stack's observability bus; protocols may pass it to their
          route tables so table writes are traced *)
}

type t = {
  origin_data : Data_msg.t -> unit;
      (** the application wants this packet carried to [Data_msg.dst] *)
  recv : Payload.t -> from:Node_id.t -> unit;
      (** packet addressed to this node (or broadcast) arrived *)
  overheard : Payload.t -> from:Node_id.t -> dst:Net.Frame.dst -> unit;
      (** promiscuously overheard traffic (used by DSR) *)
  link_failure : Payload.t -> next_hop:Node_id.t -> unit;
      (** MAC gave up delivering [payload] to [next_hop] *)
  start : unit -> unit;  (** arm periodic timers (proactive protocols) *)
  successor : Node_id.t -> Node_id.t option;
      (** current next hop toward a destination, if the protocol keeps a
          hop-by-hop table; drives the loop auditor *)
  own_seqno : unit -> float;
      (** the node's own destination sequence number, as a float so that
          LDR (increment count) and AODV (integer value) are comparable —
          the Fig-7 metric *)
  invariants : Node_id.t -> Obs.Event.inv option;
      (** the (packed seqno, distance, feasible distance) triple this
          node currently advertises for a destination, if the protocol
          maintains them; drives the continuous invariant monitor.
          Protocols without seqno/FD state return [None]. *)
  route_stats : unit -> int * int * int;
      (** [(entries, finite_fd_count, fd_sum)] over the route table —
          gauges for the time-series sampler.  Protocols without
          feasible distances report zeros for the last two. *)
  reset : crash:bool -> unit;
      (** churn teardown: the node went down.  Routes are invalidated
          through observable table writes, buffered data is dropped
          (reported), pending discoveries are cancelled and duplicate
          caches emptied.  [crash = true] additionally loses state a
          real implementation keeps in volatile memory — notably the
          node's own sequence number, the van Glabbeek et al. stressor
          for seqno-based loop freedom.  [crash = false] models a
          graceful leave/rejoin that remembers its number. *)
}

type factory = ctx -> t

val null_ctx : ?id:int -> Sim.Engine.t -> ctx
(** A context whose outputs go nowhere; for tests that poke agents
    directly. *)
