(** OLSR (RFC 3626 subset) — the paper's proactive baseline.

    Implements neighbor sensing via periodic HELLOs, multipoint-relay
    (MPR) selection, TC flooding over the MPR backbone, and shortest-path
    route computation.  Includes the paper's fix to the INRIA code: a
    FIFO jitter queue that spaces consecutive control transmissions by a
    uniform 0-15 ms gap while preserving order.  HNA/MID are out of scope
    (single interface, no gateways). *)

type config = {
  hello_interval : Sim.Time.t;  (** 2 s *)
  tc_interval : Sim.Time.t;  (** 5 s *)
  neighbor_hold : Sim.Time.t;  (** 3 x hello *)
  topology_hold : Sim.Time.t;  (** 3 x TC *)
  jitter_max : Sim.Time.t;  (** FIFO jitter-queue gap bound, 15 ms *)
  dup_hold : Sim.Time.t;
  data_ttl : int;
}

val default_config : config

val factory : ?config:config -> unit -> Routing.Agent.factory

val name : string

(** MPR selection in isolation, for unit tests: given the symmetric
    neighbors and each one's own symmetric neighborhood, return a minimal
    (greedy) relay set covering every strict two-hop neighbor. *)
val select_mprs :
  self:Packets.Node_id.t ->
  neighbors:(Packets.Node_id.t * Packets.Node_id.t list) list ->
  Packets.Node_id.Set.t
