type scheduler = [ `Heap | `Calendar | `Controlled ]

(* The heap stays as the reference scheduler behind a flag (as the
   naive channel did for the spatial grid): differential tests drive
   both and demand event-for-event identical outcomes.  The controlled
   set is the model checker's: introspectable pending events the
   explorer picks from, with the default pop identical to calendar
   order. *)
type sched =
  | Heap of Event_queue.t
  | Cal of Calendar_queue.t
  | Ctl of Controlled_queue.t

(* A recorded scheduler workload: the exact sequence of schedule /
   cancel / pop operations a run performed, in execution order.  The
   engine benchmark captures one from a scenario and replays it through
   each scheduler in isolation, timing the engine hot path on the real
   op mix — timing the full simulation instead would bury the scheduler
   under the (shared, identical) protocol and channel work.

   One byte of kind plus one int per op: 's' carries the absolute
   schedule time, 'p' the pop time, 'c' the index of the 's' op it
   cancels.  Cancel targets are resolved at record time through a
   per-slot (op index, generation) side table, so stale cancels —
   handles whose event already fired — are recorded too and replay as
   the no-ops they were. *)
module Trace = struct
  type t = {
    mutable kinds : Bytes.t;
    mutable vals : int array;
    mutable len : int;
    mutable pops : int;
    (* slot index -> (op index, generation) of its latest schedule *)
    mutable slot_op : int array;
    mutable slot_gen : int array;
  }

  let create () =
    {
      kinds = Bytes.create 4096;
      vals = Array.make 4096 0;
      len = 0;
      pops = 0;
      slot_op = Array.make 256 (-1);
      slot_gen = Array.make 256 (-1);
    }

  let push tr k v =
    if tr.len = Array.length tr.vals then begin
      let cap = 2 * tr.len in
      let kinds' = Bytes.create cap and vals' = Array.make cap 0 in
      Bytes.blit tr.kinds 0 kinds' 0 tr.len;
      Array.blit tr.vals 0 vals' 0 tr.len;
      tr.kinds <- kinds';
      tr.vals <- vals'
    end;
    Bytes.unsafe_set tr.kinds tr.len k;
    tr.vals.(tr.len) <- v;
    tr.len <- tr.len + 1

  let record_sched tr kind h time =
    push tr kind time;
    let idx = h land Calendar_queue.handle_idx_mask in
    let gen = h lsr Calendar_queue.handle_idx_bits in
    if idx >= Array.length tr.slot_op then begin
      let cap = ref (2 * Array.length tr.slot_op) in
      while idx >= !cap do cap := 2 * !cap done;
      let op' = Array.make !cap (-1) and gen' = Array.make !cap (-1) in
      Array.blit tr.slot_op 0 op' 0 (Array.length tr.slot_op);
      Array.blit tr.slot_gen 0 gen' 0 (Array.length tr.slot_gen);
      tr.slot_op <- op';
      tr.slot_gen <- gen'
    end;
    tr.slot_op.(idx) <- tr.len - 1;
    tr.slot_gen.(idx) <- gen

  let record_cancel tr h =
    let idx = h land Calendar_queue.handle_idx_mask in
    if
      idx < Array.length tr.slot_op
      && tr.slot_gen.(idx) = h lsr Calendar_queue.handle_idx_bits
    then push tr 'c' tr.slot_op.(idx)

  let record_pop tr time =
    push tr 'p' time;
    tr.pops <- tr.pops + 1

  let length tr = tr.len
  let pops tr = tr.pops
end

type t = {
  sched : sched;
  rng : Rng.t;
  mutable clock : Time.t;
  mutable fired : int;
  mutable trace : Trace.t option;
}

(* A handle is an immediate int (calendar: generation-packed slot
   handle, never 0) or a heap handle record.  Storing both behind
   [Obj.t] keeps the common case unboxed without a per-schedule variant
   allocation; [cancel] tells them apart by the engine's own mode, and
   [none] — the immediate 0 — is a valid "no timer" default for either. *)
type handle = Obj.t

let none : handle = Obj.repr 0
let is_none (h : handle) = h == Obj.repr 0

let create ?(seed = 1) ?(scheduler = `Calendar) () =
  let sched =
    match scheduler with
    | `Heap -> Heap (Event_queue.create ())
    | `Calendar -> Cal (Calendar_queue.create ())
    | `Controlled -> Ctl (Controlled_queue.create ())
  in
  { sched; rng = Rng.create seed; clock = Time.zero; fired = 0; trace = None }

let record_trace t =
  match t.sched with
  | Heap _ | Ctl _ ->
      invalid_arg "Engine.record_trace: only calendar engines can record"
  | Cal _ ->
      let tr = Trace.create () in
      t.trace <- Some tr;
      tr

let scheduler t =
  match t.sched with Heap _ -> `Heap | Cal _ -> `Calendar | Ctl _ -> `Controlled

let controlled t = match t.sched with Ctl _ -> true | Heap _ | Cal _ -> false
let now t = t.clock
let rng t = t.rng

let check_past t time =
  if Time.(time < t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.at: scheduling in the past (%s < %s)"
         (Time.to_string time) (Time.to_string t.clock))

let traced_handle t kind (h : int) (time : Time.t) =
  (match t.trace with
  | None -> ()
  | Some tr -> Trace.record_sched tr kind h (time :> int));
  Obj.repr h

(* Controlled handles pack the queue's sequence id as [seq + 1] so seq 0
   stays distinguishable from [none]. *)
let ctl_handle (seq : int) : handle = Obj.repr (seq + 1)

let at t time action =
  check_past t time;
  match t.sched with
  | Heap q -> Obj.repr (Event_queue.schedule q time action)
  | Cal q -> traced_handle t 'S' (Calendar_queue.schedule q time action) time
  | Ctl q -> ctl_handle (Controlled_queue.schedule q ~time:(time :> int) action)

let after t d action = at t (Time.add t.clock d) action

let at_tagged t time ~tag ~label action =
  check_past t time;
  match t.sched with
  | Heap q -> Obj.repr (Event_queue.schedule q time action)
  | Cal q -> traced_handle t 'S' (Calendar_queue.schedule q time action) time
  | Ctl q ->
      ctl_handle
        (Controlled_queue.schedule q ~tag ~label ~time:(time :> int) action)

let schedule_floating t ?(tag = -1) ?(label = "") action =
  match t.sched with
  | Heap _ | Cal _ ->
      (* Without a choosing explorer a floating event is just an event at
         the current instant. *)
      at t t.clock action
  | Ctl q ->
      ctl_handle
        (Controlled_queue.schedule q ~floating:true ~tag ~label
           ~time:(t.clock :> int) action)

(* Closure-free path for the high-frequency event classes (MAC timers,
   channel end-of-transmission, traffic ticks): the callback is a
   pre-bound top-level function and [arg] its state record, stored in
   the pooled event slot — nothing allocated per event.  In heap mode
   the pair is wrapped into a closure, preserving the allocating
   baseline the benchmark compares against. *)
let at_fn (type a) t time (fn : a -> unit) (arg : a) =
  check_past t time;
  match t.sched with
  | Heap q -> Obj.repr (Event_queue.schedule q time (fun () -> fn arg))
  | Cal q ->
      traced_handle t 's'
        (Calendar_queue.schedule_raw q time
           (Obj.magic fn : Obj.t -> unit)
           (Obj.repr arg))
        time
  | Ctl q ->
      (* mcheck runs are tiny; the closure allocation is irrelevant. *)
      ctl_handle
        (Controlled_queue.schedule q ~time:(time :> int) (fun () -> fn arg))

let after_fn t d fn arg = at_fn t (Time.add t.clock d) fn arg

let cancel t (h : handle) =
  if not (is_none h) then
    match t.sched with
    | Heap _ -> Event_queue.cancel (Obj.obj h : Event_queue.handle)
    | Cal q ->
        (match t.trace with
        | None -> ()
        | Some tr -> Trace.record_cancel tr (Obj.obj h : int));
        Calendar_queue.cancel q (Obj.obj h : int)
    | Ctl q -> Controlled_queue.cancel q ((Obj.obj h : int) - 1)

(* Periodic firings carry their state in one record armed with [at_fn],
   instead of a fresh closure pair per firing. *)
type periodic = {
  p_engine : t;
  p_jitter : unit -> Time.t;
  p_interval : Time.t;
  p_until : Time.t;
  p_action : unit -> unit;
  mutable p_next : Time.t;
}

let rec arm_periodic p =
  if Time.(p.p_next < p.p_until) then begin
    (* The cadence is jitter-free ([start], [start + interval], ...);
       the jitter only offsets each firing.  A jittered firing that
       lands at or past the horizon is skipped, not fired late. *)
    let fire = Time.add p.p_next (p.p_jitter ()) in
    if Time.(fire < p.p_until) then
      ignore (at_fn p.p_engine fire fire_periodic p)
    else begin
      p.p_next <- Time.add p.p_next p.p_interval;
      arm_periodic p
    end
  end

and fire_periodic p =
  p.p_action ();
  p.p_next <- Time.add p.p_next p.p_interval;
  arm_periodic p

let every t ?(jitter = fun () -> Time.zero) ~start ~interval ~until action =
  if Time.(interval <= Time.zero) then
    invalid_arg "Engine.every: interval must be positive";
  arm_periodic
    {
      p_engine = t;
      p_jitter = jitter;
      p_interval = interval;
      p_until = until;
      p_action = action;
      p_next = start;
    }

(* Fire a popped controlled event.  A floating event's nominal time can
   be behind the clock (it was created earlier and held); the clock only
   moves forward. *)
let fire_ctl t (time, action) =
  let time = Time.unsafe_of_ns time in
  if Time.(time > t.clock) then t.clock <- time;
  t.fired <- t.fired + 1;
  action ()

let step t =
  match t.sched with
  | Heap q -> (
      match Event_queue.pop q with
      | None -> false
      | Some (time, action) ->
          t.clock <- time;
          t.fired <- t.fired + 1;
          action ();
          true)
  | Cal q ->
      if Calendar_queue.pop_staged q max_int then begin
        t.clock <- Calendar_queue.staged_time q;
        t.fired <- t.fired + 1;
        (match t.trace with
        | None -> ()
        | Some tr -> Trace.record_pop tr (t.clock :> int));
        Calendar_queue.run_staged q;
        true
      end
      else false
  | Ctl q -> (
      match Controlled_queue.pop_min q () with
      | None -> false
      | Some ev ->
          fire_ctl t ev;
          true)

let ready_set t =
  match t.sched with
  | Ctl q -> Controlled_queue.ready q
  | Heap _ | Cal _ ->
      invalid_arg "Engine.ready_set: requires the controlled scheduler"

let pending_set t =
  match t.sched with
  | Ctl q -> Controlled_queue.pending q
  | Heap _ | Cal _ ->
      invalid_arg "Engine.pending_set: requires the controlled scheduler"

let fire_seq t seq =
  match t.sched with
  | Ctl q -> (
      match Controlled_queue.take q seq with
      | None -> false
      | Some ev ->
          fire_ctl t ev;
          true)
  | Heap _ | Cal _ ->
      invalid_arg "Engine.fire_seq: requires the controlled scheduler"

let advance_clock t time =
  match t.sched with
  | Ctl _ -> if Time.(time > t.clock) then t.clock <- time
  | Heap _ | Cal _ ->
      invalid_arg "Engine.advance_clock: requires the controlled scheduler"

let run ?until ?max_events t =
  (match t.sched with
  | Heap q ->
      let budget_ok () =
        match max_events with None -> true | Some m -> t.fired < m
      in
      let next () =
        match until with
        | None -> Event_queue.pop q
        | Some limit -> Event_queue.pop_until q limit
      in
      let running = ref true in
      while !running && budget_ok () do
        match next () with
        | None -> running := false
        | Some (time, action) ->
            t.clock <- time;
            t.fired <- t.fired + 1;
            action ()
      done
  | Cal q ->
      let limit =
        match until with None -> max_int | Some l -> (l :> int)
      in
      let budget = match max_events with None -> max_int | Some m -> m in
      let running = ref true in
      while !running && t.fired < budget do
        if Calendar_queue.pop_staged q limit then begin
          t.clock <- Calendar_queue.staged_time q;
          t.fired <- t.fired + 1;
          (match t.trace with
          | None -> ()
          | Some tr -> Trace.record_pop tr (t.clock :> int));
          Calendar_queue.run_staged q
        end
        else running := false
      done
  | Ctl q ->
      let limit = match until with None -> max_int | Some l -> (l :> int) in
      let budget = match max_events with None -> max_int | Some m -> m in
      let running = ref true in
      while !running && t.fired < budget do
        match Controlled_queue.pop_min q ~limit () with
        | Some ev -> fire_ctl t ev
        | None -> running := false
      done);
  (* Advance the clock to the horizon — idle virtual time passes too, so
     repeated bounded runs observe consistent timestamps.  Not when the
     event budget stopped us with work still pending at or before the
     horizon: fast-forwarding then would move the clock backwards on the
     next [step]. *)
  match until with
  | Some limit when Time.(t.clock < limit) ->
      let pending_before_horizon =
        match t.sched with
        | Heap q -> (
            match Event_queue.next_time q with
            | Some next -> Time.(next <= limit)
            | None -> false)
        | Cal q -> Calendar_queue.next_time_ns q <= (limit :> int)
        | Ctl q -> Controlled_queue.next_time_ns q <= (limit :> int)
      in
      if not pending_before_horizon then t.clock <- limit
  | Some _ | None -> ()

let events_processed t = t.fired

let next_time_ns t =
  match t.sched with
  | Heap q -> (
      match Event_queue.next_time q with
      | Some time -> (time :> int)
      | None -> max_int)
  | Cal q -> Calendar_queue.next_time_ns q
  | Ctl q -> Controlled_queue.next_time_ns q

type stats = { pending : int; fired : int }

let stats t =
  let pending =
    match t.sched with
    | Heap q -> Event_queue.live_count q
    | Cal q -> Calendar_queue.live_count q
    | Ctl q -> Controlled_queue.live_count q
  in
  { pending; fired = t.fired }

let calendar_buckets t =
  match t.sched with
  | Heap _ | Ctl _ -> 0
  | Cal q -> Calendar_queue.num_buckets q

let calendar_occupancy t =
  match t.sched with
  | Heap _ | Ctl _ -> 0.
  | Cal q ->
      let buckets = Calendar_queue.num_buckets q in
      if buckets = 0 then 0.
      else float_of_int (Calendar_queue.live_count q) /. float_of_int buckets

(* Replay a recorded workload through a fresh engine with no-op
   callbacks: pure scheduler cost, on the public scheduling API each
   mode actually pays (the heap path wraps its closure, the calendar
   path stores the pre-bound pair).  Schedule times are absolute and
   were recorded at or after the then-current clock, and pops happen at
   the same interleaving points, so the replayed clock never overtakes
   a recorded schedule time. *)
let replay_nop (_ : Obj.t) = ()
let replay_nop_unit () = ()

let replay_trace ~scheduler (tr : Trace.t) =
  let e = create ~scheduler () in
  let handles = Array.make (Stdlib.max 1 tr.Trace.len) none in
  let kinds = tr.Trace.kinds and vals = tr.Trace.vals in
  for k = 0 to tr.Trace.len - 1 do
    match Bytes.unsafe_get kinds k with
    | 's' ->
        (* Closure-free path: heap mode wraps, calendar stores the pair. *)
        handles.(k) <-
          at_fn e (Time.unsafe_of_ns vals.(k)) replay_nop (Obj.repr 0)
    | 'S' ->
        (* Closure path: both modes store the caller's closure as-is. *)
        handles.(k) <- at e (Time.unsafe_of_ns vals.(k)) replay_nop_unit
    | 'c' -> cancel e handles.(vals.(k))
    | _ -> ignore (step e)
  done;
  e.fired
