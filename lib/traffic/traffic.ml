open Sim
open Packets

type config = {
  num_flows : int;
  packets_per_sec : float;
  payload_bytes : int;
  mean_flow_duration : Time.t;
  startup_window : Time.t;
}

let default_config =
  {
    num_flows = 10;
    packets_per_sec = 4.;
    payload_bytes = 512;
    mean_flow_duration = Time.sec 100.;
    startup_window = Time.sec 10.;
  }

(* One slot = an endless succession of flows.  The slot record carries
   the current flow's state and is re-armed by two pre-bound callbacks
   — one per packet tick, one per flow restart — via [Engine.at_fn], so
   steady-state traffic generation schedules without allocating
   closures.  RNG draw order (flow id, src/dst pair, duration) and
   event scheduling order (packet tick before restart) match the
   original closure-based generator exactly; same-instant determinism
   depends on it. *)
type slot = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  until : Time.t;
  num_nodes : int;
  emit : src:Node_id.t -> Data_msg.t -> unit;
  interval : Time.t;
  next_flow_id : int ref;  (* shared across slots *)
  mutable s_flow_id : int;
  mutable s_src : Node_id.t;
  mutable s_dst : Node_id.t;
  mutable s_seq : int;
  mutable s_stop : Time.t;
  mutable s_at : Time.t;  (* next packet tick *)
}

let pick_pair s =
  let src = Rng.int s.rng s.num_nodes in
  let rec pick_dst () =
    let d = Rng.int s.rng s.num_nodes in
    if d = src then pick_dst () else d
  in
  (Node_id.of_int src, Node_id.of_int (pick_dst ()))

let rec start_flow s start =
  if Time.(start < s.until) then begin
    s.s_flow_id <- !(s.next_flow_id);
    incr s.next_flow_id;
    let src, dst = pick_pair s in
    s.s_src <- src;
    s.s_dst <- dst;
    let duration =
      Time.sec (Rng.exponential s.rng (Time.to_sec s.config.mean_flow_duration))
    in
    s.s_stop <- Time.min s.until (Time.add start duration);
    s.s_seq <- 0;
    emit_packet s start;
    (* The slot restarts as soon as this flow ends. *)
    ignore (Engine.at_fn s.engine s.s_stop restart s)
  end

and emit_packet s at =
  if Time.(at < s.s_stop) then begin
    s.s_at <- at;
    ignore (Engine.at_fn s.engine at packet_tick s)
  end

and packet_tick s =
  let at = s.s_at in
  let msg =
    Data_msg.fresh ~flow_id:s.s_flow_id ~seq:s.s_seq ~src:s.s_src ~dst:s.s_dst
      ~payload_bytes:s.config.payload_bytes ~origin_time:at
  in
  s.s_seq <- s.s_seq + 1;
  s.emit ~src:s.s_src msg;
  emit_packet s (Time.add at s.interval)

and restart s = start_flow s s.s_stop

let setup ~engine ~rng ~num_nodes ~config ~until ~emit =
  if num_nodes < 2 then invalid_arg "Traffic.setup: need at least two nodes";
  let next_flow_id = ref 0 in
  let interval = Time.sec (1. /. config.packets_per_sec) in
  for _ = 1 to config.num_flows do
    let s =
      {
        engine;
        rng;
        config;
        until;
        num_nodes;
        emit;
        interval;
        next_flow_id;
        s_flow_id = 0;
        s_src = Node_id.of_int 0;
        s_dst = Node_id.of_int 0;
        s_seq = 0;
        s_stop = Time.zero;
        s_at = Time.zero;
      }
    in
    start_flow s (Rng.uniform_time rng config.startup_window)
  done
