(** LDR routing table.

    Per destination the table keeps the labeled-distance invariants
    (sequence number, measured distance, feasible distance), the
    successor, and an expiry.  Invariants outlive route invalidation:
    when a route breaks, the entry's [sn]/[fd] remain and constrain
    future updates — this is what makes LDR loop-free across failures.

    {!apply_advert} implements NDC plus the paper's Procedure 3 (Set
    Route), including the stable-path rule: a node with an active route
    only switches successors for a shorter path or a newer number. *)

open Packets

type alternate = {
  alt_via : Node_id.t;
  alt_adv : int;  (** distance the alternate advertised *)
  alt_dist : int;  (** our distance through it (advertised + link cost) *)
}

type entry = {
  mutable sn : Seqnum.t;
  mutable dist : int;
  mutable fd : int;
  mutable next_hop : Node_id.t option;  (** [None]: route invalid *)
  mutable expires : Sim.Time.t;
  mutable alternates : alternate list;
      (** multipath extension: neighbors whose advertised distance beat
          [fd] under the current number — the LFI condition (PDA), every
          one a loop-free successor.  Kept only when the table is created
          with [multipath:true]; cleared on sequence-number change. *)
}

type t

val create :
  ?multipath:bool -> ?obs:Obs.Bus.t -> ?owner:int -> engine:Sim.Engine.t ->
  unit -> t
(** With [multipath] (default false), feasible non-primary
    advertisements are retained as alternates and {!invalidate_via}
    promotes them instead of invalidating.  When [obs] is given, every
    structural write (install, refresh, invalidation, failover
    promotion) emits an {!Obs.Event.Table_write} on the bus tagged with
    [owner] (the node id as an int, default -1). *)

val find : t -> Node_id.t -> entry option
(** The entry, live or not. *)

val active : t -> Node_id.t -> entry option
(** The entry iff it has a successor and has not expired. *)

val invariants : t -> Node_id.t -> Conditions.info option

val remaining_lifetime : t -> entry -> Sim.Time.t

val refresh : t -> entry -> lifetime:Sim.Time.t -> unit
(** Push the expiry out to at least [now + lifetime]. *)

val apply_advert :
  t ->
  ?lc:int ->
  dst:Node_id.t ->
  adv_sn:Seqnum.t ->
  adv_dist:int ->
  via:Node_id.t ->
  lifetime:Sim.Time.t ->
  unit ->
  [ `Installed | `Refreshed | `Rejected ]
(** Process an advertisement for [dst] with advertised distance
    [adv_dist] heard from neighbor [via] over a link of positive cost
    [lc] (default 1 — hop counts; the paper notes LDR works unchanged
    with general positive symmetric costs).

    [`Installed]: NDC held and the route was (re)written by Procedure 3.
    [`Refreshed]: the advertisement repeats the current active route
    (same successor, same number, no worse distance) — expiry extended,
    invariants updated, but nothing structural changed.
    [`Rejected]: NDC failed, or the stable-path rule kept the current
    active successor. *)

val invalidate : t -> Node_id.t -> unit
(** Drop the successor for this destination; invariants persist. *)

val invalidate_via : t -> Node_id.t -> Node_id.t list * Node_id.t list
(** The neighbor is gone: every route using it as successor fails over to
    its best feasible alternate when one exists (multipath mode) or is
    invalidated.  Returns [(invalidated, promoted)] destination lists;
    the neighbor is also purged from all alternate sets. *)

val fail_route :
  t -> Node_id.t -> via:Node_id.t -> [ `Promoted | `Invalidated | `Untouched ]
(** The route to this destination through [via] is dead (e.g. a RERR from
    [via]): fail over to the best feasible alternate if multipath is on,
    else invalidate.  [`Untouched] when the current successor is not
    [via].  [via] is purged from the alternate set in every case. *)

val successor : t -> Node_id.t -> Node_id.t option
(** Next hop of the active route, if any. *)

val clear : t -> unit
(** Churn teardown: invalidate every route through the normal observable
    table write (successor -> none), then drop all entries.  The loop
    monitor and flap analyzer see the edges disappear. *)

val iter : t -> (Node_id.t -> entry -> unit) -> unit
