lib/stats/table.mli:
