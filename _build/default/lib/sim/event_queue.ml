type handle = {
  time : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable heap : handle array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy =
  { time = Time.zero; seq = -1; action = ignore; cancelled = true }

let create () = { heap = Array.make 64 dummy; size = 0; next_seq = 0 }

let before a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let schedule t time action =
  if t.size = Array.length t.heap then grow t;
  let h = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.size) <- h;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  h

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled

let remove_top t =
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0

(* Discard cancelled events sitting at the top of the heap. *)
let rec settle t =
  if t.size > 0 && t.heap.(0).cancelled then begin
    remove_top t;
    settle t
  end

let next_time t =
  settle t;
  if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  settle t;
  if t.size = 0 then None
  else begin
    let h = t.heap.(0) in
    remove_top t;
    Some (h.time, h.action)
  end

let is_empty t =
  settle t;
  t.size = 0

let live_count t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr n
  done;
  !n
