(** Multi-trial aggregation: the paper repeats every configuration for 10
    random seeds and reports means with 95 % confidence intervals.

    Every entry point takes [?jobs] (default 1: run inline,
    sequentially, exactly as before).  With [jobs > 1] the trial matrix
    fans across that many domains via {!Parallel.map}; [jobs = 0] means
    auto ({!Parallel.recommended_jobs}).  Each trial builds a fully
    isolated simulation (own engine, RNG, metrics, observability bus),
    and results are folded in ascending seed order regardless of
    completion order, so per-seed outcomes and the aggregated Welford
    statistics are bit-identical for every [jobs] value. *)

type point = {
  delivery_ratio : Stats.Welford.t;
  latency_ms : Stats.Welford.t;
  network_load : Stats.Welford.t;
  byte_load : Stats.Welford.t;
  rreq_load : Stats.Welford.t;
  rrep_init : Stats.Welford.t;
  rrep_recv : Stats.Welford.t;
  mean_dest_seqno : Stats.Welford.t;
}

val empty_point : unit -> point
val add_summary : point -> Metrics.summary -> unit
val merge_points : point -> point -> point

val run :
  ?jobs:int ->
  Scenario.t ->
  points:(Scenario.t -> Scenario.t) list ->
  trials:int ->
  point list
(** [run sc ~points ~trials] applies each refinement in [points] to
    [sc] (one parameter point each — pause time, flow count, ...) and
    runs every point for [trials] seeds [seed, seed+1, ...],
    aggregating one {!point} per parameter point.  The full
    (point × seed) matrix is one parallel batch, so workers stay busy
    across point boundaries. *)

val trial_outcomes : ?jobs:int -> Scenario.t -> n:int -> Runner.outcome array
(** The raw per-seed outcomes of [n] trials under seeds
    [seed, seed+1, ...], in seed order — the differential-conformance
    tests compare these element-wise across [jobs] values. *)

val trials : ?jobs:int -> Scenario.t -> n:int -> point
(** Run the scenario [n] times under seeds [seed, seed+1, ...] and
    aggregate. *)

val pause_sweep :
  ?jobs:int ->
  Scenario.t ->
  pauses:Sim.Time.t list ->
  trials:int ->
  (Sim.Time.t * point) list
(** One aggregated point per pause time — a figure series. *)
