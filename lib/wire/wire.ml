type error = { offset : int; reason : string }

let pp_error fmt e = Format.fprintf fmt "offset %d: %s" e.offset e.reason
let error_to_string e = Format.asprintf "%a" pp_error e

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 64) () =
    { buf = Bytes.create (max capacity 16); len = 0 }

  let clear t = t.len <- 0
  let length t = t.len

  let ensure t n =
    let need = t.len + n in
    let cap = Bytes.length t.buf in
    if need > cap then begin
      let cap = ref (cap * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xffff);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len (Int32.of_int (v land 0xffffffff));
    t.len <- t.len + 4

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_be t.buf t.len v;
    t.len <- t.len + 8

  let zeros t n =
    ensure t n;
    Bytes.fill t.buf t.len n '\000';
    t.len <- t.len + n

  let contents t = Bytes.sub t.buf 0 t.len
end

module Reader = struct
  type t = { buf : Bytes.t; limit : int; mutable pos : int }

  let of_bytes ?(pos = 0) ?len buf =
    let limit =
      match len with Some l -> pos + l | None -> Bytes.length buf
    in
    { buf; limit; pos }

  let pos t = t.pos
  let remaining t = t.limit - t.pos
  let fail t reason = Error { offset = t.pos; reason }

  let u8 t =
    if remaining t < 1 then fail t "u8 past end"
    else begin
      let v = Char.code (Bytes.unsafe_get t.buf t.pos) in
      t.pos <- t.pos + 1;
      Ok v
    end

  let u16 t =
    if remaining t < 2 then fail t "u16 past end"
    else begin
      let v = Bytes.get_uint16_be t.buf t.pos in
      t.pos <- t.pos + 2;
      Ok v
    end

  let u32 t =
    if remaining t < 4 then fail t "u32 past end"
    else begin
      let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xffffffff in
      t.pos <- t.pos + 4;
      Ok v
    end

  let u64 t =
    if remaining t < 8 then fail t "u64 past end"
    else begin
      let v = Bytes.get_int64_be t.buf t.pos in
      t.pos <- t.pos + 8;
      Ok v
    end

  let skip t n =
    if n < 0 || remaining t < n then fail t "skip past end"
    else begin
      t.pos <- t.pos + n;
      Ok ()
    end

  let expect_end t =
    if remaining t = 0 then Ok () else fail t "trailing bytes"
end

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             if !c land 1 = 1 then c := 0xedb88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c))

  let bytes b ~pos ~len =
    let table = Lazy.force table in
    let crc = ref 0xffffffff in
    for i = pos to pos + len - 1 do
      crc :=
        table.((!crc lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
        lxor (!crc lsr 8)
    done;
    !crc lxor 0xffffffff
end

let ( let* ) = Result.bind

(* An [Error _] tagged with the position of the value just read. *)
let reject (r : Reader.t) width reason =
  Error { offset = Reader.pos r - width; reason }

let check r width cond reason = if cond then Ok () else reject r width reason

let expect_u8 r expected reason =
  let* v = Reader.u8 r in
  check r 1 (v = expected) reason

let expect_u16 r expected reason =
  let* v = Reader.u16 r in
  check r 2 (v = expected) reason

let read_list r n f =
  let rec go acc k =
    if k = 0 then Ok (List.rev acc)
    else
      let* v = f r in
      go (v :: acc) (k - 1)
  in
  go [] n

let node_of_int = Packets.Node_id.of_int

let read_node r =
  let* v = Reader.u32 r in
  Ok (node_of_int v)

let write_node w id = Writer.u32 w (Packets.Node_id.to_int id)

let write_sn w (sn : Packets.Seqnum.t) =
  Writer.u32 w sn.stamp;
  Writer.u32 w sn.counter

let read_sn r =
  let* stamp = Reader.u32 r in
  let* counter = Reader.u32 r in
  Ok { Packets.Seqnum.stamp; counter }

(* Lifetimes travel as whole milliseconds in a 32-bit field (RFC 3561
   §5.1 semantics); sub-millisecond residue is truncated on encode. *)
let write_lifetime_ms w t =
  let ms = Int64.to_int (Int64.div (Sim.Time.to_ns t) 1_000_000L) in
  Writer.u32 w ms

let read_lifetime_ms r =
  let* ms = Reader.u32 r in
  Ok (Sim.Time.unsafe_of_ns (ms * 1_000_000))

module Ldr = struct
  (* Mirrors [Ldr.Conditions.infinity]; wire cannot depend on the ldr
     library (ldr depends on net depends on wire), so the equality is
     pinned by a test instead. *)
  let infinite_distance = max_int / 4

  let write_dist w v =
    Writer.u32 w (if v >= infinite_distance then 0xffffffff else v)

  let read_dist r =
    let* v = Reader.u32 r in
    Ok (if v = 0xffffffff then infinite_distance else v)

  let encoded_length (t : Packets.Ldr_msg.t) =
    match t with
    | Rreq _ -> 44
    | Rrep _ -> 32
    | Rerr { unreachable } -> 4 + (12 * List.length unreachable)
    | Rreq_agg members -> 4 + (44 * List.length members)

  let flag_reset = 0x80
  let flag_no_reverse = 0x40
  let flag_probe = 0x20
  let flag_unknown_sn = 0x10

  let rec write w (t : Packets.Ldr_msg.t) =
    match t with
    | Rreq q ->
        Writer.u8 w 1;
        Writer.u8 w
          ((if q.reset then flag_reset else 0)
          lor (if q.no_reverse then flag_no_reverse else 0)
          lor (if q.unicast_probe then flag_probe else 0)
          lor match q.dst_sn with None -> flag_unknown_sn | Some _ -> 0);
        Writer.u8 w q.ttl;
        Writer.u8 w 0;
        Writer.u32 w q.rreq_id;
        write_node w q.dst;
        (match q.dst_sn with
        | None -> Writer.u64 w 0L
        | Some sn -> write_sn w sn);
        write_node w q.origin;
        write_sn w q.origin_sn;
        write_dist w q.fd;
        write_dist w q.answer_dist;
        write_dist w q.dist
    | Rrep p ->
        Writer.u8 w 2;
        Writer.u8 w (if p.rrep_no_reverse then flag_no_reverse else 0);
        Writer.u16 w 0;
        write_node w p.dst;
        write_sn w p.dst_sn;
        write_node w p.origin;
        Writer.u32 w p.rreq_id;
        write_dist w p.dist;
        write_lifetime_ms w p.lifetime
    | Rerr { unreachable } ->
        Writer.u8 w 3;
        Writer.u8 w 0;
        Writer.u8 w (List.length unreachable);
        Writer.u8 w 0;
        List.iter
          (fun (id, sn) ->
            write_node w id;
            match sn with
            | None ->
                Writer.u32 w 0xffffffff;
                Writer.u32 w 0xffffffff
            | Some sn -> write_sn w sn)
          unreachable
    | Rreq_agg members ->
        (* Aggregation option block (type 4): a count octet, two reserved
           octets, then the member RREQs nested whole — each with its own
           type octet — so member layout stays byte-identical to a plain
           flood and the per-member fields (TTL, flags, distances) need no
           re-encoding rules of their own. *)
        Writer.u8 w 4;
        Writer.u8 w (List.length members);
        Writer.u16 w 0;
        List.iter (fun q -> write w (Packets.Ldr_msg.Rreq q)) members

  let rec read r : (Packets.Ldr_msg.t, error) result =
    let* typ = Reader.u8 r in
    match typ with
    | 1 ->
        let* flags = Reader.u8 r in
        let* () = check r 1 (flags land 0x0f = 0) "ldr rreq: reserved flag bits" in
        let* ttl = Reader.u8 r in
        let* () = expect_u8 r 0 "ldr rreq: reserved octet" in
        let* rreq_id = Reader.u32 r in
        let* dst = read_node r in
        let* sn = read_sn r in
        let unknown = flags land flag_unknown_sn <> 0 in
        let* () =
          check r 8
            ((not unknown) || (sn.stamp = 0 && sn.counter = 0))
            "ldr rreq: U flag with nonzero dst_sn"
        in
        let dst_sn = if unknown then None else Some sn in
        let* origin = read_node r in
        let* origin_sn = read_sn r in
        let* fd = read_dist r in
        let* answer_dist = read_dist r in
        let* dist = read_dist r in
        Ok
          (Packets.Ldr_msg.Rreq
             {
               dst;
               dst_sn;
               rreq_id;
               origin;
               origin_sn;
               fd;
               answer_dist;
               dist;
               ttl;
               reset = flags land flag_reset <> 0;
               no_reverse = flags land flag_no_reverse <> 0;
               unicast_probe = flags land flag_probe <> 0;
             })
    | 2 ->
        let* flags = Reader.u8 r in
        let* () =
          check r 1 (flags land lnot flag_no_reverse = 0)
            "ldr rrep: reserved flag bits"
        in
        let* () = expect_u16 r 0 "ldr rrep: reserved octets" in
        let* dst = read_node r in
        let* dst_sn = read_sn r in
        let* origin = read_node r in
        let* rreq_id = Reader.u32 r in
        let* dist = read_dist r in
        let* lifetime = read_lifetime_ms r in
        Ok
          (Packets.Ldr_msg.Rrep
             {
               dst;
               dst_sn;
               origin;
               rreq_id;
               dist;
               lifetime;
               rrep_no_reverse = flags land flag_no_reverse <> 0;
             })
    | 3 ->
        let* () = expect_u8 r 0 "ldr rerr: reserved flags" in
        let* count = Reader.u8 r in
        let* () = expect_u8 r 0 "ldr rerr: reserved octet" in
        let* () =
          check r 1 (Reader.remaining r = 12 * count) "ldr rerr: length mismatch"
        in
        let* unreachable =
          read_list r count (fun r ->
              let* id = read_node r in
              let* sn = read_sn r in
              let sn =
                if sn.stamp = 0xffffffff && sn.counter = 0xffffffff then None
                else Some sn
              in
              Ok (id, sn))
        in
        Ok (Packets.Ldr_msg.Rerr { unreachable })
    | 4 ->
        let* count = Reader.u8 r in
        let* () = check r 1 (count >= 1) "ldr rreq-agg: empty aggregate" in
        let* () = expect_u16 r 0 "ldr rreq-agg: reserved octets" in
        let* () =
          check r 1
            (Reader.remaining r = 44 * count)
            "ldr rreq-agg: length mismatch"
        in
        let* members =
          read_list r count (fun r ->
              let* m = read r in
              match m with
              | Packets.Ldr_msg.Rreq q -> Ok q
              | _ -> reject r 1 "ldr rreq-agg: member is not a RREQ")
        in
        Ok (Packets.Ldr_msg.Rreq_agg members)
    | _ -> reject r 1 "ldr: unknown message type"

  let encode t =
    let w = Writer.create ~capacity:(encoded_length t) () in
    write w t;
    Writer.contents w

  let decode b =
    let r = Reader.of_bytes b in
    let* t = read r in
    let* () = Reader.expect_end r in
    Ok t
end

module Aodv = struct
  let flag_unknown_sn = 0x08

  let encoded_length (t : Packets.Aodv_msg.t) =
    match t with
    | Rreq _ -> 24
    | Rrep _ -> 20
    | Rerr { unreachable } -> 4 + (8 * List.length unreachable)
    | Rreq_agg members -> 4 + (24 * List.length members)

  let rec write w (t : Packets.Aodv_msg.t) =
    match t with
    | Rreq q ->
        Writer.u8 w 1;
        Writer.u8 w (match q.dst_sn with None -> flag_unknown_sn | Some _ -> 0);
        (* RFC 3561 carries the expanding-ring TTL in the IP header; with
           no IP layer here it rides the RREQ's reserved octet. *)
        Writer.u8 w q.ttl;
        Writer.u8 w q.hop_count;
        Writer.u32 w q.rreq_id;
        write_node w q.dst;
        Writer.u32 w (match q.dst_sn with None -> 0 | Some sn -> sn);
        write_node w q.origin;
        Writer.u32 w q.origin_sn
    | Rrep p ->
        Writer.u8 w 2;
        Writer.u8 w 0;
        Writer.u8 w 0;
        Writer.u8 w p.hop_count;
        write_node w p.dst;
        Writer.u32 w p.dst_sn;
        write_node w p.origin;
        write_lifetime_ms w p.lifetime
    | Rerr { unreachable } ->
        Writer.u8 w 3;
        Writer.u8 w 0;
        Writer.u8 w (List.length unreachable);
        Writer.u8 w 0;
        List.iter
          (fun (id, sn) ->
            write_node w id;
            Writer.u32 w sn)
          unreachable
    | Rreq_agg members ->
        (* Aggregation option block; type 16 sits outside RFC 3561's 1-4
           range, marking it as the extension it is.  Same shape as the
           LDR block: count octet, two reserved octets, nested whole
           member RREQs. *)
        Writer.u8 w 16;
        Writer.u8 w (List.length members);
        Writer.u16 w 0;
        List.iter (fun q -> write w (Packets.Aodv_msg.Rreq q)) members

  let rec read r : (Packets.Aodv_msg.t, error) result =
    let* typ = Reader.u8 r in
    match typ with
    | 1 ->
        let* flags = Reader.u8 r in
        let* () =
          check r 1 (flags land lnot flag_unknown_sn = 0)
            "aodv rreq: reserved flag bits"
        in
        let* ttl = Reader.u8 r in
        let* hop_count = Reader.u8 r in
        let* rreq_id = Reader.u32 r in
        let* dst = read_node r in
        let* sn = Reader.u32 r in
        let unknown = flags land flag_unknown_sn <> 0 in
        let* () =
          check r 4 ((not unknown) || sn = 0) "aodv rreq: U flag with nonzero sn"
        in
        let dst_sn = if unknown then None else Some sn in
        let* origin = read_node r in
        let* origin_sn = Reader.u32 r in
        Ok
          (Packets.Aodv_msg.Rreq
             { dst; dst_sn; rreq_id; origin; origin_sn; hop_count; ttl })
    | 2 ->
        let* () = expect_u8 r 0 "aodv rrep: reserved flags" in
        let* () = expect_u8 r 0 "aodv rrep: prefix size" in
        let* hop_count = Reader.u8 r in
        let* dst = read_node r in
        let* dst_sn = Reader.u32 r in
        let* origin = read_node r in
        let* lifetime = read_lifetime_ms r in
        Ok (Packets.Aodv_msg.Rrep { dst; dst_sn; origin; hop_count; lifetime })
    | 3 ->
        let* () = expect_u8 r 0 "aodv rerr: reserved flags" in
        let* count = Reader.u8 r in
        let* () = expect_u8 r 0 "aodv rerr: reserved octet" in
        let* () =
          check r 1 (Reader.remaining r = 8 * count) "aodv rerr: length mismatch"
        in
        let* unreachable =
          read_list r count (fun r ->
              let* id = read_node r in
              let* sn = Reader.u32 r in
              Ok (id, sn))
        in
        Ok (Packets.Aodv_msg.Rerr { unreachable })
    | 16 ->
        let* count = Reader.u8 r in
        let* () = check r 1 (count >= 1) "aodv rreq-agg: empty aggregate" in
        let* () = expect_u16 r 0 "aodv rreq-agg: reserved octets" in
        let* () =
          check r 1
            (Reader.remaining r = 24 * count)
            "aodv rreq-agg: length mismatch"
        in
        let* members =
          read_list r count (fun r ->
              let* m = read r in
              match m with
              | Packets.Aodv_msg.Rreq q -> Ok q
              | _ -> reject r 1 "aodv rreq-agg: member is not a RREQ")
        in
        Ok (Packets.Aodv_msg.Rreq_agg members)
    | _ -> reject r 1 "aodv: unknown message type"

  let encode t =
    let w = Writer.create ~capacity:(encoded_length t) () in
    write w t;
    Writer.contents w

  let decode b =
    let r = Reader.of_bytes b in
    let* t = read r in
    let* () = Reader.expect_end r in
    Ok t
end

module Data = struct
  let header_bytes = 28

  let encoded_length (d : Packets.Data_msg.t) = header_bytes + d.payload_bytes

  let write w (d : Packets.Data_msg.t) =
    Writer.u8 w d.ttl;
    Writer.u8 w d.hops;
    Writer.u16 w d.payload_bytes;
    Writer.u32 w d.flow_id;
    Writer.u32 w d.seq;
    write_node w d.src;
    write_node w d.dst;
    Writer.u64 w (Sim.Time.to_ns d.origin_time);
    Writer.zeros w d.payload_bytes

  let read r : (Packets.Data_msg.t, error) result =
    let* ttl = Reader.u8 r in
    let* hops = Reader.u8 r in
    let* payload_bytes = Reader.u16 r in
    let* flow_id = Reader.u32 r in
    let* seq = Reader.u32 r in
    let* src = read_node r in
    let* dst = read_node r in
    let* ns = Reader.u64 r in
    let* () =
      check r 8 (Int64.compare ns 0L >= 0) "data: negative origin time"
    in
    let* () = Reader.skip r payload_bytes in
    Ok
      {
        Packets.Data_msg.flow_id;
        seq;
        src;
        dst;
        payload_bytes;
        origin_time = Sim.Time.unsafe_of_ns (Int64.to_int ns);
        ttl;
        hops;
      }

  let encode t =
    let w = Writer.create ~capacity:(encoded_length t) () in
    write w t;
    Writer.contents w

  let decode b =
    let r = Reader.of_bytes b in
    let* t = read r in
    let* () = Reader.expect_end r in
    Ok t
end

module Dsr = struct
  let opt_rerr = 1
  let opt_rreq = 2
  let opt_rrep = 3
  let opt_source_route = 96

  let encoded_length (t : Packets.Dsr_msg.t) =
    match t with
    | Rreq { route; _ } -> 16 + (4 * List.length route)
    | Rrep { sr_remaining; rrep } ->
        20 + (4 * List.length sr_remaining) + (4 * List.length rrep.full_route)
    | Rerr { sr_remaining; _ } -> 28 + (4 * List.length sr_remaining)
    | Data { full_route; data; _ } ->
        8 + (4 * List.length full_route) + Data.encoded_length data

  let write_addrs w l = List.iter (write_node w) l

  let write_source_route w ~salvage ~segs_left addrs =
    Writer.u8 w opt_source_route;
    Writer.u8 w (2 + (4 * List.length addrs));
    Writer.u8 w salvage;
    Writer.u8 w segs_left;
    write_addrs w addrs

  (* Fixed DSR header: [ttl][next_header][payload length].  The RFC's
     next-header octet distinguishes options-only packets (0) from
     packets whose options are followed by a data payload (1). *)
  let write_header w ~ttl ~next_header ~payload_len =
    Writer.u8 w ttl;
    Writer.u8 w next_header;
    Writer.u16 w payload_len

  let write w (t : Packets.Dsr_msg.t) =
    let payload_len = encoded_length t - 4 in
    match t with
    | Rreq { origin; dst; rreq_id; route; ttl } ->
        write_header w ~ttl ~next_header:0 ~payload_len;
        Writer.u8 w opt_rreq;
        Writer.u8 w (10 + (4 * List.length route));
        Writer.u16 w rreq_id;
        write_node w dst;
        write_node w origin;
        write_addrs w route
    | Rrep { sr_remaining; rrep } ->
        write_header w ~ttl:0 ~next_header:0 ~payload_len;
        write_source_route w ~salvage:0
          ~segs_left:(List.length sr_remaining)
          sr_remaining;
        Writer.u8 w opt_rrep;
        Writer.u8 w (10 + (4 * List.length rrep.full_route));
        Writer.u16 w 0;
        write_node w rrep.origin;
        write_node w rrep.dst;
        write_addrs w rrep.full_route
    | Rerr { sr_remaining; rerr } ->
        write_header w ~ttl:0 ~next_header:0 ~payload_len;
        write_source_route w ~salvage:0
          ~segs_left:(List.length sr_remaining)
          sr_remaining;
        Writer.u8 w opt_rerr;
        Writer.u8 w 18;
        Writer.u8 w 1 (* NODE_UNREACHABLE *);
        Writer.u8 w 0;
        write_node w rerr.err_from;
        write_node w rerr.err_dst;
        write_node w rerr.broken_from;
        write_node w rerr.broken_to
    | Data { sr_remaining; full_route; data; salvage } ->
        write_header w ~ttl:0 ~next_header:1 ~payload_len;
        (* The source-route option carries the whole route; the hops
           still to traverse are the last [segs_left] of it (the agents
           maintain [sr_remaining] as a suffix of [full_route]). *)
        write_source_route w ~salvage
          ~segs_left:(List.length sr_remaining)
          full_route;
        Data.write w data

  let read_addr_block r ~data_len ~fixed reason =
    let* () =
      check r 1 (data_len >= fixed && (data_len - fixed) mod 4 = 0) reason
    in
    read_list r ((data_len - fixed) / 4) read_node

  let rec suffix l n = if List.length l <= n then l else suffix (List.tl l) n

  let read r : (Packets.Dsr_msg.t, error) result =
    let* ttl = Reader.u8 r in
    let* next_header = Reader.u8 r in
    let* payload_len = Reader.u16 r in
    let* () =
      check r 2 (Reader.remaining r = payload_len) "dsr: length mismatch"
    in
    let* opt = Reader.u8 r in
    if opt = opt_rreq then
      let* () = check r 1 (next_header = 0) "dsr rreq: unexpected payload" in
      let* data_len = Reader.u8 r in
      let* rreq_id = Reader.u16 r in
      let* dst = read_node r in
      let* origin = read_node r in
      let* route =
        read_addr_block r ~data_len ~fixed:10 "dsr rreq: bad option length"
      in
      Ok (Packets.Dsr_msg.Rreq { origin; dst; rreq_id; route; ttl })
    else if opt = opt_source_route then
      let* () = check r 1 (ttl = 0) "dsr: nonzero ttl outside rreq" in
      let* data_len = Reader.u8 r in
      let* salvage = Reader.u8 r in
      let* segs_left = Reader.u8 r in
      let* addrs =
        read_addr_block r ~data_len ~fixed:2 "dsr: bad source-route length"
      in
      let* () =
        check r 1 (segs_left <= List.length addrs) "dsr: segs_left beyond route"
      in
      if next_header = 1 then
        let* data = Data.read r in
        Ok
          (Packets.Dsr_msg.Data
             { sr_remaining = suffix addrs segs_left; full_route = addrs; data; salvage })
      else
        let* () =
          check r 0 (segs_left = List.length addrs) "dsr: partial source route"
        in
        let* () = check r 0 (salvage = 0) "dsr: salvage outside data" in
        let* opt = Reader.u8 r in
        if opt = opt_rrep then
          let* data_len = Reader.u8 r in
          let* () = expect_u16 r 0 "dsr rrep: reserved octets" in
          let* origin = read_node r in
          let* dst = read_node r in
          let* full_route =
            read_addr_block r ~data_len ~fixed:10 "dsr rrep: bad option length"
          in
          Ok
            (Packets.Dsr_msg.Rrep
               { sr_remaining = addrs; rrep = { origin; dst; full_route } })
        else if opt = opt_rerr then
          let* () = expect_u8 r 18 "dsr rerr: bad option length" in
          let* () = expect_u8 r 1 "dsr rerr: unsupported error type" in
          let* () = expect_u8 r 0 "dsr rerr: reserved octet" in
          let* err_from = read_node r in
          let* err_dst = read_node r in
          let* broken_from = read_node r in
          let* broken_to = read_node r in
          Ok
            (Packets.Dsr_msg.Rerr
               {
                 sr_remaining = addrs;
                 rerr = { err_from; broken_from; broken_to; err_dst };
               })
        else reject r 1 "dsr: unknown option after source route"
    else reject r 1 "dsr: unknown leading option"

  let encode t =
    let w = Writer.create ~capacity:(encoded_length t) () in
    write w t;
    Writer.contents w

  let decode b =
    let r = Reader.of_bytes b in
    let* t = read r in
    let* () = Reader.expect_end r in
    Ok t
end

module Olsr = struct
  let msg_hello = 1
  let msg_tc = 2

  (* RFC 3626 link codes: (neighbor type << 2) | link type. *)
  let code_asym = 1 (* NOT_NEIGH, ASYM_LINK *)
  let code_sym = 6 (* SYM_NEIGH, SYM_LINK *)
  let code_mpr = 10 (* MPR_NEIGH, SYM_LINK *)

  let hello_blocks (neighbors : (Packets.Node_id.t * Packets.Olsr_msg.link_kind) list) =
    let of_kind k =
      List.filter_map
        (fun (id, kind) -> if kind = k then Some id else None)
        neighbors
    in
    List.filter
      (fun (_, ids) -> ids <> [])
      [
        (code_asym, of_kind Packets.Olsr_msg.Asym);
        (code_sym, of_kind Packets.Olsr_msg.Sym);
        (code_mpr, of_kind Packets.Olsr_msg.Mpr);
      ]

  let encoded_length (t : Packets.Olsr_msg.t) =
    match t with
    | Hello h ->
        List.fold_left
          (fun acc (_, ids) -> acc + 4 + (4 * List.length ids))
          20 (hello_blocks h.neighbors)
    | Tc { tc; _ } -> 20 + (4 * List.length tc.advertised)

  let write w (t : Packets.Olsr_msg.t) =
    let len = encoded_length t in
    Writer.u16 w len;
    Writer.u16 w 0;
    (* packet sequence number *)
    match t with
    | Hello h ->
        Writer.u8 w msg_hello;
        Writer.u8 w 0 (* vtime *);
        Writer.u16 w (len - 4);
        (* HELLOs are single-hop: the originator is the MAC source, so
           the envelope field is left zero rather than duplicated. *)
        Writer.u32 w 0;
        Writer.u8 w 1 (* ttl *);
        Writer.u8 w 0 (* hop count *);
        Writer.u16 w 0 (* message sequence *);
        Writer.u16 w 0 (* reserved *);
        Writer.u8 w 0 (* htime *);
        Writer.u8 w 3 (* willingness: WILL_DEFAULT *);
        List.iter
          (fun (code, ids) ->
            Writer.u8 w code;
            Writer.u8 w 0;
            Writer.u16 w (4 + (4 * List.length ids));
            List.iter (write_node w) ids)
          (hello_blocks h.neighbors)
    | Tc { origin; msg_seq; ttl; tc } ->
        Writer.u8 w msg_tc;
        Writer.u8 w 0;
        Writer.u16 w (len - 4);
        write_node w origin;
        Writer.u8 w ttl;
        Writer.u8 w 0;
        Writer.u16 w msg_seq;
        Writer.u16 w tc.ansn;
        Writer.u16 w 0;
        List.iter (write_node w) tc.advertised

  let kind_of_code r = function
    | c when c = code_asym -> Ok Packets.Olsr_msg.Asym
    | c when c = code_sym -> Ok Packets.Olsr_msg.Sym
    | c when c = code_mpr -> Ok Packets.Olsr_msg.Mpr
    | _ -> reject r 1 "olsr hello: unknown link code"

  let read r : (Packets.Olsr_msg.t, error) result =
    let total = Reader.remaining r in
    let* pkt_len = Reader.u16 r in
    let* () = check r 2 (pkt_len = total) "olsr: packet length mismatch" in
    let* () = expect_u16 r 0 "olsr: packet sequence" in
    let* msg_type = Reader.u8 r in
    let* () = expect_u8 r 0 "olsr: vtime" in
    let* msg_size = Reader.u16 r in
    let* () = check r 2 (msg_size = total - 4) "olsr: message size mismatch" in
    let* originator = Reader.u32 r in
    let* ttl = Reader.u8 r in
    let* () = expect_u8 r 0 "olsr: hop count" in
    let* msg_seq = Reader.u16 r in
    if msg_type = msg_hello then
      let* () = check r 0 (originator = 0) "olsr hello: originator set" in
      let* () = check r 0 (ttl = 1) "olsr hello: ttl" in
      let* () = check r 0 (msg_seq = 0) "olsr hello: message sequence" in
      let* () = expect_u16 r 0 "olsr hello: reserved" in
      let* () = expect_u8 r 0 "olsr hello: htime" in
      let* () = expect_u8 r 3 "olsr hello: willingness" in
      let rec blocks acc =
        if Reader.remaining r = 0 then Ok (List.rev acc)
        else
          let* code = Reader.u8 r in
          let* kind = kind_of_code r code in
          let* () = expect_u8 r 0 "olsr hello: block reserved" in
          let* size = Reader.u16 r in
          let* () =
            check r 2 (size >= 8 && (size - 4) mod 4 = 0)
              "olsr hello: bad block size"
          in
          let* ids = read_list r ((size - 4) / 4) read_node in
          blocks (List.rev_append (List.map (fun id -> (id, kind)) ids) acc)
      in
      let* neighbors = blocks [] in
      Ok (Packets.Olsr_msg.Hello { neighbors })
    else if msg_type = msg_tc then
      let* ansn = Reader.u16 r in
      let* () = expect_u16 r 0 "olsr tc: reserved" in
      let* () =
        check r 2 (Reader.remaining r mod 4 = 0) "olsr tc: ragged address list"
      in
      let* advertised = read_list r (Reader.remaining r / 4) read_node in
      let origin = node_of_int originator in
      Ok
        (Packets.Olsr_msg.Tc
           {
             origin;
             msg_seq;
             ttl;
             tc = { tc_origin = origin; ansn; advertised };
           })
    else reject r 1 "olsr: unknown message type"

  let encode t =
    let w = Writer.create ~capacity:(encoded_length t) () in
    write w t;
    Writer.contents w

  let decode b =
    let r = Reader.of_bytes b in
    let* t = read r in
    let* () = Reader.expect_end r in
    Ok t
end

module Payload = struct
  let family_ack = 0

  let family (p : Packets.Payload.t) =
    match p with
    | Data _ -> 1
    | Ldr _ -> 2
    | Aodv _ -> 3
    | Dsr _ -> 4
    | Olsr _ -> 5

  let family_name = function
    | 0 -> "ACK"
    | 1 -> "DATA"
    | 2 -> "LDR"
    | 3 -> "AODV"
    | 4 -> "DSR"
    | 5 -> "OLSR"
    | n -> Printf.sprintf "UNKNOWN(%d)" n

  let encoded_length (p : Packets.Payload.t) =
    match p with
    | Data d -> Data.encoded_length d
    | Ldr m -> Ldr.encoded_length m
    | Aodv m -> Aodv.encoded_length m
    | Dsr m -> Dsr.encoded_length m
    | Olsr m -> Olsr.encoded_length m

  let write w (p : Packets.Payload.t) =
    match p with
    | Data d -> Data.write w d
    | Ldr m -> Ldr.write w m
    | Aodv m -> Aodv.write w m
    | Dsr m -> Dsr.write w m
    | Olsr m -> Olsr.write w m

  let read ~family r : (Packets.Payload.t, error) result =
    match family with
    | 1 ->
        let* d = Data.read r in
        Ok (Packets.Payload.Data d)
    | 2 ->
        let* m = Ldr.read r in
        Ok (Packets.Payload.Ldr m)
    | 3 ->
        let* m = Aodv.read r in
        Ok (Packets.Payload.Aodv m)
    | 4 ->
        let* m = Dsr.read r in
        Ok (Packets.Payload.Dsr m)
    | 5 ->
        let* m = Olsr.read r in
        Ok (Packets.Payload.Olsr m)
    | _ -> Reader.fail r "payload: unknown family"

  let encode p =
    let w = Writer.create ~capacity:(encoded_length p) () in
    write w p;
    Writer.contents w

  let decode ~family b =
    let r = Reader.of_bytes b in
    let* t = read ~family r in
    let* () = Reader.expect_end r in
    Ok t
end

let encoded_length = Payload.encoded_length

module Mac = struct
  (* 802.11 4-address data header: frame control (2) + duration (2) +
     A1..A3 (18) + sequence control (2) + A4 (6). *)
  let header_bytes = 30
  let fcs_bytes = 4
  let data_overhead = header_bytes + fcs_bytes
  let ack_bytes = 14

  let write_addr w = function
    | None ->
        Writer.u16 w 0xffff;
        Writer.u32 w 0xffffffff
    | Some id ->
        Writer.u16 w 0x0200;
        Writer.u32 w id

  let read_addr r =
    let* hi = Reader.u16 r in
    let* lo = Reader.u32 r in
    if hi = 0xffff && lo = 0xffffffff then Ok None
    else if hi = 0x0200 then Ok (Some lo)
    else reject r 6 "mac: malformed address"
end
