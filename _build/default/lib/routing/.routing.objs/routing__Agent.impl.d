lib/routing/agent.ml: Data_msg Net Node_id Packets Payload Sim
