(* Tests for the statistics helpers. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkfa eps = Alcotest.check (Alcotest.float eps)

open Stats

let welford_mean_variance () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checkf "mean" 5. (Welford.mean w);
  (* Known sample: population variance 4, sample variance 32/7. *)
  checkfa 1e-9 "variance" (32. /. 7.) (Welford.variance w);
  Alcotest.check Alcotest.int "count" 8 (Welford.count w)

let welford_empty_and_single () =
  let w = Welford.create () in
  checkf "empty mean" 0. (Welford.mean w);
  checkf "empty var" 0. (Welford.variance w);
  checkf "empty ci" 0. (Welford.ci95 w);
  Welford.add w 42.;
  checkf "single mean" 42. (Welford.mean w);
  checkf "single var" 0. (Welford.variance w);
  checkf "single ci" 0. (Welford.ci95 w)

let welford_ci_small_sample () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 1.; 2.; 3. ];
  (* df=2 -> t=4.303; s = 1; ci = 4.303 * 1/sqrt(3). *)
  checkfa 1e-3 "ci95" (4.303 /. sqrt 3.) (Welford.ci95 w)

let welford_t_table () =
  checkfa 1e-9 "df1" 12.706 (Welford.t_critical ~df:1);
  checkfa 1e-9 "df30" 2.042 (Welford.t_critical ~df:30);
  checkfa 1e-9 "df1000 ~ z" 1.96 (Welford.t_critical ~df:1000);
  Alcotest.check_raises "df0"
    (Invalid_argument "Welford.t_critical: df must be positive") (fun () ->
      ignore (Welford.t_critical ~df:0))

(* ci95 across the t-table boundary: with df beyond the table the
   critical value falls back to the normal 1.96, and the half-width
   must follow t * s / sqrt(n) exactly on both sides of the edge. *)
let welford_ci_beyond_table () =
  let expect_ci n =
    let w = Welford.create () in
    for i = 1 to n do
      Welford.add w (float_of_int (i mod 5))
    done;
    let expected =
      Welford.t_critical ~df:(n - 1)
      *. Welford.stddev w
      /. sqrt (float_of_int n)
    in
    checkfa 1e-12 (Printf.sprintf "ci n=%d" n) expected (Welford.ci95 w);
    Welford.t_critical ~df:(n - 1)
  in
  (* df 30: last tabulated row; df 31 and beyond: z fallback. *)
  checkfa 1e-9 "edge uses table" 2.042 (expect_ci 31);
  checkfa 1e-9 "past edge uses z" 1.96 (expect_ci 32);
  checkfa 1e-9 "far past edge" 1.96 (expect_ci 200)

let welford_merge () =
  let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
  let xs = [ 1.; 5.; 2.; 8.; 3. ] and ys = [ 9.; 4.; 7. ] in
  List.iter (Welford.add a) xs;
  List.iter (Welford.add b) ys;
  List.iter (Welford.add whole) (xs @ ys);
  let m = Welford.merge a b in
  checkfa 1e-9 "merged mean" (Welford.mean whole) (Welford.mean m);
  checkfa 1e-9 "merged var" (Welford.variance whole) (Welford.variance m);
  Alcotest.check Alcotest.int "merged count" 8 (Welford.count m)

let welford_merge_empty () =
  let a = Welford.create () and b = Welford.create () in
  Welford.add b 3.;
  let m = Welford.merge a b in
  checkf "mean" 3. (Welford.mean m);
  let m2 = Welford.merge b a in
  checkf "mean sym" 3. (Welford.mean m2)

let welford_estimator_prop =
  QCheck.Test.make ~name:"welford matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      abs_float (Welford.mean w -. mean) < 1e-6)

let quantile_exact_small () =
  let q = Quantile.create ~rng_seed:1 () in
  List.iter (Quantile.add q) [ 5.; 1.; 3.; 2.; 4. ];
  checkf "median" 3. (Quantile.median q);
  checkf "min" 1. (Quantile.quantile q 0.);
  checkf "max" 5. (Quantile.quantile q 1.);
  Alcotest.check Alcotest.int "count" 5 (Quantile.count q)

let quantile_empty () =
  let q = Quantile.create ~rng_seed:1 () in
  checkf "empty median" 0. (Quantile.median q);
  Alcotest.check_raises "bad q"
    (Invalid_argument "Quantile.quantile: q outside [0,1]") (fun () ->
      ignore (Quantile.quantile q 1.5))

let quantile_reservoir_approximates () =
  (* 100k uniform samples through a 4k reservoir: p95 within a few
     percent of truth. *)
  let q = Quantile.create ~capacity:4096 ~rng_seed:7 () in
  let state = ref 12345 in
  for _ = 1 to 100_000 do
    state := (!state * 1103515245) + 12345;
    let u = float_of_int (abs !state mod 1_000_000) /. 1_000_000. in
    Quantile.add q u
  done;
  let p95 = Quantile.p95 q in
  checkb "p95 near 0.95" true (p95 > 0.9 && p95 < 1.0);
  Alcotest.check Alcotest.int "all offered counted" 100_000 (Quantile.count q)

let quantile_interleaved_reads () =
  (* Reading between writes must not corrupt the reservoir. *)
  let q = Quantile.create ~rng_seed:3 () in
  for i = 1 to 100 do
    Quantile.add q (float_of_int i);
    ignore (Quantile.median q)
  done;
  checkf "median of 1..100" 50. (Quantile.quantile q 0.4949);
  checkf "p99ish" 99. (Quantile.quantile q 0.99)


(* ---- Hdr: log-bucketed histogram -------------------------------------- *)

let hdr_exact_small () =
  let h = Hdr.create () in
  List.iter (Hdr.add h) [ 5; 1; 3; 2; 4 ];
  (* Values below 2^sub_bits live in width-1 buckets: exact. *)
  Alcotest.check Alcotest.int "median" 3 (Hdr.quantile h 0.5);
  Alcotest.check Alcotest.int "min" 1 (Hdr.quantile h 0.);
  Alcotest.check Alcotest.int "max" 5 (Hdr.quantile h 1.);
  Alcotest.check Alcotest.int "count" 5 (Hdr.count h);
  Alcotest.check Alcotest.int "sum" 15 (Hdr.sum h);
  checkf "mean" 3. (Hdr.mean h)

let hdr_empty_and_bounds () =
  let h = Hdr.create () in
  Alcotest.check Alcotest.int "empty quantile" 0 (Hdr.quantile h 0.5);
  Alcotest.check Alcotest.int "empty min" 0 (Hdr.min_value h);
  Alcotest.check Alcotest.int "empty max" 0 (Hdr.max_value h);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Hdr.quantile: q outside [0,1]") (fun () ->
      ignore (Hdr.quantile h 1.5));
  Alcotest.check_raises "sub_bits out of range"
    (Invalid_argument "Hdr.create: sub_bits outside [0, 14]") (fun () ->
      ignore (Hdr.create ~sub_bits:15 ()));
  Hdr.add h (-3);
  Alcotest.check Alcotest.int "negatives clamp to 0" 0 (Hdr.quantile h 1.)

let hdr_extremes_clamped () =
  let h = Hdr.create () in
  Hdr.add h 7;
  Hdr.add h 5_000_000;
  Hdr.add h 5_000_000;
  (* Quantiles clamp to the recorded min/max, so single-valued tails
     come back exact even in wide buckets. *)
  Alcotest.check Alcotest.int "p0 exact" 7 (Hdr.quantile h 0.);
  Alcotest.check Alcotest.int "p100 exact" 5_000_000 (Hdr.quantile h 1.);
  Alcotest.check Alcotest.int "max_value" 5_000_000 (Hdr.max_value h);
  Alcotest.check Alcotest.int "min_value" 7 (Hdr.min_value h)

(* HDR quantile vs the exact sorted-array nearest-rank answer: always
   >= the exact value, and within the same bucket (so the error is
   bounded by the bucket's equivalent-value range). *)
let hdr_vs_sorted_prop =
  QCheck.Test.make ~count:200 ~name:"hdr quantile within bucket of exact"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 400) (int_bound 2_000_000))
        (make ~print:string_of_float Gen.(float_bound_inclusive 1.0)))
    (fun (xs, q) ->
      let h = Hdr.create () in
      List.iter (Hdr.add h) xs;
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int n)) in
        if r < 1 then 1 else if r > n then n else r
      in
      let exact = sorted.(rank - 1) in
      let approx = Hdr.quantile h q in
      approx >= exact
      && approx <= Hdr.highest_equivalent h exact
      && Hdr.lowest_equivalent h approx <= exact)

let hdr_of_list xs =
  let h = Hdr.create () in
  List.iter (Hdr.add h) xs;
  h

let hdr_equal a b =
  Hdr.count a = Hdr.count b && Hdr.sum a = Hdr.sum b
  && Hdr.min_value a = Hdr.min_value b
  && Hdr.max_value a = Hdr.max_value b
  &&
  let buckets h =
    let acc = ref [] in
    Hdr.iter_buckets h (fun ~value ~count -> acc := (value, count) :: !acc);
    !acc
  in
  buckets a = buckets b

(* Merge is exactly the histogram of the concatenation, whichever way
   the parts are associated or ordered — the property Metrics relies on
   to merge PDES shards without replay. *)
let hdr_merge_assoc_prop =
  QCheck.Test.make ~count:100 ~name:"hdr merge associative/commutative"
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 100) (int_bound 10_000_000))
        (list_of_size Gen.(0 -- 100) (int_bound 10_000_000))
        (list_of_size Gen.(0 -- 100) (int_bound 10_000_000)))
    (fun (xs, ys, zs) ->
      let whole = hdr_of_list (xs @ ys @ zs) in
      (* (x <- y) <- z *)
      let left = hdr_of_list xs in
      Hdr.merge_into ~into:left (hdr_of_list ys);
      Hdr.merge_into ~into:left (hdr_of_list zs);
      (* x <- (y <- z) *)
      let yz = hdr_of_list ys in
      Hdr.merge_into ~into:yz (hdr_of_list zs);
      let right = hdr_of_list xs in
      Hdr.merge_into ~into:right yz;
      (* z <- y <- x: commuted order *)
      let comm = hdr_of_list zs in
      Hdr.merge_into ~into:comm (hdr_of_list ys);
      Hdr.merge_into ~into:comm (hdr_of_list xs);
      hdr_equal whole left && hdr_equal left right && hdr_equal right comm)

let hdr_merge_mismatch () =
  let a = Hdr.create ~sub_bits:7 () in
  let b = Hdr.create ~sub_bits:8 () in
  Alcotest.check_raises "sub_bits mismatch"
    (Invalid_argument "Hdr.merge_into: sub_bits mismatch") (fun () ->
      Hdr.merge_into ~into:a b)


let table_renders () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.check Alcotest.int "4 lines" 4 (List.length lines);
  (* All lines same width. *)
  (match lines with
  | first :: rest ->
      List.iter
        (fun l -> Alcotest.check Alcotest.int "aligned" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "no output");
  checkb "contains alpha" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha") lines)

let table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  checkb "renders without error" true (String.length s > 0)

let mean_ci_format () =
  Alcotest.check Alcotest.string "format" "0.987 ± 0.004"
    (Table.mean_ci ~mean:0.9871 ~ci:0.0042)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "welford",
        [
          Alcotest.test_case "mean/variance" `Quick welford_mean_variance;
          Alcotest.test_case "empty/single" `Quick welford_empty_and_single;
          Alcotest.test_case "ci small sample" `Quick welford_ci_small_sample;
          Alcotest.test_case "t table" `Quick welford_t_table;
          Alcotest.test_case "ci beyond t-table" `Quick
            welford_ci_beyond_table;
          Alcotest.test_case "merge" `Quick welford_merge;
          Alcotest.test_case "merge empty" `Quick welford_merge_empty;
          qt welford_estimator_prop;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "exact small" `Quick quantile_exact_small;
          Alcotest.test_case "empty" `Quick quantile_empty;
          Alcotest.test_case "reservoir approximates" `Quick
            quantile_reservoir_approximates;
          Alcotest.test_case "interleaved reads" `Quick quantile_interleaved_reads;
        ] );
      ( "hdr",
        [
          Alcotest.test_case "exact small" `Quick hdr_exact_small;
          Alcotest.test_case "empty and bounds" `Quick hdr_empty_and_bounds;
          Alcotest.test_case "extremes clamped" `Quick hdr_extremes_clamped;
          Alcotest.test_case "merge mismatch" `Quick hdr_merge_mismatch;
          qt hdr_vs_sorted_prop;
          qt hdr_merge_assoc_prop;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick table_renders;
          Alcotest.test_case "pads short rows" `Quick table_pads_short_rows;
          Alcotest.test_case "mean_ci" `Quick mean_ci_format;
        ] );
    ]
