test/test_ldr_multipath.ml: Alcotest Array Config Engine Experiment Ldr List Node_id Option Packets Protocol QCheck QCheck_alcotest Rng Route_table Seqnum Sim Time
