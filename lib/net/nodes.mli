(** Struct-of-arrays per-node state.

    Flat preallocated arrays indexed by node id, replacing scattered
    per-node record fields on the hot path: positions and current
    mobility legs live in a {!Mobility.Pos_store} (unboxed float
    planes), and the per-node MAC/ifq scalars (frames sent, unicast
    failures, queue length, queue drops) are int arrays that
    {!Net.Mac} writes through when created with [~world].  The [up]
    plane tracks churn state (false while a node is down). *)

type t

val create : width:float -> height:float -> Mobility.t array -> at:Sim.Time.t -> t
(** [create ~width ~height mobs ~at] — one slot per element of [mobs],
    node id [i] owning slot [i].  [width]/[height] are the arena bounds
    (the channel sizes its cell index from them). *)

val length : t -> int
val store : t -> Mobility.Pos_store.t
val width : t -> float
val height : t -> float

val sent : t -> int -> int
val failures : t -> int -> int
val queue_length : t -> int -> int
val queue_drops : t -> int -> int

val up : t -> int -> bool
val set_up : t -> int -> bool -> unit

val sent_plane : t -> int array
(** The raw counter planes ([sent_plane]/[failures_plane]/[qlen_plane]/
    [qdrops_plane]): each {!Net.Mac} created with [~world] holds its
    node's cells directly, so counter updates are flat array stores. *)

val failures_plane : t -> int array
val qlen_plane : t -> int array
val qdrops_plane : t -> int array

val total_sent : t -> int
val total_failures : t -> int
val total_queue_drops : t -> int
