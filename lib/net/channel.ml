open Sim
open Packets

type rx = {
  rx_frame : Frame.t;
  tx_dist : float;  (** receiver-to-transmitter distance, for capture *)
  mutable corrupted : bool;
}

type radio = {
  id : Node_id.t;
  seq : int;  (** attach order; fixes query ordering across index modes *)
  position : unit -> Geom.Vec2.t;
  mutable receive : Frame.t -> unit;
  mutable medium : bool -> unit;
  mutable busy_count : int;  (** in-range transmissions currently in the air *)
  mutable tx_count : int;  (** own transmissions in the air (0 or 1) *)
  mutable current_rx : rx option;
}

type mode = Naive | Grid

(* How far a radio's true position may drift from its bucketed position
   before the grid is rebuilt.  Queries are inflated by the current drift
   bound, so any margin is exact; smaller margins rebuild more often,
   larger ones scan more cells. *)
let slack_margin_m = 25.

type t = {
  engine : Engine.t;
  params : Params.t;
  mode : mode;
  max_speed : float option;
      (* [Some v]: no radio moves faster than [v] m/s, so bucketed
         positions age at a known rate.  [None]: unknown speeds — the
         grid is rebuilt whenever the clock has advanced, which is exact
         for any mobility and still no worse than a naive scan. *)
  mutable radios : radio list;  (* newest first *)
  mutable next_seq : int;
  grid : radio Geom.Grid.t;
  mutable grid_built_at : Time.t;
  mutable grid_fresh : bool;
  mutable hook : Node_id.t -> Frame.t -> unit;
  mutable tx_total : int;
}

let create ~engine ?(mode = Grid) ?max_speed ~params () =
  {
    engine;
    params;
    mode;
    max_speed;
    radios = [];
    next_seq = 0;
    (* Cell side = half the carrier-sense range: a CS-disk query scans
       ~25 cells, but the cells hug the disk, so the candidate superset
       is ~1.7x the true disk population (a full-range cell side gives
       9 coarse cells and a ~2.9x superset — more wasted exact distance
       checks per query, which dominate now that cells are one array
       load each). *)
    grid = Geom.Grid.create ~cell:(params.Params.cs_range_m /. 2.);
    grid_built_at = Time.zero;
    grid_fresh = false;
    hook = (fun _ _ -> ());
    tx_total = 0;
  }

let params t = t.params
let mode t = t.mode

let attach t ~id ~position =
  let r =
    {
      id;
      seq = t.next_seq;
      position;
      receive = ignore;
      medium = ignore;
      busy_count = 0;
      tx_count = 0;
      current_rx = None;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.radios <- r :: t.radios;
  t.grid_fresh <- false;
  r

let set_receiver r f = r.receive <- f
let set_medium_listener r f = r.medium <- f
let radio_id r = r.id
let transmitting r = r.tx_count > 0

let carrier_busy r = r.busy_count > 0 || r.tx_count > 0

let busy _t r = carrier_busy r

(* ---- Spatial index ----------------------------------------------------- *)

(* Upper bound on how far any radio may be from where the grid bucketed
   it.  With a known speed bound this is speed x age; with an unknown one
   [refresh] rebuilds on every clock advance, so the drift is zero. *)
let drift_bound t =
  match t.max_speed with
  | None -> 0.
  | Some v ->
      let age = Time.diff (Engine.now t.engine) t.grid_built_at in
      if Time.equal age Time.zero then 0. else v *. Time.to_sec age

let rebuild_grid t =
  Geom.Grid.build t.grid ~pos:(fun r -> r.position ()) t.radios;
  t.grid_built_at <- Engine.now t.engine;
  t.grid_fresh <- true

(* Rebuild the grid if stale; returns the post-rebuild drift bound so
   queries pay for at most one clock-to-seconds conversion. *)
let refresh t =
  if not t.grid_fresh then rebuild_grid t;
  match t.max_speed with
  | None ->
      if Time.(Engine.now t.engine > t.grid_built_at) then rebuild_grid t;
      0.
  | Some _ ->
      let b = drift_bound t in
      if b > slack_margin_m then begin
        rebuild_grid t;
        0.
      end
      else b

(* Grid queries visit each candidate exactly once, applying the exact
   range predicate against live positions and inserting survivors into a
   list ordered by attach sequence, newest first — the exact set and
   order a naive scan of [t.radios] produces.  The query disk is
   inflated by the drift bound, so the candidate superset always covers
   the true disk population; per-seed determinism therefore does not
   depend on the index.  Survivor lists are a handful of radios, so
   ordered insertion beats a post-hoc [List.sort]. *)
let rec ins_pair ((x, _) as p) l =
  match l with
  | [] -> [ p ]
  | (((y, _) as q) :: tl) as full ->
      if x.seq > y.seq then p :: full else q :: ins_pair p tl

let rec ins_radio x l =
  match l with
  | [] -> [ x ]
  | (y :: tl) as full -> if x.seq > y.seq then x :: full else y :: ins_radio x tl

let neighbors_in_range t r =
  let center = r.position () in
  let rng2 = t.params.range_m *. t.params.range_m in
  match t.mode with
  | Naive ->
      List.filter_map
        (fun other ->
          if other != r && Geom.Vec2.dist2 center (other.position ()) <= rng2
          then Some other.id
          else None)
        t.radios
  | Grid ->
      let radius = t.params.range_m +. refresh t in
      let acc = ref [] in
      Geom.Grid.iter_disk t.grid ~center ~radius (fun other ->
          if other != r && Geom.Vec2.dist2 center (other.position ()) <= rng2
          then acc := ins_radio other !acc);
      List.map (fun o -> o.id) !acc

let set_transmit_hook t f = t.hook <- f
let transmissions t = t.tx_total

let mark_busy r =
  let was = carrier_busy r in
  r.busy_count <- r.busy_count + 1;
  if not was then r.medium true

let mark_idle r =
  r.busy_count <- r.busy_count - 1;
  assert (r.busy_count >= 0);
  if not (carrier_busy r) then r.medium false

let transmit t src frame ~duration =
  t.tx_total <- t.tx_total + 1;
  t.hook src.id frame;
  (* Touched radios are fixed at transmission start: node movement within
     one frame airtime (~2 ms) is a fraction of a millimetre.  Radios out
     to the carrier-sense range defer and suffer interference; only those
     within decode range can receive the frame. *)
  let src_pos = src.position () in
  let cs2 = t.params.cs_range_m *. t.params.cs_range_m in
  let rng2 = t.params.range_m *. t.params.range_m in
  (* One distance computation per candidate; [sqrt d2] below equals
     [Vec2.dist] bit-for-bit, so caching it cannot change outcomes. *)
  let touched =
    match t.mode with
    | Naive ->
        List.filter_map
          (fun r ->
            if r == src then None
            else
              let d2 = Geom.Vec2.dist2 src_pos (r.position ()) in
              if d2 <= cs2 then Some (r, d2) else None)
          t.radios
    | Grid ->
        let radius = t.params.cs_range_m +. refresh t in
        let acc = ref [] in
        Geom.Grid.iter_disk t.grid ~center:src_pos ~radius (fun r ->
            if r != src then begin
              let d2 = Geom.Vec2.dist2 src_pos (r.position ()) in
              if d2 <= cs2 then acc := ins_pair (r, d2) !acc
            end);
        !acc
  in
  let was_busy_src = carrier_busy src in
  src.tx_count <- src.tx_count + 1;
  if not was_busy_src then src.medium true;
  let deliveries =
    List.map
      (fun (r, d2) ->
        mark_busy r;
        let dist = sqrt d2 in
        let decodable = d2 <= rng2 in
        let lock () =
          let rx = { rx_frame = frame; tx_dist = dist; corrupted = false } in
          r.current_rx <- Some rx;
          (r, Some rx)
        in
        (* A radio that is transmitting decodes nothing.  An overlap is
           resolved by the capture effect: the markedly closer (stronger)
           transmitter wins; comparable powers corrupt both frames. *)
        if r.tx_count > 0 then (r, None)
        else
          match r.current_rx with
          | Some rx ->
              let ratio = t.params.capture_distance_ratio in
              if dist >= ratio *. rx.tx_dist then
                (* New arrival too weak to disturb the locked frame. *)
                (r, None)
              else if rx.tx_dist >= ratio *. dist && decodable then begin
                (* New arrival captures the receiver. *)
                rx.corrupted <- true;
                lock ()
              end
              else begin
                rx.corrupted <- true;
                (r, None)
              end
          | None -> if decodable then lock () else (r, None))
      touched
  in
  ignore
    (Engine.after t.engine duration (fun () ->
         src.tx_count <- src.tx_count - 1;
         if not (carrier_busy src) then src.medium false;
         List.iter
           (fun (r, rx_opt) ->
             mark_idle r;
             match rx_opt with
             | None -> ()
             | Some rx ->
                 (* Only clear the lock if it is still ours (a corrupting
                    overlap never replaces the lock, so it is). *)
                 (match r.current_rx with
                 | Some cur when cur == rx -> r.current_rx <- None
                 | Some _ | None -> ());
                 (* Starting to transmit mid-reception also kills it. *)
                 if (not rx.corrupted) && r.tx_count = 0 then
                   r.receive rx.rx_frame)
           deliveries))
