examples/multipath_failover.mli:
