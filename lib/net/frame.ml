open Packets

type dst = Unicast of Node_id.t | Broadcast

type body = Payload of Payload.t | Ack

type t = { src : Node_id.t; dst : dst; body : body }

let addressed_to t id =
  match t.dst with Broadcast -> true | Unicast d -> Node_id.equal d id

let is_ack t = match t.body with Ack -> true | Payload _ -> false

let class_name t =
  match t.body with Ack -> "ACK" | Payload p -> Payload.class_name p

let size_bytes t =
  match t.body with Ack -> 0 | Payload p -> Payload.size_bytes p

let dst_equal a b =
  match (a, b) with
  | Broadcast, Broadcast -> true
  | Unicast x, Unicast y -> Node_id.equal x y
  | Broadcast, Unicast _ | Unicast _, Broadcast -> false

let pp_dst fmt = function
  | Broadcast -> Format.pp_print_string fmt "*"
  | Unicast d -> Node_id.pp fmt d

let pp fmt t =
  match t.body with
  | Ack -> Format.fprintf fmt "ack[%a->%a]" Node_id.pp t.src pp_dst t.dst
  | Payload p ->
      Format.fprintf fmt "frame[%a->%a %a]" Node_id.pp t.src pp_dst t.dst
        Payload.pp p
