(* Full-stack scheduler differential: seeded mobile scenarios run under
   the binary-heap and calendar engines must produce identical outcomes
   — same metrics summary, same event count, same transmissions.  The
   two schedulers share every call site, so this pins the calendar
   queue's ordering (including same-instant FIFO ties, which MAC
   contention resolves through) against the reference heap across the
   whole protocol stack. *)

open Experiment

let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-12)

let base protocol seed =
  Scenario.paper_50 protocol
  |> Scenario.with_duration (Sim.Time.sec 40.)
  |> Scenario.with_flows 8
  |> Scenario.with_seed seed

let compare_outcomes label (sc : Scenario.t) =
  let cal = Runner.run sc in
  let heap = Runner.run (Scenario.with_heap_scheduler true sc) in
  checki (label ^ " events") heap.events_processed cal.events_processed;
  checki (label ^ " transmissions") heap.transmissions cal.transmissions;
  checki (label ^ " queue drops") heap.mac_queue_drops cal.mac_queue_drops;
  checki (label ^ " unicast failures") heap.mac_unicast_failures
    cal.mac_unicast_failures;
  let hs = heap.summary and cs = cal.summary in
  checkf (label ^ " delivery") hs.Metrics.s_delivery_ratio
    cs.Metrics.s_delivery_ratio;
  checkf (label ^ " latency") hs.Metrics.s_latency_ms cs.Metrics.s_latency_ms;
  checkf (label ^ " load") hs.Metrics.s_network_load cs.Metrics.s_network_load;
  checkf (label ^ " rreq load") hs.Metrics.s_rreq_load cs.Metrics.s_rreq_load;
  checkf (label ^ " rrep init") hs.Metrics.s_rrep_init cs.Metrics.s_rrep_init;
  checkf (label ^ " rrep recv") hs.Metrics.s_rrep_recv cs.Metrics.s_rrep_recv

let protocols =
  [
    ("ldr", Scenario.ldr);
    ("aodv", Scenario.aodv);
    ("dsr", Scenario.dsr);
    ("olsr", Scenario.olsr);
  ]

let diff_case (name, protocol) =
  Alcotest.test_case name `Slow (fun () ->
      List.iter
        (fun seed -> compare_outcomes name (base protocol seed))
        [ 1; 5 ])

(* The congested shape the benchmark targets: pause 0, heavy flows. *)
let congested () =
  let sc =
    Scenario.paper_100 Scenario.ldr
    |> Scenario.with_pause (Sim.Time.sec 0.)
    |> Scenario.with_flows 30
    |> Scenario.with_duration (Sim.Time.sec 15.)
    |> Scenario.with_seed 3
  in
  compare_outcomes "congested" sc

let () =
  Alcotest.run "engine-diff"
    [
      ( "heap vs calendar",
        List.map diff_case protocols
        @ [ Alcotest.test_case "congested 100-node" `Slow congested ] );
    ]
