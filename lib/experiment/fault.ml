open Sim
open Packets

(* A reply the real destination never issued: its number vaults past
   anything in the network, so NDC accepts it and the route installs —
   but the successor's stored invariants cannot dominate the forged
   ones, which is exactly what the monitor checks. *)
let forged_rrep ~stamp ~dst ~origin =
  Ldr_msg.Rrep
    {
      Ldr_msg.dst;
      dst_sn = { Seqnum.stamp; counter = 0 };
      origin;
      rreq_id = 987_654;
      dist = 1;
      lifetime = Time.sec 10.;
      rrep_no_reverse = false;
    }

(* Row-major scan for the first node with an active route: the
   injection site is a deterministic function of the routing state, so
   a classic and a sharded run in identical state pick the same
   (node, destination, successor). *)
let first_route (agents : Routing.Agent.t array) =
  let n = Array.length agents in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for d = 0 to n - 1 do
         if d <> i then
           match agents.(i).Routing.Agent.successor (Node_id.of_int d) with
           | Some s ->
               found := Some (i, d, s);
               raise Exit
           | None -> ()
       done
     done
   with Exit -> ());
  !found

let deliver_forged ~stamp (agents : Routing.Agent.t array) (i, d, s) =
  agents.(i).Routing.Agent.recv
    (Payload.Ldr (forged_rrep ~stamp ~dst:(Node_id.of_int d)
                     ~origin:(Node_id.of_int i)))
    ~from:s

type injection = {
  injected : bool ref;
  stamp : int;
  mutable victim : int;
  mutable dst : int;
  mutable via : int;
}

let mark inj (i, d, s) =
  inj.injected := true;
  inj.victim <- i;
  inj.dst <- d;
  inj.via <- Node_id.to_int s

let stale_seqno ?(stamp = 1_000_000) (sim : Runner.sim) ~at =
  let inj = { injected = ref false; stamp; victim = -1; dst = -1; via = -1 } in
  ignore
    (Engine.at sim.Runner.engine at (fun () ->
         match first_route sim.Runner.agents with
         | Some site ->
             deliver_forged ~stamp sim.Runner.agents site;
             mark inj site
         | None -> ()));
  inj

let stale_seqno_sharded ?(stamp = 1_000_000) (p : Runner.psim) ~at =
  let inj = { injected = ref false; stamp; victim = -1; dst = -1; via = -1 } in
  p.Runner.p_request_injection ~at (fun () ->
      (* Boundary callback: every shard has run all events before [at],
         none at or after it — the same state the classic injector event
         observes.  The delivery itself becomes one event at [at] on the
         victim's home engine, mirroring the classic path's single
         injector event. *)
      match first_route p.Runner.p_agents with
      | Some ((i, _, _) as site) ->
          let engine = p.Runner.p_engines.(p.Runner.p_home.(i)) in
          ignore
            (Engine.at engine at (fun () ->
                 deliver_forged ~stamp p.Runner.p_agents site;
                 mark inj site))
      | None -> ());
  inj
