type sink = Event.t -> unit

type t = {
  mutable sinks : sink array;
  intern_tbl : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable n_names : int;
  scratch : Event.t;
}

let create () =
  {
    sinks = [||];
    intern_tbl = Hashtbl.create 16;
    names = Array.make 16 "";
    n_names = 0;
    scratch = Event.make ();
  }

(* The disabled-path cost at every emit site: one header load and a
   branch. *)
let on t = Array.length t.sinks > 0

let add_sink t s = t.sinks <- Array.append t.sinks [| s |]

let intern t s =
  match Hashtbl.find_opt t.intern_tbl s with
  | Some i -> i
  | None ->
      let i = t.n_names in
      if i = Array.length t.names then begin
        let names' = Array.make (2 * i) "" in
        Array.blit t.names 0 names' 0 i;
        t.names <- names'
      end;
      t.names.(i) <- s;
      t.n_names <- i + 1;
      Hashtbl.replace t.intern_tbl s i;
      i

let name t i = if i >= 0 && i < t.n_names then t.names.(i) else "?"

(* Deliver [ev] to every sink.  Sinks that retain the event must copy
   it ({!Event.copy_into}); the record they are handed is reused.  A
   sink may dispatch a further event of its own mid-delivery (the
   invariant monitor does, for violations) provided it uses its own
   event record, not this bus's scratch. *)
let dispatch t ev =
  let sinks = t.sinks in
  for i = 0 to Array.length sinks - 1 do
    sinks.(i) ev
  done

let emit t ~time ~node ~kind ~a ~b ~c ~d ~e ~f =
  let ev = t.scratch in
  ev.Event.time <- time;
  ev.node <- node;
  ev.kind <- kind;
  ev.a <- a;
  ev.b <- b;
  ev.c <- c;
  ev.d <- d;
  ev.e <- e;
  ev.f <- f;
  dispatch t ev

let tx t ~time ~node ~cls ~dst ~bytes =
  emit t ~time ~node ~kind:Event.Tx ~a:cls ~b:dst ~c:bytes ~d:(-1) ~e:(-1)
    ~f:(-1)

let rx t ~time ~node ~cls ~from ~dst =
  emit t ~time ~node ~kind:Event.Rx ~a:cls ~b:from ~c:dst ~d:(-1) ~e:(-1)
    ~f:(-1)

let collision t ~time ~node ~cls ~from =
  emit t ~time ~node ~kind:Event.Collision ~a:cls ~b:from ~c:(-1) ~d:(-1)
    ~e:(-1) ~f:(-1)

let ifq_drop t ~time ~node ~cls ~dst =
  emit t ~time ~node ~kind:Event.Ifq_drop ~a:cls ~b:dst ~c:(-1) ~d:(-1)
    ~e:(-1) ~f:(-1)

let deliver t ~time ~node ~flow ~seq ~src ~hops ~latency_ns =
  emit t ~time ~node ~kind:Event.Deliver ~a:flow ~b:seq ~c:src ~d:hops
    ~e:latency_ns ~f:(-1)

let data_drop t ~time ~node ~reason ~flow ~seq ~src ~dst =
  emit t ~time ~node ~kind:Event.Data_drop ~a:reason ~b:flow ~c:seq ~d:src
    ~e:dst ~f:(-1)

let link_failure t ~time ~node ~next_hop =
  emit t ~time ~node ~kind:Event.Link_failure ~a:next_hop ~b:(-1) ~c:(-1)
    ~d:(-1) ~e:(-1) ~f:(-1)

let proto t ~time ~node ~name ~dst =
  emit t ~time ~node ~kind:Event.Proto ~a:name ~b:dst ~c:(-1) ~d:(-1) ~e:(-1)
    ~f:(-1)

let table_write t ~time ~node ~dst ~old_succ ~new_succ ~dist ~fd ~sn =
  emit t ~time ~node ~kind:Event.Table_write ~a:dst ~b:old_succ ~c:new_succ
    ~d:dist ~e:fd ~f:sn

let violation t ~time ~node ~dst ~succ ~own_sn ~succ_sn ~own_fd ~succ_fd =
  emit t ~time ~node ~kind:Event.Violation ~a:dst ~b:succ ~c:own_sn ~d:succ_sn
    ~e:own_fd ~f:succ_fd

let span t ~time ~node ~stage ~flow ~seq ~d ~e ~f =
  emit t ~time ~node ~kind:Event.Span ~a:stage ~b:flow ~c:seq ~d ~e ~f
