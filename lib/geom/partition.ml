(* Spatial sharding for the PDES runner: K equal-width vertical stripes
   over the terrain.  Stripes (not a 2-D tiling) keep the border set
   one-dimensional — a transmission concerns a neighbouring region iff
   its x-coordinate is within carrier-sense range of the stripe's
   occupancy interval — and match the wide 5:1 arenas the paper's
   scenarios use. *)

type t = { k : int; stripe_w : float; width : float }

let stripes ~terrain ~k =
  if k < 1 then invalid_arg "Partition.stripes: k must be >= 1";
  let width = terrain.Terrain.width in
  { k; stripe_w = width /. float_of_int k; width }

let regions t = t.k

let region_of t (p : Vec2.t) =
  if t.k = 1 then 0
  else
    let r = int_of_float (p.x /. t.stripe_w) in
    if r < 0 then 0 else if r >= t.k then t.k - 1 else r

let x_lo t r = float_of_int r *. t.stripe_w
let x_hi t r = if r = t.k - 1 then t.width else float_of_int (r + 1) *. t.stripe_w
