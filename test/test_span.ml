(* Causal packet spans + runtime telemetry (PR 8).

   The span contract is differential, like the PDES one it rides on:
   a border-free sharded run must reconstruct to exactly the classic
   run's paths — same packets, same hops, same stage times — because
   span ids are (flow, seq) pairs carried in the messages themselves,
   not per-engine state.  Completeness is absolute: every delivered
   data packet must reconstruct to a complete origination-to-delivery
   path at any shard count. *)

open Sim
open Experiment

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Same two-cluster fixture as test_pdes: every node is more than a
   carrier-sense range from the other cluster and from any 2/3/4-way
   stripe border, so no transmission ever crosses shards. *)
let cluster x0 =
  List.concat_map
    (fun dx -> List.map (fun y -> Geom.Vec2.v (x0 +. dx) y) [ 60.; 150.; 240. ])
    [ 0.; 150.; 300. ]

let border_free ?(seed = 11) ?(shards = 1) () =
  let positions = cluster 150. @ cluster 1950. in
  {
    Scenario.label = "span-border-free";
    num_nodes = List.length positions;
    terrain = Geom.Terrain.create ~width:2400. ~height:300.;
    placement = Scenario.Fixed positions;
    speed_min = 0.;
    speed_max = 0.;
    pause = Time.sec 0.;
    duration = Time.sec 10.;
    traffic =
      {
        Traffic.num_flows = 3;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Time.sec 8.;
        startup_window = Time.sec 2.;
      };
    protocol = Scenario.ldr;
    net = Net.Params.default;
    seed;
    audit_loops = false;
    naive_channel = false;
    heap_scheduler = false;
    shards;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

let with_tmp suffix f =
  let path = Filename.temp_file "manet_span" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_trace path =
  match Obs.Reader.load path with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace load: %s" e

(* ---- Reconstruction ---------------------------------------------------- *)

let spans_complete_classic () =
  with_tmp ".jsonl" (fun path ->
      let o = Runner.run ~trace_out:path (border_free ()) in
      let t = load_trace path in
      let s = Obs.Span.reconstruct (Obs.Reader.events t) in
      let delivered =
        List.filter (fun p -> p.Obs.Span.p_delivered >= 0) s.Obs.Span.paths
      in
      checki "every delivery has a path" (Metrics.delivered o.metrics)
        (List.length delivered);
      List.iter
        (fun p ->
          checkb "delivered path complete" true (Obs.Span.is_complete p))
        delivered;
      checkb "saw ring attempts" true (s.Obs.Span.ring_attempts > 0))

let spans_identical_across_shards () =
  let report sc =
    with_tmp ".jsonl" (fun path ->
        let o = Runner.run ~trace_out:path sc in
        let t = load_trace path in
        ( o.summary,
          Obs.Span.report ~name:(Obs.Reader.name t) (Obs.Reader.events t),
          read_file path ))
  in
  let s1, r1, bytes1 = report (border_free ()) in
  let s4, r4, bytes4 = report (border_free ~shards:4 ()) in
  checkb "summaries equal" true (Stdlib.compare s1 s4 = 0);
  (* The analyzer output — reconstruction counts, stage percentiles,
     waterfall — must match line for line... *)
  checkb "span reports identical" true (r1 = r4);
  (* ...and on a border-free run the merged shard trace is the classic
     trace, byte for byte. *)
  checkb "merged trace byte-identical" true (String.equal bytes1 bytes4)

let spans_complete_sharded () =
  with_tmp ".jsonl" (fun path ->
      let o = Runner.run ~trace_out:path (border_free ~shards:4 ()) in
      let t = load_trace path in
      let s = Obs.Span.reconstruct (Obs.Reader.events t) in
      let delivered =
        List.filter (fun p -> p.Obs.Span.p_delivered >= 0) s.Obs.Span.paths
      in
      checki "every delivery has a path" (Metrics.delivered o.metrics)
        (List.length delivered);
      List.iter
        (fun p -> checkb "complete at shards 4" true (Obs.Span.is_complete p))
        delivered)

let summary_reports_bytes () =
  with_tmp ".jsonl" (fun path ->
      ignore (Runner.run ~trace_out:path (border_free ()));
      let t = load_trace path in
      let lines = Obs.Reader.summary t in
      checkb "byte totals present" true
        (List.exists (fun l -> l = "tx bytes by class:") lines);
      checkb "data class listed" true
        (List.exists
           (fun l ->
             String.length l > 6 && String.trim l <> l
             && String.sub (String.trim l) 0 4 = "DATA")
           lines))

(* ---- Telemetry --------------------------------------------------------- *)

let expect_names ~pdes =
  [
    "manet_calendar_buckets";
    "manet_calendar_occupancy";
    "manet_events_per_second";
    "manet_events_processed_total";
    "manet_gc_minor_words_total";
    "manet_gc_promoted_words_total";
    "manet_queue_pending";
    "manet_sim_time_seconds";
  ]
  @ (if pdes then
       [
         "manet_pdes_border_mirrors_total";
         "manet_pdes_window_utilization";
         "manet_pdes_windows_total";
       ]
     else
       (* The spatial-index gauges ride the classic sampler only: a
          sharded run has one index per region. *)
       [
         "manet_grid_cells";
         "manet_grid_occupied_cells";
         "manet_grid_max_occupancy";
       ])
  |> List.sort String.compare

let telemetry_classic () =
  with_tmp ".prom" (fun prom ->
      with_tmp ".jsonl" (fun jsonl ->
          ignore
            (Runner.run ~telemetry_out:jsonl ~telemetry_prom:prom
               ~telemetry_every:(Time.sec 2.) (border_free ()));
          (match Obs.Telemetry.validate_prom prom with
          | Ok names ->
              checkb "classic metric names stable" true
                (names = expect_names ~pdes:false)
          | Error e -> Alcotest.failf "prom validation: %s" e);
          (* Ticks at 0,2,..,10 s (strictly before the 12 s horizon),
             plus the horizon one-shot. *)
          let ic = open_in jsonl in
          let n = ref 0 and last = ref "" in
          (try
             while true do
               last := input_line ic;
               incr n
             done
           with End_of_file -> close_in ic);
          checki "one sample per tick plus horizon" 7 !n;
          (* Telemetry lines carry per-domain arrays, which the flat
             trace parser rejects by design — check the time prefix. *)
          let horizon = Printf.sprintf "{\"t\":%d," (Time.sec 12. :> int) in
          checkb "last sample at the horizon" true
            (String.length !last >= String.length horizon
            && String.sub !last 0 (String.length horizon) = horizon)))

let telemetry_sharded () =
  with_tmp ".prom" (fun prom ->
      ignore
        (Runner.run ~telemetry_prom:prom ~telemetry_every:(Time.sec 2.)
           (border_free ~shards:4 ()));
      match Obs.Telemetry.validate_prom prom with
      | Ok names ->
          checkb "sharded metric names stable" true
            (names = expect_names ~pdes:true)
      | Error e -> Alcotest.failf "prom validation: %s" e)

let telemetry_rejects_garbage () =
  with_tmp ".prom" (fun path ->
      let oc = open_out path in
      output_string oc "9bad_name 1\n";
      close_out oc;
      checkb "bad metric name rejected" true
        (Result.is_error (Obs.Telemetry.validate_prom path));
      let oc = open_out path in
      output_string oc "ok_name{unterminated=\"x 1\n";
      close_out oc;
      checkb "bad label block rejected" true
        (Result.is_error (Obs.Telemetry.validate_prom path));
      let oc = open_out path in
      output_string oc "ok_name not_a_number\n";
      close_out oc;
      checkb "bad value rejected" true
        (Result.is_error (Obs.Telemetry.validate_prom path)))

(* ---- Sampler horizon (satellite fix) ----------------------------------- *)

let sampler_final_sample () =
  (* 10 s duration + 2 s drain = a 12 s horizon that is NOT a multiple
     of the 5 s interval: samples at 0, 5, 10 — and now one at 12. *)
  with_tmp ".jsonl" (fun path ->
      ignore
        (Runner.run ~sample:(Time.sec 5.) ~sample_out:path (border_free ()));
      let ic = open_in path in
      let times = ref [] in
      (try
         while true do
           match Obs.Jsonl.parse_line (input_line ic) with
           | Some fields -> (
               match List.assoc_opt "t" fields with
               | Some (Obs.Jsonl.Int t) -> times := t :: !times
               | _ -> ())
           | None -> ()
         done
       with End_of_file -> close_in ic);
      let times = List.rev !times in
      checkb "final sample lands on the horizon" true
        (times
        = List.map
            (fun s -> (Time.sec s :> int))
            [ 0.; 5.; 10.; 12. ]))

let () =
  Alcotest.run "span"
    [
      ( "reconstruction",
        [
          Alcotest.test_case "complete on classic run" `Quick
            spans_complete_classic;
          Alcotest.test_case "identical at shards 1 and 4" `Slow
            spans_identical_across_shards;
          Alcotest.test_case "complete at shards 4" `Quick
            spans_complete_sharded;
          Alcotest.test_case "summary byte totals" `Quick
            summary_reports_bytes;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "classic run validates" `Quick telemetry_classic;
          Alcotest.test_case "sharded run validates" `Quick telemetry_sharded;
          Alcotest.test_case "validator rejects garbage" `Quick
            telemetry_rejects_garbage;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "horizon sample" `Quick sampler_final_sample;
        ] );
    ]
