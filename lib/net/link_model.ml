(* Deterministic per-link propagation perturbations layered on the unit
   disk: log-normal shadowing and a time-windowed partition barrier.

   Shadowing draws one gain per unordered node pair from a seeded hash —
   no run-order dependence, so the same pair sees the same gain in every
   index mode, every shard layout and every replay.  The draw is a
   Box-Muller normal in dB clamped to +-3 sigma; dividing by the path
   loss exponent converts the dB offset into a range factor, so a pair's
   effective disk radius is [range * gain].  [f_max] bounds the factor,
   letting the channel inflate its candidate queries so the superset
   still covers every decodable pair.

   The partition wall is a stateless predicate — a vertical barrier at
   [x] absorbing everything that would cross it inside [at, heal).
   Evaluating it per transmission (rather than mutating topology) keeps
   it exact under PDES, where the same transmission is re-propagated on
   several shards. *)

open Sim

type t = {
  shadow_seed : int;
  sigma_db : float;
  eta : float;
  f_max : float;
  has_shadow : bool;
  gains : (int, float) Hashtbl.t;
  wall_at : Time.t;
  wall_heal : Time.t;
  wall_x : float;
  has_wall : bool;
}

let create ?shadowing ?partition () =
  let shadow_seed, sigma_db, eta, has_shadow =
    match shadowing with
    | None -> (0, 0., 2., false)
    | Some (seed, sigma_db, eta) ->
        if sigma_db < 0. then
          invalid_arg "Link_model.create: sigma_db must be non-negative";
        if eta <= 0. then
          invalid_arg "Link_model.create: path-loss exponent must be positive";
        (seed, sigma_db, eta, true)
  in
  let wall_at, wall_heal, wall_x, has_wall =
    match partition with
    | None -> (Time.zero, Time.zero, 0., false)
    | Some (at, heal, x) ->
        if Time.(heal < at) then
          invalid_arg "Link_model.create: partition heals before it starts";
        (at, heal, x, true)
  in
  {
    shadow_seed;
    sigma_db;
    eta;
    f_max =
      (if has_shadow then Float.pow 10. (3. *. sigma_db /. (10. *. eta))
       else 1.);
    has_shadow;
    gains = Hashtbl.create (if has_shadow then 256 else 1);
    wall_at;
    wall_heal;
    wall_x;
    has_wall;
  }

let f_max t = t.f_max
let shadowed t = t.has_shadow
let partitioned t = t.has_wall

(* Gain for the unordered pair {a, b}: memoized so the steady state is a
   hash probe, computed from a pair-keyed splitmix stream on a miss.
   Symmetry (gain a b = gain b a) models reciprocal links and keeps
   unicast/ACK reachability consistent. *)
let gain t a b =
  if not t.has_shadow then 1.
  else begin
    let lo = if a < b then a else b and hi = if a < b then b else a in
    let key = (lo * 1_048_573) + hi in
    match Hashtbl.find_opt t.gains key with
    | Some g -> g
    | None ->
        let rng = Rng.create (t.shadow_seed lxor key) in
        (* u1 in (0, 1] keeps the log finite. *)
        let u1 = 1. -. Rng.float rng 1. in
        let u2 = Rng.float rng 1. in
        let g_db =
          t.sigma_db *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
        in
        let g_db = Float.max (-3. *. t.sigma_db) (Float.min (3. *. t.sigma_db) g_db) in
        let g = Float.pow 10. (g_db /. (10. *. t.eta)) in
        Hashtbl.add t.gains key g;
        g
  end

let blocked t ~now ~x1 ~x2 =
  t.has_wall
  && Time.(now >= t.wall_at)
  && Time.(now < t.wall_heal)
  && x1 < t.wall_x <> (x2 < t.wall_x)
