(* The paper's Figure 1 / Section 2.3 walkthrough, executed against the
   real LDR implementation over an idealized link layer.

   Six nodes; destination T.  Initial successor graph (dist/fd):

       E ---- C(3/2) ---- D(1/1) ---- T(0/0)
        \---- B(4/4) --/              (B's successor path runs via C)
        \---- D

   Script (paper, Section 2.3):
   1. E needs a route to T and floods a RREQ.  C answers first (E
      installs dist 4 / fd 4), B's reply with start distance 4 is
      ignored, D's reply with distance 1 improves E to dist 2 / fd 2.
   2. Links E-C and E-D fail.  E re-floods with fd 2.  Neither B (dist 4)
      nor C (dist 3) satisfies the request, and both violate feasible-
      distance ordering, so the T bit gets set.  D could answer (1 < 2)
      but the reset bit forces it to unicast the RREQ to T.  T increments
      its sequence number and replies with distance 0; the reply resets
      feasible distances along D(1/1) -> C(2/2) -> B(3/3) -> E(4/4).

   Run with: dune exec examples/figure1.exe *)

open Packets
module Time = Sim.Time

(* Node ids chosen so that broadcast copies (delivered in id order by the
   test network) make C answer first, as the paper stipulates. *)
let e = 0
let c = 1
let b = 2
let d = 3
let t_ = 4

let name = function
  | 0 -> "E"
  | 1 -> "C"
  | 2 -> "B"
  | 3 -> "D"
  | 4 -> "T"
  | n -> "n" ^ string_of_int n

let failures = ref 0

let check what cond =
  if cond then Format.printf "  ok   %s@." what
  else begin
    incr failures;
    Format.printf "  FAIL %s@." what
  end

let show_entry dbg node =
  match Ldr.Route_table.find dbg.Ldr.Protocol.table (Node_id.of_int t_) with
  | None -> Format.printf "  %s: no entry for T@." (name node)
  | Some en ->
      Format.printf "  %s: sn=%a dist=%d fd=%d next=%s@." (name node)
        Seqnum.pp en.sn en.dist en.fd
        (match en.next_hop with
        | Some nh -> name (Node_id.to_int nh)
        | None -> "-")

let () =
  let engine = Sim.Engine.create ~seed:1 () in
  (* The plain configuration: the walkthrough predates the Section-4
     optimizations (reduced distance would lower the answering bound and
     change who may reply). *)
  let config = Ldr.Config.plain in
  let debugs = Array.make 5 None in
  let factories =
    Array.init 5 (fun i ctx ->
        let agent, dbg = Ldr.Protocol.factory_with_debug ~config () ctx in
        debugs.(i) <- Some dbg;
        agent)
  in
  let net = Experiment.Testnet.create_custom ~engine ~factories () in
  let dbg i = Option.get debugs.(i) in
  let module TN = Experiment.Testnet in
  (* Radio links. *)
  List.iter
    (fun (x, y) -> TN.connect net x y)
    [ (e, b); (e, c); (e, d); (b, c); (c, d); (d, t_) ];

  (* Stage the figure's initial tables (the paper: "These numbers may
     occur due to mobility and changing successors"). *)
  let sn0 = Seqnum.initial ~stamp:0 in
  let far = Time.sec 1000. in
  let set node ~dist ~fd ~via =
    let table = (dbg node).Ldr.Protocol.table in
    let tid = Node_id.of_int t_ in
    (match Ldr.Route_table.apply_advert table ~dst:tid ~adv_sn:sn0 ~adv_dist:0
             ~via:(Node_id.of_int via) ~lifetime:far ()
     with
    | `Installed | `Refreshed | `Rejected -> ());
    match Ldr.Route_table.find table tid with
    | None -> assert false
    | Some en ->
        en.sn <- sn0;
        en.dist <- dist;
        en.fd <- fd;
        en.next_hop <- Some (Node_id.of_int via)
  in
  set d ~dist:1 ~fd:1 ~via:t_;
  set c ~dist:3 ~fd:2 ~via:d;
  set b ~dist:4 ~fd:4 ~via:c;

  Format.printf "Initial state (dist/fd toward T):@.";
  List.iter (fun n -> show_entry (dbg n) n) [ b; c; d ];

  (* --- Step 1: E discovers T. --------------------------------------- *)
  Format.printf "@.Step 1: E floods a RREQ for T.@.";
  TN.origin net ~src:e ~dst:t_;
  (* C's reply arrives first; inspect E before B's and D's replies land.
     With 1 ms hop delay and 100 us stagger, C's RREP is back at ~2.0 ms,
     B's at ~2.1 ms, D's at ~2.2 ms. *)
  TN.run net ~for_:(Time.us 2050.);
  (match Ldr.Route_table.find (dbg e).Ldr.Protocol.table (Node_id.of_int t_) with
  | Some en ->
      check "after C's reply E has dist 4, fd 4" (en.dist = 4 && en.fd = 4)
  | None -> check "after C's reply E has an entry" false);
  TN.run net ~for_:(Time.ms 50.);
  show_entry (dbg e) e;
  (match Ldr.Route_table.find (dbg e).Ldr.Protocol.table (Node_id.of_int t_) with
  | Some en ->
      check "B's reply (start distance 4) was ignored, D's accepted"
        (en.dist = 2 && en.fd = 2 && en.next_hop = Some (Node_id.of_int d))
  | None -> check "E has an entry" false);
  check "data reached T" (TN.delivered net = 1);

  (* --- Step 2: links fail; reset through the destination. ------------ *)
  Format.printf "@.Step 2: links E-C and E-D fail; E re-floods with fd 2.@.";
  TN.disconnect net e c;
  TN.disconnect net e d;
  let t_sn_before = (dbg t_).Ldr.Protocol.own_sn () in
  TN.origin net ~src:e ~dst:t_;
  TN.run net ~for_:(Time.sec 5.);
  List.iter (fun n -> show_entry (dbg n) n) [ e; b; c; d ];
  let t_sn_after = (dbg t_).Ldr.Protocol.own_sn () in
  check "T incremented its sequence number (path reset)"
    Seqnum.(t_sn_after > t_sn_before);
  let entry node =
    Option.get
      (Ldr.Route_table.find (dbg node).Ldr.Protocol.table (Node_id.of_int t_))
  in
  let en_d = entry d and en_c = entry c and en_b = entry b and en_e = entry e in
  check "D: dist 1, fd 1 under the new number"
    (en_d.dist = 1 && en_d.fd = 1 && Seqnum.(en_d.sn > sn0));
  check "C: dist 2, fd 2 (paper: keeps its feasible distance at 2)"
    (en_c.dist = 2 && en_c.fd = 2);
  check "B: dist 3, fd 3" (en_b.dist = 3 && en_b.fd = 3);
  check "E: dist 4, fd reset to 4"
    (en_e.dist = 4 && en_e.fd = 4
    && en_e.next_hop = Some (Node_id.of_int b));
  check "second packet reached T over the reset path" (TN.delivered net = 2);
  TN.audit_loops net;
  check "no routing loops at any audited point"
    (Experiment.Metrics.loop_violations (TN.metrics net) = 0);

  if !failures = 0 then Format.printf "@.Figure 1 walkthrough: OK@."
  else begin
    Format.printf "@.Figure 1 walkthrough: %d check(s) FAILED@." !failures;
    exit 1
  end
