(** Wire-format codecs: byte-true encodings for every payload family.

    The simulator's airtime, traced byte counts, and overhead metrics all
    derive from these encodings — there are no size estimators anywhere
    else.  Layouts follow the source documents: LDR per the paper's
    Section-2 header fields, AODV per RFC 3561, DSR per RFC 4728, OLSR
    per RFC 3626, plus an IPv4-shaped data header.  See
    [docs/WIRE_FORMATS.md] for the field-by-field tables and the few
    deliberate deviations.

    Decoding never raises: every decoder is total and returns a [result]
    whose error carries the byte offset where parsing stopped. *)

type error = { offset : int; reason : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Append-only big-endian byte emitter over a growable buffer. *)
module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val clear : t -> unit
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val zeros : t -> int -> unit

  val contents : t -> bytes
  (** A copy of the bytes written so far. *)
end

(** Bounds-checked big-endian cursor; all reads return [result]. *)
module Reader : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> (int, error) result
  val u16 : t -> (int, error) result
  val u32 : t -> (int, error) result
  val u64 : t -> (int64, error) result
  val skip : t -> int -> (unit, error) result

  val expect_end : t -> (unit, error) result
  (** [Error _] if any bytes remain. *)

  val fail : t -> string -> ('a, error) result
  (** An error tagged with the current cursor offset. *)
end

(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the MAC
    frame check sequence. *)
module Crc32 : sig
  val bytes : bytes -> pos:int -> len:int -> int
  (** Unsigned 32-bit digest as an int. *)
end

(** LDR control messages (paper, Section 2): type octet, one flags octet
    carrying the T/N/D bits, 8-byte labelled sequence numbers, and
    32-bit fd / answer-dist / dist fields with an all-ones infinity. *)
module Ldr : sig
  val infinite_distance : int
  (** The in-memory unreachable sentinel ([max_int / 4], mirroring
      [Ldr.Conditions.infinity]); encodes as 0xFFFF_FFFF on the wire. *)

  val encoded_length : Packets.Ldr_msg.t -> int
  val write : Writer.t -> Packets.Ldr_msg.t -> unit
  val encode : Packets.Ldr_msg.t -> bytes
  val read : Reader.t -> (Packets.Ldr_msg.t, error) result
  val decode : bytes -> (Packets.Ldr_msg.t, error) result
end

(** AODV control messages per RFC 3561 (RREQ 24 B, RREP 20 B,
    RERR 4 + 8n B); the RREQ's expanding-ring TTL rides the octet the
    RFC leaves reserved, standing in for the IP TTL. *)
module Aodv : sig
  val encoded_length : Packets.Aodv_msg.t -> int
  val write : Writer.t -> Packets.Aodv_msg.t -> unit
  val encode : Packets.Aodv_msg.t -> bytes
  val read : Reader.t -> (Packets.Aodv_msg.t, error) result
  val decode : bytes -> (Packets.Aodv_msg.t, error) result
end

(** DSR per RFC 4728: a 4-byte fixed header followed by options; source
    routes are sized per hop (4 bytes per address). *)
module Dsr : sig
  val encoded_length : Packets.Dsr_msg.t -> int
  val write : Writer.t -> Packets.Dsr_msg.t -> unit
  val encode : Packets.Dsr_msg.t -> bytes
  val read : Reader.t -> (Packets.Dsr_msg.t, error) result
  val decode : bytes -> (Packets.Dsr_msg.t, error) result
end

(** OLSR per RFC 3626: packet header + message envelope (16 B), HELLO
    bodies as link-code blocks, TC bodies as ANSN + advertised set.

    On the wire HELLO neighbours are grouped into per-link-code blocks
    in canonical order (Asym, Sym, Mpr); decoding yields that grouped
    order, so decode ∘ encode is the identity on canonically grouped
    neighbour lists (the receiver logic is order-insensitive). *)
module Olsr : sig
  val encoded_length : Packets.Olsr_msg.t -> int
  val write : Writer.t -> Packets.Olsr_msg.t -> unit
  val encode : Packets.Olsr_msg.t -> bytes
  val read : Reader.t -> (Packets.Olsr_msg.t, error) result
  val decode : bytes -> (Packets.Olsr_msg.t, error) result
end

(** Application data: a 20-byte IPv4-shaped header plus the 8-byte
    origination timestamp (28 B total), then [payload_bytes] of zeroed
    application payload. *)
module Data : sig
  val header_bytes : int
  val encoded_length : Packets.Data_msg.t -> int
  val write : Writer.t -> Packets.Data_msg.t -> unit
  val encode : Packets.Data_msg.t -> bytes
  val read : Reader.t -> (Packets.Data_msg.t, error) result
  val decode : bytes -> (Packets.Data_msg.t, error) result
end

(** Dispatch over the payload sum.  Encodings are self-describing within
    a family but the family itself travels out of band (the pcap
    pseudo-header, or [Frame] context), as on a real link where a
    demux field in a lower layer selects the parser. *)
module Payload : sig
  val family_ack : int
  (** 0 — MAC-level ACK, no network payload. *)

  val family : Packets.Payload.t -> int
  (** 1 data, 2 LDR, 3 AODV, 4 DSR, 5 OLSR. *)

  val family_name : int -> string
  (** "ACK" / "DATA" / "LDR" / "AODV" / "DSR" / "OLSR"; "UNKNOWN(n)"
      otherwise. *)

  val encoded_length : Packets.Payload.t -> int
  val write : Writer.t -> Packets.Payload.t -> unit
  val encode : Packets.Payload.t -> bytes
  val read : family:int -> Reader.t -> (Packets.Payload.t, error) result
  val decode : family:int -> bytes -> (Packets.Payload.t, error) result
end

val encoded_length : Packets.Payload.t -> int
(** Alias for {!Payload.encoded_length}: the single source of truth for
    every on-air size in the stack. *)

(** 802.11 MAC framing constants and the 6-byte address codec used by
    [Net.Frame]: 30-byte 4-address data header + 4-byte FCS (34 B of
    overhead, matching [Net.Params.default.mac_overhead_bytes]) and the
    14-byte ACK. *)
module Mac : sig
  val header_bytes : int
  val fcs_bytes : int
  val data_overhead : int
  val ack_bytes : int

  val write_addr : Writer.t -> int option -> unit
  (** [Some id] as the locally administered MAC 02:00:aa:bb:cc:dd with
      the node id in the low 32 bits; [None] as the broadcast address. *)

  val read_addr : Reader.t -> (int option, error) result
end
