test/test_sim.ml: Alcotest Array Engine Event_queue Fun Int64 List QCheck QCheck_alcotest Rng Sim Time
