(** Run tracing.

    Human-readable event traces at the node-stack boundaries — every
    frame on the air, every delivery, drop and link failure — through the
    {!Logs} library under the source ["manet"].  Disabled (and near-free)
    unless a reporter is installed and the source's level allows
    [Debug]; {!enable} does both, as the CLI's [--trace] flag. *)

val src : Logs.src

val enable : ?out:Format.formatter -> unit -> unit
(** Install a reporter printing one line per event (simulation time,
    node, event) to [out] (default stderr) and set the source to
    [Debug].  Intended for CLI / debugging use; replaces any existing
    Logs reporter. *)

val transmit : Sim.Engine.t -> Packets.Node_id.t -> Net.Frame.t -> unit
val deliver : Sim.Engine.t -> Packets.Node_id.t -> Packets.Data_msg.t -> unit

val drop :
  Sim.Engine.t -> Packets.Node_id.t -> Packets.Data_msg.t -> reason:string -> unit

val link_failure :
  Sim.Engine.t -> Packets.Node_id.t -> next_hop:Packets.Node_id.t -> unit

val protocol_event : Sim.Engine.t -> Packets.Node_id.t -> string -> unit
