lib/packets/seqnum.ml: Format Int Stdlib
