(** Application (CBR) data packets. *)

type t = {
  flow_id : int;
  seq : int;  (** per-flow packet counter *)
  src : Node_id.t;
  dst : Node_id.t;
  payload_bytes : int;
  origin_time : Sim.Time.t;  (** when the application emitted it *)
  ttl : int;  (** IP-style hop budget, decremented per forward *)
  hops : int;  (** transmissions so far; at delivery, the path length *)
}

val default_ttl : int

val fresh :
  flow_id:int ->
  seq:int ->
  src:Node_id.t ->
  dst:Node_id.t ->
  payload_bytes:int ->
  origin_time:Sim.Time.t ->
  t
(** A newly originated packet: full TTL, zero hops. *)

val hop : t -> t
(** Account one transmission. *)

val uid : t -> int * int
(** (flow_id, seq): unique across a run; keys end-to-end accounting. *)

val decr_ttl : t -> t option
(** [None] when the hop budget is exhausted. *)

val pp : Format.formatter -> t -> unit
