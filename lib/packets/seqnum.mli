(** LDR labeled sequence numbers (paper, Section 3).

    A sequence number is a pair (timestamp, counter).  Only the owning
    destination increments its own number.  When the counter saturates,
    the node takes a fresh timestamp from its clock and resets the counter
    to zero — so numbers keep increasing without synchronized clocks,
    network-wide resets, or AODV's reboot-hold procedure.  Comparison is
    lexicographic. *)

type t = { stamp : int; counter : int }

val initial : stamp:int -> t
(** First number a destination uses: counter 0 at the given clock stamp. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val max : t -> t -> t

val increment : ?counter_limit:int -> now_stamp:int -> t -> t
(** The destination-only increment.  Bumps the counter; at
    [counter_limit] (default [2^30]) the counter wraps to zero under a
    fresh [now_stamp], which must be strictly greater than the stored
    stamp for the result to remain increasing (asserted). *)

val pack : t -> int
(** Order-preserving pack to a single int: stamp in the high bits,
    counter in the low 31.  Valid while the counter stays below 2^31
    (the default {!increment} limit is 2^30); comparing packed values
    with [Int.compare] agrees with {!compare}.  Used by the
    observability layer, which carries invariants as plain ints. *)

val increments : t -> int
(** Total increments implied by [t] within its current stamp: the counter
    value.  Used by the Fig-7 metric (mean destination sequence number),
    which for LDR counts how often destinations had to bump. *)

val pp : Format.formatter -> t -> unit
