open Sim

type protocol =
  | Ldr of Ldr.Config.t
  | Aodv of Aodv.config
  | Dsr of Dsr.config
  | Olsr of Olsr.config
  | Ldr_agg of Ldr.Config.t * Routing.Aggregation.config
  | Aodv_agg of Aodv.config * Routing.Aggregation.config

let protocol_name = function
  | Ldr _ -> "LDR"
  | Aodv _ -> "AODV"
  | Dsr _ -> "DSR"
  | Olsr _ -> "OLSR"
  | Ldr_agg _ -> "LDR-AGG"
  | Aodv_agg _ -> "AODV-AGG"

let ldr = Ldr Ldr.Config.default
let ldr_multipath = Ldr { Ldr.Config.default with multipath = true }
let aodv = Aodv Aodv.default_config
let dsr = Dsr Dsr.default_config
let dsr_draft7 = Dsr { Dsr.default_config with reply_from_cache = false }
let olsr = Olsr Olsr.default_config
let ldr_agg = Ldr_agg (Ldr.Config.default, Routing.Aggregation.default)
let aodv_agg = Aodv_agg (Aodv.default_config, Routing.Aggregation.default)

let factory = function
  | Ldr config -> Ldr.Protocol.factory ~config ()
  | Aodv config -> Aodv.factory ~config ()
  | Dsr config -> Dsr.factory ~config ()
  | Olsr config -> Olsr.factory ~config ()
  | Ldr_agg (config, agg) ->
      Routing.Aggregation.wrap ~config:agg (Ldr.Protocol.factory ~config ())
  | Aodv_agg (config, agg) ->
      Routing.Aggregation.wrap ~config:agg (Aodv.factory ~config ())

type placement = Uniform | Grid | Fixed of Geom.Vec2.t list

type mobility =
  | Waypoint
  | Manhattan of { spacing : float }
  | Rpgm of { groups : int; radius : float }

let mobility_name = function
  | Waypoint -> "waypoint"
  | Manhattan _ -> "manhattan"
  | Rpgm _ -> "rpgm"

type shadowing = { sigma_db : float; eta : float }

let default_shadowing = { sigma_db = 4.; eta = 3. }

type churn = {
  churn_frac : float;
  crash_frac : float;
  down_min : Time.t;
  down_max : Time.t;
  churn_start : Time.t;
  churn_stop : Time.t;
}

let default_churn =
  {
    churn_frac = 0.2;
    crash_frac = 0.5;
    down_min = Time.sec 10.;
    down_max = Time.sec 30.;
    churn_start = Time.sec 10.;
    churn_stop = Time.sec 60.;
  }

type partition = {
  part_at : Time.t;
  part_heal : Time.t;
  part_x_frac : float;
}

type t = {
  label : string;
  num_nodes : int;
  terrain : Geom.Terrain.t;
  placement : placement;
  speed_min : float;
  speed_max : float;
  pause : Time.t;
  duration : Time.t;
  traffic : Traffic.config;
  protocol : protocol;
  net : Net.Params.t;
  seed : int;
  audit_loops : bool;
  naive_channel : bool;
  heap_scheduler : bool;
  shards : int;
      (* <= 1: classic single-engine run; K >= 2: spatially-sharded
         PDES across K regions; 0: auto (recommended domains, capped) *)
  mobility : mobility;
  shadowing : shadowing option;
  churn : churn option;
  partition : partition option;
  soa : bool;
      (* route node state through the struct-of-arrays hot path
         (Net.Nodes + Channel Soa mode); outcomes are byte-identical
         to the record path, so this is purely a performance axis *)
}

let paper_50 protocol =
  {
    label = "50-node";
    num_nodes = 50;
    terrain = Geom.Terrain.create ~width:1500. ~height:300.;
    placement = Uniform;
    speed_min = 1.;
    speed_max = 20.;
    pause = Time.sec 0.;
    duration = Time.sec 900.;
    traffic = Traffic.default_config;
    protocol;
    net = Net.Params.default;
    seed = 1;
    audit_loops = false;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

let paper_100 protocol =
  {
    (paper_50 protocol) with
    label = "100-node";
    num_nodes = 100;
    terrain = Geom.Terrain.create ~width:2200. ~height:600.;
  }

let positions t rng =
  match t.placement with
  | Uniform ->
      Array.init t.num_nodes (fun _ -> Geom.Terrain.random_point t.terrain rng)
  | Grid ->
      let w = t.terrain.Geom.Terrain.width and h = t.terrain.Geom.Terrain.height in
      let cols =
        Stdlib.max 1
          (int_of_float
             (Float.round (sqrt (float_of_int t.num_nodes *. w /. h))))
      in
      let rows = (t.num_nodes + cols - 1) / cols in
      Array.init t.num_nodes (fun i ->
          let c = i mod cols and r = i / cols in
          Geom.Vec2.v
            ((float_of_int c +. 0.5) *. w /. float_of_int cols)
            ((float_of_int r +. 0.5) *. h /. float_of_int rows))
  | Fixed ps ->
      if List.length ps <> t.num_nodes then
        invalid_arg "Scenario.positions: Fixed placement length mismatch";
      Array.of_list ps

let with_flows n t = { t with traffic = { t.traffic with Traffic.num_flows = n } }
let with_pause pause t = { t with pause }
let with_duration duration t = { t with duration }
let with_seed seed t = { t with seed }
let with_naive_channel naive_channel t = { t with naive_channel }
let with_heap_scheduler heap_scheduler t = { t with heap_scheduler }
let with_shards shards t = { t with shards }
let with_mobility mobility t = { t with mobility }
let with_shadowing shadowing t = { t with shadowing }
let with_churn churn t = { t with churn }
let with_partition partition t = { t with partition }
let with_soa soa t = { t with soa }
let scaled ~duration t = { t with duration }
