(** Controllable event set for systematic-exploration (model-checking)
    runs.

    A third scheduler backing for {!Engine}: a plain array of pending
    events with public integer sequence ids, built for *introspection
    and choice* rather than throughput.  Two event classes:

    - {e timed} events (the default) carry an absolute firing time and
      behave exactly like calendar/heap events: the earliest fires
      first, insertion order breaking ties.
    - {e floating} events model in-flight messages of an asynchronous
      system: they may fire at {e any} point at or after their creation
      — the explorer can delay a message past timers and other
      messages, which is where routing-protocol counterexamples live.

    Under the default FIFO policy ({!pop_min}) floating events are
    indistinguishable from timed events at their creation time, so a
    controlled engine that never uses the choice API is event-for-event
    identical to the stock calendar run (asserted by a qcheck property
    in [test_sim.ml]). *)

type t

type ready = {
  r_seq : int;  (** stable id: assigned in schedule order *)
  r_tag : int;  (** user tag; mcheck stores the target node, -1 = timer *)
  r_time : int;  (** nominal time, ns *)
  r_floating : bool;
  r_label : string;  (** human description, may be empty *)
}
(** One explorer-choosable event. *)

val create : unit -> t

val schedule :
  t ->
  ?floating:bool ->
  ?tag:int ->
  ?label:string ->
  time:int ->
  (unit -> unit) ->
  int
(** Add an event; returns its sequence id.  [floating] defaults to
    false (timed), [tag] to -1, [label] to [""]. *)

val cancel : t -> int -> unit
(** By sequence id; cancelling a fired/cancelled/unknown id is a no-op. *)

val live_count : t -> int

val next_time_ns : t -> int
(** Earliest nominal time over all live events, [max_int] when empty. *)

val ready : t -> ready list
(** The explorer's choice set, in sequence order: every live floating
    event, plus the timed events tied at the earliest timed instant.
    Empty iff the queue is empty. *)

val pending : t -> ready list
(** Every live event (ready or not), in sequence order — the
    pending-event component of mcheck's state digest. *)

val take : t -> int -> (int * (unit -> unit)) option
(** Remove the live event with the given sequence id and return its
    (nominal time, callback); [None] if no such live event.  The caller
    owns clock bookkeeping and invocation. *)

val pop_min : t -> ?limit:int -> unit -> (int * (unit -> unit)) option
(** Remove and return the global (time, seq)-minimum over {e all} live
    events — the FIFO default policy, matching calendar semantics.
    With [limit], only events at or before it are eligible. *)
