lib/stats/welford.mli:
