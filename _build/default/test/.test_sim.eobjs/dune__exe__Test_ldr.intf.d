test/test_ldr.mli:
