(** Run-level accounting for the paper's six metrics (Section 4) plus the
    Fig-7 mean destination sequence number.

    Terminology follows the paper: a "transmitted" count is hop-wise (a
    packet crossing three hops counts three), an "initiated" count is
    per-origination. *)

type t

val create : ?journal:bool -> unit -> t
(** [journal] (default false) additionally records every delivery's
    (time, latency, hop-count) sample.  PDES shards turn it on so
    {!merge_all} can rebuild the float accumulators in global
    delivery-time order instead of merging per-shard partial sums —
    float addition does not re-associate, replaying does. *)

val merge_all : t list -> t
(** Combine per-shard metrics from a PDES run: integer counters and
    per-kind tables are summed; latency/hop statistics are replayed
    from the journals in global delivery-time order (stable, so
    same-nanosecond ties keep shard order), making the result
    bit-identical to a single-engine run that delivered the same
    packets at the same times.  [mean_dest_seqno] is left for the
    caller's finalize.  Raises [Invalid_argument] if a part was
    created without [~journal:true]. *)

(* Recording (called by the runner's hooks). *)

val data_originated : t -> Packets.Data_msg.t -> unit
val data_delivered : t -> now:Sim.Time.t -> Packets.Data_msg.t -> unit
val data_dropped : t -> Packets.Data_msg.t -> reason:string -> unit
val transmitted : t -> Net.Frame.t -> unit
val protocol_event : t -> string -> unit
val loop_violation : t -> unit
val set_mean_dest_seqno : t -> float -> unit

(* Reading. *)

val originated : t -> int
val delivered : t -> int
(** Unique end-to-end deliveries (MAC-duplicate copies excluded). *)

val duplicates : t -> int
val delivery_ratio : t -> float

val mean_latency_ms : t -> float

val median_latency_ms : t -> float
(** Percentiles read a log-bucketed {!Stats.Hdr} histogram over integer
    nanoseconds: within-bucket resolution (~0.8% at the default
    sub-bucket width), exact at the recorded min/max, and exactly
    mergeable across PDES shards. *)

val p95_latency_ms : t -> float
val p99_latency_ms : t -> float

val latency_quantile_ms : t -> float -> float
(** [latency_quantile_ms t q] for arbitrary [q] in [0, 1]. *)

val latency_histogram : t -> Stats.Hdr.t
(** The underlying delivery-latency histogram (values in ns). *)

val mean_hops : t -> float
(** Mean path length (MAC transmissions) of delivered packets. *)

val control_transmissions : t -> int
(** All control packets, hop-wise (RREQ+RREP+RERR+HELLO+TC). *)

val control_by_kind : t -> (string * int) list
val data_transmissions : t -> int

val control_bytes : t -> int
(** Total control octets put on the air, MAC framing included —
    byte-accurate from {!Net.Frame.encoded_length}. *)

val control_bytes_by_kind : t -> (string * int) list
val data_bytes : t -> int
val ack_bytes : t -> int

val network_load : t -> float
(** Control transmissions per received data packet. *)

val byte_load : t -> float
(** Control octets per received data packet (the byte-true counterpart
    of {!network_load}). *)

val rreq_load : t -> float
val rrep_init_per_rreq : t -> float
val rrep_recv_per_rreq : t -> float
val event_count : t -> string -> int
val drops_by_reason : t -> (string * int) list
val loop_violations : t -> int
val mean_dest_seqno : t -> float

type summary = {
  s_delivery_ratio : float;
  s_latency_ms : float;
  s_network_load : float;
  s_byte_load : float;
  s_rreq_load : float;
  s_rrep_init : float;
  s_rrep_recv : float;
  s_mean_dest_seqno : float;
}

val summary : t -> summary
