lib/packets/olsr_msg.ml: Format List Node_id
