type t =
  | Data of Data_msg.t
  | Ldr of Ldr_msg.t
  | Aodv of Aodv_msg.t
  | Dsr of Dsr_msg.t
  | Olsr of Olsr_msg.t

let classify = function
  | Data d -> `Data d
  | Dsr (Dsr_msg.Data { data; _ }) -> `Data data
  | Ldr m -> `Control (Ldr_msg.kind m)
  | Aodv m -> `Control (Aodv_msg.kind m)
  | Dsr m -> `Control (Dsr_msg.kind m)
  | Olsr m -> `Control (Olsr_msg.kind m)

(* Direct match — [classify] allocates its polymorphic-variant result,
   which this per-transmission predicate must not. *)
let is_data = function
  | Data _ | Dsr (Dsr_msg.Data _) -> true
  | Ldr _ | Aodv _ | Dsr _ | Olsr _ -> false

(* Out-of-band trace id of a data packet, allocation-free: (flow, seq)
   ride in [Data_msg] end-to-end, so span records need nothing added
   to the wire.  -1 for control payloads. *)
let data_flow = function
  | Data d | Dsr (Dsr_msg.Data { data = d; _ }) -> d.Data_msg.flow_id
  | Ldr _ | Aodv _ | Dsr _ | Olsr _ -> -1

let data_seq = function
  | Data d | Dsr (Dsr_msg.Data { data = d; _ }) -> d.Data_msg.seq
  | Ldr _ | Aodv _ | Dsr _ | Olsr _ -> -1

(* [classify] without the payload: no allocation, for trace labels. *)
let class_name = function
  | Data _ | Dsr (Dsr_msg.Data _) -> "DATA"
  | Ldr m -> Ldr_msg.kind m
  | Aodv m -> Aodv_msg.kind m
  | Dsr m -> Dsr_msg.kind m
  | Olsr m -> Olsr_msg.kind m

let pp fmt = function
  | Data d -> Data_msg.pp fmt d
  | Ldr m -> Ldr_msg.pp fmt m
  | Aodv m -> Aodv_msg.pp fmt m
  | Dsr m -> Dsr_msg.pp fmt m
  | Olsr m -> Olsr_msg.pp fmt m
