open Sim
open Packets
module RA = Routing.Agent

let name = "olsr"

type config = {
  hello_interval : Time.t;
  tc_interval : Time.t;
  neighbor_hold : Time.t;
  topology_hold : Time.t;
  jitter_max : Time.t;
  dup_hold : Time.t;
  data_ttl : int;
}

let default_config =
  {
    hello_interval = Time.sec 2.;
    tc_interval = Time.sec 5.;
    neighbor_hold = Time.sec 6.;
    topology_hold = Time.sec 15.;
    jitter_max = Time.ms 15.;
    dup_hold = Time.sec 30.;
    data_ttl = Data_msg.default_ttl;
  }

(* ---- MPR selection (RFC 3626 8.3.1 greedy heuristic) ------------------- *)

let select_mprs ~self ~neighbors =
  let neighbor_set =
    List.fold_left
      (fun acc (n, _) -> Node_id.Set.add n acc)
      Node_id.Set.empty neighbors
  in
  (* Strict two-hop neighborhood: reachable through a neighbor, not self,
     not itself a neighbor. *)
  let coverage =
    List.map
      (fun (n, theirs) ->
        let covers =
          List.filter
            (fun x ->
              (not (Node_id.equal x self))
              && not (Node_id.Set.mem x neighbor_set))
            theirs
        in
        (n, Node_id.Set.of_list covers))
      neighbors
  in
  let two_hop =
    List.fold_left
      (fun acc (_, cov) -> Node_id.Set.union acc cov)
      Node_id.Set.empty coverage
  in
  let mprs = ref Node_id.Set.empty in
  let covered = ref Node_id.Set.empty in
  let add n cov =
    mprs := Node_id.Set.add n !mprs;
    covered := Node_id.Set.union !covered cov
  in
  (* Mandatory picks: sole providers of some two-hop node. *)
  Node_id.Set.iter
    (fun x ->
      match
        List.filter (fun (_, cov) -> Node_id.Set.mem x cov) coverage
      with
      | [ (n, cov) ] -> if not (Node_id.Set.mem n !mprs) then add n cov
      | _ -> ())
    two_hop;
  (* Greedy: repeatedly take the neighbor covering the most uncovered
     two-hop nodes (ties to the smaller id, for determinism). *)
  let remaining () = Node_id.Set.diff two_hop !covered in
  let rec loop () =
    let rem = remaining () in
    if not (Node_id.Set.is_empty rem) then begin
      let best = ref None in
      List.iter
        (fun (n, cov) ->
          if not (Node_id.Set.mem n !mprs) then begin
            let gain = Node_id.Set.cardinal (Node_id.Set.inter cov rem) in
            match !best with
            | Some (_, bg, bn)
              when bg > gain || (bg = gain && Node_id.compare bn n < 0) ->
                ()
            | _ -> if gain > 0 then best := Some (cov, gain, n)
          end)
        coverage;
      match !best with
      | None -> () (* uncoverable two-hop nodes (asymmetric info); stop *)
      | Some (cov, _, n) ->
          add n cov;
          loop ()
    end
  in
  loop ();
  !mprs

(* ---- FIFO jitter queue (the paper's OLSR fix) --------------------------- *)

type jitter_queue = {
  jq : (unit -> unit) Queue.t;
  mutable draining : bool;
}

let jq_create () = { jq = Queue.create (); draining = false }

(* ---- Node state --------------------------------------------------------- *)

type link = {
  mutable sym : bool;
  mutable l_expires : Time.t;
  mutable their_sym_neighbors : Node_id.t list;
  mutable chose_me : bool;  (** this neighbor selected us as MPR *)
}

type topo = { mutable ansn : int; mutable advertised : Node_id.t list; mutable t_expires : Time.t }

type state = {
  ctx : RA.ctx;
  cfg : config;
  links : link Node_id.Table.t;
  topology : topo Node_id.Table.t;  (** keyed by TC originator *)
  dups : unit Routing.Rreq_cache.t;
  mutable mprs : Node_id.Set.t;
  mutable ansn : int;
  mutable msg_seq : int;
  mutable routes : (Node_id.t * int) Node_id.Map.t;  (** dst -> next hop, dist *)
  mutable routes_dirty : bool;
  queue : jitter_queue;
}

let now t = Engine.now t.ctx.engine

let live_link t (l : link) = Time.(l.l_expires > now t)

let sym_neighbors t =
  Node_id.Table.fold
    (fun n l acc -> if l.sym && live_link t l then (n, l) :: acc else acc)
    t.links []

(* ---- Jittered, FIFO-ordered control transmission ------------------------ *)

let rec drain t =
  match Queue.take_opt t.queue.jq with
  | None -> t.queue.draining <- false
  | Some action ->
      let delay = Rng.uniform_time t.ctx.rng t.cfg.jitter_max in
      ignore
        (Engine.after t.ctx.engine delay (fun () ->
             action ();
             drain t))

let send_control t msg =
  Queue.push
    (fun () -> t.ctx.send ~dst:Net.Frame.Broadcast (Payload.Olsr msg))
    t.queue.jq;
  if not t.queue.draining then begin
    t.queue.draining <- true;
    drain t
  end

(* ---- Route computation (BFS over neighbor + topology information) ------- *)

let adjacency t =
  let add tbl a b =
    let cur = try Node_id.Table.find tbl a with Not_found -> Node_id.Set.empty in
    Node_id.Table.replace tbl a (Node_id.Set.add b cur)
  in
  let tbl = Node_id.Table.create 64 in
  List.iter
    (fun (n, l) ->
      List.iter
        (fun x ->
          add tbl n x;
          add tbl x n)
        l.their_sym_neighbors)
    (sym_neighbors t);
  Node_id.Table.iter
    (fun origin topo ->
      if Time.(topo.t_expires > now t) then
        List.iter
          (fun x ->
            add tbl origin x;
            add tbl x origin)
          topo.advertised)
    t.topology;
  tbl

let recompute_routes t =
  t.routes_dirty <- false;
  let adj = adjacency t in
  let first_hops =
    List.sort (fun (a, _) (b, _) -> Node_id.compare a b) (sym_neighbors t)
  in
  let routes = ref Node_id.Map.empty in
  let q = Queue.create () in
  List.iter
    (fun (n, _) ->
      routes := Node_id.Map.add n (n, 1) !routes;
      Queue.push n q)
    first_hops;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    let via, dist = Node_id.Map.find x !routes in
    let succs =
      match Node_id.Table.find_opt adj x with
      | Some s -> Node_id.Set.elements s
      | None -> []
    in
    List.iter
      (fun y ->
        if
          (not (Node_id.equal y t.ctx.id))
          && not (Node_id.Map.mem y !routes)
        then begin
          routes := Node_id.Map.add y (via, dist + 1) !routes;
          Queue.push y q
        end)
      succs
  done;
  t.routes <- !routes

let route_lookup t dst =
  if t.routes_dirty then recompute_routes t;
  Node_id.Map.find_opt dst t.routes

(* ---- HELLO -------------------------------------------------------------- *)

let recompute_mprs t =
  let neighbors =
    List.map (fun (n, l) -> (n, l.their_sym_neighbors)) (sym_neighbors t)
  in
  t.mprs <- select_mprs ~self:t.ctx.id ~neighbors

let emit_hello t =
  recompute_mprs t;
  let neighbors =
    Node_id.Table.fold
      (fun n l acc ->
        if live_link t l then
          let kind =
            if l.sym && Node_id.Set.mem n t.mprs then Olsr_msg.Mpr
            else if l.sym then Olsr_msg.Sym
            else Olsr_msg.Asym
          in
          (n, kind) :: acc
        else acc)
      t.links []
  in
  send_control t (Olsr_msg.Hello { neighbors })

let handle_hello t (h : Olsr_msg.hello) ~from =
  let l =
    match Node_id.Table.find_opt t.links from with
    | Some l -> l
    | None ->
        let l =
          { sym = false; l_expires = Time.zero; their_sym_neighbors = []; chose_me = false }
        in
        Node_id.Table.replace t.links from l;
        l
  in
  l.l_expires <- Time.add (now t) t.cfg.neighbor_hold;
  let lists_me kind =
    List.exists
      (fun (n, k) -> Node_id.equal n t.ctx.id && k = kind)
      h.neighbors
  in
  (* The link is symmetric once the neighbor reports hearing us. *)
  l.sym <- lists_me Olsr_msg.Sym || lists_me Olsr_msg.Asym || lists_me Olsr_msg.Mpr;
  l.chose_me <- lists_me Olsr_msg.Mpr;
  l.their_sym_neighbors <-
    List.filter_map
      (fun (n, k) ->
        match k with
        | Olsr_msg.Sym | Olsr_msg.Mpr ->
            if Node_id.equal n t.ctx.id then None else Some n
        | Olsr_msg.Asym -> None)
      h.neighbors;
  t.routes_dirty <- true

(* ---- TC ------------------------------------------------------------------ *)

let selectors t =
  List.filter_map
    (fun (n, l) -> if l.chose_me then Some n else None)
    (sym_neighbors t)

let emit_tc t =
  let sel = selectors t in
  if sel <> [] then begin
    t.ansn <- t.ansn + 1;
    t.msg_seq <- t.msg_seq + 1;
    send_control t
      (Olsr_msg.Tc
         {
           origin = t.ctx.id;
           msg_seq = t.msg_seq;
           ttl = 255;
           tc = { tc_origin = t.ctx.id; ansn = t.ansn; advertised = sel };
         })
  end

let handle_tc t ~origin ~msg_seq ~ttl ~(tc : Olsr_msg.tc) ~from =
  if Node_id.equal origin t.ctx.id then ()
  else if Routing.Rreq_cache.mem t.dups ~origin ~rreq_id:msg_seq then ()
  else begin
    Routing.Rreq_cache.add t.dups ~origin ~rreq_id:msg_seq ();
    let from_link = Node_id.Table.find_opt t.links from in
    let from_sym =
      match from_link with Some l -> l.sym && live_link t l | None -> false
    in
    if from_sym then begin
      (match Node_id.Table.find_opt t.topology tc.tc_origin with
      | Some entry ->
          if tc.ansn >= entry.ansn then begin
            entry.ansn <- tc.ansn;
            entry.advertised <- tc.advertised;
            entry.t_expires <- Time.add (now t) t.cfg.topology_hold;
            t.routes_dirty <- true
          end
      | None ->
          Node_id.Table.replace t.topology tc.tc_origin
            {
              ansn = tc.ansn;
              advertised = tc.advertised;
              t_expires = Time.add (now t) t.cfg.topology_hold;
            };
          t.routes_dirty <- true);
      (* MPR flooding: only the sender's chosen relays re-broadcast. *)
      let i_am_relay =
        match from_link with Some l -> l.chose_me | None -> false
      in
      if i_am_relay && ttl > 1 then
        send_control t
          (Olsr_msg.Tc { origin; msg_seq; ttl = ttl - 1; tc })
    end
  end

(* ---- Data plane ----------------------------------------------------------- *)

let rec forward_data t msg =
  match route_lookup t msg.Data_msg.dst with
  | Some (nh, _) ->
      t.ctx.send ~dst:(Net.Frame.Unicast nh) (Payload.Data (Data_msg.hop msg))
  | None -> t.ctx.drop_data msg ~reason:"no-route"

and origin_data t msg =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else forward_data t { msg with Data_msg.ttl = t.cfg.data_ttl }

let handle_data t msg =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else
    match Data_msg.decr_ttl msg with
    | None -> t.ctx.drop_data msg ~reason:"ttl-expired"
    | Some msg -> forward_data t msg

let link_failure t payload ~next_hop =
  (* Link-layer feedback accelerates what missed HELLOs would conclude. *)
  (match Node_id.Table.find_opt t.links next_hop with
  | Some l ->
      l.sym <- false;
      l.l_expires <- Time.zero;
      t.routes_dirty <- true;
      t.ctx.table_changed ()
  | None -> ());
  match payload with
  | Payload.Data msg -> (
      (* One immediate re-route attempt over the updated table. *)
      match route_lookup t msg.Data_msg.dst with
      | Some (nh, _) when not (Node_id.equal nh next_hop) ->
          t.ctx.send ~dst:(Net.Frame.Unicast nh) (Payload.Data (Data_msg.hop msg))
      | Some _ | None -> t.ctx.drop_data msg ~reason:"link-failure")
  | Payload.Ldr _ | Payload.Aodv _ | Payload.Dsr _ | Payload.Olsr _ -> ()

(* ---- Wiring ---------------------------------------------------------------- *)

let recv t payload ~from =
  match payload with
  | Payload.Data msg -> handle_data t msg
  | Payload.Olsr (Olsr_msg.Hello h) ->
      handle_hello t h ~from;
      t.ctx.table_changed ()
  | Payload.Olsr (Olsr_msg.Tc { origin; msg_seq; ttl; tc }) ->
      handle_tc t ~origin ~msg_seq ~ttl ~tc ~from;
      t.ctx.table_changed ()
  | Payload.Ldr _ | Payload.Aodv _ | Payload.Dsr _ -> ()

let start t () =
  let jitter () = Rng.uniform_time t.ctx.rng (Time.ms 100.) in
  let horizon = Time.sec 1e6 in
  (* Staggered starts decorrelate the nodes' periodic emissions. *)
  Engine.every t.ctx.engine ~jitter
    ~start:(Rng.uniform_time t.ctx.rng t.cfg.hello_interval)
    ~interval:t.cfg.hello_interval ~until:horizon
    (fun () -> emit_hello t);
  Engine.every t.ctx.engine ~jitter
    ~start:(Rng.uniform_time t.ctx.rng t.cfg.tc_interval)
    ~interval:t.cfg.tc_interval ~until:horizon
    (fun () -> emit_tc t)

(* Churn teardown (Agent.reset): drop the whole link-state view.  The
   jitter queue is emptied but [draining] is left alone — an armed drain
   event finds an empty queue and stops.  A crash also resets ANSN and
   the message sequence, as both live in volatile memory. *)
let reset t ~crash =
  Node_id.Table.reset t.links;
  Node_id.Table.reset t.topology;
  Routing.Rreq_cache.clear t.dups;
  t.mprs <- Node_id.Set.empty;
  t.routes <- Node_id.Map.empty;
  t.routes_dirty <- true;
  Queue.clear t.queue.jq;
  t.ctx.table_changed ();
  if crash then begin
    t.ansn <- 0;
    t.msg_seq <- 0
  end

let factory ?(config = default_config) () (ctx : RA.ctx) =
  let t =
    {
      ctx;
      cfg = config;
      links = Node_id.Table.create 32;
      topology = Node_id.Table.create 64;
      dups = Routing.Rreq_cache.create ~engine:ctx.engine ~ttl:config.dup_hold;
      mprs = Node_id.Set.empty;
      ansn = 0;
      msg_seq = 0;
      routes = Node_id.Map.empty;
      routes_dirty = true;
      queue = jq_create ();
    }
  in
  {
    RA.origin_data = (fun msg -> origin_data t msg);
    recv = (fun payload ~from -> recv t payload ~from);
    overheard = (fun _ ~from:_ ~dst:_ -> ());
    link_failure = (fun payload ~next_hop -> link_failure t payload ~next_hop);
    start = start t;
    successor =
      (fun dst ->
        if Node_id.equal dst ctx.id then None
        else Option.map fst (route_lookup t dst));
    own_seqno = (fun () -> 0.);
    invariants = (fun _ -> None);
    route_stats = (fun () -> (Node_id.Map.cardinal t.routes, 0, 0));
    reset = (fun ~crash -> reset t ~crash);
  }
