lib/core/route_table.ml: Conditions Engine List Node_id Packets Seqnum Sim Stdlib Time
