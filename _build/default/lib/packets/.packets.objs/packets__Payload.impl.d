lib/packets/payload.ml: Aodv_msg Data_msg Dsr_msg Ldr_msg Olsr_msg
