(** Time-series gauge sampler.

    Walks the live simulation at a fixed virtual-time interval and
    writes one flat JSON object per sample: scheduler depth
    ([Engine.stats]), frames in flight, total interface-queue
    occupancy, cumulative originated/delivered and their ratio, the
    control-transmission rate over the last interval (frames/s of
    virtual time), and the mean route-table size and mean finite
    feasible distance across nodes ({!Routing.Agent.route_stats}).

    ["t"] is integer virtual nanoseconds, matching the JSONL event
    trace so the two files join on time. *)

val attach :
  engine:Sim.Engine.t ->
  metrics:Metrics.t ->
  channel:Net.Channel.t ->
  macs:Net.Mac.t array ->
  agents:Routing.Agent.t array ->
  every:Sim.Time.t ->
  until:Sim.Time.t ->
  oc:out_channel ->
  unit
(** Schedule sampling every [every] from time zero until [until].  The
    caller owns [oc].  Raises [Invalid_argument] on a non-positive
    interval. *)
