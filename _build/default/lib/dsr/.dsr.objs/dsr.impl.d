lib/dsr/dsr.ml: Data_msg Dsr_msg Engine List Net Node_id Packets Payload Rng Route_cache Routing Sim Time
