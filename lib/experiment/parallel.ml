let recommended_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "Parallel.resolve_jobs: jobs must be >= 0"
  else if jobs = 0 then recommended_jobs ()
  else jobs

(* Auto mode must never spawn more domains than there are work items:
   the spare domains would only pay startup cost and skew per-domain GC
   deltas.  Every jobs=0 consumer (map, the sweep benchmark's reported
   worker count, the CLI's [--shards 0]) resolves through here. *)
let effective_jobs ~items jobs =
  Stdlib.max 1 (Stdlib.min (resolve_jobs jobs) items)

(* Domain-local worker marker.  Trial code consults this to avoid
   touching process-global observers (the pretty trace sink's Logs
   reporter writes through one shared formatter) from concurrent
   domains; everything else a trial needs is built per-sim. *)
let worker_key = Domain.DLS.new_key (fun () -> false)
let on_worker_domain () = Domain.DLS.get worker_key

(* A closeable multi-producer multi-consumer queue of work chunks.
   Workers block on [nonempty] until an item or [close] arrives; after
   close they drain what remains and exit.  All synchronisation in this
   file is this mutex + condition — results need none beyond the
   happens-before edge of [Domain.join]. *)
module Work_queue = struct
  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    items : 'a Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      items = Queue.create ();
      closed = false;
    }

  let push t x =
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Parallel.Work_queue.push: queue closed"
    end;
    Queue.push x t.items;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  let take t =
    Mutex.lock t.mutex;
    while Queue.is_empty t.items && not t.closed do
      Condition.wait t.nonempty t.mutex
    done;
    let item =
      if Queue.is_empty t.items then None else Some (Queue.pop t.items)
    in
    Mutex.unlock t.mutex;
    item
end

(* Strictly ascending index order — [Array.init]'s order is unspecified,
   and the inline path must replicate the historical sequential loop
   exactly. *)
let sequential n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n (f 0) in
    for i = 1 to n - 1 do
      results.(i) <- f i
    done;
    results
  end

(* Trials are coarse (tens of ms to seconds), so small chunks win: they
   balance load across heterogeneous trial costs and the queue overhead
   is noise.  Only enormous matrices get larger chunks. *)
let default_chunk ~jobs n = Stdlib.max 1 (n / (jobs * 64))

let map ?(jobs = 1) ?chunk n f =
  if n < 0 then invalid_arg "Parallel.map: n must be >= 0";
  let jobs = if n = 0 then 1 else effective_jobs ~items:n jobs in
  if jobs <= 1 then sequential n f
  else begin
    let chunk =
      match chunk with
      | None -> default_chunk ~jobs n
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Parallel.map: chunk must be >= 1"
    in
    let results = Array.make n None in
    let queue = Work_queue.create () in
    let failure = Atomic.make None in
    let worker () =
      Domain.DLS.set worker_key true;
      let rec loop () =
        match Work_queue.take queue with
        | None -> ()
        | Some (lo, hi) ->
            (* After a failure the queue is only drained, not worked:
               the caller is about to re-raise anyway. *)
            if Atomic.get failure = None then begin
              try
                for i = lo to hi do
                  results.(i) <- Some (f i)
                done
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)))
            end;
            loop ()
      in
      loop ()
    in
    (* Workers first, then work: early workers genuinely wait on the
       condition variable while the producer is still pushing. *)
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    let i = ref 0 in
    while !i < n do
      let hi = Stdlib.min (n - 1) (!i + chunk - 1) in
      Work_queue.push queue (!i, hi);
      i := hi + 1
    done;
    Work_queue.close queue;
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* every chunk ran *))
      results
  end
