test/test_ldr_advanced.ml: Alcotest Array Config Engine Experiment Ldr List Node_id Option Packets Protocol Route_table Seqnum Sim Time
