(** Multi-trial aggregation: the paper repeats every configuration for 10
    random seeds and reports means with 95 % confidence intervals. *)

type point = {
  delivery_ratio : Stats.Welford.t;
  latency_ms : Stats.Welford.t;
  network_load : Stats.Welford.t;
  rreq_load : Stats.Welford.t;
  rrep_init : Stats.Welford.t;
  rrep_recv : Stats.Welford.t;
  mean_dest_seqno : Stats.Welford.t;
}

val empty_point : unit -> point
val add_summary : point -> Metrics.summary -> unit
val merge_points : point -> point -> point

val trials : Scenario.t -> n:int -> point
(** Run the scenario [n] times under seeds [seed, seed+1, ...] and
    aggregate. *)

val pause_sweep :
  Scenario.t -> pauses:Sim.Time.t list -> trials:int -> (Sim.Time.t * point) list
(** One aggregated point per pause time — a figure series. *)
