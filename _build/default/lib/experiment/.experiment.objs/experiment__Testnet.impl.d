lib/experiment/testnet.ml: Array Data_msg Engine Metrics Net Node_id Packets Rng Routing Sim Time
