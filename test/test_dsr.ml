(* Tests for DSR: the path cache and protocol behaviour. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int

(* ---- Route cache -------------------------------------------------------- *)

let cache () =
  let engine = Engine.create () in
  (engine, Dsr.Route_cache.create ~engine ~owner:(n 0) ~capacity:8 ~ttl:(Time.sec 100.))

let path ids = List.map n ids

let cache_find_direct () =
  let _, c = cache () in
  Dsr.Route_cache.add_path c (path [ 0; 1; 2; 3 ]);
  (match Dsr.Route_cache.find c ~dst:(n 3) with
  | Some hops -> checkb "full hops" true (hops = path [ 1; 2; 3 ])
  | None -> Alcotest.fail "expected a route");
  (* Prefixes are usable too. *)
  match Dsr.Route_cache.find c ~dst:(n 2) with
  | Some hops -> checkb "prefix" true (hops = path [ 1; 2 ])
  | None -> Alcotest.fail "prefix usable"

let cache_prefers_shortest () =
  let _, c = cache () in
  Dsr.Route_cache.add_path c (path [ 0; 1; 2; 3; 9 ]);
  Dsr.Route_cache.add_path c (path [ 0; 4; 9 ]);
  match Dsr.Route_cache.find c ~dst:(n 9) with
  | Some hops -> checki "2 hops" 2 (List.length hops)
  | None -> Alcotest.fail "expected a route"

let cache_subpath_extraction () =
  (* Owner mid-path: the suffix from the owner is a valid route. *)
  let _, c = cache () in
  Dsr.Route_cache.add_path c (path [ 7; 8; 0; 5; 6 ]);
  match Dsr.Route_cache.find c ~dst:(n 6) with
  | Some hops -> checkb "suffix" true (hops = path [ 5; 6 ])
  | None -> Alcotest.fail "suffix usable"

let cache_remove_link () =
  let _, c = cache () in
  Dsr.Route_cache.add_path c (path [ 0; 1; 2; 3 ]);
  Dsr.Route_cache.remove_link c (n 1) (n 2);
  checkb "3 unreachable" true (Dsr.Route_cache.find c ~dst:(n 3) = None);
  (* The surviving prefix 0-1 still works. *)
  (match Dsr.Route_cache.find c ~dst:(n 1) with
  | Some hops -> checkb "prefix survives" true (hops = path [ 1 ])
  | None -> Alcotest.fail "prefix should survive");
  (* Symmetric removal also truncates reversed occurrences. *)
  let _, c2 = cache () in
  Dsr.Route_cache.add_path c2 (path [ 0; 2; 1; 5 ]);
  Dsr.Route_cache.remove_link c2 (n 1) (n 2);
  checkb "reverse direction removed" true (Dsr.Route_cache.find c2 ~dst:(n 5) = None)

let cache_expiry () =
  let engine = Engine.create () in
  let c = Dsr.Route_cache.create ~engine ~owner:(n 0) ~capacity:8 ~ttl:(Time.sec 5.) in
  Dsr.Route_cache.add_path c (path [ 0; 1 ]);
  ignore
    (Engine.at engine (Time.sec 10.) (fun () ->
         checkb "expired" true (Dsr.Route_cache.find c ~dst:(n 1) = None)));
  Engine.run engine

let cache_capacity () =
  let _, c = cache () in
  for i = 1 to 20 do
    Dsr.Route_cache.add_path c (path [ 0; i ])
  done;
  checkb "bounded" true (List.length (Dsr.Route_cache.paths c) <= 8);
  (* Most recent survive. *)
  checkb "newest kept" true (Dsr.Route_cache.find c ~dst:(n 20) <> None)

let cache_rejects_loopy_paths () =
  let _, c = cache () in
  Dsr.Route_cache.add_path c (path [ 0; 1; 0; 2 ]);
  checkb "loopy path rejected" true (Dsr.Route_cache.find c ~dst:(n 2) = None)

(* ---- Protocol ------------------------------------------------------------ *)

module TN = Experiment.Testnet

let make_net ?(config = Dsr.default_config) k =
  let engine = Engine.create ~seed:3 () in
  (engine, TN.create ~engine ~factory:(Dsr.factory ~config ()) ~n:k ())

let discovery_on_chain () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net)

let source_routes_follow_header () =
  (* Two parallel paths; all packets of the flow follow the cached one
     even after a shorter link appears (DSR pins routes at the source). *)
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  checki "first delivered" 1 (TN.delivered net);
  TN.connect net 0 3;
  (* New direct link: without a new discovery the old 3-hop route still
     works and is still used. *)
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  checki "still delivered" 2 (TN.delivered net)

let salvage_on_break () =
  let _, net = make_net 5 in
  (* Paths: 0-1-2 and 1-3-2: node 1 can salvage via 3 when 1-2 dies. *)
  TN.connect_chain net [ 0; 1; 2 ];
  TN.connect_chain net [ 1; 3; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  checki "primed" 1 (TN.delivered net);
  (* Break 1-2 FIRST, then teach node 1 the alternate path by its own
     discovery (which now must go via 3). *)
  TN.disconnect net 1 2;
  TN.origin net ~src:1 ~dst:2;
  TN.run net ~for_:(Time.sec 3.);
  checki "node 1 rerouted via 3" 2 (TN.delivered net);
  (* Now 0 still holds the stale route 0-1-2: its packet fails at node 1,
     which salvages it over the freshly cached 1-3-2. *)
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 5.);
  checki "salvaged delivery" 3 (TN.delivered net)

let rerr_removes_stale_route () =
  let _, net = make_net 4 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  checki "primed" 1 (TN.delivered net);
  TN.disconnect net 2 3;
  (* The send fails at node 2, a RERR travels back, and rediscovery
     fails (3 unreachable) -> drop reported. *)
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 30.);
  checki "no new delivery" 1 (TN.delivered net);
  let m = TN.metrics net in
  checkb "some drop recorded" true (Experiment.Metrics.drops_by_reason m <> [])

let reply_from_cache () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.connect net 4 1;
  (* Prime node 1's cache with a route to 3. *)
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  (* 4 asks: node 1 answers from cache (3 never sees a RREQ with ttl 1
     nonpropagating first attempt). *)
  TN.origin net ~src:4 ~dst:3;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 2 (TN.delivered net);
  checkb "cache reply counted" true
    (Experiment.Metrics.event_count (TN.metrics net) "rrep_init" >= 2)

let draft7_variant_disables_cache_replies () =
  let config = { Dsr.default_config with reply_from_cache = false } in
  let _, net = make_net ~config 5 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 3.);
  checki "still works end to end" 1 (TN.delivered net)

let route_shortening_gratuitous_rrep () =
  let _, net = make_net 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  checki "two-hop delivery first" 1 (TN.delivered net);
  (* Node 2 drifts into node 0's range and overhears 0's transmission of
     a packet still source-routed via 1. *)
  TN.connect net 0 2;
  let data =
    Packets.Data_msg.fresh ~flow_id:999 ~seq:0 ~src:(n 0) ~dst:(n 2)
      ~payload_bytes:512 ~origin_time:Time.zero
  in
  let payload =
    Packets.Payload.Dsr
      (Packets.Dsr_msg.Data
         { sr_remaining = [ n 2 ]; full_route = [ n 0; n 1; n 2 ]; data;
           salvage = 0 })
  in
  (TN.agent net 2).Routing.Agent.overheard payload ~from:(n 0)
    ~dst:(Net.Frame.Unicast (n 1));
  TN.run net ~for_:(Time.ms 100.);
  (* The gratuitous RREP reached 0: the next packet goes direct. *)
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 1.);
  checki "delivered" 2 (TN.delivered net);
  checkb "second packet took the 1-hop shortcut" true
    (abs_float (Experiment.Metrics.mean_hops (TN.metrics net) -. 1.5) < 1e-9)

let shortening_disabled_keeps_route () =
  let config = { Dsr.default_config with route_shortening = false } in
  let _, net = make_net ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  TN.connect net 0 2;
  let data =
    Packets.Data_msg.fresh ~flow_id:999 ~seq:0 ~src:(n 0) ~dst:(n 2)
      ~payload_bytes:512 ~origin_time:Time.zero
  in
  let payload =
    Packets.Payload.Dsr
      (Packets.Dsr_msg.Data
         { sr_remaining = [ n 2 ]; full_route = [ n 0; n 1; n 2 ]; data;
           salvage = 0 })
  in
  (TN.agent net 2).Routing.Agent.overheard payload ~from:(n 0)
    ~dst:(Net.Frame.Unicast (n 1));
  TN.run net ~for_:(Time.ms 100.);
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 1.);
  checkb "still two hops each" true
    (abs_float (Experiment.Metrics.mean_hops (TN.metrics net) -. 2.) < 1e-9)

let no_loops_in_source_routes_prop =
  (* Composed cache replies must never produce a route visiting a node
     twice: sample many random topologies and inspect delivered paths via
     delivery success (a loopy source route would exhaust and drop). *)
  QCheck.Test.make ~name:"DSR delivers on random connected chains" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let engine = Engine.create ~seed () in
      let k = 6 in
      let net = TN.create ~engine ~factory:(Dsr.factory ()) ~n:k () in
      TN.connect_chain net (List.init k Fun.id);
      let rng = Rng.create seed in
      (* A few random chords. *)
      for _ = 1 to 3 do
        let a = Rng.int rng k and b = Rng.int rng k in
        if a <> b then TN.connect net a b
      done;
      TN.origin net ~src:0 ~dst:(k - 1);
      TN.run net ~for_:(Time.sec 5.);
      TN.delivered net = 1)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dsr"
    [
      ( "route_cache",
        [
          Alcotest.test_case "find direct" `Quick cache_find_direct;
          Alcotest.test_case "prefers shortest" `Quick cache_prefers_shortest;
          Alcotest.test_case "subpath extraction" `Quick cache_subpath_extraction;
          Alcotest.test_case "remove link" `Quick cache_remove_link;
          Alcotest.test_case "expiry" `Quick cache_expiry;
          Alcotest.test_case "capacity" `Quick cache_capacity;
          Alcotest.test_case "rejects loopy paths" `Quick cache_rejects_loopy_paths;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "discovery on chain" `Quick discovery_on_chain;
          Alcotest.test_case "source routes pinned" `Quick source_routes_follow_header;
          Alcotest.test_case "salvage on break" `Quick salvage_on_break;
          Alcotest.test_case "rerr removes stale" `Quick rerr_removes_stale_route;
          Alcotest.test_case "reply from cache" `Quick reply_from_cache;
          Alcotest.test_case "draft7 variant" `Quick draft7_variant_disables_cache_replies;
          Alcotest.test_case "route shortening" `Quick route_shortening_gratuitous_rrep;
          Alcotest.test_case "shortening disabled" `Quick shortening_disabled_keeps_route;
          qt no_loops_in_source_routes_prop;
        ] );
    ]
