(** Node mobility processes.

    A mobility process answers "where is this node at time [t]?".  Query
    times should be non-decreasing for each process — the natural access
    pattern of a discrete-event simulation — which lets every model run in
    O(1) amortised time per query.

    {b Re-query tolerance.}  Strict monotonicity is relaxed for the two
    callers that legitimately look slightly backwards: PDES border
    mirroring (a mirrored frame is propagated at the window edge while the
    peer region has already advanced up to one lookahead) and churn rejoin
    (a node re-attaching re-reads its position at the attach boundary).
    Concretely, [position] accepts any query time [t] with
    [t + max_backtrack >= depart] of the {e current} leg, where
    [max_backtrack] is 1 ms — far above any conservative MAC lookahead
    (difs + slot, ~70 us).  Same-leg re-queries ([t >= depart]) are
    answered exactly; queries in the [max_backtrack] slack before the leg
    clamp to the leg's start point, an error bounded by
    [speed x max_backtrack] (millimetres at vehicular speeds).  Queries
    older than that still raise [Invalid_argument].

    Models:
    - {!static}: the node never moves.
    - {!waypoint}: the random waypoint model used by the paper's scenarios
      (pause, pick a uniform destination, move at a uniform-random speed).
    - {!random_walk}: direction/epoch random walk with boundary
      reflection; used by tests that want denser topology churn.
    - {!manhattan}: city-block mobility on a street lattice — straight
      through intersections with probability 1/2, left/right 1/4 each.
    - {!rpgm_member}: reference-point group mobility — members follow a
      shared waypoint group centre at a fixed per-member offset.
    - {!scripted}: an explicit piecewise-linear trajectory (tests). *)

type t

val position : t -> Sim.Time.t -> Geom.Vec2.t
(** Position at [t].  Raises [Invalid_argument] if [t] precedes the
    process's current leg by more than the backtrack tolerance documented
    above. *)

val model_name : t -> string

val static : Geom.Vec2.t -> t

val waypoint :
  terrain:Geom.Terrain.t ->
  rng:Sim.Rng.t ->
  speed_min:float ->
  speed_max:float ->
  pause:Sim.Time.t ->
  start:Geom.Vec2.t ->
  t
(** Random waypoint: starting from [start], the node pauses for [pause],
    then moves to a uniform-random point of [terrain] at a speed drawn
    uniformly from [\[speed_min, speed_max\]], and repeats.  Speeds must
    satisfy [0 < speed_min <= speed_max]. *)

val random_walk :
  terrain:Geom.Terrain.t ->
  rng:Sim.Rng.t ->
  speed:float ->
  epoch:Sim.Time.t ->
  start:Geom.Vec2.t ->
  t
(** Fixed-speed walk choosing a fresh uniform direction every [epoch],
    reflecting off the terrain boundary. *)

val manhattan :
  terrain:Geom.Terrain.t ->
  rng:Sim.Rng.t ->
  spacing:float ->
  speed_min:float ->
  speed_max:float ->
  pause:Sim.Time.t ->
  start:Geom.Vec2.t ->
  t
(** Manhattan-grid mobility: the node moves along a street lattice with
    [spacing] metres between streets.  [start] snaps to the nearest
    intersection; each leg covers one block at a speed drawn uniformly
    from [\[speed_min, speed_max\]]; at every intersection the node keeps
    straight with probability 1/2 or turns left/right with probability 1/4
    each (moves that would leave the terrain rotate until one fits).  A
    positive [pause] is spent at each intersection. *)

val scripted : (Sim.Time.t * Geom.Vec2.t) list -> t
(** Piecewise-linear trajectory through the given (time, position)
    waypoints; constant before the first and after the last.  The list
    must be non-empty and strictly increasing in time.  Used by tests to
    force exact topology changes. *)

(** {2 Group mobility (RPGM)} *)

type group
(** The virtual reference point of an RPGM group: a random-waypoint
    process whose legs are memoized so members can follow it at different
    leg indices (PDES shards refresh nodes at different times) without
    non-monotone queries on shared state. *)

val rpgm_group :
  terrain:Geom.Terrain.t ->
  rng:Sim.Rng.t ->
  speed_min:float ->
  speed_max:float ->
  pause:Sim.Time.t ->
  start:Geom.Vec2.t ->
  group
(** A group centre doing random waypoint over [terrain]. *)

val rpgm_member : group -> ox:float -> oy:float -> t
(** A member tracking the group centre at offset [(ox, oy)], clamped to
    the group's terrain.  Members draw no randomness of their own, so any
    subset of members replays identically. *)

(** {2 Struct-of-arrays position store}

    Flat preallocated per-node hot state: cached positions in unboxed
    float arrays and the current leg window in parallel scalar arrays,
    indexed by node id.  The common refresh — interpolating inside the
    current leg — runs on scalars with zero allocation; values are
    bit-identical to calling {!position} on the underlying process. *)

module Pos_store : sig
  type process := t
  type t

  val of_array : process array -> at:Sim.Time.t -> t
  (** Wrap the processes, caching every node's position at [at]. *)

  val length : t -> int

  val refresh : t -> int -> Sim.Time.t -> unit
  (** [refresh s i t] updates node [i]'s cached position to time [t]
      (allocation-free unless the query advances the node onto a new
      leg).  Repeated refreshes at the same time are free. *)

  val x : t -> int -> float
  (** Cached x as of the last {!refresh}. *)

  val y : t -> int -> float

  val position : t -> int -> Sim.Time.t -> Geom.Vec2.t
  (** [refresh] then box the result — for callers that want a [Vec2]. *)

  val proc : t -> int -> process
  (** The underlying mobility process of node [i]. *)
end
