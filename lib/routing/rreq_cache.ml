open Sim
open Packets

type 'a entry = { mutable value : 'a; mutable expires : Time.t }

(* Table keys pack (origin, rreq_id) into one immediate int so the
   table hashes an int instead of a boxed pair.  The packing gives the
   flood counter the full 32 bits it occupies on the wire and the node
   id the 30 bits above them, disjoint — injective over the whole wire
   domain, with a guard on the (physically implausible) node ids that
   would overflow a 63-bit immediate. *)
type 'a t = {
  engine : Engine.t;
  ttl : Time.t;
  table : (int, 'a entry) Hashtbl.t;
  mutable ops_since_purge : int;
}

let key ~origin ~rreq_id =
  let o = Node_id.to_int origin in
  if o lsr 30 <> 0 then
    invalid_arg (Printf.sprintf "Rreq_cache.key: node id %d >= 2^30" o);
  (o lsl 32) lor (rreq_id land 0xffff_ffff)

let create ~engine ~ttl =
  { engine; ttl; table = Hashtbl.create 64; ops_since_purge = 0 }

let now t = Engine.now t.engine

let purge t =
  let cutoff = now t in
  let stale =
    Hashtbl.fold
      (fun k e acc -> if Time.(e.expires <= cutoff) then k :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale

(* Amortised cleanup: a full sweep every so many operations keeps the
   table from accumulating an entire run's worth of dead floods. *)
let tick t =
  t.ops_since_purge <- t.ops_since_purge + 1;
  if t.ops_since_purge >= 256 then begin
    t.ops_since_purge <- 0;
    purge t
  end

let live t e = Time.(e.expires > now t)

let find t ~origin ~rreq_id =
  tick t;
  match Hashtbl.find_opt t.table (key ~origin ~rreq_id) with
  | Some e when live t e -> Some e.value
  | Some _ ->
      Hashtbl.remove t.table (key ~origin ~rreq_id);
      None
  | None -> None

let mem t ~origin ~rreq_id = find t ~origin ~rreq_id <> None

let add t ~origin ~rreq_id value =
  tick t;
  let expires = Time.add (now t) t.ttl in
  match Hashtbl.find_opt t.table (key ~origin ~rreq_id) with
  | Some e ->
      e.value <- value;
      e.expires <- expires
  | None -> Hashtbl.replace t.table (key ~origin ~rreq_id) { value; expires }

let update t ~origin ~rreq_id f =
  tick t;
  let k = key ~origin ~rreq_id in
  match Hashtbl.find_opt t.table k with
  | Some e when live t e -> e.value <- f e.value
  | Some _ -> Hashtbl.remove t.table k
  | None -> ()

let clear t =
  Hashtbl.reset t.table;
  t.ops_since_purge <- 0

let length t =
  purge t;
  Hashtbl.length t.table
