(* Integration tests: full-stack simulations through the Runner, metric
   accounting, and trial sweeps. *)

open Sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

open Experiment

let small_scenario ?(protocol = Scenario.ldr) ?(seed = 7) ?(audit = false)
    ?(speed_max = 0.) ?(duration = 20.) ?(flows = 2) ?(nodes = 10) () =
  {
    Scenario.label = "test";
    num_nodes = nodes;
    terrain = Geom.Terrain.create ~width:500. ~height:400.;
    placement = Scenario.Uniform;
    speed_min = (if speed_max > 0. then 1. else 0.);
    speed_max;
    pause = Time.sec 0.;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = flows;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Time.sec duration;
        startup_window = Time.sec 2.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = audit;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

let static_delivery ?(threshold = 0.95) protocol () =
  (* Dense static network: essentially everything must arrive.  OLSR gets
     a slightly lower bar — packets sent before the first HELLO/TC rounds
     converge are dropped by design. *)
  let outcome = Runner.run (small_scenario ~protocol ~duration:30. ()) in
  let m = outcome.metrics in
  checkb "originated some" true (Metrics.originated m > 50);
  checkb
    (Printf.sprintf "delivery >= %.2f (got %.3f)" threshold
       (Metrics.delivery_ratio m))
    true
    (Metrics.delivery_ratio m >= threshold)

let mobile_delivery protocol () =
  let outcome =
    Runner.run (small_scenario ~protocol ~speed_max:10. ~duration:40. ())
  in
  let m = outcome.metrics in
  checkb
    (Printf.sprintf "mobile delivery >= 0.7 (got %.3f)" (Metrics.delivery_ratio m))
    true
    (Metrics.delivery_ratio m >= 0.7)

let determinism () =
  let run () =
    let o = Runner.run (small_scenario ~speed_max:10. ()) in
    ( Metrics.originated o.metrics,
      Metrics.delivered o.metrics,
      o.events_processed,
      o.transmissions )
  in
  let a = run () and b = run () in
  checkb "bit-identical reruns" true (a = b)

let seeds_differ () =
  let run seed = (Runner.run (small_scenario ~speed_max:10. ~seed ())).events_processed in
  checkb "different seeds, different runs" true (run 1 <> run 2)

let audit_ldr_loop_free () =
  let outcome =
    Runner.run (small_scenario ~audit:true ~speed_max:15. ~duration:30. ~flows:4 ())
  in
  checki "no loops" 0 (Metrics.loop_violations outcome.metrics)

let latency_positive () =
  let o = Runner.run (small_scenario ()) in
  checkb "latency > 0" true (Metrics.mean_latency_ms o.metrics > 0.);
  (* One-to-few-hop static network at 2 Mbps: latencies are milliseconds,
     not seconds. *)
  checkb "latency < 1s" true (Metrics.mean_latency_ms o.metrics < 1000.)

let control_accounting () =
  let o = Runner.run (small_scenario ()) in
  let m = o.metrics in
  let by_kind = Metrics.control_by_kind m in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 by_kind in
  checki "kinds sum to total" (Metrics.control_transmissions m) total;
  checkb "rreqs happened" true (List.mem_assoc "RREQ" by_kind);
  checkb "network load finite" true (Metrics.network_load m >= 0.)

let olsr_control_kinds () =
  let o = Runner.run (small_scenario ~protocol:Scenario.olsr ~duration:30. ()) in
  let by_kind = Metrics.control_by_kind o.metrics in
  checkb "hellos counted" true (List.mem_assoc "HELLO" by_kind);
  checkb "no rreqs in olsr" false (List.mem_assoc "RREQ" by_kind)

let summary_consistent () =
  let o = Runner.run (small_scenario ()) in
  let s = o.summary in
  let m = o.metrics in
  checkb "ratio matches" true (s.Metrics.s_delivery_ratio = Metrics.delivery_ratio m);
  checkb "latency matches" true (s.Metrics.s_latency_ms = Metrics.mean_latency_ms m)

let dest_seqno_ldr_vs_aodv () =
  (* The Fig-7 relation must hold even on a small mobile run: AODV's mean
     destination number exceeds LDR's. *)
  let run protocol =
    let o =
      Runner.run
        (small_scenario ~protocol ~speed_max:15. ~duration:40. ~flows:4 ())
    in
    Metrics.mean_dest_seqno o.metrics
  in
  let ldr = run Scenario.ldr and aodv = run Scenario.aodv in
  checkb
    (Printf.sprintf "aodv (%.1f) > ldr (%.1f)" aodv ldr)
    true (aodv > ldr)

let injection_api () =
  let sim = Runner.build (small_scenario ~flows:2 ()) in
  (* Inject an extra packet mid-run. *)
  ignore
    (Engine.at sim.engine (Time.sec 5.) (fun () -> sim.inject ~src:0 ~dst:1));
  Engine.run ~until:(Time.sec 20.) sim.engine;
  sim.finalize ();
  checkb "injected packet counted" true (Metrics.originated sim.sim_metrics > 0)

let sweep_trials () =
  let sc = small_scenario ~duration:10. () in
  let p = Sweep.trials sc ~n:3 in
  checki "3 trials" 3 (Stats.Welford.count p.Sweep.delivery_ratio);
  checkb "mean sane" true (Stats.Welford.mean p.Sweep.delivery_ratio > 0.5)

let sweep_pause_series () =
  let sc = small_scenario ~speed_max:10. ~duration:10. () in
  let series = Sweep.pause_sweep sc ~pauses:[ Time.sec 0.; Time.sec 5. ] ~trials:2 in
  checki "two points" 2 (List.length series);
  List.iter
    (fun (_, p) -> checki "two trials each" 2 (Stats.Welford.count p.Sweep.delivery_ratio))
    series

(* merge_points against a single-pass baseline: feeding every summary
   into one point must equal splitting them across two points and
   merging — mean, variance, and count, per field. *)
let sweep_merge_points () =
  let sc = small_scenario ~duration:10. () in
  let summaries =
    List.map
      (fun seed -> (Runner.run { sc with Scenario.seed }).Runner.summary)
      [ 1; 2; 3; 4; 5 ]
  in
  let single = Sweep.empty_point () in
  List.iter (Sweep.add_summary single) summaries;
  let a = Sweep.empty_point () and b = Sweep.empty_point () in
  List.iteri
    (fun i s -> Sweep.add_summary (if i < 2 then a else b) s)
    summaries;
  let merged = Sweep.merge_points a b in
  let fields =
    [
      ("delivery", fun (p : Sweep.point) -> p.Sweep.delivery_ratio);
      ("latency", fun p -> p.Sweep.latency_ms);
      ("load", fun p -> p.Sweep.network_load);
      ("rreq", fun p -> p.Sweep.rreq_load);
      ("rrep_init", fun p -> p.Sweep.rrep_init);
      ("rrep_recv", fun p -> p.Sweep.rrep_recv);
      ("seqno", fun p -> p.Sweep.mean_dest_seqno);
    ]
  in
  List.iter
    (fun (name, f) ->
      let w1 = f single and w2 = f merged in
      checki (name ^ " count") (Stats.Welford.count w1)
        (Stats.Welford.count w2);
      Alcotest.check (Alcotest.float 1e-9) (name ^ " mean")
        (Stats.Welford.mean w1) (Stats.Welford.mean w2);
      Alcotest.check (Alcotest.float 1e-9) (name ^ " variance")
        (Stats.Welford.variance w1) (Stats.Welford.variance w2))
    fields

let scenario_builders () =
  let sc = Scenario.paper_50 Scenario.ldr in
  checki "50 nodes" 50 sc.Scenario.num_nodes;
  let sc100 = Scenario.paper_100 Scenario.aodv in
  checki "100 nodes" 100 sc100.Scenario.num_nodes;
  let sc' = Scenario.with_flows 30 sc in
  checki "flows set" 30 sc'.Scenario.traffic.Traffic.num_flows;
  let sc'' = Scenario.with_pause (Time.sec 60.) sc in
  checkb "pause set" true (Time.equal sc''.Scenario.pause (Time.sec 60.));
  Alcotest.check Alcotest.string "ldr name" "LDR" (Scenario.protocol_name Scenario.ldr);
  Alcotest.check Alcotest.string "dsr7" "DSR" (Scenario.protocol_name Scenario.dsr_draft7)

let metrics_dedup () =
  let m = Metrics.create () in
  let msg =
    Packets.Data_msg.fresh ~flow_id:1 ~seq:1 ~src:(Packets.Node_id.of_int 0)
      ~dst:(Packets.Node_id.of_int 1) ~payload_bytes:10 ~origin_time:Time.zero
  in
  Metrics.data_originated m msg;
  let travelled =
    Packets.Data_msg.hop (Packets.Data_msg.hop (Packets.Data_msg.hop msg))
  in
  Metrics.data_delivered m ~now:(Time.ms 5.) travelled;
  Metrics.data_delivered m ~now:(Time.ms 9.) travelled;
  checki "delivered once" 1 (Metrics.delivered m);
  checki "dup counted" 1 (Metrics.duplicates m);
  checkb "latency from first copy" true
    (abs_float (Metrics.mean_latency_ms m -. 5.) < 1e-9);
  checkb "median matches" true
    (abs_float (Metrics.median_latency_ms m -. 5.) < 1e-9);
  checkb "hops recorded" true (abs_float (Metrics.mean_hops m -. 3.) < 1e-9)

let placement_grid () =
  let sc =
    { (small_scenario ~nodes:9 ()) with
      Scenario.placement = Scenario.Grid;
      terrain = Geom.Terrain.create ~width:300. ~height:300. }
  in
  let ps = Scenario.positions sc (Rng.create 1) in
  checki "nine positions" 9 (Array.length ps);
  Array.iter
    (fun p -> checkb "inside terrain" true (Geom.Terrain.contains sc.Scenario.terrain p))
    ps;
  (* Deterministic: independent of the rng. *)
  let ps' = Scenario.positions sc (Rng.create 99) in
  checkb "grid ignores rng" true (ps = ps');
  (* All positions distinct. *)
  let distinct = Array.to_list ps |> List.sort_uniq compare |> List.length in
  checki "distinct" 9 distinct

let placement_fixed () =
  let pts = [ Geom.Vec2.v 1. 1.; Geom.Vec2.v 2. 2. ] in
  let sc =
    { (small_scenario ~nodes:2 ()) with Scenario.placement = Scenario.Fixed pts }
  in
  let ps = Scenario.positions sc (Rng.create 1) in
  checkb "exact" true (Array.to_list ps = pts);
  let bad = { sc with Scenario.num_nodes = 3 } in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Scenario.positions: Fixed placement length mismatch")
    (fun () -> ignore (Scenario.positions bad (Rng.create 1)))

let trace_emits_events () =
  let lines = ref 0 in
  let reporter =
    {
      Logs.report =
        (fun _src _level ~over k msgf ->
          incr lines;
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.ikfprintf
                (fun _ ->
                  over ();
                  k ())
                Format.err_formatter fmt));
    }
  in
  Logs.set_reporter reporter;
  Logs.Src.set_level Trace.src (Some Logs.Debug);
  ignore (Runner.run (small_scenario ~duration:5. ()));
  Logs.Src.set_level Trace.src None;
  Logs.set_reporter Logs.nop_reporter;
  checkb "trace produced events" true (!lines > 10);
  (* And with the source silenced, nothing is reported. *)
  let before = !lines in
  ignore (Runner.run (small_scenario ~duration:5. ()));
  checki "silent when disabled" before !lines

let () =
  Alcotest.run "experiment"
    [
      ( "runner",
        [
          Alcotest.test_case "ldr static delivery" `Slow (static_delivery Scenario.ldr);
          Alcotest.test_case "aodv static delivery" `Slow (static_delivery Scenario.aodv);
          Alcotest.test_case "dsr static delivery" `Slow (static_delivery Scenario.dsr);
          Alcotest.test_case "olsr static delivery" `Slow
            (static_delivery ~threshold:0.9 Scenario.olsr);
          Alcotest.test_case "ldr mobile delivery" `Slow (mobile_delivery Scenario.ldr);
          Alcotest.test_case "aodv mobile delivery" `Slow (mobile_delivery Scenario.aodv);
          Alcotest.test_case "determinism" `Slow determinism;
          Alcotest.test_case "seed sensitivity" `Slow seeds_differ;
          Alcotest.test_case "ldr loop-free full stack" `Slow audit_ldr_loop_free;
          Alcotest.test_case "latency sane" `Quick latency_positive;
          Alcotest.test_case "control accounting" `Quick control_accounting;
          Alcotest.test_case "olsr control kinds" `Slow olsr_control_kinds;
          Alcotest.test_case "summary consistent" `Quick summary_consistent;
          Alcotest.test_case "fig7 relation" `Slow dest_seqno_ldr_vs_aodv;
          Alcotest.test_case "injection api" `Quick injection_api;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "trials aggregate" `Slow sweep_trials;
          Alcotest.test_case "merge points" `Slow sweep_merge_points;
          Alcotest.test_case "pause series" `Slow sweep_pause_series;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "builders" `Quick scenario_builders;
          Alcotest.test_case "grid placement" `Quick placement_grid;
          Alcotest.test_case "fixed placement" `Quick placement_fixed;
        ] );
      ("trace", [ Alcotest.test_case "emits events" `Quick trace_emits_events ]);
      ("metrics", [ Alcotest.test_case "dedup" `Quick metrics_dedup ]);
    ]
