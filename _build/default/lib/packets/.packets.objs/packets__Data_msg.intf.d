lib/packets/data_msg.mli: Format Node_id Sim
