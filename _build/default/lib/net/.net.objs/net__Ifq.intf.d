lib/net/ifq.mli:
