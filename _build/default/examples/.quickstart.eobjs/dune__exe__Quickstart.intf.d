examples/quickstart.mli:
