open Sim
open Packets

type path = { mutable nodes : Node_id.t list; expires : Time.t }

type t = {
  engine : Engine.t;
  owner : Node_id.t;
  capacity : int;
  ttl : Time.t;
  mutable store : path list;  (** newest first *)
}

let create ~engine ~owner ~capacity ~ttl =
  if capacity <= 0 then invalid_arg "Route_cache.create: capacity";
  { engine; owner; capacity; ttl; store = [] }

let now t = Engine.now t.engine

let live t p = Time.(p.expires > now t) && List.length p.nodes >= 2

let rec dedup_ok = function
  | [] -> true
  | x :: rest -> (not (List.exists (Node_id.equal x) rest)) && dedup_ok rest

let add_path t nodes =
  if List.length nodes >= 2 && dedup_ok nodes then begin
    let fresh = { nodes; expires = Time.add (now t) t.ttl } in
    let keep = List.filter (fun p -> live t p && p.nodes <> nodes) t.store in
    let keep =
      if List.length keep >= t.capacity then
        (* Evict the oldest (stored last). *)
        List.filteri (fun i _ -> i < t.capacity - 1) keep
      else keep
    in
    t.store <- fresh :: keep
  end

(* Extract the sub-route owner..dst from a path, if both occur in order. *)
let subroute t nodes dst =
  let rec from_owner = function
    | [] -> None
    | x :: rest when Node_id.equal x t.owner -> to_dst rest []
    | _ :: rest -> from_owner rest
  and to_dst remaining acc =
    match remaining with
    | [] -> None
    | x :: rest ->
        if Node_id.equal x dst then Some (List.rev (x :: acc))
        else to_dst rest (x :: acc)
  in
  from_owner nodes

let find t ~dst =
  let best = ref None in
  List.iter
    (fun p ->
      if live t p then
        match subroute t p.nodes dst with
        | None -> ()
        | Some hops -> (
            match !best with
            | Some b when List.length b <= List.length hops -> ()
            | Some _ | None -> best := Some hops))
    t.store;
  !best

let truncate_at_link a b nodes =
  let rec go = function
    | x :: (y :: _ as rest) ->
        if
          (Node_id.equal x a && Node_id.equal y b)
          || (Node_id.equal x b && Node_id.equal y a)
        then [ x ]
        else x :: go rest
    | tail -> tail
  in
  go nodes

let remove_link t a b =
  List.iter
    (fun p -> p.nodes <- truncate_at_link a b p.nodes)
    t.store;
  t.store <- List.filter (fun p -> List.length p.nodes >= 2) t.store

let paths t = List.filter_map (fun p -> if live t p then Some p.nodes else None) t.store

let clear t = t.store <- []
