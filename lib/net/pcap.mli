(** Pcap export and offline reader for channel transmissions.

    Files use the nanosecond-resolution pcap magic and linktype
    DLT_USER0 (147).  Each packet is a 20-byte pseudo-header —
    [time_ns u64] [src u32] [dst u32, 0xFFFFFFFF = broadcast]
    [family u8] [3 zero octets] — followed by the frame exactly as
    transmitted ({!Frame.encode}), so captures open in Wireshark and
    every octet that occupied airtime is on disk. *)

val magic : int
(** 0xA1B23C4D — pcap with nanosecond timestamps, written big-endian. *)

val linktype : int
val pseudo_header_bytes : int

(** {1 Writing} *)

type sink

val open_sink : string -> sink
(** Creates/truncates the file and writes the global header. *)

val write : sink -> time:Sim.Time.t -> Frame.t -> unit
val close : sink -> unit

(** {1 Reading} *)

type record = {
  r_time : Sim.Time.t;
  r_src : Packets.Node_id.t;
  r_dst : Frame.dst;
  r_family : int;
  r_len : int;  (** on-air frame bytes (excluding the pseudo-header) *)
  r_frame : (Frame.t, Wire.error) result;
      (** decoded frame; [Error _] on corrupt captures *)
}

val is_pcap_file : string -> bool
(** True when the file starts with {!magic} (our byte order). *)

val load : string -> (record list, string) result
(** Parses a capture written by {!write}; [Error _] describes the first
    structural problem (bad magic, truncated record, pseudo-header
    mismatch).  Frame-level decode failures are per-record, in
    [r_frame]. *)

val class_counts : record list -> (string * (int * int)) list
(** Per traffic class (frame [class_name], or "UNDECODABLE"):
    [(count, total on-air bytes)], sorted by class name — directly
    comparable with the JSONL trace's transmission counts. *)
