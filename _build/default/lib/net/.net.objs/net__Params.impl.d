lib/net/params.ml: Sim Time
