(** Rectangular simulation terrain, origin at (0, 0). *)

type t = { width : float; height : float }

val create : width:float -> height:float -> t
(** Raises [Invalid_argument] on non-positive dimensions. *)

val contains : t -> Vec2.t -> bool

val clamp : t -> Vec2.t -> Vec2.t
(** Nearest point inside the terrain. *)

val random_point : t -> Sim.Rng.t -> Vec2.t
(** Uniform point in the rectangle. *)

val diagonal : t -> float
val area : t -> float
val pp : Format.formatter -> t -> unit
