type rreq = {
  dst : Node_id.t;
  dst_sn : Seqnum.t option;
  rreq_id : int;
  origin : Node_id.t;
  origin_sn : Seqnum.t;
  fd : int;
  answer_dist : int;
  dist : int;
  ttl : int;
  reset : bool;
  no_reverse : bool;
  unicast_probe : bool;
}

type rrep = {
  dst : Node_id.t;
  dst_sn : Seqnum.t;
  origin : Node_id.t;
  rreq_id : int;
  dist : int;
  lifetime : Sim.Time.t;
  rrep_no_reverse : bool;
}

type rerr = { unreachable : (Node_id.t * Seqnum.t option) list }

type t = Rreq of rreq | Rrep of rrep | Rerr of rerr | Rreq_agg of rreq list

let kind = function
  | Rreq _ | Rreq_agg _ -> "RREQ"
  | Rrep _ -> "RREP"
  | Rerr _ -> "RERR"

let rec pp fmt = function
  | Rreq_agg rs ->
      Format.fprintf fmt "ldr-rreq-agg[%d dests:@ %a]" (List.length rs)
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        (List.map (fun r -> Rreq r) rs)
  | Rreq r ->
      Format.fprintf fmt
        "ldr-rreq[dst=%a id=(%a,%d) fd=%d ad=%d dist=%d ttl=%d%s%s%s]"
        Node_id.pp r.dst Node_id.pp r.origin r.rreq_id r.fd r.answer_dist
        r.dist r.ttl
        (if r.reset then " T" else "")
        (if r.no_reverse then " N" else "")
        (if r.unicast_probe then " D" else "")
  | Rrep r ->
      Format.fprintf fmt "ldr-rrep[dst=%a sn=%a dist=%d to=(%a,%d)]"
        Node_id.pp r.dst Seqnum.pp r.dst_sn r.dist Node_id.pp r.origin
        r.rreq_id
  | Rerr { unreachable } ->
      Format.fprintf fmt "ldr-rerr[%d dests]" (List.length unreachable)
