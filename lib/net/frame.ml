open Packets

type dst = Unicast of Node_id.t | Broadcast

type body = Payload of Payload.t | Ack

type t = { src : Node_id.t; dst : dst; body : body }

let addressed_to t id =
  match t.dst with Broadcast -> true | Unicast d -> Node_id.equal d id

let is_ack t = match t.body with Ack -> true | Payload _ -> false

let class_name t =
  match t.body with Ack -> "ACK" | Payload p -> Payload.class_name p

let family t =
  match t.body with
  | Ack -> Wire.Payload.family_ack
  | Payload p -> Wire.Payload.family p

let encoded_length t =
  match t.body with
  | Ack -> Wire.Mac.ack_bytes
  | Payload p -> Wire.Mac.data_overhead + Wire.encoded_length p

let dst_equal a b =
  match (a, b) with
  | Broadcast, Broadcast -> true
  | Unicast x, Unicast y -> Node_id.equal x y
  | Broadcast, Unicast _ | Unicast _, Broadcast -> false

let dst_addr = function
  | Broadcast -> None
  | Unicast d -> Some (Node_id.to_int d)

(* Frame-control octet pairs: 802.11 control/ACK, and data with both
   ToDS and FromDS set (the 4-address format behind the 30-byte header
   counted by [Params.default.mac_overhead_bytes]). *)
let fc_ack = 0xd4
let fc_data0 = 0x08
let fc_data1 = 0x03

let write_unprotected w t =
  match t.body with
  | Ack ->
      Wire.Writer.u8 w fc_ack;
      Wire.Writer.u8 w 0;
      Wire.Writer.u16 w 0 (* duration *);
      Wire.Mac.write_addr w (dst_addr t.dst)
  | Payload p ->
      Wire.Writer.u8 w fc_data0;
      Wire.Writer.u8 w fc_data1;
      Wire.Writer.u16 w 0 (* duration *);
      Wire.Mac.write_addr w (dst_addr t.dst) (* A1: receiver *);
      Wire.Mac.write_addr w (Some (Node_id.to_int t.src)) (* A2: transmitter *);
      Wire.Mac.write_addr w (dst_addr t.dst) (* A3: destination *);
      Wire.Writer.u16 w 0 (* sequence control *);
      Wire.Mac.write_addr w (Some (Node_id.to_int t.src)) (* A4: source *);
      Wire.Payload.write w p

let encode t =
  let w = Wire.Writer.create ~capacity:(encoded_length t) () in
  write_unprotected w t;
  let body = Wire.Writer.contents w in
  Wire.Writer.u32 w (Wire.Crc32.bytes body ~pos:0 ~len:(Bytes.length body));
  Wire.Writer.contents w

let ( let* ) = Result.bind

let check (r : Wire.Reader.t) cond reason =
  if cond then Ok () else Wire.Reader.fail r reason

let read_dst r =
  let* a = Wire.Mac.read_addr r in
  match a with None -> Ok Broadcast | Some d -> Ok (Unicast (Node_id.of_int d))

let decode ~family:fam ~ack_src b =
  let len = Bytes.length b in
  let r0 = Wire.Reader.of_bytes b in
  let* () = check r0 (len >= Wire.Mac.ack_bytes) "frame: shorter than an ACK" in
  let fcs = Wire.Crc32.bytes b ~pos:0 ~len:(len - Wire.Mac.fcs_bytes) in
  let tail = Wire.Reader.of_bytes ~pos:(len - Wire.Mac.fcs_bytes) b in
  let* stored = Wire.Reader.u32 tail in
  let* () = check tail (stored = fcs) "frame: FCS mismatch" in
  let r = Wire.Reader.of_bytes ~len:(len - Wire.Mac.fcs_bytes) b in
  let* fc0 = Wire.Reader.u8 r in
  if fc0 = fc_ack then
    let* () =
      check r (fam = Wire.Payload.family_ack) "frame: ACK under payload family"
    in
    let* () = check r (len = Wire.Mac.ack_bytes) "frame: oversized ACK" in
    let* fc1 = Wire.Reader.u8 r in
    let* () = check r (fc1 = 0) "frame: unsupported frame control" in
    let* dur = Wire.Reader.u16 r in
    let* () = check r (dur = 0) "frame: nonzero duration" in
    let* dst = read_dst r in
    Ok { src = ack_src; dst; body = Ack }
  else if fc0 = fc_data0 then
    let* fc1 = Wire.Reader.u8 r in
    let* () = check r (fc1 = fc_data1) "frame: unsupported frame control" in
    let* () =
      check r (fam <> Wire.Payload.family_ack) "frame: data under ACK family"
    in
    let* dur = Wire.Reader.u16 r in
    let* () = check r (dur = 0) "frame: nonzero duration" in
    let* dst = read_dst r in
    let* src_a = Wire.Mac.read_addr r in
    let* src =
      match src_a with
      | Some s -> Ok (Node_id.of_int s)
      | None -> Wire.Reader.fail r "frame: broadcast transmitter"
    in
    let* a3 = read_dst r in
    let* () = check r (dst_equal a3 dst) "frame: A3 differs from receiver" in
    let* seq_ctl = Wire.Reader.u16 r in
    let* () = check r (seq_ctl = 0) "frame: nonzero sequence control" in
    let* a4 = Wire.Mac.read_addr r in
    let* () =
      check r
        (a4 = Some (Node_id.to_int src))
        "frame: A4 differs from transmitter"
    in
    let* p = Wire.Payload.read ~family:fam r in
    let* () = Wire.Reader.expect_end r in
    Ok { src; dst; body = Payload p }
  else Wire.Reader.fail r "frame: unknown frame control"

let pp_dst fmt = function
  | Broadcast -> Format.pp_print_string fmt "*"
  | Unicast d -> Node_id.pp fmt d

let pp fmt t =
  match t.body with
  | Ack -> Format.fprintf fmt "ack[%a->%a]" Node_id.pp t.src pp_dst t.dst
  | Payload p ->
      Format.fprintf fmt "frame[%a->%a %a]" Node_id.pp t.src pp_dst t.dst
        Payload.pp p
