lib/packets/aodv_msg.mli: Format Node_id Sim
