(* Runtime telemetry collector.  Gathering is the caller's job (the
   runner knows its engines and PDES coordinator); this module owns
   the two output formats and the rate bookkeeping. *)

type domain = {
  dom_pending : int;
  dom_fired : int;
  dom_cal_buckets : int;
  dom_cal_occupancy : float;
}

let domain_of_engine e =
  let s = Sim.Engine.stats e in
  {
    dom_pending = s.Sim.Engine.pending;
    dom_fired = s.Sim.Engine.fired;
    dom_cal_buckets = Sim.Engine.calendar_buckets e;
    dom_cal_occupancy = Sim.Engine.calendar_occupancy e;
  }

type pdes_gauges = {
  pg_windows : int;
  pg_utilization : float;
  pg_mirrors : int;
  pg_worker_minor : float array;
}

type t = {
  jsonl : out_channel option;
  prom : string option;
  started : float; (* wall clock at create *)
  mutable prev_wall : float;
  mutable prev_fired : int array; (* per domain, from the last sample *)
}

let create ?jsonl ?prom () =
  {
    jsonl = Option.map open_out jsonl;
    prom;
    started = Unix.gettimeofday ();
    prev_wall = Unix.gettimeofday ();
    prev_fired = [||];
  }

(* Sum of GC minor words across the coordinator domain and any live
   PDES worker domains.  [Gc.minor_words] is per-domain in OCaml 5, so
   the workers' gauges (refreshed each window) must be added in. *)
let gc_words pdes =
  let q = Gc.quick_stat () in
  let minor = ref q.Gc.minor_words in
  (match pdes with
  | Some p -> Array.iter (fun w -> minor := !minor +. w) p.pg_worker_minor
  | None -> ());
  (!minor, q.Gc.promoted_words)

let rate dt prev cur = if dt <= 0. then 0. else float_of_int (cur - prev) /. dt

let write_jsonl t oc ~time ~(domains : domain array) ~pdes ~grid ~wall ~dt =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  Printf.bprintf buf "\"t\":%d,\"wall_s\":%.6f" (time : Sim.Time.t :> int)
    (wall -. t.started);
  let total_fired = Array.fold_left (fun a d -> a + d.dom_fired) 0 domains in
  let prev_total = Array.fold_left ( + ) 0 t.prev_fired in
  Printf.bprintf buf ",\"events\":%d,\"events_per_s\":%.1f" total_fired
    (rate dt prev_total total_fired);
  let arr name f =
    Printf.bprintf buf ",\"%s\":[" name;
    Array.iteri
      (fun i d ->
        if i > 0 then Buffer.add_char buf ',';
        f d)
      domains;
    Buffer.add_char buf ']'
  in
  arr "pending" (fun d -> Printf.bprintf buf "%d" d.dom_pending);
  arr "fired" (fun d -> Printf.bprintf buf "%d" d.dom_fired);
  arr "cal_buckets" (fun d -> Printf.bprintf buf "%d" d.dom_cal_buckets);
  arr "cal_occupancy" (fun d -> Printf.bprintf buf "%.3f" d.dom_cal_occupancy);
  (match pdes with
  | Some p ->
      Printf.bprintf buf
        ",\"pdes_windows\":%d,\"pdes_utilization\":%.4f,\"pdes_mirrors\":%d"
        p.pg_windows p.pg_utilization p.pg_mirrors
  | None -> ());
  (match grid with
  | Some (cells, occupied, max_occ) ->
      Printf.bprintf buf
        ",\"grid_cells\":%d,\"grid_occupied\":%d,\"grid_max_occupancy\":%d"
        cells occupied max_occ
  | None -> ());
  let minor, promoted = gc_words pdes in
  Printf.bprintf buf ",\"gc_minor_words\":%.0f,\"gc_promoted_words\":%.0f"
    minor promoted;
  Buffer.add_char buf '}';
  Buffer.add_char buf '\n';
  Buffer.output_buffer oc buf;
  flush oc

let write_prom t path ~time ~(domains : domain array) ~pdes ~grid ~dt =
  let buf = Buffer.create 1024 in
  let gauge name v =
    Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" name name v
  in
  let counter_dom name f =
    Printf.bprintf buf "# TYPE %s counter\n" name;
    Array.iteri
      (fun i d -> Printf.bprintf buf "%s{domain=\"%d\"} %s\n" name i (f d))
      domains
  in
  let gauge_dom name f =
    Printf.bprintf buf "# TYPE %s gauge\n" name;
    Array.iteri
      (fun i d -> Printf.bprintf buf "%s{domain=\"%d\"} %s\n" name i (f d))
      domains
  in
  gauge "manet_sim_time_seconds"
    (Printf.sprintf "%.9f" (Sim.Time.to_sec time));
  counter_dom "manet_events_processed_total" (fun d ->
      string_of_int d.dom_fired);
  Printf.bprintf buf "# TYPE manet_events_per_second gauge\n";
  Array.iteri
    (fun i d ->
      let prev = if i < Array.length t.prev_fired then t.prev_fired.(i) else 0
      in
      Printf.bprintf buf "manet_events_per_second{domain=\"%d\"} %.1f\n" i
        (rate dt prev d.dom_fired))
    domains;
  gauge_dom "manet_queue_pending" (fun d -> string_of_int d.dom_pending);
  gauge_dom "manet_calendar_buckets" (fun d ->
      string_of_int d.dom_cal_buckets);
  gauge_dom "manet_calendar_occupancy" (fun d ->
      Printf.sprintf "%.3f" d.dom_cal_occupancy);
  (match pdes with
  | Some p ->
      Printf.bprintf buf "# TYPE manet_pdes_windows_total counter\n";
      Printf.bprintf buf "manet_pdes_windows_total %d\n" p.pg_windows;
      Printf.bprintf buf "# TYPE manet_pdes_window_utilization gauge\n";
      Printf.bprintf buf "manet_pdes_window_utilization %.4f\n"
        p.pg_utilization;
      Printf.bprintf buf "# TYPE manet_pdes_border_mirrors_total counter\n";
      Printf.bprintf buf "manet_pdes_border_mirrors_total %d\n" p.pg_mirrors
  | None -> ());
  (match grid with
  | Some (cells, occupied, max_occ) ->
      Printf.bprintf buf "# TYPE manet_grid_cells gauge\n";
      Printf.bprintf buf "manet_grid_cells %d\n" cells;
      Printf.bprintf buf "# TYPE manet_grid_occupied_cells gauge\n";
      Printf.bprintf buf "manet_grid_occupied_cells %d\n" occupied;
      Printf.bprintf buf "# TYPE manet_grid_max_occupancy gauge\n";
      Printf.bprintf buf "manet_grid_max_occupancy %d\n" max_occ
  | None -> ());
  let minor, promoted = gc_words pdes in
  Printf.bprintf buf "# TYPE manet_gc_minor_words_total counter\n";
  Printf.bprintf buf "manet_gc_minor_words_total %.0f\n" minor;
  Printf.bprintf buf "# TYPE manet_gc_promoted_words_total counter\n";
  Printf.bprintf buf "manet_gc_promoted_words_total %.0f\n" promoted;
  (* Atomic replace: scrapers (and the CI validator) either see the
     previous complete snapshot or this one, never a prefix. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Buffer.output_buffer oc buf;
  close_out oc;
  Sys.rename tmp path

let record t ~time ~domains ?pdes ?grid () =
  let wall = Unix.gettimeofday () in
  let dt = wall -. t.prev_wall in
  (match t.jsonl with
  | Some oc -> write_jsonl t oc ~time ~domains ~pdes ~grid ~wall ~dt
  | None -> ());
  (match t.prom with
  | Some path -> write_prom t path ~time ~domains ~pdes ~grid ~dt
  | None -> ());
  t.prev_wall <- wall;
  if Array.length t.prev_fired <> Array.length domains then
    t.prev_fired <- Array.make (Array.length domains) 0;
  Array.iteri (fun i d -> t.prev_fired.(i) <- d.dom_fired) domains

let close t = match t.jsonl with Some oc -> close_out oc | None -> ()

(* ---- Prometheus text-format validation -------------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* One sample line: name[{label="value",...}] value.  Returns the
   metric name or an error string. *)
let parse_sample line =
  let n = String.length line in
  let rec name_end i = if i < n && is_name_char line.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then Error "missing metric name"
  else
    let name = String.sub line 0 ne in
    if not (valid_name name) then Error ("bad metric name " ^ name)
    else
      let i = ref ne in
      let err = ref None in
      (if !i < n && line.[!i] = '{' then begin
         (* labels: key="value" pairs, comma separated *)
         incr i;
         let fine = ref true in
         while !fine && !i < n && line.[!i] <> '}' do
           let ks = !i in
           let rec ke j =
             if j < n && is_name_char line.[j] then ke (j + 1) else j
           in
           let kend = ke ks in
           if kend = ks || kend >= n || line.[kend] <> '=' then begin
             err := Some "bad label key";
             fine := false
           end
           else if kend + 1 >= n || line.[kend + 1] <> '"' then begin
             err := Some "label value not quoted";
             fine := false
           end
           else begin
             let j = ref (kend + 2) in
             while !j < n && line.[!j] <> '"' do
               if line.[!j] = '\\' then incr j;
               incr j
             done;
             if !j >= n then begin
               err := Some "unterminated label value";
               fine := false
             end
             else begin
               i := !j + 1;
               if !i < n && line.[!i] = ',' then incr i
             end
           end
         done;
         if !fine then
           if !i < n && line.[!i] = '}' then incr i
           else err := Some "unterminated label block"
       end);
      match !err with
      | Some e -> Error e
      | None ->
          let rest = String.trim (String.sub line !i (n - !i)) in
          let value =
            match String.index_opt rest ' ' with
            | Some sp -> String.sub rest 0 sp (* optional timestamp after *)
            | None -> rest
          in
          if value = "" then Error "missing value"
          else if
            value = "NaN" || value = "+Inf" || value = "-Inf"
            || float_of_string_opt value <> None
          then Ok name
          else Error ("bad value " ^ value)

let validate_prom path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let names = Hashtbl.create 16 in
      let line_no = ref 0 in
      let err = ref None in
      (try
         while !err = None do
           let line = input_line ic in
           incr line_no;
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then
             match parse_sample line with
             | Ok name -> Hashtbl.replace names name ()
             | Error e ->
                 err := Some (Printf.sprintf "line %d: %s" !line_no e)
         done
       with End_of_file -> ());
      close_in ic;
      match !err with
      | Some e -> Error e
      | None ->
          Ok (Hashtbl.fold (fun k () acc -> k :: acc) names []
              |> List.sort String.compare)
