open Sim
open Packets

type config = {
  num_flows : int;
  packets_per_sec : float;
  payload_bytes : int;
  mean_flow_duration : Time.t;
  startup_window : Time.t;
}

let default_config =
  {
    num_flows = 10;
    packets_per_sec = 4.;
    payload_bytes = 512;
    mean_flow_duration = Time.sec 100.;
    startup_window = Time.sec 10.;
  }

let setup ~engine ~rng ~num_nodes ~config ~until ~emit =
  if num_nodes < 2 then invalid_arg "Traffic.setup: need at least two nodes";
  let next_flow_id = ref 0 in
  let pick_pair () =
    let src = Rng.int rng num_nodes in
    let rec pick_dst () =
      let d = Rng.int rng num_nodes in
      if d = src then pick_dst () else d
    in
    (Node_id.of_int src, Node_id.of_int (pick_dst ()))
  in
  let interval = Time.sec (1. /. config.packets_per_sec) in
  (* One slot = an endless succession of flows. *)
  let rec start_flow start =
    if Time.(start < until) then begin
      let flow_id = !next_flow_id in
      incr next_flow_id;
      let src, dst = pick_pair () in
      let duration =
        Time.sec
          (Rng.exponential rng (Time.to_sec config.mean_flow_duration))
      in
      let stop = Time.min until (Time.add start duration) in
      let seq = ref 0 in
      let rec emit_packet at =
        if Time.(at < stop) then
          ignore
            (Engine.at engine at (fun () ->
                 let msg =
                   Data_msg.fresh ~flow_id ~seq:!seq ~src ~dst
                     ~payload_bytes:config.payload_bytes ~origin_time:at
                 in
                 incr seq;
                 emit ~src msg;
                 emit_packet (Time.add at interval)))
      in
      emit_packet start;
      (* The slot restarts as soon as this flow ends. *)
      ignore (Engine.at engine stop (fun () -> start_flow stop))
    end
  in
  for _ = 1 to config.num_flows do
    start_flow (Rng.uniform_time rng config.startup_window)
  done
