test/test_packets.ml: Alcotest Aodv_msg Data_msg Dsr_msg Ldr_msg Node_id Olsr_msg Packets Payload QCheck QCheck_alcotest Seqnum Sim
