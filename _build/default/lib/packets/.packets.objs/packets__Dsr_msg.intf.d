lib/packets/dsr_msg.mli: Data_msg Format Node_id
