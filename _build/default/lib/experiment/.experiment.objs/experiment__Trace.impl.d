lib/experiment/trace.ml: Data_msg Format Logs Net Node_id Packets Sim
