open Sim
open Packets
module RA = Agent

type config = {
  window : Time.t;
  suppress_window : Time.t;
  max_batch : int;
  fanout : bool;
  fanout_ttl : Time.t;
}

let default =
  {
    window = Time.ms 20.;
    suppress_window = Time.ms 50.;
    max_batch = 8;
    fanout = true;
    fanout_ttl = Time.sec 2.;
  }

(* The layer is protocol-agnostic over the two on-demand families that
   flood RREQs; one node runs one family, but keeping both arms in a
   single item type lets the wrapper stay a single implementation. *)
type item = L of Ldr_msg.rreq | A of Aodv_msg.rreq

let item_dst = function L q -> q.Ldr_msg.dst | A q -> q.Aodv_msg.dst

let item_origin = function
  | L q -> q.Ldr_msg.origin
  | A q -> q.Aodv_msg.origin

let item_rreq_id = function
  | L q -> q.Ldr_msg.rreq_id
  | A q -> q.Aodv_msg.rreq_id

(* A computation whose relay flood this node absorbed; it is owed a copy
   of the next RREP for the destination, sent back through [w_hop]. *)
type waiter = {
  w_origin : Node_id.t;
  w_rreq_id : int;
  w_hop : Node_id.t;
  w_expires : Time.t;
}

type recent = {
  mutable r_last : Time.t;  (** when a flood for this dst last left here *)
  mutable r_origin : Node_id.t;  (** origin of that flood *)
  mutable r_waiters : waiter list;
}

type t = {
  cfg : config;
  ctx : RA.ctx;
  mutable batch : item list;  (* newest first; reversed on flush *)
  mutable flush_armed : bool;
  recent : recent Node_id.Table.t;
  rev : Node_id.t Rreq_cache.t;
      (* (origin, rreq_id) -> previous hop of the received RREQ copy *)
}

let now t = Engine.now t.ctx.engine
let prune_waiters at ws = List.filter (fun w -> Time.(w.w_expires > at)) ws

(* ---- Multi-destination piggybacking ----------------------------------- *)

let flush t =
  match t.batch with
  | [] -> ()
  | rev_items ->
      t.batch <- [];
      let items = List.rev rev_items in
      let send_group ~wrap ~single ~info = function
        | [] -> ()
        | [ q ] -> t.ctx.send ~dst:Net.Frame.Broadcast (single q)
        | qs ->
            (* n requests leave in 1 transmission: n-1 floods saved. *)
            for _ = 2 to List.length qs do
              t.ctx.event "rreq_aggregated"
            done;
            (* One discovery span per member, tagged with the batch
               size, so the analyzer can attribute aggregation
               membership per sought destination. *)
            if Obs.Bus.on t.ctx.obs then begin
              let batch = List.length qs in
              List.iter
                (fun q ->
                  let dst, rreq_id = info q in
                  Obs.Bus.span t.ctx.obs ~time:(now t)
                    ~node:(Node_id.to_int t.ctx.id)
                    ~stage:Obs.Span.Stage.agg ~flow:(-1) ~seq:(-1)
                    ~d:(Node_id.to_int dst) ~e:batch ~f:rreq_id)
                qs
            end;
            t.ctx.send ~dst:Net.Frame.Broadcast (wrap qs)
      in
      send_group
        ~wrap:(fun qs -> Payload.Ldr (Ldr_msg.Rreq_agg qs))
        ~single:(fun q -> Payload.Ldr (Ldr_msg.Rreq q))
        ~info:(fun q -> (q.Ldr_msg.dst, q.Ldr_msg.rreq_id))
        (List.filter_map (function L q -> Some q | A _ -> None) items);
      send_group
        ~wrap:(fun qs -> Payload.Aodv (Aodv_msg.Rreq_agg qs))
        ~single:(fun q -> Payload.Aodv (Aodv_msg.Rreq q))
        ~info:(fun q -> (q.Aodv_msg.dst, q.Aodv_msg.rreq_id))
        (List.filter_map (function A q -> Some q | L _ -> None) items)

let enqueue t item =
  t.batch <- item :: t.batch;
  if List.length t.batch >= t.cfg.max_batch then flush t
  else if not t.flush_armed then begin
    t.flush_armed <- true;
    ignore
      (Engine.after t.ctx.engine t.cfg.window (fun () ->
           t.flush_armed <- false;
           flush t))
  end

(* ---- Same-destination suppression ------------------------------------- *)

(* A flood for [dst] left this node within the suppression window on
   behalf of a different origin: this one need not go out too.  A
   suppressed relay registers as a waiter so the returning RREP is
   fanned out to it; a suppressed origination relies on the reply
   passing through here (else the origin's ring timer re-attempts). *)
let try_suppress t item at =
  match Node_id.Table.find_opt t.recent (item_dst item) with
  | None -> false
  | Some r ->
      if
        Time.(Time.add r.r_last t.cfg.suppress_window <= at)
        || Node_id.equal r.r_origin (item_origin item)
      then false
      else if Node_id.equal (item_origin item) t.ctx.id then true
      else if not t.cfg.fanout then false
      else begin
        match
          Rreq_cache.find t.rev ~origin:(item_origin item)
            ~rreq_id:(item_rreq_id item)
        with
        | None -> false (* reverse hop unknown: forward rather than strand *)
        | Some hop ->
            r.r_waiters <-
              {
                w_origin = item_origin item;
                w_rreq_id = item_rreq_id item;
                w_hop = hop;
                w_expires = Time.add at t.cfg.fanout_ttl;
              }
              :: prune_waiters at r.r_waiters;
            true
      end

let on_outgoing_rreq t item =
  let at = now t in
  if try_suppress t item at then
    t.ctx.event ~dst:(item_dst item) "rreq_suppressed"
  else begin
    (match Node_id.Table.find_opt t.recent (item_dst item) with
    | Some r ->
        r.r_last <- at;
        r.r_origin <- item_origin item
    | None ->
        Node_id.Table.replace t.recent (item_dst item)
          { r_last = at; r_origin = item_origin item; r_waiters = [] });
    enqueue t item
  end

(* ---- RREP fan-out ------------------------------------------------------ *)

(* [consumed] marks a reply that terminated here (we are its origin): the
   observed fields are as advertised by the previous hop, so our copy
   re-advertises one hop further.  A reply the inner agent relayed
   already carries this node's own advertisement and is copied
   verbatim. *)
let fanout_ldr t (p : Ldr_msg.rrep) ~consumed =
  match Node_id.Table.find_opt t.recent p.dst with
  | None -> ()
  | Some r ->
      let at = now t in
      let ws =
        List.filter
          (fun w ->
            not (Node_id.equal w.w_origin p.origin && w.w_rreq_id = p.rreq_id))
          (prune_waiters at r.r_waiters)
      in
      r.r_waiters <- [];
      let dist = if consumed then p.dist + 1 else p.dist in
      List.iter
        (fun w ->
          t.ctx.event ~dst:p.dst "rrep_fanout";
          t.ctx.send ~dst:(Net.Frame.Unicast w.w_hop)
            (Payload.Ldr
               (Ldr_msg.Rrep
                  { p with origin = w.w_origin; rreq_id = w.w_rreq_id; dist })))
        ws

let fanout_aodv t (p : Aodv_msg.rrep) ~consumed =
  match Node_id.Table.find_opt t.recent p.dst with
  | None -> ()
  | Some r ->
      let at = now t in
      let ws =
        List.filter
          (fun w -> not (Node_id.equal w.w_origin p.origin))
          (prune_waiters at r.r_waiters)
      in
      r.r_waiters <- [];
      let hop_count = if consumed then p.hop_count + 1 else p.hop_count in
      List.iter
        (fun w ->
          t.ctx.event ~dst:p.dst "rrep_fanout";
          t.ctx.send ~dst:(Net.Frame.Unicast w.w_hop)
            (Payload.Aodv (Aodv_msg.Rrep { p with origin = w.w_origin; hop_count })))
        ws

(* ---- Interposition ----------------------------------------------------- *)

let intercept_send t ~dst payload =
  match (dst, payload) with
  | Net.Frame.Broadcast, Payload.Ldr (Ldr_msg.Rreq q)
    when not q.unicast_probe ->
      on_outgoing_rreq t (L q)
  | Net.Frame.Broadcast, Payload.Aodv (Aodv_msg.Rreq q) ->
      on_outgoing_rreq t (A q)
  | _, Payload.Ldr (Ldr_msg.Rrep p) ->
      t.ctx.send ~dst payload;
      if t.cfg.fanout then fanout_ldr t p ~consumed:false
  | _, Payload.Aodv (Aodv_msg.Rrep p) ->
      t.ctx.send ~dst payload;
      if t.cfg.fanout then fanout_aodv t p ~consumed:false
  | _ -> t.ctx.send ~dst payload

let note_rreq t item ~from =
  Rreq_cache.add t.rev ~origin:(item_origin item)
    ~rreq_id:(item_rreq_id item) from

let recv t (inner : RA.t) payload ~from =
  (match payload with
  | Payload.Ldr (Ldr_msg.Rreq q) -> note_rreq t (L q) ~from
  | Payload.Ldr (Ldr_msg.Rreq_agg qs) ->
      List.iter (fun q -> note_rreq t (L q) ~from) qs
  | Payload.Aodv (Aodv_msg.Rreq q) -> note_rreq t (A q) ~from
  | Payload.Aodv (Aodv_msg.Rreq_agg qs) ->
      List.iter (fun q -> note_rreq t (A q) ~from) qs
  | _ -> ());
  inner.RA.recv payload ~from;
  (* A reply that terminates here is not re-sent by the inner agent, so
     waiters must be served from the receive side. *)
  if t.cfg.fanout then
    match payload with
    | Payload.Ldr (Ldr_msg.Rrep p) when Node_id.equal p.origin t.ctx.id ->
        fanout_ldr t p ~consumed:true
    | Payload.Aodv (Aodv_msg.Rrep p) when Node_id.equal p.origin t.ctx.id ->
        fanout_aodv t p ~consumed:true
    | _ -> ()

let wrap ?(config = default) (inner_factory : RA.factory) : RA.factory =
 fun ctx ->
  let t =
    {
      cfg = config;
      ctx;
      batch = [];
      flush_armed = false;
      recent = Node_id.Table.create 16;
      rev = Rreq_cache.create ~engine:ctx.engine ~ttl:config.fanout_ttl;
    }
  in
  let inner = inner_factory { ctx with send = intercept_send t } in
  {
    inner with
    RA.recv = (fun payload ~from -> recv t inner payload ~from);
    (* Churn: drop the wrapper's own volatile state (batched requests,
       reverse paths, suppression memory) before the inner teardown.  An
       armed flush finds an empty batch and does nothing. *)
    reset =
      (fun ~crash ->
        t.batch <- [];
        Node_id.Table.reset t.recent;
        Rreq_cache.clear t.rev;
        inner.RA.reset ~crash);
  }
