open Sim
open Packets
module RA = Routing.Agent

let name = "aodv"

type config = {
  use_hello : bool;
  hello_interval : Time.t;
  allowed_hello_loss : int;
  active_route_timeout : Time.t;
  my_route_timeout : Time.t;
  ring : Routing.Discovery.t;
  rreq_cache_ttl : Time.t;
  buffer_capacity : int;
  buffer_max_age : Time.t;
  flood_jitter : Time.t;
  data_ttl : int;
}

let default_config =
  {
    use_hello = false;
    hello_interval = Time.sec 1.;
    allowed_hello_loss = 2;
    active_route_timeout = Time.sec 3.;
    my_route_timeout = Time.sec 6.;
    ring = Routing.Discovery.default;
    rreq_cache_ttl = Time.sec 6.;
    buffer_capacity = 64;
    buffer_max_age = Time.sec 30.;
    flood_jitter = Time.ms 10.;
    data_ttl = Data_msg.default_ttl;
  }

type route = {
  mutable sn : int option;  (** known destination sequence number *)
  mutable hops : int;
  mutable next_hop : Node_id.t option;  (** [None] = invalid *)
  mutable expires : Time.t;
}

type pending = {
  mutable p_ttl : int;
  mutable p_diameter_tries : int;
  mutable p_timer : Engine.handle option;
}

type state = {
  ctx : RA.ctx;
  cfg : config;
  table : route Node_id.Table.t;
  cache : Node_id.t Routing.Rreq_cache.t;  (** value: reverse hop *)
  buffer : Routing.Packet_buffer.t;
  mutable own_sn : int;
  mutable next_rreq_id : int;
  pending : pending Node_id.Table.t;
  last_hello : Time.t Node_id.Table.t;  (** neighbor liveness (hello mode) *)
}

let now t = Engine.now t.ctx.engine

let entry t dst = Node_id.Table.find_opt t.table dst

let is_valid t (r : route) = r.next_hop <> None && Time.(r.expires > now t)

let valid_entry t dst =
  match entry t dst with Some r when is_valid t r -> Some r | _ -> None

let refresh t (r : route) =
  let candidate = Time.add (now t) t.cfg.active_route_timeout in
  if Time.(candidate > r.expires) then r.expires <- candidate

let remaining t (r : route) =
  if Time.(r.expires > now t) then Time.diff r.expires (now t) else Time.zero

let sn_ge a b = match b with None -> true | Some b -> a >= b

(* RFC 3561 route-update rule: accept when the number is newer, or equal
   with a better/replacement path, or nothing was known. *)
let update_route t ~dst ~sn ~hops ~via ~lifetime =
  if Node_id.equal dst t.ctx.id then false
  else begin
    let install (r : route) =
      r.sn <- Some sn;
      r.hops <- hops;
      r.next_hop <- Some via;
      r.expires <- Time.add (now t) lifetime;
      t.ctx.table_changed ();
      true
    in
    match entry t dst with
    | None ->
        let r = { sn = Some sn; hops; next_hop = None; expires = Time.zero } in
        Node_id.Table.replace t.table dst r;
        install r
    | Some r -> (
        match r.sn with
        | Some stored when sn < stored -> false
        | Some stored when sn = stored ->
            if (not (is_valid t r)) || hops < r.hops then install r
            else if r.next_hop = Some via && hops = r.hops then begin
              refresh t r;
              true
            end
            else false
        | Some _ | None -> install r)
  end

(* Reverse routes from RREQs: RFC 6.5 — always overwrite toward a fresher
   origin number or shorter same-number path. *)
let update_reverse t ~origin ~origin_sn ~hops ~via =
  ignore
    (update_route t ~dst:origin ~sn:origin_sn ~hops ~via
       ~lifetime:t.cfg.active_route_timeout)

let send_aodv t ~dst msg = t.ctx.send ~dst (Payload.Aodv msg)

let broadcast_rerr t unreachable =
  if unreachable <> [] then
    send_aodv t ~dst:Net.Frame.Broadcast (Aodv_msg.Rerr { unreachable })

let forward_data t (r : route) msg =
  match r.next_hop with
  | None -> assert false
  | Some nh ->
      refresh t r;
      t.ctx.send ~dst:(Net.Frame.Unicast nh) (Payload.Data (Data_msg.hop msg))

let flush_buffer t dst =
  match valid_entry t dst with
  | None -> ()
  | Some r ->
      List.iter (fun msg -> forward_data t r msg)
        (Routing.Packet_buffer.take t.buffer dst)

(* ---- Route discovery --------------------------------------------------- *)

let fresh_rreq_id t =
  t.next_rreq_id <- t.next_rreq_id + 1;
  t.next_rreq_id

let rec issue_rreq t dst pend =
  (* RFC 6.1: originator increments its own sequence number before every
     route discovery. *)
  t.own_sn <- t.own_sn + 1;
  let dst_sn = match entry t dst with Some r -> r.sn | None -> None in
  let rreq =
    {
      Aodv_msg.dst;
      dst_sn;
      rreq_id = fresh_rreq_id t;
      origin = t.ctx.id;
      origin_sn = t.own_sn;
      hop_count = 0;
      ttl = pend.p_ttl;
    }
  in
  t.ctx.event "rreq_init";
  if Obs.Bus.on t.ctx.obs then
    Obs.Bus.span t.ctx.obs
      ~time:(Engine.now t.ctx.engine)
      ~node:(Node_id.to_int t.ctx.id)
      ~stage:Obs.Span.Stage.ring ~flow:(-1) ~seq:(-1)
      ~d:(Node_id.to_int dst) ~e:rreq.Aodv_msg.ttl
      ~f:rreq.Aodv_msg.rreq_id;
  send_aodv t ~dst:Net.Frame.Broadcast (Aodv_msg.Rreq rreq);
  let timeout = Routing.Discovery.attempt_timeout t.cfg.ring ~ttl:pend.p_ttl in
  pend.p_timer <-
    Some (Engine.after t.ctx.engine timeout (fun () -> attempt_expired t dst pend))

and attempt_expired t dst pend =
  pend.p_timer <- None;
  if valid_entry t dst <> None then finish_discovery t dst
  else begin
    let ring = t.cfg.ring in
    match Routing.Discovery.next_ttl ring ~prev:(Some pend.p_ttl) with
    | Some ttl ->
        pend.p_ttl <- ttl;
        issue_rreq t dst pend
    | None ->
        if pend.p_diameter_tries < ring.max_retries then begin
          pend.p_diameter_tries <- pend.p_diameter_tries + 1;
          pend.p_ttl <- ring.net_diameter;
          issue_rreq t dst pend
        end
        else begin
          Node_id.Table.remove t.pending dst;
          Routing.Packet_buffer.drop_all t.buffer dst
            ~reason:"discovery-failed"
        end
  end

and finish_discovery t dst =
  (match Node_id.Table.find_opt t.pending dst with
  | Some pend -> (
      match pend.p_timer with
      | Some h -> Engine.cancel t.ctx.engine h
      | None -> ())
  | None -> ());
  Node_id.Table.remove t.pending dst;
  flush_buffer t dst

let start_discovery t dst =
  if not (Node_id.Table.mem t.pending dst) then begin
    let first_ttl =
      match Routing.Discovery.next_ttl t.cfg.ring ~prev:None with
      | Some ttl -> ttl
      | None -> t.cfg.ring.net_diameter
    in
    let pend = { p_ttl = first_ttl; p_diameter_tries = 0; p_timer = None } in
    Node_id.Table.replace t.pending dst pend;
    issue_rreq t dst pend
  end

(* ---- Data plane -------------------------------------------------------- *)

let origin_data t msg =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else
    let msg = { msg with Data_msg.ttl = t.cfg.data_ttl } in
    match valid_entry t msg.Data_msg.dst with
    | Some r -> forward_data t r msg
    | None ->
        Routing.Packet_buffer.push t.buffer msg;
        start_discovery t msg.Data_msg.dst

let handle_data t msg =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else
    match Data_msg.decr_ttl msg with
    | None -> t.ctx.drop_data msg ~reason:"ttl-expired"
    | Some msg -> (
        match valid_entry t msg.Data_msg.dst with
        | Some r -> forward_data t r msg
        | None ->
            t.ctx.drop_data msg ~reason:"no-route";
            let sn =
              match entry t msg.Data_msg.dst with
              | Some { sn = Some s; _ } -> s + 1
              | Some { sn = None; _ } | None -> 1
            in
            broadcast_rerr t [ (msg.Data_msg.dst, sn) ])

(* ---- RREQ / RREP ------------------------------------------------------- *)

let send_rrep t ~to_ rrep =
  t.ctx.event "rrep_init";
  send_aodv t ~dst:(Net.Frame.Unicast to_) (Aodv_msg.Rrep rrep)

let handle_rreq t (r : Aodv_msg.rreq) ~from =
  if Node_id.equal r.origin t.ctx.id then ()
  else if Routing.Rreq_cache.mem t.cache ~origin:r.origin ~rreq_id:r.rreq_id
  then ()
  else begin
    Routing.Rreq_cache.add t.cache ~origin:r.origin ~rreq_id:r.rreq_id from;
    update_reverse t ~origin:r.origin ~origin_sn:r.origin_sn
      ~hops:(r.hop_count + 1) ~via:from;
    if Node_id.equal r.dst t.ctx.id then begin
      (* RFC 6.6.1: the destination bumps its number to at least the
         requested one (and past it when they are equal). *)
      (match r.dst_sn with
      | Some want when want >= t.own_sn -> t.own_sn <- want + 1
      | Some _ | None -> ());
      send_rrep t ~to_:from
        {
          Aodv_msg.dst = t.ctx.id;
          dst_sn = t.own_sn;
          origin = r.origin;
          hop_count = 0;
          lifetime = t.cfg.my_route_timeout;
        }
    end
    else begin
      match valid_entry t r.dst with
      | Some route
        when (match route.sn with
             | Some stored -> sn_ge stored r.dst_sn
             | None -> false) ->
          (* Intermediate reply: stored number is fresh enough. *)
          let stored_sn = Option.get route.sn in
          send_rrep t ~to_:from
            {
              Aodv_msg.dst = r.dst;
              dst_sn = stored_sn;
              origin = r.origin;
              hop_count = route.hops;
              lifetime = remaining t route;
            }
      | Some _ | None ->
          if r.ttl > 1 then begin
            (* RFC 6.5: a forwarding node advertises the freshest number
               it knows for the destination. *)
            let dst_sn =
              match (entry t r.dst, r.dst_sn) with
              | Some { sn = Some stored; _ }, Some want ->
                  Some (Stdlib.max stored want)
              | Some { sn = Some stored; _ }, None -> Some stored
              | _, want -> want
            in
            let relayed =
              {
                r with
                Aodv_msg.hop_count = r.hop_count + 1;
                ttl = r.ttl - 1;
                dst_sn;
              }
            in
            let delay = Rng.uniform_time t.ctx.rng t.cfg.flood_jitter in
            ignore
              (Engine.after t.ctx.engine delay (fun () ->
                   send_aodv t ~dst:Net.Frame.Broadcast (Aodv_msg.Rreq relayed)))
          end
    end
  end

let handle_rrep t (r : Aodv_msg.rrep) ~from =
  let accepted =
    update_route t ~dst:r.dst ~sn:r.dst_sn ~hops:(r.hop_count + 1) ~via:from
      ~lifetime:r.lifetime
  in
  if accepted then t.ctx.event "rrep_usable_recv";
  if Node_id.Table.mem t.pending r.dst && valid_entry t r.dst <> None then
    finish_discovery t r.dst;
  if not (Node_id.equal r.origin t.ctx.id) then begin
    (* Forward along the reverse route built by the RREQ. *)
    match valid_entry t r.origin with
    | None -> ()
    | Some rev -> (
        match rev.next_hop with
        | None -> ()
        | Some nh ->
            refresh t rev;
            send_aodv t ~dst:(Net.Frame.Unicast nh)
              (Aodv_msg.Rrep { r with hop_count = r.hop_count + 1 }))
  end

(* ---- Route maintenance ------------------------------------------------- *)

(* Invalidate all routes over a dead link and bump their stored numbers —
   the AODV behaviour that inflates sequence numbers under mobility. *)
let invalidate_via t neighbor =
  Node_id.Table.fold
    (fun dst (r : route) acc ->
      if r.next_hop = Some neighbor then begin
        r.next_hop <- None;
        r.sn <- Some (match r.sn with Some s -> s + 1 | None -> 1);
        (dst, Option.get r.sn) :: acc
      end
      else acc)
    t.table []

let handle_rerr t unreachable ~from =
  let cascaded =
    List.filter_map
      (fun (dst, sn) ->
        match entry t dst with
        | Some r when r.next_hop = Some from ->
            r.next_hop <- None;
            r.sn <- Some (Stdlib.max sn (match r.sn with Some s -> s | None -> 0));
            Some (dst, Option.get r.sn)
        | Some _ | None -> None)
      unreachable
  in
  if cascaded <> [] then begin
    t.ctx.table_changed ();
    broadcast_rerr t cascaded
  end

let link_failure t payload ~next_hop =
  let affected = invalidate_via t next_hop in
  if affected <> [] then t.ctx.table_changed ();
  (match payload with
  | Payload.Data msg ->
      if Node_id.equal msg.Data_msg.src t.ctx.id then begin
        Routing.Packet_buffer.push t.buffer msg;
        start_discovery t msg.Data_msg.dst
      end
      else t.ctx.drop_data msg ~reason:"link-failure"
  | Payload.Ldr _ | Payload.Aodv _ | Payload.Dsr _ | Payload.Olsr _ -> ());
  broadcast_rerr t affected

(* ---- Hello messages (RFC 3561 6.9) -------------------------------------- *)

let is_hello (r : Aodv_msg.rrep) = Node_id.equal r.dst r.origin

let hello_lifetime t =
  Time.mul t.cfg.hello_interval t.cfg.allowed_hello_loss

let has_active_route t =
  Node_id.Table.fold (fun _ r acc -> acc || is_valid t r) t.table false

let emit_hello t =
  if has_active_route t then
    send_aodv t ~dst:Net.Frame.Broadcast
      (Aodv_msg.Rrep
         {
           dst = t.ctx.id;
           dst_sn = t.own_sn;
           origin = t.ctx.id;
           hop_count = 0;
           lifetime = hello_lifetime t;
         })

let handle_hello t (r : Aodv_msg.rrep) ~from =
  Node_id.Table.replace t.last_hello from (now t);
  ignore
    (update_route t ~dst:r.dst ~sn:r.dst_sn ~hops:1 ~via:from
       ~lifetime:r.lifetime);
  (* Keep an existing 1-hop route through this neighbor alive. *)
  match valid_entry t from with Some route -> refresh t route | None -> ()

let check_hello_timeouts t =
  let deadline = hello_lifetime t in
  let stale =
    Node_id.Table.fold
      (fun nb last acc ->
        if Time.(Time.add last deadline < now t) then nb :: acc else acc)
      t.last_hello []
  in
  List.iter
    (fun nb ->
      Node_id.Table.remove t.last_hello nb;
      let affected = invalidate_via t nb in
      if affected <> [] then begin
        t.ctx.table_changed ();
        broadcast_rerr t affected
      end)
    stale

(* ---- Wiring ------------------------------------------------------------ *)

let recv t payload ~from =
  match payload with
  | Payload.Data msg -> handle_data t msg
  | Payload.Aodv (Aodv_msg.Rreq r) -> handle_rreq t r ~from
  | Payload.Aodv (Aodv_msg.Rreq_agg rs) ->
      (* Aggregated flood: each member RREQ is its own computation. *)
      List.iter (fun r -> handle_rreq t r ~from) rs
  | Payload.Aodv (Aodv_msg.Rrep r) when t.cfg.use_hello && is_hello r ->
      handle_hello t r ~from
  | Payload.Aodv (Aodv_msg.Rrep r) -> handle_rrep t r ~from
  | Payload.Aodv (Aodv_msg.Rerr { unreachable }) ->
      handle_rerr t unreachable ~from
  | Payload.Ldr _ | Payload.Dsr _ | Payload.Olsr _ -> ()

(* Churn teardown (Agent.reset): AODV keeps its sequence number in
   volatile memory, so a crash reboots it at 0 — the classic stale-seqno
   loop stressor (van Glabbeek et al.). *)
let reset t ~crash =
  Node_id.Table.iter
    (fun _ (p : pending) ->
      match p.p_timer with
      | Some h ->
          Engine.cancel t.ctx.engine h;
          p.p_timer <- None
      | None -> ())
    t.pending;
  Node_id.Table.reset t.pending;
  Routing.Packet_buffer.clear t.buffer ~reason:"node-down";
  Node_id.Table.reset t.table;
  Routing.Rreq_cache.clear t.cache;
  Node_id.Table.reset t.last_hello;
  t.ctx.table_changed ();
  if crash then begin
    t.own_sn <- 0;
    t.next_rreq_id <- 0
  end

let factory ?(config = default_config) () (ctx : RA.ctx) =
  let t =
    {
      ctx;
      cfg = config;
      table = Node_id.Table.create 32;
      cache =
        Routing.Rreq_cache.create ~engine:ctx.engine
          ~ttl:config.rreq_cache_ttl;
      buffer =
        Routing.Packet_buffer.create ~obs:ctx.obs
          ~owner:(Node_id.to_int ctx.id) ~engine:ctx.engine
          ~capacity:config.buffer_capacity ~max_age:config.buffer_max_age
          ~on_drop:ctx.drop_data ();
      own_sn = 0;
      next_rreq_id = 0;
      pending = Node_id.Table.create 8;
      last_hello = Node_id.Table.create 16;
    }
  in
  {
    RA.origin_data = (fun msg -> origin_data t msg);
    recv = (fun payload ~from -> recv t payload ~from);
    overheard = (fun _ ~from:_ ~dst:_ -> ());
    link_failure = (fun payload ~next_hop -> link_failure t payload ~next_hop);
    start =
      (fun () ->
        if config.use_hello then
          Engine.every ctx.engine
            ~jitter:(fun () -> Rng.uniform_time ctx.rng (Time.ms 100.))
            ~start:(Rng.uniform_time ctx.rng config.hello_interval)
            ~interval:config.hello_interval ~until:(Time.sec 1e6)
            (fun () ->
              emit_hello t;
              check_hello_timeouts t));
    successor =
      (fun dst ->
        if Node_id.equal dst ctx.id then None
        else
          match valid_entry t dst with
          | Some r -> r.next_hop
          | None -> None);
    own_seqno = (fun () -> float_of_int t.own_sn);
    invariants = (fun _ -> None);
    route_stats = (fun () -> (Node_id.Table.length t.table, 0, 0));
    reset = (fun ~crash -> reset t ~crash);
  }
