(** Deterministic pseudo-random number generation.

    A self-contained splitmix64 generator: every random decision in a
    simulation flows from one seeded generator, so a run is fully
    determined by its seed.  [split] derives an independent stream, which
    lets subsystems (mobility, MAC backoff, traffic, ...) consume
    randomness without perturbing each other's sequences. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** An independent generator with identical current state. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val coin : t -> float -> bool
(** [coin t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val uniform_time : t -> Time.t -> Time.t
(** [uniform_time t d] is a duration uniform in [\[0, d)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
