type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let cols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = cols -> a
    | Some _ | None ->
        List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let normalize row =
    let n = List.length row in
    if n >= cols then row
    else row @ List.init (cols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let line cells =
    String.concat "  "
      (List.map2
         (fun (w, a) c -> pad a w c)
         (List.combine widths aligns)
         cells)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: sep :: List.map line rows)

let mean_ci ~mean ~ci = Printf.sprintf "%.3f ± %.3f" mean ci
