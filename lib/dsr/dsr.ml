open Sim
open Packets
module RA = Routing.Agent
module Route_cache = Route_cache

let name = "dsr"

type config = {
  cache_capacity : int;
  cache_ttl : Time.t;
  nonprop_timeout : Time.t;
  flood_timeout : Time.t;
  max_flood_attempts : int;
  buffer_capacity : int;
  buffer_max_age : Time.t;
  flood_jitter : Time.t;
  max_salvage : int;
  reply_from_cache : bool;
  route_shortening : bool;
}

let default_config =
  {
    cache_capacity = 64;
    cache_ttl = Time.sec 300.;
    nonprop_timeout = Time.ms 100.;
    flood_timeout = Time.ms 500.;
    max_flood_attempts = 4;
    buffer_capacity = 64;
    buffer_max_age = Time.sec 30.;
    flood_jitter = Time.ms 10.;
    max_salvage = 3;
    reply_from_cache = true;
    route_shortening = true;
  }

type pending = {
  mutable p_attempts : int;  (** flood attempts made (0 = nonprop phase) *)
  mutable p_timer : Engine.handle option;
}

type state = {
  ctx : RA.ctx;
  cfg : config;
  cache : Route_cache.t;
  seen : unit Routing.Rreq_cache.t;  (** RREQ duplicate table *)
  shortened : unit Routing.Rreq_cache.t;
      (** gratuitous-RREP rate limiting, keyed (source, destination) *)
  buffer : Routing.Packet_buffer.t;
  mutable next_rreq_id : int;
  pending : pending Node_id.Table.t;
}

let send_dsr t ~dst msg = t.ctx.send ~dst (Payload.Dsr msg)

let rec dedup_ok = function
  | [] -> true
  | x :: rest -> (not (List.exists (Node_id.equal x) rest)) && dedup_ok rest

(* ---- Sending data over a source route ---------------------------------- *)

let send_data_via t hops (data : Data_msg.t) ~salvage =
  match hops with
  | [] -> t.ctx.deliver data
  | next :: rest ->
      let full_route = t.ctx.id :: hops in
      send_dsr t
        ~dst:(Net.Frame.Unicast next)
        (Dsr_msg.Data
           { sr_remaining = rest; full_route; data = Data_msg.hop data; salvage })

let flush_buffer t dst =
  match Route_cache.find t.cache ~dst with
  | None -> ()
  | Some hops ->
      List.iter
        (fun msg -> send_data_via t hops msg ~salvage:0)
        (Routing.Packet_buffer.take t.buffer dst)

(* ---- Route discovery --------------------------------------------------- *)

let fresh_rreq_id t =
  t.next_rreq_id <- t.next_rreq_id + 1;
  t.next_rreq_id

let net_diameter = Routing.Discovery.default.net_diameter

let rec issue_rreq t dst pend =
  let ttl, timeout =
    if pend.p_attempts = 0 then (1, t.cfg.nonprop_timeout)
    else
      ( net_diameter,
        (* Exponential request backoff. *)
        Time.mul t.cfg.flood_timeout (1 lsl (pend.p_attempts - 1)) )
  in
  let rreq =
    { Dsr_msg.origin = t.ctx.id; dst; rreq_id = fresh_rreq_id t; route = []; ttl }
  in
  t.ctx.event "rreq_init";
  if Obs.Bus.on t.ctx.obs then
    Obs.Bus.span t.ctx.obs
      ~time:(Engine.now t.ctx.engine)
      ~node:(Node_id.to_int t.ctx.id)
      ~stage:Obs.Span.Stage.ring ~flow:(-1) ~seq:(-1)
      ~d:(Node_id.to_int dst) ~e:rreq.Dsr_msg.ttl ~f:rreq.Dsr_msg.rreq_id;
  send_dsr t ~dst:Net.Frame.Broadcast (Dsr_msg.Rreq rreq);
  pend.p_timer <-
    Some
      (Engine.after t.ctx.engine timeout (fun () -> attempt_expired t dst pend))

and attempt_expired t dst pend =
  pend.p_timer <- None;
  if Route_cache.find t.cache ~dst <> None then finish_discovery t dst
  else if pend.p_attempts < t.cfg.max_flood_attempts then begin
    pend.p_attempts <- pend.p_attempts + 1;
    issue_rreq t dst pend
  end
  else begin
    Node_id.Table.remove t.pending dst;
    Routing.Packet_buffer.drop_all t.buffer dst ~reason:"discovery-failed"
  end

and finish_discovery t dst =
  (match Node_id.Table.find_opt t.pending dst with
  | Some pend -> (
      match pend.p_timer with Some h -> Engine.cancel t.ctx.engine h | None -> ())
  | None -> ());
  Node_id.Table.remove t.pending dst;
  flush_buffer t dst

let start_discovery t dst =
  if not (Node_id.Table.mem t.pending dst) then begin
    let pend = { p_attempts = 0; p_timer = None } in
    Node_id.Table.replace t.pending dst pend;
    issue_rreq t dst pend
  end

(* ---- Data plane -------------------------------------------------------- *)

let origin_data t msg =
  if Node_id.equal msg.Data_msg.dst t.ctx.id then t.ctx.deliver msg
  else
    match Route_cache.find t.cache ~dst:msg.Data_msg.dst with
    | Some hops -> send_data_via t hops msg ~salvage:0
    | None ->
        Routing.Packet_buffer.push t.buffer msg;
        start_discovery t msg.Data_msg.dst

let handle_data t ~sr_remaining ~full_route ~data ~salvage =
  (* Forwarding is purely header-driven; caches also learn the route the
     packet is following. *)
  Route_cache.add_path t.cache full_route;
  match sr_remaining with
  | [] ->
      if Node_id.equal data.Data_msg.dst t.ctx.id then t.ctx.deliver data
      else t.ctx.drop_data data ~reason:"misrouted"
  | next :: rest ->
      send_dsr t
        ~dst:(Net.Frame.Unicast next)
        (Dsr_msg.Data
           { sr_remaining = rest; full_route; data = Data_msg.hop data; salvage })

(* ---- RREQ / RREP ------------------------------------------------------- *)

let reverse_path_to_origin (r : Dsr_msg.rreq) =
  (* Path the reply retraces: last relay first, origin last. *)
  List.rev (r.origin :: r.route)

let send_rrep t ~full_route ~sr (rrep : Dsr_msg.rrep) =
  match sr with
  | [] ->
      (* Reply to a one-hop neighbor request. *)
      ignore full_route;
      assert false
  | next :: rest ->
      t.ctx.event "rrep_init";
      send_dsr t ~dst:(Net.Frame.Unicast next)
        (Dsr_msg.Rrep { sr_remaining = rest; rrep })

let handle_rreq t (r : Dsr_msg.rreq) ~from =
  let self = t.ctx.id in
  if Node_id.equal r.origin self then ()
  else if List.exists (Node_id.equal self) r.route then ()
  else if Routing.Rreq_cache.mem t.seen ~origin:r.origin ~rreq_id:r.rreq_id
  then ()
  else begin
    Routing.Rreq_cache.add t.seen ~origin:r.origin ~rreq_id:r.rreq_id ();
    ignore from;
    (* Links are symmetric, so the accumulated route read backwards is a
       route to the origin. *)
    Route_cache.add_path t.cache (self :: reverse_path_to_origin r);
    if Node_id.equal r.dst self then begin
      let full_route = (r.origin :: r.route) @ [ self ] in
      send_rrep t ~full_route
        ~sr:(reverse_path_to_origin r)
        { Dsr_msg.origin = r.origin; dst = r.dst; full_route }
    end
    else begin
      let cached =
        if t.cfg.reply_from_cache then Route_cache.find t.cache ~dst:r.dst
        else None
      in
      match cached with
      | Some hops
        when dedup_ok ((r.origin :: r.route) @ (self :: hops)) ->
          (* Reply from cache: splice our cached suffix onto the
             accumulated prefix, provided the result is loop-free. *)
          let full_route = (r.origin :: r.route) @ (self :: hops) in
          send_rrep t ~full_route
            ~sr:(reverse_path_to_origin r)
            { Dsr_msg.origin = r.origin; dst = r.dst; full_route }
      | Some _ | None ->
          if r.ttl > 1 then begin
            let relayed =
              { r with Dsr_msg.route = r.route @ [ self ]; ttl = r.ttl - 1 }
            in
            let delay = Rng.uniform_time t.ctx.rng t.cfg.flood_jitter in
            ignore
              (Engine.after t.ctx.engine delay (fun () ->
                   send_dsr t ~dst:Net.Frame.Broadcast (Dsr_msg.Rreq relayed)))
          end
    end
  end

let handle_rrep t ~sr_remaining ~(rrep : Dsr_msg.rrep) =
  Route_cache.add_path t.cache rrep.full_route;
  if Node_id.equal rrep.origin t.ctx.id then begin
    t.ctx.event "rrep_usable_recv";
    finish_discovery t rrep.dst
  end
  else
    match sr_remaining with
    | [] -> () (* misdelivered *)
    | next :: rest ->
        t.ctx.event "rrep_usable_recv";
        send_dsr t ~dst:(Net.Frame.Unicast next)
          (Dsr_msg.Rrep { sr_remaining = rest; rrep })

(* ---- Route errors and salvaging ---------------------------------------- *)

let handle_rerr t ~sr_remaining ~(rerr : Dsr_msg.rerr) =
  Route_cache.remove_link t.cache rerr.broken_from rerr.broken_to;
  if not (Node_id.equal rerr.err_dst t.ctx.id) then
    match sr_remaining with
    | [] -> ()
    | next :: rest ->
        send_dsr t ~dst:(Net.Frame.Unicast next)
          (Dsr_msg.Rerr { sr_remaining = rest; rerr })

let send_rerr t ~(data : Data_msg.t) ~full_route ~broken_to =
  (* Route the error back over the prefix this packet already crossed. *)
  let rec prefix_before acc = function
    | [] -> None
    | x :: _ when Node_id.equal x t.ctx.id -> Some acc
    | x :: rest -> prefix_before (x :: acc) rest
  in
  match prefix_before [] full_route with
  | None | Some [] -> () (* we are the source; nothing to send *)
  | Some (next :: rest) ->
      let rerr =
        {
          Dsr_msg.err_from = t.ctx.id;
          broken_from = t.ctx.id;
          broken_to;
          err_dst = data.Data_msg.src;
        }
      in
      send_dsr t ~dst:(Net.Frame.Unicast next)
        (Dsr_msg.Rerr { sr_remaining = rest; rerr })

let link_failure t payload ~next_hop =
  Route_cache.remove_link t.cache t.ctx.id next_hop;
  match payload with
  | Payload.Dsr (Dsr_msg.Data { full_route; data; salvage; _ }) -> (
      send_rerr t ~data ~full_route ~broken_to:next_hop;
      (* Salvage: an intermediate node with another cached route may
         re-source-route the packet itself. *)
      match Route_cache.find t.cache ~dst:data.Data_msg.dst with
      | Some hops when salvage < t.cfg.max_salvage ->
          send_data_via t hops data ~salvage:(salvage + 1)
      | Some _ | None ->
          if Node_id.equal data.Data_msg.src t.ctx.id then begin
            Routing.Packet_buffer.push t.buffer data;
            start_discovery t data.Data_msg.dst
          end
          else t.ctx.drop_data data ~reason:"link-failure")
  | Payload.Dsr _ | Payload.Data _ | Payload.Ldr _ | Payload.Aodv _
  | Payload.Olsr _ ->
      ()

(* ---- Wiring ------------------------------------------------------------ *)

let recv t payload ~from =
  match payload with
  | Payload.Dsr (Dsr_msg.Rreq r) -> handle_rreq t r ~from
  | Payload.Dsr (Dsr_msg.Rrep { sr_remaining; rrep }) ->
      handle_rrep t ~sr_remaining ~rrep
  | Payload.Dsr (Dsr_msg.Rerr { sr_remaining; rerr }) ->
      handle_rerr t ~sr_remaining ~rerr
  | Payload.Dsr (Dsr_msg.Data { sr_remaining; full_route; data; salvage }) ->
      handle_data t ~sr_remaining ~full_route ~data ~salvage
  | Payload.Data data ->
      (* Hop-by-hop data only reaches a DSR node in mixed-protocol unit
         tests; treat as local delivery if ours. *)
      if Node_id.equal data.Data_msg.dst t.ctx.id then t.ctx.deliver data
  | Payload.Ldr _ | Payload.Aodv _ | Payload.Olsr _ -> ()

(* Split a route at the first occurrence of [x]: (prefix incl. x, rest). *)
let split_at x route =
  let rec go acc = function
    | [] -> None
    | y :: rest when Node_id.equal y x -> Some (List.rev (y :: acc), rest)
    | y :: rest -> go (y :: acc) rest
  in
  go [] route

(* Automatic route shortening: we overheard [from] transmitting a packet
   whose remaining route reaches us only through intermediate hops — but
   we just proved we hear [from] directly.  Tell the source. *)
let maybe_shorten t ~from ~full_route ~sr_remaining (data : Data_msg.t) =
  if
    t.cfg.route_shortening
    && List.exists (Node_id.equal t.ctx.id) sr_remaining
    && not
         (Routing.Rreq_cache.mem t.shortened ~origin:data.Data_msg.src
            ~rreq_id:(Node_id.to_int data.Data_msg.dst))
  then
    match split_at from full_route with
    | None -> ()
    | Some (prefix, after_from) -> (
        match split_at t.ctx.id after_from with
        | None -> ()
        | Some (skipped_and_self, after_self) ->
            (* Only worth reporting if at least one hop is skipped. *)
            if List.length skipped_and_self >= 2 then begin
              Routing.Rreq_cache.add t.shortened ~origin:data.Data_msg.src
                ~rreq_id:(Node_id.to_int data.Data_msg.dst) ();
              let shortened = prefix @ (t.ctx.id :: after_self) in
              (* Route the gratuitous reply back over the transmitter. *)
              let sr = List.rev prefix in
              match sr with
              | [] -> ()
              | _ ->
                  t.ctx.event "rrep_init";
                  send_dsr t
                    ~dst:(Net.Frame.Unicast (List.hd sr))
                    (Dsr_msg.Rrep
                       {
                         sr_remaining = List.tl sr;
                         rrep =
                           {
                             Dsr_msg.origin = data.Data_msg.src;
                             dst = data.Data_msg.dst;
                             full_route = shortened;
                           };
                       })
            end)

let overheard t payload ~from ~dst:_ =
  (* Promiscuous snooping on source routes. *)
  match payload with
  | Payload.Dsr (Dsr_msg.Data { full_route; sr_remaining; data; _ }) ->
      Route_cache.add_path t.cache full_route;
      maybe_shorten t ~from ~full_route ~sr_remaining data
  | Payload.Dsr (Dsr_msg.Rrep { rrep; _ }) ->
      Route_cache.add_path t.cache rrep.full_route
  | Payload.Dsr _ | Payload.Data _ | Payload.Ldr _ | Payload.Aodv _
  | Payload.Olsr _ ->
      ()

(* Churn teardown (Agent.reset).  DSR keeps no sequence numbers, so
   crash and graceful leave tear down the same volatile state: cached
   source routes, duplicate tables, buffered data, pending
   discoveries. *)
let reset t ~crash:_ =
  Node_id.Table.iter
    (fun _ (p : pending) ->
      match p.p_timer with
      | Some h ->
          Engine.cancel t.ctx.engine h;
          p.p_timer <- None
      | None -> ())
    t.pending;
  Node_id.Table.reset t.pending;
  Routing.Packet_buffer.clear t.buffer ~reason:"node-down";
  Route_cache.clear t.cache;
  Routing.Rreq_cache.clear t.seen;
  Routing.Rreq_cache.clear t.shortened

let factory ?(config = default_config) () (ctx : RA.ctx) =
  let t =
    {
      ctx;
      cfg = config;
      cache =
        Route_cache.create ~engine:ctx.engine ~owner:ctx.id
          ~capacity:config.cache_capacity ~ttl:config.cache_ttl;
      seen = Routing.Rreq_cache.create ~engine:ctx.engine ~ttl:(Time.sec 30.);
      shortened = Routing.Rreq_cache.create ~engine:ctx.engine ~ttl:(Time.sec 1.);
      buffer =
        Routing.Packet_buffer.create ~obs:ctx.obs
          ~owner:(Node_id.to_int ctx.id) ~engine:ctx.engine
          ~capacity:config.buffer_capacity ~max_age:config.buffer_max_age
          ~on_drop:ctx.drop_data ();
      next_rreq_id = 0;
      pending = Node_id.Table.create 8;
    }
  in
  {
    RA.origin_data = (fun msg -> origin_data t msg);
    recv = (fun payload ~from -> recv t payload ~from);
    overheard = (fun payload ~from ~dst -> overheard t payload ~from ~dst);
    link_failure = (fun payload ~next_hop -> link_failure t payload ~next_hop);
    start = (fun () -> ());
    successor = (fun _ -> None);
    own_seqno = (fun () -> 0.);
    invariants = (fun _ -> None);
    route_stats = (fun () -> (0, 0, 0));
    reset = (fun ~crash -> reset t ~crash);
  }
