(** Run tracing.

    Human-readable event traces at the node-stack boundaries — every
    frame on the air, every delivery, drop, table write and link
    failure — rendered from the {!Obs} event bus through the {!Logs}
    library under the source ["manet"].  Disabled (and near-free)
    unless a reporter is installed and the source's level allows
    [Debug]; {!enable} does both, as the CLI's [--trace] flag. *)

val src : Logs.src

val enable : ?out:Format.formatter -> unit -> unit
(** Install a reporter printing one line per event (simulation time,
    node, event) to [out] (default stderr) and set the source to
    [Debug].

    The reporter {e composes} with whatever reporter is installed at
    the time of the call: reports from the ["manet"] source are
    formatted to [out], reports from every other source are forwarded
    to the previous reporter unchanged.  An application can therefore
    set up its own {!Logs} reporter first and still turn tracing on
    without losing its logs.  (Calling [Logs.set_reporter] {e after}
    [enable] replaces the trace reporter — re-run [enable] to layer it
    back on top.) *)

val on : unit -> bool
(** Whether the ["manet"] source is at [Debug] — the same check
    {!obs_sink} performs per event; the runner uses it to decide
    whether to attach the sink at all. *)

val obs_sink : Obs.Bus.t -> Obs.Event.t -> unit
(** A {!Obs.Bus} sink rendering each event as one log line.  Re-checks
    {!on} per event, so attaching it while the source is silenced costs
    one level read per event and prints nothing. *)
