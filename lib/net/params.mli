(** Radio and MAC parameters.

    Defaults follow the 802.11 DSSS configuration of the paper's GloMoSim
    setup: 2 Mbps data rate and a 275 m nominal transmission range. *)

type t = {
  range_m : float;  (** unit-disk decode range *)
  cs_range_m : float;
      (** carrier-sense / interference range.  Real receivers detect
          carriers well below the decode threshold (ns-2 ships 550 m CS
          for a 250 m decode range); modelling it suppresses most
          hidden-terminal collisions, standing in for RTS/CTS + NAV. *)
  capture_distance_ratio : float;
      (** capture effect: a reception survives an interferer whose
          distance to the receiver is at least this factor times the
          wanted transmitter's distance (10 dB SIR under a path-loss
          exponent of 4 gives 1.78).  Two comparable-power overlaps
          corrupt both frames. *)
  bit_rate : float;  (** bits per second *)
  preamble : Sim.Time.t;  (** PHY preamble+PLCP header airtime *)
  slot : Sim.Time.t;
  sifs : Sim.Time.t;
  difs : Sim.Time.t;
  cw_min : int;  (** initial contention window (slots - 1) *)
  cw_max : int;
  mac_overhead_bytes : int;  (** MAC header + FCS on data frames *)
  ack_bytes : int;
  retry_limit : int;  (** unicast attempts before declaring link failure *)
  ifq_capacity : int;  (** interface queue length, packets *)
}

val default : t

val frame_airtime : t -> bytes:int -> Sim.Time.t
(** Airtime of [bytes] total on-air octets (preamble + serialization) —
    feed it {!Frame.encoded_length}. *)

val data_airtime : t -> payload_bytes:int -> Sim.Time.t
(** Airtime of a data frame carrying [payload_bytes] of network payload;
    [frame_airtime] on [payload_bytes + mac_overhead_bytes]. *)

val ack_airtime : t -> Sim.Time.t

val ack_timeout : t -> Sim.Time.t
(** How long a sender waits for an ACK after its transmission ends. *)
