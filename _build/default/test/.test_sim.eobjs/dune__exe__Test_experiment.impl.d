test/test_experiment.ml: Alcotest Array Engine Experiment Format Geom List Logs Metrics Net Packets Printf Rng Runner Scenario Sim Stats Sweep Time Trace Traffic
