(** Builds and runs one complete simulation from a {!Scenario.t}:
    mobility processes, radio channel, per-node MAC + routing agent,
    CBR workload, metrics hooks, the observability bus, and
    (optionally) the loop-freedom auditor, invariant monitor, JSONL
    trace writer and time-series sampler. *)

type outcome = {
  metrics : Metrics.t;
  summary : Metrics.summary;
  events_processed : int;
  mac_queue_drops : int;  (** interface-queue overflows, all nodes *)
  mac_unicast_failures : int;  (** retry-limit link failures, all nodes *)
  transmissions : int;  (** every frame on the air, ACKs included *)
  invariant_violations : int;
      (** monitor verdict; 0 when no monitor was attached *)
  pdes_windows : int;
      (** synchronous windows executed; 0 on a classic (unsharded) run *)
  pdes_messages : int;
      (** cross-shard transmissions delivered; 0 on a classic run *)
  pdes_worker_minor_words : float array;
      (** per-worker-domain minor allocation ({!Sim.Pdes.worker_minor_words});
          empty on a classic run or when the run executed inline *)
}

(** A handle over a built-but-not-yet-run simulation, for tests and
    examples that need to inspect or intervene mid-run. *)
type sim = {
  engine : Sim.Engine.t;
  agents : Routing.Agent.t array;
  macs : Net.Mac.t array;
  channel : Net.Channel.t;
  bus : Obs.Bus.t;  (** the run's observability bus *)
  inject : src:int -> dst:int -> unit;
      (** originate one data packet now (unique uid per call) *)
  sim_metrics : Metrics.t;
  finalize : unit -> unit;  (** collect end-of-run gauges *)
  mutable monitor : Obs.Monitor.t option;
  mutable cleanup : (unit -> unit) list;
      (** file closers etc., run by {!finish} *)
}

(** A handle over a built-but-not-yet-run {e sharded} simulation
    ([shards >= 2]), passed to [run]'s [prepare_pdes] hook. *)
type psim = {
  p_shards : int;  (** number of regions K *)
  p_engines : Sim.Engine.t array;  (** one engine per region *)
  p_agents : Routing.Agent.t array;  (** global, indexed by node id *)
  p_home : int array;  (** node id -> region of its initial position *)
  p_request_injection : at:Sim.Time.t -> (unit -> unit) -> unit;
      (** run [fn] at the first window boundary at or after [at], with
          every shard quiesced — the sharded analogue of scheduling a
          fault-injection event.  [fn] may inspect global state and
          schedule events at times [>= at] on any [p_engines].(r). *)
}

val resolve_shards : Scenario.t -> int
(** The region count a scenario will actually run with:
    [sc.shards], with [0] resolved to the recommended domain count
    capped at the node count ({!Parallel.effective_jobs}). *)

val lookahead_of : Net.Params.t -> Sim.Time.t
(** The PDES window width and cross-shard delivery latency,
    [difs + slot] (70 us for the default parameters).  See
    docs/PARALLELISM.md for the derivation. *)

val run :
  ?on_engine:(Sim.Engine.t -> unit) ->
  ?obs:Obs.Bus.t ->
  ?monitor:bool ->
  ?trace_out:string ->
  ?pcap_out:string ->
  ?sample:Sim.Time.t ->
  ?sample_out:string ->
  ?telemetry_out:string ->
  ?telemetry_prom:string ->
  ?telemetry_every:Sim.Time.t ->
  ?prepare:(sim -> unit) ->
  ?prepare_pdes:(psim -> unit) ->
  ?pdes_workers:int ->
  Scenario.t ->
  outcome
(** Build, optionally instrument, run to completion and summarise.

    When {!resolve_shards} is [>= 2] the run is dispatched to the
    spatially-sharded PDES engine ({!Sim.Pdes}; docs/PARALLELISM.md):
    K vertical regions, each with its own engine, channel, bus and
    metrics, advanced in synchronous {!lookahead_of}-wide windows.
    [monitor] and the scenario's [audit_loops] work under sharding
    (they pin execution to one worker domain); [prepare_pdes] is the
    sharded analogue of [prepare]; [pdes_workers] caps the worker
    domains (default: recommended domain count, capped at K).
    [on_engine], [obs], [pcap_out], [sample] and [prepare] raise
    [Invalid_argument] under sharding, as does [prepare_pdes] on a
    classic run.  [trace_out] works under sharding: each region
    streams to [<path>.shard<r>] and the files are k-way merged by
    virtual time (ties keep shard order) into [path] when the run
    ends — on a border-free scenario the result is byte-identical to
    the classic trace.

    [obs]: supply the observability bus (default: a fresh one —
    disabled unless something below attaches a sink).
    [monitor]: attach the continuous LDR invariant monitor.
    [trace_out]: stream every bus event as JSONL to this file.
    [pcap_out]: capture every transmitted frame, byte-exact, to this
    pcap file ({!Net.Pcap}).
    [sample]: write time-series gauges every [sample] of virtual time
    to [sample_out] (default ["samples.jsonl"]); a final sample is
    always taken at the horizon, whatever the interval.
    [telemetry_out] / [telemetry_prom]: runtime telemetry
    ({!Obs.Telemetry}) as JSONL samples and/or an atomically-replaced
    Prometheus text snapshot, every [telemetry_every] of virtual time
    (default 1 s) plus once at the horizon.  Works on both paths:
    classic runs sample from an engine cadence, sharded runs from the
    quiesced window-boundary callback — neither perturbs the
    simulation.
    [prepare]: runs on the built simulation just before the engine
    starts — the hook for fault injection ({!Fault}) and custom sinks.

    Trace and sample files are flushed and closed before returning.
    The JSONL sink is attached {e before} the monitor, so a violation
    line in the trace always follows the table write that caused
    it. *)

val build : ?on_engine:(Sim.Engine.t -> unit) -> ?obs:Obs.Bus.t ->
  Scenario.t -> sim
(** Construct the simulation with its workload scheduled; the caller
    runs the engine.  When the ["manet"] trace source is enabled
    ({!Trace.on}), a pretty-printing sink is attached to the bus —
    except on {!Parallel} worker domains, where the sink's global Logs
    reporter and shared formatter would race across trials.

    Every piece of mutable state a run touches is created here, per
    simulation: engine + RNG streams, metrics, the observability bus
    (with its intern table), the loop-audit scratch array.  Nothing is
    shared across two [build]s, which is what makes trials safe to run
    on concurrent domains (see [docs/PARALLELISM.md]).  The one
    exception is an explicitly shared [?obs] bus: callers fanning
    trials in parallel must not pass one. *)

val attach_trace : sim -> string -> unit
(** Open [path] and stream every subsequent bus event to it as JSONL;
    closed by {!finish}. *)

val attach_pcap : sim -> string -> unit
(** Open [path] and capture every transmitted frame to it as pcap
    ({!Net.Pcap.write} from a channel transmit hook); closed by
    {!finish}. *)

val attach_monitor : ?ring:int -> ?quiet:bool -> sim -> Obs.Monitor.t
(** Attach the continuous invariant monitor, wired to the agents'
    {!Routing.Agent.invariants}.  Also stored in [sim.monitor]. *)

val attach_sampler : sim -> every:Sim.Time.t -> until:Sim.Time.t ->
  string -> unit
(** Schedule gauge sampling to a JSONL file; closed by {!finish}.  A
    final sample fires at exactly [until] even when [until] is not a
    multiple of [every]. *)

val attach_telemetry : sim -> ?jsonl:string -> ?prom:string ->
  every:Sim.Time.t -> until:Sim.Time.t -> unit -> unit
(** Schedule {!Obs.Telemetry} sampling every [every] of virtual time
    (plus a final sample at [until]); the collector is closed by
    {!finish}. *)

val finish : sim -> unit
(** Run [finalize] and every registered cleanup (idempotent on the
    cleanup list).  {!run} calls this itself. *)
