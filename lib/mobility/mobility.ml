open Sim

(* A leg is one linear motion (or pause, when [from = dest]) starting at
   [depart] and ending at [arrive].  Models generate legs on demand.

   Legs used to be produced by a per-node [next_leg : leg -> leg] closure
   chain; generation is now a variant dispatch ([gen]) so that the hot
   per-node state can live in flat arrays ({!Pos_store}) while the cold
   leg-generation path — which draws RNG in exactly the same order as
   before — stays here. *)
type leg = {
  depart : Time.t;
  arrive : Time.t;
  from_pos : Geom.Vec2.t;
  dest : Geom.Vec2.t;
}

type gen =
  | Static
  | Waypoint of {
      terrain : Geom.Terrain.t;
      rng : Rng.t;
      speed_min : float;
      speed_max : float;
      pause : Time.t;
    }
  | Walk of {
      terrain : Geom.Terrain.t;
      rng : Rng.t;
      speed : float;
      epoch : Time.t;
    }
  | Scripted of { mutable remaining : (Time.t * Geom.Vec2.t) list }
  | Manhattan of {
      terrain : Geom.Terrain.t;
      rng : Rng.t;
      spacing : float;
      speed_min : float;
      speed_max : float;
      pause : Time.t;
      mutable dir : int; (* 0 = +x, 1 = +y, 2 = -x, 3 = -y *)
    }
  | Rpgm of { group : group; ox : float; oy : float }

and t = {
  name : string;
  mutable leg : leg;
  mutable leg_ix : int; (* index of [leg] in the model's leg sequence *)
  mutable last_query : Time.t;
  gen : gen;
}

(* An RPGM group's virtual reference point: a random-waypoint process
   whose legs are memoized in index order, so members at different leg
   indices (PDES shards refresh nodes at different times) can each fetch
   leg [k] without querying a shared process non-monotonically. *)
and group = {
  g_terrain : Geom.Terrain.t;
  g_rng : Rng.t;
  g_speed_min : float;
  g_speed_max : float;
  g_pause : Time.t;
  mutable g_legs : leg array;
  mutable g_len : int;
}

let model_name t = t.name

let position_on leg t =
  if Time.(t <= leg.depart) then leg.from_pos
  else if Time.(t >= leg.arrive) then leg.dest
  else begin
    let total = Time.to_sec (Time.diff leg.arrive leg.depart) in
    let gone = Time.to_sec (Time.diff t leg.depart) in
    Geom.Vec2.lerp leg.from_pos leg.dest (gone /. total)
  end

let forever = Time.sec 1e9
let travel_time a b speed = Time.sec (Geom.Vec2.dist a b /. speed)

let waypoint_next ~terrain ~rng ~speed_min ~speed_max ~pause prev =
  if Geom.Vec2.equal prev.from_pos prev.dest then begin
    (* Pause done: move to a fresh waypoint. *)
    let dest = Geom.Terrain.random_point terrain rng in
    let speed = Rng.float_in rng speed_min speed_max in
    {
      depart = prev.arrive;
      arrive = Time.add prev.arrive (travel_time prev.dest dest speed);
      from_pos = prev.dest;
      dest;
    }
  end
  else
    (* Arrived: pause in place. *)
    {
      depart = prev.arrive;
      arrive = Time.add prev.arrive pause;
      from_pos = prev.dest;
      dest = prev.dest;
    }

let manhattan_step spacing (p : Geom.Vec2.t) = function
  | 0 -> Geom.Vec2.v (p.x +. spacing) p.y
  | 1 -> Geom.Vec2.v p.x (p.y +. spacing)
  | 2 -> Geom.Vec2.v (p.x -. spacing) p.y
  | _ -> Geom.Vec2.v p.x (p.y -. spacing)

let manhattan_next ~terrain ~rng ~spacing ~speed_min ~speed_max ~pause
    ~set_dir ~dir prev =
  if
    (not (Geom.Vec2.equal prev.from_pos prev.dest))
    && Time.(pause > Time.zero)
  then
    {
      depart = prev.arrive;
      arrive = Time.add prev.arrive pause;
      from_pos = prev.dest;
      dest = prev.dest;
    }
  else begin
    (* At an intersection: keep straight with probability 1/2, else turn
       left or right with probability 1/4 each; a move that would leave
       the terrain rotates left until one fits. *)
    let u = Rng.float rng 1. in
    let want =
      if u < 0.5 then dir
      else if u < 0.75 then (dir + 1) land 3
      else (dir + 3) land 3
    in
    let rec pick d k =
      if k = 4 then prev.dest (* boxed in: stay put *)
      else
        let q = manhattan_step spacing prev.dest d in
        if Geom.Terrain.contains terrain q then begin
          set_dir d;
          q
        end
        else pick ((d + 1) land 3) (k + 1)
    in
    let dest = pick want 0 in
    let speed = Rng.float_in rng speed_min speed_max in
    if Geom.Vec2.equal dest prev.dest then
      (* Degenerate terrain smaller than one block: idle a second. *)
      {
        depart = prev.arrive;
        arrive = Time.add prev.arrive (Time.sec 1.);
        from_pos = prev.dest;
        dest = prev.dest;
      }
    else
      {
        depart = prev.arrive;
        arrive = Time.add prev.arrive (travel_time prev.dest dest speed);
        from_pos = prev.dest;
        dest;
      }
  end

let group_leg g k =
  while g.g_len <= k do
    let prev = g.g_legs.(g.g_len - 1) in
    let next =
      waypoint_next ~terrain:g.g_terrain ~rng:g.g_rng
        ~speed_min:g.g_speed_min ~speed_max:g.g_speed_max ~pause:g.g_pause
        prev
    in
    if g.g_len = Array.length g.g_legs then begin
      let bigger = Array.make (2 * Array.length g.g_legs) next in
      Array.blit g.g_legs 0 bigger 0 g.g_len;
      g.g_legs <- bigger
    end;
    g.g_legs.(g.g_len) <- next;
    g.g_len <- g.g_len + 1
  done;
  g.g_legs.(k)

let rpgm_translate ~terrain ~ox ~oy (l : leg) =
  let shift (p : Geom.Vec2.t) =
    Geom.Terrain.clamp terrain (Geom.Vec2.v (p.x +. ox) (p.y +. oy))
  in
  { l with from_pos = shift l.from_pos; dest = shift l.dest }

(* Generate the leg after [t.leg] and install it.  Must keep legs
   contiguous: the new leg departs where and when the previous arrived. *)
let advance t =
  let prev = t.leg in
  let next =
    match t.gen with
    | Static -> { prev with depart = prev.arrive; arrive = forever }
    | Waypoint { terrain; rng; speed_min; speed_max; pause } ->
        waypoint_next ~terrain ~rng ~speed_min ~speed_max ~pause prev
    | Walk { terrain; rng; speed; epoch } ->
        let theta = Rng.float rng (2. *. Float.pi) in
        let d = Time.to_sec epoch *. speed in
        let raw =
          Geom.Vec2.add prev.dest
            (Geom.Vec2.v (d *. cos theta) (d *. sin theta))
        in
        (* Reflection approximated by clamping to the boundary; with short
           epochs the difference from exact reflection is negligible and
           the walk stays uniform enough for test purposes. *)
        let dest = Geom.Terrain.clamp terrain raw in
        {
          depart = prev.arrive;
          arrive = Time.add prev.arrive (travel_time prev.dest dest speed);
          from_pos = prev.dest;
          dest;
        }
    | Scripted s -> (
        match s.remaining with
        | [] ->
            {
              depart = prev.arrive;
              arrive = forever;
              from_pos = prev.dest;
              dest = prev.dest;
            }
        | (time, p) :: tl ->
            s.remaining <- tl;
            { depart = prev.arrive; arrive = time; from_pos = prev.dest; dest = p })
    | Manhattan m ->
        manhattan_next ~terrain:m.terrain ~rng:m.rng ~spacing:m.spacing
          ~speed_min:m.speed_min ~speed_max:m.speed_max ~pause:m.pause
          ~set_dir:(fun d -> m.dir <- d)
          ~dir:m.dir prev
    | Rpgm { group; ox; oy } ->
        rpgm_translate ~terrain:group.g_terrain ~ox ~oy
          (group_leg group (t.leg_ix + 1))
  in
  t.leg <- next;
  t.leg_ix <- t.leg_ix + 1

(* Re-query tolerance: PDES border mirroring and churn rejoin can ask for
   a position slightly behind the newest query (at most one conservative
   lookahead window).  Same-leg re-queries are answered exactly; queries
   up to [max_backtrack] before the current leg's departure clamp to the
   leg's start point (error bounded by speed x backtrack).  1 ms is far
   above any MAC lookahead (difs + slot ~ 70 us). *)
let max_backtrack = Time.ms 1.

let position t time =
  if Time.(time >= t.last_query) then begin
    t.last_query <- time;
    while Time.(time > t.leg.arrive) do
      advance t
    done;
    position_on t.leg time
  end
  else if Time.(Time.add time max_backtrack >= t.leg.depart) then
    position_on t.leg time
  else
    invalid_arg
      "Mobility.position: query precedes the current leg by more than the \
       backtrack tolerance"

let static pos =
  let leg =
    { depart = Time.zero; arrive = forever; from_pos = pos; dest = pos }
  in
  { name = "static"; leg; leg_ix = 0; last_query = Time.zero; gen = Static }

let waypoint ~terrain ~rng ~speed_min ~speed_max ~pause ~start =
  if speed_min <= 0. || speed_min > speed_max then
    invalid_arg "Mobility.waypoint: need 0 < speed_min <= speed_max";
  (* Legs alternate pause (from = dest) and motion. *)
  let first =
    { depart = Time.zero; arrive = pause; from_pos = start; dest = start }
  in
  {
    name = "waypoint";
    leg = first;
    leg_ix = 0;
    last_query = Time.zero;
    gen = Waypoint { terrain; rng; speed_min; speed_max; pause };
  }

let random_walk ~terrain ~rng ~speed ~epoch ~start =
  if speed <= 0. then invalid_arg "Mobility.random_walk: non-positive speed";
  let first =
    { depart = Time.zero; arrive = Time.zero; from_pos = start; dest = start }
  in
  {
    name = "random_walk";
    leg = first;
    leg_ix = 0;
    last_query = Time.zero;
    gen = Walk { terrain; rng; speed; epoch };
  }

let scripted points =
  let rec check = function
    | [] | [ _ ] -> ()
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        if Time.(t2 <= t1) then
          invalid_arg "Mobility.scripted: times must increase";
        check rest
  in
  match points with
  | [] -> invalid_arg "Mobility.scripted: empty trajectory"
  | (t0, p0) :: rest ->
      check points;
      let first =
        { depart = Time.zero; arrive = t0; from_pos = p0; dest = p0 }
      in
      {
        name = "scripted";
        leg = first;
        leg_ix = 0;
        last_query = Time.zero;
        gen = Scripted { remaining = rest };
      }

let manhattan ~terrain ~rng ~spacing ~speed_min ~speed_max ~pause ~start =
  if spacing <= 0. then invalid_arg "Mobility.manhattan: non-positive spacing";
  if speed_min <= 0. || speed_min > speed_max then
    invalid_arg "Mobility.manhattan: need 0 < speed_min <= speed_max";
  (* Snap the start onto the street lattice. *)
  let snap v lim =
    Float.max 0. (Float.min lim (Float.round (v /. spacing) *. spacing))
  in
  let start =
    Geom.Vec2.v
      (snap start.Geom.Vec2.x terrain.Geom.Terrain.width)
      (snap start.Geom.Vec2.y terrain.Geom.Terrain.height)
  in
  let dir = Rng.int rng 4 in
  let first =
    { depart = Time.zero; arrive = pause; from_pos = start; dest = start }
  in
  {
    name = "manhattan";
    leg = first;
    leg_ix = 0;
    last_query = Time.zero;
    gen = Manhattan { terrain; rng; spacing; speed_min; speed_max; pause; dir };
  }

let rpgm_group ~terrain ~rng ~speed_min ~speed_max ~pause ~start =
  if speed_min <= 0. || speed_min > speed_max then
    invalid_arg "Mobility.rpgm_group: need 0 < speed_min <= speed_max";
  let first =
    { depart = Time.zero; arrive = pause; from_pos = start; dest = start }
  in
  {
    g_terrain = terrain;
    g_rng = rng;
    g_speed_min = speed_min;
    g_speed_max = speed_max;
    g_pause = pause;
    g_legs = Array.make 8 first;
    g_len = 1;
  }

let rpgm_member group ~ox ~oy =
  let first =
    rpgm_translate ~terrain:group.g_terrain ~ox ~oy (group_leg group 0)
  in
  {
    name = "rpgm";
    leg = first;
    leg_ix = 0;
    last_query = Time.zero;
    gen = Rpgm { group; ox; oy };
  }

(* Struct-of-arrays position store: the per-node hot state (cached
   position + current leg window) lives in flat unboxed float/int arrays
   indexed by node id.  The common query — interpolate inside the current
   leg — runs entirely on scalars with zero allocation; only when a query
   passes the cached leg's arrival does it fall back to the underlying
   process, which advances legs and draws RNG in exactly the record
   path's per-node order.  Values are bit-identical to {!position} by
   construction: the scalar fast path replicates [position_on] +
   [Vec2.lerp] term for term. *)
module Pos_store = struct
  type process = t

  type t = {
    mob : process array;
    x : float array; (* cached position at [last_t] *)
    y : float array;
    depart : int array; (* current leg window, ns *)
    arrive : int array;
    fx : float array; (* leg endpoints *)
    fy : float array;
    dx : float array;
    dy : float array;
    last_t : int array; (* last refreshed query time, ns *)
  }

  let cache_leg s i =
    let l = s.mob.(i).leg in
    s.depart.(i) <- (l.depart :> int);
    s.arrive.(i) <- (l.arrive :> int);
    s.fx.(i) <- l.from_pos.Geom.Vec2.x;
    s.fy.(i) <- l.from_pos.Geom.Vec2.y;
    s.dx.(i) <- l.dest.Geom.Vec2.x;
    s.dy.(i) <- l.dest.Geom.Vec2.y

  let of_array mobs ~(at : Time.t) =
    let n = Array.length mobs in
    let s =
      {
        mob = mobs;
        x = Array.make n 0.;
        y = Array.make n 0.;
        depart = Array.make n 0;
        arrive = Array.make n 0;
        fx = Array.make n 0.;
        fy = Array.make n 0.;
        dx = Array.make n 0.;
        dy = Array.make n 0.;
        last_t = Array.make n (at :> int);
      }
    in
    for i = 0 to n - 1 do
      let p = position mobs.(i) at in
      cache_leg s i;
      s.x.(i) <- p.Geom.Vec2.x;
      s.y.(i) <- p.Geom.Vec2.y
    done;
    s

  let length s = Array.length s.mob
  let proc s i = s.mob.(i)

  let refresh s i time =
    let tn = (time : Time.t :> int) in
    if tn <> s.last_t.(i) then begin
      s.last_t.(i) <- tn;
      if tn > s.arrive.(i) then begin
        (* Leg exhausted: advance the underlying process (RNG draws in
           the record path's per-node order) and re-cache its leg. *)
        let p = position s.mob.(i) time in
        cache_leg s i;
        s.x.(i) <- p.Geom.Vec2.x;
        s.y.(i) <- p.Geom.Vec2.y
      end
      else if tn <= s.depart.(i) then begin
        s.x.(i) <- s.fx.(i);
        s.y.(i) <- s.fy.(i)
      end
      else begin
        (* Scalar replica of [position_on] + [Vec2.lerp].  Spelled as
           local float arithmetic rather than [Time.to_sec]/[Time.diff]:
           the cross-module calls box their float results on the classic
           (non-flambda) compiler, and this is the hottest loop in the
           SoA sweep.  [to_sec] is [float_of_int ns /. 1e9], so the
           rounding is term-for-term identical. *)
        let dep = s.depart.(i) in
        let total = float_of_int (s.arrive.(i) - dep) /. 1e9 in
        let gone = float_of_int (tn - dep) /. 1e9 in
        let u = gone /. total in
        s.x.(i) <- s.fx.(i) +. ((s.dx.(i) -. s.fx.(i)) *. u);
        s.y.(i) <- s.fy.(i) +. ((s.dy.(i) -. s.fy.(i)) *. u)
      end
    end

  let x s i = s.x.(i)
  let y s i = s.y.(i)

  let position s i time =
    refresh s i time;
    Geom.Vec2.v s.x.(i) s.y.(i)
end
