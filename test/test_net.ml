(* Tests for the radio channel and the CSMA/CA MAC. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let n = Node_id.of_int

let data_payload ?(bytes = 512) ~src ~dst () =
  Payload.Data
    (Data_msg.fresh ~flow_id:0 ~seq:0 ~src:(n src) ~dst:(n dst)
       ~payload_bytes:bytes ~origin_time:Time.zero)

(* A small rig: static nodes at given positions, MACs with recording
   callbacks. *)
type node_rig = {
  mac : Net.Mac.t;
  received : (Payload.t * Node_id.t) list ref;
  overheard : int ref;
  failures : (Payload.t * Node_id.t) list ref;
}

let rig ?(params = Net.Params.default) positions =
  let engine = Engine.create ~seed:5 () in
  let channel = Net.Channel.create ~engine ~params () in
  let nodes =
    List.mapi
      (fun i pos ->
        let received = ref [] and overheard = ref 0 and failures = ref [] in
        let mac =
          Net.Mac.create ~engine ~channel ~rng:(Rng.create (100 + i)) ~id:(n i)
            ~position:(fun () -> pos)
            {
              Net.Mac.receive =
                (fun p ~from -> received := (p, from) :: !received);
              promiscuous = (fun _ ~from:_ ~dst:_ -> incr overheard);
              link_failure =
                (fun p ~next_hop -> failures := (p, next_hop) :: !failures);
            }
        in
        { mac; received; overheard; failures })
      positions
  in
  (engine, channel, Array.of_list nodes)

let v = Geom.Vec2.v

(* ---- Ifq ------------------------------------------------------------- *)

let ifq_fifo () =
  let q = Net.Ifq.create ~capacity:3 in
  checkb "push1" true (Net.Ifq.push q 1);
  checkb "push2" true (Net.Ifq.push q 2);
  checki "len" 2 (Net.Ifq.length q);
  checkb "pop order" true (Net.Ifq.pop q = Some 1);
  checkb "pop order 2" true (Net.Ifq.pop q = Some 2);
  checkb "empty" true (Net.Ifq.pop q = None)

let ifq_drops_when_full () =
  let q = Net.Ifq.create ~capacity:2 in
  ignore (Net.Ifq.push q 1);
  ignore (Net.Ifq.push q 2);
  checkb "rejected" false (Net.Ifq.push q 3);
  checki "drop counted" 1 (Net.Ifq.drops q);
  checki "len still 2" 2 (Net.Ifq.length q)

(* ---- Params ----------------------------------------------------------- *)

let airtime_sanity () =
  let p = Net.Params.default in
  (* 512+20 byte payload + 34B MAC overhead at 2 Mbps + 192us preamble. *)
  let t = Net.Params.data_airtime p ~payload_bytes:532 in
  let expect_us = 192. +. (566. *. 8. /. 2.) in
  checkb "data airtime" true (abs_float (Time.to_us t -. expect_us) < 1.);
  checkb "ack shorter" true Time.(Net.Params.ack_airtime p < t);
  checkb "ack timeout covers ack" true
    Time.(Net.Params.ack_timeout p > Net.Params.ack_airtime p)

(* ---- Channel / MAC ----------------------------------------------------- *)

let unicast_delivery_and_ack () =
  let engine, _, nodes = rig [ v 0. 0.; v 100. 0. ] in
  let p = data_payload ~src:0 ~dst:1 () in
  Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1)) p;
  Engine.run ~until:(Time.ms 100.) engine;
  checki "delivered once" 1 (List.length !(nodes.(1).received));
  checki "no failures" 0 (List.length !(nodes.(0).failures));
  checki "sender sent one frame" 1 (Net.Mac.frames_sent nodes.(0).mac)

let unicast_out_of_range_fails () =
  let engine, _, nodes = rig [ v 0. 0.; v 1000. 0. ] in
  let p = data_payload ~src:0 ~dst:1 () in
  Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1)) p;
  Engine.run ~until:(Time.sec 2.) engine;
  checki "nothing delivered" 0 (List.length !(nodes.(1).received));
  (match !(nodes.(0).failures) with
  | [ (_, nh) ] -> checkb "failure names next hop" true (Node_id.equal nh (n 1))
  | other -> Alcotest.failf "expected 1 failure, got %d" (List.length other));
  (* All retry attempts were spent. *)
  checki "retry limit attempts" Net.Params.default.retry_limit
    (Net.Mac.frames_sent nodes.(0).mac);
  checki "failure gauge" 1 (Net.Mac.unicast_failures nodes.(0).mac)

let broadcast_reaches_neighbors_only () =
  let engine, _, nodes = rig [ v 0. 0.; v 200. 0.; v 260. 0.; v 900. 0. ] in
  let p = data_payload ~src:0 ~dst:3 () in
  Net.Mac.send nodes.(0).mac ~dst:Net.Frame.Broadcast p;
  Engine.run ~until:(Time.ms 100.) engine;
  checki "node1 in range" 1 (List.length !(nodes.(1).received));
  checki "node2 in range" 1 (List.length !(nodes.(2).received));
  checki "node3 out of range" 0 (List.length !(nodes.(3).received))

let promiscuous_overhears () =
  (* Node 2 is within range of node 0's unicast to node 1. *)
  let engine, _, nodes = rig [ v 0. 0.; v 100. 0.; v 150. 0. ] in
  Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1))
    (data_payload ~src:0 ~dst:1 ());
  Engine.run ~until:(Time.ms 100.) engine;
  checki "node1 received" 1 (List.length !(nodes.(1).received));
  checkb "node2 overheard" true (!(nodes.(2).overheard) >= 1);
  checki "node2 did not 'receive'" 0 (List.length !(nodes.(2).received))

let queue_serializes () =
  let engine, _, nodes = rig [ v 0. 0.; v 100. 0. ] in
  for _ = 1 to 5 do
    Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1))
      (data_payload ~src:0 ~dst:1 ())
  done;
  Engine.run ~until:(Time.sec 1.) engine;
  checki "all five delivered" 5 (List.length !(nodes.(1).received))

let ifq_overflow_drops () =
  let params = { Net.Params.default with ifq_capacity = 3 } in
  let engine, _, nodes = rig ~params [ v 0. 0.; v 100. 0. ] in
  for _ = 1 to 10 do
    Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1))
      (data_payload ~src:0 ~dst:1 ())
  done;
  Engine.run ~until:(Time.sec 1.) engine;
  checkb "some drops" true (Net.Mac.queue_drops nodes.(0).mac > 0);
  checkb "some delivered" true (List.length !(nodes.(1).received) >= 3)

let hidden_terminal_collision () =
  (* 0 and 2 are mutually out of carrier-sense range but both reach 1:
     simultaneous sends collide at 1 (capture cannot save two
     equidistant transmitters). *)
  let params = { Net.Params.default with cs_range_m = 275. } in
  let engine, _, nodes = rig ~params [ v 0. 0.; v 250. 0.; v 500. 0. ] in
  Net.Mac.send nodes.(0).mac ~dst:Net.Frame.Broadcast (data_payload ~src:0 ~dst:1 ());
  Net.Mac.send nodes.(2).mac ~dst:Net.Frame.Broadcast (data_payload ~src:2 ~dst:1 ());
  (* Run only briefly: broadcasts have no retry, overlapping frames are
     both lost at node 1. *)
  Engine.run ~until:(Time.ms 50.) engine;
  checki "collision at the middle node" 0 (List.length !(nodes.(1).received))

let capture_effect_saves_near_frame () =
  (* Same hidden-terminal setup but the wanted transmitter is much closer
     than the interferer: the near frame survives. *)
  let params = { Net.Params.default with cs_range_m = 275. } in
  let engine, _, nodes = rig ~params [ v 0. 0.; v 50. 0.; v 500. 0. ] in
  Net.Mac.send nodes.(0).mac ~dst:Net.Frame.Broadcast (data_payload ~src:0 ~dst:1 ());
  Net.Mac.send nodes.(2).mac ~dst:Net.Frame.Broadcast (data_payload ~src:2 ~dst:1 ());
  Engine.run ~until:(Time.ms 50.) engine;
  checki "near frame captured" 1 (List.length !(nodes.(1).received))

let carrier_sense_defers () =
  (* Nodes 0 and 2 both in CS range of each other; both flood: the second
     defers and both frames get through to node 1 (no collision). *)
  let engine, _, nodes = rig [ v 0. 0.; v 100. 0.; v 200. 0. ] in
  Net.Mac.send nodes.(0).mac ~dst:Net.Frame.Broadcast (data_payload ~src:0 ~dst:1 ());
  Net.Mac.send nodes.(2).mac ~dst:Net.Frame.Broadcast (data_payload ~src:2 ~dst:1 ());
  Engine.run ~until:(Time.ms 100.) engine;
  checki "both delivered" 2 (List.length !(nodes.(1).received))

let transmit_hook_counts () =
  let engine, channel, nodes = rig [ v 0. 0.; v 100. 0. ] in
  let count = ref 0 in
  Net.Channel.add_transmit_hook channel (fun _ _ -> incr count);
  Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1))
    (data_payload ~src:0 ~dst:1 ());
  Engine.run ~until:(Time.ms 100.) engine;
  (* Data frame + ACK. *)
  checki "hook saw data+ack" 2 !count;
  checki "channel counter" 2 (Net.Channel.transmissions channel)

let neighbors_in_range_query () =
  let _, channel, nodes = rig [ v 0. 0.; v 100. 0.; v 1000. 0. ] in
  let neigh = Net.Channel.neighbors_in_range channel (Net.Mac.radio nodes.(0).mac) in
  checki "one neighbor" 1 (List.length neigh);
  checkb "it is node 1" true (List.exists (Node_id.equal (n 1)) neigh)

let duplicate_on_lost_ack () =
  (* Force an ACK loss via an interferer placed so that it is hidden from
     the receiver's ACK... simpler: out-of-range unicast triggers
     repeated data transmissions, shown by frames_sent. *)
  let engine, _, nodes = rig [ v 0. 0.; v 1000. 0. ] in
  Net.Mac.send nodes.(0).mac ~dst:(Net.Frame.Unicast (n 1))
    (data_payload ~src:0 ~dst:1 ());
  Engine.run ~until:(Time.sec 2.) engine;
  checkb "retransmissions happened" true (Net.Mac.frames_sent nodes.(0).mac > 1)

let broadcast_no_retry () =
  let engine, _, nodes = rig [ v 0. 0.; v 1000. 0. ] in
  Net.Mac.send nodes.(0).mac ~dst:Net.Frame.Broadcast (data_payload ~src:0 ~dst:1 ());
  Engine.run ~until:(Time.sec 2.) engine;
  checki "single attempt" 1 (Net.Mac.frames_sent nodes.(0).mac);
  checki "no failure callback" 0 (List.length !(nodes.(0).failures))

let mobility_breaks_link () =
  (* A node walking out of range: early unicasts succeed, later ones
     fail — the mobility-driven position function is consulted live. *)
  let engine = Engine.create ~seed:9 () in
  let channel = Net.Channel.create ~engine ~params:Net.Params.default () in
  let delivered = ref 0 and failed = ref 0 in
  let walker =
    Mobility.scripted
      [ (Time.sec 0., v 100. 0.); (Time.sec 10., v 2000. 0.) ]
  in
  let mk id position cb =
    Net.Mac.create ~engine ~channel ~rng:(Rng.create id) ~id:(n id) ~position cb
  in
  let cb_recv =
    {
      Net.Mac.receive = (fun _ ~from:_ -> incr delivered);
      promiscuous = (fun _ ~from:_ ~dst:_ -> ());
      link_failure = (fun _ ~next_hop:_ -> ());
    }
  in
  let cb_send =
    {
      Net.Mac.receive = (fun _ ~from:_ -> ());
      promiscuous = (fun _ ~from:_ ~dst:_ -> ());
      link_failure = (fun _ ~next_hop:_ -> incr failed);
    }
  in
  let sender = mk 0 (fun () -> v 0. 0.) cb_send in
  let _receiver =
    mk 1 (fun () -> Mobility.position walker (Engine.now engine)) cb_recv
  in
  (* One packet per second for 10 s; the walker passes 275 m before 1 s
     (190 m/s) — only the immediate sends can arrive. *)
  for i = 0 to 9 do
    ignore
      (Engine.at engine (Time.sec (float_of_int i)) (fun () ->
           Net.Mac.send sender ~dst:(Net.Frame.Unicast (n 1))
             (data_payload ~src:0 ~dst:1 ())))
  done;
  Engine.run ~until:(Time.sec 15.) engine;
  checkb "early delivery happened" true (!delivered >= 1);
  checkb "later sends failed" true (!failed >= 5);
  (* Boundary packets may both deliver and report failure (lost ACK), so
     the sum is at least the number of sends. *)
  checkb "every send accounted" true (!delivered + !failed >= 10)

(* ---- Grid vs. naive channel: differential determinism ----------------- *)

(* The spatial-grid index must be an invisible optimisation: on the same
   seed, a run with the grid channel and one with the naive linear-scan
   channel must touch the same radios in the same order and therefore
   produce identical outcomes, down to every counter. *)
let grid_matches_naive_channel () =
  let open Experiment in
  List.iter
    (fun seed ->
      let sc =
        Scenario.paper_100 Scenario.ldr
        |> Scenario.with_duration (Time.sec 12.)
        |> Scenario.with_seed seed
      in
      let naive = Runner.run (Scenario.with_naive_channel true sc) in
      let grid = Runner.run sc in
      let ctx = Printf.sprintf "seed %d" seed in
      checkb (ctx ^ ": summary identical") true
        (Stdlib.compare naive.Runner.summary grid.Runner.summary = 0);
      checki (ctx ^ ": events") naive.Runner.events_processed
        grid.Runner.events_processed;
      checki (ctx ^ ": transmissions") naive.Runner.transmissions
        grid.Runner.transmissions;
      checki (ctx ^ ": queue drops") naive.Runner.mac_queue_drops
        grid.Runner.mac_queue_drops;
      checki (ctx ^ ": unicast failures") naive.Runner.mac_unicast_failures
        grid.Runner.mac_unicast_failures;
      checkb (ctx ^ ": control kinds identical") true
        (Metrics.control_by_kind naive.Runner.metrics
        = Metrics.control_by_kind grid.Runner.metrics);
      checkb (ctx ^ ": drop reasons identical") true
        (Metrics.drops_by_reason naive.Runner.metrics
        = Metrics.drops_by_reason grid.Runner.metrics);
      checki (ctx ^ ": delivered") (Metrics.delivered naive.Runner.metrics)
        (Metrics.delivered grid.Runner.metrics))
    [ 1; 42 ]

let grid_neighbors_match_naive () =
  (* Same static layout under both modes: identical neighbour queries. *)
  let layout = [ v 0. 0.; v 100. 0.; v 260. 0.; v 400. 50.; v 900. 0. ] in
  let build mode =
    let engine = Engine.create ~seed:5 () in
    let channel =
      Net.Channel.create ~engine ~mode ~max_speed:0. ~params:Net.Params.default ()
    in
    List.mapi
      (fun i pos ->
        Net.Mac.create ~engine ~channel ~rng:(Rng.create (100 + i)) ~id:(n i)
          ~position:(fun () -> pos)
          {
            Net.Mac.receive = (fun _ ~from:_ -> ());
            promiscuous = (fun _ ~from:_ ~dst:_ -> ());
            link_failure = (fun _ ~next_hop:_ -> ());
          })
      layout
    |> fun macs -> (channel, macs)
  in
  let ch_g, macs_g = build Net.Channel.Grid in
  let ch_n, macs_n = build Net.Channel.Naive in
  List.iteri
    (fun i mg ->
      let mn = List.nth macs_n i in
      let ng = Net.Channel.neighbors_in_range ch_g (Net.Mac.radio mg) in
      let nn = Net.Channel.neighbors_in_range ch_n (Net.Mac.radio mn) in
      checkb
        (Printf.sprintf "node %d neighbour lists identical" i)
        true
        (List.map Node_id.to_int ng = List.map Node_id.to_int nn))
    macs_g

(* Randomized end-to-end MAC property: every unicast is either received
   at its destination or reported as a link failure to its sender —
   possibly both (a delivered frame whose ACK was lost), but never
   neither.  Nothing vanishes silently. *)
let mac_accounting_prop =
  QCheck.Test.make ~name:"unicast delivers or fails" ~count:30
    QCheck.(pair (int_bound 1000) (int_range 2 6))
    (fun (seed, k) ->
      let engine = Engine.create ~seed () in
      let params = Net.Params.default in
      let channel = Net.Channel.create ~engine ~params () in
      let rng = Rng.create seed in
      let received = Array.make k false and failed = Array.make k false in
      let macs =
        Array.init k (fun i ->
            (* Random positions: some pairs are in range, some not. *)
            let pos = v (Rng.float rng 800.) (Rng.float rng 300.) in
            Net.Mac.create ~engine ~channel ~rng:(Rng.create (seed + i))
              ~id:(n i)
              ~position:(fun () -> pos)
              {
                Net.Mac.receive =
                  (fun _ ~from -> received.(Node_id.to_int from) <- true);
                promiscuous = (fun _ ~from:_ ~dst:_ -> ());
                link_failure = (fun _ ~next_hop:_ -> failed.(i) <- true);
              })
      in
      for i = 0 to k - 2 do
        Net.Mac.send macs.(i) ~dst:(Net.Frame.Unicast (n (i + 1)))
          (data_payload ~src:i ~dst:(i + 1) ())
      done;
      Engine.run ~until:(Time.sec 5.) engine;
      let ok = ref true in
      for i = 0 to k - 2 do
        if not (received.(i) || failed.(i)) then ok := false
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "ifq",
        [
          Alcotest.test_case "fifo" `Quick ifq_fifo;
          Alcotest.test_case "drops when full" `Quick ifq_drops_when_full;
        ] );
      ("params", [ Alcotest.test_case "airtime" `Quick airtime_sanity ]);
      ( "mac",
        [
          Alcotest.test_case "unicast delivery+ack" `Quick unicast_delivery_and_ack;
          Alcotest.test_case "out of range fails" `Quick unicast_out_of_range_fails;
          Alcotest.test_case "broadcast range" `Quick broadcast_reaches_neighbors_only;
          Alcotest.test_case "promiscuous" `Quick promiscuous_overhears;
          Alcotest.test_case "queue serializes" `Quick queue_serializes;
          Alcotest.test_case "ifq overflow" `Quick ifq_overflow_drops;
          Alcotest.test_case "hidden terminal collides" `Quick hidden_terminal_collision;
          Alcotest.test_case "capture effect" `Quick capture_effect_saves_near_frame;
          Alcotest.test_case "carrier sense defers" `Quick carrier_sense_defers;
          Alcotest.test_case "transmit hook" `Quick transmit_hook_counts;
          Alcotest.test_case "neighbors query" `Quick neighbors_in_range_query;
          Alcotest.test_case "retransmits without ack" `Quick duplicate_on_lost_ack;
          Alcotest.test_case "broadcast no retry" `Quick broadcast_no_retry;
          Alcotest.test_case "mobility breaks link" `Quick mobility_breaks_link;
          qt mac_accounting_prop;
        ] );
      ( "channel-grid",
        [
          Alcotest.test_case "neighbour queries match naive" `Quick
            grid_neighbors_match_naive;
          Alcotest.test_case "grid vs naive byte-identical outcome" `Quick
            grid_matches_naive_channel;
        ] );
    ]
