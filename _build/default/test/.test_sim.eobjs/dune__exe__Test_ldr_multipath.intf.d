test/test_ldr_multipath.mli:
