lib/experiment/sweep.mli: Metrics Scenario Sim Stats
