(* Tests for OLSR: MPR selection, neighbor sensing, TC flooding, routing. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int

(* ---- MPR selection -------------------------------------------------------- *)

let mpr_covers_two_hop () =
  (* self 0; neighbors 1,2; 1 reaches {3,4}, 2 reaches {4}: 1 is the sole
     provider of 3 so it must be picked, and it also covers 4, so {1} is
     the minimal set. *)
  let mprs =
    Olsr.select_mprs ~self:(n 0)
      ~neighbors:[ (n 1, [ n 0; n 3; n 4 ]); (n 2, [ n 0; n 4 ]) ]
  in
  checki "one mpr" 1 (Node_id.Set.cardinal mprs);
  checkb "node1 chosen" true (Node_id.Set.mem (n 1) mprs)

let mpr_greedy_coverage () =
  (* Neighbors 1,2,3; two-hop {4,5,6}: 1 covers {4,5}, 2 covers {5,6},
     3 covers {5}.  Greedy: picks sole providers of 4 (=1) and 6 (=2);
     done. *)
  let mprs =
    Olsr.select_mprs ~self:(n 0)
      ~neighbors:
        [ (n 1, [ n 4; n 5 ]); (n 2, [ n 5; n 6 ]); (n 3, [ n 5 ]) ]
  in
  checkb "1 in" true (Node_id.Set.mem (n 1) mprs);
  checkb "2 in" true (Node_id.Set.mem (n 2) mprs);
  checkb "3 redundant" false (Node_id.Set.mem (n 3) mprs)

let mpr_empty_cases () =
  checki "no neighbors" 0 (Node_id.Set.cardinal (Olsr.select_mprs ~self:(n 0) ~neighbors:[]));
  (* Neighbors but no two-hop nodes -> no MPRs needed. *)
  checki "no two-hop" 0
    (Node_id.Set.cardinal
       (Olsr.select_mprs ~self:(n 0) ~neighbors:[ (n 1, [ n 0 ]) ]))

let mpr_ignores_self_and_neighbors () =
  (* Entries pointing back at self or at other direct neighbors are not
     two-hop targets. *)
  let mprs =
    Olsr.select_mprs ~self:(n 0)
      ~neighbors:[ (n 1, [ n 0; n 2 ]); (n 2, [ n 0; n 1 ]) ]
  in
  checki "nothing to cover" 0 (Node_id.Set.cardinal mprs)

let mpr_coverage_prop =
  (* Every strict two-hop neighbor is covered by some selected MPR. *)
  QCheck.Test.make ~name:"mpr set covers two-hop set" ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_neigh = 1 + Rng.int rng 6 in
      let neighbors =
        List.init num_neigh (fun i ->
            let deg = Rng.int rng 5 in
            ( n (i + 1),
              List.init deg (fun _ -> n (7 + Rng.int rng 8)) ))
      in
      let neighbor_ids = List.map fst neighbors in
      let two_hop =
        List.concat_map
          (fun (_, l) ->
            List.filter
              (fun x ->
                (not (Node_id.equal x (n 0)))
                && not (List.exists (Node_id.equal x) neighbor_ids))
              l)
          neighbors
      in
      let mprs = Olsr.select_mprs ~self:(n 0) ~neighbors in
      List.for_all
        (fun x ->
          List.exists
            (fun (nb, l) ->
              Node_id.Set.mem nb mprs && List.exists (Node_id.equal x) l)
            neighbors)
        two_hop)

(* ---- Protocol over the test network ---------------------------------------- *)

module TN = Experiment.Testnet

let make_net ?(config = Olsr.default_config) k =
  let engine = Engine.create ~seed:3 () in
  (engine, TN.create ~engine ~factory:(Olsr.factory ~config ()) ~n:k ())

let proactive_routes_form () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  (* Let hellos and TCs circulate. *)
  TN.run net ~for_:(Time.sec 20.);
  (* Routes exist without any data-driven discovery. *)
  checkb "0 routes to 4" true
    ((TN.agent net 0).Routing.Agent.successor (n 4) = Some (n 1));
  checkb "4 routes to 0" true
    ((TN.agent net 4).Routing.Agent.successor (n 0) = Some (n 3))

let data_follows_routes () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.run net ~for_:(Time.sec 20.);
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 1.);
  checki "delivered" 1 (TN.delivered net)

let no_route_before_convergence () =
  let _, net = make_net 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  (* Immediately: no hellos yet, data must drop. *)
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.ms 10.);
  checki "dropped" 0 (TN.delivered net);
  checkb "no-route recorded" true
    (List.mem_assoc "no-route"
       (Experiment.Metrics.drops_by_reason (TN.metrics net)))

let topology_change_heals () =
  let _, net = make_net 4 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.run net ~for_:(Time.sec 20.);
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 1.);
  checki "first" 1 (TN.delivered net);
  (* Replace 1-2 with 1-... direct 0-3 path via new link 0-2? Break 1-2,
     add 0-2: after hold times and fresh hellos, routes re-form. *)
  TN.disconnect net 1 2;
  TN.connect net 0 2;
  TN.run net ~for_:(Time.sec 25.);
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 1.);
  checki "healed" 2 (TN.delivered net)

let shortest_path_selected () =
  let _, net = make_net 6 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.connect_chain net [ 0; 4; 3 ];
  (* 2-hop branch beats 3-hop branch *)
  TN.run net ~for_:(Time.sec 25.);
  checkb "routes via short branch" true
    ((TN.agent net 0).Routing.Agent.successor (n 3) = Some (n 4))

let hello_and_tc_overhead_counted () =
  let _, net = make_net 4 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.run net ~for_:(Time.sec 30.);
  let m = TN.metrics net in
  (* No MAC here (testnet), but control events pass through ctx.send, so
     none are counted in control_tx; instead verify deliveries happen and
     no data was originated. *)
  checki "no data originated" 0 (Experiment.Metrics.originated m)

let link_failure_reroutes () =
  let _, net = make_net 4 in
  TN.connect_chain net [ 0; 1; 3 ];
  TN.connect_chain net [ 0; 2; 3 ];
  TN.run net ~for_:(Time.sec 25.);
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 1.);
  checki "first" 1 (TN.delivered net);
  (* Kill whichever first hop is in use; immediate re-route uses the
     other branch without waiting for hello timeouts. *)
  (match (TN.agent net 0).Routing.Agent.successor (n 3) with
  | Some hop -> TN.disconnect net 0 (Node_id.to_int hop)
  | None -> Alcotest.fail "expected a route");
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 30.);
  checkb "rerouted eventually" true (TN.delivered net >= 2)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "olsr"
    [
      ( "mpr",
        [
          Alcotest.test_case "covers two-hop" `Quick mpr_covers_two_hop;
          Alcotest.test_case "greedy coverage" `Quick mpr_greedy_coverage;
          Alcotest.test_case "empty cases" `Quick mpr_empty_cases;
          Alcotest.test_case "ignores self/neighbors" `Quick mpr_ignores_self_and_neighbors;
          qt mpr_coverage_prop;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "proactive routes form" `Quick proactive_routes_form;
          Alcotest.test_case "data follows routes" `Quick data_follows_routes;
          Alcotest.test_case "no route before convergence" `Quick no_route_before_convergence;
          Alcotest.test_case "topology change heals" `Quick topology_change_heals;
          Alcotest.test_case "shortest path" `Quick shortest_path_selected;
          Alcotest.test_case "overhead accounting" `Quick hello_and_tc_overhead_counted;
          Alcotest.test_case "link failure reroutes" `Quick link_failure_reroutes;
        ] );
    ]
