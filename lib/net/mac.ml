open Sim
open Packets

type callbacks = {
  receive : Payload.t -> from:Node_id.t -> unit;
  promiscuous : Payload.t -> from:Node_id.t -> dst:Frame.dst -> unit;
  link_failure : Payload.t -> next_hop:Node_id.t -> unit;
}

type pending = { payload : Payload.t; dst : Frame.dst }

type phase =
  | Idle
  | Access  (** counting down DIFS + backoff *)
  | Sending
  | Await_ack

(* Timer fields hold [Engine.none] when unarmed, and every timer
   callback is a pre-bound top-level function over [t] scheduled with
   [Engine.after_fn] — the hot path (one access timer and one ACK
   timer per data frame) allocates neither an option nor a closure. *)
type t = {
  engine : Engine.t;
  channel : Channel.t;
  params : Params.t;
  rng : Rng.t;
  my_id : Node_id.t;
  radio : Channel.radio;
  cb : callbacks;
  queue : pending Ifq.t;
  mutable phase : phase;
  mutable current : pending option;
  mutable attempts : int;
  mutable cw : int;
  mutable slots : int;  (** backoff slots still to count down *)
  mutable access_timer : Engine.handle;
  mutable access_started : Time.t;
  mutable ack_timer : Engine.handle;
  mutable ack_to : Node_id.t;
      (** destination of the pending SIFS-delayed ACK; at most one can
          be outstanding (SIFS is far shorter than any frame airtime,
          and the capture logic delivers one frame per radio per
          instant) *)
  mutable ack_frame : Frame.t;
      (** cached ACK frame for [ack_to]; rebuilt only when the
          destination changes, so the steady ACK exchange between two
          talking nodes allocates nothing *)
  (* Per-node scalar counters live in flat arrays at slot [six]: the
     node's cells of the shared [Nodes] planes when created with
     [~world], private one-cell arrays otherwise.  Either way the MAC
     code is array writes — no branch on the backing. *)
  sent_a : int array;
  fail_a : int array;
  qlen_a : int array;
  qdrops_a : int array;
  six : int;
  mutable down : bool;  (** churn: node is powered off *)
  obs : Obs.Bus.t;  (* shared with the channel *)
}

let emit_rx t payload ~from ~dst =
  Obs.Bus.rx t.obs
    ~time:(Engine.now t.engine)
    ~node:(Node_id.to_int t.my_id)
    ~cls:(Obs.Bus.intern t.obs (Payload.class_name payload))
    ~from:(Node_id.to_int from)
    ~dst:(match dst with Frame.Broadcast -> -1 | Frame.Unicast d -> Node_id.to_int d)

let frame_dst_int = function
  | Frame.Broadcast -> -1
  | Frame.Unicast d -> Node_id.to_int d

(* One span record per MAC lifecycle stage of a data frame, keyed by
   the packet's out-of-band (flow, seq) id.  Control frames are not
   spanned.  Call sites guard with [Obs.Bus.on] first, so the disabled
   path pays nothing beyond its existing branch. *)
let emit_span t ~stage payload ~d ~e =
  let flow = Payload.data_flow payload in
  if flow >= 0 then
    Obs.Bus.span t.obs
      ~time:(Engine.now t.engine)
      ~node:(Node_id.to_int t.my_id)
      ~stage ~flow
      ~seq:(Payload.data_seq payload)
      ~d ~e ~f:(-1)

let id t = t.my_id
let queue_length t = Ifq.length t.queue
let queue_drops t = Ifq.drops t.queue
let unicast_failures t = t.fail_a.(t.six)
let frames_sent t = t.sent_a.(t.six)
let radio t = t.radio
let is_down t = t.down

let payload_frame t pending =
  { Frame.src = t.my_id; dst = pending.dst; body = Frame.Payload pending.payload }

let frame_duration t frame =
  Params.frame_airtime t.params ~bytes:(Frame.encoded_length frame)

let rec dequeue_next t =
  assert (t.current = None);
  match Ifq.pop t.queue with
  | None -> t.phase <- Idle
  | Some p ->
      t.qlen_a.(t.six) <- Ifq.length t.queue;
      t.current <- Some p;
      t.attempts <- 1;
      t.cw <- t.params.cw_min;
      if Obs.Bus.on t.obs then
        emit_span t ~stage:Obs.Span.Stage.mac_deq p.payload ~d:(-1) ~e:(-1);
      begin_access t

and begin_access t =
  t.phase <- Access;
  t.slots <- Rng.int t.rng (t.cw + 1);
  maybe_arm t

(* Arm the DIFS+backoff countdown if the medium is idle. *)
and maybe_arm t =
  if t.phase = Access
     && Engine.is_none t.access_timer
     && not (Channel.busy t.channel t.radio)
  then begin
    let wait = Time.add t.params.difs (Time.mul t.params.slot t.slots) in
    t.access_started <- Engine.now t.engine;
    t.access_timer <- Engine.after_fn t.engine wait access_expired t
  end

and access_expired t =
  t.access_timer <- Engine.none;
  if t.down then ()
  else if Channel.busy t.channel t.radio then ()
    (* Lost the race with a same-instant transmission; the
       medium_changed(false) callback will re-arm us. *)
  else do_transmit t

and do_transmit t =
  match t.current with
  | None -> assert false
  | Some p ->
      t.phase <- Sending;
      t.sent_a.(t.six) <- t.sent_a.(t.six) + 1;
      if Obs.Bus.on t.obs then
        emit_span t ~stage:Obs.Span.Stage.mac_try p.payload ~d:(-1)
          ~e:t.attempts;
      let frame = payload_frame t p in
      let duration = frame_duration t frame in
      Channel.transmit t.channel t.radio frame ~duration;
      ignore (Engine.after_fn t.engine duration tx_done t)

(* [t.current] is pinned while Sending/Await_ack — only [finish],
   [retry]'s failure arm and [set_down] clear it — so reading it when
   the timer fires sees the frame that was in the air; [None] here
   means the node went down mid-transmission (the handle is discarded,
   so down-gating happens at fire time). *)
and tx_done t =
  match t.current with
  | None -> ()
  | Some _ when t.down -> ()
  | Some p -> (
      match p.dst with
      | Frame.Broadcast -> finish t
      | Frame.Unicast _ ->
          t.phase <- Await_ack;
          (* A transmission forwarded cross-shard (PDES) reaches remote
             receivers one delivery latency late, and their ACK crosses
             back with the same latency — wait out the round trip. *)
          let timeout =
            if Channel.crossed t.radio then
              Time.add (Params.ack_timeout t.params)
                (Channel.remote_grace t.channel)
            else Params.ack_timeout t.params
          in
          t.ack_timer <- Engine.after_fn t.engine timeout ack_timeout_expired t)

and ack_timeout_expired t =
  t.ack_timer <- Engine.none;
  if t.down then ()
  else
    match t.current with
    | Some ({ dst = Frame.Unicast next_hop; _ } as p) -> retry t p next_hop
    | Some { dst = Frame.Broadcast; _ } | None -> assert false

and finish t =
  (* Read the frame before clearing it — the span needs its id. *)
  (match t.current with
  | Some p when Obs.Bus.on t.obs ->
      emit_span t ~stage:Obs.Span.Stage.mac_end p.payload ~d:(-1) ~e:t.attempts
  | Some _ | None -> ());
  t.current <- None;
  t.phase <- Idle;
  dequeue_next t

and retry t p next_hop =
  if t.attempts >= t.params.retry_limit then begin
    t.fail_a.(t.six) <- t.fail_a.(t.six) + 1;
    if Obs.Bus.on t.obs then
      emit_span t ~stage:Obs.Span.Stage.mac_fail p.payload
        ~d:(Node_id.to_int next_hop) ~e:t.attempts;
    t.current <- None;
    t.phase <- Idle;
    t.cb.link_failure p.payload ~next_hop;
    (* The callback may have enqueued follow-up traffic (e.g. a RERR);
       only restart the service loop if it has not already done so by
       observing Idle. *)
    if t.phase = Idle && t.current = None then dequeue_next t
  end
  else begin
    t.attempts <- t.attempts + 1;
    t.cw <- Stdlib.min (((t.cw + 1) * 2) - 1) t.params.cw_max;
    begin_access t
  end

let ack_received t from =
  match (t.phase, t.current) with
  | Await_ack, Some { dst = Frame.Unicast nh; _ } when Node_id.equal nh from
    ->
      if not (Engine.is_none t.ack_timer) then begin
        Engine.cancel t.engine t.ack_timer;
        t.ack_timer <- Engine.none
      end;
      finish t
  | _ -> ()

let send_ack_fire t =
  if (not t.down) && not (Channel.transmitting t.radio) then
    Channel.transmit t.channel t.radio t.ack_frame
      ~duration:(Params.ack_airtime t.params)

let send_ack t ~to_ =
  (* ACKs answer after SIFS regardless of carrier sense (802.11), but a
     radio cannot transmit two frames at once. *)
  if not (Node_id.equal to_ t.ack_to) then begin
    t.ack_to <- to_;
    t.ack_frame <- { Frame.src = t.my_id; dst = Frame.Unicast to_; body = Frame.Ack }
  end;
  ignore (Engine.after_fn t.engine t.params.sifs send_ack_fire t)

let on_frame t (f : Frame.t) =
  if t.down then ()
  else
  match f.body with
  | Frame.Ack -> if Frame.addressed_to f t.my_id then ack_received t f.src
  | Frame.Payload payload -> (
      match f.dst with
      | Frame.Broadcast ->
          if Obs.Bus.on t.obs then emit_rx t payload ~from:f.src ~dst:f.dst;
          t.cb.receive payload ~from:f.src
      | Frame.Unicast d when Node_id.equal d t.my_id ->
          if Obs.Bus.on t.obs then emit_rx t payload ~from:f.src ~dst:f.dst;
          send_ack t ~to_:f.src;
          t.cb.receive payload ~from:f.src
      | Frame.Unicast _ -> t.cb.promiscuous payload ~from:f.src ~dst:f.dst)

let on_medium t busy =
  if t.down then ()
  else if busy then begin
    if t.phase = Access && not (Engine.is_none t.access_timer) then begin
      Engine.cancel t.engine t.access_timer;
      t.access_timer <- Engine.none;
      (* Slots consumed while the medium was idle. *)
      let elapsed = Time.diff (Engine.now t.engine) t.access_started in
      let after_difs =
        if Time.(elapsed > t.params.difs) then Time.diff elapsed t.params.difs
        else Time.zero
      in
      (* Time.t is an immediate int of nanoseconds; plain int division
         avoids two Int64 boxes per medium-busy transition. *)
      let consumed = (after_difs :> int) / (t.params.slot :> int) in
      t.slots <- Stdlib.max 0 (t.slots - consumed)
    end
  end
  else maybe_arm t

let create ~engine ~channel ~rng ~id ~position ?world callbacks =
  let sent_a, fail_a, qlen_a, qdrops_a, six, idx =
    match world with
    | Some (nodes, i) ->
        ( Nodes.sent_plane nodes,
          Nodes.failures_plane nodes,
          Nodes.qlen_plane nodes,
          Nodes.qdrops_plane nodes,
          i,
          i )
    | None -> (Array.make 1 0, Array.make 1 0, Array.make 1 0, Array.make 1 0, 0, -1)
  in
  let radio = Channel.attach channel ~idx ~id ~position () in
  let t =
    {
      engine;
      channel;
      params = Channel.params channel;
      rng;
      my_id = id;
      radio;
      cb = callbacks;
      queue = Ifq.create ~capacity:(Channel.params channel).ifq_capacity;
      phase = Idle;
      current = None;
      attempts = 0;
      cw = (Channel.params channel).cw_min;
      slots = 0;
      access_timer = Engine.none;
      access_started = Time.zero;
      ack_timer = Engine.none;
      ack_to = id;
      ack_frame = { Frame.src = id; dst = Frame.Unicast id; body = Frame.Ack };
      sent_a;
      fail_a;
      qlen_a;
      qdrops_a;
      six;
      down = false;
      obs = Channel.obs channel;
    }
  in
  Channel.set_receiver radio (on_frame t);
  Channel.set_medium_listener radio (on_medium t);
  t

let send t ~dst payload =
  if t.down then ()
  else begin
    let accepted = Ifq.push t.queue { payload; dst } in
    if accepted then t.qlen_a.(t.six) <- Ifq.length t.queue
    else t.qdrops_a.(t.six) <- t.qdrops_a.(t.six) + 1;
    if Obs.Bus.on t.obs then
      if accepted then
        emit_span t ~stage:Obs.Span.Stage.mac_enq payload ~d:(frame_dst_int dst)
          ~e:(-1)
      else begin
        Obs.Bus.ifq_drop t.obs
          ~time:(Engine.now t.engine)
          ~node:(Node_id.to_int t.my_id)
          ~cls:(Obs.Bus.intern t.obs (Payload.class_name payload))
          ~dst:(frame_dst_int dst);
        emit_span t ~stage:Obs.Span.Stage.mac_drop payload
          ~d:(frame_dst_int dst) ~e:(-1)
      end;
    if accepted && t.phase = Idle && t.current = None then dequeue_next t
  end

(* Power the node down (flush the queue, kill the armed timers, release
   any half-sent frame) or back up (clean CSMA state).  The radio's
   channel-side detachment is the caller's job ([Channel.set_attached])
   so both transitions stay in one place in the runner. *)
let set_down t v =
  if t.down <> v then
    if v then begin
      t.down <- true;
      Ifq.clear t.queue;
      t.qlen_a.(t.six) <- 0;
      t.current <- None;
      t.phase <- Idle;
      if not (Engine.is_none t.access_timer) then begin
        Engine.cancel t.engine t.access_timer;
        t.access_timer <- Engine.none
      end;
      if not (Engine.is_none t.ack_timer) then begin
        Engine.cancel t.engine t.ack_timer;
        t.ack_timer <- Engine.none
      end
    end
    else begin
      t.down <- false;
      t.phase <- Idle;
      t.attempts <- 0;
      t.cw <- t.params.cw_min;
      t.slots <- 0
    end
