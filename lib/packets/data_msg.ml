type t = {
  flow_id : int;
  seq : int;
  src : Node_id.t;
  dst : Node_id.t;
  payload_bytes : int;
  origin_time : Sim.Time.t;
  ttl : int;
  hops : int;
}

let default_ttl = 64

let fresh ~flow_id ~seq ~src ~dst ~payload_bytes ~origin_time =
  { flow_id; seq; src; dst; payload_bytes; origin_time; ttl = default_ttl; hops = 0 }

let hop t = { t with hops = t.hops + 1 }
let uid t = (t.flow_id, t.seq)
let decr_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let pp fmt t =
  Format.fprintf fmt "data[f%d#%d %a->%a]" t.flow_id t.seq Node_id.pp t.src
    Node_id.pp t.dst
