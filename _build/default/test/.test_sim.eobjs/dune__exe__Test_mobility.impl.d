test/test_mobility.ml: Alcotest Geom List Mobility QCheck QCheck_alcotest Rng Sim Time
