(* Loop-freedom audit under churn: run LDR and AODV on a dense, fast
   network with the successor-graph auditor armed on every routing-table
   write.  LDR must report zero loops at every instant (the paper's
   Theorem 4).

   Run with: dune exec examples/loop_check.exe *)

open Experiment

let scenario protocol seed =
  {
    Scenario.label = "loop-check";
    num_nodes = 25;
    terrain = Geom.Terrain.create ~width:900. ~height:300.;
    placement = Scenario.Uniform;
    speed_min = 5.;
    speed_max = 20.;
    pause = Sim.Time.sec 0.;
    duration = Sim.Time.sec 45.;
    traffic =
      {
        Traffic.num_flows = 8;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Sim.Time.sec 20.;
        startup_window = Sim.Time.sec 3.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = true;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

let () =
  let failures = ref 0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun seed ->
          let outcome = Runner.run (scenario protocol seed) in
          let m = outcome.metrics in
          Format.printf
            "%-5s seed=%d  table-writes audited; loops=%d  delivery=%.3f@."
            (Scenario.protocol_name protocol)
            seed
            (Metrics.loop_violations m)
            (Metrics.delivery_ratio m);
          if
            Metrics.loop_violations m > 0
            && Scenario.protocol_name protocol = "LDR"
          then incr failures)
        [ 3; 5; 8 ])
    [ Scenario.ldr; Scenario.aodv ];
  if !failures > 0 then begin
    Format.printf "FAIL: LDR formed a routing loop@.";
    exit 1
  end
  else Format.printf "OK: LDR loop-free at every audited instant@."
