lib/core/route_table.mli: Conditions Node_id Packets Seqnum Sim
