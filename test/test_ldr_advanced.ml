(* Deeper LDR scenarios: the N-bit reverse-path probe, optimization
   toggles, control-packet loss injection, engagement expiry, and
   sequence-number restamping. *)

open Ldr
open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int

module TN = Experiment.Testnet

let make_net_debug ?(config = Config.default) ?(seed = 3) k =
  let engine = Engine.create ~seed () in
  let debugs = Array.make k None in
  let factories =
    Array.init k (fun i ctx ->
        let agent, dbg = Protocol.factory_with_debug ~config () ctx in
        debugs.(i) <- Some dbg;
        agent)
  in
  let net = Experiment.Testnet.create_custom ~engine ~factories () in
  (engine, net, fun i -> Option.get debugs.(i))

(* ---- N bit: reverse-path failure triggers an origin probe ------------- *)

let n_bit_probe_increments_origin () =
  let _, net, dbg = make_net_debug 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  (* Prime relay 1 with stale-but-stronger invariants for ORIGIN 0, so the
     RREQ's advertisement for 0 is rejected (no reverse route) and the
     N bit must be set. *)
  let t1 = (dbg 1).Protocol.table in
  ignore
    (Route_table.apply_advert t1 ~dst:(n 0)
       ~adv_sn:{ Seqnum.stamp = 0; counter = 5 }
       ~adv_dist:0 ~via:(n 0) ~lifetime:(Time.sec 100.) ());
  Route_table.invalidate t1 (n 0);
  let origin_sn_before = Seqnum.increments ((dbg 0).Protocol.own_sn ()) in
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 3.);
  checki "data still delivered (replies use the RREQ cache)" 1
    (TN.delivered net);
  let origin_sn_after = Seqnum.increments ((dbg 0).Protocol.own_sn ()) in
  checkb "origin incremented its own number for the probe" true
    (origin_sn_after > origin_sn_before)

(* ---- multiple-RREPs toggle --------------------------------------------- *)

let single_rrep_without_optimization () =
  (* With the optimization off, an engaged node forwards at most one
     reply per computation, even if a stronger one follows. *)
  let config = { Config.default with opt_multiple_rreps = false } in
  let _, net, _ = make_net_debug ~config 6 in
  (* Diamond with one long and one short branch behind relay 1:
     0-1; 1-2-3-5 and 1-4-5: two replies will come back through 1. *)
  TN.connect_chain net [ 0; 1; 2; 3; 5 ];
  TN.connect_chain net [ 1; 4; 5 ];
  TN.origin net ~src:0 ~dst:5;
  TN.run net ~for_:(Time.sec 4.);
  checki "delivered regardless" 1 (TN.delivered net)

(* ---- Control-packet loss injection -------------------------------------- *)

let rrep_loss_recovers_via_retry () =
  (* Kill the reverse link right after the RREQ passes so the RREP is
     lost; the origin's attempt timer must fire and the retry (over a
     restored link) succeeds. *)
  let _, net, _ = make_net_debug 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  (* The flood leaves 0 immediately; cut 0-1 before the reply can return
     (reply takes >= 2 hops x 1 ms). *)
  TN.run net ~for_:(Time.us 1500.);
  TN.disconnect net 0 1;
  TN.run net ~for_:(Time.ms 50.);
  checki "reply lost" 0 (TN.delivered net);
  TN.connect net 0 1;
  (* The expanding-ring retry re-floods. *)
  TN.run net ~for_:(Time.sec 10.);
  checki "retry delivered" 1 (TN.delivered net)

let unicast_probe_failure_times_out () =
  (* A reset probe that cannot reach the destination must not wedge the
     origin: discovery fails cleanly after retries. *)
  let _, net, _ = make_net_debug 4 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  checki "primed" 1 (TN.delivered net);
  (* Partition the destination completely.  The first packet dies at the
     break point (link-failure drop); the RERR invalidates the origin's
     route, so the next packet triggers a discovery that must fail
     cleanly. *)
  TN.disconnect net 2 3;
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 5.);
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 120.);
  checki "no delivery" 1 (TN.delivered net);
  checkb "failure reported" true
    (List.mem_assoc "discovery-failed"
       (Experiment.Metrics.drops_by_reason (TN.metrics net)))

(* ---- Engagement bookkeeping ---------------------------------------------- *)

let duplicate_rreq_ignored () =
  (* Two copies of the same computation must engage a relay once: with a
     cycle in the topology, node 1 sees the flood twice. *)
  let _, net, _ = make_net_debug 4 in
  TN.connect net 0 1;
  TN.connect net 0 2;
  TN.connect net 1 2;
  TN.connect net 1 3;
  TN.connect net 2 3;
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 3.);
  checki "exactly one unique delivery" 1 (TN.delivered net)

let relay_own_flood_ignored () =
  (* The origin must ignore echoes of its own solicitation. *)
  let _, net, dbg = make_net_debug 3 in
  TN.connect net 0 1;
  TN.connect net 1 0;
  TN.connect net 1 2;
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net);
  checki "origin has no pending discovery left" 0
    (List.length ((dbg 0).Protocol.pending_discoveries ()))

(* ---- Sequence number restamping ------------------------------------------ *)

let seqnum_restamp_through_agent () =
  (* With a tiny counter limit, repeated resets force the destination to
     restamp from the virtual clock; numbers keep increasing. *)
  let config = { Config.default with seqnum_counter_limit = 1 } in
  let _, net, dbg = make_net_debug ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  let last = ref ((dbg 2).Protocol.own_sn ()) in
  (* Alternate breaks that force resets: shrink fd via direct link then
     break it, repeatedly. *)
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  for _ = 1 to 3 do
    TN.connect net 0 2;
    TN.disconnect net 0 1;
    TN.origin net ~src:0 ~dst:2;
    TN.run net ~for_:(Time.sec 3.);
    TN.connect net 0 1;
    TN.disconnect net 0 2;
    TN.origin net ~src:0 ~dst:2;
    TN.run net ~for_:(Time.sec 4.);
    let cur = (dbg 2).Protocol.own_sn () in
    checkb "monotone across restamps" true Seqnum.(cur >= !last);
    last := cur
  done;
  checkb "counter stayed within the tiny limit" true
    (((dbg 2).Protocol.own_sn ()).Seqnum.counter <= 1)

(* ---- Data-plane edge cases ------------------------------------------------ *)

let self_addressed_data_delivers_locally () =
  let _, net, _ = make_net_debug 2 in
  TN.connect net 0 1;
  TN.origin net ~src:0 ~dst:0;
  TN.run net ~for_:(Time.ms 10.);
  checki "looped back locally" 1 (TN.delivered net)

let burst_respects_buffer_capacity () =
  let config = { Config.default with buffer_capacity = 4 } in
  let _, net, _ = make_net_debug ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  (* 8 packets before any route: only the last 4 can be buffered; the
     evictions must be reported. *)
  for _ = 1 to 8 do
    TN.origin net ~src:0 ~dst:2
  done;
  TN.run net ~for_:(Time.sec 3.);
  let m = TN.metrics net in
  let evicted =
    match List.assoc_opt "buffer-evicted" (Experiment.Metrics.drops_by_reason m) with
    | Some k -> k
    | None -> 0
  in
  checki "evictions reported" 4 evicted;
  checki "survivors delivered" 4 (TN.delivered net)

let expired_route_triggers_rediscovery () =
  let config = { Config.default with active_route_timeout = Time.ms 500.;
                 my_route_timeout = Time.ms 500. } in
  let _, net, _ = make_net_debug ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 5.);
  checki "first delivered" 1 (TN.delivered net);
  let rreqs_before = Experiment.Metrics.event_count (TN.metrics net) "rreq_init" in
  (* Idle far beyond the timeout: the next packet needs a fresh
     discovery. *)
  TN.run net ~for_:(Time.sec 5.);
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 5.);
  checki "second delivered" 2 (TN.delivered net);
  checkb "rediscovered after expiry" true
    (Experiment.Metrics.event_count (TN.metrics net) "rreq_init" > rreqs_before)

(* ---- Link-cost generalisation (paper, Section 2 opening remark) ---------- *)

let weighted_link_unit () =
  let engine = Engine.create () in
  let t = Route_table.create ~engine () in
  (match
     Route_table.apply_advert t ~lc:7 ~dst:(n 9)
       ~adv_sn:{ Seqnum.stamp = 0; counter = 0 }
       ~adv_dist:2 ~via:(n 1) ~lifetime:(Time.sec 10.) ()
   with
  | `Installed -> ()
  | _ -> Alcotest.fail "install");
  let e = Option.get (Route_table.find t (n 9)) in
  checki "cost accumulates" 9 e.dist;
  checki "fd follows" 9 e.fd;
  Alcotest.check_raises "non-positive cost rejected"
    (Invalid_argument "Route_table.apply_advert: link cost must be positive")
    (fun () ->
      ignore
        (Route_table.apply_advert t ~lc:0 ~dst:(n 8)
           ~adv_sn:{ Seqnum.stamp = 0; counter = 0 }
           ~adv_dist:0 ~via:(n 1) ~lifetime:(Time.sec 1.) ()))

let weighted_links_accumulate_through_protocol () =
  (* Chain 0-1-2 where link 1-2 costs 3: distances become path costs and
     propagate through RREQ relaying and RREP re-advertising. *)
  let cost a b =
    let a = Node_id.to_int a and b = Node_id.to_int b in
    if (a = 1 && b = 2) || (a = 2 && b = 1) then 3 else 1
  in
  let config = { Config.default with link_cost = cost } in
  let _, net, dbg = make_net_debug ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net);
  let e1 = Option.get (Route_table.find (dbg 1).Protocol.table (n 2)) in
  checki "relay cost 3" 3 e1.dist;
  let e0 = Option.get (Route_table.find (dbg 0).Protocol.table (n 2)) in
  checki "origin cost 4" 4 e0.dist;
  checki "origin fd 4" 4 e0.fd

let () =
  Alcotest.run "ldr-advanced"
    [
      ( "link-costs",
        [
          Alcotest.test_case "route table cost arithmetic" `Quick weighted_link_unit;
          Alcotest.test_case "costs through protocol" `Quick
            weighted_links_accumulate_through_protocol;
        ] );
      ( "reset-machinery",
        [
          Alcotest.test_case "N-bit probe" `Quick n_bit_probe_increments_origin;
          Alcotest.test_case "single rrep without opt" `Quick
            single_rrep_without_optimization;
          Alcotest.test_case "seqnum restamping" `Quick seqnum_restamp_through_agent;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "rrep loss retried" `Quick rrep_loss_recovers_via_retry;
          Alcotest.test_case "probe failure times out" `Quick
            unicast_probe_failure_times_out;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "duplicate rreq ignored" `Quick duplicate_rreq_ignored;
          Alcotest.test_case "own flood ignored" `Quick relay_own_flood_ignored;
          Alcotest.test_case "self-addressed data" `Quick
            self_addressed_data_delivers_locally;
          Alcotest.test_case "buffer capacity" `Quick burst_respects_buffer_capacity;
          Alcotest.test_case "expiry rediscovery" `Quick
            expired_route_triggers_rediscovery;
        ] );
    ]
