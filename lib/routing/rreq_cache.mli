(** Route-request duplicate/reverse-path cache.

    Keyed by the computation identifier (originator, rreq id).  Entries
    expire after a TTL: long enough for all copies of a flood and its
    replies to leave the network.  LDR's engaged-node state, AODV's
    duplicate suppression and DSR's request table are all instances, each
    storing its own value type. *)

open Packets

type 'a t

val create : engine:Sim.Engine.t -> ttl:Sim.Time.t -> 'a t

val mem : 'a t -> origin:Node_id.t -> rreq_id:int -> bool
(** True if a live (unexpired) entry exists. *)

val find : 'a t -> origin:Node_id.t -> rreq_id:int -> 'a option

val add : 'a t -> origin:Node_id.t -> rreq_id:int -> 'a -> unit
(** Inserts or refreshes; the expiry clock restarts. *)

val update : 'a t -> origin:Node_id.t -> rreq_id:int -> ('a -> 'a) -> unit
(** Applies [f] to a live entry; no-op if absent.  Does not refresh the
    expiry. *)

val clear : 'a t -> unit
(** Drop every entry — churn teardown of a node's volatile state. *)

val length : 'a t -> int
