(** LDR control messages (paper, Section 2).

    A RREQ is simultaneously a {e solicitation} for a route to [dst] and
    an {e advertisement} of a route back to [origin]; a RREP is an
    advertisement for [dst] addressed to the computation's origin. *)

type rreq = {
  dst : Node_id.t;
  dst_sn : Seqnum.t option;  (** [None]: origin has no information on [dst] *)
  rreq_id : int;  (** origin-scoped computation identifier *)
  origin : Node_id.t;
  origin_sn : Seqnum.t;  (** advertisement part: origin's own number *)
  fd : int;  (** requested feasible distance (Eq. 6 running minimum) *)
  answer_dist : int;
      (** distance bound tested by SDC; equals [fd] unless the
          reduced-distance optimization lowered it *)
  dist : int;  (** measured distance travelled by this RREQ copy *)
  ttl : int;
  reset : bool;  (** T bit: ordering violated upstream, path must be reset *)
  no_reverse : bool;  (** N bit: some relay had no reverse route to origin *)
  unicast_probe : bool;
      (** D bit: RREQ forwarded as a unicast straight to the destination
          (the T-bit reset path, and N-bit forward-path probes) *)
}

type rrep = {
  dst : Node_id.t;
  dst_sn : Seqnum.t;
  origin : Node_id.t;  (** terminus: the RREQ origin this reply answers *)
  rreq_id : int;
  dist : int;
  lifetime : Sim.Time.t;
  rrep_no_reverse : bool;  (** N bit echoed into the reply *)
}

type rerr = { unreachable : (Node_id.t * Seqnum.t option) list }

type t = Rreq of rreq | Rrep of rrep | Rerr of rerr | Rreq_agg of rreq list
(** [Rreq_agg]: the aggregation extension's piggyback block — one flood
    transmission carrying the RREQs of several concurrent computations
    (distinct destinations and/or origins).  Stock agents unpack it into
    the member RREQs; only the LDR-AGG/AODV-AGG variants emit it. *)

val kind : t -> string
(** "RREQ" | "RREP" | "RERR" — metrics bucket.  An aggregate counts as a
    single "RREQ" transmission: that is the point of aggregation. *)

val pp : Format.formatter -> t -> unit
