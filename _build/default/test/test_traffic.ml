(* Tests for the CBR workload generator. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let collect ?(seed = 1) ~config ~until () =
  let engine = Engine.create ~seed () in
  let rng = Rng.create seed in
  let packets = ref [] in
  Traffic.setup ~engine ~rng ~num_nodes:20 ~config ~until
    ~emit:(fun ~src msg -> packets := (src, msg, Engine.now engine) :: !packets);
  Engine.run engine;
  List.rev !packets

let base =
  {
    Traffic.num_flows = 5;
    packets_per_sec = 4.;
    payload_bytes = 512;
    mean_flow_duration = Time.sec 20.;
    startup_window = Time.sec 5.;
  }

let emits_packets () =
  let pkts = collect ~config:base ~until:(Time.sec 60.) () in
  checkb "many packets" true (List.length pkts > 500);
  (* 5 slots x 4pps x ~55s in expectation: bounded above. *)
  checkb "not absurdly many" true (List.length pkts < 5 * 4 * 62)

let rate_is_respected () =
  (* Packets within a flow are spaced exactly 1/pps apart. *)
  let pkts = collect ~config:base ~until:(Time.sec 30.) () in
  let by_flow = Hashtbl.create 16 in
  List.iter
    (fun (_, msg, at) ->
      let k = msg.Data_msg.flow_id in
      Hashtbl.replace by_flow k
        (match Hashtbl.find_opt by_flow k with
        | None -> [ at ]
        | Some l -> at :: l))
    pkts;
  Hashtbl.iter
    (fun _ times ->
      let rec gaps = function
        | a :: (b :: _ as rest) ->
            let gap = Time.to_ms (Time.diff a b) in
            checkb "250ms spacing" true (abs_float (gap -. 250.) < 0.001);
            gaps rest
        | _ -> ()
      in
      gaps times)
    by_flow

let uids_unique () =
  let pkts = collect ~config:base ~until:(Time.sec 60.) () in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (_, msg, _) ->
      let uid = Data_msg.uid msg in
      checkb "unique uid" false (Hashtbl.mem seen uid);
      Hashtbl.replace seen uid ())
    pkts

let src_dst_distinct () =
  let pkts = collect ~config:base ~until:(Time.sec 60.) () in
  List.iter
    (fun (src, msg, _) ->
      checkb "src matches emit" true (Node_id.equal src msg.Data_msg.src);
      checkb "src <> dst" false (Node_id.equal msg.Data_msg.src msg.Data_msg.dst))
    pkts

let flows_restart () =
  (* With a short mean duration, flow ids climb well past the slot
     count. *)
  let config = { base with Traffic.mean_flow_duration = Time.sec 3. } in
  let pkts = collect ~config ~until:(Time.sec 60.) () in
  let max_flow =
    List.fold_left (fun acc (_, m, _) -> Stdlib.max acc m.Data_msg.flow_id) 0 pkts
  in
  checkb "flows restarted" true (max_flow > 10)

let respects_until () =
  let pkts = collect ~config:base ~until:(Time.sec 10.) () in
  List.iter
    (fun (_, _, at) -> checkb "no emission after until" true Time.(at < Time.sec 10.))
    pkts

let deterministic_per_seed () =
  let a = collect ~seed:9 ~config:base ~until:(Time.sec 30.) () in
  let b = collect ~seed:9 ~config:base ~until:(Time.sec 30.) () in
  checki "same count" (List.length a) (List.length b);
  List.iter2
    (fun (s1, m1, t1) (s2, m2, t2) ->
      checkb "same src" true (Node_id.equal s1 s2);
      checkb "same uid" true (Data_msg.uid m1 = Data_msg.uid m2);
      checkb "same time" true (Time.equal t1 t2))
    a b

let concurrent_flow_count () =
  (* At any instant, at most num_flows flows are active (slots never
     overlap themselves). *)
  let pkts = collect ~config:base ~until:(Time.sec 120.) () in
  (* Count flows active in a mid-run window. *)
  let active = Hashtbl.create 16 in
  List.iter
    (fun (_, m, at) ->
      if Time.(at > Time.sec 60.) && Time.(at < Time.sec 61.) then
        Hashtbl.replace active m.Data_msg.flow_id ())
    pkts;
  checkb "at most 5 concurrent" true (Hashtbl.length active <= 5)

let () =
  Alcotest.run "traffic"
    [
      ( "cbr",
        [
          Alcotest.test_case "emits" `Quick emits_packets;
          Alcotest.test_case "rate" `Quick rate_is_respected;
          Alcotest.test_case "uids unique" `Quick uids_unique;
          Alcotest.test_case "src/dst sane" `Quick src_dst_distinct;
          Alcotest.test_case "flows restart" `Quick flows_restart;
          Alcotest.test_case "until respected" `Quick respects_until;
          Alcotest.test_case "deterministic" `Quick deterministic_per_seed;
          Alcotest.test_case "concurrency bound" `Quick concurrent_flow_count;
        ] );
    ]
