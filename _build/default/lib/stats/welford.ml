type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.; m2 = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

(* Two-sided 95% critical values of the t distribution. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical ~df =
  if df <= 0 then invalid_arg "Welford.t_critical: df must be positive";
  if df <= Array.length t_table then t_table.(df - 1) else 1.96

let ci95 t =
  if t.n < 2 then 0.
  else t_critical ~df:(t.n - 1) *. stddev t /. sqrt (float_of_int t.n)

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2 }
  end
