(** Route-request aggregation: a composable layer over {!Agent}.

    Wraps any on-demand agent (LDR or AODV) and reduces its flooding
    cost three ways, after Mirzazad-Barijough & Garcia-Luna-Aceves
    (arXiv:1608.08725):

    - {b piggybacking}: broadcast RREQs issued within a short window
      leave in a single aggregate transmission ([Rreq_agg]) carrying one
      member RREQ per requested destination;
    - {b suppression}: a flood for a destination some other origin
      already flooded for within the suppression window is absorbed
      instead of forwarded;
    - {b RREP fan-out}: when the reply for the surviving computation
      passes through, it is replicated to every computation whose flood
      was absorbed here, re-addressed and sent down each one's recorded
      reverse hop.

    The wrapper only interposes on the context's [send] and the agent's
    [recv]; the inner protocol machine is untouched, so its invariants
    (and the loop-freedom monitor watching them) apply unchanged.

    Metrics: emits ["rreq_aggregated"] (floods avoided by piggybacking),
    ["rreq_suppressed"] (floods absorbed), and ["rrep_fanout"] (replies
    replicated) through the wrapped context's event sink. *)

type config = {
  window : Sim.Time.t;  (** batching window for multi-destination floods *)
  suppress_window : Sim.Time.t;
      (** how recently another origin's flood for the same destination
          must have left this node for a new one to be absorbed *)
  max_batch : int;  (** members per aggregate; full batches flush early *)
  fanout : bool;
      (** replicate returning RREPs to absorbed computations; with
          [false], only same-origin floods are ever suppressed *)
  fanout_ttl : Sim.Time.t;
      (** how long an absorbed computation may wait for a reply *)
}

val default : config
(** 20 ms window, 50 ms suppression, 8 members, fan-out on, 2 s wait. *)

val wrap : ?config:config -> Agent.factory -> Agent.factory
(** [wrap factory] is [factory] with the aggregation layer interposed
    per node. *)
