examples/protocol_comparison.mli:
