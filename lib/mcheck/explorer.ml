open Sim
open Packets

type protocol = Aodv | Ldr

let protocol_of_string = function
  | "aodv" -> Some Aodv
  | "ldr" -> Some Ldr
  | _ -> None

let protocol_name = function Aodv -> "aodv" | Ldr -> "ldr"

type choice = {
  c_seq : int;
  c_tag : int;
  c_time : int;
  c_float : bool;
  c_label : string;
}

type vkind = Cycle of int * int list | Monitor of int
type violation = { v_kind : vkind; v_trace : choice list }

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable sleep_skipped : int;
  mutable state_merged : int;
  mutable depth_cut : int;
  mutable terminals : int;
  mutable replays : int;
  mutable replayed_events : int;
  mutable max_depth : int;
  mutable violations : int;
  mutable complete : bool;
}

type result = { stats : stats; violation : violation option }

let fresh_stats () =
  {
    states = 0;
    transitions = 0;
    sleep_skipped = 0;
    state_merged = 0;
    depth_cut = 0;
    terminals = 0;
    replays = 0;
    replayed_events = 0;
    max_depth = 0;
    violations = 0;
    complete = true;
  }

(* Jitter off: the fixture's timed skeleton must be the script alone
   plus the protocols' own retry timers, so the schedule space is
   exactly message orderings x timer interleavings. *)
let aodv_config = { Aodv.default_config with Aodv.flood_jitter = Time.zero }

let ldr_config =
  { Ldr.Config.default with Ldr.Config.flood_jitter = Time.zero }

type sys = {
  net : Experiment.Testnet.t;
  engine : Engine.t;
  monitor : Obs.Monitor.t;
  n : int;
}

(* A floating message's hold instant, if a fixture [hold] directive
   matches its label ("CLASS src->dst #hash" — match up to the id
   boundary so "RREP 0->1" does not capture "RREP 0->12"). *)
let hold_until (fx : Fixture.t) (r : Controlled_queue.ready) =
  if not r.Controlled_queue.r_floating then None
  else
    List.find_map
      (fun (h : Fixture.hold) ->
        let p = Printf.sprintf "%s %d->%d" h.Fixture.h_class h.h_src h.h_dst in
        let lp = String.length p and ll = String.length r.r_label in
        if
          ll >= lp
          && String.sub r.r_label 0 lp = p
          && (ll = lp || r.r_label.[lp] = ' ')
        then Some h.h_until
        else None)
      fx.Fixture.holds

(* The deterministic prelude: before [explore_from], fire events in
   (effective time, seq) order — FIFO, i.e. exactly the stock calendar
   schedule — except that held messages' effective time is their hold
   instant.  This mechanically pins down the "reachable state with
   routes established" that published counterexample walkthroughs
   start from; the explorer then branches only over the suffix.  The
   prelude is part of [build], so replay, digests and traces all see
   the identical starting state. *)
let run_prelude engine (fx : Fixture.t) =
  let horizon = (Time.sec fx.Fixture.explore_from :> int) in
  let eff (r : Controlled_queue.ready) =
    match hold_until fx r with
    | Some u -> Stdlib.max r.Controlled_queue.r_time ((Time.sec u :> int))
    | None -> r.Controlled_queue.r_time
  in
  let fuel = ref 100_000 in
  let continue_ = ref true in
  while !continue_ do
    decr fuel;
    if !fuel < 0 then failwith "mcheck: fixture prelude did not quiesce";
    match Engine.ready_set engine with
    | [] -> continue_ := false
    | first :: rest ->
        let best =
          List.fold_left
            (fun b r ->
              if
                eff r < eff b
                || (eff r = eff b
                   && r.Controlled_queue.r_seq < b.Controlled_queue.r_seq)
              then r
              else b)
            first rest
        in
        if eff best >= horizon then continue_ := false
        else begin
          (* Deliver a held message *at* its hold instant: lifetime
             arithmetic must see the delayed delivery time. *)
          Engine.advance_clock engine (Time.unsafe_of_ns (eff best));
          ignore (Engine.fire_seq engine best.Controlled_queue.r_seq)
        end
  done

let build (fx : Fixture.t) proto =
  let engine = Engine.create ~seed:1 ~scheduler:`Controlled () in
  let bus = Obs.Bus.create () in
  let factory =
    match proto with
    | Aodv -> Aodv.factory ~config:aodv_config ()
    | Ldr -> Ldr.Protocol.factory ~config:ldr_config ()
  in
  let net =
    Experiment.Testnet.create ~obs:bus ~engine ~factory ~n:fx.Fixture.nodes ()
  in
  List.iter (fun (a, b) -> Experiment.Testnet.connect net a b) fx.Fixture.links;
  let monitor =
    Obs.Monitor.create ~quiet:true
      ~lookup:(fun ~node ~dst ->
        (Experiment.Testnet.agent net node).Routing.Agent.invariants
          (Node_id.of_int dst))
      bus
  in
  List.iter
    (fun { Fixture.at; act } ->
      let label, run =
        match act with
        | Fixture.Origin (s, d) ->
            ( Printf.sprintf "SCRIPT origin %d->%d" s d,
              fun () -> Experiment.Testnet.origin net ~src:s ~dst:d )
        | Fixture.Link_down (a, b) ->
            ( Printf.sprintf "SCRIPT down %d-%d" a b,
              fun () -> Experiment.Testnet.disconnect net a b )
        | Fixture.Link_up (a, b) ->
            ( Printf.sprintf "SCRIPT up %d-%d" a b,
              fun () -> Experiment.Testnet.connect net a b )
      in
      ignore (Engine.at_tagged engine (Time.sec at) ~tag:(-1) ~label run))
    fx.Fixture.script;
  run_prelude engine fx;
  { net; engine; monitor; n = fx.Fixture.nodes }

let choice_of (r : Controlled_queue.ready) =
  {
    c_seq = r.Controlled_queue.r_seq;
    c_tag = r.r_tag;
    c_time = r.r_time;
    c_float = r.r_floating;
    c_label = r.r_label;
  }

let fire sys (ch : choice) =
  if not (Engine.fire_seq sys.engine ch.c_seq) then
    failwith
      (Printf.sprintf
         "mcheck: replay divergence — event %d (%s) not pending" ch.c_seq
         ch.c_label)

let violation_of sys =
  match Experiment.Testnet.find_cycle sys.net with
  | Some (dst, nodes) -> Some (Cycle (dst, nodes))
  | None ->
      let v = Obs.Monitor.violations sys.monitor in
      if v > 0 then Some (Monitor v) else None

(* Two ready events commute iff both are floating message deliveries at
   distinct nodes: neither touches the other's node state, neither
   advances the clock.  Timed events move the shared clock (route
   expiry reads it everywhere), so they are dependent with everything
   and never enter a sleep set. *)
let independent (a : Controlled_queue.ready) (b : Controlled_queue.ready) =
  a.Controlled_queue.r_floating && b.Controlled_queue.r_floating
  && a.r_tag >= 0 && b.r_tag >= 0
  && a.r_tag <> b.r_tag

(* Run-independent identity of a pending event, for memo keys: seq ids
   differ between runs that reached the same state by different
   orders, but (tag, class, payload) do not.  A floating event's
   nominal time is its creation instant — semantically inert (firing
   one never moves the clock, which is already at or past it), so two
   orders that created the same in-flight message at different
   instants still merge.  Timed events keep their time: it decides
   when they fire. *)
let event_key (r : Controlled_queue.ready) =
  if r.Controlled_queue.r_floating then
    Printf.sprintf "F%d|%s" r.Controlled_queue.r_tag r.r_label
  else Printf.sprintf "T%d|%d|%s" r.Controlled_queue.r_tag r.r_time r.r_label

let digest_sys sys =
  let tables = ref [] in
  for i = sys.n - 1 downto 0 do
    let ag = Experiment.Testnet.agent sys.net i in
    let succs = ref [] in
    for d = sys.n - 1 downto 0 do
      if d <> i then
        succs :=
          (match ag.Routing.Agent.successor (Node_id.of_int d) with
          | Some s -> Node_id.to_int s
          | None -> -1)
          :: !succs
    done;
    tables :=
      (!succs, ag.Routing.Agent.own_seqno (), ag.Routing.Agent.route_stats ())
      :: !tables
  done;
  let pend =
    List.sort compare (List.map event_key (Engine.pending_set sys.engine))
  in
  Hashtbl.hash_param 500 5000
    ( !tables,
      pend,
      (Engine.now sys.engine :> int),
      Obs.Monitor.violations sys.monitor )

(* sl (sorted) a subset of cur (sorted)? *)
let rec subset sl cur =
  match (sl, cur) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
      if String.equal x y then subset xs ys
      else if String.compare x y > 0 then subset sl ys
      else false

exception Abort

let explore ?(max_steps = 40) ?(max_states = 2_000_000)
    ?(stop_at_first = true) ?(dedup = true) fx proto =
  let st = fresh_stats () in
  let first = ref None in
  let memo : (int, (string list * int) list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let rec go sys rprefix depth sleep =
    if st.states >= max_states then begin
      st.complete <- false;
      raise Abort
    end;
    st.states <- st.states + 1;
    if depth > st.max_depth then st.max_depth <- depth;
    match violation_of sys with
    | Some kind ->
        st.violations <- st.violations + 1;
        if !first = None then
          first := Some { v_kind = kind; v_trace = List.rev rprefix };
        if stop_at_first then raise Abort
    | None ->
        if depth >= max_steps then begin
          if Engine.ready_set sys.engine = [] then
            st.terminals <- st.terminals + 1
          else st.depth_cut <- st.depth_cut + 1
        end
        else begin
          let merged =
            dedup
            &&
            let cur =
              List.sort String.compare (List.map event_key sleep)
            in
            let dig = digest_sys sys in
            match Hashtbl.find_opt memo dig with
            | Some entries
              when List.exists
                     (fun (sl, d) -> d <= depth && subset sl cur)
                     entries ->
                true
            | Some entries ->
                Hashtbl.replace memo dig ((cur, depth) :: entries);
                false
            | None ->
                Hashtbl.add memo dig [ (cur, depth) ];
                false
          in
          if merged then st.state_merged <- st.state_merged + 1
          else begin
            let enabled = Engine.ready_set sys.engine in
            if enabled = [] then st.terminals <- st.terminals + 1
            else begin
              let sleep = ref sleep in
              (* The current sys can carry exactly one child (fire in
                 place); every further sibling re-executes the prefix. *)
              let in_place = ref (Some sys) in
              List.iter
                (fun (r : Controlled_queue.ready) ->
                  if
                    List.exists
                      (fun (s : Controlled_queue.ready) ->
                        s.Controlled_queue.r_seq = r.Controlled_queue.r_seq)
                      !sleep
                  then st.sleep_skipped <- st.sleep_skipped + 1
                  else begin
                    let ch = choice_of r in
                    let child_sleep =
                      List.filter (fun s -> independent s r) !sleep
                    in
                    let sys' =
                      match !in_place with
                      | Some s ->
                          in_place := None;
                          fire s ch;
                          s
                      | None ->
                          st.replays <- st.replays + 1;
                          st.replayed_events <-
                            st.replayed_events + depth + 1;
                          let s = build fx proto in
                          List.iter (fire s) (List.rev (ch :: rprefix));
                          s
                    in
                    st.transitions <- st.transitions + 1;
                    go sys' (ch :: rprefix) (depth + 1) child_sleep;
                    sleep := r :: !sleep
                  end)
                enabled
            end
          end
        end
  in
  (try go (build fx proto) [] 0 [] with Abort -> ());
  { stats = st; violation = !first }

let random_walks ?(max_steps = 40) ~walks ~seed fx proto =
  let st = fresh_stats () in
  st.complete <- false;
  let first = ref None in
  let rng = Rng.create seed in
  (try
     for _ = 1 to walks do
       let sys = build fx proto in
       let rprefix = ref [] in
       let depth = ref 0 in
       let stop = ref false in
       while not !stop do
         st.states <- st.states + 1;
         if !depth > st.max_depth then st.max_depth <- !depth;
         match violation_of sys with
         | Some kind ->
             st.violations <- st.violations + 1;
             if !first = None then
               first := Some { v_kind = kind; v_trace = List.rev !rprefix };
             raise Abort
         | None ->
             if !depth >= max_steps then begin
               st.depth_cut <- st.depth_cut + 1;
               stop := true
             end
             else begin
               let enabled = Engine.ready_set sys.engine in
               match enabled with
               | [] ->
                   st.terminals <- st.terminals + 1;
                   stop := true
               | _ ->
                   let k = Rng.int rng (List.length enabled) in
                   let ch = choice_of (List.nth enabled k) in
                   fire sys ch;
                   st.transitions <- st.transitions + 1;
                   rprefix := ch :: !rprefix;
                   incr depth
             end
       done
     done
   with Abort -> ());
  { stats = st; violation = !first }

let minimize ?max_steps fx proto viol =
  ignore max_steps;
  let best = ref viol in
  let continue_ = ref true in
  while !continue_ do
    let bound = List.length !best.v_trace - 1 in
    if bound < 1 then continue_ := false
    else
      match (explore ~max_steps:bound ~stop_at_first:true fx proto).violation with
      | Some v -> best := v
      | None -> continue_ := false
  done;
  !best

let replay fx proto trace =
  let sys = build fx proto in
  List.iter
    (fun ch ->
      (* Cross-check recorded metadata before firing: a stale trace
         against changed code fails loudly, not subtly. *)
      (if ch.c_label <> "" then
         let pending = Engine.pending_set sys.engine in
         match
           List.find_opt
             (fun (r : Controlled_queue.ready) ->
               r.Controlled_queue.r_seq = ch.c_seq)
             pending
         with
         | Some r when r.Controlled_queue.r_label = ch.c_label -> ()
         | Some r ->
             failwith
               (Printf.sprintf
                  "mcheck: replay divergence — event %d is %S, trace says %S"
                  ch.c_seq r.Controlled_queue.r_label ch.c_label)
         | None -> ());
      fire sys ch)
    trace;
  violation_of sys

let digest fx proto prefix =
  let sys = build fx proto in
  List.iter (fire sys) prefix;
  digest_sys sys

(* ---- trace files -------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_vkind = function
  | Cycle (dst, nodes) ->
      let cyc =
        match nodes with
        | [] -> "?"
        | hd :: _ ->
            String.concat "->" (List.map string_of_int (nodes @ [ hd ]))
      in
      Printf.sprintf "cycle dst=%d via %s" dst cyc
  | Monitor n -> Printf.sprintf "monitor violations=%d" n

let write_trace ~path (fx : Fixture.t) proto viol =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc
        "{\"k\":\"mcheck\",\"fixture\":\"%s\",\"protocol\":\"%s\",\"steps\":%d}\n"
        (json_escape fx.Fixture.name)
        (protocol_name proto)
        (List.length viol.v_trace);
      List.iteri
        (fun i ch ->
          Printf.fprintf oc
            "{\"k\":\"step\",\"i\":%d,\"seq\":%d,\"tag\":%d,\"t\":%d,\"f\":%d,\"s\":\"%s\"}\n"
            i ch.c_seq ch.c_tag ch.c_time
            (if ch.c_float then 1 else 0)
            (json_escape ch.c_label))
        viol.v_trace;
      match viol.v_kind with
      | Cycle (dst, nodes) ->
          Printf.fprintf oc
            "{\"k\":\"violation\",\"kind\":\"cycle\",\"dst\":%d,\"cycle\":\"%s\",\"count\":0,\"depth\":%d}\n"
            dst
            (String.concat " " (List.map string_of_int nodes))
            (List.length viol.v_trace)
      | Monitor n ->
          Printf.fprintf oc
            "{\"k\":\"violation\",\"kind\":\"monitor\",\"dst\":-1,\"cycle\":\"\",\"count\":%d,\"depth\":%d}\n"
            n (List.length viol.v_trace))

let field fields name =
  match List.assoc_opt name fields with
  | Some (Obs.Jsonl.Int i) -> Some i
  | _ -> None

let sfield fields name =
  match List.assoc_opt name fields with
  | Some (Obs.Jsonl.Str s) -> Some s
  | _ -> None

let read_trace ~path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines -> (
      let header = ref None in
      let steps = ref [] in
      let viol = ref None in
      let err = ref None in
      List.iteri
        (fun lineno line ->
          if !err = None && String.trim line <> "" then
            match Obs.Jsonl.parse_line line with
            | None ->
                err := Some (Printf.sprintf "line %d: bad JSON" (lineno + 1))
            | Some fields -> (
                match sfield fields "k" with
                | Some "mcheck" -> (
                    match
                      (sfield fields "fixture", sfield fields "protocol")
                    with
                    | Some fx, Some p -> (
                        match protocol_of_string p with
                        | Some proto -> header := Some (fx, proto)
                        | None ->
                            err :=
                              Some (Printf.sprintf "unknown protocol %S" p))
                    | _ -> err := Some "header missing fixture/protocol")
                | Some "step" -> (
                    match
                      ( field fields "seq",
                        field fields "tag",
                        field fields "t",
                        field fields "f" )
                    with
                    | Some seq, Some tag, Some t, Some f ->
                        steps :=
                          {
                            c_seq = seq;
                            c_tag = tag;
                            c_time = t;
                            c_float = f <> 0;
                            c_label =
                              Option.value ~default:"" (sfield fields "s");
                          }
                          :: !steps
                    | _ ->
                        err :=
                          Some
                            (Printf.sprintf "line %d: bad step" (lineno + 1)))
                | Some "violation" -> (
                    match sfield fields "kind" with
                    | Some "cycle" ->
                        let dst =
                          Option.value ~default:(-1) (field fields "dst")
                        in
                        let nodes =
                          match sfield fields "cycle" with
                          | Some s ->
                              String.split_on_char ' ' s
                              |> List.filter_map int_of_string_opt
                          | None -> []
                        in
                        viol := Some (Cycle (dst, nodes))
                    | Some "monitor" ->
                        viol :=
                          Some
                            (Monitor
                               (Option.value ~default:1
                                  (field fields "count")))
                    | _ -> err := Some "bad violation line")
                | _ ->
                    err :=
                      Some (Printf.sprintf "line %d: unknown k" (lineno + 1))))
        lines;
      match (!err, !header, !viol) with
      | Some e, _, _ -> Error e
      | None, None, _ -> Error "missing mcheck header line"
      | None, _, None -> Error "missing violation line"
      | None, Some (fx, proto), Some v -> Ok (fx, proto, List.rev !steps, v))

let debug_ready fx proto prefix =
  let sys = build fx proto in
  List.iter (fire sys) prefix;
  Engine.ready_set sys.engine
