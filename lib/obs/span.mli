(** Causal packet spans: emit-side stage codes and the offline
    critical-path analyzer behind [manet_sim trace --spans].

    A data packet's trace id is its [(flow, seq)] pair — already
    carried end-to-end by [Packets.Data_msg] and preserved across
    forwarding and PDES border mirroring, so the wire stays byte-true
    and cross-shard continuity is automatic.  Instrumented layers emit
    {!Event.Span} records ({!Bus.span}) at each lifecycle stage;
    {!reconstruct} stitches them (plus the existing [Deliver] /
    [Data_drop] events) back into per-packet paths with per-hop MAC
    timings, and {!report} renders the waterfall and the
    p50/p95/p99-by-stage breakdown on {!Stats.Hdr} histograms. *)

(** Stage codes for {!Event.Span} field [a].  Remaining fields:
    - [originate]: node = source, d = destination, e = payload bytes
    - [buf_enter]/[buf_exit]: node = holder, d = destination
    - [mac_enq]: node = transmitter, d = next hop (-1 broadcast);
      [mac_drop] is the interface-queue-overflow refusal of the same
    - [mac_deq]: head-of-line, transmission is being scheduled
    - [mac_try]: e = attempt number (1-based; retries increment)
    - [mac_end]: ACK received (or broadcast done), e = attempts used
    - [mac_fail]: retry limit exhausted, e = attempts used
    - [ring]/[agg]: discovery-side spans, flow = seq = -1, node =
      origin, d = sought destination, e = ring TTL / aggregate batch
      size, f = rreq id. *)
module Stage : sig
  val originate : int
  val buf_enter : int
  val buf_exit : int
  val mac_enq : int
  val mac_deq : int
  val mac_try : int
  val mac_end : int
  val mac_fail : int
  val mac_drop : int
  val ring : int
  val agg : int

  val name : int -> string
  (** = {!Event.span_stage_name}. *)
end

(** One MAC-layer hop of a packet's path, times in ns (-1 absent). *)
type hop = {
  h_node : int;
  h_next : int;
  mutable h_enq : int;
  mutable h_deq : int;
  mutable h_first_try : int;
  mutable h_last_try : int;
  mutable h_end : int;
  mutable h_attempts : int;
  mutable h_failed : bool;
}

type path = {
  p_flow : int;
  p_seq : int;
  mutable p_src : int;
  mutable p_dst : int;
  mutable p_bytes : int;
  mutable p_originated : int;  (** ns, -1 if the Originate span is missing *)
  mutable p_delivered : int;  (** ns, -1 if not delivered *)
  mutable p_deliver_hops : int;  (** hop count from the Deliver event *)
  mutable p_buffer_ns : int;  (** total route-wait buffer residency *)
  mutable p_hops : hop list;  (** in path order once reconstructed *)
  mutable p_dropped : bool;
  mutable p_drop_reason : int;  (** interned reason id, -1 *)
}

type t = {
  paths : path list;  (** sorted by (flow, seq) *)
  ring_attempts : int;  (** discovery ring spans seen *)
  agg_members : int;  (** RREQs that rode in an aggregate *)
}

val reconstruct : Event.t array -> t
(** Stitch span/deliver/drop events (in trace time order) into
    per-packet paths.  Non-span events other than [Deliver] and
    [Data_drop] are ignored. *)

val is_complete : path -> bool
(** A delivered path is complete when its Originate span is present
    and at least [p_deliver_hops] hops carry both an enqueue and a
    transmission attempt.  (The final hop's [mac_end] lands after the
    Deliver event — the ACK is still in the air — and may be clipped
    by the horizon, so it is deliberately not required.) *)

val report : ?flow:int -> name:(int -> string) -> Event.t array -> string list
(** Rendered analyzer output: reconstruction summary (with a
    [delivered paths complete: d/c] line), stage-latency breakdown
    (p50/p95/p99 over {!Stats.Hdr}), per-flow waterfall, and — when
    [flow] is given — a per-packet stage table for that flow.  [name]
    resolves interned drop-reason ids ({!Reader.name}). *)
