(* Uniform-cell spatial index over the plane.

   The index is rebuilt wholesale by its owner whenever positions drift
   (see Net.Channel) — there is no incremental update, which keeps the
   bookkeeping trivially correct.  [build] counting-sorts the values by
   the cell containing their position into flat parallel arrays: cell
   [c] owns the slice [start.(c), start.(c + 1)) of [xs]/[ys]/[vs].

   A disk query walks the cells overlapping the disk's bounding box and
   tests each point with two unboxed float multiplies — no per-value
   pointer chasing, no hashing, no allocation.  The value array is only
   touched for points inside the disk, so the cache footprint of a query
   is the handful of float-array lines covering the neighbourhood. *)

type 'a t = {
  cell : float;
  (* Covered cell box of the latest build. *)
  mutable x0 : int;
  mutable y0 : int;
  mutable cols : int;
  mutable rows : int;
  mutable n : int;
  mutable start : int array;  (* cols * rows + 1 prefix offsets *)
  mutable xs : float array;  (* point coordinates, cell-sorted *)
  mutable ys : float array;
  mutable vs : Obj.t array;  (* values, parallel to xs/ys *)
  (* Build scratch, kept across builds to avoid churn. *)
  mutable cur : int array;
  mutable sx : float array;
  mutable sy : float array;
  mutable sv : Obj.t array;
}

let create ~cell =
  if not (cell > 0.) then invalid_arg "Grid.create: cell size must be positive";
  {
    cell;
    x0 = 0;
    y0 = 0;
    cols = 0;
    rows = 0;
    n = 0;
    start = [||];
    xs = [||];
    ys = [||];
    vs = [||];
    cur = [||];
    sx = [||];
    sy = [||];
    sv = [||];
  }

let cell_size t = t.cell
let population t = t.n

let coord t x = int_of_float (Float.floor (x /. t.cell))

let clear t =
  t.n <- 0;
  t.cols <- 0;
  t.rows <- 0;
  (* Drop value pointers so cleared grids do not pin dead values. *)
  Array.fill t.vs 0 (Array.length t.vs) (Obj.repr ());
  Array.fill t.sv 0 (Array.length t.sv) (Obj.repr ())

let build (type a) (t : a t) ~(pos : a -> Vec2.t) (items : a list) =
  let n = List.length items in
  t.n <- n;
  if n = 0 then begin
    t.cols <- 0;
    t.rows <- 0
  end
  else begin
    (* Reuse the arrays across builds; grow with headroom so steady
       growth doesn't reallocate every build, and shrink when the batch
       has dropped to a quarter of capacity (churn scenarios) so a burst
       of joins doesn't pin memory forever. *)
    let cap = Array.length t.sx in
    if cap < n || (cap > 64 && cap > 4 * n) then begin
      let c = n + (n / 2) in
      t.sx <- Array.make c 0.;
      t.sy <- Array.make c 0.;
      t.sv <- Array.make c (Obj.repr ());
      t.xs <- Array.make c 0.;
      t.ys <- Array.make c 0.;
      t.vs <- Array.make c (Obj.repr ())
    end;
    (* Pass 1: positions into scratch (in list order), cell bounding box. *)
    let minx = ref max_int and maxx = ref min_int in
    let miny = ref max_int and maxy = ref min_int in
    let i = ref 0 in
    List.iter
      (fun v ->
        let p = pos v in
        let j = !i in
        t.sx.(j) <- p.Vec2.x;
        t.sy.(j) <- p.Vec2.y;
        t.sv.(j) <- Obj.repr v;
        let cx = coord t p.Vec2.x and cy = coord t p.Vec2.y in
        if cx < !minx then minx := cx;
        if cx > !maxx then maxx := cx;
        if cy < !miny then miny := cy;
        if cy > !maxy then maxy := cy;
        incr i)
      items;
    t.x0 <- !minx;
    t.y0 <- !miny;
    t.cols <- !maxx - !minx + 1;
    t.rows <- !maxy - !miny + 1;
    let ncells = t.cols * t.rows in
    let scap = Array.length t.start in
    if scap < ncells + 1 || (scap > 1024 && scap > 4 * (ncells + 1)) then begin
      t.start <- Array.make (ncells + 1) 0;
      t.cur <- Array.make (ncells + 1) 0
    end
    else Array.fill t.start 0 (ncells + 1) 0;
    (* Pass 2: count per cell (offset by one), then prefix-sum. *)
    for j = 0 to n - 1 do
      let c = ((coord t t.sy.(j) - t.y0) * t.cols) + (coord t t.sx.(j) - t.x0) in
      t.start.(c + 1) <- t.start.(c + 1) + 1
    done;
    for c = 1 to ncells do
      t.start.(c) <- t.start.(c) + t.start.(c - 1)
    done;
    Array.blit t.start 0 t.cur 0 (ncells + 1);
    (* Pass 3: scatter into cell-sorted slots. *)
    for j = 0 to n - 1 do
      let c = ((coord t t.sy.(j) - t.y0) * t.cols) + (coord t t.sx.(j) - t.x0) in
      let slot = t.cur.(c) in
      t.cur.(c) <- slot + 1;
      t.xs.(slot) <- t.sx.(j);
      t.ys.(slot) <- t.sy.(j);
      t.vs.(slot) <- t.sv.(j)
    done
  end

let iter_disk (type a) (t : a t) ~center ~radius (f : a -> unit) =
  if t.cols > 0 then begin
    let max_i a b : int = if a > b then a else b
    and min_i a b : int = if a < b then a else b in
    let cx0 = max_i t.x0 (coord t (center.Vec2.x -. radius))
    and cx1 = min_i (t.x0 + t.cols - 1) (coord t (center.Vec2.x +. radius))
    and cy0 = max_i t.y0 (coord t (center.Vec2.y -. radius))
    and cy1 = min_i (t.y0 + t.rows - 1) (coord t (center.Vec2.y +. radius)) in
    let r2 = radius *. radius in
    let px = center.Vec2.x and py = center.Vec2.y in
    for cy = cy0 to cy1 do
      let row = (cy - t.y0) * t.cols in
      for cx = cx0 to cx1 do
        let c = row + cx - t.x0 in
        let i1 = Array.unsafe_get t.start (c + 1) - 1 in
        for i = Array.unsafe_get t.start c to i1 do
          let dx = Array.unsafe_get t.xs i -. px
          and dy = Array.unsafe_get t.ys i -. py in
          if (dx *. dx) +. (dy *. dy) <= r2 then
            f (Obj.obj (Array.unsafe_get t.vs i))
        done
      done
    done
  end

let fold_disk t ~center ~radius f init =
  let acc = ref init in
  iter_disk t ~center ~radius (fun v -> acc := f !acc v);
  !acc

type stats = { cells : int; occupied : int; max_occupancy : int }

let stats t =
  if t.cols = 0 then { cells = 0; occupied = 0; max_occupancy = 0 }
  else begin
    let occupied = ref 0 and max_occ = ref 0 in
    for c = 0 to (t.cols * t.rows) - 1 do
      let k = t.start.(c + 1) - t.start.(c) in
      if k > 0 then incr occupied;
      if k > !max_occ then max_occ := k
    done;
    { cells = t.cols * t.rows; occupied = !occupied; max_occupancy = !max_occ }
  end
