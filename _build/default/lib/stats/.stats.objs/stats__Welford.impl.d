lib/stats/welford.ml: Array
