open Packets

type info = { sn : Seqnum.t; dist : int; fd : int }

let infinity = max_int / 4

let sn_ge_opt a = function None -> true | Some b -> Seqnum.(a >= b)
let sn_gt_opt a = function None -> true | Some b -> Seqnum.(a > b)
let sn_eq_opt a = function None -> false | Some b -> Seqnum.equal a b

let ndc ~own ~adv_sn ~adv_dist =
  match own with
  | None -> true
  | Some i ->
      Seqnum.(adv_sn > i.sn) || (Seqnum.equal adv_sn i.sn && adv_dist < i.fd)

let fdc_requires_reset ~own ~req_sn ~req_fd =
  match own with
  | None -> false
  | Some i -> sn_eq_opt i.sn req_sn && i.fd >= req_fd

let sdc_ignoring_reset ~own ~active ~req_sn ~answer_dist =
  active
  &&
  match own with
  | None -> false
  | Some i ->
      sn_gt_opt i.sn req_sn
      || (sn_eq_opt i.sn req_sn && i.dist < answer_dist)

let sdc ~own ~active ~req_sn ~answer_dist ~reset =
  active
  &&
  match own with
  | None -> false
  | Some i ->
      sn_gt_opt i.sn req_sn
      || (sn_eq_opt i.sn req_sn && i.dist < answer_dist && not reset)
