type handle = Event_queue.handle

type t = {
  queue : Event_queue.t;
  rng : Rng.t;
  mutable clock : Time.t;
  mutable fired : int;
}

let create ?(seed = 1) () =
  { queue = Event_queue.create (); rng = Rng.create seed; clock = Time.zero; fired = 0 }

let now t = t.clock
let rng t = t.rng

let at t time action =
  if Time.(time < t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.at: scheduling in the past (%s < %s)"
         (Time.to_string time) (Time.to_string t.clock));
  Event_queue.schedule t.queue time action

let after t d action = at t (Time.add t.clock d) action

let cancel = Event_queue.cancel

let every t ?(jitter = fun () -> Time.zero) ~start ~interval ~until action =
  if Time.(interval <= Time.zero) then
    invalid_arg "Engine.every: interval must be positive";
  let rec arm time =
    if Time.(time < until) then begin
      (* The cadence is jitter-free ([time], [time + interval], ...); the
         jitter only offsets each firing.  A jittered firing that lands at
         or past the horizon is skipped, not fired late. *)
      let fire = Time.add time (jitter ()) in
      if Time.(fire < until) then
        ignore
          (at t fire (fun () ->
               action ();
               arm (Time.add time interval)))
      else arm (Time.add time interval)
    end
  in
  arm start

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, action) ->
      t.clock <- time;
      t.fired <- t.fired + 1;
      action ();
      true

let run ?until ?max_events t =
  let budget_ok () =
    match max_events with None -> true | Some m -> t.fired < m
  in
  let next () =
    match until with
    | None -> Event_queue.pop t.queue
    | Some limit -> Event_queue.pop_until t.queue limit
  in
  let running = ref true in
  while !running && budget_ok () do
    match next () with
    | None -> running := false
    | Some (time, action) ->
        t.clock <- time;
        t.fired <- t.fired + 1;
        action ()
  done;
  (* Advance the clock to the horizon — idle virtual time passes too, so
     repeated bounded runs observe consistent timestamps.  Not when the
     event budget stopped us with work still pending at or before the
     horizon: fast-forwarding then would move the clock backwards on the
     next [step]. *)
  match until with
  | Some limit when Time.(t.clock < limit) ->
      let pending_before_horizon =
        match Event_queue.next_time t.queue with
        | Some next -> Time.(next <= limit)
        | None -> false
      in
      if not pending_before_horizon then t.clock <- limit
  | Some _ | None -> ()

let events_processed t = t.fired
