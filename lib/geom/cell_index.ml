(* Incremental uniform-cell membership index over a fixed arena.

   The counting-sorted [Grid] is rebuilt wholesale and snapshots
   positions; this sibling maintains membership incrementally — [update]
   moves a node between cells only when its cell actually changed, which
   on a position refresh sweep is O(changed) instead of O(n).  It stores
   no coordinates: a disk query visits every member of the cells
   overlapping the disk's bounding box, a superset of the true disk
   population, and the owner filters against live positions (Net.Channel
   does exactly that, so any candidate superset yields identical
   outcomes).

   Per-cell member lists are growable int arrays with swap-removal;
   [cell_of]/[slot_of] back-pointers make update and removal O(1). *)

type t = {
  cell : float;
  cols : int;
  rows : int;
  items : int array array; (* per-cell member ids *)
  len : int array; (* per-cell live count *)
  cell_of : int array; (* id -> cell, -1 when absent *)
  slot_of : int array; (* id -> slot in items.(cell_of id) *)
  mutable population : int;
}

let create ~cell ~width ~height ~ids =
  if not (cell > 0.) then
    invalid_arg "Cell_index.create: cell size must be positive";
  if width <= 0. || height <= 0. then
    invalid_arg "Cell_index.create: non-positive arena";
  let cols = int_of_float (Float.floor (width /. cell)) + 1 in
  let rows = int_of_float (Float.floor (height /. cell)) + 1 in
  {
    cell;
    cols;
    rows;
    items = Array.make (cols * rows) [||];
    len = Array.make (cols * rows) 0;
    cell_of = Array.make ids (-1);
    slot_of = Array.make ids 0;
    population = 0;
  }

let population t = t.population
let cell_size t = t.cell

let clamp_i v lo hi = if v < lo then lo else if v > hi then hi else v

(* Positions outside the arena (float dust from clamped mobility) land in
   the nearest border cell; queries are filtered by the owner anyway. *)
let cell_at t x y =
  let cx = clamp_i (int_of_float (Float.floor (x /. t.cell))) 0 (t.cols - 1) in
  let cy = clamp_i (int_of_float (Float.floor (y /. t.cell))) 0 (t.rows - 1) in
  (cy * t.cols) + cx

let push t c i =
  let arr = t.items.(c) in
  let n = t.len.(c) in
  let arr =
    if Array.length arr > n then arr
    else begin
      let bigger = Array.make (if n = 0 then 8 else 2 * n) (-1) in
      Array.blit arr 0 bigger 0 n;
      t.items.(c) <- bigger;
      bigger
    end
  in
  arr.(n) <- i;
  t.len.(c) <- n + 1;
  t.cell_of.(i) <- c;
  t.slot_of.(i) <- n

let remove t i =
  let c = t.cell_of.(i) in
  if c >= 0 then begin
    let arr = t.items.(c) in
    let n = t.len.(c) - 1 in
    let s = t.slot_of.(i) in
    let last = arr.(n) in
    arr.(s) <- last;
    t.slot_of.(last) <- s;
    t.len.(c) <- n;
    t.cell_of.(i) <- -1;
    t.population <- t.population - 1
  end

let update t i ~x ~y =
  let c = cell_at t x y in
  let old = t.cell_of.(i) in
  if c <> old then begin
    if old >= 0 then begin
      (* inline removal that keeps the population count *)
      let arr = t.items.(old) in
      let n = t.len.(old) - 1 in
      let s = t.slot_of.(i) in
      let last = arr.(n) in
      arr.(s) <- last;
      t.slot_of.(last) <- s;
      t.len.(old) <- n
    end
    else t.population <- t.population + 1;
    push t c i
  end

let mem t i = t.cell_of.(i) >= 0

let iter_disk t ~x ~y ~radius f =
  let cx0 = clamp_i (int_of_float (Float.floor ((x -. radius) /. t.cell))) 0 (t.cols - 1)
  and cx1 = clamp_i (int_of_float (Float.floor ((x +. radius) /. t.cell))) 0 (t.cols - 1)
  and cy0 = clamp_i (int_of_float (Float.floor ((y -. radius) /. t.cell))) 0 (t.rows - 1)
  and cy1 = clamp_i (int_of_float (Float.floor ((y +. radius) /. t.cell))) 0 (t.rows - 1) in
  for cy = cy0 to cy1 do
    let row = cy * t.cols in
    for cx = cx0 to cx1 do
      let c = row + cx in
      let arr = t.items.(c) in
      for k = 0 to t.len.(c) - 1 do
        f (Array.unsafe_get arr k)
      done
    done
  done

type stats = { cells : int; occupied : int; max_occupancy : int }

let stats t =
  let occupied = ref 0 and max_occ = ref 0 in
  for c = 0 to (t.cols * t.rows) - 1 do
    let k = t.len.(c) in
    if k > 0 then incr occupied;
    if k > !max_occ then max_occ := k
  done;
  { cells = t.cols * t.rows; occupied = !occupied; max_occupancy = !max_occ }
