lib/packets/data_msg.ml: Format Node_id Sim
