(** Shared radio medium.

    Unit-disk propagation: a transmission reaches exactly the radios
    within [Params.range_m] of the sender at the moment it starts.
    Collision model: a radio that sees two temporally overlapping
    transmissions decodes neither, and a radio that is itself transmitting
    hears nothing.  Carrier sense is binary — the medium is busy for a
    radio whenever at least one in-range transmission is in the air.

    Two interchangeable neighbour-query paths exist: a [Naive] linear
    scan of every radio and a [Grid] spatial hash keyed by the
    carrier-sense range.  Both touch identical radios in identical order
    (the grid over-approximates by a drift bound and then re-applies the
    exact range predicate), so per-seed runs are byte-identical across
    modes; [Naive] is retained for differential testing. *)

open Packets

type t

type radio

type mode =
  | Naive  (** O(radios) scan per transmission — reference path *)
  | Grid  (** spatial-hash query of the cells overlapping the CS disk *)
  | Soa
      (** struct-of-arrays path: positions read from a shared
          {!Mobility.Pos_store} and candidates from an incrementally
          maintained {!Geom.Cell_index} — no per-query [Vec2] boxing
          and no wholesale index rebuilds.  Candidate handling is
          superset-invariant, so per-seed runs are byte-identical to
          [Grid]/[Naive]. *)

val create :
  engine:Sim.Engine.t -> ?mode:mode -> ?max_speed:float -> ?obs:Obs.Bus.t ->
  ?world:Mobility.Pos_store.t * float * float -> ?link:Link_model.t ->
  params:Params.t -> unit -> t
(** [create ~engine ~params] builds a channel using the [Grid] index.
    [obs] is the observability bus ({!Obs.Bus}) the channel (and the
    MACs attached to it) emit on; defaults to a fresh disabled bus.
    [max_speed] is an upper bound (m/s) on any radio's speed: the index
    is resynced only when bucketed positions may have drifted past a
    fixed margin, and queries are inflated by the current drift bound.
    When omitted, speeds are treated as unknown and the index is
    resynced on every clock advance — exact for any mobility, and never
    worse than the naive scan.

    [world] is [(store, width, height)] — required by (and only by)
    [Soa] mode: the position store shared with the runner plus the
    arena bounds sizing the cell index.  [link] layers deterministic
    shadowing and/or a partition wall on the unit disk
    ({!Link_model}); omitted, the propagation fast path is the plain
    unit disk, bit-identical to previous behaviour. *)

val params : t -> Params.t

val mode : t -> mode

val attach :
  t -> ?idx:int -> id:Node_id.t -> position:(unit -> Geom.Vec2.t) -> unit ->
  radio
(** Register a node's radio.  [position] is queried at event times (it
    must be safe to call with the engine's current clock).  [idx] is the
    node's slot in the SoA store — required in [Soa] mode, ignored
    otherwise. *)

val set_attached : t -> radio -> bool -> unit
(** Churn: [set_attached t r false] removes the radio from the candidate
    set of every subsequent transmission (and from the incremental index
    immediately); [true] re-inserts it at its current position.
    In-flight receptions drain normally — the down-gated MAC discards
    them. *)

val attached : radio -> bool

val index_stats : t -> int * int * int
(** [(cells, occupied, max_occupancy)] of the live spatial index —
    health gauges surfaced through [Obs.Telemetry]. *)

val set_receiver : radio -> (Frame.t -> unit) -> unit
(** Called with every frame the radio decodes, including frames addressed
    to other nodes (promiscuous reception is the MAC's filtering job). *)

val set_medium_listener : radio -> (bool -> unit) -> unit
(** Called when carrier sense transitions busy<->idle for this radio. *)

val transmit : t -> radio -> Frame.t -> duration:Sim.Time.t -> unit
(** Start a transmission now.  The caller (MAC) is responsible for medium
    access; the channel just propagates. *)

val set_remote :
  t -> grace:Sim.Time.t -> (Frame.t -> src:radio -> duration:Sim.Time.t -> bool)
  -> unit
(** PDES routing hook, called at the start of every local transmission.
    The callback posts remote copies to whichever other shards the
    transmission may concern and returns whether it posted any; the
    result is latched on the source radio ({!crossed}) so the MAC can
    extend that frame's unicast ACK wait by [grace] (the cross-shard
    delivery latency is paid twice: data out, ACK back). *)

val remote_grace : t -> Sim.Time.t
(** The [grace] registered with {!set_remote}; [Time.zero] when no
    remote hook is installed (every non-PDES run). *)

val crossed : radio -> bool
(** Whether this radio's most recent transmission was forwarded
    cross-shard by the remote hook. *)

val radio_pos : radio -> Geom.Vec2.t
(** The radio's current position (queries the position closure). *)

val transmit_from :
  t -> src_id:Node_id.t -> pos:Geom.Vec2.t -> Frame.t -> duration:Sim.Time.t
  -> unit
(** Deliver the remote copy of a transmission whose source radio lives
    on another shard: propagates [frame] from the snapshot position
    [pos] to this channel's radios with normal carrier-sense, capture
    and collision handling.  Does not count in {!transmissions}, does
    not run transmit hooks and emits no Tx event — the source's home
    shard already accounted for the transmission. *)

val busy : t -> radio -> bool
(** Carrier sense, including the radio's own transmission. *)

val transmitting : radio -> bool

val radio_id : radio -> Node_id.t

val neighbors_in_range : t -> radio -> Node_id.t list
(** Radios currently within range — used by tests and topology audits,
    not by protocols. *)

val add_transmit_hook : t -> (Node_id.t -> Frame.t -> unit) -> unit
(** Register a tap invoked at the start of every transmission (metrics,
    pcap export, ...).  Hooks run in registration order. *)

val transmissions : t -> int
(** Total frames put on the air so far. *)

val in_flight : t -> int
(** Transmissions currently in the air. *)

val obs : t -> Obs.Bus.t
(** The channel's observability bus.  The channel emits [Tx] at every
    transmission start and [Collision] for each locked-but-lost frame
    at end of transmission; MACs share this bus for their rx/ifq
    events. *)
