(* Domain-parallel sweep execution.

   Three layers of evidence that fanning a sweep across domains changes
   nothing but the wall clock:

   - executor unit tests (index order, exactly-once, chunking,
     exception propagation, the worker-domain flag);
   - differential conformance: the same (point x seed) matrix at jobs=1
     and jobs=N yields exactly equal per-seed outcomes, aggregate
     Welford statistics, loop-audit results and fault-injection
     violation sites — equality is [=] / [Stdlib.compare], never a
     tolerance;
   - regression pins for the domain-safety audit: per-trial re-run
     determinism under QCheck-random scenarios (hidden global mutable
     state would break same-process re-runs before it ever raced across
     domains), per-bus intern-table isolation, and the pretty trace
     sink staying off worker domains.

   [MANET_TEST_JOBS] sets the multi-domain job count (default 4; CI
   pins it to 4 explicitly). *)

open Sim
open Experiment

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_jobs =
  match Sys.getenv_opt "MANET_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j >= 2 -> j | _ -> 4)
  | None -> 4

let small_scenario ?(seed = 7) ?(audit = false) ?(speed_max = 10.)
    ?(duration = 15.) ?(flows = 2) ?(nodes = 10) ?(pps = 4.) ?(pause = 0.) () =
  {
    Scenario.label = "par-test";
    num_nodes = nodes;
    terrain = Geom.Terrain.create ~width:500. ~height:400.;
    placement = Scenario.Uniform;
    speed_min = (if speed_max > 0. then 1. else 0.);
    speed_max;
    pause = Time.sec pause;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = flows;
        packets_per_sec = pps;
        payload_bytes = 512;
        mean_flow_duration = Time.sec duration;
        startup_window = Time.sec 2.;
      };
    protocol = Scenario.ldr;
    net = Net.Params.default;
    seed;
    audit_loops = audit;
    naive_channel = false;
    heap_scheduler = false;
    shards = 1;
    mobility = Scenario.Waypoint;
    shadowing = None;
    churn = None;
    partition = None;
    soa = false;
  }

(* ---- executor ---------------------------------------------------------- *)

let map_order () =
  let expect = Array.init 23 (fun i -> i * i) in
  checkb "jobs=1" true (Parallel.map ~jobs:1 23 (fun i -> i * i) = expect);
  checkb "jobs=4" true (Parallel.map ~jobs:4 23 (fun i -> i * i) = expect);
  checkb "jobs=4 chunk=5" true
    (Parallel.map ~jobs:4 ~chunk:5 23 (fun i -> i * i) = expect);
  checkb "jobs > n" true (Parallel.map ~jobs:64 23 (fun i -> i * i) = expect);
  checkb "n=0" true (Parallel.map ~jobs:4 0 (fun i -> i) = [||]);
  checkb "n=1" true (Parallel.map ~jobs:4 1 (fun i -> i + 41) = [| 41 |])

let map_exactly_once () =
  let n = 57 in
  let counters = Array.init n (fun _ -> Atomic.make 0) in
  ignore
    (Parallel.map ~jobs:test_jobs ~chunk:3 n (fun i ->
         Atomic.incr counters.(i)));
  Array.iteri
    (fun i c -> checki (Printf.sprintf "index %d ran once" i) 1 (Atomic.get c))
    counters

let map_exception () =
  match
    Parallel.map ~jobs:test_jobs 16 (fun i ->
        if i = 7 then failwith "trial 7 exploded" else i)
  with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.check Alcotest.string "message" "trial 7 exploded" m

let resolve_jobs () =
  checkb "auto >= 1" true (Parallel.resolve_jobs 0 >= 1);
  checki "explicit" 3 (Parallel.resolve_jobs 3);
  Alcotest.check_raises "negative"
    (Invalid_argument "Parallel.resolve_jobs: jobs must be >= 0") (fun () ->
      ignore (Parallel.resolve_jobs (-1)))

let worker_flag () =
  checkb "main is not a worker" false (Parallel.on_worker_domain ());
  let inline = Parallel.map ~jobs:1 3 (fun _ -> Parallel.on_worker_domain ()) in
  checkb "inline path stays on main" true (inline = [| false; false; false |]);
  let fanned =
    Parallel.map ~jobs:2 6 (fun _ -> Parallel.on_worker_domain ())
  in
  checkb "worker domains flagged" true (Array.for_all Fun.id fanned);
  checkb "flag does not leak to main" false (Parallel.on_worker_domain ())

(* ---- differential conformance ------------------------------------------ *)

(* Everything a trial reports, in one polymorphically comparable
   value.  [Metrics.summary] is a float record; [drops]/[control] fold
   to sorted assoc lists. *)
let outcome_digest (o : Runner.outcome) =
  ( o.Runner.summary,
    ( Metrics.originated o.Runner.metrics,
      Metrics.delivered o.Runner.metrics,
      Metrics.loop_violations o.Runner.metrics,
      Metrics.control_by_kind o.Runner.metrics,
      Metrics.drops_by_reason o.Runner.metrics ),
    ( o.Runner.events_processed,
      o.Runner.transmissions,
      o.Runner.mac_queue_drops,
      o.Runner.mac_unicast_failures ) )

let welford_digest w =
  (Stats.Welford.count w, Stats.Welford.mean w, Stats.Welford.variance w)

let point_digest (p : Sweep.point) =
  List.map welford_digest
    [
      p.Sweep.delivery_ratio; p.Sweep.latency_ms; p.Sweep.network_load;
      p.Sweep.rreq_load; p.Sweep.rrep_init; p.Sweep.rrep_recv;
      p.Sweep.mean_dest_seqno;
    ]

(* The satellite spec: a 3-point, 5-seed sweep, audit-loops on, at
   jobs=1 and jobs=N.  Per-seed outcomes and per-point aggregates must
   be exactly equal — [=] on every digest. *)
let differential_sweep () =
  let sc = small_scenario ~audit:true () in
  let n = 5 in
  (* Per-seed outcomes, single point. *)
  let seq = Sweep.trial_outcomes ~jobs:1 sc ~n in
  let par = Sweep.trial_outcomes ~jobs:test_jobs sc ~n in
  checki "trial count" n (Array.length par);
  for i = 0 to n - 1 do
    checkb
      (Printf.sprintf "seed %d outcome identical" (sc.Scenario.seed + i))
      true
      (Stdlib.compare (outcome_digest seq.(i)) (outcome_digest par.(i)) = 0)
  done;
  (* Full 3-point matrix through Sweep.run. *)
  let points =
    List.map
      (fun pause (s : Scenario.t) -> { s with pause = Time.sec pause })
      [ 0.; 3.; 10. ]
  in
  let seq_pts = Sweep.run ~jobs:1 sc ~points ~trials:n in
  let par_pts = Sweep.run ~jobs:test_jobs sc ~points ~trials:n in
  checki "three points" 3 (List.length par_pts);
  List.iteri
    (fun i (a, b) ->
      checkb
        (Printf.sprintf "point %d aggregates identical" i)
        true
        (point_digest a = point_digest b))
    (List.combine seq_pts par_pts);
  (* And the sequential matrix path agrees with the historical
     per-point trials loop. *)
  let legacy =
    List.map
      (fun refine -> Sweep.trials ~jobs:1 (refine sc) ~n)
      points
  in
  checkb "matrix path matches per-point path" true
    (List.map point_digest seq_pts = List.map point_digest legacy)

(* ---- fault-injection determinism --------------------------------------- *)

(* Each trial seeds a stale-seqno fault and records every monitor
   violation verbatim (sim time, writer node, destination, installed
   successor, the sn/fd quadruple).  jobs=1 and jobs=N must trip on the
   same trial, at the same sim-time, on the same write. *)
let fault_trial seed =
  let sc = small_scenario ~seed ~speed_max:0. ~duration:20. () in
  let violations = ref [] in
  let prepare (sim : Runner.sim) =
    ignore (Runner.attach_monitor ~quiet:true sim);
    Obs.Bus.add_sink sim.Runner.bus (fun ev ->
        if ev.Obs.Event.kind = Obs.Event.Violation then
          violations :=
            ( (ev.Obs.Event.time :> int),
              ev.Obs.Event.node,
              ev.Obs.Event.a,
              ev.Obs.Event.b,
              (ev.Obs.Event.c, ev.Obs.Event.d, ev.Obs.Event.e, ev.Obs.Event.f)
            )
            :: !violations);
    ignore (Fault.stale_seqno sim ~at:(Time.sec 10.))
  in
  let o = Runner.run ~prepare sc in
  (o.Runner.invariant_violations, List.rev !violations)

let fault_determinism () =
  let seeds = [| 3; 4; 5; 6 |] in
  let run jobs =
    Parallel.map ~jobs (Array.length seeds) (fun i -> fault_trial seeds.(i))
  in
  let seq = run 1 and par = run test_jobs in
  let tripped = ref 0 in
  Array.iteri
    (fun i (count, sites) ->
      let pcount, psites = par.(i) in
      checki (Printf.sprintf "seed %d violation count" seeds.(i)) count pcount;
      checkb
        (Printf.sprintf "seed %d violation sites identical" seeds.(i))
        true
        (Stdlib.compare sites psites = 0);
      if count > 0 then incr tripped)
    seq;
  checkb "fault tripped the monitor somewhere" true (!tripped > 0)

(* ---- QCheck: hidden global state would break same-process re-runs ------ *)

let route_table (sim : Runner.sim) =
  let n = Array.length sim.Runner.agents in
  List.init n (fun i ->
      List.init n (fun d ->
          if d = i then None
          else
            Option.map Packets.Node_id.to_int
              (sim.Runner.agents.(i).Routing.Agent.successor
                 (Packets.Node_id.of_int d))))

let run_once sc =
  let sim = Runner.build sc in
  Engine.run ~until:(Time.add sc.Scenario.duration (Time.sec 2.)) sim.Runner.engine;
  Runner.finish sim;
  ( Metrics.originated sim.Runner.sim_metrics,
    Metrics.delivered sim.Runner.sim_metrics,
    Engine.events_processed sim.Runner.engine,
    Net.Channel.transmissions sim.Runner.channel,
    route_table sim )

let rerun_deterministic =
  let gen =
    QCheck.(
      quad (int_range 5 12) (int_range 0 12) (int_range 1 6) (int_bound 10_000))
  in
  QCheck.Test.make
    ~name:"trial re-run in-process: identical packets and route tables"
    ~count:8 gen
    (fun (nodes, speed, pps, seed) ->
      let sc =
        small_scenario ~nodes ~speed_max:(float_of_int speed)
          ~pps:(float_of_int pps) ~duration:8. ~seed ()
      in
      let a = run_once sc and b = run_once sc in
      Stdlib.compare a b = 0)

(* ---- regression pins from the domain-safety audit ----------------------- *)

(* Interned strings live in the per-bus table (not a process global):
   concurrent trials interning disjoint vocabularies must each
   round-trip their own. *)
let intern_isolation () =
  let ok =
    Parallel.map ~jobs:2 4 (fun w ->
        let bus = Obs.Bus.create () in
        let ids =
          Array.init 64 (fun k ->
              Obs.Bus.intern bus (Printf.sprintf "w%d-name-%d" w k))
        in
        Array.for_all Fun.id
          (Array.mapi
             (fun k id ->
               Obs.Bus.name bus id = Printf.sprintf "w%d-name-%d" w k)
             ids))
  in
  checkb "every domain's intern table round-trips" true (Array.for_all Fun.id ok)

(* The pretty trace sink renders through the global Logs reporter; the
   runner must not attach it on worker domains (a shared formatter
   raced by N trials), while jobs=1 keeps today's behaviour. *)
let trace_sink_gated () =
  let lines = ref 0 in
  let reporter =
    {
      Logs.report =
        (fun _src _level ~over k msgf ->
          incr lines;
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.ikfprintf
                (fun _ ->
                  over ();
                  k ())
                Format.err_formatter fmt));
    }
  in
  Logs.set_reporter reporter;
  Logs.Src.set_level Trace.src (Some Logs.Debug);
  let sc = small_scenario ~duration:5. () in
  ignore (Sweep.trial_outcomes ~jobs:2 sc ~n:4);
  let after_parallel = !lines in
  ignore (Sweep.trial_outcomes ~jobs:1 sc ~n:1);
  let after_inline = !lines in
  Logs.Src.set_level Trace.src None;
  Logs.set_reporter Logs.nop_reporter;
  checki "worker trials bypass the global trace reporter" 0 after_parallel;
  checkb "inline trials still trace" true (after_inline > after_parallel)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [
      ( "executor",
        [
          Alcotest.test_case "map order & edges" `Quick map_order;
          Alcotest.test_case "exactly once" `Quick map_exactly_once;
          Alcotest.test_case "exception propagation" `Quick map_exception;
          Alcotest.test_case "resolve jobs" `Quick resolve_jobs;
          Alcotest.test_case "worker flag" `Quick worker_flag;
        ] );
      ( "conformance",
        [
          Alcotest.test_case
            (Printf.sprintf "differential sweep jobs=1 vs jobs=%d" test_jobs)
            `Slow differential_sweep;
          Alcotest.test_case "fault-injection determinism" `Slow
            fault_determinism;
        ] );
      ("rerun", [ qt rerun_deterministic ]);
      ( "audit-regressions",
        [
          Alcotest.test_case "intern-table isolation" `Quick intern_isolation;
          Alcotest.test_case "trace sink gated off workers" `Quick
            trace_sink_gated;
        ] );
    ]
