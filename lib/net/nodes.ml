(* Struct-of-arrays per-node state for city-scale runs.

   One flat object owns what used to live scattered across per-node heap
   records: positions and mobility legs (via [Mobility.Pos_store]'s
   unboxed float planes) and the MAC/ifq scalar counters as int arrays
   indexed by node id.  [Net.Mac] writes its counters through these
   cells when created with [~world]; the channel's SoA index mode reads
   positions straight out of the store.  A metrics sweep over n nodes
   then walks a handful of flat arrays instead of n record spines. *)

type t = {
  store : Mobility.Pos_store.t;
  width : float;
  height : float;
  sent : int array;
  failures : int array;
  qlen : int array;
  qdrops : int array;
  up : bool array;
}

let create ~width ~height mobs ~at =
  if width <= 0. || height <= 0. then
    invalid_arg "Nodes.create: non-positive arena";
  let n = Array.length mobs in
  {
    store = Mobility.Pos_store.of_array mobs ~at;
    width;
    height;
    sent = Array.make n 0;
    failures = Array.make n 0;
    qlen = Array.make n 0;
    qdrops = Array.make n 0;
    up = Array.make n true;
  }

let length t = Array.length t.sent
let store t = t.store
let width t = t.width
let height t = t.height
let sent t i = t.sent.(i)
let failures t i = t.failures.(i)
let queue_length t i = t.qlen.(i)
let queue_drops t i = t.qdrops.(i)
let up t i = t.up.(i)
let set_up t i v = t.up.(i) <- v

(* Raw planes, handed to each Mac so its counter writes are plain array
   stores into the shared arrays. *)
let sent_plane t = t.sent
let failures_plane t = t.failures
let qlen_plane t = t.qlen
let qdrops_plane t = t.qdrops

let total_sent t = Array.fold_left ( + ) 0 t.sent
let total_failures t = Array.fold_left ( + ) 0 t.failures
let total_queue_drops t = Array.fold_left ( + ) 0 t.qdrops
