(** JSONL trace encoding: one flat JSON object per event, ["t"] in
    integer virtual nanoseconds, ints for every payload field, and a
    ["s"] string resolving the interned label for kinds that carry one
    ([tx]/[rx]/[col]/[ifq]: frame class, [drop]: reason, [evt]: name).

    The parser accepts exactly what the writer produces (flat objects
    of int and simple-string fields) — the container ships no JSON
    library, and the trace schema needs nothing more. *)

val write : Bus.t -> out_channel -> Event.t -> unit

val sink : Bus.t -> out_channel -> Bus.sink
(** A bus sink writing one line per event to [oc].  The caller owns
    [oc] (flush/close when the run ends). *)

type value = Int of int | Float of float | Str of string

val parse_line : string -> (string * value) list option
(** Parse one flat JSON object; [None] on malformed input.  Numbers
    with a ['.'] or an exponent parse as [Float] (the time-series
    sampler's gauge lines), plain integers as [Int]. *)

val merge_time_sorted : inputs:string list -> output:string -> unit
(** k-way merge of per-shard trace files (each already sorted by its
    ["t"] field) into one file sorted by ["t"], equal times keeping
    input-list order — a stable, deterministic merge, used to fold a
    sharded run's per-region traces into the single file the classic
    path would have written.  Lines that fail to parse sort first. *)
