(* One flat JSON object per line; "t" is virtual time in integer
   nanoseconds (exact round trip), "s" resolves the interned label for
   kinds that carry one.  Hand-rolled — the toolchain has no JSON
   library, and the schema is flat ints plus escape-free short
   strings. *)

let write bus oc (ev : Event.t) =
  Printf.fprintf oc "{\"t\":%d,\"n\":%d,\"k\":\"%s\"" (ev.time :> int) ev.node
    (Event.kind_name ev.kind);
  if Event.has_label ev.kind && ev.a >= 0 then
    Printf.fprintf oc ",\"s\":\"%s\"" (Bus.name bus ev.a);
  Printf.fprintf oc ",\"a\":%d,\"b\":%d,\"c\":%d,\"d\":%d,\"e\":%d,\"f\":%d}\n"
    ev.a ev.b ev.c ev.d ev.e ev.f

let sink bus oc : Bus.sink = fun ev -> write bus oc ev

(* ---- Minimal flat-object parser ---------------------------------------- *)

type value = Int of int | Float of float | Str of string

exception Malformed

let parse_line s : (string * value) list option =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do incr pos done
  in
  let expect c = if peek () = c then incr pos else raise Malformed in
  let quoted () =
    expect '"';
    let b = Buffer.create 8 in
    let rec go () =
      if !pos >= n then raise Malformed
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then raise Malformed;
            Buffer.add_char b s.[!pos + 1];
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let number_value () =
    let start = !pos in
    if peek () = '-' then incr pos;
    let digits = ref 0 in
    let is_float = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' ->
          incr digits;
          true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      incr pos
    done;
    if !digits = 0 then raise Malformed;
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit) else Int (int_of_string lit)
  in
  try
    skip_ws ();
    expect '{';
    let fields = ref [] in
    let rec members () =
      skip_ws ();
      if peek () = '}' then incr pos
      else begin
        let key = quoted () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = if peek () = '"' then Str (quoted ()) else number_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' ->
            incr pos;
            members ()
        | '}' -> incr pos
        | _ -> raise Malformed
      end
    in
    members ();
    Some (List.rev !fields)
  with Malformed | Failure _ -> None

(* ---- Shard-trace merge ------------------------------------------------- *)

let time_of_line s =
  match parse_line s with
  | Some fields -> (
      match List.assoc_opt "t" fields with Some (Int t) -> t | _ -> min_int)
  | None -> min_int

let merge_time_sorted ~inputs ~output =
  let ics = Array.of_list (List.map open_in inputs) in
  let k = Array.length ics in
  (* One-line lookahead per input; each shard's file is already sorted
     by virtual time, so a k-way minimum scan suffices. *)
  let head = Array.make k None in
  let refill i =
    head.(i) <-
      (match input_line ics.(i) with
      | line -> Some (time_of_line line, line)
      | exception End_of_file -> None)
  in
  Fun.protect
    ~finally:(fun () -> Array.iter close_in_noerr ics)
    (fun () ->
      for i = 0 to k - 1 do
        refill i
      done;
      let oc = open_out output in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let continue = ref true in
          while !continue do
            (* Strict [<] so equal-time lines keep input (shard) order:
               the merge is stable, hence deterministic. *)
            let best = ref (-1) in
            let best_t = ref max_int in
            for i = k - 1 downto 0 do
              match head.(i) with
              | Some (t, _) when t <= !best_t ->
                  best := i;
                  best_t := t
              | _ -> ()
            done;
            match !best with
            | -1 -> continue := false
            | i ->
                (match head.(i) with
                | Some (_, line) ->
                    output_string oc line;
                    output_char oc '\n'
                | None -> assert false);
                refill i
          done))
