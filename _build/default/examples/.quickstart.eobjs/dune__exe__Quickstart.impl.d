examples/quickstart.ml: Experiment Format Geom List Metrics Net Runner Scenario Sim Traffic
