examples/figure1.ml: Array Experiment Format Ldr List Node_id Option Packets Seqnum Sim
