test/test_aodv.mli:
