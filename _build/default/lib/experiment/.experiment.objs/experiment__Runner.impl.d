lib/experiment/runner.ml: Array Data_msg Engine List Metrics Mobility Net Node_id Packets Rng Routing Scenario Sim Time Trace Traffic
