type t = int64

let zero = 0L

let ns n =
  if Int64.compare n 0L < 0 then invalid_arg "Time.ns: negative";
  n

let of_float_ns x =
  if x < 0. then invalid_arg "Time: negative duration";
  Int64.of_float (Float.round x)

let us x = of_float_ns (x *. 1e3)
let ms x = of_float_ns (x *. 1e6)
let sec x = of_float_ns (x *. 1e9)

let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9

let add = Int64.add

let diff a b =
  if Int64.compare a b < 0 then invalid_arg "Time.diff: negative result";
  Int64.sub a b

let mul t k =
  if k < 0 then invalid_arg "Time.mul: negative factor";
  Int64.mul t (Int64.of_int k)

let div t k =
  if k <= 0 then invalid_arg "Time.div: non-positive divisor";
  Int64.div t (Int64.of_int k)

let scale t x =
  if x < 0. then invalid_arg "Time.scale: negative factor";
  of_float_ns (Int64.to_float t *. x)

let compare = Int64.compare
let equal = Int64.equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let pp fmt t =
  let x = Int64.to_float t in
  if Stdlib.( < ) x 1e3 then Format.fprintf fmt "%.0fns" x
  else if Stdlib.( < ) x 1e6 then Format.fprintf fmt "%.3fus" (x /. 1e3)
  else if Stdlib.( < ) x 1e9 then Format.fprintf fmt "%.3fms" (x /. 1e6)
  else Format.fprintf fmt "%.3fs" (x /. 1e9)

let to_string t = Format.asprintf "%a" pp t
