(** Discrete-event simulation driver.

    Owns the virtual clock and the pending-event set.  All simulated
    activity — packet transmissions, protocol timers, mobility
    waypoints, traffic sources — is expressed as events scheduled on
    one engine.

    Two interchangeable schedulers back the event set: the default
    {!Calendar_queue} (O(1) schedule/cancel, pooled zero-allocation
    slots) and the reference {!Event_queue} binary heap.  Outcomes are
    event-for-event identical; the differential tests rely on it. *)

type t

type scheduler = [ `Heap | `Calendar | `Controlled ]
(** [`Controlled] backs the event set with {!Controlled_queue} for
    model-checking runs: the pending set is introspectable
    ({!ready_set}) and an explorer can pick which ready event fires
    next ({!fire_seq}).  Left to {!run}/{!step} it pops the global
    (time, seq)-minimum — event-for-event identical to [`Calendar]. *)

type handle
(** Identifies a scheduled event so it can be cancelled.  Calendar
    handles are immediate ints; heap handles are records — both hide
    behind one abstract type so call sites are scheduler-agnostic. *)

val none : handle
(** A handle that never names a live event — the "no timer pending"
    value for handle-typed fields.  [cancel t none] is a no-op. *)

val is_none : handle -> bool

val create : ?seed:int -> ?scheduler:scheduler -> unit -> t
(** [scheduler] defaults to [`Calendar]; [`Heap] keeps the binary-heap
    reference path for differential testing and benchmarking. *)

val scheduler : t -> scheduler

val controlled : t -> bool
(** True for [`Controlled] engines — subsystems use it to route sends
    through {!schedule_floating} instead of fixed-delay timers. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root generator.  Subsystems should [Rng.split] it once at
    setup so their streams stay independent. *)

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at t time f] schedules [f] at absolute [time], which must not be in
    the past. *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** [after t d f] schedules [f] at [now t + d]. *)

val at_fn : t -> Time.t -> ('a -> unit) -> 'a -> handle
(** [at_fn t time fn arg] schedules [fn arg] at [time].  With the
    calendar scheduler the pair is stored in the pooled event slot —
    nothing is allocated, unlike [at], whose callback closure is a
    fresh heap block.  Meant for high-frequency event classes whose
    callback is a pre-bound top-level function over a long-lived state
    record. *)

val after_fn : t -> Time.t -> ('a -> unit) -> 'a -> handle
(** [after_fn t d fn arg] is [at_fn] at [now t + d]. *)

val at_tagged :
  t -> Time.t -> tag:int -> label:string -> (unit -> unit) -> handle
(** [at] with explorer-visible metadata: under the controlled scheduler
    the event's {!Controlled_queue.ready} entry carries [tag]/[label]
    (mcheck uses the tag for the acting node and the label for trace
    readability).  Under other schedulers identical to {!at}. *)

val schedule_floating : t -> ?tag:int -> ?label:string -> (unit -> unit)
  -> handle
(** An in-flight asynchronous message: under the controlled scheduler it
    becomes a {e floating} event the explorer may delay past timers and
    later messages; its nominal time is the current clock and firing it
    never moves the clock backwards.  Under other schedulers it degrades
    to [at t (now t)] — immediate delivery. *)

val ready_set : t -> Controlled_queue.ready list
(** The explorer's choice set (see {!Controlled_queue.ready}).  Raises
    [Invalid_argument] unless the engine is [`Controlled]. *)

val pending_set : t -> Controlled_queue.ready list
(** Every live controlled event, ready or not — mcheck's state-digest
    input.  Raises [Invalid_argument] unless [`Controlled]. *)

val fire_seq : t -> int -> bool
(** Fire the pending controlled event with the given sequence id (from
    {!ready_set}); false if no such live event.  The clock advances to
    the event's nominal time if that is later.  Raises
    [Invalid_argument] unless the engine is [`Controlled]. *)

val advance_clock : t -> Time.t -> unit
(** Move the controlled clock forward to [time] (no-op if already
    there or past) without firing anything — mcheck's fixture prelude
    uses it to deliver a held message at its hold instant, so lifetime
    arithmetic sees the delayed delivery time.  Raises
    [Invalid_argument] unless the engine is [`Controlled]. *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event (or {!none})
    is a no-op.  Under the calendar scheduler the event's slot is freed
    immediately, not at pop time. *)

val every : t -> ?jitter:(unit -> Time.t) -> start:Time.t -> interval:Time.t
  -> until:Time.t -> (unit -> unit) -> unit
(** [every t ~start ~interval ~until f] runs [f] at [start],
    [start+interval], ... while the firing time is before [until].
    [jitter] adds a per-firing offset; a jittered firing landing at or
    past [until] is skipped (the jitter-free cadence continues).  Raises
    [Invalid_argument] if [interval <= 0] — a zero interval would
    schedule an unbounded same-instant event storm. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Process events in order until the queue drains, the clock passes
    [until], or [max_events] events have fired.  When [until] is given
    and no pending event remains at or before it, the clock ends at
    [until] — idle virtual time passes, so timeouts measured across
    repeated bounded runs behave as expected.  When [max_events] stops
    the run with events still due before the horizon, the clock stays at
    the last fired event so a resumed run never observes time moving
    backwards. *)

val step : t -> bool
(** Fire the single earliest event.  Returns false when idle. *)

val events_processed : t -> int

val next_time_ns : t -> int
(** Earliest pending event time in nanoseconds, [max_int] when idle.
    O(1) amortized under either scheduler; the PDES coordinator polls
    this every window to size the next synchronous window. *)

type stats = { pending : int; fired : int }

val stats : t -> stats
(** Scheduler gauges: currently pending (scheduled, not yet fired or
    cancelled) and total fired events.  O(1) under either scheduler;
    the time-series sampler reads this each interval. *)

val calendar_buckets : t -> int
(** Current calendar-wheel bucket count; 0 under the heap scheduler. *)

val calendar_occupancy : t -> float
(** Pending events per calendar bucket (the wheel resizes to keep this
    near 1); 0 under the heap scheduler.  Telemetry gauge. *)

(** Recorded scheduler workloads, for the engine benchmark: the exact
    schedule/cancel/pop op sequence of a run, replayable through either
    scheduler with no-op callbacks.  This isolates the engine hot path
    — a full simulation spends most of its time in protocol and channel
    code that is identical under both schedulers. *)
module Trace : sig
  type t

  val length : t -> int
  (** Total recorded ops (schedules + cancels + pops). *)

  val pops : t -> int
  (** Recorded pops — the run's fired-event count while recording. *)
end

val record_trace : t -> Trace.t
(** Start recording this engine's scheduler ops.  The engine must use
    the calendar scheduler (its int handles are what the recorder maps
    back to schedule ops); raises [Invalid_argument] on a heap engine. *)

val replay_trace : scheduler:scheduler -> Trace.t -> int
(** Drive a fresh engine of the given mode through the recorded op
    sequence (schedules via the same [at]/[at_fn] split the original
    run used) and return the number of events fired.  Deterministic;
    both modes fire exactly {!Trace.pops} events. *)
