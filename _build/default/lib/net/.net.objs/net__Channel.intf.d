lib/net/channel.mli: Frame Geom Node_id Packets Params Sim
