type point = {
  delivery_ratio : Stats.Welford.t;
  latency_ms : Stats.Welford.t;
  network_load : Stats.Welford.t;
  byte_load : Stats.Welford.t;
  rreq_load : Stats.Welford.t;
  rrep_init : Stats.Welford.t;
  rrep_recv : Stats.Welford.t;
  mean_dest_seqno : Stats.Welford.t;
}

let empty_point () =
  {
    delivery_ratio = Stats.Welford.create ();
    latency_ms = Stats.Welford.create ();
    network_load = Stats.Welford.create ();
    byte_load = Stats.Welford.create ();
    rreq_load = Stats.Welford.create ();
    rrep_init = Stats.Welford.create ();
    rrep_recv = Stats.Welford.create ();
    mean_dest_seqno = Stats.Welford.create ();
  }

let add_summary p (s : Metrics.summary) =
  Stats.Welford.add p.delivery_ratio s.s_delivery_ratio;
  Stats.Welford.add p.latency_ms s.s_latency_ms;
  Stats.Welford.add p.network_load s.s_network_load;
  Stats.Welford.add p.byte_load s.s_byte_load;
  Stats.Welford.add p.rreq_load s.s_rreq_load;
  Stats.Welford.add p.rrep_init s.s_rrep_init;
  Stats.Welford.add p.rrep_recv s.s_rrep_recv;
  Stats.Welford.add p.mean_dest_seqno s.s_mean_dest_seqno

let merge_points a b =
  let m = Stats.Welford.merge in
  {
    delivery_ratio = m a.delivery_ratio b.delivery_ratio;
    latency_ms = m a.latency_ms b.latency_ms;
    network_load = m a.network_load b.network_load;
    byte_load = m a.byte_load b.byte_load;
    rreq_load = m a.rreq_load b.rreq_load;
    rrep_init = m a.rrep_init b.rrep_init;
    rrep_recv = m a.rrep_recv b.rrep_recv;
    mean_dest_seqno = m a.mean_dest_seqno b.mean_dest_seqno;
  }

(* The whole (parameter-point × seed) matrix fans through one
   Parallel.map call, so a 3-point × 10-seed sweep keeps 8 workers busy
   rather than parallelising 10 trials at a time.  Trial k runs point
   [k / n] under seed [seed + k mod n]; results land at index k, so the
   Welford accumulators below always fold in ascending-seed order per
   point no matter which domain finished first — the aggregates are
   bit-identical to the sequential path's. *)
let run ?jobs (sc : Scenario.t) ~points ~trials:n =
  if n <= 0 then invalid_arg "Sweep.run: trials must be >= 1";
  let scs = Array.of_list (List.map (fun refine -> refine sc) points) in
  let npoints = Array.length scs in
  let outcomes =
    Parallel.map ?jobs (npoints * n) (fun k ->
        let sc : Scenario.t = scs.(k / n) in
        Runner.run { sc with seed = sc.seed + (k mod n) })
  in
  List.init npoints (fun pi ->
      let p = empty_point () in
      for t = 0 to n - 1 do
        add_summary p outcomes.((pi * n) + t).Runner.summary
      done;
      p)

let trial_outcomes ?jobs (sc : Scenario.t) ~n =
  if n <= 0 then invalid_arg "Sweep.trial_outcomes: n must be >= 1";
  Parallel.map ?jobs n (fun i -> Runner.run { sc with seed = sc.seed + i })

let trials ?jobs (sc : Scenario.t) ~n =
  let p = empty_point () in
  Array.iter
    (fun (o : Runner.outcome) -> add_summary p o.Runner.summary)
    (trial_outcomes ?jobs sc ~n);
  p

let pause_sweep ?jobs (sc : Scenario.t) ~pauses ~trials:n =
  let points =
    List.map (fun pause (s : Scenario.t) -> { s with pause }) pauses
  in
  List.combine pauses (run ?jobs sc ~points ~trials:n)
