type rreq = {
  dst : Node_id.t;
  dst_sn : Seqnum.t option;
  rreq_id : int;
  origin : Node_id.t;
  origin_sn : Seqnum.t;
  fd : int;
  answer_dist : int;
  dist : int;
  ttl : int;
  reset : bool;
  no_reverse : bool;
  unicast_probe : bool;
}

type rrep = {
  dst : Node_id.t;
  dst_sn : Seqnum.t;
  origin : Node_id.t;
  rreq_id : int;
  dist : int;
  lifetime : Sim.Time.t;
  rrep_no_reverse : bool;
}

type rerr = { unreachable : (Node_id.t * Seqnum.t option) list }

type t = Rreq of rreq | Rrep of rrep | Rerr of rerr

(* Sizes mirror the AODV message layouts (the paper bases LDR's messaging
   on AODV) plus LDR's extra fields: 8-byte labeled sequence numbers
   instead of 4-byte ones, and the fd / answer_dist words in the RREQ. *)
let size_bytes = function
  | Rreq _ ->
      (* type/flags/ttl 4 + rreq_id 4 + dst 4 + dst_sn 8 + origin 4
         + origin_sn 8 + fd 4 + answer_dist 4 + dist 4 *)
      44
  | Rrep _ ->
      (* type/flags 4 + dst 4 + dst_sn 8 + origin 4 + rreq_id 4 + dist 4
         + lifetime 4 *)
      32
  | Rerr { unreachable } -> 4 + (List.length unreachable * 12)

let kind = function Rreq _ -> "RREQ" | Rrep _ -> "RREP" | Rerr _ -> "RERR"

let pp fmt = function
  | Rreq r ->
      Format.fprintf fmt
        "ldr-rreq[dst=%a id=(%a,%d) fd=%d ad=%d dist=%d ttl=%d%s%s%s]"
        Node_id.pp r.dst Node_id.pp r.origin r.rreq_id r.fd r.answer_dist
        r.dist r.ttl
        (if r.reset then " T" else "")
        (if r.no_reverse then " N" else "")
        (if r.unicast_probe then " D" else "")
  | Rrep r ->
      Format.fprintf fmt "ldr-rrep[dst=%a sn=%a dist=%d to=(%a,%d)]"
        Node_id.pp r.dst Seqnum.pp r.dst_sn r.dist Node_id.pp r.origin
        r.rreq_id
  | Rerr { unreachable } ->
      Format.fprintf fmt "ldr-rerr[%d dests]" (List.length unreachable)
