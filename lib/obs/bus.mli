(** The event bus: typed emit points fanned out to pluggable sinks.

    A bus with no sinks is disabled; every emit site guards with
    {!on} — a single array-header load — so a run without observers
    pays one predictable branch per event and nothing else.  With
    sinks attached, emission fills the bus's single scratch record
    (zero allocation) and hands it to each sink in attach order.

    Sinks receive a {b reused} record: copy it ({!Event.copy_into}) if
    you retain it past the callback.  String-valued payloads are
    interned: call sites pass {!intern} ids, sinks resolve them with
    {!name}. *)

type sink = Event.t -> unit

type t

val create : unit -> t
(** A bus with no sinks — disabled until {!add_sink}. *)

val on : t -> bool
(** True when at least one sink is attached.  Emit sites must guard
    with this before doing any argument preparation. *)

val add_sink : t -> sink -> unit
(** Sinks are called in attach order.  Order matters when one sink
    reacts to another's events (attach file writers before the
    invariant monitor so its violation events land after the
    offending write in the trace). *)

val intern : t -> string -> int
val name : t -> int -> string
(** Resolve an interned id; "?" for unknown ids. *)

val dispatch : t -> Event.t -> unit
(** Deliver a caller-owned event record to every sink.  Used by sinks
    that generate events of their own (e.g. the monitor's violations) —
    they must not reuse the bus's scratch record mid-dispatch. *)

(** Typed emit helpers.  All take plain labeled ints (no options — an
    optional int argument would box).  Call only under [on t]. *)

val tx : t -> time:Sim.Time.t -> node:int -> cls:int -> dst:int -> bytes:int -> unit
val rx : t -> time:Sim.Time.t -> node:int -> cls:int -> from:int -> dst:int -> unit
val collision : t -> time:Sim.Time.t -> node:int -> cls:int -> from:int -> unit
val ifq_drop : t -> time:Sim.Time.t -> node:int -> cls:int -> dst:int -> unit

val deliver :
  t -> time:Sim.Time.t -> node:int -> flow:int -> seq:int -> src:int ->
  hops:int -> latency_ns:int -> unit

val data_drop :
  t -> time:Sim.Time.t -> node:int -> reason:int -> flow:int -> seq:int ->
  src:int -> dst:int -> unit

val link_failure : t -> time:Sim.Time.t -> node:int -> next_hop:int -> unit
val proto : t -> time:Sim.Time.t -> node:int -> name:int -> dst:int -> unit

val table_write :
  t -> time:Sim.Time.t -> node:int -> dst:int -> old_succ:int ->
  new_succ:int -> dist:int -> fd:int -> sn:int -> unit

val violation :
  t -> time:Sim.Time.t -> node:int -> dst:int -> succ:int -> own_sn:int ->
  succ_sn:int -> own_fd:int -> succ_fd:int -> unit

val span :
  t -> time:Sim.Time.t -> node:int -> stage:int -> flow:int -> seq:int ->
  d:int -> e:int -> f:int -> unit
(** Packet-lifecycle span record; [stage] is a {!Span.Stage} code,
    [(flow, seq)] the out-of-band trace id (-1/-1 for discovery-side
    stages). *)
