type rreq = {
  origin : Node_id.t;
  dst : Node_id.t;
  rreq_id : int;
  route : Node_id.t list;
  ttl : int;
}

type rrep = {
  origin : Node_id.t;
  dst : Node_id.t;
  full_route : Node_id.t list;
}

type rerr = {
  err_from : Node_id.t;
  broken_from : Node_id.t;
  broken_to : Node_id.t;
  err_dst : Node_id.t;
}

type t =
  | Rreq of rreq
  | Rrep of { sr_remaining : Node_id.t list; rrep : rrep }
  | Rerr of { sr_remaining : Node_id.t list; rerr : rerr }
  | Data of {
      sr_remaining : Node_id.t list;
      full_route : Node_id.t list;
      data : Data_msg.t;
      salvage : int;
    }

let kind = function
  | Rreq _ -> "RREQ"
  | Rrep _ -> "RREP"
  | Rerr _ -> "RERR"
  | Data _ -> "DATA"

let pp_route fmt route =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ">")
       Node_id.pp)
    route

let pp fmt = function
  | Rreq r ->
      Format.fprintf fmt "dsr-rreq[%a->%a id=%d via %a]" Node_id.pp r.origin
        Node_id.pp r.dst r.rreq_id pp_route r.route
  | Rrep { rrep; _ } ->
      Format.fprintf fmt "dsr-rrep[%a->%a %a]" Node_id.pp rrep.dst Node_id.pp
        rrep.origin pp_route rrep.full_route
  | Rerr { rerr; _ } ->
      Format.fprintf fmt "dsr-rerr[%a-%a broken]" Node_id.pp rerr.broken_from
        Node_id.pp rerr.broken_to
  | Data { data; sr_remaining; _ } ->
      Format.fprintf fmt "dsr-%a via %a" Data_msg.pp data pp_route
        sr_remaining
