lib/packets/ldr_msg.ml: Format List Node_id Seqnum Sim
