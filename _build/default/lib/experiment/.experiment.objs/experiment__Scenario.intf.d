lib/experiment/scenario.mli: Aodv Dsr Geom Ldr Net Olsr Routing Sim Traffic
