type t = { stamp : int; counter : int }

let initial ~stamp = { stamp; counter = 0 }

let compare a b =
  let c = Int.compare a.stamp b.stamp in
  if c <> 0 then c else Int.compare a.counter b.counter

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let max a b = if a >= b then a else b

let default_limit = 1 lsl 30

let increment ?(counter_limit = default_limit) ~now_stamp t =
  if Stdlib.( >= ) t.counter counter_limit then begin
    (* Counter saturated: restamp from the clock.  The clock never runs
       backwards, so the fresh stamp exceeds the stored one. *)
    assert (Stdlib.( > ) now_stamp t.stamp);
    { stamp = now_stamp; counter = 0 }
  end
  else { t with counter = t.counter + 1 }

let increments t = t.counter

(* Stamps are clock seconds and counters stay below [default_limit]
   (2^30), so the pair packs into one non-negative immediate with the
   stamp in the high bits — int comparison then matches [compare]. *)
let pack t = (t.stamp lsl 31) lor t.counter

let pp fmt t = Format.fprintf fmt "%d.%d" t.stamp t.counter
