(** CBR workload generator (paper, Section 4).

    The load consists of [num_flows] concurrent flow slots.  Each slot
    picks a random source/destination pair and a duration drawn from an
    exponential with mean [mean_flow_duration] (100 s in the paper), emits
    [packets_per_sec] fixed-size packets, then immediately restarts with a
    fresh random pair — keeping the number of concurrent flows constant,
    as the paper's "10-flow" / "30-flow" loads require. *)

open Packets

type config = {
  num_flows : int;
  packets_per_sec : float;
  payload_bytes : int;  (** 512 in the paper *)
  mean_flow_duration : Sim.Time.t;  (** exp-distributed flow length *)
  startup_window : Sim.Time.t;
      (** flow starts are staggered uniformly over this window *)
}

val default_config : config
(** 10 flows, 4 pps, 512 B, exp(100 s), 10 s startup window. *)

val setup :
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  num_nodes:int ->
  config:config ->
  until:Sim.Time.t ->
  emit:(src:Node_id.t -> Data_msg.t -> unit) ->
  unit
(** Schedule the whole workload on [engine].  [emit] is called at each
    packet origination time with a fresh [Data_msg.t] (unique
    (flow_id, seq), origin time stamped). *)

type flow = {
  f_id : int;
  f_src : Node_id.t;
  f_dst : Node_id.t;
  f_start : Sim.Time.t;
  f_stop : Sim.Time.t;  (** exclusive; clamped to the horizon *)
}

val plan :
  rng:Sim.Rng.t -> num_nodes:int -> config:config -> until:Sim.Time.t ->
  flow list
(** Draw the whole workload up-front, replaying {!setup}'s exact RNG
    sequence (slot starts in slot order, then restart draws in
    stop-time order) without an engine.  The PDES runner uses this to
    give every shard the same flows a single-engine run would have
    drawn lazily; flows are returned in draw order. *)

val arm :
  engine:Sim.Engine.t -> config:config ->
  emit:(src:Node_id.t -> Data_msg.t -> unit) -> flow -> unit
(** Schedule one planned flow on [engine]: its first packet tick
    (subsequent ticks re-arm lazily) plus a no-op marker at [f_stop]
    standing in for {!setup}'s restart event, so event counts match the
    classic generator's. *)
