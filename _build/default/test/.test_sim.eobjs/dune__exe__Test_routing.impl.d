test/test_routing.ml: Alcotest Data_msg Engine List Net Node_id Packets Payload Routing Sim Time
