(** Deterministic per-link perturbations of the unit-disk channel.

    Two orthogonal effects, both optional and both seed-deterministic:

    {b Log-normal shadowing} — each unordered node pair draws one normal
    dB offset (clamped to +-3 sigma) from a hash of the seed and the
    pair, converted through the path-loss exponent [eta] into a range
    {e factor}: the pair decodes (and carrier-senses) out to
    [range * factor] instead of [range].  The draw depends only on
    (seed, pair), never on run order, so every index mode, shard layout
    and replay sees identical gains.

    {b Partition wall} — a vertical barrier at [x] absorbing every
    transmission that would cross it during [\[at, heal)].  It is a pure
    predicate of (time, endpoints): nothing is mutated at the partition
    instant, which keeps PDES re-propagation of the same transmission on
    several shards exact. *)

type t

val create :
  ?shadowing:int * float * float ->
  ?partition:Sim.Time.t * Sim.Time.t * float ->
  unit ->
  t
(** [create ?shadowing ?partition ()] — [shadowing] is
    [(seed, sigma_db, eta)]; [partition] is [(at, heal, wall_x)].
    Omitted effects are inert ([gain] = 1, [blocked] = false). *)

val gain : t -> int -> int -> float
(** [gain t a b] is the symmetric range factor for the unordered node
    pair [{a, b}]; memoized after the first draw. *)

val f_max : t -> float
(** Upper bound on any pair's gain — query disks inflate by this so the
    candidate superset still covers every decodable receiver. *)

val blocked : t -> now:Sim.Time.t -> x1:float -> x2:float -> bool
(** Whether the segment between abscissae [x1] and [x2] crosses the
    partition wall while it is up. *)

val shadowed : t -> bool
val partitioned : t -> bool
