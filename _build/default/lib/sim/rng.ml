type t = { mutable state : int64 }

(* splitmix64 (Steele, Lea & Flood): tiny state, passes BigCrush, and
   supports cheap stream splitting -- ideal for reproducible simulation. *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Reject to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform bits mapped to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992. *. x

let float_in t lo hi =
  if lo > hi then invalid_arg "Rng.float_in: empty range";
  lo +. float t (hi -. lo)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let coin t p = float t 1.0 < p

let exponential t mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 (* in (0, 1] to avoid log 0 *) in
  -.mean *. log u

let uniform_time t d = Time.ns (Int64.of_float (float t (Int64.to_float (Time.to_ns d))))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
