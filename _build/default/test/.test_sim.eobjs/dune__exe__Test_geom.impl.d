test/test_geom.ml: Alcotest Geom QCheck QCheck_alcotest Sim Terrain Vec2
