(** Uniform-cell spatial index for disk queries over planar positions.

    [build] snapshots a batch of values keyed by their position at build
    time; [iter_disk] then visits exactly the values whose snapshot
    position lies in a closed query disk.  There is deliberately no
    incremental update: owners tracking moving values re-[build] when
    their staleness bound is exceeded, and inflate query radii by the
    accumulated drift so the visit set still covers everything truly in
    range (see [Net.Channel]).

    Internally values are counting-sorted by cell into flat parallel
    arrays, so a query is a few unboxed float compares per nearby point
    — no hashing or pointer chasing on the hot path.  Memory is
    proportional to the cell bounding box of the batch, suiting bounded
    arenas (simulation terrains) rather than unbounded coordinate
    sets. *)

type 'a t

val create : cell:float -> 'a t
(** [create ~cell] makes an empty grid with square cells of side [cell]
    metres.  Raises [Invalid_argument] unless [cell > 0]. *)

val cell_size : 'a t -> float

val population : 'a t -> int
(** Number of values in the latest [build] batch. *)

val build : 'a t -> pos:('a -> Vec2.t) -> 'a list -> unit
(** [build t ~pos items] replaces the grid contents with [items], each
    keyed by [pos item] evaluated once during the build. *)

val clear : 'a t -> unit
(** Empty the grid and drop references to previously built values. *)

val iter_disk : 'a t -> center:Vec2.t -> radius:float -> ('a -> unit) -> unit
(** Visit every value whose build-time position lies in the closed disk
    [center, radius].  Visit order is unspecified. *)

val fold_disk : 'a t -> center:Vec2.t -> radius:float -> ('b -> 'a -> 'b) -> 'b -> 'b

type stats = { cells : int; occupied : int; max_occupancy : int }

val stats : 'a t -> stats
(** Cell-box size, occupied-cell count and the largest per-cell
    population of the latest [build] — the spatial-index health gauges
    surfaced through [Obs.Telemetry].  O(cells). *)
