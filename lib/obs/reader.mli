(** Post-hoc trace analysis: load a JSONL trace ({!Jsonl}) and answer
    the [manet_sim trace] queries.  All queries return rendered lines
    (via {!Event.pp}, the same renderer the live sinks use), ready to
    print. *)

type t

val load : string -> (t, string) result
val length : t -> int

val events : t -> Event.t array
(** The raw loaded events in trace order (caller must not mutate) —
    the span analyzer ({!Span}) reconstructs packet paths from these. *)

val name : t -> int -> string
(** Resolve an interned label id from the trace's private table. *)

val tx_class_counts : t -> (string * (int * int)) list
(** Per traffic class: [(transmissions, total on-air bytes)] from the
    trace's TX events, sorted by class name — directly comparable with
    {!Net.Pcap.class_counts} over the same run's capture. *)

val timeline : t -> node:int -> string list
(** Every event at one node, in trace order. *)

val flaps : t -> dst:int -> string list
(** Successor changes toward one destination, plus a per-node count. *)

val drop_report : ?bins:int -> t -> string list
(** Data drops, interface-queue overflows and collisions bucketed over
    [bins] equal time intervals (default 10). *)

val violations : t -> int

val violation_window : ?k:int -> t -> int -> (string * string list) option
(** [violation_window t i] is the [i]th (0-based) violation line plus
    the reconstruction of the monitor's ring dump: the last [k]
    (default {!Monitor.default_ring}) raw events preceding it,
    filtered by {!Event.relevant_to} for its destination. *)

val summary : t -> string list
(** Event totals by kind, plus per-class transmission byte totals when
    the trace contains TX events. *)
