test/test_net.ml: Alcotest Array Data_msg Engine Geom List Mobility Net Node_id Packets Payload QCheck QCheck_alcotest Rng Sim Time
