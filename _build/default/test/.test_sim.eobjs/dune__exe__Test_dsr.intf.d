test/test_dsr.mli:
