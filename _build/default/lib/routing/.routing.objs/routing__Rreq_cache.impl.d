lib/routing/rreq_cache.ml: Engine Hashtbl List Node_id Packets Sim Time
