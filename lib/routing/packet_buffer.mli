(** Per-destination holding buffer for data packets awaiting a route.

    On-demand protocols queue packets while route discovery runs.  The
    buffer bounds both residence time and total occupancy; evicted or
    expired packets are reported so the runner can count them as drops. *)

open Packets

type t

val create :
  ?obs:Obs.Bus.t ->
  ?owner:int ->
  engine:Sim.Engine.t ->
  capacity:int ->
  max_age:Sim.Time.t ->
  on_drop:(Data_msg.t -> reason:string -> unit) ->
  unit ->
  t
(** [obs]/[owner] enable buffer-residency span records ([buf_enter] on
    {!push}, [buf_exit] on {!take}) attributed to node [owner]. *)

val push : t -> Data_msg.t -> unit
(** Buffer a packet for [Data_msg.dst].  When full, the oldest buffered
    packet overall is evicted (and reported). *)

val take : t -> Node_id.t -> Data_msg.t list
(** Remove and return all live packets held for a destination, oldest
    first. *)

val drop_all : t -> Node_id.t -> reason:string -> unit
(** Discard (and report) everything held for a destination. *)

val clear : t -> reason:string -> unit
(** Discard (and report) every buffered packet for every destination —
    churn teardown when the holding node goes down. *)

val pending : t -> Node_id.t -> bool
val length : t -> int

val destinations : t -> int
(** Number of destinations with a live queue entry.  Emptied queues are
    removed eagerly, so this stays bounded by [length] (and hence by the
    capacity) no matter how many destinations were ever buffered for. *)
