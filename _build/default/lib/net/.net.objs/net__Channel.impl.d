lib/net/channel.ml: Engine Frame Geom List Node_id Packets Params Sim
