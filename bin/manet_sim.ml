(* Command-line front end for the MANET simulator.

     manet_sim run   --protocol ldr --nodes 50 --flows 10 --pause 30 ...
     manet_sim sweep --protocol aodv --pauses 0,120,900 --trials 3 ...

   `run` executes one scenario and prints its metrics; `sweep` produces a
   delivery-ratio series over pause times, like the paper's figures. *)

open Cmdliner
open Experiment
module Time = Sim.Time

let protocol_conv =
  let parse = function
    | "ldr" -> Ok Scenario.ldr
    | "ldr-plain" -> Ok (Scenario.Ldr Ldr.Config.plain)
    | "aodv" -> Ok Scenario.aodv
    | "dsr" -> Ok Scenario.dsr
    | "dsr-draft7" -> Ok Scenario.dsr_draft7
    | "olsr" -> Ok Scenario.olsr
    | "ldr-agg" -> Ok Scenario.ldr_agg
    | "aodv-agg" -> Ok Scenario.aodv_agg
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print fmt p = Format.pp_print_string fmt (Scenario.protocol_name p) in
  Arg.conv (parse, print)

let protocol =
  Arg.(
    value
    & opt protocol_conv Scenario.ldr
    & info [ "p"; "protocol" ] ~docv:"PROTO"
        ~doc:
          "Routing protocol: ldr, ldr-plain, ldr-agg, aodv, aodv-agg, dsr, \
           dsr-draft7, olsr.")

let nodes =
  Arg.(value & opt int 50 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let width =
  Arg.(value & opt float 1500. & info [ "width" ] ~docv:"M" ~doc:"Terrain width (m).")

let height =
  Arg.(value & opt float 300. & info [ "height" ] ~docv:"M" ~doc:"Terrain height (m).")

let flows =
  Arg.(value & opt int 10 & info [ "f"; "flows" ] ~docv:"K" ~doc:"Concurrent CBR flows.")

let pps =
  Arg.(value & opt float 4. & info [ "pps" ] ~docv:"R" ~doc:"Packets per second per flow.")

let pause =
  Arg.(
    value & opt float 0.
    & info [ "pause" ] ~docv:"S" ~doc:"Random-waypoint pause time (s).")

let speed_max =
  Arg.(
    value & opt float 20.
    & info [ "speed" ] ~docv:"V" ~doc:"Maximum node speed (m/s); 0 = static.")

let duration =
  Arg.(
    value & opt float 120.
    & info [ "d"; "duration" ] ~docv:"S" ~doc:"Simulated seconds.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"I" ~doc:"Random seed.")

let audit =
  Arg.(
    value & flag
    & info [ "audit-loops" ]
        ~doc:"Audit the successor graph for loops at every routing-table write.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print a per-event run trace (transmissions, deliveries, drops, \
              table writes, link failures) to stderr.")

let json =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the outcome as one JSON object on stdout.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Stream every observability event to $(docv) as JSONL \
              (analyse with $(b,manet_sim trace)).")

let pcap_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "pcap" ] ~docv:"FILE"
        ~doc:"Capture every transmitted frame, byte-exact with MAC \
              framing and FCS, to $(docv) as pcap (open in Wireshark or \
              analyse with $(b,manet_sim trace)).")

let monitor =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:"Attach the continuous LDR invariant monitor: every \
              routing-table write is checked in O(1) against the \
              successor's stored invariants; violations print a \
              last-events window to stderr.")

let sample =
  Arg.(
    value
    & opt (some float) None
    & info [ "sample" ] ~docv:"DT"
        ~doc:"Write time-series gauges (queue depths, delivery ratio, \
              control rate, route-table sizes) every $(docv) simulated \
              seconds.")

let sample_out =
  Arg.(
    value
    & opt string "samples.jsonl"
    & info [ "sample-out" ] ~docv:"FILE"
        ~doc:"Destination for $(b,--sample) output.")

let telemetry_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:"Write runtime telemetry (events/s, calendar-queue occupancy, \
              PDES window utilisation, GC counters) to $(docv) as JSONL, \
              one sample per $(b,--telemetry-every).")

let telemetry_prom =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-prom" ] ~docv:"FILE"
        ~doc:"Maintain a Prometheus text-format snapshot of the same \
              gauges at $(docv), atomically replaced on every sample \
              (validate with $(b,manet_sim telemetry)).")

let telemetry_every =
  Arg.(
    value & opt float 1.
    & info [ "telemetry-every" ] ~docv:"DT"
        ~doc:"Telemetry sampling interval in simulated seconds.")

let inject_stale =
  Arg.(
    value
    & opt (some float) None
    & info [ "inject-stale" ] ~docv:"T"
        ~doc:"Fault injection: at simulated second $(docv), feed one node \
              a forged RREP with an absurdly new sequence number — the \
              seeded corruption the invariant monitor is built to catch.")

let shards =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Run the simulation itself across $(docv) spatial regions \
           (conservative synchronous-window PDES, see \
           docs/PARALLELISM.md); metrics are invariant in $(docv) for \
           runs whose traffic stays clear of region borders, and the \
           crossing latency is documented for the rest.  0 = one shard \
           per recommended core, capped at the node count.")

(* --- world options: mobility family, link model, churn, state layout --- *)

let mobility_conv =
  let parse s =
    let bad () =
      Error
        (`Msg
          (Printf.sprintf
             "bad mobility %S (want waypoint, manhattan[:SPACING] or \
              rpgm[:GROUPS[:RADIUS]])"
             s))
    in
    match String.split_on_char ':' s with
    | [ "waypoint" ] -> Ok Scenario.Waypoint
    | "manhattan" :: rest -> (
        match rest with
        | [] -> Ok (Scenario.Manhattan { spacing = 100. })
        | [ sp ] -> (
            match float_of_string_opt sp with
            | Some spacing when spacing > 0. ->
                Ok (Scenario.Manhattan { spacing })
            | _ -> bad ())
        | _ -> bad ())
    | "rpgm" :: rest -> (
        let mk groups radius = Ok (Scenario.Rpgm { groups; radius }) in
        match rest with
        | [] -> mk 4 100.
        | [ g ] -> (
            match int_of_string_opt g with
            | Some g when g > 0 -> mk g 100.
            | _ -> bad ())
        | [ g; r ] -> (
            match (int_of_string_opt g, float_of_string_opt r) with
            | Some g, Some r when g > 0 && r > 0. -> mk g r
            | _ -> bad ())
        | _ -> bad ())
    | _ -> bad ()
  in
  let print fmt = function
    | Scenario.Waypoint -> Format.pp_print_string fmt "waypoint"
    | Scenario.Manhattan { spacing } ->
        Format.fprintf fmt "manhattan:%g" spacing
    | Scenario.Rpgm { groups; radius } ->
        Format.fprintf fmt "rpgm:%d:%g" groups radius
  in
  Arg.conv (parse, print)

let mobility =
  Arg.(
    value
    & opt mobility_conv Scenario.Waypoint
    & info [ "mobility" ] ~docv:"FAMILY"
        ~doc:
          "Mobility family: $(b,waypoint) (random waypoint), \
           $(b,manhattan:SPACING) (street-grid motion on a SPACING-metre \
           lattice) or $(b,rpgm:GROUPS:RADIUS) (reference-point group \
           mobility: GROUPS roaming clusters of radius RADIUS m).")

let shadow =
  Arg.(
    value
    & opt ~vopt:(Some Scenario.default_shadowing.Scenario.sigma_db)
        (some float) None
    & info [ "shadow" ] ~docv:"SIGMA"
        ~doc:
          "Log-normal shadowing with $(docv) dB standard deviation \
           (default $(b,--shadow)=4): per-link fades are deterministic in \
           the seed, so reruns and shard counts reproduce exactly.")

let churn =
  Arg.(
    value
    & opt ~vopt:(Some Scenario.default_churn.Scenario.churn_frac) (some float)
        None
    & info [ "churn" ] ~docv:"FRAC"
        ~doc:
          "Take a $(docv) fraction of nodes down once mid-run (default \
           $(b,--churn)=0.2); half the departures crash (losing all \
           routing state and sequence numbers) rather than leave \
           gracefully, then rejoin 10-30 s later.")

let partition =
  Arg.(
    value
    & opt (some (pair ~sep:',' float float)) None
    & info [ "partition" ] ~docv:"T1,T2"
        ~doc:
          "Drop an opaque wall across the terrain's vertical midline from \
           second $(docv) T1 until it heals at T2.")

let soa =
  Arg.(
    value & flag
    & info [ "soa" ]
        ~doc:
          "Struct-of-arrays node state: positions in shared unboxed float \
           arrays behind an incrementally-maintained spatial index.  \
           Outcomes are byte-identical to the default layout; the win is \
           allocation and cache behaviour at large node counts.")

type world_opts = {
  w_mobility : Scenario.mobility;
  w_shadowing : Scenario.shadowing option;
  w_churn : Scenario.churn option;
  w_partition : Scenario.partition option;
  w_soa : bool;
}

let world_term =
  let make w_mobility sigma churn partition w_soa =
    {
      w_mobility;
      w_shadowing =
        Option.map
          (fun sigma_db -> { Scenario.default_shadowing with sigma_db })
          sigma;
      w_churn =
        Option.map
          (fun churn_frac -> { Scenario.default_churn with churn_frac })
          churn;
      w_partition =
        Option.map
          (fun (t1, t2) ->
            {
              Scenario.part_at = Time.sec t1;
              part_heal = Time.sec t2;
              part_x_frac = 0.5;
            })
          partition;
      w_soa;
    }
  in
  Term.(const make $ mobility $ shadow $ churn $ partition $ soa)

let trials =
  Arg.(value & opt int 3 & info [ "trials" ] ~docv:"T" ~doc:"Trials per point (sweep).")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the sweep's (pause $(b,x) seed) trial matrix across $(docv) \
           domains; per-seed results and aggregates are bit-identical to \
           $(docv)=1.  0 = one worker per recommended core.")

let pauses =
  Arg.(
    value
    & opt (list float) [ 0.; 120.; 900. ]
    & info [ "pauses" ] ~docv:"LIST" ~doc:"Comma-separated pause times (sweep).")

let default_world =
  {
    w_mobility = Scenario.Waypoint;
    w_shadowing = None;
    w_churn = None;
    w_partition = None;
    w_soa = false;
  }

let scenario ?(shards = 1) ?(world = default_world) protocol nodes width height
    flows pps pause speed_max duration seed audit =
  {
    Scenario.label = "cli";
    num_nodes = nodes;
    terrain = Geom.Terrain.create ~width ~height;
    placement = Scenario.Uniform;
    speed_min = (if speed_max > 0. then 1. else 0.);
    speed_max;
    pause = Time.sec pause;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = flows;
        packets_per_sec = pps;
        payload_bytes = 512;
        mean_flow_duration = Time.sec 100.;
        startup_window = Time.sec 10.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = audit;
    naive_channel = false;
    heap_scheduler = false;
    shards;
    mobility = world.w_mobility;
    shadowing = world.w_shadowing;
    churn = world.w_churn;
    partition = world.w_partition;
    soa = world.w_soa;
  }

(* Hand-rolled JSON: the trace schema is flat and the container ships no
   JSON library.  NaN (empty latency samples) must become null — NaN is
   not JSON. *)
let json_float f =
  if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_kind_counts pairs =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
       pairs)

let print_outcome_json (o : Runner.outcome) =
  let m = o.metrics in
  Printf.printf
    "{\"originated\":%d,\"delivered\":%d,\"duplicates\":%d,\
     \"delivery_ratio\":%s,\"mean_latency_ms\":%s,\"median_latency_ms\":%s,\
     \"p95_latency_ms\":%s,\"p99_latency_ms\":%s,\"mean_hops\":%s,\
     \"network_load\":%s,\
     \"byte_load\":%s,\
     \"rreq_load\":%s,\"control_tx\":%d,\"control_by_kind\":{%s},\
     \"control_bytes\":%d,\"control_bytes_by_kind\":{%s},\
     \"data_tx\":%d,\"data_bytes\":%d,\"ack_bytes\":%d,\
     \"frames_on_air\":%d,\"ifq_drops\":%d,\
     \"link_failures\":%d,\"drops_by_reason\":{%s},\"mean_dest_seqno\":%s,\
     \"loop_violations\":%d,\"invariant_violations\":%d,\
     \"events_processed\":%d}\n"
    (Metrics.originated m) (Metrics.delivered m) (Metrics.duplicates m)
    (json_float (Metrics.delivery_ratio m))
    (json_float (Metrics.mean_latency_ms m))
    (json_float (Metrics.median_latency_ms m))
    (json_float (Metrics.p95_latency_ms m))
    (json_float (Metrics.p99_latency_ms m))
    (json_float (Metrics.mean_hops m))
    (json_float (Metrics.network_load m))
    (json_float (Metrics.byte_load m))
    (json_float (Metrics.rreq_load m))
    (Metrics.control_transmissions m)
    (json_kind_counts (Metrics.control_by_kind m))
    (Metrics.control_bytes m)
    (json_kind_counts (Metrics.control_bytes_by_kind m))
    (Metrics.data_transmissions m)
    (Metrics.data_bytes m) (Metrics.ack_bytes m) o.transmissions
    o.mac_queue_drops o.mac_unicast_failures
    (json_kind_counts (Metrics.drops_by_reason m))
    (json_float (Metrics.mean_dest_seqno m))
    (Metrics.loop_violations m) o.invariant_violations o.events_processed

let print_outcome (o : Runner.outcome) =
  let m = o.metrics in
  Format.printf "originated        %d@." (Metrics.originated m);
  Format.printf "delivered         %d (+%d duplicate copies)@."
    (Metrics.delivered m) (Metrics.duplicates m);
  Format.printf "delivery ratio    %.4f@." (Metrics.delivery_ratio m);
  Format.printf "mean latency      %.2f ms (median %.2f, p95 %.2f, p99 %.2f)@."
    (Metrics.mean_latency_ms m) (Metrics.median_latency_ms m)
    (Metrics.p95_latency_ms m) (Metrics.p99_latency_ms m);
  Format.printf "mean path length  %.2f hops@." (Metrics.mean_hops m);
  Format.printf "network load      %.3f control tx / delivered@."
    (Metrics.network_load m);
  Format.printf "byte load         %.1f control B / delivered@."
    (Metrics.byte_load m);
  Format.printf "rreq load         %.3f@." (Metrics.rreq_load m);
  Format.printf "control tx        %d (%d B on air)@."
    (Metrics.control_transmissions m)
    (Metrics.control_bytes m);
  let bytes_by_kind = Metrics.control_bytes_by_kind m in
  List.iter
    (fun (kind, count) ->
      let bytes =
        match List.assoc_opt kind bytes_by_kind with Some b -> b | None -> 0
      in
      Format.printf "  %-6s %d (%d B)@." kind count bytes)
    (Metrics.control_by_kind m);
  Format.printf "data tx (hopwise) %d (%d B on air)@."
    (Metrics.data_transmissions m) (Metrics.data_bytes m);
  Format.printf "ack bytes on air  %d@." (Metrics.ack_bytes m);
  Format.printf "frames on air     %d@." o.transmissions;
  Format.printf "ifq drops         %d@." o.mac_queue_drops;
  Format.printf "link failures     %d@." o.mac_unicast_failures;
  List.iter
    (fun (reason, count) -> Format.printf "drop %-16s %d@." reason count)
    (Metrics.drops_by_reason m);
  Format.printf "mean dest seqno   %.2f@." (Metrics.mean_dest_seqno m);
  Format.printf "loop violations   %d@." (Metrics.loop_violations m);
  Format.printf "invariant viols   %d@." o.invariant_violations;
  Format.printf "events processed  %d@." o.events_processed;
  if o.pdes_windows > 0 then
    Format.printf "pdes windows      %d (%d cross-shard frames)@."
      o.pdes_windows o.pdes_messages

let run_cmd =
  let action protocol nodes width height flows pps pause speed_max duration
      seed audit trace json trace_out pcap_out monitor sample sample_out
      telemetry_out telemetry_prom telemetry_every inject_stale shards world =
    if trace then Trace.enable ();
    let sc =
      scenario ~shards ~world protocol nodes width height flows pps pause
        speed_max duration seed audit
    in
    if not json then
      Format.printf
        "%s: %d nodes on %.0fx%.0fm, %d flows @ %g pps, pause %gs, %gs@."
        (Scenario.protocol_name protocol)
        nodes width height flows pps pause duration;
    (* --shards 0 (auto) may resolve either way; the fault injector has
       a classic and a sharded form, so pick after resolution. *)
    let sharded = Runner.resolve_shards sc >= 2 in
    let prepare =
      if sharded then None
      else
        Option.map
          (fun t sim -> ignore (Fault.stale_seqno sim ~at:(Time.sec t)))
          inject_stale
    in
    let prepare_pdes =
      if not sharded then None
      else
        Option.map
          (fun t psim ->
            ignore (Fault.stale_seqno_sharded psim ~at:(Time.sec t)))
          inject_stale
    in
    let outcome =
      Runner.run ~monitor ?trace_out ?pcap_out
        ?sample:(Option.map Time.sec sample)
        ~sample_out ?telemetry_out ?telemetry_prom
        ~telemetry_every:(Time.sec telemetry_every) ?prepare ?prepare_pdes sc
    in
    if json then print_outcome_json outcome else print_outcome outcome
  in
  let term =
    Term.(
      const action $ protocol $ nodes $ width $ height $ flows $ pps $ pause
      $ speed_max $ duration $ seed $ audit $ trace $ json $ trace_out
      $ pcap_out $ monitor $ sample $ sample_out $ telemetry_out
      $ telemetry_prom $ telemetry_every $ inject_stale $ shards $ world_term)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one scenario and print its metrics.") term

let sweep_cmd =
  let action protocol nodes width height flows pps speed_max duration seed
      trials pauses audit jobs world =
    (* The whole (pause x seed) matrix is one parallel batch; results
       merge in seed order, so any --jobs value prints the same table. *)
    let base =
      scenario ~world protocol nodes width height flows pps 0. speed_max
        duration seed audit
    in
    let points =
      List.map
        (fun pause (sc : Experiment.Scenario.t) ->
          { sc with Experiment.Scenario.pause = Time.sec pause })
        pauses
    in
    let series = Sweep.run ~jobs base ~points ~trials in
    let rows =
      List.map2
        (fun pause (p : Sweep.point) ->
          [
            Printf.sprintf "%g" pause;
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.delivery_ratio)
              ~ci:(Stats.Welford.ci95 p.Sweep.delivery_ratio);
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.latency_ms)
              ~ci:(Stats.Welford.ci95 p.Sweep.latency_ms);
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.network_load)
              ~ci:(Stats.Welford.ci95 p.Sweep.network_load);
            Stats.Table.mean_ci
              ~mean:(Stats.Welford.mean p.Sweep.byte_load)
              ~ci:(Stats.Welford.ci95 p.Sweep.byte_load);
          ])
        pauses series
    in
    print_endline
      (Stats.Table.render
         ~header:[ "pause s"; "delivery"; "latency ms"; "net load"; "ctl B/pkt" ]
         rows)
  in
  let term =
    Term.(
      const action $ protocol $ nodes $ width $ height $ flows $ pps
      $ speed_max $ duration $ seed $ trials $ pauses $ audit $ jobs
      $ world_term)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep pause times and print a figure-style series.  With \
          $(b,--jobs) N the trial matrix runs on N domains (0 = auto) with \
          bit-identical output.")
    term

let trace_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"JSONL trace written by $(b,--trace-out), or a pcap \
                capture written by $(b,--pcap) (detected by magic).")
  in
  let node =
    Arg.(
      value
      & opt (some int) None
      & info [ "node" ] ~docv:"N" ~doc:"Print node $(docv)'s full timeline.")
  in
  let dst =
    Arg.(
      value
      & opt (some int) None
      & info [ "dst" ] ~docv:"D"
          ~doc:"Print successor changes (route flaps) toward destination \
                $(docv).")
  in
  let drops =
    Arg.(
      value & flag
      & info [ "drops" ]
          ~doc:"Print data drops, queue overflows and collisions bucketed \
                over time.")
  in
  let violations =
    Arg.(
      value & flag
      & info [ "violations" ]
          ~doc:"Reconstruct each invariant violation's last-events window \
                from the trace (matches the monitor's live ring dump).")
  in
  let k =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~docv:"K"
          ~doc:"Window size for $(b,--violations) (default: the monitor's \
                ring capacity).")
  in
  let classes =
    Arg.(
      value & flag
      & info [ "classes" ]
          ~doc:"Print one line per traffic class — $(i,CLASS COUNT BYTES) \
                — from the file's transmissions.  The same run's JSONL \
                trace and pcap capture print identical tables.")
  in
  let spans =
    Arg.(
      value & flag
      & info [ "spans" ]
          ~doc:"Reconstruct per-packet causal spans from the trace and \
                print the critical-path analysis: completeness, \
                discovery activity, p50/p95/p99 latency by stage \
                (buffer/queue/access/air) and a per-flow waterfall.")
  in
  let flow =
    Arg.(
      value
      & opt (some int) None
      & info [ "flow" ] ~docv:"F"
          ~doc:"With $(b,--spans): additionally print flow $(docv)'s \
                per-packet stage table.")
  in
  let print_class_counts counts =
    List.iter
      (fun (cls, (count, bytes)) -> Printf.printf "%s %d %d\n" cls count bytes)
      counts
  in
  let pcap_action file classes =
    match Net.Pcap.load file with
    | Error e ->
        prerr_endline e;
        Stdlib.exit 1
    | Ok records ->
        if classes then print_class_counts (Net.Pcap.class_counts records)
        else begin
          let n = List.length records in
          let undecodable =
            List.filter
              (fun r -> Result.is_error r.Net.Pcap.r_frame)
              records
          in
          let bytes =
            List.fold_left (fun acc r -> acc + r.Net.Pcap.r_len) 0 records
          in
          Printf.printf "%d frames, %d bytes on air\n" n bytes;
          (match (records, List.rev records) with
          | first :: _, last :: _ ->
              Printf.printf "span %.6f .. %.6f s\n"
                (Time.to_sec first.Net.Pcap.r_time)
                (Time.to_sec last.Net.Pcap.r_time)
          | _ -> ());
          List.iter
            (fun (cls, (count, b)) ->
              Printf.printf "  %-6s %d (%d B)\n" cls count b)
            (Net.Pcap.class_counts records);
          match undecodable with
          | [] -> ()
          | r :: _ ->
              Printf.printf "%d undecodable frame(s), first: %s\n"
                (List.length undecodable)
                (match r.Net.Pcap.r_frame with
                | Error e -> Wire.error_to_string e
                | Ok _ -> assert false)
        end
  in
  let action file node dst drops violations k classes spans flow =
    if Net.Pcap.is_pcap_file file then pcap_action file classes
    else
    match Obs.Reader.load file with
    | Error e ->
        prerr_endline e;
        Stdlib.exit 1
    | Ok t ->
        let printed = ref false in
        let section lines =
          printed := true;
          List.iter print_endline lines
        in
        if classes then section
          (List.map
             (fun (cls, (count, bytes)) ->
               Printf.sprintf "%s %d %d" cls count bytes)
             (Obs.Reader.tx_class_counts t));
        (match node with
        | Some n -> section (Obs.Reader.timeline t ~node:n)
        | None -> ());
        (match dst with
        | Some d -> section (Obs.Reader.flaps t ~dst:d)
        | None -> ());
        if drops then section (Obs.Reader.drop_report t);
        if spans then
          section
            (Obs.Span.report ?flow
               ~name:(Obs.Reader.name t)
               (Obs.Reader.events t));
        if violations then begin
          printed := true;
          let n = Obs.Reader.violations t in
          if n = 0 then print_endline "no violations"
          else
            for i = 0 to n - 1 do
              match Obs.Reader.violation_window ?k t i with
              | None -> ()
              | Some (line, window) ->
                  Printf.printf "violation %d: %s\n" i line;
                  List.iter (fun l -> print_endline ("  " ^ l)) window
            done
        end;
        if not !printed then section (Obs.Reader.summary t)
  in
  let term =
    Term.(
      const action $ file $ node $ dst $ drops $ violations $ k $ classes
      $ spans $ flow)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Analyse a JSONL trace (per-node timelines, route flaps, drop \
          breakdowns, violation windows, per-packet causal spans) or a \
          pcap capture (per-class transmission counts).  With no query \
          flags, prints totals.")
    term

let telemetry_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Prometheus text-format snapshot written by \
                $(b,--telemetry-prom).")
  in
  let action file =
    match Obs.Telemetry.validate_prom file with
    | Ok names -> List.iter print_endline names
    | Error e ->
        prerr_endline e;
        Stdlib.exit 1
  in
  let term = Term.(const action $ file) in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Validate a Prometheus text-format telemetry snapshot (metric \
          and label syntax, numeric values) and print its sorted metric \
          names — the stability contract CI checks.")
    term

let mcheck_cmd =
  let open Mcheck in
  let mc_protocol =
    let proto_conv =
      Arg.conv
        ( (fun s ->
            match Explorer.protocol_of_string s with
            | Some p -> Ok p
            | None ->
                Error (`Msg (Printf.sprintf "unknown mcheck protocol %S" s))),
          fun fmt p ->
            Format.pp_print_string fmt (Explorer.protocol_name p) )
    in
    Arg.(
      value
      & opt proto_conv Explorer.Aodv
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:"Protocol under check: aodv or ldr.")
  in
  let fixture_arg =
    Arg.(
      value
      & opt string "aodv-loop-3"
      & info [ "f"; "fixture" ] ~docv:"FIXTURE"
          ~doc:
            "Built-in fixture name (aodv-loop-3, line-4) or a .topo file \
             path.")
  in
  let max_steps =
    Arg.(
      value
      & opt int 40
      & info [ "max-steps" ] ~docv:"N" ~doc:"Decision-depth bound.")
  in
  let max_states =
    Arg.(
      value
      & opt int 2_000_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Explored-state budget; exceeding it reports incomplete.")
  in
  let all_schedules =
    Arg.(
      value & flag
      & info [ "all-schedules" ]
          ~doc:
            "Exhaustively enumerate the bounded schedule space (DPOR-style \
             sleep sets + state matching).  Default unless \
             $(b,--random-walks) is given.")
  in
  let random_walks =
    Arg.(
      value
      & opt (some int) None
      & info [ "random-walks" ] ~docv:"N"
          ~doc:
            "Fallback for huge spaces: N uniformly random schedules instead \
             of enumeration.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"S" ~doc:"Random-walk seed.")
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:"Report the first violating schedule as found, unminimized.")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Disable state matching (pure sleep-set DPOR) — slower, immune \
             to digest collisions.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the violating decision trace as replayable JSONL.")
  in
  let repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded decision trace event-for-event instead of \
             exploring; exits 0 iff the recorded violation reproduces.")
  in
  let expect =
    Arg.(
      value
      & opt (some (enum [ ("violation", true); ("silent", false) ])) None
      & info [ "expect" ] ~docv:"WHAT"
          ~doc:
            "CI assertion: $(b,violation) exits 0 only if one was found, \
             $(b,silent) exits 0 only if the space is clean.")
  in
  let load_fixture name =
    match Fixture.builtin name with
    | Some fx -> Ok fx
    | None ->
        if Sys.file_exists name then Fixture.load name
        else
          Error
            (Printf.sprintf "no built-in fixture %S (have: %s) and no such file"
               name
               (String.concat ", " Fixture.builtin_names))
  in
  let action proto fixture max_steps max_states _all walks seed no_minimize
      no_dedup trace_out repro expect =
    match load_fixture fixture with
    | Error e ->
        prerr_endline e;
        Stdlib.exit 2
    | Ok fx -> (
        match repro with
        | Some path -> (
            match Explorer.read_trace ~path with
            | Error e ->
                prerr_endline e;
                Stdlib.exit 2
            | Ok (fx_name, tproto, steps, recorded) -> (
                if fx_name <> fx.Fixture.name then
                  Printf.eprintf
                    "note: trace was recorded on fixture %s, replaying on %s\n"
                    fx_name fx.Fixture.name;
                match Explorer.replay fx tproto steps with
                | Some kind ->
                    Printf.printf "reproduced: %s (recorded: %s)\n"
                      (Explorer.render_vkind kind)
                      (Explorer.render_vkind recorded);
                    Stdlib.exit 0
                | None ->
                    print_endline "trace replayed clean: no violation";
                    Stdlib.exit 1))
        | None ->
            let result =
              match walks with
              | Some n ->
                  Explorer.random_walks ~max_steps ~walks:n ~seed fx proto
              | None ->
                  Explorer.explore ~max_steps ~max_states
                    ~dedup:(not no_dedup) fx proto
            in
            let st = result.Explorer.stats in
            Printf.printf
              "fixture=%s protocol=%s states=%d transitions=%d \
               sleep_pruned=%d state_merged=%d depth_cut=%d terminals=%d \
               replays=%d max_depth=%d complete=%b\n"
              fx.Fixture.name
              (Explorer.protocol_name proto)
              st.Explorer.states st.Explorer.transitions
              st.Explorer.sleep_skipped st.Explorer.state_merged
              st.Explorer.depth_cut st.Explorer.terminals st.Explorer.replays
              st.Explorer.max_depth st.Explorer.complete;
            let viol =
              match result.Explorer.violation with
              | Some v when not no_minimize ->
                  Some (Explorer.minimize fx proto v)
              | v -> v
            in
            (match viol with
            | Some v ->
                Printf.printf "VIOLATION %s after %d steps\n"
                  (Explorer.render_vkind v.Explorer.v_kind)
                  (List.length v.Explorer.v_trace);
                List.iteri
                  (fun i (c : Explorer.choice) ->
                    Printf.printf "  %2d. t=%.6fs %s\n" i
                      (float_of_int c.Explorer.c_time /. 1e9)
                      c.Explorer.c_label)
                  v.Explorer.v_trace;
                Option.iter
                  (fun path -> Explorer.write_trace ~path fx proto v)
                  trace_out
            | None -> print_endline "no violation in the explored space");
            match expect with
            | Some want_violation ->
                Stdlib.exit (if want_violation = (viol <> None) then 0 else 1)
            | None -> ())
  in
  let term =
    Term.(
      const action $ mc_protocol $ fixture_arg $ max_steps $ max_states
      $ all_schedules $ random_walks $ seed $ no_minimize $ no_dedup
      $ trace_out $ repro $ expect)
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Systematically explore message/timer interleavings on a small \
          hand-wired topology, checking for routing loops (successor-graph \
          cycles and LDR invariant violations) after every event.  Finds \
          and minimizes a violating schedule, or proves the bounded space \
          silent.")
    term

let () =
  let doc = "MANET routing simulator (LDR / AODV / DSR / OLSR)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "manet_sim" ~doc)
          [ run_cmd; sweep_cmd; trace_cmd; telemetry_cmd; mcheck_cmd ]))
