test/test_olsr.mli:
