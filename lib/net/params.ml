open Sim

type t = {
  range_m : float;
  cs_range_m : float;
  capture_distance_ratio : float;
  bit_rate : float;
  preamble : Time.t;
  slot : Time.t;
  sifs : Time.t;
  difs : Time.t;
  cw_min : int;
  cw_max : int;
  mac_overhead_bytes : int;
  ack_bytes : int;
  retry_limit : int;
  ifq_capacity : int;
}

let default =
  {
    range_m = 275.;
    cs_range_m = 550.;
    capture_distance_ratio = 1.78;
    bit_rate = 2e6;
    preamble = Time.us 192.;
    slot = Time.us 20.;
    sifs = Time.us 10.;
    difs = Time.us 50.;
    cw_min = 31;
    cw_max = 1023;
    mac_overhead_bytes = Wire.Mac.data_overhead;
    ack_bytes = Wire.Mac.ack_bytes;
    retry_limit = 7;
    ifq_capacity = 50;
  }

let bytes_airtime t bytes = Time.sec (float_of_int (bytes * 8) /. t.bit_rate)

let frame_airtime t ~bytes = Time.add t.preamble (bytes_airtime t bytes)

let data_airtime t ~payload_bytes =
  frame_airtime t ~bytes:(payload_bytes + t.mac_overhead_bytes)

let ack_airtime t = Time.add t.preamble (bytes_airtime t t.ack_bytes)

let ack_timeout t =
  (* SIFS + ACK airtime + a two-slot scheduling margin. *)
  Time.add t.sifs (Time.add (ack_airtime t) (Time.mul t.slot 2))
