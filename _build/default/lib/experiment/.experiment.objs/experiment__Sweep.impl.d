lib/experiment/sweep.ml: List Metrics Runner Scenario Stats
