test/test_olsr.ml: Alcotest Engine Experiment List Node_id Olsr Packets QCheck QCheck_alcotest Rng Routing Sim Time
