type action =
  | Origin of int * int
  | Link_up of int * int
  | Link_down of int * int

type step = { at : float; act : action }
type hold = { h_class : string; h_src : int; h_dst : int; h_until : float }

type t = {
  name : string;
  nodes : int;
  links : (int * int) list;
  script : step list;
  explore_from : float;
  holds : hold list;
}

(* Node 0 is the hub of a 2-spoke star; 1 reaches 2 through it.  The
   prelude is load-bearing: the RREP 0 forwards to 1 carries the
   destination's 6 s lifetime *relative* (RFC 3561 forwards the
   Lifetime field untouched), so holding it in flight until 1.2 s makes
   1's route expire at 7.2 s while 0's — installed at ~0.34 s — expires
   at ~6.34 s.  The 0–2 link then dies silently inside both lifetimes.
   When 0 rediscovers at 7.0 s its own entry has expired but keeps its
   old sequence number; 1's equal-numbered route is still valid, so 1
   answers — and AODV's equal-number-but-invalid update rule lets 0
   install 0→1 while 1 still points at 0.  Exploration starts at 4.9 s,
   just before the link drop: the establishment phase is a fixed
   reachable state, the loop window is searched exhaustively. *)
let aodv_loop_3 =
  {
    name = "aodv-loop-3";
    nodes = 3;
    links = [ (0, 1); (0, 2) ];
    script =
      [
        { at = 0.1; act = Origin (1, 2) };
        { at = 5.0; act = Link_down (0, 2) };
        { at = 7.0; act = Origin (0, 2) };
      ];
    explore_from = 4.9;
    holds = [ { h_class = "RREP"; h_src = 0; h_dst = 1; h_until = 1.2 } ];
  }

let line_4 =
  {
    name = "line-4";
    nodes = 4;
    links = [ (0, 1); (1, 2); (2, 3) ];
    script =
      [
        { at = 0.1; act = Origin (0, 3) };
        { at = 2.0; act = Link_down (1, 2) };
        { at = 2.5; act = Origin (0, 3) };
        { at = 4.0; act = Link_up (1, 2) };
        { at = 4.5; act = Origin (0, 3) };
      ];
    explore_from = 1.9;
    holds = [];
  }

let builtins = [ aodv_loop_3; line_4 ]
let builtin name = List.find_opt (fun f -> f.name = name) builtins
let builtin_names = List.map (fun f -> f.name) builtins

let parse ~name text =
  let name = ref name in
  let nodes = ref 0 in
  let links = ref [] in
  let script = ref [] in
  let explore_from = ref 0.0 in
  let holds = ref [] in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun k line ->
      let lineno = k + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
        |> List.filter (fun w -> w <> "")
      in
      let int_of w = int_of_string_opt w in
      match words with
      | [] -> ()
      | [ "name"; n ] -> name := n
      | [ "nodes"; n ] -> (
          match int_of n with
          | Some v when v >= 2 && v <= 16 -> nodes := v
          | _ -> fail lineno "nodes wants an int in 2..16")
      | [ "link"; a; b ] -> (
          match (int_of a, int_of b) with
          | Some a, Some b -> links := (a, b) :: !links
          | _ -> fail lineno "link wants two node ids")
      | [ "explore_from"; t ] -> (
          match float_of_string_opt t with
          | Some v when v >= 0.0 -> explore_from := v
          | _ -> fail lineno "explore_from wants a time in seconds")
      | [ "hold"; cls; a; b; "until"; t ] -> (
          match (int_of a, int_of b, float_of_string_opt t) with
          | Some a, Some b, Some until ->
              holds :=
                { h_class = cls; h_src = a; h_dst = b; h_until = until }
                :: !holds
          | _ -> fail lineno "hold wants: hold CLASS src dst until T")
      | "at" :: t :: rest -> (
          match (float_of_string_opt t, rest) with
          | Some at, [ "origin"; s; d ] -> (
              match (int_of s, int_of d) with
              | Some s, Some d -> script := { at; act = Origin (s, d) } :: !script
              | _ -> fail lineno "origin wants two node ids")
          | Some at, [ "down"; a; b ] -> (
              match (int_of a, int_of b) with
              | Some a, Some b ->
                  script := { at; act = Link_down (a, b) } :: !script
              | _ -> fail lineno "down wants two node ids")
          | Some at, [ "up"; a; b ] -> (
              match (int_of a, int_of b) with
              | Some a, Some b -> script := { at; act = Link_up (a, b) } :: !script
              | _ -> fail lineno "up wants two node ids")
          | None, _ -> fail lineno "at wants a time in seconds"
          | Some _, _ -> fail lineno "unknown action (origin|down|up)")
      | w :: _ -> fail lineno (Printf.sprintf "unknown directive %S" w))
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      if !nodes = 0 then Error "missing nodes directive"
      else
        let bad_id i = i < 0 || i >= !nodes in
        let link_bad = List.exists (fun (a, b) -> bad_id a || bad_id b || a = b) in
        let step_bad =
          List.exists (fun { act; _ } ->
              match act with
              | Origin (a, b) | Link_up (a, b) | Link_down (a, b) ->
                  bad_id a || bad_id b || a = b)
        in
        let hold_bad =
          List.exists (fun h -> bad_id h.h_src || bad_id h.h_dst) !holds
        in
        if link_bad !links then Error "link out of range"
        else if step_bad !script then Error "script node out of range"
        else if hold_bad then Error "hold node out of range"
        else
          Ok
            {
              name = !name;
              nodes = !nodes;
              links = List.rev !links;
              script =
                List.stable_sort
                  (fun a b -> compare a.at b.at)
                  (List.rev !script);
              explore_from = !explore_from;
              holds = List.rev !holds;
            }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text ->
      let name = Filename.remove_extension (Filename.basename path) in
      parse ~name text
  | exception Sys_error e -> Error e
