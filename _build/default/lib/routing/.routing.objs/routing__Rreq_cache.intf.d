lib/routing/rreq_cache.mli: Node_id Packets Sim
