(** Streaming mean/variance (Welford's algorithm) and Student-t 95 %
    confidence intervals — the error bars of the paper's plots. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float

val ci95 : t -> float
(** Half-width of the 95 % confidence interval of the mean; 0 with fewer
    than two samples. *)

val t_critical : df:int -> float
(** Two-sided 95 % Student-t critical value. *)

val merge : t -> t -> t
(** Distribution over the union of both sample sets. *)
