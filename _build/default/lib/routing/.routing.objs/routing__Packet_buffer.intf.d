lib/routing/packet_buffer.mli: Data_msg Node_id Packets Sim
