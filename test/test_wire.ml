(* Round-trip, sizing and fuzz tests for the wire codecs.

   Round-trip properties hold on wire-canonical values: lifetimes
   quantized to milliseconds, OLSR HELLO neighbors grouped into
   canonical link-code blocks, DSR [sr_remaining] a suffix of
   [full_route] — exactly the forms the protocol agents produce. *)

open Packets

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let n = Node_id.of_int

(* ---- Generators ------------------------------------------------------ *)

module G = QCheck.Gen

let gen_node = G.map n (G.int_range 0 0xffff)
let gen_u8 = G.int_range 0 255
let gen_u16 = G.int_range 0 0xffff
let gen_u32 = G.int_range 0 0xfffffff

let gen_seqnum =
  G.map
    (fun (stamp, counter) -> { Seqnum.stamp; counter })
    (G.pair (G.int_range 0 100_000) (G.int_range 0 1000))

(* Lifetimes travel as whole milliseconds. *)
let gen_lifetime = G.map (fun ms -> Sim.Time.ms (float_of_int ms)) (G.int_range 0 60_000)

(* Origination times travel as exact nanoseconds. *)
let gen_origin_time = G.map Sim.Time.unsafe_of_ns (G.int_range 0 (1 lsl 50))

let gen_dist =
  G.oneof [ G.int_range 0 1000; G.return Wire.Ldr.infinite_distance ]

let gen_route = G.list_size (G.int_range 0 8) gen_node

let gen_data_msg =
  G.map
    (fun (((flow_id, seq), (src, dst)), ((payload_bytes, origin_time), (ttl, hops))) ->
      { Data_msg.flow_id; seq; src; dst; payload_bytes; origin_time; ttl; hops })
    (G.pair
       (G.pair (G.pair gen_u32 gen_u32) (G.pair gen_node gen_node))
       (G.pair
          (G.pair (G.int_range 0 1500) gen_origin_time)
          (G.pair (G.int_range 1 255) gen_u8)))

let gen_ldr =
  G.oneof
    [
      G.map
        (fun (((dst, dst_sn), ((rreq_id, origin), origin_sn)),
              (((fd, answer_dist), (dist, ttl)), (reset, (no_reverse, unicast_probe)))) ->
          Ldr_msg.Rreq
            { dst; dst_sn; rreq_id; origin; origin_sn; fd; answer_dist; dist;
              ttl; reset; no_reverse; unicast_probe })
        (G.pair
           (G.pair
              (G.pair gen_node (G.option gen_seqnum))
              (G.pair (G.pair gen_u32 gen_node) gen_seqnum))
           (G.pair
              (G.pair (G.pair gen_dist gen_dist) (G.pair gen_dist gen_u8))
              (G.pair G.bool (G.pair G.bool G.bool))));
      G.map
        (fun (((dst, dst_sn), (origin, rreq_id)), ((dist, lifetime), rrep_no_reverse)) ->
          Ldr_msg.Rrep
            { dst; dst_sn; origin; rreq_id; dist; lifetime; rrep_no_reverse })
        (G.pair
           (G.pair (G.pair gen_node gen_seqnum) (G.pair gen_node gen_u32))
           (G.pair (G.pair gen_dist gen_lifetime) G.bool));
      G.map
        (fun unreachable -> Ldr_msg.Rerr { unreachable })
        (G.list_size (G.int_range 1 8) (G.pair gen_node (G.option gen_seqnum)));
    ]

let gen_aodv =
  G.oneof
    [
      G.map
        (fun (((dst, dst_sn), (rreq_id, origin)), ((origin_sn, hop_count), ttl)) ->
          Aodv_msg.Rreq { dst; dst_sn; rreq_id; origin; origin_sn; hop_count; ttl })
        (G.pair
           (G.pair (G.pair gen_node (G.option gen_u32)) (G.pair gen_u32 gen_node))
           (G.pair (G.pair gen_u32 gen_u8) gen_u8));
      G.map
        (fun ((dst, dst_sn), (origin, (hop_count, lifetime))) ->
          Aodv_msg.Rrep { dst; dst_sn; origin; hop_count; lifetime })
        (G.pair (G.pair gen_node gen_u32) (G.pair gen_node (G.pair gen_u8 gen_lifetime)));
      G.map
        (fun unreachable -> Aodv_msg.Rerr { unreachable })
        (G.list_size (G.int_range 1 8) (G.pair gen_node gen_u32));
    ]

(* DSR data keeps [sr_remaining] a suffix of [full_route]; generate the
   full route and a suffix length. *)
let rec suffix l k = if List.length l <= k then l else suffix (List.tl l) k

let gen_dsr =
  G.oneof
    [
      G.map
        (fun (((origin, dst), (rreq_id, route)), ttl) ->
          Dsr_msg.Rreq { origin; dst; rreq_id; route; ttl })
        (G.pair
           (G.pair (G.pair gen_node gen_node) (G.pair gen_u16 gen_route))
           (G.int_range 1 255));
      G.map
        (fun ((sr_remaining, (origin, dst)), full_route) ->
          Dsr_msg.Rrep { sr_remaining; rrep = { origin; dst; full_route } })
        (G.pair (G.pair gen_route (G.pair gen_node gen_node)) gen_route);
      G.map
        (fun ((sr_remaining, (err_from, err_dst)), (broken_from, broken_to)) ->
          Dsr_msg.Rerr
            { sr_remaining; rerr = { err_from; broken_from; broken_to; err_dst } })
        (G.pair
           (G.pair gen_route (G.pair gen_node gen_node))
           (G.pair gen_node gen_node));
      G.map
        (fun (((full_route, k), data), salvage) ->
          Dsr_msg.Data
            { sr_remaining = suffix full_route k; full_route; data; salvage })
        (G.pair
           (G.pair (G.pair gen_route (G.int_range 0 8)) gen_data_msg)
           (G.int_range 0 7));
    ]

(* Wire-canonical HELLOs: neighbors grouped Asym, Sym, Mpr. *)
let gen_olsr =
  G.oneof
    [
      G.map
        (fun (asym, (sym, mpr)) ->
          let tag k = List.map (fun id -> (id, k)) in
          Olsr_msg.Hello
            {
              neighbors =
                tag Olsr_msg.Asym asym @ tag Olsr_msg.Sym sym
                @ tag Olsr_msg.Mpr mpr;
            })
        (G.pair gen_route (G.pair gen_route gen_route));
      G.map
        (fun ((origin, msg_seq), ((ttl, ansn), advertised)) ->
          Olsr_msg.Tc
            { origin; msg_seq; ttl; tc = { tc_origin = origin; ansn; advertised } })
        (G.pair
           (G.pair gen_node gen_u16)
           (G.pair (G.pair (G.int_range 1 255) gen_u16) gen_route));
    ]

let gen_payload =
  G.oneof
    [
      G.map (fun d -> Payload.Data d) gen_data_msg;
      G.map (fun m -> Payload.Ldr m) gen_ldr;
      G.map (fun m -> Payload.Aodv m) gen_aodv;
      G.map (fun m -> Payload.Dsr m) gen_dsr;
      G.map (fun m -> Payload.Olsr m) gen_olsr;
    ]

let gen_frame =
  G.map
    (fun ((src, dst), body) ->
      let dst =
        match dst with None -> Net.Frame.Broadcast | Some d -> Net.Frame.Unicast d
      in
      { Net.Frame.src; dst; body })
    (G.pair
       (G.pair gen_node (G.option gen_node))
       (G.oneof
          [
            G.return Net.Frame.Ack;
            G.map (fun p -> Net.Frame.Payload p) gen_payload;
          ]))

let arb ?print gen = QCheck.make ?print gen

let pp_payload p = Format.asprintf "%a" Payload.pp p
let pp_frame f = Format.asprintf "%a" Net.Frame.pp f

(* ---- Cursor primitives ----------------------------------------------- *)

let writer_reader_basics () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xab;
  Wire.Writer.u16 w 0xcdef;
  Wire.Writer.u32 w 0xdeadbeef;
  Wire.Writer.u64 w 0x1122334455667788L;
  Wire.Writer.zeros w 3;
  checki "length" (1 + 2 + 4 + 8 + 3) (Wire.Writer.length w);
  let b = Wire.Writer.contents w in
  checki "contents length" 18 (Bytes.length b);
  let r = Wire.Reader.of_bytes b in
  let get = function Ok v -> v | Error e -> Alcotest.failf "%s" (Wire.error_to_string e) in
  checki "u8" 0xab (get (Wire.Reader.u8 r));
  checki "u16" 0xcdef (get (Wire.Reader.u16 r));
  checki "u32" 0xdeadbeef (get (Wire.Reader.u32 r));
  Alcotest.check Alcotest.int64 "u64" 0x1122334455667788L (get (Wire.Reader.u64 r));
  checki "pos" 15 (Wire.Reader.pos r);
  checki "remaining" 3 (Wire.Reader.remaining r);
  checkb "not at end" true (Result.is_error (Wire.Reader.expect_end r));
  get (Wire.Reader.skip r 3);
  checkb "at end" true (Result.is_ok (Wire.Reader.expect_end r))

let reader_bounds () =
  let r = Wire.Reader.of_bytes (Bytes.make 2 '\xff') in
  (match Wire.Reader.u32 r with
  | Error { Wire.offset; _ } -> checki "short read offset" 0 offset
  | Ok _ -> Alcotest.fail "u32 past end should fail");
  (match Wire.Reader.u8 r with
  | Ok v -> checki "u8 still readable" 0xff v
  | Error e -> Alcotest.failf "%s" (Wire.error_to_string e));
  match Wire.Reader.skip r 5 with
  | Error { Wire.offset; _ } -> checki "skip offset" 1 offset
  | Ok () -> Alcotest.fail "skip past end should fail"

let crc32_vector () =
  (* The classic IEEE 802.3 check value. *)
  let b = Bytes.of_string "123456789" in
  checki "crc32(123456789)" 0xcbf43926 (Wire.Crc32.bytes b ~pos:0 ~len:9)

(* ---- Cross-library constants ----------------------------------------- *)

let constants_agree () =
  checki "LDR infinity" Ldr.Conditions.infinity Wire.Ldr.infinite_distance;
  checki "MAC overhead" Net.Params.default.Net.Params.mac_overhead_bytes
    Wire.Mac.data_overhead;
  checki "ACK bytes" Net.Params.default.Net.Params.ack_bytes Wire.Mac.ack_bytes;
  checki "header + FCS" Wire.Mac.data_overhead
    (Wire.Mac.header_bytes + Wire.Mac.fcs_bytes)

(* ---- Round trips ------------------------------------------------------ *)

let roundtrip_payload =
  QCheck.Test.make ~name:"payload roundtrip & sizing" ~count:500
    (arb ~print:pp_payload gen_payload) (fun p ->
      let b = Wire.Payload.encode p in
      Bytes.length b = Wire.encoded_length p
      && Wire.Payload.decode ~family:(Wire.Payload.family p) b = Ok p)

let roundtrip_frame =
  QCheck.Test.make ~name:"frame roundtrip & sizing" ~count:500
    (arb ~print:pp_frame gen_frame) (fun f ->
      let b = Net.Frame.encode f in
      Bytes.length b = Net.Frame.encoded_length f
      && Net.Frame.decode ~family:(Net.Frame.family f) ~ack_src:f.Net.Frame.src b
         = Ok f)

(* ---- Fuzzing: decoders are total and the FCS rejects corruption ------- *)

let gen_garbage = G.map Bytes.of_string (G.string_size (G.int_range 0 80))

let no_exn f = match f () with Ok _ | Error _ -> true

let fuzz_random =
  QCheck.Test.make ~name:"random bytes never decode" ~count:1000
    (arb (G.pair gen_garbage (G.int_range 0 6)))
    (fun (b, family) ->
      no_exn (fun () -> Net.Frame.decode ~family ~ack_src:(n 0) b)
      && Net.Frame.decode ~family ~ack_src:(n 0) b |> Result.is_error)

let fuzz_truncated =
  QCheck.Test.make ~name:"truncated frames rejected" ~count:500
    (arb ~print:(fun (f, _) -> pp_frame f) (G.pair gen_frame (G.int_range 0 1000)))
    (fun (f, cut) ->
      let b = Net.Frame.encode f in
      let cut = cut mod Bytes.length b in
      let fam = Net.Frame.family f in
      Net.Frame.decode ~family:fam ~ack_src:f.Net.Frame.src (Bytes.sub b 0 cut)
      |> Result.is_error)

let fuzz_bitflip =
  QCheck.Test.make ~name:"bit flips fail the FCS" ~count:500
    (arb ~print:(fun (f, _) -> pp_frame f) (G.pair gen_frame (G.int_range 0 100_000)))
    (fun (f, r) ->
      let b = Net.Frame.encode f in
      let bit = r mod (8 * Bytes.length b) in
      let i = bit / 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
      Net.Frame.decode ~family:(Net.Frame.family f) ~ack_src:f.Net.Frame.src b
      |> Result.is_error)

let fuzz_payload_truncated =
  QCheck.Test.make ~name:"payload decoders are total" ~count:500
    (arb ~print:(fun (p, _) -> pp_payload p) (G.pair gen_payload (G.int_range 0 1000)))
    (fun (p, cut) ->
      let b = Wire.Payload.encode p in
      let fam = Wire.Payload.family p in
      let cut = cut mod Bytes.length b in
      no_exn (fun () -> Wire.Payload.decode ~family:fam (Bytes.sub b 0 cut)))

(* ---- Pcap -------------------------------------------------------------- *)

let sample_frames =
  let data =
    Data_msg.fresh ~flow_id:1 ~seq:7 ~src:(n 2) ~dst:(n 9) ~payload_bytes:512
      ~origin_time:(Sim.Time.ms 5.)
  in
  [
    { Net.Frame.src = n 2; dst = Net.Frame.Unicast (n 3);
      body = Net.Frame.Payload (Payload.Data data) };
    { Net.Frame.src = n 3; dst = Net.Frame.Unicast (n 2); body = Net.Frame.Ack };
    { Net.Frame.src = n 4; dst = Net.Frame.Broadcast;
      body =
        Net.Frame.Payload
          (Payload.Aodv
             (Aodv_msg.Rreq
                { dst = n 9; dst_sn = None; rreq_id = 1; origin = n 4;
                  origin_sn = 2; hop_count = 0; ttl = 5 })) };
  ]

let pcap_roundtrip () =
  let path = Filename.temp_file "manet" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Net.Pcap.open_sink path in
      List.iteri
        (fun i f -> Net.Pcap.write sink ~time:(Sim.Time.ms (float_of_int i)) f)
        sample_frames;
      Net.Pcap.close sink;
      checkb "magic recognized" true (Net.Pcap.is_pcap_file path);
      match Net.Pcap.load path with
      | Error msg -> Alcotest.failf "load: %s" msg
      | Ok records ->
          checki "record count" (List.length sample_frames) (List.length records);
          List.iteri
            (fun i (r : Net.Pcap.record) ->
              let f = List.nth sample_frames i in
              checkb "time" true (Sim.Time.equal r.r_time (Sim.Time.ms (float_of_int i)));
              checki "on-air length" (Net.Frame.encoded_length f) r.r_len;
              match r.r_frame with
              | Ok decoded -> checkb "frame" true (decoded = f)
              | Error e -> Alcotest.failf "record %d: %s" i (Wire.error_to_string e))
            records;
          let counts = Net.Pcap.class_counts records in
          Alcotest.(check (list (pair string (pair int int))))
            "class counts"
            [ ("ACK", (1, 14)); ("DATA", (1, 574)); ("RREQ", (1, 58)) ]
            counts)

let pcap_rejects_corruption () =
  let path = Filename.temp_file "manet" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Net.Pcap.open_sink path in
      List.iter (fun f -> Net.Pcap.write sink ~time:Sim.Time.zero f) sample_frames;
      Net.Pcap.close sink;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      close_in ic;
      (* Flip a byte inside the last frame's payload: the file still
         parses, but that record's FCS check fails. *)
      let b = Bytes.of_string buf in
      Bytes.set b (len - 3) (Char.chr (Char.code (Bytes.get b (len - 3)) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      match Net.Pcap.load path with
      | Error msg -> Alcotest.failf "structural parse should survive: %s" msg
      | Ok records ->
          checki "record count" 3 (List.length records);
          let last = List.nth records 2 in
          checkb "corrupt record rejected" true (Result.is_error last.Net.Pcap.r_frame);
          checkb "UNDECODABLE bucket" true
            (List.mem_assoc "UNDECODABLE" (Net.Pcap.class_counts records)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wire"
    [
      ( "cursor",
        [
          Alcotest.test_case "writer/reader basics" `Quick writer_reader_basics;
          Alcotest.test_case "reader bounds" `Quick reader_bounds;
          Alcotest.test_case "crc32 vector" `Quick crc32_vector;
          Alcotest.test_case "constants agree" `Quick constants_agree;
        ] );
      ("roundtrip", [ qt roundtrip_payload; qt roundtrip_frame ]);
      ( "fuzz",
        [
          qt fuzz_random;
          qt fuzz_truncated;
          qt fuzz_bitflip;
          qt fuzz_payload_truncated;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "write/load roundtrip" `Quick pcap_roundtrip;
          Alcotest.test_case "corrupt record isolated" `Quick pcap_rejects_corruption;
        ] );
    ]
