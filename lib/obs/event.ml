type kind =
  | Tx
  | Rx
  | Collision
  | Ifq_drop
  | Deliver
  | Data_drop
  | Link_failure
  | Proto
  | Table_write
  | Violation
  | Span

type t = {
  mutable time : Sim.Time.t;
  mutable node : int;
  mutable kind : kind;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable e : int;
  mutable f : int;
}

type inv = { i_sn : int; i_dist : int; i_fd : int }

let make () =
  {
    time = Sim.Time.zero;
    node = -1;
    kind = Proto;
    a = -1;
    b = -1;
    c = -1;
    d = -1;
    e = -1;
    f = -1;
  }

let copy_into ~src ~dst =
  dst.time <- src.time;
  dst.node <- src.node;
  dst.kind <- src.kind;
  dst.a <- src.a;
  dst.b <- src.b;
  dst.c <- src.c;
  dst.d <- src.d;
  dst.e <- src.e;
  dst.f <- src.f

let kind_name = function
  | Tx -> "tx"
  | Rx -> "rx"
  | Collision -> "col"
  | Ifq_drop -> "ifq"
  | Deliver -> "dlv"
  | Data_drop -> "drop"
  | Link_failure -> "lfail"
  | Proto -> "evt"
  | Table_write -> "rt"
  | Violation -> "viol"
  | Span -> "sp"

let kind_of_name = function
  | "tx" -> Some Tx
  | "rx" -> Some Rx
  | "col" -> Some Collision
  | "ifq" -> Some Ifq_drop
  | "dlv" -> Some Deliver
  | "drop" -> Some Data_drop
  | "lfail" -> Some Link_failure
  | "evt" -> Some Proto
  | "rt" -> Some Table_write
  | "viol" -> Some Violation
  | "sp" -> Some Span
  | _ -> None

let has_label = function
  | Tx | Rx | Collision | Ifq_drop | Data_drop | Proto -> true
  | Deliver | Link_failure | Table_write | Violation | Span -> false

(* Span lifecycle stages, encoded in field [a].  The table lives here
   (not in Span) so [pp] can render stage names without a dependency
   cycle. *)
let span_stage_name = function
  | 0 -> "originate"
  | 1 -> "buf_enter"
  | 2 -> "buf_exit"
  | 3 -> "mac_enq"
  | 4 -> "mac_deq"
  | 5 -> "mac_try"
  | 6 -> "mac_end"
  | 7 -> "mac_fail"
  | 8 -> "mac_drop"
  | 9 -> "ring"
  | 10 -> "agg"
  | _ -> "?"

(* Is this event part of the causal neighbourhood of destination [dst]?
   The invariant monitor's ring-buffer dump and the trace analyzer's
   violation-window query both use this predicate, so their outputs
   coincide line for line. *)
let relevant_to ~dst ev =
  match ev.kind with
  | Table_write | Violation -> ev.a = dst
  | Proto -> ev.b = dst
  | Data_drop -> ev.e = dst
  | Link_failure -> true
  | Tx | Rx | Collision | Ifq_drop | Deliver | Span -> false

(* Packed sequence numbers ([Seqnum.pack]): stamp in the high bits,
   counter in the low 31. *)
let pp_sn fmt sn =
  if sn < 0 then Format.pp_print_string fmt "-"
  else Format.fprintf fmt "%d.%d" (sn lsr 31) (sn land ((1 lsl 31) - 1))

let pp_opt_node fmt n =
  if n < 0 then Format.pp_print_string fmt "*" else Format.fprintf fmt "n%d" n

let pp ~name fmt ev =
  Format.fprintf fmt "[%10.6f] n%d " (Sim.Time.to_sec ev.time) ev.node;
  match ev.kind with
  | Tx ->
      Format.fprintf fmt "TX %s -> %a (%d B)" (name ev.a) pp_opt_node ev.b ev.c
  | Rx ->
      Format.fprintf fmt "RX %s from n%d -> %a" (name ev.a) ev.b pp_opt_node
        ev.c
  | Collision -> Format.fprintf fmt "COLLISION %s from n%d" (name ev.a) ev.b
  | Ifq_drop -> Format.fprintf fmt "IFQ-DROP %s -> %a" (name ev.a) pp_opt_node ev.b
  | Deliver ->
      Format.fprintf fmt "DELIVER flow %d seq %d from n%d (%d hops, %.2f ms)"
        ev.a ev.b ev.c ev.d
        (float_of_int ev.e /. 1e6)
  | Data_drop ->
      Format.fprintf fmt "DROP flow %d seq %d n%d -> n%d (%s)" ev.b ev.c ev.d
        ev.e (name ev.a)
  | Link_failure -> Format.fprintf fmt "LINK-FAILURE to n%d" ev.a
  | Proto ->
      Format.fprintf fmt "EVENT %s" (name ev.a);
      if ev.b >= 0 then Format.fprintf fmt " dst n%d" ev.b
  | Table_write ->
      Format.fprintf fmt "RT dst n%d succ %a -> %a dist %d fd %d sn %a"
        ev.a pp_opt_node ev.b pp_opt_node ev.c ev.d ev.e pp_sn ev.f
  | Violation ->
      Format.fprintf fmt
        "VIOLATION dst n%d succ n%d: own sn %a fd %d, succ sn %a fd %d" ev.a
        ev.b pp_sn ev.c ev.e pp_sn ev.d ev.f
  | Span ->
      Format.fprintf fmt "SPAN %s flow %d seq %d" (span_stage_name ev.a) ev.b
        ev.c;
      if ev.d >= 0 then Format.fprintf fmt " d=%d" ev.d;
      if ev.e >= 0 then Format.fprintf fmt " e=%d" ev.e;
      if ev.f >= 0 then Format.fprintf fmt " f=%d" ev.f
