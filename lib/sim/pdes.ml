(* Conservative synchronous-window PDES coordinator.

   K engines advance in lock-step windows.  Each window spans
   [start, we) where [we = min (earliest pending event + lookahead,
   next forced boundary, horizon + 1)]: every shard whose earliest
   event falls inside the window runs it to [we - 1ns], then the
   coordinator drains cross-shard messages (in shard order, arming
   order within a shard — deterministic regardless of worker count),
   fires the boundary callback, and opens the next window.

   The conservative guarantee is the caller's contract: a message
   posted while a window executes must arrive at or after the window
   end ([post] enforces it).  With that, no shard can ever receive an
   event in its past, whatever the shard/worker interleaving — results
   are a pure function of the window schedule, which itself depends
   only on event times, the lookahead and the forced boundaries.

   Worker domains are decoupled from the shard count: shard [i] is
   always run by worker [i mod workers], so outboxes are single-writer
   and outcomes do not depend on how many cores the host really has. *)

type message = { m_dst : int; m_time_ns : int; m_fn : unit -> unit }

type pool = {
  mutex : Mutex.t;
  work : Condition.t;
  done_c : Condition.t;
  mutable gen : int;
  mutable we_ns : int;
  mutable shutdown : bool;
  mutable remaining : int;
  exns : exn option array;
  minor : float array; (* per-worker Gc.minor_words, recorded at shutdown *)
  mutable doms : unit Domain.t list;
}

type t = {
  engines : Engine.t array;
  lookahead_ns : int;
  outbox : message list array; (* per SOURCE shard, newest first *)
  mutable forced : int list; (* requested boundary times, ascending *)
  mutable on_boundary : Time.t -> unit;
  mutable windows : int;
  mutable messages : int;
  mutable busy : int; (* sum over windows of shards with work inside *)
  mutable cur_we : int; (* exclusive end of the executing window *)
  workers : int;
  mutable pool : pool option;
  mutable worker_minor : float array; (* from the last stopped pool *)
}

let create ?workers ~lookahead engines =
  let k = Array.length engines in
  if k = 0 then invalid_arg "Pdes.create: no engines";
  let lookahead_ns = (lookahead : Time.t :> int) in
  if lookahead_ns <= 0 then
    invalid_arg "Pdes.create: lookahead must be positive";
  let workers =
    match workers with
    | Some w -> Stdlib.max 1 (Stdlib.min w k)
    | None -> Stdlib.max 1 (Stdlib.min (Domain.recommended_domain_count ()) k)
  in
  {
    engines;
    lookahead_ns;
    outbox = Array.map (fun _ -> []) engines;
    forced = [];
    on_boundary = ignore;
    windows = 0;
    messages = 0;
    busy = 0;
    cur_we = max_int;
    workers;
    pool = None;
    worker_minor = [||];
  }

let shards t = Array.length t.engines
let engine t i = t.engines.(i)
let lookahead t = Time.unsafe_of_ns t.lookahead_ns
let set_on_boundary t fn = t.on_boundary <- fn
let window_end_ns t = t.cur_we

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: _ as l when x < y -> x :: l
  | y :: rest when x = y -> y :: rest
  | y :: rest -> y :: insert_sorted x rest

let request_boundary t time =
  t.forced <- insert_sorted (time : Time.t :> int) t.forced

(* Called from shard [src]'s events while a window executes — possibly
   on a worker domain.  Only shard-[src]-local state is touched; the
   coordinator reads the outboxes after the barrier. *)
let post t ~src ~dst time fn =
  let time_ns = (time : Time.t :> int) in
  if t.cur_we <> max_int && time_ns < t.cur_we then
    invalid_arg
      (Printf.sprintf
         "Pdes.post: arrival %d ns inside the current window (end %d ns) \
          violates the lookahead bound"
         time_ns t.cur_we);
  t.outbox.(src) <- { m_dst = dst; m_time_ns = time_ns; m_fn = fn } :: t.outbox.(src)

let run_shard_range t we_ns ~first ~stride =
  let k = Array.length t.engines in
  let until = Time.unsafe_of_ns (we_ns - 1) in
  let i = ref first in
  while !i < k do
    let e = t.engines.(!i) in
    if Engine.next_time_ns e < we_ns then Engine.run ~until e;
    i := !i + stride
  done

let worker_loop t p d =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock p.mutex;
    while (not p.shutdown) && p.gen = !seen do
      Condition.wait p.work p.mutex
    done;
    if p.shutdown then begin
      Mutex.unlock p.mutex;
      p.minor.(d) <- Gc.minor_words ();
      running := false
    end
    else begin
      seen := p.gen;
      let we = p.we_ns in
      Mutex.unlock p.mutex;
      (try run_shard_range t we ~first:d ~stride:t.workers
       with exn -> p.exns.(d) <- Some exn);
      (* Refresh this worker's GC gauge every window (not just at
         shutdown) so boundary-time telemetry sees live values; the
         coordinator only reads after the barrier below. *)
      p.minor.(d) <- Gc.minor_words ();
      Mutex.lock p.mutex;
      p.remaining <- p.remaining - 1;
      if p.remaining = 0 then Condition.signal p.done_c;
      Mutex.unlock p.mutex
    end
  done

let start_pool t =
  let p =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      done_c = Condition.create ();
      gen = 0;
      we_ns = 0;
      shutdown = false;
      remaining = 0;
      exns = Array.make t.workers None;
      minor = Array.make t.workers 0.;
      doms = [];
    }
  in
  p.doms <-
    List.init t.workers (fun d -> Domain.spawn (fun () -> worker_loop t p d));
  t.pool <- Some p

let stop_pool t =
  match t.pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.mutex;
      p.shutdown <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.mutex;
      List.iter Domain.join p.doms;
      t.worker_minor <- Array.copy p.minor;
      t.pool <- None

let run_window t we_ns =
  match t.pool with
  | None -> run_shard_range t we_ns ~first:0 ~stride:1
  | Some p ->
      Mutex.lock p.mutex;
      p.we_ns <- we_ns;
      p.remaining <- t.workers;
      p.gen <- p.gen + 1;
      Condition.broadcast p.work;
      while p.remaining > 0 do
        Condition.wait p.done_c p.mutex
      done;
      Mutex.unlock p.mutex;
      Array.iteri
        (fun d exn ->
          match exn with
          | Some e ->
              p.exns.(d) <- None;
              raise e
          | None -> ())
        p.exns

let drain_outboxes t =
  let k = Array.length t.engines in
  for src = 0 to k - 1 do
    match t.outbox.(src) with
    | [] -> ()
    | pending ->
        t.outbox.(src) <- [];
        List.iter
          (fun m ->
            t.messages <- t.messages + 1;
            ignore
              (Engine.at t.engines.(m.m_dst)
                 (Time.unsafe_of_ns m.m_time_ns)
                 m.m_fn))
          (List.rev pending)
  done

let min_next_time t =
  Array.fold_left
    (fun acc e -> Stdlib.min acc (Engine.next_time_ns e))
    max_int t.engines

let run t ~until =
  let until_ns = (until : Time.t :> int) in
  if t.workers > 1 && t.pool = None then start_pool t;
  Fun.protect
    ~finally:(fun () ->
      stop_pool t;
      t.cur_we <- max_int)
    (fun () ->
      let running = ref true in
      while !running do
        let m = min_next_time t in
        let f = match t.forced with [] -> max_int | x :: _ -> x in
        if (m = max_int || m > until_ns) && (f = max_int || f > until_ns)
        then running := false
        else begin
          let we =
            let horizon = until_ns + 1 in
            let by_event =
              if m = max_int || m > max_int - t.lookahead_ns then max_int
              else m + t.lookahead_ns
            in
            Stdlib.min (Stdlib.min by_event horizon) (Stdlib.min f max_int)
          in
          t.cur_we <- we;
          t.windows <- t.windows + 1;
          Array.iter
            (fun e -> if Engine.next_time_ns e < we then t.busy <- t.busy + 1)
            t.engines;
          (* An empty window (forced boundary at or before the next
             event) runs nothing and just fires the boundary. *)
          if m < we then run_window t we;
          t.cur_we <- max_int;
          drain_outboxes t;
          (match t.forced with
          | x :: rest when x <= we -> t.forced <- rest
          | _ -> ());
          t.on_boundary (Time.unsafe_of_ns (Stdlib.min we until_ns))
        end
      done;
      (* Idle virtual time passes on every shard, as in [Engine.run]. *)
      Array.iter (fun e -> Engine.run ~until e) t.engines)

type stats = { windows : int; messages : int }

let stats (t : t) = { windows = t.windows; messages = t.messages }

(* Mean fraction of shards with work inside their window, over all
   windows so far.  1.0 means every window kept every shard busy. *)
let window_utilization (t : t) =
  if t.windows = 0 then 0.
  else
    float_of_int t.busy
    /. float_of_int (t.windows * Array.length t.engines)

let workers t = t.workers
let worker_minor_words t = t.worker_minor

(* Live view during a run: the pool's per-worker gauges are refreshed
   by each worker at the end of every window, and this must only be
   called with shards quiesced (e.g. from the boundary callback). *)
let live_worker_minor_words t =
  match t.pool with Some p -> p.minor | None -> t.worker_minor
