(* Tests for the protocol-agnostic routing kit. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int

let msg ?(flow = 0) ?(seq = 0) ~src ~dst () =
  Data_msg.fresh ~flow_id:flow ~seq ~src:(n src) ~dst:(n dst)
    ~payload_bytes:512 ~origin_time:Time.zero

(* ---- Rreq_cache -------------------------------------------------------- *)

let cache_add_find () =
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.sec 5.) in
  checkb "absent" false (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:7);
  Routing.Rreq_cache.add c ~origin:(n 1) ~rreq_id:7 "hop";
  checkb "present" true (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:7);
  checkb "value" true (Routing.Rreq_cache.find c ~origin:(n 1) ~rreq_id:7 = Some "hop");
  checkb "other id absent" false (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:8);
  checkb "other origin absent" false (Routing.Rreq_cache.mem c ~origin:(n 2) ~rreq_id:7)

let cache_expiry () =
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.sec 5.) in
  Routing.Rreq_cache.add c ~origin:(n 1) ~rreq_id:1 ();
  ignore
    (Engine.at engine (Time.sec 4.) (fun () ->
         checkb "still live at 4s" true
           (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:1)));
  ignore
    (Engine.at engine (Time.sec 6.) (fun () ->
         checkb "expired at 6s" false
           (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:1)));
  Engine.run engine

let cache_refresh_restarts_clock () =
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.sec 5.) in
  Routing.Rreq_cache.add c ~origin:(n 1) ~rreq_id:1 1;
  ignore
    (Engine.at engine (Time.sec 3.) (fun () ->
         Routing.Rreq_cache.add c ~origin:(n 1) ~rreq_id:1 2));
  ignore
    (Engine.at engine (Time.sec 7.) (fun () ->
         checkb "live at 7s after refresh" true
           (Routing.Rreq_cache.find c ~origin:(n 1) ~rreq_id:1 = Some 2)));
  Engine.run engine

let cache_update_in_place () =
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.sec 5.) in
  Routing.Rreq_cache.add c ~origin:(n 1) ~rreq_id:1 10;
  Routing.Rreq_cache.update c ~origin:(n 1) ~rreq_id:1 (fun x -> x + 5);
  checkb "updated" true (Routing.Rreq_cache.find c ~origin:(n 1) ~rreq_id:1 = Some 15);
  (* Updating a missing entry is a no-op. *)
  Routing.Rreq_cache.update c ~origin:(n 9) ~rreq_id:9 (fun x -> x + 1);
  checkb "no phantom" false (Routing.Rreq_cache.mem c ~origin:(n 9) ~rreq_id:9)

let cache_update_ignores_expired () =
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.ms 10.) in
  Routing.Rreq_cache.add c ~origin:(n 1) ~rreq_id:1 10;
  ignore
    (Engine.at engine (Time.sec 1.) (fun () ->
         (* The entry is past its TTL: update must neither apply [f] nor
            resurrect it. *)
         Routing.Rreq_cache.update c ~origin:(n 1) ~rreq_id:1 (fun x -> x + 5);
         checkb "expired entry not updated" true
           (Routing.Rreq_cache.find c ~origin:(n 1) ~rreq_id:1 = None);
         checkb "not resurrected" false
           (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:1)));
  Engine.run engine

let cache_key_injective_qcheck =
  (* Distinct (origin, rreq_id) pairs over the full wire domain — node
     ids to 2^30, flood counters to 2^32 — must never alias.  The old
     packing ((origin lsl 31) lxor rreq_id) collided as soon as a flood
     counter reached 2^31: e.g. (0, 0) vs (1, 2^31). *)
  let pair =
    QCheck.(
      quad (int_bound ((1 lsl 30) - 1)) (int_bound max_int)
        (int_bound ((1 lsl 30) - 1)) (int_bound max_int))
  in
  QCheck.Test.make ~name:"rreq_cache distinct computations never alias" ~count:500
    pair (fun (o1, r1', o2, r2') ->
      let r1 = r1' land 0xffff_ffff and r2 = r2' land 0xffff_ffff in
      QCheck.assume (not (o1 = o2 && r1 = r2));
      let engine = Engine.create () in
      let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.sec 5.) in
      Routing.Rreq_cache.add c ~origin:(n o1) ~rreq_id:r1 "a";
      (not (Routing.Rreq_cache.mem c ~origin:(n o2) ~rreq_id:r2))
      && Routing.Rreq_cache.find c ~origin:(n o1) ~rreq_id:r1 = Some "a")

let cache_old_packing_collision () =
  (* The concrete collision of the pre-fix packing. *)
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.sec 5.) in
  Routing.Rreq_cache.add c ~origin:(n 0) ~rreq_id:0 "zero";
  checkb "(1, 2^31) is a different computation" false
    (Routing.Rreq_cache.mem c ~origin:(n 1) ~rreq_id:(1 lsl 31))

let cache_purges () =
  let engine = Engine.create () in
  let c = Routing.Rreq_cache.create ~engine ~ttl:(Time.ms 10.) in
  for i = 0 to 99 do
    Routing.Rreq_cache.add c ~origin:(n i) ~rreq_id:i ()
  done;
  ignore
    (Engine.at engine (Time.sec 1.) (fun () ->
         checki "all expired and purged" 0 (Routing.Rreq_cache.length c)));
  Engine.run engine

(* ---- Packet_buffer ------------------------------------------------------ *)

let buffer_push_take () =
  let engine = Engine.create () in
  let drops = ref [] in
  let b =
    Routing.Packet_buffer.create ~engine ~capacity:10 ~max_age:(Time.sec 30.)
      ~on_drop:(fun m ~reason -> drops := (m, reason) :: !drops)
      ()
  in
  Routing.Packet_buffer.push b (msg ~flow:1 ~src:0 ~dst:5 ());
  Routing.Packet_buffer.push b (msg ~flow:2 ~src:0 ~dst:5 ());
  Routing.Packet_buffer.push b (msg ~flow:3 ~src:0 ~dst:6 ());
  checkb "pending for 5" true (Routing.Packet_buffer.pending b (n 5));
  checki "3 total" 3 (Routing.Packet_buffer.length b);
  let got = Routing.Packet_buffer.take b (n 5) in
  checki "two for 5, fifo" 2 (List.length got);
  (match got with
  | [ a; c ] ->
      checki "fifo first" 1 a.Data_msg.flow_id;
      checki "fifo second" 2 c.Data_msg.flow_id
  | _ -> Alcotest.fail "wrong count");
  checkb "5 now empty" false (Routing.Packet_buffer.pending b (n 5));
  checki "one left" 1 (Routing.Packet_buffer.length b);
  checki "no drops" 0 (List.length !drops)

let buffer_timeout () =
  let engine = Engine.create () in
  let drops = ref [] in
  let b =
    Routing.Packet_buffer.create ~engine ~capacity:10 ~max_age:(Time.sec 5.)
      ~on_drop:(fun m ~reason -> drops := (m, reason) :: !drops)
      ()
  in
  Routing.Packet_buffer.push b (msg ~src:0 ~dst:5 ());
  ignore
    (Engine.at engine (Time.sec 10.) (fun () ->
         checkb "expired: nothing pending" false
           (Routing.Packet_buffer.pending b (n 5))));
  Engine.run engine;
  (match !drops with
  | [ (_, reason) ] -> Alcotest.check Alcotest.string "reason" "buffer-timeout" reason
  | _ -> Alcotest.fail "expected one drop")

let buffer_capacity_evicts_oldest () =
  let engine = Engine.create () in
  let drops = ref [] in
  let b =
    Routing.Packet_buffer.create ~engine ~capacity:2 ~max_age:(Time.sec 30.)
      ~on_drop:(fun m ~reason -> drops := (m, reason) :: !drops)
      ()
  in
  (* Distinct push times so age ordering is defined. *)
  ignore (Engine.at engine (Time.ms 1.) (fun () ->
      Routing.Packet_buffer.push b (msg ~flow:1 ~src:0 ~dst:5 ())));
  ignore (Engine.at engine (Time.ms 2.) (fun () ->
      Routing.Packet_buffer.push b (msg ~flow:2 ~src:0 ~dst:6 ())));
  ignore (Engine.at engine (Time.ms 3.) (fun () ->
      Routing.Packet_buffer.push b (msg ~flow:3 ~src:0 ~dst:7 ())));
  Engine.run engine;
  checki "capacity held" 2 (Routing.Packet_buffer.length b);
  (match !drops with
  | [ (m, reason) ] ->
      checki "oldest evicted" 1 m.Data_msg.flow_id;
      Alcotest.check Alcotest.string "reason" "buffer-evicted" reason
  | _ -> Alcotest.fail "expected exactly one eviction")

let buffer_drop_all () =
  let engine = Engine.create () in
  let drops = ref [] in
  let b =
    Routing.Packet_buffer.create ~engine ~capacity:10 ~max_age:(Time.sec 30.)
      ~on_drop:(fun m ~reason -> drops := (m, reason) :: !drops)
      ()
  in
  Routing.Packet_buffer.push b (msg ~flow:1 ~src:0 ~dst:5 ());
  Routing.Packet_buffer.push b (msg ~flow:2 ~src:0 ~dst:5 ());
  Routing.Packet_buffer.drop_all b (n 5) ~reason:"discovery-failed";
  checki "two dropped" 2 (List.length !drops);
  checki "buffer empty" 0 (Routing.Packet_buffer.length b)

let buffer_table_stays_bounded () =
  (* Churn over many distinct destinations, as a long mobile run does.
     Emptied per-destination queues must leave the table: the number of
     tracked destinations stays bounded by the live occupancy, not by the
     number of destinations ever buffered for. *)
  let engine = Engine.create () in
  let b =
    Routing.Packet_buffer.create ~engine ~capacity:4 ~max_age:(Time.sec 30.)
      ~on_drop:(fun _ ~reason:_ -> ())
      ()
  in
  for i = 0 to 199 do
    Routing.Packet_buffer.push b (msg ~flow:i ~src:0 ~dst:(i mod 100) ())
  done;
  checki "occupancy at capacity" 4 (Routing.Packet_buffer.length b);
  checkb "destination table bounded by occupancy" true
    (Routing.Packet_buffer.destinations b <= Routing.Packet_buffer.length b);
  (* Draining with [take] and expiring with [pending] also release their
     table entries. *)
  for d = 0 to 99 do
    ignore (Routing.Packet_buffer.take b (n d))
  done;
  checki "empty after draining" 0 (Routing.Packet_buffer.length b);
  checki "no dead queues retained" 0 (Routing.Packet_buffer.destinations b);
  Routing.Packet_buffer.push b (msg ~flow:1000 ~src:0 ~dst:7 ());
  ignore
    (Engine.at engine (Time.sec 60.) (fun () ->
         checkb "expired: nothing pending" false
           (Routing.Packet_buffer.pending b (n 7));
         checki "expiry releases the table entry" 0
           (Routing.Packet_buffer.destinations b)));
  Engine.run engine

(* ---- Discovery schedule -------------------------------------------------- *)

let ring_schedule () =
  let d = Routing.Discovery.default in
  let t1 = Routing.Discovery.next_ttl d ~prev:None in
  checkb "starts at 1" true (t1 = Some 1);
  let t2 = Routing.Discovery.next_ttl d ~prev:(Some 1) in
  checkb "grows by 2" true (t2 = Some 3);
  checkb "5 next" true (Routing.Discovery.next_ttl d ~prev:(Some 3) = Some 5);
  checkb "7 next" true (Routing.Discovery.next_ttl d ~prev:(Some 5) = Some 7);
  checkb "then diameter" true
    (Routing.Discovery.next_ttl d ~prev:(Some 7) = Some d.net_diameter);
  checkb "then exhausted" true
    (Routing.Discovery.next_ttl d ~prev:(Some d.net_diameter) = None)

let ring_no_extra_threshold_attempt () =
  (* RFC 3561 s6.4: once the next ring would pass TTL_THRESHOLD the
     search goes straight to NET_DIAMETER — no clamped attempt *at* the
     threshold.  Unaligned previous TTLs arise from LDR's optimal-TTL
     starts and from [ttl_for_known_distance]. *)
  let d = Routing.Discovery.default in
  checkb "6 jumps straight to diameter" true
    (Routing.Discovery.next_ttl d ~prev:(Some 6) = Some d.net_diameter);
  checkb "threshold jumps to diameter" true
    (Routing.Discovery.next_ttl d ~prev:(Some 7) = Some d.net_diameter);
  checkb "above threshold jumps to diameter" true
    (Routing.Discovery.next_ttl d ~prev:(Some 12) = Some d.net_diameter);
  (* An in-threshold ring that lands exactly on the threshold is still a
     legitimate attempt. *)
  checkb "5 -> 7 kept" true (Routing.Discovery.next_ttl d ~prev:(Some 5) = Some 7)

let ring_timeouts_scale () =
  let d = Routing.Discovery.default in
  let t1 = Routing.Discovery.attempt_timeout d ~ttl:1 in
  let t7 = Routing.Discovery.attempt_timeout d ~ttl:7 in
  checkb "longer ttl waits longer" true Time.(t7 > t1);
  (* RING_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * (TTL + TIMEOUT_BUFFER),
     RFC 3561 s10 with TIMEOUT_BUFFER = 2. *)
  checkb "2*(ttl+buffer)*traversal" true
    (Time.equal t7 (Time.mul d.node_traversal (2 * (7 + d.timeout_buffer))));
  checkb "buffer keeps the smallest ring patient" true
    (Time.equal t1 (Time.mul d.node_traversal 6))

let ring_known_distance () =
  let d = Routing.Discovery.default in
  checki "known distance ttl" 6 (Routing.Discovery.ttl_for_known_distance d ~dist:4);
  checkb "capped at diameter" true
    (Routing.Discovery.ttl_for_known_distance d ~dist:100 <= d.net_diameter)

(* ---- Agent null ctx ------------------------------------------------------- *)

let null_ctx_works () =
  let engine = Engine.create () in
  let ctx = Routing.Agent.null_ctx ~id:3 engine in
  checki "id" 3 (Node_id.to_int ctx.Routing.Agent.id);
  (* All sinks are callable without effect. *)
  ctx.Routing.Agent.send ~dst:Net.Frame.Broadcast
    (Payload.Data (msg ~src:0 ~dst:1 ()));
  ctx.Routing.Agent.deliver (msg ~src:0 ~dst:1 ());
  ctx.Routing.Agent.event "x";
  ctx.Routing.Agent.table_changed ()

let () =
  Alcotest.run "routing"
    [
      ( "rreq_cache",
        [
          Alcotest.test_case "add/find" `Quick cache_add_find;
          Alcotest.test_case "expiry" `Quick cache_expiry;
          Alcotest.test_case "refresh" `Quick cache_refresh_restarts_clock;
          Alcotest.test_case "update" `Quick cache_update_in_place;
          Alcotest.test_case "update ignores expired" `Quick
            cache_update_ignores_expired;
          Alcotest.test_case "old packing collision" `Quick
            cache_old_packing_collision;
          QCheck_alcotest.to_alcotest cache_key_injective_qcheck;
          Alcotest.test_case "purge" `Quick cache_purges;
        ] );
      ( "packet_buffer",
        [
          Alcotest.test_case "push/take fifo" `Quick buffer_push_take;
          Alcotest.test_case "timeout" `Quick buffer_timeout;
          Alcotest.test_case "capacity eviction" `Quick buffer_capacity_evicts_oldest;
          Alcotest.test_case "drop_all" `Quick buffer_drop_all;
          Alcotest.test_case "table stays bounded" `Quick
            buffer_table_stays_bounded;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "ring schedule" `Quick ring_schedule;
          Alcotest.test_case "no clamped threshold attempt" `Quick
            ring_no_extra_threshold_attempt;
          Alcotest.test_case "timeouts scale" `Quick ring_timeouts_scale;
          Alcotest.test_case "known distance" `Quick ring_known_distance;
        ] );
      ("agent", [ Alcotest.test_case "null ctx" `Quick null_ctx_works ]);
    ]
