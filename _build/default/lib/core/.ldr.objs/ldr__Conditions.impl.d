lib/core/conditions.ml: Packets Seqnum
