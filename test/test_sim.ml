(* Tests for the simulation substrate: Time, Rng, Event_queue, Engine. *)

open Sim

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---- Time ---------------------------------------------------------- *)

let time_roundtrip () =
  check (Alcotest.float 1e-9) "sec roundtrip" 1.5 (Time.to_sec (Time.sec 1.5));
  check (Alcotest.float 1e-6) "ms roundtrip" 2.25 (Time.to_ms (Time.ms 2.25));
  check (Alcotest.float 1e-3) "us roundtrip" 7.5 (Time.to_us (Time.us 7.5));
  check Alcotest.int64 "ns exact" 42L (Time.to_ns (Time.ns 42L))

let time_arithmetic () =
  let a = Time.ms 3. and b = Time.ms 1. in
  check Alcotest.int64 "add" (Time.to_ns (Time.ms 4.))
    (Time.to_ns (Time.add a b));
  check Alcotest.int64 "diff" (Time.to_ns (Time.ms 2.))
    (Time.to_ns (Time.diff a b));
  check Alcotest.int64 "mul" (Time.to_ns (Time.ms 9.))
    (Time.to_ns (Time.mul a 3));
  check Alcotest.int64 "div" (Time.to_ns (Time.ms 1.))
    (Time.to_ns (Time.div a 3));
  check Alcotest.int64 "scale" (Time.to_ns (Time.ms 1.5))
    (Time.to_ns (Time.scale a 0.5))

let time_invalid () =
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.ns: negative")
    (fun () -> ignore (Time.ns (-1L)));
  Alcotest.check_raises "negative diff"
    (Invalid_argument "Time.diff: negative result") (fun () ->
      ignore (Time.diff (Time.ms 1.) (Time.ms 2.)))

let time_compare () =
  checkb "lt" true Time.(Time.ms 1. < Time.ms 2.);
  checkb "le eq" true Time.(Time.ms 1. <= Time.ms 1.);
  checkb "gt" true Time.(Time.sec 1. > Time.ms 999.);
  checkb "min" true (Time.equal (Time.min (Time.ms 1.) (Time.ms 2.)) (Time.ms 1.));
  checkb "max" true (Time.equal (Time.max (Time.ms 1.) (Time.ms 2.)) (Time.ms 2.))

let time_pp () =
  check Alcotest.string "ns" "500ns" (Time.to_string (Time.ns 500L));
  check Alcotest.string "us" "1.500us" (Time.to_string (Time.us 1.5));
  check Alcotest.string "ms" "2.000ms" (Time.to_string (Time.ms 2.));
  check Alcotest.string "s" "3.000s" (Time.to_string (Time.sec 3.))

(* ---- Rng ------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  checkb "different seeds diverge" true (!same = 0)

let rng_int_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    checkb "in [0,17)" true (x >= 0 && x < 17)
  done

let rng_int_in_bounds () =
  let r = Rng.create 8 in
  for _ = 1 to 1_000 do
    let x = Rng.int_in r (-5) 5 in
    checkb "in [-5,5]" true (x >= -5 && x <= 5)
  done

let rng_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 10_000 do
    let x = Rng.float r 3.5 in
    checkb "in [0,3.5)" true (x >= 0. && x < 3.5)
  done

let rng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 10k draws, each within 30% of
     expectation. *)
  let r = Rng.create 123 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter (fun c -> checkb "bucket near 1000" true (c > 700 && c < 1300)) buckets

let rng_exponential_mean () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential r 100. in
    checkb "positive" true (x > 0.);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 100" true (mean > 95. && mean < 105.)

let rng_coin_probability () =
  let r = Rng.create 12 in
  let heads = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.coin r 0.3 then incr heads
  done;
  checkb "p=0.3 within 3 sigma" true (!heads > 2850 && !heads < 3150)

let rng_split_independence () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* The child's stream must not simply mirror the parent's. *)
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 parent) (Rng.bits64 child) then incr matches
  done;
  checkb "split streams differ" true (!matches = 0)

let rng_shuffle_permutes () =
  let r = Rng.create 99 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 50 Fun.id) sorted

let rng_pick_member () =
  let r = Rng.create 3 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Rng.pick r arr in
    checkb "member" true (Array.exists (( = ) x) arr)
  done

let rng_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in r 3 2))

(* ---- Event queue ---------------------------------------------------- *)

let queue_orders_by_time () =
  let q = Event_queue.create () in
  let order = ref [] in
  let note x () = order := x :: !order in
  ignore (Event_queue.schedule q (Time.ms 3.) (note 3));
  ignore (Event_queue.schedule q (Time.ms 1.) (note 1));
  ignore (Event_queue.schedule q (Time.ms 2.) (note 2));
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !order)

let queue_fifo_at_same_time () =
  let q = Event_queue.create () in
  let order = ref [] in
  for i = 1 to 20 do
    ignore (Event_queue.schedule q (Time.ms 1.) (fun () -> order := i :: !order))
  done;
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "insertion order"
    (List.init 20 (fun i -> i + 1))
    (List.rev !order)

let queue_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.schedule q (Time.ms 1.) (fun () -> fired := true) in
  Event_queue.cancel h;
  checkb "cancelled flag" true (Event_queue.is_cancelled h);
  checkb "empty after cancel" true (Event_queue.is_empty q);
  checkb "never fired" false !fired

let queue_cancel_among_others () =
  let q = Event_queue.create () in
  let seen = ref [] in
  let note x () = seen := x :: !seen in
  let _a = Event_queue.schedule q (Time.ms 1.) (note 1) in
  let b = Event_queue.schedule q (Time.ms 2.) (note 2) in
  let _c = Event_queue.schedule q (Time.ms 3.) (note 3) in
  Event_queue.cancel b;
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "b skipped" [ 1; 3 ] (List.rev !seen)

let queue_next_time () =
  let q = Event_queue.create () in
  checkb "empty" true (Event_queue.next_time q = None);
  ignore (Event_queue.schedule q (Time.ms 5.) ignore);
  (match Event_queue.next_time q with
  | Some t -> checkb "is 5ms" true (Time.equal t (Time.ms 5.))
  | None -> Alcotest.fail "expected an event");
  ignore (Event_queue.schedule q (Time.ms 2.) ignore);
  match Event_queue.next_time q with
  | Some t -> checkb "is 2ms now" true (Time.equal t (Time.ms 2.))
  | None -> Alcotest.fail "expected an event"

let queue_grows () =
  let q = Event_queue.create () in
  for i = 1 to 1000 do
    ignore (Event_queue.schedule q (Time.ms (float_of_int (1000 - i))) ignore)
  done;
  checki "live" 1000 (Event_queue.live_count q);
  (* Pops come out sorted despite reverse insertion. *)
  let rec drain last n =
    match Event_queue.pop q with
    | None -> n
    | Some (t, _) ->
        checkb "monotone" true Time.(t >= last);
        drain t (n + 1)
  in
  checki "all popped" 1000 (drain Time.zero 0)

(* qcheck: heap pops are sorted for arbitrary schedules. *)
let queue_sorted_prop =
  QCheck.Test.make ~name:"event_queue pops sorted" ~count:200
    QCheck.(list (int_bound 1_000_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter
        (fun ms -> ignore (Event_queue.schedule q (Time.us (float_of_int ms)) ignore))
        times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> Time.(t >= last) && drain t
      in
      drain Time.zero)

(* ---- Event_queue shrink ---------------------------------------------- *)

let queue_shrinks () =
  let q = Event_queue.create () in
  for i = 0 to 999 do
    ignore (Event_queue.schedule q (Time.us (float_of_int i)) ignore)
  done;
  checkb "grew past 1000" true (Event_queue.capacity q >= 1024);
  for _ = 1 to 990 do
    ignore (Event_queue.pop q)
  done;
  (* Halving chases occupancy down to the floor. *)
  checki "shrank to floor" 64 (Event_queue.capacity q);
  checki "survivors intact" 10 (Event_queue.live_count q)

(* ---- Calendar_queue --------------------------------------------------- *)

let calendar_orders_and_fifo () =
  let q = Calendar_queue.create () in
  let order = ref [] in
  let note i () = order := i :: !order in
  ignore (Calendar_queue.schedule q (Time.ms 3.) (note 3));
  ignore (Calendar_queue.schedule q (Time.ms 1.) (note 1));
  ignore (Calendar_queue.schedule q (Time.ms 1.) (note 11));
  ignore (Calendar_queue.schedule q (Time.ms 2.) (note 2));
  while Calendar_queue.pop_staged q max_int do
    Calendar_queue.run_staged q
  done;
  Alcotest.(check (list int)) "time order, FIFO ties" [ 1; 11; 2; 3 ]
    (List.rev !order)

let calendar_cancel_is_physical () =
  let q = Calendar_queue.create () in
  let h1 = Calendar_queue.schedule q (Time.ms 1.) ignore in
  let _h2 = Calendar_queue.schedule q (Time.ms 2.) ignore in
  checki "two live" 2 (Calendar_queue.live_count q);
  Calendar_queue.cancel q h1;
  checki "slot freed immediately" 1 (Calendar_queue.live_count q);
  Calendar_queue.cancel q h1;
  checki "double cancel no-op" 1 (Calendar_queue.live_count q);
  (* Cancel-heavy churn recycles slots instead of growing the pool —
     the MAC's ACK-timer pattern. *)
  let cap = Calendar_queue.capacity q in
  for i = 0 to 9_999 do
    let h = Calendar_queue.schedule q (Time.ms (float_of_int i)) ignore in
    Calendar_queue.cancel q h
  done;
  checki "pool did not grow" cap (Calendar_queue.capacity q);
  checki "churn left one event" 1 (Calendar_queue.live_count q)

let calendar_stale_handle_safe () =
  let q = Calendar_queue.create () in
  let h_old = Calendar_queue.schedule q (Time.ms 1.) ignore in
  checkb "popped" true (Calendar_queue.pop_staged q max_int);
  Calendar_queue.run_staged q;
  (* The next schedule recycles the fired slot; the old handle must not
     be able to kill its new occupant. *)
  ignore (Calendar_queue.schedule q (Time.ms 2.) ignore);
  Calendar_queue.cancel q h_old;
  checki "recycled slot untouched" 1 (Calendar_queue.live_count q)

let calendar_overflow_tier () =
  let q = Calendar_queue.create () in
  (* Events far beyond any initial year land in the overflow tier and
     still drain in global order. *)
  ignore (Calendar_queue.schedule q (Time.us 1.) ignore);
  ignore (Calendar_queue.schedule q (Time.sec 3600.) ignore);
  ignore (Calendar_queue.schedule q (Time.us 2.) ignore);
  ignore (Calendar_queue.schedule q (Time.sec 1800.) ignore);
  let ts = ref [] in
  while Calendar_queue.pop_staged q max_int do
    ts := Time.to_us (Calendar_queue.staged_time q) :: !ts;
    Calendar_queue.run_staged q
  done;
  Alcotest.(check (list (float 1e-6)))
    "sorted across tiers"
    [ 1.; 2.; 1_800_000_000.; 3_600_000_000. ]
    (List.rev !ts);
  (* Cancelling an overflow event also frees its slot immediately. *)
  let _near = Calendar_queue.schedule q (Time.us 1.) ignore in
  let far = Calendar_queue.schedule q (Time.sec 7200.) ignore in
  Calendar_queue.cancel q far;
  checki "overflow slot freed" 1 (Calendar_queue.live_count q)

let calendar_below_base () =
  let q = Calendar_queue.create () in
  (* First event anchors the calendar at 10 s; a later schedule at 1 s
     forces a re-anchor instead of a negative bucket. *)
  ignore (Calendar_queue.schedule q (Time.sec 10.) ignore);
  ignore (Calendar_queue.schedule q (Time.sec 1.) ignore);
  checkb "popped" true (Calendar_queue.pop_staged q max_int);
  Alcotest.(check (float 1e-9)) "earlier event first" 1.
    (Time.to_sec (Calendar_queue.staged_time q));
  Calendar_queue.run_staged q;
  checkb "popped" true (Calendar_queue.pop_staged q max_int);
  Alcotest.(check (float 1e-9)) "anchor event second" 10.
    (Time.to_sec (Calendar_queue.staged_time q))

(* Large random workload: resizes up and down, overflow migration,
   same-time ties — the drain must come out in (time, schedule-order). *)
let calendar_drains_sorted () =
  let q = Calendar_queue.create () in
  let rng = Rng.create 42 in
  let n = 10_000 in
  let times =
    Array.init n (fun _ ->
        if Rng.int rng 20 = 0 then Time.sec (float_of_int (Rng.int rng 3600))
        else Time.us (float_of_int (Rng.int rng 2_000)))
  in
  let popped = ref [] in
  Array.iteri
    (fun i tm ->
      ignore (Calendar_queue.schedule q tm (fun () -> popped := i :: !popped)))
    times;
  while Calendar_queue.pop_staged q max_int do
    Calendar_queue.run_staged q
  done;
  checkb "drained" true (Calendar_queue.is_empty q);
  let order = List.rev !popped in
  checki "all fired" n (List.length order);
  let last_t = ref (-1) and last_i = ref (-1) in
  List.iter
    (fun i ->
      let t = (times.(i) :> int) in
      checkb "sorted with FIFO ties" true
        (t > !last_t || (t = !last_t && i > !last_i));
      last_t := t;
      last_i := i)
    order

(* ---- Engine: heap vs calendar differential --------------------------- *)

let engine_none_handle () =
  let e = Engine.create () in
  checkb "none is none" true (Engine.is_none Engine.none);
  Engine.cancel e Engine.none;
  let h = Engine.at e (Time.ms 1.) ignore in
  checkb "real handle is not none" false (Engine.is_none h)

let fire_tag (tag, fired) = fired := tag :: !fired

(* Drive both schedulers through the public Engine API with the same
   random program of schedules (closure and closure-free paths, near
   and far-future delays with heavy ties), cancels (including repeats
   on the same handle) and single-event runs, then drain.  Firing
   order — including same-time FIFO ties — clock and event count must
   agree exactly. *)
let engine_modes_agree_prop =
  QCheck.Test.make ~name:"heap and calendar engines fire identically"
    ~count:100
    QCheck.(list (pair (int_bound 3) (int_bound 1_000_000)))
    (fun ops ->
      let trace scheduler =
        let e = Engine.create ~scheduler () in
        let fired = ref [] in
        let handles = ref [] in
        let tag = ref 0 in
        List.iter
          (fun (op, x) ->
            match op with
            | 0 | 1 ->
                let t = !tag in
                incr tag;
                let d =
                  if x mod 7 = 0 then Time.sec (float_of_int (x mod 5))
                  else Time.us (float_of_int (x mod 300))
                in
                let h =
                  if op = 0 then
                    Engine.after e d (fun () -> fired := t :: !fired)
                  else Engine.after_fn e d fire_tag (t, fired)
                in
                handles := h :: !handles
            | 2 -> (
                match !handles with
                | [] -> ()
                | hs -> Engine.cancel e (List.nth hs (x mod List.length hs)))
            | _ -> Engine.run ~max_events:(Engine.events_processed e + 1) e)
          ops;
        Engine.run e;
        (List.rev !fired, Engine.now e, Engine.events_processed e)
      in
      trace `Heap = trace `Calendar)

(* The controlled scheduler left to Engine.run pops the global
   (time, seq) minimum — mcheck's claim that an unexplored simulation
   has stock semantics.  Same random program shape as above, plus
   floating events (which degrade to at-now under the calendar), must
   agree event-for-event: firing order, clock, event count. *)
let controlled_default_matches_calendar_prop =
  QCheck.Test.make
    ~name:"controlled scheduler default order matches calendar" ~count:100
    QCheck.(list (pair (int_bound 4) (int_bound 1_000_000)))
    (fun ops ->
      let trace scheduler =
        let e = Engine.create ~scheduler () in
        let fired = ref [] in
        let handles = ref [] in
        let tag = ref 0 in
        List.iter
          (fun (op, x) ->
            match op with
            | 0 | 1 ->
                let t = !tag in
                incr tag;
                let d =
                  if x mod 7 = 0 then Time.sec (float_of_int (x mod 5))
                  else Time.us (float_of_int (x mod 300))
                in
                let h =
                  if op = 0 then
                    Engine.after e d (fun () -> fired := t :: !fired)
                  else Engine.after_fn e d fire_tag (t, fired)
                in
                handles := h :: !handles
            | 2 ->
                let t = !tag in
                incr tag;
                handles :=
                  Engine.schedule_floating e ~tag:(t mod 5)
                    ~label:(string_of_int t) (fun () -> fired := t :: !fired)
                  :: !handles
            | 3 -> (
                match !handles with
                | [] -> ()
                | hs -> Engine.cancel e (List.nth hs (x mod List.length hs)))
            | _ -> Engine.run ~max_events:(Engine.events_processed e + 1) e)
          ops;
        Engine.run e;
        (List.rev !fired, Engine.now e, Engine.events_processed e)
      in
      trace `Calendar = trace `Controlled)

(* ---- Engine ---------------------------------------------------------- *)

let engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.at e (Time.ms 2.) (fun () -> log := (2, Engine.now e) :: !log));
  ignore (Engine.at e (Time.ms 1.) (fun () -> log := (1, Engine.now e) :: !log));
  Engine.run e;
  (match List.rev !log with
  | [ (1, t1); (2, t2) ] ->
      checkb "clock at 1ms" true (Time.equal t1 (Time.ms 1.));
      checkb "clock at 2ms" true (Time.equal t2 (Time.ms 2.))
  | _ -> Alcotest.fail "wrong order");
  checki "2 events" 2 (Engine.events_processed e)

let engine_after_relative () =
  let e = Engine.create () in
  let at = ref Time.zero in
  ignore
    (Engine.at e (Time.ms 10.) (fun () ->
         ignore (Engine.after e (Time.ms 5.) (fun () -> at := Engine.now e))));
  Engine.run e;
  checkb "fires at 15ms" true (Time.equal !at (Time.ms 15.))

let engine_no_past_scheduling () =
  let e = Engine.create () in
  ignore
    (Engine.at e (Time.ms 10.) (fun () ->
         try
           ignore (Engine.at e (Time.ms 5.) ignore);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
  Engine.run e

let engine_until_horizon () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.at e (Time.ms (float_of_int i)) (fun () -> incr count))
  done;
  Engine.run ~until:(Time.ms 5.) e;
  checki "only first 5 fired" 5 !count

let engine_idle_time_passes () =
  let e = Engine.create () in
  Engine.run ~until:(Time.sec 3.) e;
  checkb "clock advanced through idle run" true
    (Time.equal (Engine.now e) (Time.sec 3.));
  (* Scheduling relative to the advanced clock works. *)
  let fired = ref Time.zero in
  ignore (Engine.after e (Time.sec 1.) (fun () -> fired := Engine.now e));
  Engine.run e;
  checkb "fires at 4s" true (Time.equal !fired (Time.sec 4.))

let engine_max_events () =
  let e = Engine.create () in
  (* A self-perpetuating event chain must be stopped by the budget. *)
  let rec arm () = ignore (Engine.after e (Time.ms 1.) (fun () -> arm ())) in
  arm ();
  Engine.run ~max_events:50 e;
  checki "stopped at budget" 50 (Engine.events_processed e)

let engine_budget_keeps_clock_monotone () =
  (* Exhausting [max_events] with events still due before the horizon
     must not fast-forward the clock past them: a resumed run would then
     observe time moving backwards. *)
  let e = Engine.create () in
  let fired = ref [] in
  for i = 1 to 10 do
    ignore
      (Engine.at e (Time.ms (float_of_int i)) (fun () ->
           fired := Engine.now e :: !fired))
  done;
  Engine.run ~until:(Time.ms 20.) ~max_events:5 e;
  checkb "clock held at last fired event" true
    (Time.equal (Engine.now e) (Time.ms 5.));
  (* Resume: the remaining events fire at their own times, monotonically,
     and only then does idle time fast-forward to the horizon. *)
  Engine.run ~until:(Time.ms 20.) e;
  let times = List.rev !fired in
  checki "all ten fired" 10 (List.length times);
  let rec monotone last = function
    | [] -> true
    | t :: rest -> Time.(t >= last) && monotone t rest
  in
  checkb "firing times monotone across resume" true (monotone Time.zero times);
  checkb "horizon reached after resume" true
    (Time.equal (Engine.now e) (Time.ms 20.))

let engine_budget_on_empty_queue_still_fast_forwards () =
  let e = Engine.create () in
  ignore (Engine.at e (Time.ms 1.) ignore);
  Engine.run ~until:(Time.ms 10.) ~max_events:5 e;
  checkb "no pending work: clock reaches horizon" true
    (Time.equal (Engine.now e) (Time.ms 10.))

let engine_every_rejects_nonpositive_interval () =
  let e = Engine.create () in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Engine.every: interval must be positive") (fun () ->
      Engine.every e ~start:Time.zero ~interval:Time.zero ~until:(Time.ms 10.)
        ignore)

let engine_every_jitter_respects_horizon () =
  (* Pre-jitter times 0,5,10,15 are all before the 20 ms horizon, but a
     7 ms jitter would push the last firing to 22 ms: it must be
     skipped, not fired beyond [until]. *)
  let e = Engine.create () in
  let times = ref [] in
  Engine.every e
    ~jitter:(fun () -> Time.ms 7.)
    ~start:Time.zero ~interval:(Time.ms 5.) ~until:(Time.ms 20.) (fun () ->
      times := Engine.now e :: !times);
  Engine.run e;
  checki "three firings" 3 (List.length !times);
  List.iter
    (fun t -> checkb "firing before horizon" true Time.(t < Time.ms 20.))
    !times

let engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~start:(Time.ms 10.) ~interval:(Time.ms 10.)
    ~until:(Time.ms 55.) (fun () -> incr count);
  Engine.run e;
  checki "ticks at 10..50" 5 !count

let engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.at e (Time.ms 1.) (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  checkb "cancelled" false !fired

let engine_determinism () =
  (* Two engines with the same seed driving the same random workload
     produce identical event counts and final clocks. *)
  let run () =
    let e = Engine.create ~seed:77 () in
    let r = Engine.rng e in
    let total = ref 0L in
    for _ = 1 to 100 do
      let d = Time.us (float_of_int (1 + Rng.int r 1000)) in
      ignore
        (Engine.after e d (fun () ->
             total := Int64.add !total (Time.to_ns (Engine.now e))))
    done;
    Engine.run e;
    !total
  in
  check Alcotest.int64 "same totals" (run ()) (run ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "time",
        [
          Alcotest.test_case "roundtrip" `Quick time_roundtrip;
          Alcotest.test_case "arithmetic" `Quick time_arithmetic;
          Alcotest.test_case "invalid" `Quick time_invalid;
          Alcotest.test_case "compare" `Quick time_compare;
          Alcotest.test_case "pp" `Quick time_pp;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick rng_int_in_bounds;
          Alcotest.test_case "float bounds" `Quick rng_float_bounds;
          Alcotest.test_case "uniformity" `Quick rng_uniformity;
          Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
          Alcotest.test_case "coin probability" `Quick rng_coin_probability;
          Alcotest.test_case "split independence" `Quick rng_split_independence;
          Alcotest.test_case "shuffle permutes" `Quick rng_shuffle_permutes;
          Alcotest.test_case "pick member" `Quick rng_pick_member;
          Alcotest.test_case "invalid args" `Quick rng_invalid;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "orders by time" `Quick queue_orders_by_time;
          Alcotest.test_case "fifo at same time" `Quick queue_fifo_at_same_time;
          Alcotest.test_case "cancel" `Quick queue_cancel;
          Alcotest.test_case "cancel among others" `Quick queue_cancel_among_others;
          Alcotest.test_case "next_time" `Quick queue_next_time;
          Alcotest.test_case "grows" `Quick queue_grows;
          Alcotest.test_case "shrinks" `Quick queue_shrinks;
          qt queue_sorted_prop;
        ] );
      ( "calendar_queue",
        [
          Alcotest.test_case "orders and fifo" `Quick calendar_orders_and_fifo;
          Alcotest.test_case "cancel is physical" `Quick
            calendar_cancel_is_physical;
          Alcotest.test_case "stale handle safe" `Quick
            calendar_stale_handle_safe;
          Alcotest.test_case "overflow tier" `Quick calendar_overflow_tier;
          Alcotest.test_case "below base reanchors" `Quick calendar_below_base;
          Alcotest.test_case "drains sorted" `Quick calendar_drains_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick engine_runs_in_order;
          Alcotest.test_case "after is relative" `Quick engine_after_relative;
          Alcotest.test_case "no past scheduling" `Quick engine_no_past_scheduling;
          Alcotest.test_case "until horizon" `Quick engine_until_horizon;
          Alcotest.test_case "idle time passes" `Quick engine_idle_time_passes;
          Alcotest.test_case "max events" `Quick engine_max_events;
          Alcotest.test_case "budget keeps clock monotone" `Quick
            engine_budget_keeps_clock_monotone;
          Alcotest.test_case "budget with drained queue fast-forwards" `Quick
            engine_budget_on_empty_queue_still_fast_forwards;
          Alcotest.test_case "every" `Quick engine_every;
          Alcotest.test_case "every rejects zero interval" `Quick
            engine_every_rejects_nonpositive_interval;
          Alcotest.test_case "every jitter respects horizon" `Quick
            engine_every_jitter_respects_horizon;
          Alcotest.test_case "cancel" `Quick engine_cancel;
          Alcotest.test_case "none handle" `Quick engine_none_handle;
          Alcotest.test_case "determinism" `Quick engine_determinism;
          qt engine_modes_agree_prop;
          qt controlled_default_matches_calendar_prop;
        ] );
    ]
