lib/experiment/trace.mli: Format Logs Net Packets Sim
