(* Calendar queue (Brown, CACM '88): pending events live in an array of
   buckets, each covering a [width]-wide slice of time; bucket [b] holds
   events in [base + b*width, base + (b+1)*width).  The whole calendar
   spans one "year" [nbuckets * width]; events due beyond the current
   year wait in an unordered overflow tier and migrate into the calendar
   when it is rebuilt.  Schedule and cancel are O(1); pop scans forward
   from the bucket of the last popped event, which is O(1) amortized
   when the bucket width tracks the mean inter-event gap — the resize
   policy below keeps it there.

   Event slots are pooled in parallel arrays and addressed by int
   handles packing (generation, index).  Freed slots bump their
   generation, so a stale cancel — after the event fired, or after the
   slot was recycled — is detected and ignored, preserving the
   "cancel after fire is a no-op" contract without tombstones.  The
   per-slot callback is stored as an untyped (fn, arg) pair so the hot
   schedulers need not allocate a closure per event; [schedule] wraps a
   [unit -> unit] for callers that do not care. *)

(* 22 bits of slot index leaves 40 generation bits on 63-bit ints; the
   pool asserts it never outgrows the index space (4M concurrent
   events — two orders of magnitude above the paper-scale workloads). *)
let idx_bits = 22
let idx_mask = (1 lsl idx_bits) - 1
let max_slots = 1 lsl idx_bits
let no_slot = -1

(* [wheres.(i)]: bucket index when the slot is linked into the calendar,
   or one of these sentinels. *)
let w_free = -2
let w_overflow = -3

let dummy_fn : Obj.t -> unit = fun _ -> ()
let unit_arg = Obj.repr 0

type t = {
  (* Slot pool: parallel arrays, one entry per event.  [nexts]/[prevs]
     doubly link slots within a bucket (and thread the free list through
     [nexts]); keeping links as plain ints avoids both allocation and
     GC write barriers on the hot path. *)
  mutable times : int array;  (* (Time.t :> int) *)
  mutable seqs : int array;  (* global schedule order; FIFO tie-break *)
  mutable gens : int array;  (* bumped on free; start at 1 *)
  mutable fns : (Obj.t -> unit) array;
  mutable args : Obj.t array;
  mutable nexts : int array;
  mutable prevs : int array;
  mutable wheres : int array;
  mutable free_head : int;
  (* Calendar proper. *)
  mutable buckets : int array;  (* head slot per bucket, or no_slot *)
  mutable btails : int array;
  mutable width : int;  (* ns per bucket *)
  mutable cal_base : int;  (* time at the start of bucket 0 *)
  mutable cur_bucket : int;  (* min live event is at or after this bucket *)
  mutable cal_count : int;
  (* Overflow tier: unordered array of slots due beyond the current
     year.  [ov_seqs] snapshots each slot's seq so entries whose slot
     was cancelled (and possibly recycled) are recognised as stale when
     the tier is collected. *)
  mutable ov_slots : int array;
  mutable ov_seqs : int array;
  mutable ov_size : int;
  mutable ov_live : int;
  mutable live : int;
  mutable next_seq : int;
  (* Staged pop: [pop_staged] unlinks the due event and parks its slot
     index here; [staged_time]/[run_staged] read the slot in place, so
     a pop allocates nothing and — the slot index being an immediate
     int — writes through no GC barrier. *)
  mutable staged_slot : int;
  mutable scratch : int array;  (* rebuild workspace *)
}

let init_buckets = 64
let min_buckets = 64

let create () =
  let cap = 256 in
  let nexts = Array.init cap (fun i -> if i = cap - 1 then no_slot else i + 1) in
  {
    times = Array.make cap 0;
    seqs = Array.make cap (-1);
    gens = Array.make cap 1;
    fns = Array.make cap dummy_fn;
    args = Array.make cap unit_arg;
    nexts;
    prevs = Array.make cap no_slot;
    wheres = Array.make cap w_free;
    free_head = 0;
    buckets = Array.make init_buckets no_slot;
    btails = Array.make init_buckets no_slot;
    width = 1_000_000 (* 1 ms; retuned at the first resize *);
    cal_base = 0;
    cur_bucket = 0;
    cal_count = 0;
    ov_slots = Array.make 16 no_slot;
    ov_seqs = Array.make 16 (-1);
    ov_size = 0;
    ov_live = 0;
    live = 0;
    next_seq = 0;
    staged_slot = no_slot;
    scratch = [||];
  }

let live_count t = t.live
let is_empty t = t.live = 0
let capacity t = Array.length t.times
let num_buckets t = Array.length t.buckets
let bucket_width t = t.width
let handle_of t i = (t.gens.(i) lsl idx_bits) lor i

(* ---- Slot pool --------------------------------------------------------- *)

let grow_pool t =
  let old = Array.length t.times in
  let cap = 2 * old in
  if cap > max_slots then failwith "Calendar_queue: event pool exhausted";
  let extend a fill =
    let a' = Array.make cap fill in
    Array.blit a 0 a' 0 old;
    a'
  in
  t.times <- extend t.times 0;
  t.seqs <- extend t.seqs (-1);
  t.gens <- extend t.gens 1;
  t.fns <- extend t.fns dummy_fn;
  t.args <- extend t.args unit_arg;
  t.nexts <- extend t.nexts no_slot;
  t.prevs <- extend t.prevs no_slot;
  t.wheres <- extend t.wheres w_free;
  for i = old to cap - 1 do
    t.nexts.(i) <- (if i = cap - 1 then t.free_head else i + 1)
  done;
  t.free_head <- old

let alloc_slot t =
  if t.free_head = no_slot then grow_pool t;
  let i = t.free_head in
  t.free_head <- t.nexts.(i);
  i

(* Bumping the generation invalidates every outstanding handle to this
   slot.  The stale fn/arg refs are deliberately left in place: clearing
   them would cost two GC write barriers per fired or cancelled event,
   and the free list is LIFO so a freed slot is the next one reused —
   at most [capacity] dead (fn, arg) pairs are ever retained, the same
   bounded-staleness trade [Ifq] makes. *)
let free_slot t i =
  t.gens.(i) <- t.gens.(i) + 1;
  t.wheres.(i) <- w_free;
  t.nexts.(i) <- t.free_head;
  t.prevs.(i) <- no_slot;
  t.free_head <- i;
  t.live <- t.live - 1

(* ---- Bucket lists ------------------------------------------------------ *)

(* Buckets are unsorted doubly-linked lists: insert is an O(1) tail
   append and cancel an O(1) unlink.  Ordering is resolved at pop time
   by a min-scan of the first non-empty bucket — each event's (time,
   seq) key is unique, so the scan is deterministic whatever order the
   list is in.  This trades a per-pop scan for free inserts, which pays
   off because most scheduled events (MAC ack/access timers, protocol
   retransmits) are cancelled before they fire and never get popped at
   all. *)
let bucket_insert t b i =
  t.wheres.(i) <- b;
  let tl = t.btails.(b) in
  t.prevs.(i) <- tl;
  t.nexts.(i) <- no_slot;
  if tl = no_slot then t.buckets.(b) <- i else t.nexts.(tl) <- i;
  t.btails.(b) <- i;
  t.cal_count <- t.cal_count + 1

let bucket_remove t b i =
  let p = t.prevs.(i) and n = t.nexts.(i) in
  if p = no_slot then t.buckets.(b) <- n else t.nexts.(p) <- n;
  if n = no_slot then t.btails.(b) <- p else t.prevs.(n) <- p;
  t.cal_count <- t.cal_count - 1

(* ---- Overflow tier ----------------------------------------------------- *)

let ov_push t i =
  if t.ov_size = Array.length t.ov_slots then begin
    let cap = 2 * t.ov_size in
    let slots' = Array.make cap no_slot and seqs' = Array.make cap (-1) in
    Array.blit t.ov_slots 0 slots' 0 t.ov_size;
    Array.blit t.ov_seqs 0 seqs' 0 t.ov_size;
    t.ov_slots <- slots';
    t.ov_seqs <- seqs'
  end;
  t.ov_slots.(t.ov_size) <- i;
  t.ov_seqs.(t.ov_size) <- t.seqs.(i);
  t.ov_size <- t.ov_size + 1;
  t.wheres.(i) <- w_overflow

(* An overflow entry is live iff its slot still holds the same event:
   still marked overflow and the seq matches (a recycled slot gets a
   fresh, globally unique seq). *)
let ov_entry_live t k =
  let s = t.ov_slots.(k) in
  t.wheres.(s) = w_overflow && t.seqs.(s) = t.ov_seqs.(k)

(* ---- Resize / rebase --------------------------------------------------- *)

(* Cap the year below 2^60 ns so [cal_base + year] cannot overflow. *)
let max_width nbuckets = (1 lsl 60) / nbuckets

(* Pick a bucket width from the live events: sample up to 64 times,
   take the median non-zero inter-sample gap, and cover ~3 events per
   bucket.  The median is robust against the far-future outliers
   (flow restarts, long protocol timers) that skew a mean gap. *)
let choose_width t n =
  if n < 3 then t.width
  else begin
    let k = Stdlib.min 64 n in
    let sample = Array.init k (fun j -> t.times.(t.scratch.(j * n / k))) in
    Array.sort (fun (a : int) b -> Stdlib.compare a b) sample;
    let gaps = Array.init (k - 1) (fun j -> sample.(j + 1) - sample.(j)) in
    Array.sort (fun (a : int) b -> Stdlib.compare a b) gaps;
    let nz = ref 0 in
    while !nz < k - 1 && gaps.(!nz) = 0 do incr nz done;
    if !nz = k - 1 then t.width (* all samples coincide *)
    else
      let med = gaps.(!nz + ((k - 1 - !nz) / 2)) in
      Stdlib.max 1 med
  end

(* Snapshot resize: collect every live slot (buckets and overflow,
   skipping stale overflow entries), retune the width, and reinsert
   against a new base.  Also serves as the rebase when the calendar
   drains into the overflow tier, and as the below-base rescue when a
   bounded [run] left the clock behind a later event.  O(live), and
   rare by construction. *)
let rebuild t ?(base = max_int) ~nbuckets () =
  if Array.length t.scratch < t.live then
    t.scratch <- Array.make (Stdlib.max 64 (2 * t.live)) 0;
  let n = ref 0 in
  let min_time = ref base in
  let nb = Array.length t.buckets in
  for b = 0 to nb - 1 do
    let i = ref t.buckets.(b) in
    while !i <> no_slot do
      t.scratch.(!n) <- !i;
      incr n;
      if t.times.(!i) < !min_time then min_time := t.times.(!i);
      i := t.nexts.(!i)
    done
  done;
  for k = 0 to t.ov_size - 1 do
    if ov_entry_live t k then begin
      let s = t.ov_slots.(k) in
      t.scratch.(!n) <- s;
      incr n;
      if t.times.(s) < !min_time then min_time := t.times.(s)
    end
  done;
  t.ov_size <- 0;
  t.ov_live <- 0;
  t.cal_count <- 0;
  let n = !n in
  if nbuckets <> nb then begin
    t.buckets <- Array.make nbuckets no_slot;
    t.btails <- Array.make nbuckets no_slot
  end
  else begin
    Array.fill t.buckets 0 nb no_slot;
    Array.fill t.btails 0 nb no_slot
  end;
  t.width <- Stdlib.min (choose_width t n) (max_width nbuckets);
  t.cal_base <- (if n = 0 then 0 else !min_time);
  t.cur_bucket <- 0;
  let year = t.width * nbuckets in
  for j = 0 to n - 1 do
    let i = t.scratch.(j) in
    let off = t.times.(i) - t.cal_base in
    if off >= year then begin
      ov_push t i;
      t.ov_live <- t.ov_live + 1
    end
    else bucket_insert t (off / t.width) i
  done

(* ---- Schedule / cancel ------------------------------------------------- *)

let schedule_raw t (time : Time.t) fn arg =
  let tm = (time :> int) in
  let i = alloc_slot t in
  let sq = t.next_seq in
  t.next_seq <- sq + 1;
  t.times.(i) <- tm;
  t.seqs.(i) <- sq;
  t.fns.(i) <- fn;
  t.args.(i) <- arg;
  if t.live = 0 then begin
    (* Empty queue: re-anchor the calendar at this event.  Any stale
       overflow entries are dead weight — drop them. *)
    t.cal_base <- tm;
    t.cur_bucket <- 0;
    t.ov_size <- 0
  end
  else if tm < t.cal_base then
    (* Below the calendar's base (possible after a bounded run parked
       the queue and a caller scheduled relative to an earlier clock).
       Re-anchor so the bucket index stays non-negative. *)
    rebuild t ~base:tm ~nbuckets:(Array.length t.buckets) ();
  t.live <- t.live + 1;
  let nb = Array.length t.buckets in
  let off = tm - t.cal_base in
  if off >= t.width * nb then begin
    ov_push t i;
    t.ov_live <- t.ov_live + 1
  end
  else begin
    let b = off / t.width in
    bucket_insert t b i;
    (* Keep the pop scan's invariant — no live event below
       [cur_bucket] — even for callers that schedule before the current
       minimum (the engine never does, but the queue does not rely on
       that). *)
    if b < t.cur_bucket then t.cur_bucket <- b
  end;
  if t.cal_count > 2 * nb then rebuild t ~nbuckets:(2 * nb) ();
  handle_of t i

let schedule t time (f : unit -> unit) =
  schedule_raw t time (Obj.magic f : Obj.t -> unit) unit_arg

(* O(1) physical cancellation: unlink and recycle the slot now, rather
   than leaving a tombstone to surface at pop time.  The generation
   check makes a handle to a fired/cancelled/recycled event a no-op. *)
let cancel t h =
  let i = h land idx_mask in
  let g = h lsr idx_bits in
  if g > 0 && i < Array.length t.gens && t.gens.(i) = g then begin
    let w = t.wheres.(i) in
    if w >= 0 then begin
      bucket_remove t w i;
      free_slot t i
    end
    else if w = w_overflow then begin
      (* The overflow array entry goes stale and is skipped at the next
         rebuild; the slot itself is recycled immediately. *)
      t.ov_live <- t.ov_live - 1;
      free_slot t i
    end
  end

(* ---- Pop --------------------------------------------------------------- *)

(* Earliest live slot, or [no_slot].  Every bucketed event sorts before
   every overflow event (overflow means "beyond the current year"), and
   buckets partition a single year in increasing time order with no
   wrap-around — so the minimum of the first non-empty bucket is the
   global minimum.  Buckets are unsorted, so that minimum is found by a
   scan over the bucket's list, keyed on (time, seq).  When the
   calendar has drained but overflow events remain, rebuild: that
   re-anchors the year at the overflow minimum and migrates it into a
   bucket. *)
let rec find_min t =
  if t.live = 0 then no_slot
  else if t.cal_count > 0 then begin
    let nb = Array.length t.buckets in
    let b = ref t.cur_bucket in
    while !b < nb && t.buckets.(!b) = no_slot do incr b done;
    if !b = nb then b := 0;
    while t.buckets.(!b) = no_slot do incr b done;
    t.cur_bucket <- !b;
    let best = ref t.buckets.(!b) in
    let bt = ref t.times.(!best) and bs = ref t.seqs.(!best) in
    let i = ref t.nexts.(!best) in
    while !i <> no_slot do
      let ti = t.times.(!i) in
      if ti < !bt || (ti = !bt && t.seqs.(!i) < !bs) then begin
        best := !i;
        bt := ti;
        bs := t.seqs.(!i)
      end;
      i := t.nexts.(!i)
    done;
    !best
  end
  else begin
    rebuild t ~nbuckets:(Array.length t.buckets) ();
    find_min t
  end

let pop_staged t limit =
  let i = find_min t in
  if i = no_slot then false
  else if t.times.(i) > limit then false
  else begin
    bucket_remove t t.wheres.(i) i;
    t.staged_slot <- i;
    (* The staged slot is unlinked but not yet freed, so a shrink
       rebuild here never sees it: [rebuild] collects only linked
       slots. *)
    let nb = Array.length t.buckets in
    if nb > min_buckets && t.cal_count < nb / 2 then
      rebuild t ~nbuckets:(nb / 2) ();
    true
  end

let staged_time t = Time.unsafe_of_ns t.times.(t.staged_slot)

(* Free before invoking: the callback may reschedule and is entitled to
   reuse the slot it just vacated. *)
let run_staged t =
  let i = t.staged_slot in
  let fn = t.fns.(i) and arg = t.args.(i) in
  free_slot t i;
  fn arg

let next_time_ns t =
  let i = find_min t in
  if i = no_slot then max_int else t.times.(i)

(* Exposed so [Engine.Trace] can unpack handles it records. *)
let handle_idx_bits = idx_bits
let handle_idx_mask = idx_mask
