open Sim

type t = {
  active_route_timeout : Time.t;
  my_route_timeout : Time.t;
  ring : Routing.Discovery.t;
  rreq_cache_ttl : Time.t;
  buffer_capacity : int;
  buffer_max_age : Time.t;
  flood_jitter : Time.t;
  data_ttl : int;
  opt_multiple_rreps : bool;
  opt_request_as_error : bool;
  opt_reduced_distance : bool;
  reduced_distance_factor : float;
  opt_min_lifetime : bool;
  min_lifetime_fraction : float;
  opt_optimal_ttl : bool;
  local_add_ttl : int;
  seqnum_counter_limit : int;
  multipath : bool;
  link_cost : Packets.Node_id.t -> Packets.Node_id.t -> int;
}

let default =
  {
    active_route_timeout = Time.sec 3.;
    my_route_timeout = Time.sec 6.;
    ring = Routing.Discovery.default;
    rreq_cache_ttl = Time.sec 6.;
    buffer_capacity = 64;
    buffer_max_age = Time.sec 30.;
    flood_jitter = Time.ms 10.;
    data_ttl = Packets.Data_msg.default_ttl;
    opt_multiple_rreps = true;
    opt_request_as_error = true;
    opt_reduced_distance = true;
    reduced_distance_factor = 0.8;
    opt_min_lifetime = true;
    min_lifetime_fraction = 1. /. 3.;
    opt_optimal_ttl = true;
    local_add_ttl = 2;
    seqnum_counter_limit = 1 lsl 30;
    multipath = false;
    link_cost = (fun _ _ -> 1);
  }

let plain =
  {
    default with
    opt_multiple_rreps = false;
    opt_request_as_error = false;
    opt_reduced_distance = false;
    opt_min_lifetime = false;
    opt_optimal_ttl = false;
  }
