(* The struct-of-arrays world (city-scale node state) is tested
   differentially, never with tolerances:

   - the SoA hot path (shared Mobility.Pos_store + incremental
     Geom.Cell_index + flat Net.Nodes counter planes) produces outcomes
     exactly equal to the record path, classic and sharded, across
     protocols, mobility families, shadowing and churn;
   - churn edge cases: traffic to a crashed node, teardown of routing
     state, rejoin recovery, and index removal/re-insertion under Soa;
   - the LDR invariant monitor stays silent across churn and
     partition-then-heal sweeps (crash-rebooted sequence numbers are
     the van Glabbeek loop stressor this guards against). *)

open Sim
open Experiment
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fig5 ?(protocol = Scenario.ldr) ?(seed = 5) ?(soa = false) ?(shards = 1)
    ?(mobility = Scenario.Waypoint) ?shadowing ?churn ?partition
    ?(duration = 15.) () =
  {
    Scenario.label = "world";
    num_nodes = 24;
    terrain = Geom.Terrain.create ~width:1200. ~height:300.;
    placement = Scenario.Uniform;
    speed_min = 1.;
    speed_max = 10.;
    pause = Time.sec 0.;
    duration = Time.sec duration;
    traffic =
      {
        Traffic.num_flows = 4;
        packets_per_sec = 4.;
        payload_bytes = 512;
        mean_flow_duration = Time.sec duration;
        startup_window = Time.sec 2.;
      };
    protocol;
    net = Net.Params.default;
    seed;
    audit_loops = false;
    naive_channel = false;
    heap_scheduler = false;
    shards;
    mobility;
    shadowing;
    churn;
    partition;
    soa;
  }

let digest (o : Runner.outcome) =
  let m = o.Runner.metrics in
  ( ( o.Runner.summary,
      o.Runner.events_processed,
      o.Runner.transmissions,
      o.Runner.mac_queue_drops,
      o.Runner.mac_unicast_failures,
      o.Runner.invariant_violations ),
    ( Metrics.originated m,
      Metrics.delivered m,
      Metrics.duplicates m,
      Metrics.median_latency_ms m,
      Metrics.p95_latency_ms m,
      Metrics.mean_hops m ),
    ( Metrics.control_by_kind m,
      Metrics.control_bytes_by_kind m,
      Metrics.drops_by_reason m,
      Metrics.loop_violations m,
      Metrics.data_bytes m,
      Metrics.ack_bytes m ) )

let same_digest label a b =
  checkb label true (Stdlib.compare (digest a) (digest b) = 0)

(* --- SoA vs record: byte-identical outcomes ------------------------- *)

let test_soa_identical protocol () =
  let rec_o = Runner.run (fig5 ~protocol ()) in
  let soa_o = Runner.run (fig5 ~protocol ~soa:true ()) in
  checkb "run did work" true (Metrics.delivered rec_o.Runner.metrics > 0);
  same_digest "soa digest = record digest" rec_o soa_o

let test_soa_identical_sharded () =
  List.iter
    (fun k ->
      let rec_o = Runner.run (fig5 ~shards:k ()) in
      let soa_o = Runner.run (fig5 ~shards:k ~soa:true ()) in
      same_digest (Printf.sprintf "soa = record at K=%d" k) rec_o soa_o)
    [ 1; 4 ]

let test_soa_identical_mobility mobility () =
  let rec_o = Runner.run (fig5 ~mobility ()) in
  let soa_o = Runner.run (fig5 ~mobility ~soa:true ()) in
  checkb "run did work" true (Metrics.delivered rec_o.Runner.metrics > 0);
  same_digest
    (Scenario.mobility_name mobility ^ ": soa = record")
    rec_o soa_o

(* --- shadowing: deterministic, observable, mode-invariant ------------ *)

let test_shadowing () =
  let sh = Some Scenario.default_shadowing in
  let a = Runner.run (fig5 ~shadowing:(Option.get sh) ()) in
  let b = Runner.run (fig5 ~shadowing:(Option.get sh) ()) in
  same_digest "shadowed rerun identical" a b;
  let soa_o = Runner.run (fig5 ~shadowing:(Option.get sh) ~soa:true ()) in
  same_digest "shadowed soa = record" a soa_o;
  let plain = Runner.run (fig5 ()) in
  checkb "shadowing changes the outcome" true
    (Stdlib.compare (digest a) (digest plain) <> 0)

(* --- partition wall: heals, monitor silent, mode-invariant ----------- *)

let test_partition_heal () =
  let partition =
    { Scenario.part_at = Time.sec 4.; part_heal = Time.sec 8.;
      part_x_frac = 0.5 }
  in
  let o = Runner.run ~monitor:true (fig5 ~partition ()) in
  checki "monitor silent across partition-heal" 0
    o.Runner.invariant_violations;
  checkb "still delivered" true (Metrics.delivered o.Runner.metrics > 0);
  let soa_o = Runner.run ~monitor:true (fig5 ~partition ~soa:true ()) in
  same_digest "partitioned soa = record" o soa_o

(* --- churn: monitor silent, origination parity, mode-invariant ------- *)

let churn_cfg =
  {
    Scenario.churn_frac = 0.4;
    crash_frac = 0.5;
    down_min = Time.sec 3.;
    down_max = Time.sec 6.;
    churn_start = Time.sec 3.;
    churn_stop = Time.sec 10.;
  }

let test_churn_monitor_silent () =
  let o = Runner.run ~monitor:true (fig5 ~churn:churn_cfg ()) in
  checki "monitor silent across churn" 0 o.Runner.invariant_violations;
  checkb "churned run still delivers" true
    (Metrics.delivered o.Runner.metrics > 0);
  let soa_o = Runner.run ~monitor:true (fig5 ~churn:churn_cfg ~soa:true ()) in
  same_digest "churned soa = record" o soa_o

let test_churn_sharded_parity () =
  (* Down nodes originate nothing; the gate is an exact-virtual-time
     schedule, so the classic and sharded runs skip exactly the same
     originations even though border-crossing latency perturbs the
     rest. *)
  let o1 = Runner.run ~monitor:true (fig5 ~churn:churn_cfg ()) in
  let o4 = Runner.run ~monitor:true (fig5 ~churn:churn_cfg ~shards:4 ()) in
  checki "sharded monitor silent" 0 o4.Runner.invariant_violations;
  checki "originated parity K=1 vs K=4"
    (Metrics.originated o1.Runner.metrics)
    (Metrics.originated o4.Runner.metrics);
  (* And at a fixed shard count the churned run is exactly reproducible
     across state layouts. *)
  let o4s =
    Runner.run ~monitor:true (fig5 ~churn:churn_cfg ~shards:4 ~soa:true ())
  in
  same_digest "sharded churned soa = record" o4 o4s

(* --- crashed-destination edge cases --------------------------------- *)

(* A five-node chain, 200 m spacing (range 250 m: only neighbours hear
   each other).  Node 4 crashes mid-run while node 0 keeps injecting. *)
let chain_scenario ~soa =
  let positions =
    List.init 5 (fun i -> Geom.Vec2.v (100. +. (200. *. float_of_int i)) 150.)
  in
  {
    (fig5 ~duration:20. ()) with
    Scenario.label = "chain-crash";
    num_nodes = 5;
    placement = Scenario.Fixed positions;
    speed_min = 0.;
    speed_max = 0.;
    traffic = { (fig5 ()).Scenario.traffic with Traffic.num_flows = 0 };
    soa;
  }

let run_chain_crash ~soa =
  let crashed_successor = ref (Some (Node_id.of_int 0)) in
  Runner.run ~monitor:true
    ~prepare:(fun sim ->
      let eng = sim.Runner.engine in
      let take_down at =
        ignore
          (Engine.at eng at (fun () ->
               Net.Channel.set_attached sim.Runner.channel
                 (Net.Mac.radio sim.Runner.macs.(4))
                 false;
               Net.Mac.set_down sim.Runner.macs.(4) true;
               sim.Runner.agents.(4).Routing.Agent.reset ~crash:true;
               crashed_successor :=
                 sim.Runner.agents.(4).Routing.Agent.successor
                   (Node_id.of_int 0)))
      and bring_up at =
        ignore
          (Engine.at eng at (fun () ->
               Net.Channel.set_attached sim.Runner.channel
                 (Net.Mac.radio sim.Runner.macs.(4))
                 true;
               Net.Mac.set_down sim.Runner.macs.(4) false))
      and inject at =
        ignore (Engine.at eng at (fun () -> sim.Runner.inject ~src:0 ~dst:4))
      in
      inject (Time.sec 1.);
      (* route formed *)
      take_down (Time.sec 5.);
      inject (Time.sec 6.);
      (* traffic to a crashed node *)
      bring_up (Time.sec 10.);
      inject (Time.sec 13.)
      (* rediscovery after the reboot *))
    (chain_scenario ~soa)

let test_crashed_destination () =
  let o = run_chain_crash ~soa:false in
  let m = o.Runner.metrics in
  checki "monitor silent across crash/rejoin" 0 o.Runner.invariant_violations;
  checki "three originations" 3 (Metrics.originated m);
  (* First packet (live chain) and third (after rejoin and
     rediscovery) arrive; the mid-crash one cannot. *)
  checki "crash-window packet lost" 2 (Metrics.delivered m);
  checki "no loops" 0 (Metrics.loop_violations m)

let test_crash_successor_cleared () =
  let crashed_successor = ref (Some (Node_id.of_int 0)) in
  ignore
    (Runner.run
       ~prepare:(fun sim ->
         ignore
           (Engine.at sim.Runner.engine (Time.sec 5.) (fun () ->
                sim.Runner.agents.(4).Routing.Agent.reset ~crash:true;
                crashed_successor :=
                  sim.Runner.agents.(4).Routing.Agent.successor
                    (Node_id.of_int 0)));
         ignore
           (Engine.at sim.Runner.engine (Time.sec 1.) (fun () ->
                sim.Runner.inject ~src:0 ~dst:4)))
       (chain_scenario ~soa:false));
  checkb "reset cleared every successor" true (!crashed_successor = None)

let test_crashed_destination_soa_identical () =
  (* The same scripted crash/rejoin under both state layouts: exercises
     Cell_index removal and re-insertion against grid rebuild
     filtering, with outcome equality as the oracle. *)
  let a = run_chain_crash ~soa:false in
  let b = run_chain_crash ~soa:true in
  same_digest "chain crash soa = record" a b

let () =
  Alcotest.run "world"
    [
      ( "soa-differential",
        [
          Alcotest.test_case "ldr" `Quick (test_soa_identical Scenario.ldr);
          Alcotest.test_case "aodv" `Quick (test_soa_identical Scenario.aodv);
          Alcotest.test_case "olsr" `Quick (test_soa_identical Scenario.olsr);
          Alcotest.test_case "sharded K in {1,4}" `Quick
            test_soa_identical_sharded;
          Alcotest.test_case "manhattan" `Quick
            (test_soa_identical_mobility
               (Scenario.Manhattan { spacing = 150. }));
          Alcotest.test_case "rpgm" `Quick
            (test_soa_identical_mobility
               (Scenario.Rpgm { groups = 4; radius = 60. }));
        ] );
      ( "link-model",
        [
          Alcotest.test_case "shadowing deterministic" `Quick test_shadowing;
          Alcotest.test_case "partition heals, monitor silent" `Quick
            test_partition_heal;
        ] );
      ( "churn",
        [
          Alcotest.test_case "monitor silent" `Quick test_churn_monitor_silent;
          Alcotest.test_case "sharded origination parity" `Quick
            test_churn_sharded_parity;
          Alcotest.test_case "crashed destination" `Quick
            test_crashed_destination;
          Alcotest.test_case "crash clears successors" `Quick
            test_crash_successor_cleared;
          Alcotest.test_case "crash/rejoin soa = record" `Quick
            test_crashed_destination_soa_identical;
        ] );
    ]
