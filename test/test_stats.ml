(* Tests for the statistics helpers. *)

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checkfa eps = Alcotest.check (Alcotest.float eps)

open Stats

let welford_mean_variance () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checkf "mean" 5. (Welford.mean w);
  (* Known sample: population variance 4, sample variance 32/7. *)
  checkfa 1e-9 "variance" (32. /. 7.) (Welford.variance w);
  Alcotest.check Alcotest.int "count" 8 (Welford.count w)

let welford_empty_and_single () =
  let w = Welford.create () in
  checkf "empty mean" 0. (Welford.mean w);
  checkf "empty var" 0. (Welford.variance w);
  checkf "empty ci" 0. (Welford.ci95 w);
  Welford.add w 42.;
  checkf "single mean" 42. (Welford.mean w);
  checkf "single var" 0. (Welford.variance w);
  checkf "single ci" 0. (Welford.ci95 w)

let welford_ci_small_sample () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 1.; 2.; 3. ];
  (* df=2 -> t=4.303; s = 1; ci = 4.303 * 1/sqrt(3). *)
  checkfa 1e-3 "ci95" (4.303 /. sqrt 3.) (Welford.ci95 w)

let welford_t_table () =
  checkfa 1e-9 "df1" 12.706 (Welford.t_critical ~df:1);
  checkfa 1e-9 "df30" 2.042 (Welford.t_critical ~df:30);
  checkfa 1e-9 "df1000 ~ z" 1.96 (Welford.t_critical ~df:1000);
  Alcotest.check_raises "df0"
    (Invalid_argument "Welford.t_critical: df must be positive") (fun () ->
      ignore (Welford.t_critical ~df:0))

(* ci95 across the t-table boundary: with df beyond the table the
   critical value falls back to the normal 1.96, and the half-width
   must follow t * s / sqrt(n) exactly on both sides of the edge. *)
let welford_ci_beyond_table () =
  let expect_ci n =
    let w = Welford.create () in
    for i = 1 to n do
      Welford.add w (float_of_int (i mod 5))
    done;
    let expected =
      Welford.t_critical ~df:(n - 1)
      *. Welford.stddev w
      /. sqrt (float_of_int n)
    in
    checkfa 1e-12 (Printf.sprintf "ci n=%d" n) expected (Welford.ci95 w);
    Welford.t_critical ~df:(n - 1)
  in
  (* df 30: last tabulated row; df 31 and beyond: z fallback. *)
  checkfa 1e-9 "edge uses table" 2.042 (expect_ci 31);
  checkfa 1e-9 "past edge uses z" 1.96 (expect_ci 32);
  checkfa 1e-9 "far past edge" 1.96 (expect_ci 200)

let welford_merge () =
  let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
  let xs = [ 1.; 5.; 2.; 8.; 3. ] and ys = [ 9.; 4.; 7. ] in
  List.iter (Welford.add a) xs;
  List.iter (Welford.add b) ys;
  List.iter (Welford.add whole) (xs @ ys);
  let m = Welford.merge a b in
  checkfa 1e-9 "merged mean" (Welford.mean whole) (Welford.mean m);
  checkfa 1e-9 "merged var" (Welford.variance whole) (Welford.variance m);
  Alcotest.check Alcotest.int "merged count" 8 (Welford.count m)

let welford_merge_empty () =
  let a = Welford.create () and b = Welford.create () in
  Welford.add b 3.;
  let m = Welford.merge a b in
  checkf "mean" 3. (Welford.mean m);
  let m2 = Welford.merge b a in
  checkf "mean sym" 3. (Welford.mean m2)

let welford_estimator_prop =
  QCheck.Test.make ~name:"welford matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      abs_float (Welford.mean w -. mean) < 1e-6)

let quantile_exact_small () =
  let q = Quantile.create ~rng_seed:1 () in
  List.iter (Quantile.add q) [ 5.; 1.; 3.; 2.; 4. ];
  checkf "median" 3. (Quantile.median q);
  checkf "min" 1. (Quantile.quantile q 0.);
  checkf "max" 5. (Quantile.quantile q 1.);
  Alcotest.check Alcotest.int "count" 5 (Quantile.count q)

let quantile_empty () =
  let q = Quantile.create ~rng_seed:1 () in
  checkf "empty median" 0. (Quantile.median q);
  Alcotest.check_raises "bad q"
    (Invalid_argument "Quantile.quantile: q outside [0,1]") (fun () ->
      ignore (Quantile.quantile q 1.5))

let quantile_reservoir_approximates () =
  (* 100k uniform samples through a 4k reservoir: p95 within a few
     percent of truth. *)
  let q = Quantile.create ~capacity:4096 ~rng_seed:7 () in
  let state = ref 12345 in
  for _ = 1 to 100_000 do
    state := (!state * 1103515245) + 12345;
    let u = float_of_int (abs !state mod 1_000_000) /. 1_000_000. in
    Quantile.add q u
  done;
  let p95 = Quantile.p95 q in
  checkb "p95 near 0.95" true (p95 > 0.9 && p95 < 1.0);
  Alcotest.check Alcotest.int "all offered counted" 100_000 (Quantile.count q)

let quantile_interleaved_reads () =
  (* Reading between writes must not corrupt the reservoir. *)
  let q = Quantile.create ~rng_seed:3 () in
  for i = 1 to 100 do
    Quantile.add q (float_of_int i);
    ignore (Quantile.median q)
  done;
  checkf "median of 1..100" 50. (Quantile.quantile q 0.4949);
  checkf "p99ish" 99. (Quantile.quantile q 0.99)

let table_renders () =
  let s =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.check Alcotest.int "4 lines" 4 (List.length lines);
  (* All lines same width. *)
  (match lines with
  | first :: rest ->
      List.iter
        (fun l -> Alcotest.check Alcotest.int "aligned" (String.length first) (String.length l))
        rest
  | [] -> Alcotest.fail "no output");
  checkb "contains alpha" true
    (List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "alpha") lines)

let table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  checkb "renders without error" true (String.length s > 0)

let mean_ci_format () =
  Alcotest.check Alcotest.string "format" "0.987 ± 0.004"
    (Table.mean_ci ~mean:0.9871 ~ci:0.0042)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [
      ( "welford",
        [
          Alcotest.test_case "mean/variance" `Quick welford_mean_variance;
          Alcotest.test_case "empty/single" `Quick welford_empty_and_single;
          Alcotest.test_case "ci small sample" `Quick welford_ci_small_sample;
          Alcotest.test_case "t table" `Quick welford_t_table;
          Alcotest.test_case "ci beyond t-table" `Quick
            welford_ci_beyond_table;
          Alcotest.test_case "merge" `Quick welford_merge;
          Alcotest.test_case "merge empty" `Quick welford_merge_empty;
          qt welford_estimator_prop;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "exact small" `Quick quantile_exact_small;
          Alcotest.test_case "empty" `Quick quantile_empty;
          Alcotest.test_case "reservoir approximates" `Quick
            quantile_reservoir_approximates;
          Alcotest.test_case "interleaved reads" `Quick quantile_interleaved_reads;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick table_renders;
          Alcotest.test_case "pads short rows" `Quick table_pads_short_rows;
          Alcotest.test_case "mean_ci" `Quick mean_ci_format;
        ] );
    ]
