lib/geom/vec2.ml: Format
