(** Node identifiers.

    Dense small integers: simulations index per-node arrays by id. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negatives. *)

val to_int : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
