lib/packets/olsr_msg.mli: Format Node_id
