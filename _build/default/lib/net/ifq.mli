(** Drop-tail interface queue between the routing layer and the MAC. *)

type 'a t

val create : capacity:int -> 'a t

val push : 'a t -> 'a -> bool
(** False (and the element is dropped) when the queue is full. *)

val pop : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
val drops : 'a t -> int
(** Count of elements rejected by {!push} so far. *)
