(* Tests for the LDR protocol: the feasibility conditions, the route
   table (Procedure 3), and full protocol behaviour over the idealized
   test network, including the T-bit path reset and a loop-freedom
   property test under random topology churn. *)

open Sim
open Packets

open Ldr

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int
let sn stamp counter = { Seqnum.stamp; counter }

(* ---- Conditions (Section 2.1) ------------------------------------------ *)

let info s d f = Some { Conditions.sn = s; dist = d; fd = f }

let ndc_cases () =
  (* No information: always acceptable. *)
  checkb "no info" true (Conditions.ndc ~own:None ~adv_sn:(sn 0 0) ~adv_dist:99);
  (* Higher number: acceptable regardless of distance. *)
  checkb "newer sn" true
    (Conditions.ndc ~own:(info (sn 0 0) 2 2) ~adv_sn:(sn 0 1) ~adv_dist:99);
  (* Equal number: distance must beat fd strictly. *)
  checkb "equal sn, shorter than fd" true
    (Conditions.ndc ~own:(info (sn 0 0) 4 3) ~adv_sn:(sn 0 0) ~adv_dist:2);
  checkb "equal sn, equal to fd" false
    (Conditions.ndc ~own:(info (sn 0 0) 4 3) ~adv_sn:(sn 0 0) ~adv_dist:3);
  checkb "equal sn, longer" false
    (Conditions.ndc ~own:(info (sn 0 0) 4 3) ~adv_sn:(sn 0 0) ~adv_dist:5);
  (* Older number: never acceptable. *)
  checkb "older sn" false
    (Conditions.ndc ~own:(info (sn 0 5) 4 3) ~adv_sn:(sn 0 4) ~adv_dist:0)

let fdc_cases () =
  (* Violation requires equal numbers and fd >= requested fd. *)
  checkb "no info never violates" false
    (Conditions.fdc_requires_reset ~own:None ~req_sn:(Some (sn 0 0)) ~req_fd:2);
  checkb "equal sn, fd >= req" true
    (Conditions.fdc_requires_reset ~own:(info (sn 0 0) 4 4)
       ~req_sn:(Some (sn 0 0)) ~req_fd:2);
  checkb "equal sn, fd < req" false
    (Conditions.fdc_requires_reset ~own:(info (sn 0 0) 4 1)
       ~req_sn:(Some (sn 0 0)) ~req_fd:2);
  checkb "different sn no constraint" false
    (Conditions.fdc_requires_reset ~own:(info (sn 0 1) 4 4)
       ~req_sn:(Some (sn 0 0)) ~req_fd:2);
  checkb "unknown requested sn no constraint" false
    (Conditions.fdc_requires_reset ~own:(info (sn 0 0) 4 4) ~req_sn:None ~req_fd:2)

let sdc_cases () =
  (* Equal sn: needs active route, distance strictly under the answering
     bound, and no pending reset. *)
  checkb "answerable" true
    (Conditions.sdc ~own:(info (sn 0 0) 1 1) ~active:true
       ~req_sn:(Some (sn 0 0)) ~answer_dist:2 ~reset:false);
  checkb "distance too long" false
    (Conditions.sdc ~own:(info (sn 0 0) 2 1) ~active:true
       ~req_sn:(Some (sn 0 0)) ~answer_dist:2 ~reset:false);
  checkb "inactive route" false
    (Conditions.sdc ~own:(info (sn 0 0) 1 1) ~active:false
       ~req_sn:(Some (sn 0 0)) ~answer_dist:2 ~reset:false);
  checkb "reset inhibits" false
    (Conditions.sdc ~own:(info (sn 0 0) 1 1) ~active:true
       ~req_sn:(Some (sn 0 0)) ~answer_dist:2 ~reset:true);
  (* Higher number answers even through a reset. *)
  checkb "newer sn answers through reset" true
    (Conditions.sdc ~own:(info (sn 0 1) 9 9) ~active:true
       ~req_sn:(Some (sn 0 0)) ~answer_dist:2 ~reset:true);
  (* Requester with no info accepts any active route. *)
  checkb "unknown sn treated as lowest" true
    (Conditions.sdc ~own:(info (sn 0 0) 9 9) ~active:true ~req_sn:None
       ~answer_dist:Conditions.infinity ~reset:false);
  (* sdc_ignoring_reset identifies the unicast-conversion node. *)
  checkb "ignoring reset" true
    (Conditions.sdc_ignoring_reset ~own:(info (sn 0 0) 1 1) ~active:true
       ~req_sn:(Some (sn 0 0)) ~answer_dist:2)

(* qcheck: SDC(reset=false) is implied by SDC ignoring reset; FDC and SDC
   for equal sn are mutually exclusive when the route is "perfect". *)
let sdc_fdc_relation_prop =
  let gen = QCheck.(triple (int_bound 20) (int_bound 20) (int_bound 20)) in
  QCheck.Test.make ~name:"fdc violation implies sdc distance may fail" ~count:500 gen
    (fun (d, f, req_fd) ->
      let f = Stdlib.min f d in
      (* fd <= dist invariant *)
      let own = info (sn 0 0) d f in
      let req_sn = Some (sn 0 0) in
      let sdc_ok =
        Conditions.sdc ~own ~active:true ~req_sn ~answer_dist:req_fd ~reset:false
      in
      let ignoring =
        Conditions.sdc_ignoring_reset ~own ~active:true ~req_sn ~answer_dist:req_fd
      in
      (* Without a reset bit the two coincide. *)
      sdc_ok = ignoring)

(* ---- Route_table (Procedure 3) ------------------------------------------ *)

let table () =
  let engine = Engine.create () in
  (engine, Route_table.create ~engine ())

let lifetime = Time.sec 100.

let rt_install_and_invariants () =
  let _, t = table () in
  (match Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:3
           ~via:(n 1) ~lifetime () with
  | `Installed -> ()
  | _ -> Alcotest.fail "fresh install");
  match Route_table.find t (n 9) with
  | None -> Alcotest.fail "entry exists"
  | Some e ->
      checki "dist = adv+1" 4 e.dist;
      checki "fd = dist on first install" 4 e.fd;
      checkb "successor" true (e.next_hop = Some (n 1))

let rt_fd_ratchets_down () =
  let _, t = table () in
  ignore (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:5 ~via:(n 1) ~lifetime ());
  (* Shorter same-number advert accepted; fd follows down. *)
  (match Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:2 ~via:(n 2) ~lifetime () with
  | `Installed -> ()
  | _ -> Alcotest.fail "shorter accepted");
  let e = Option.get (Route_table.find t (n 9)) in
  checki "dist" 3 e.dist;
  checki "fd ratcheted" 3 e.fd;
  (* Longer same-number advert from a third node: rejected (NDC). *)
  (match Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:4 ~via:(n 3) ~lifetime () with
  | `Rejected -> ()
  | _ -> Alcotest.fail "longer rejected");
  checki "fd unchanged" 3 e.fd

let rt_seqnum_resets_fd () =
  let _, t = table () in
  ignore (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:1 ~via:(n 1) ~lifetime ());
  (* Newer number with longer distance: accepted, fd resets upward. *)
  (match Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 1) ~adv_dist:7 ~via:(n 2) ~lifetime () with
  | `Installed -> ()
  | _ -> Alcotest.fail "newer sn accepted");
  let e = Option.get (Route_table.find t (n 9)) in
  checki "dist" 8 e.dist;
  checki "fd reset to new dist" 8 e.fd;
  checkb "new successor" true (e.next_hop = Some (n 2))

let rt_stable_path_rule () =
  let _, t = table () in
  ignore (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:4 ~via:(n 1) ~lifetime ());
  (* Equal-length NDC-acceptable alternative (adv_dist < fd? 4 < 5 no...).
     Use: current dist 5 fd 5; competitor advert dist 4 => new dist 5, not
     shorter => stable-path keeps successor 1. *)
  (match Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:4 ~via:(n 2) ~lifetime () with
  | `Rejected -> ()
  | _ -> Alcotest.fail "same-length switch refused");
  let e = Option.get (Route_table.find t (n 9)) in
  checkb "kept successor" true (e.next_hop = Some (n 1))

let rt_invalidate_keeps_invariants () =
  let _, t = table () in
  ignore (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 3) ~adv_dist:2 ~via:(n 1) ~lifetime ());
  Route_table.invalidate t (n 9);
  checkb "no successor" true (Route_table.successor t (n 9) = None);
  let e = Option.get (Route_table.find t (n 9)) in
  checkb "sn kept" true (Seqnum.equal e.sn (sn 0 3));
  checki "fd kept" 3 e.fd;
  (* A same-number advert no better than fd is still rejected after
     invalidation — the invariant persists across failures. *)
  match Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 3) ~adv_dist:3 ~via:(n 2) ~lifetime () with
  | `Rejected -> ()
  | _ -> Alcotest.fail "post-invalidation feasibility still enforced"

let rt_invalidate_via () =
  let _, t = table () in
  ignore (Route_table.apply_advert t ~dst:(n 8) ~adv_sn:(sn 0 0) ~adv_dist:1 ~via:(n 1) ~lifetime ());
  ignore (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:2 ~via:(n 1) ~lifetime ());
  ignore (Route_table.apply_advert t ~dst:(n 7) ~adv_sn:(sn 0 0) ~adv_dist:2 ~via:(n 2) ~lifetime ());
  let dead, promoted = Route_table.invalidate_via t (n 1) in
  checki "two routes died" 2 (List.length dead);
  checki "nothing promoted without multipath" 0 (List.length promoted);
  checkb "7 survived" true (Route_table.successor t (n 7) <> None)

let rt_expiry () =
  let engine, t = table () in
  ignore (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 0) ~adv_dist:1 ~via:(n 1)
            ~lifetime:(Time.sec 3.) ());
  ignore
    (Engine.at engine (Time.sec 2.) (fun () ->
         checkb "active at 2s" true (Route_table.active t (n 9) <> None);
         (* Refresh pushes expiry out. *)
         Route_table.refresh t (Option.get (Route_table.find t (n 9)))
           ~lifetime:(Time.sec 3.)));
  ignore
    (Engine.at engine (Time.sec 4.) (fun () ->
         checkb "still active after refresh" true (Route_table.active t (n 9) <> None)));
  ignore
    (Engine.at engine (Time.sec 10.) (fun () ->
         checkb "expired eventually" true (Route_table.active t (n 9) = None);
         checkb "successor hides expired" true (Route_table.successor t (n 9) = None)));
  Engine.run engine

(* fd is non-increasing for a fixed sequence number under arbitrary
   NDC-accepted advertisement streams (the paper's key invariant). *)
let rt_fd_monotone_prop =
  QCheck.Test.make ~name:"fd non-increasing within a seqnum" ~count:300
    QCheck.(list (pair (int_bound 3) (int_bound 15)))
    (fun adverts ->
      let _, t = table () in
      let ok = ref true in
      let last_fd = ref max_int and last_sn = ref (-1) in
      List.iter
        (fun (counter, dist) ->
          ignore
            (Route_table.apply_advert t ~dst:(n 9) ~adv_sn:(sn 0 counter)
               ~adv_dist:dist ~via:(n (1 + (dist mod 3))) ~lifetime ());
          match Route_table.find t (n 9) with
          | None -> ()
          | Some e ->
              if e.sn.Seqnum.counter = !last_sn && e.fd > !last_fd then ok := false;
              if e.fd > e.dist then ok := false;
              last_fd := e.fd;
              last_sn := e.sn.Seqnum.counter)
        adverts;
      !ok)

(* ---- Protocol behaviour over the test network ---------------------------- *)

let make_net ?(config = Config.default) k =
  let engine = Engine.create ~seed:3 () in
  let net =
    Experiment.Testnet.create ~engine ~factory:(Protocol.factory ~config ()) ~n:k
      ()
  in
  (engine, net)

let make_net_debug ?(config = Config.default) k =
  let engine = Engine.create ~seed:3 () in
  let debugs = Array.make k None in
  let factories =
    Array.init k (fun i ctx ->
        let agent, dbg = Protocol.factory_with_debug ~config () ctx in
        debugs.(i) <- Some dbg;
        agent)
  in
  let net = Experiment.Testnet.create_custom ~engine ~factories () in
  (engine, net, fun i -> Option.get debugs.(i))

module TN = Experiment.Testnet

let discovery_on_chain () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered across 4 hops" 1 (TN.delivered net);
  checkb "hop metric counted the path" true
    (abs_float (Experiment.Metrics.mean_hops (TN.metrics net) -. 4.) < 1e-9)

let no_route_to_partitioned () =
  let _, net = make_net 4 in
  TN.connect net 0 1;
  (* 2,3 unreachable *)
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 60.);
  checki "nothing delivered" 0 (TN.delivered net);
  (* The buffered packet must have been reported dropped. *)
  let drops = Experiment.Metrics.drops_by_reason (TN.metrics net) in
  checkb "discovery failed drop" true
    (List.mem_assoc "discovery-failed" drops)

let repair_after_failure () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.connect_chain net [ 0; 3; 2 ];
  (* two disjoint paths 0-1-2 / 0-3-2 *)
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  checki "first delivery" 1 (TN.delivered net);
  (* Break whichever path was used; the protocol must fail over. *)
  TN.disconnect net 0 1;
  TN.disconnect net 1 2;
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 5.);
  checki "second delivery after repair" 2 (TN.delivered net)

let intermediate_reply () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  (* Prime node 1..4 with routes to 4 by a first discovery from 0. *)
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 3.);
  let rreps_before = Experiment.Metrics.event_count (TN.metrics net) "rrep_init" in
  checkb "someone replied" true (rreps_before >= 1);
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net)

let seqno_stays_low_without_resets () =
  let _, net, dbg = make_net_debug 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  for _ = 1 to 3 do
    TN.origin net ~src:0 ~dst:4;
    TN.run net ~for_:(Time.sec 2.)
  done;
  checki "all delivered" 3 (TN.delivered net);
  (* No link ever failed, so the destination never needed to reset. *)
  checki "destination seqno untouched" 0
    (Seqnum.increments ((dbg 4).Protocol.own_sn ()))

let t_bit_reset_increments_destination () =
  (* Engineer the Figure-1 situation minimally: drive the origin's fd
     down to 2 via a shortcut, then break the shortcut — the re-flood
     with fd 2 cannot be answered by anyone (node 1's fd violates FDC and
     sets the T bit; node 2's distance fails the answering bound), so the
     request must reset through the destination. *)
  let _, net, dbg = make_net_debug 4 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  (* Discover once: 0 gets dist 3, fd 3. *)
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 3.);
  checki "first delivered" 1 (TN.delivered net);
  let before = Seqnum.increments ((dbg 3).Protocol.own_sn ()) in
  (* Shortcut 0-2 and kill 0-1 so the rediscovery adopts it: fd drops to
     min(3, 2) = 2. *)
  TN.connect net 0 2;
  TN.disconnect net 0 1;
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 3.);
  let e0 = Option.get (Route_table.find (dbg 0).Protocol.table (n 3)) in
  checki "fd shrank to 2" 2 e0.fd;
  (* Restore 0-1, break the shortcut: the re-flood carries fd 2 and needs
     the T-bit reset through the destination. *)
  TN.connect net 0 1;
  TN.disconnect net 0 2;
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 6.);
  let after = Seqnum.increments ((dbg 3).Protocol.own_sn ()) in
  checkb "delivered all three" true (TN.delivered net = 3);
  checkb "destination incremented for the reset" true (after > before)

let rerr_cascades () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net);
  (* Break 3-4; send again: node 3 detects on forward, RERRs cascade and
     the source rediscovers (and fails: 4 unreachable now). *)
  TN.disconnect net 3 4;
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 60.);
  checki "no second delivery" 1 (TN.delivered net);
  let m = TN.metrics net in
  checkb "rerr was sent" true
    (Experiment.Metrics.event_count m "rreq_init" >= 2)

let multiple_rreps_allows_stronger () =
  (* With the optimization on, a later stronger RREP for the same
     computation is relayed, improving the origin's route. *)
  let _, net = make_net 6 in
  (* Diamond: 0-1-2-5 (long) and 2-3... build: 0 connects 1; 1 connects 2
     and 4; 2->5 via 3: paths 0-1-2-3-5 and 0-1-4-5. *)
  TN.connect_chain net [ 0; 1; 2; 3; 5 ];
  TN.connect_chain net [ 1; 4; 5 ];
  TN.origin net ~src:0 ~dst:5;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net);
  (* 0's route should settle on the short branch eventually. *)
  let succ = (TN.agent net 0).Routing.Agent.successor (n 5) in
  checkb "has successor" true (succ <> None)

let request_as_error_invalidates () =
  (* A asks its own next hop B for D: B hearing the request treats it as
     evidence A lost the route... here we check the reverse direction:
     node 1 uses 2 as next hop toward 3; when 2 (route lost) floods a
     RREQ for 3 with an answering bound exceeding 1's position, node 1
     must invalidate its route through 2 rather than answer. *)
  let config = { Config.default with opt_request_as_error = true } in
  let _, net, dbg = make_net_debug ~config 4 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.origin net ~src:1 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  checki "primed" 1 (TN.delivered net);
  checkb "1 routes via 2" true
    ((TN.agent net 1).Routing.Agent.successor (n 3) = Some (n 2));
  (* Now 2 loses its route to 3 (break 2-3) and rediscovers: its RREQ for
     3 reaches 1. *)
  TN.disconnect net 2 3;
  TN.origin net ~src:2 ~dst:3;
  TN.run net ~for_:(Time.ms 300.);
  let e = Route_table.find (dbg 1).Protocol.table (n 3) in
  checkb "1's route via 2 invalidated" true
    (match e with Some e -> e.next_hop <> Some (n 2) | None -> true)

let reduced_distance_lowers_bound () =
  (* Unit-level: the reduced answering distance is floor(0.8 fd), >= 1. *)
  let config = Config.default in
  checkb "factor is 0.8" true (config.reduced_distance_factor = 0.8);
  (* Behavioural check through a chain: with reduction on, after a break
     the immediate upstream node (dist = fd) cannot answer, so discovery
     reaches deeper. Covered by t_bit tests; here assert config default. *)
  checkb "enabled by default" true config.opt_reduced_distance

let buffered_packets_flushed_in_order () =
  let _, net = make_net 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  (* Three packets before any route exists: all must arrive. *)
  TN.origin net ~src:0 ~dst:2;
  TN.origin net ~src:0 ~dst:2;
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 3.);
  checki "all three delivered" 3 (TN.delivered net)

let data_ttl_guards () =
  (* Degenerate single-link loop cannot happen in LDR, but the TTL guard
     must exist: forwarding decrements and eventually drops. *)
  let config = { Config.default with data_ttl = 2 } in
  let _, net = make_net ~config 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 10.);
  checki "too far for ttl 2" 0 (TN.delivered net);
  let drops = Experiment.Metrics.drops_by_reason (TN.metrics net) in
  checkb "ttl-expired recorded" true (List.mem_assoc "ttl-expired" drops)

(* The flagship property: random topologies, random churn, random traffic
   — after every event the successor graph is loop-free. *)
let loop_freedom_prop =
  QCheck.Test.make ~name:"LDR loop-free under random churn" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let engine = Engine.create ~seed () in
      let k = 8 in
      let net =
        Experiment.Testnet.create ~engine ~factory:(Protocol.factory ()) ~n:k
          ()
      in
      let rng = Rng.create (seed * 7) in
      (* Random initial topology, reasonably dense. *)
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          if Rng.coin rng 0.4 then TN.connect net a b
        done
      done;
      let ok = ref true in
      for _ = 1 to 60 do
        (* Random event: traffic, link up, or link down. *)
        (match Rng.int rng 4 with
        | 0 | 1 ->
            let s = Rng.int rng k in
            let d = (s + 1 + Rng.int rng (k - 1)) mod k in
            TN.origin net ~src:s ~dst:d
        | 2 ->
            let a = Rng.int rng k and b = Rng.int rng k in
            if a <> b then TN.connect net a b
        | _ ->
            let a = Rng.int rng k and b = Rng.int rng k in
            TN.disconnect net a b);
        TN.run net ~for_:(Time.ms (float_of_int (10 + Rng.int rng 500)));
        TN.audit_loops net;
        if Experiment.Metrics.loop_violations (TN.metrics net) > 0 then ok := false
      done;
      !ok)

(* Theorem 2 (ordering criteria), executed: along every successor edge
   A -> B for destination D it always holds that sn_B > sn_A, or
   sn_B = sn_A and fd_B < fd_A.  Strictly stronger than acyclicity. *)
let ordering_criteria_prop =
  QCheck.Test.make ~name:"Theorem 2: (sn, fd) strictly ordered along paths"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let engine = Engine.create ~seed () in
      let k = 8 in
      let debugs = Array.make k None in
      let factories =
        Array.init k (fun i ctx ->
            let agent, dbg = Protocol.factory_with_debug () ctx in
            debugs.(i) <- Some dbg;
            agent)
      in
      let net = Experiment.Testnet.create_custom ~engine ~factories () in
      let dbg i = Option.get debugs.(i) in
      let rng = Rng.create (seed + 99) in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          if Rng.coin rng 0.4 then TN.connect net a b
        done
      done;
      let ordered () =
        let ok = ref true in
        for a = 0 to k - 1 do
          for d = 0 to k - 1 do
            if a <> d then begin
              let dst = Node_id.of_int d in
              match Route_table.active (dbg a).Protocol.table dst with
              | None -> ()
              | Some ea -> (
                  match ea.Route_table.next_hop with
                  | None -> ()
                  | Some b when Node_id.equal b dst ->
                      (* The destination's own invariants are (own_sn, 0):
                         require own_sn >= sn_A (fd 0 < fd_A always). *)
                      if
                        not
                          (Seqnum.(
                             (dbg (Node_id.to_int b)).Protocol.own_sn ()
                             >= ea.Route_table.sn))
                      then ok := false
                  | Some b -> (
                      match
                        Route_table.find (dbg (Node_id.to_int b)).Protocol.table
                          dst
                      with
                      | None -> ok := false
                      | Some eb ->
                          let sn_gt = Seqnum.(eb.Route_table.sn > ea.Route_table.sn) in
                          let sn_eq =
                            Seqnum.equal eb.Route_table.sn ea.Route_table.sn
                          in
                          if
                            not
                              (sn_gt
                              || (sn_eq && eb.Route_table.fd < ea.Route_table.fd))
                          then ok := false))
            end
          done
        done;
        !ok
      in
      let all_ok = ref true in
      for _ = 1 to 50 do
        (match Rng.int rng 4 with
        | 0 | 1 ->
            let s = Rng.int rng k in
            let d = (s + 1 + Rng.int rng (k - 1)) mod k in
            TN.origin net ~src:s ~dst:d
        | 2 ->
            let a = Rng.int rng k and b = Rng.int rng k in
            if a <> b then TN.connect net a b
        | _ ->
            let a = Rng.int rng k and b = Rng.int rng k in
            TN.disconnect net a b);
        TN.run net ~for_:(Time.ms (float_of_int (10 + Rng.int rng 400)));
        if not (ordered ()) then all_ok := false
      done;
      !all_ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ldr"
    [
      ( "conditions",
        [
          Alcotest.test_case "NDC" `Quick ndc_cases;
          Alcotest.test_case "FDC" `Quick fdc_cases;
          Alcotest.test_case "SDC" `Quick sdc_cases;
          qt sdc_fdc_relation_prop;
        ] );
      ( "route_table",
        [
          Alcotest.test_case "install" `Quick rt_install_and_invariants;
          Alcotest.test_case "fd ratchets down" `Quick rt_fd_ratchets_down;
          Alcotest.test_case "seqnum resets fd" `Quick rt_seqnum_resets_fd;
          Alcotest.test_case "stable path rule" `Quick rt_stable_path_rule;
          Alcotest.test_case "invalidation keeps invariants" `Quick
            rt_invalidate_keeps_invariants;
          Alcotest.test_case "invalidate via neighbor" `Quick rt_invalidate_via;
          Alcotest.test_case "expiry and refresh" `Quick rt_expiry;
          qt rt_fd_monotone_prop;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "discovery on chain" `Quick discovery_on_chain;
          Alcotest.test_case "partitioned destination" `Quick no_route_to_partitioned;
          Alcotest.test_case "repair after failure" `Quick repair_after_failure;
          Alcotest.test_case "intermediate reply" `Quick intermediate_reply;
          Alcotest.test_case "seqno stays low" `Quick seqno_stays_low_without_resets;
          Alcotest.test_case "T-bit reset increments destination" `Quick
            t_bit_reset_increments_destination;
          Alcotest.test_case "rerr cascades" `Quick rerr_cascades;
          Alcotest.test_case "multiple rreps" `Quick multiple_rreps_allows_stronger;
          Alcotest.test_case "request as error" `Quick request_as_error_invalidates;
          Alcotest.test_case "reduced distance config" `Quick reduced_distance_lowers_bound;
          Alcotest.test_case "buffer flush" `Quick buffered_packets_flushed_in_order;
          Alcotest.test_case "data ttl" `Quick data_ttl_guards;
          qt loop_freedom_prop;
          qt ordering_criteria_prop;
        ] );
    ]
