(* Tests for the AODV baseline. *)

open Sim
open Packets

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let n = Node_id.of_int
let _ = n

module TN = Experiment.Testnet

let make_net ?(config = Aodv.default_config) ?(seed = 3) k =
  let engine = Engine.create ~seed () in
  let net = TN.create ~engine ~factory:(Aodv.factory ~config ()) ~n:k () in
  (engine, net)

let discovery_on_chain () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered" 1 (TN.delivered net)

let partitioned_fails () =
  let _, net = make_net 4 in
  TN.connect net 0 1;
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 60.);
  checki "nothing delivered" 0 (TN.delivered net);
  checkb "drop recorded" true
    (List.mem_assoc "discovery-failed"
       (Experiment.Metrics.drops_by_reason (TN.metrics net)))

let repair_after_failure () =
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.connect_chain net [ 0; 3; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  checki "first" 1 (TN.delivered net);
  TN.disconnect net 0 1;
  TN.disconnect net 1 2;
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 5.);
  checki "repaired" 2 (TN.delivered net)

let own_seqno_grows_with_discoveries () =
  (* The AODV pathology the paper plots in Fig. 7: every discovery bumps
     the originator's own number; breaks bump stored numbers. *)
  let _, net = make_net 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  let before = (TN.agent net 0).Routing.Agent.own_seqno () in
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  let after = (TN.agent net 0).Routing.Agent.own_seqno () in
  checkb "own sn bumped by discovery" true (after > before)

let stored_seqno_bumped_on_break () =
  let _, net = make_net 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  checki "primed" 1 (TN.delivered net);
  (* Break 1-2; a forward attempt makes node 1 detect the break and
     increment its stored number for 2; its RERR reaches 0; the next
     RREQ demands a number only the destination can satisfy. *)
  TN.disconnect net 1 2;
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 10.);
  (* Reconnect: destination replies with its (bumped) number. *)
  TN.connect net 1 2;
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 10.);
  checkb "delivery resumed" true (TN.delivered net >= 2);
  let dest_sn = (TN.agent net 2).Routing.Agent.own_seqno () in
  checkb "destination number grew past initial" true (dest_sn >= 1.)

let reverse_route_built_by_rreq () =
  (* After 0 discovers 4, intermediate node 2 has a route back to 0
     (reverse path), shown by immediate reverse traffic needing no new
     discovery. *)
  let _, net = make_net 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 2.);
  let rreqs = Experiment.Metrics.event_count (TN.metrics net) "rreq_init" in
  TN.origin net ~src:4 ~dst:0;
  TN.run net ~for_:(Time.sec 2.);
  checki "both delivered" 2 (TN.delivered net);
  let rreqs' = Experiment.Metrics.event_count (TN.metrics net) "rreq_init" in
  checki "reverse needed no new discovery" rreqs rreqs'

let expanding_ring_eventually_reaches () =
  (* Destination 6 hops away: the first small-TTL attempts fail but the
     search escalates and succeeds. *)
  let _, net = make_net 8 in
  TN.connect_chain net [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  TN.origin net ~src:0 ~dst:7;
  TN.run net ~for_:(Time.sec 10.);
  checki "delivered across 7 hops" 1 (TN.delivered net);
  checkb "took multiple attempts" true
    (Experiment.Metrics.event_count (TN.metrics net) "rreq_init" >= 2)

let intermediate_node_replies () =
  let _, net = make_net ~seed:4 5 in
  TN.connect_chain net [ 0; 1; 2; 3 ];
  TN.connect net 4 1;
  (* Prime 1 with a fresh route to 3. *)
  TN.origin net ~src:0 ~dst:3;
  TN.run net ~for_:(Time.sec 2.);
  let inits_before = Experiment.Metrics.event_count (TN.metrics net) "rrep_init" in
  (* 4 asks for 3; its TTL-1 ring reaches only node 1, which has a valid
     fresh route and answers without involving 3. *)
  TN.origin net ~src:4 ~dst:3;
  TN.run net ~for_:(Time.sec 3.);
  checki "delivered both" 2 (TN.delivered net);
  checkb "someone replied again" true
    (Experiment.Metrics.event_count (TN.metrics net) "rrep_init" > inits_before)

let data_ttl_guard () =
  let config = { Aodv.default_config with data_ttl = 2 } in
  let _, net = make_net ~config 5 in
  TN.connect_chain net [ 0; 1; 2; 3; 4 ];
  TN.origin net ~src:0 ~dst:4;
  TN.run net ~for_:(Time.sec 10.);
  checki "ttl too small" 0 (TN.delivered net)

let hello_detects_silent_break () =
  let config =
    {
      Aodv.default_config with
      use_hello = true;
      active_route_timeout = Time.sec 60.;
      my_route_timeout = Time.sec 60.;
    }
  in
  let _, net = make_net ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  checki "primed" 1 (TN.delivered net);
  checkb "1 routes to 2" true
    ((TN.agent net 1).Routing.Agent.successor (n 2) = Some (n 2));
  (* Break 1-2 with no traffic flowing: only hellos can notice. *)
  TN.disconnect net 1 2;
  TN.run net ~for_:(Time.sec 6.);
  checkb "hello timeout invalidated the route" true
    ((TN.agent net 1).Routing.Agent.successor (n 2) = None)

let no_hello_no_detection () =
  (* Control experiment: with hellos off and a long lifetime, the silent
     break goes unnoticed. *)
  let config =
    {
      Aodv.default_config with
      use_hello = false;
      active_route_timeout = Time.sec 60.;
      my_route_timeout = Time.sec 60.;
    }
  in
  let _, net = make_net ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  TN.disconnect net 1 2;
  TN.run net ~for_:(Time.sec 6.);
  checkb "stale route survives silently" true
    ((TN.agent net 1).Routing.Agent.successor (n 2) = Some (n 2))

let hello_refreshes_neighbor_route () =
  let config =
    { Aodv.default_config with use_hello = true;
      active_route_timeout = Time.sec 3.; my_route_timeout = Time.sec 3. }
  in
  let _, net = make_net ~config 3 in
  TN.connect_chain net [ 0; 1; 2 ];
  TN.origin net ~src:0 ~dst:2;
  TN.run net ~for_:(Time.sec 2.);
  (* Idle well past the route timeout: the 1-hop neighbor routes stay
     alive through hellos. *)
  TN.run net ~for_:(Time.sec 10.);
  checkb "neighbor route kept fresh" true
    ((TN.agent net 1).Routing.Agent.successor (n 2) <> None)

let loop_freedom_prop =
  QCheck.Test.make ~name:"AODV loop-free under random churn" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let engine = Engine.create ~seed () in
      let k = 7 in
      let net = TN.create ~engine ~factory:(Aodv.factory ()) ~n:k () in
      let rng = Rng.create (seed + 13) in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          if Rng.coin rng 0.4 then TN.connect net a b
        done
      done;
      let ok = ref true in
      for _ = 1 to 50 do
        (match Rng.int rng 4 with
        | 0 | 1 ->
            let s = Rng.int rng k in
            let d = (s + 1 + Rng.int rng (k - 1)) mod k in
            TN.origin net ~src:s ~dst:d
        | 2 ->
            let a = Rng.int rng k and b = Rng.int rng k in
            if a <> b then TN.connect net a b
        | _ ->
            let a = Rng.int rng k and b = Rng.int rng k in
            TN.disconnect net a b);
        TN.run net ~for_:(Time.ms (float_of_int (10 + Rng.int rng 500)));
        TN.audit_loops net;
        if Experiment.Metrics.loop_violations (TN.metrics net) > 0 then
          ok := false
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "aodv"
    [
      ( "protocol",
        [
          Alcotest.test_case "discovery on chain" `Quick discovery_on_chain;
          Alcotest.test_case "partitioned fails" `Quick partitioned_fails;
          Alcotest.test_case "repair after failure" `Quick repair_after_failure;
          Alcotest.test_case "own seqno grows" `Quick own_seqno_grows_with_discoveries;
          Alcotest.test_case "stored seqno bump on break" `Quick
            stored_seqno_bumped_on_break;
          Alcotest.test_case "reverse route from rreq" `Quick
            reverse_route_built_by_rreq;
          Alcotest.test_case "expanding ring" `Quick expanding_ring_eventually_reaches;
          Alcotest.test_case "intermediate reply" `Quick intermediate_node_replies;
          Alcotest.test_case "data ttl" `Quick data_ttl_guard;
          Alcotest.test_case "hello detects silent break" `Quick
            hello_detects_silent_break;
          Alcotest.test_case "no hello, no detection" `Quick no_hello_no_detection;
          Alcotest.test_case "hello refreshes neighbors" `Quick
            hello_refreshes_neighbor_route;
          qt loop_freedom_prop;
        ] );
    ]
