open Sim
open Packets

let stale_seqno ?(stamp = 1_000_000) (sim : Runner.sim) ~at =
  let injected = ref false in
  ignore
    (Engine.at sim.Runner.engine at (fun () ->
         let agents = sim.Runner.agents in
         let n = Array.length agents in
         try
           for i = 0 to n - 1 do
             for d = 0 to n - 1 do
               if d <> i then
                 match
                   agents.(i).Routing.Agent.successor (Node_id.of_int d)
                 with
                 | Some s ->
                     (* A reply the real destination never issued: its
                        number vaults past anything in the network, so
                        NDC accepts it and the route installs — but the
                        successor's stored invariants cannot dominate
                        the forged ones, which is exactly what the
                        monitor checks. *)
                     let forged =
                       Ldr_msg.Rrep
                         {
                           Ldr_msg.dst = Node_id.of_int d;
                           dst_sn = { Seqnum.stamp; counter = 0 };
                           origin = Node_id.of_int i;
                           rreq_id = 987_654;
                           dist = 1;
                           lifetime = Time.sec 10.;
                           rrep_no_reverse = false;
                         }
                     in
                     agents.(i).Routing.Agent.recv (Payload.Ldr forged)
                       ~from:s;
                     injected := true;
                     raise Exit
                 | None -> ()
             done
           done
         with Exit -> ()));
  injected
