lib/core/conditions.mli: Packets Seqnum
