open Sim
open Packets

type t = {
  engine : Engine.t;
  n : int;
  adj : bool array array;
  agents : Routing.Agent.t array;
  net_metrics : Metrics.t;
  (* Under a [`Controlled] engine, sends become floating events the
     mcheck explorer orders freely instead of fixed-delay timers. *)
  ctl : bool;
  mutable flow_counter : int;
}

let hop_delay = Time.ms 1.
(* Broadcast copies arrive staggered so that reply order is a function of
   node ids, which keeps walkthrough scripts deterministic. *)
let stagger = Time.us 100.

let link_failure_delay = Time.ms 10.

let agent t i = t.agents.(i)
let metrics t = t.net_metrics

let connected t a b = t.adj.(a).(b)

let connect t a b =
  if a <> b then begin
    t.adj.(a).(b) <- true;
    t.adj.(b).(a) <- true
  end

let disconnect t a b =
  t.adj.(a).(b) <- false;
  t.adj.(b).(a) <- false

let connect_chain t ids =
  let rec go = function
    | a :: (b :: _ as rest) ->
        connect t a b;
        go rest
    | [ _ ] | [] -> ()
  in
  go ids

let deliver t ~to_ payload ~from =
  t.agents.(to_).Routing.Agent.recv payload ~from:(Node_id.of_int from)

(* The trailing hash makes distinct in-flight payloads of the same
   class distinguishable, which mcheck's state digest relies on
   (pending events are part of the state).  [Hashtbl.hash] is
   deterministic for a given structure, so labels are stable across
   runs and replays. *)
let msg_label payload i j =
  Printf.sprintf "%s %d->%d #%04x"
    (Payload.class_name payload)
    i j
    (Hashtbl.hash_param 500 5000 payload land 0xffff)

(* Controlled-mode transport: one floating event per in-flight message
   (tag = receiving node), so the explorer can hold any copy past
   timers and other traffic.  Link state is still re-checked at
   delivery, and MAC-style link-failure feedback is itself a floating
   event at the sender. *)
let send_ctl t i ~dst payload =
  let float_to j =
    ignore
      (Engine.schedule_floating t.engine ~tag:j ~label:(msg_label payload i j)
         (fun () -> if t.adj.(i).(j) then deliver t ~to_:j payload ~from:i))
  in
  match dst with
  | Net.Frame.Broadcast ->
      for j = 0 to t.n - 1 do
        if t.adj.(i).(j) then float_to j
      done
  | Net.Frame.Unicast next ->
      let j = Node_id.to_int next in
      ignore
        (Engine.schedule_floating t.engine ~tag:j
           ~label:(msg_label payload i j) (fun () ->
             if t.adj.(i).(j) then deliver t ~to_:j payload ~from:i
             else
               ignore
                 (Engine.schedule_floating t.engine ~tag:i
                    ~label:(Printf.sprintf "LINKFAIL %d->%d" i j) (fun () ->
                      t.agents.(i).Routing.Agent.link_failure payload
                        ~next_hop:next))))

let send_timed t i ~dst payload =
  match dst with
  | Net.Frame.Broadcast ->
      let k = ref 0 in
      for j = 0 to t.n - 1 do
        if t.adj.(i).(j) then begin
          let delay = Time.add hop_delay (Time.mul stagger !k) in
          incr k;
          ignore
            (Engine.after t.engine delay (fun () ->
                 (* Link state is re-checked at delivery time. *)
                 if t.adj.(i).(j) then deliver t ~to_:j payload ~from:i))
        end
      done
  | Net.Frame.Unicast next ->
      let j = Node_id.to_int next in
      ignore
        (Engine.after t.engine hop_delay (fun () ->
             if t.adj.(i).(j) then deliver t ~to_:j payload ~from:i
             else
               ignore
                 (Engine.after t.engine link_failure_delay (fun () ->
                      t.agents.(i).Routing.Agent.link_failure payload
                        ~next_hop:next))))

let make_ctx t ?obs i =
  let id = Node_id.of_int i in
  {
    Routing.Agent.id;
    engine = t.engine;
    rng = Rng.create (1000 + i);
    send =
      (fun ~dst payload ->
        if t.ctl then send_ctl t i ~dst payload
        else send_timed t i ~dst payload);
    deliver =
      (fun msg ->
        Metrics.data_delivered t.net_metrics ~now:(Engine.now t.engine) msg);
    drop_data =
      (fun msg ~reason -> Metrics.data_dropped t.net_metrics msg ~reason);
    event = (fun ?dst:_ name -> Metrics.protocol_event t.net_metrics name);
    table_changed = ignore;
    obs = (match obs with Some b -> b | None -> Obs.Bus.create ());
  }

let null_agent =
  {
    Routing.Agent.origin_data = ignore;
    recv = (fun _ ~from:_ -> ());
    overheard = (fun _ ~from:_ ~dst:_ -> ());
    link_failure = (fun _ ~next_hop:_ -> ());
    start = ignore;
    successor = (fun _ -> None);
    own_seqno = (fun () -> 0.);
    invariants = (fun _ -> None);
    route_stats = (fun () -> (0, 0, 0));
    reset = (fun ~crash:_ -> ());
  }

let create_custom ?obs ~engine ~factories () =
  let n = Array.length factories in
  let t =
    {
      engine;
      n;
      adj = Array.make_matrix n n false;
      agents = Array.make n null_agent;
      net_metrics = Metrics.create ();
      ctl = Engine.controlled engine;
      flow_counter = 0;
    }
  in
  for i = 0 to n - 1 do
    t.agents.(i) <- factories.(i) (make_ctx t ?obs i)
  done;
  Array.iter (fun (a : Routing.Agent.t) -> a.start ()) t.agents;
  t

let create ?obs ~engine ~factory ~n () =
  create_custom ?obs ~engine ~factories:(Array.make n factory) ()

let origin t ~src ~dst =
  t.flow_counter <- t.flow_counter + 1;
  let msg =
    Data_msg.fresh ~flow_id:t.flow_counter ~seq:0 ~src:(Node_id.of_int src)
      ~dst:(Node_id.of_int dst) ~payload_bytes:512
      ~origin_time:(Engine.now t.engine)
  in
  Metrics.data_originated t.net_metrics msg;
  t.agents.(src).Routing.Agent.origin_data msg

let delivered t = Metrics.delivered t.net_metrics

let run t ~for_ =
  Engine.run ~until:(Time.add (Engine.now t.engine) for_) t.engine

(* First successor-graph cycle, as (destination, cycle nodes): walk each
   per-destination successor chain; re-visiting a node closes a cycle.
   The mcheck explorer calls this after every fired event — this is the
   AODV violation detector (AODV keeps no LDR invariants for the
   monitor to check). *)
let find_cycle t =
  let found = ref None in
  let d = ref 0 in
  while !found = None && !d < t.n do
    let dst = Node_id.of_int !d in
    let s = ref 0 in
    while !found = None && !s < t.n do
      if !s <> !d then begin
        let order = Array.make t.n (-1) in
        let rec walk x k =
          if order.(x) >= 0 then begin
            (* Nodes from the first visit of [x] onward form the cycle. *)
            let cyc = ref [] in
            Array.iteri
              (fun node ord -> if ord >= order.(x) then cyc := (ord, node) :: !cyc)
              order;
            let nodes =
              List.sort compare !cyc |> List.map snd
            in
            found := Some (!d, nodes)
          end
          else begin
            order.(x) <- k;
            if x <> !d then
              match t.agents.(x).Routing.Agent.successor dst with
              | Some next -> walk (Node_id.to_int next) (k + 1)
              | None -> ()
          end
        in
        walk !s 0
      end;
      incr s
    done;
    incr d
  done;
  !found

let audit_loops t =
  for d = 0 to t.n - 1 do
    let dst = Node_id.of_int d in
    for s = 0 to t.n - 1 do
      if s <> d then begin
        let visited = Array.make t.n false in
        let rec walk x =
          if visited.(x) then Metrics.loop_violation t.net_metrics
          else begin
            visited.(x) <- true;
            if x <> d then
              match t.agents.(x).Routing.Agent.successor dst with
              | Some next -> walk (Node_id.to_int next)
              | None -> ()
          end
        in
        walk s
      end
    done
  done
