open Packets

type t = {
  mutable originated : int;
  mutable delivered : int;
  mutable duplicates : int;
  latency : Stats.Welford.t;
  latency_q : Stats.Quantile.t;
  hop_count : Stats.Welford.t;
  seen : (int, unit) Hashtbl.t;  (* delivered uids, packed *)
  control_tx : (string, int ref) Hashtbl.t;
  control_bytes : (string, int ref) Hashtbl.t;
  mutable data_tx : int;
  mutable ack_tx : int;
  mutable data_bytes : int;
  mutable ack_bytes : int;
  events : (string, int ref) Hashtbl.t;
  drops : (string, int ref) Hashtbl.t;
  mutable loop_violations : int;
  mutable mean_dest_seqno : float;
}

let create () =
  {
    originated = 0;
    delivered = 0;
    duplicates = 0;
    latency = Stats.Welford.create ();
    latency_q = Stats.Quantile.create ~rng_seed:17 ();
    hop_count = Stats.Welford.create ();
    seen = Hashtbl.create 4096;
    control_tx = Hashtbl.create 8;
    control_bytes = Hashtbl.create 8;
    data_tx = 0;
    ack_tx = 0;
    data_bytes = 0;
    ack_bytes = 0;
    events = Hashtbl.create 8;
    drops = Hashtbl.create 8;
    loop_violations = 0;
    mean_dest_seqno = 0.;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let bump_by tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let data_originated t _msg = t.originated <- t.originated + 1

(* Pack a (flow_id, seq) uid into one immediate so the seen-set hashes
   an int instead of a boxed pair.  Flow ids and per-flow sequence
   numbers are both far below 2^31 in any feasible run. *)
let packed_uid msg =
  let flow, seq = Data_msg.uid msg in
  (flow lsl 31) lxor seq

let data_delivered t ~now msg =
  let uid = packed_uid msg in
  if Hashtbl.mem t.seen uid then t.duplicates <- t.duplicates + 1
  else begin
    Hashtbl.replace t.seen uid ();
    t.delivered <- t.delivered + 1;
    let latency_ms = Sim.Time.to_ms (Sim.Time.diff now msg.Data_msg.origin_time) in
    Stats.Welford.add t.latency latency_ms;
    Stats.Quantile.add t.latency_q latency_ms;
    Stats.Welford.add t.hop_count (float_of_int msg.Data_msg.hops)
  end

let data_dropped t _msg ~reason = bump t.drops reason

let transmitted t (f : Net.Frame.t) =
  let bytes = Net.Frame.encoded_length f in
  match f.body with
  | Net.Frame.Ack ->
      t.ack_tx <- t.ack_tx + 1;
      t.ack_bytes <- t.ack_bytes + bytes
  | Net.Frame.Payload p -> (
      match Payload.classify p with
      | `Data _ ->
          t.data_tx <- t.data_tx + 1;
          t.data_bytes <- t.data_bytes + bytes
      | `Control kind ->
          bump t.control_tx kind;
          bump_by t.control_bytes kind bytes)

let protocol_event t name = bump t.events name
let loop_violation t = t.loop_violations <- t.loop_violations + 1
let set_mean_dest_seqno t x = t.mean_dest_seqno <- x

let originated t = t.originated
let delivered t = t.delivered
let duplicates t = t.duplicates

let delivery_ratio t =
  if t.originated = 0 then 0.
  else float_of_int t.delivered /. float_of_int t.originated

let mean_latency_ms t = Stats.Welford.mean t.latency
let median_latency_ms t = Stats.Quantile.median t.latency_q
let p95_latency_ms t = Stats.Quantile.p95 t.latency_q
let mean_hops t = Stats.Welford.mean t.hop_count

let control_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.control_tx []
  |> List.sort compare

let control_transmissions t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.control_tx 0

let data_transmissions t = t.data_tx

let control_bytes_by_kind t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.control_bytes []
  |> List.sort compare

let control_bytes t =
  Hashtbl.fold (fun _ r acc -> acc + !r) t.control_bytes 0

let data_bytes t = t.data_bytes
let ack_bytes t = t.ack_bytes

let per_delivered t count =
  if t.delivered = 0 then 0. else float_of_int count /. float_of_int t.delivered

let network_load t = per_delivered t (control_transmissions t)
let byte_load t = per_delivered t (control_bytes t)

let rreq_load t =
  per_delivered t
    (match Hashtbl.find_opt t.control_tx "RREQ" with Some r -> !r | None -> 0)

let event_count t name =
  match Hashtbl.find_opt t.events name with Some r -> !r | None -> 0

let per_rreq t count =
  let rreqs = event_count t "rreq_init" in
  if rreqs = 0 then 0. else float_of_int count /. float_of_int rreqs

let rrep_init_per_rreq t = per_rreq t (event_count t "rrep_init")
let rrep_recv_per_rreq t = per_rreq t (event_count t "rrep_usable_recv")

let drops_by_reason t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.drops [] |> List.sort compare

let loop_violations t = t.loop_violations
let mean_dest_seqno t = t.mean_dest_seqno

type summary = {
  s_delivery_ratio : float;
  s_latency_ms : float;
  s_network_load : float;
  s_byte_load : float;
  s_rreq_load : float;
  s_rrep_init : float;
  s_rrep_recv : float;
  s_mean_dest_seqno : float;
}

let summary t =
  {
    s_delivery_ratio = delivery_ratio t;
    s_latency_ms = mean_latency_ms t;
    s_network_load = network_load t;
    s_byte_load = byte_load t;
    s_rreq_load = rreq_load t;
    s_rrep_init = rrep_init_per_rreq t;
    s_rrep_recv = rrep_recv_per_rreq t;
    s_mean_dest_seqno = mean_dest_seqno t;
  }
