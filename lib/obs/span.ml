(* Offline span reconstruction and rendering.  Emission is spread
   across net/routing/experiment (each layer calls [Bus.span] with a
   Stage code); this module is the single place that knows how the
   stage stream stitches back into per-packet critical paths. *)

module Stage = struct
  let originate = 0
  let buf_enter = 1
  let buf_exit = 2
  let mac_enq = 3
  let mac_deq = 4
  let mac_try = 5
  let mac_end = 6
  let mac_fail = 7
  let mac_drop = 8
  let ring = 9
  let agg = 10
  let name = Event.span_stage_name
end

type hop = {
  h_node : int;
  h_next : int;
  mutable h_enq : int;
  mutable h_deq : int;
  mutable h_first_try : int;
  mutable h_last_try : int;
  mutable h_end : int;
  mutable h_attempts : int;
  mutable h_failed : bool;
}

type path = {
  p_flow : int;
  p_seq : int;
  mutable p_src : int;
  mutable p_dst : int;
  mutable p_bytes : int;
  mutable p_originated : int;
  mutable p_delivered : int;
  mutable p_deliver_hops : int;
  mutable p_buffer_ns : int;
  mutable p_hops : hop list;
  mutable p_dropped : bool;
  mutable p_drop_reason : int;
}

type t = { paths : path list; ring_attempts : int; agg_members : int }

let new_hop ~node ~next ~enq =
  {
    h_node = node;
    h_next = next;
    h_enq = enq;
    h_deq = -1;
    h_first_try = -1;
    h_last_try = -1;
    h_end = -1;
    h_attempts = 0;
    h_failed = false;
  }

let reconstruct events =
  let paths = Hashtbl.create 256 in
  (* A node holds at most one in-flight frame per packet, so the open
     MAC hop is keyed by (flow, seq, node).  Hops from different path
     positions interleave in time (the downstream node enqueues before
     the upstream ACK closes the previous hop), which is why a single
     "current hop" cursor would mis-stitch. *)
  let open_hops = Hashtbl.create 256 in
  let buf_open = Hashtbl.create 64 in
  let ring_attempts = ref 0 in
  let agg_members = ref 0 in
  let get flow seq =
    let key = (flow, seq) in
    match Hashtbl.find_opt paths key with
    | Some p -> p
    | None ->
        let p =
          {
            p_flow = flow;
            p_seq = seq;
            p_src = -1;
            p_dst = -1;
            p_bytes = -1;
            p_originated = -1;
            p_delivered = -1;
            p_deliver_hops = -1;
            p_buffer_ns = 0;
            p_hops = [];
            p_dropped = false;
            p_drop_reason = -1;
          }
        in
        Hashtbl.add paths key p;
        p
  in
  Array.iter
    (fun (ev : Event.t) ->
      let now = (ev.time :> int) in
      match ev.kind with
      | Event.Span ->
          if ev.a = Stage.ring then incr ring_attempts
          else if ev.a = Stage.agg then incr agg_members
          else begin
            let p = get ev.b ev.c in
            let hkey = (ev.b, ev.c, ev.node) in
            if ev.a = Stage.originate then begin
              p.p_src <- ev.node;
              p.p_dst <- ev.d;
              p.p_bytes <- ev.e;
              p.p_originated <- now
            end
            else if ev.a = Stage.buf_enter then
              Hashtbl.replace buf_open (ev.b, ev.c) now
            else if ev.a = Stage.buf_exit then begin
              match Hashtbl.find_opt buf_open (ev.b, ev.c) with
              | Some entered ->
                  p.p_buffer_ns <- p.p_buffer_ns + (now - entered);
                  Hashtbl.remove buf_open (ev.b, ev.c)
              | None -> ()
            end
            else if ev.a = Stage.mac_enq then begin
              (* A still-open hop at this node means the frame was
                 re-queued (e.g. after a route repair): keep the stale
                 hop in the path and start a fresh one. *)
              Hashtbl.remove open_hops hkey;
              let h = new_hop ~node:ev.node ~next:ev.d ~enq:now in
              Hashtbl.replace open_hops hkey h;
              p.p_hops <- h :: p.p_hops
            end
            else if ev.a = Stage.mac_drop then begin
              let h = new_hop ~node:ev.node ~next:ev.d ~enq:(-1) in
              h.h_failed <- true;
              p.p_hops <- h :: p.p_hops
            end
            else begin
              match Hashtbl.find_opt open_hops hkey with
              | None -> ()
              | Some h ->
                  if ev.a = Stage.mac_deq then begin
                    if h.h_deq < 0 then h.h_deq <- now
                  end
                  else if ev.a = Stage.mac_try then begin
                    if h.h_first_try < 0 then h.h_first_try <- now;
                    h.h_last_try <- now;
                    h.h_attempts <- ev.e
                  end
                  else if ev.a = Stage.mac_end then begin
                    h.h_end <- now;
                    h.h_attempts <- ev.e;
                    Hashtbl.remove open_hops hkey
                  end
                  else if ev.a = Stage.mac_fail then begin
                    h.h_failed <- true;
                    h.h_attempts <- ev.e;
                    Hashtbl.remove open_hops hkey
                  end
            end
          end
      | Event.Deliver ->
          let p = get ev.a ev.b in
          p.p_delivered <- now;
          p.p_deliver_hops <- ev.d;
          if p.p_src < 0 then p.p_src <- ev.c
      | Event.Data_drop ->
          let p = get ev.b ev.c in
          p.p_dropped <- true;
          p.p_drop_reason <- ev.a;
          if p.p_src < 0 then p.p_src <- ev.d;
          if p.p_dst < 0 then p.p_dst <- ev.e
      | _ -> ())
    events;
  let ps = Hashtbl.fold (fun _ p acc -> p :: acc) paths [] in
  let ps =
    List.sort
      (fun a b ->
        if a.p_flow <> b.p_flow then compare a.p_flow b.p_flow
        else compare a.p_seq b.p_seq)
      ps
  in
  List.iter (fun p -> p.p_hops <- List.rev p.p_hops) ps;
  { paths = ps; ring_attempts = !ring_attempts; agg_members = !agg_members }

let is_complete p =
  p.p_originated >= 0 && p.p_delivered >= 0
  && p.p_deliver_hops >= 0
  &&
  let attempted =
    List.fold_left
      (fun n h -> if h.h_enq >= 0 && h.h_first_try >= 0 then n + 1 else n)
      0 p.p_hops
  in
  attempted >= p.p_deliver_hops

(* ---- Stage timing decomposition --------------------------------------- *)

(* Per delivered path, in ns.  queue = ifq head-of-line wait,
   access = contention/backoff between dequeue and the last attempt's
   start, air = last attempt start to ACK.  Hops whose mac_end was
   clipped by the horizon (the final hop's ACK lands after Deliver)
   contribute no air time, so the stage sum can fall slightly short of
   the total; conversely MAC retries of an eventually-acked frame keep
   the whole retry window inside access.  The decomposition is a
   breakdown aid, not an identity. *)
let stage_sums p =
  let queue = ref 0 and access = ref 0 and air = ref 0 in
  List.iter
    (fun h ->
      if h.h_enq >= 0 && h.h_deq >= 0 then begin
        queue := !queue + (h.h_deq - h.h_enq);
        if h.h_last_try >= 0 then begin
          access := !access + (h.h_last_try - h.h_deq);
          if h.h_end >= 0 then air := !air + (h.h_end - h.h_last_try)
        end
      end)
    p.p_hops;
  (p.p_buffer_ns, !queue, !access, !air)

let ms ns = float_of_int ns /. 1e6

let pct hdr q = ms (Stats.Hdr.quantile hdr q)

let report ?flow ~name events =
  let t = reconstruct events in
  let total = List.length t.paths in
  let delivered = List.filter (fun p -> p.p_delivered >= 0) t.paths in
  let n_delivered = List.length delivered in
  let n_complete = List.length (List.filter is_complete delivered) in
  let n_dropped =
    List.length (List.filter (fun p -> p.p_dropped) t.paths)
  in
  let lines = ref [] in
  let out fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  out "spans: %d paths (%d delivered, %d dropped, %d in flight)" total
    n_delivered n_dropped
    (total - n_delivered - n_dropped);
  out "delivered paths complete: %d/%d (%.1f%%)" n_complete n_delivered
    (if n_delivered = 0 then 100.
     else 100. *. float_of_int n_complete /. float_of_int n_delivered);
  out "discovery: %d ring attempts, %d aggregated rreqs" t.ring_attempts
    t.agg_members;
  if n_delivered > 0 then begin
    (* Stage breakdown over all delivered paths. *)
    let h_buffer = Stats.Hdr.create () in
    let h_queue = Stats.Hdr.create () in
    let h_access = Stats.Hdr.create () in
    let h_air = Stats.Hdr.create () in
    let h_total = Stats.Hdr.create () in
    List.iter
      (fun p ->
        let b, q, a, r = stage_sums p in
        Stats.Hdr.add h_buffer b;
        Stats.Hdr.add h_queue q;
        Stats.Hdr.add h_access a;
        Stats.Hdr.add h_air r;
        if p.p_originated >= 0 then
          Stats.Hdr.add h_total (p.p_delivered - p.p_originated))
      delivered;
    out "";
    out "stage latency over delivered paths (ms):";
    out "  %-8s %9s %9s %9s %9s" "stage" "p50" "p95" "p99" "max";
    List.iter
      (fun (label, h) ->
        out "  %-8s %9.3f %9.3f %9.3f %9.3f" label (pct h 0.5) (pct h 0.95)
          (pct h 0.99)
          (ms (Stats.Hdr.max_value h)))
      [
        ("buffer", h_buffer);
        ("queue", h_queue);
        ("access", h_access);
        ("air", h_air);
        ("total", h_total);
      ];
    (* Per-flow waterfall: average stage shares as a bar, totals from a
       per-flow histogram. *)
    let flows = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let fl =
          match Hashtbl.find_opt flows p.p_flow with
          | Some fl -> fl
          | None ->
              let fl = (Stats.Hdr.create (), ref 0, ref [ 0; 0; 0; 0 ]) in
              Hashtbl.replace flows p.p_flow fl;
              fl
        in
        let h, n, sums = fl in
        if p.p_delivered >= 0 && p.p_originated >= 0 then begin
          Stats.Hdr.add h (p.p_delivered - p.p_originated);
          incr n;
          let b, q, a, r = stage_sums p in
          match !sums with
          | [ sb; sq; sa; sr ] -> sums := [ sb + b; sq + q; sa + a; sr + r ]
          | _ -> assert false
        end)
      t.paths;
    out "";
    out "per-flow waterfall (stage shares of delivered latency):";
    let flow_ids =
      Hashtbl.fold (fun id _ acc -> id :: acc) flows [] |> List.sort compare
    in
    List.iter
      (fun id ->
        let h, n, sums = Hashtbl.find flows id in
        let pkts =
          List.length (List.filter (fun p -> p.p_flow = id) t.paths)
        in
        if !n = 0 then out "  flow %-3d %4d pkts, none delivered" id pkts
        else begin
          let b, q, a, r =
            match !sums with
            | [ sb; sq; sa; sr ] -> (sb, sq, sa, sr)
            | _ -> assert false
          in
          let covered = b + q + a + r in
          let width = 32 in
          let bar = Bytes.make width '.' in
          let pos = ref 0 in
          List.iter
            (fun (ch, v) ->
              if covered > 0 then begin
                let cells = v * width / covered in
                for _ = 1 to cells do
                  if !pos < width then begin
                    Bytes.set bar !pos ch;
                    incr pos
                  end
                done
              end)
            [ ('b', b); ('q', q); ('a', a); ('r', r) ];
          out "  flow %-3d %4d pkts %4d dlvd |%s| p50 %8.3f p95 %8.3f p99 %8.3f"
            id pkts !n (Bytes.to_string bar) (pct h 0.5) (pct h 0.95)
            (pct h 0.99)
        end)
      flow_ids
  end;
  (match flow with
  | None -> ()
  | Some fl ->
      out "";
      out "flow %d packets (ms):" fl;
      out "  %-6s %10s %8s %8s %8s %8s %5s %9s  %s" "seq" "origin_s" "buffer"
        "queue" "access" "air" "hops" "total" "state";
      List.iter
        (fun p ->
          if p.p_flow = fl then begin
            let b, q, a, r = stage_sums p in
            let state =
              if p.p_delivered >= 0 then
                if is_complete p then "complete" else "partial"
              else if p.p_dropped then
                Printf.sprintf "drop:%s" (name p.p_drop_reason)
              else "in-flight"
            in
            let total_ms =
              if p.p_delivered >= 0 && p.p_originated >= 0 then
                ms (p.p_delivered - p.p_originated)
              else 0.
            in
            out "  %-6d %10.4f %8.3f %8.3f %8.3f %8.3f %5d %9.3f  %s" p.p_seq
              (float_of_int p.p_originated /. 1e9)
              (ms b) (ms q) (ms a) (ms r)
              (List.length p.p_hops)
              total_ms state
          end)
        t.paths);
  List.rev !lines
