lib/packets/dsr_msg.ml: Data_msg Format List Node_id
