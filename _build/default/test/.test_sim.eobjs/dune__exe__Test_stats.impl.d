test/test_stats.ml: Alcotest Gen List QCheck QCheck_alcotest Quantile Stats String Table Welford
