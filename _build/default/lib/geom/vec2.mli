(** Planar positions and displacements, in metres. *)

type t = { x : float; y : float }

val v : float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
val dist : t -> t -> float
val dist2 : t -> t -> float
(** Squared distance; avoids the sqrt in range tests. *)

val lerp : t -> t -> float -> t
(** [lerp a b u] is the point a fraction [u] of the way from [a] to [b]. *)

val normalize : t -> t
(** Unit vector in the same direction; [zero] maps to [zero]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
