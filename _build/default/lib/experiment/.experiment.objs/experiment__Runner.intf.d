lib/experiment/runner.mli: Metrics Net Routing Scenario Sim
