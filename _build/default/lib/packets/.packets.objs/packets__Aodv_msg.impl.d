lib/packets/aodv_msg.ml: Format List Node_id Sim
