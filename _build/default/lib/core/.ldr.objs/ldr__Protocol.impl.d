lib/core/protocol.ml: Conditions Config Data_msg Engine Ldr_msg List Net Node_id Option Packets Payload Rng Route_table Routing Seqnum Sim Stdlib Time
