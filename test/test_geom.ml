(* Tests for Vec2 and Terrain. *)

open Geom

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let vec_basic () =
  let a = Vec2.v 3. 4. in
  checkf "norm" 5. (Vec2.norm a);
  checkf "dist to origin" 5. (Vec2.dist a Vec2.zero);
  checkf "dist2" 25. (Vec2.dist2 a Vec2.zero);
  let b = Vec2.add a (Vec2.v 1. 1.) in
  checkf "add x" 4. b.Vec2.x;
  checkf "add y" 5. b.Vec2.y;
  let c = Vec2.sub b a in
  checkf "sub x" 1. c.Vec2.x;
  let d = Vec2.scale 2. a in
  checkf "scale" 10. (Vec2.norm d);
  checkf "dot" 25. (Vec2.dot a a)

let vec_lerp () =
  let a = Vec2.v 0. 0. and b = Vec2.v 10. 20. in
  let mid = Vec2.lerp a b 0.5 in
  checkf "mid x" 5. mid.Vec2.x;
  checkf "mid y" 10. mid.Vec2.y;
  checkb "lerp 0 = a" true (Vec2.equal (Vec2.lerp a b 0.) a);
  checkb "lerp 1 = b" true (Vec2.equal (Vec2.lerp a b 1.) b)

let vec_normalize () =
  let a = Vec2.v 0. 5. in
  let n = Vec2.normalize a in
  checkf "unit norm" 1. (Vec2.norm n);
  checkb "zero stays zero" true (Vec2.equal (Vec2.normalize Vec2.zero) Vec2.zero)

let terrain_contains () =
  let t = Terrain.create ~width:100. ~height:50. in
  checkb "inside" true (Terrain.contains t (Vec2.v 50. 25.));
  checkb "corner" true (Terrain.contains t (Vec2.v 0. 0.));
  checkb "far corner" true (Terrain.contains t (Vec2.v 100. 50.));
  checkb "outside x" false (Terrain.contains t (Vec2.v 101. 25.));
  checkb "outside y" false (Terrain.contains t (Vec2.v 50. (-1.)))

let terrain_clamp () =
  let t = Terrain.create ~width:100. ~height:50. in
  let p = Terrain.clamp t (Vec2.v 200. (-10.)) in
  checkf "clamp x" 100. p.Vec2.x;
  checkf "clamp y" 0. p.Vec2.y;
  let q = Vec2.v 42. 13. in
  checkb "inside unchanged" true (Vec2.equal q (Terrain.clamp t q))

let terrain_random_points () =
  let t = Terrain.create ~width:1500. ~height:300. in
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 1000 do
    checkb "random point inside" true (Terrain.contains t (Terrain.random_point t rng))
  done

let terrain_invalid () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Terrain.create: non-positive size") (fun () ->
      ignore (Terrain.create ~width:0. ~height:5.))

let terrain_measures () =
  let t = Terrain.create ~width:30. ~height:40. in
  checkf "diagonal" 50. (Terrain.diagonal t);
  checkf "area" 1200. (Terrain.area t)

(* qcheck properties *)

let vec_gen =
  QCheck.map
    (fun (x, y) -> Vec2.v x y)
    QCheck.(pair (float_bound_exclusive 1000.) (float_bound_exclusive 1000.))

let triangle_inequality =
  QCheck.Test.make ~name:"triangle inequality" ~count:500
    (QCheck.triple vec_gen vec_gen vec_gen)
    (fun (a, b, c) -> Vec2.dist a c <= Vec2.dist a b +. Vec2.dist b c +. 1e-6)

let dist_symmetric =
  QCheck.Test.make ~name:"dist symmetric" ~count:500 (QCheck.pair vec_gen vec_gen)
    (fun (a, b) -> abs_float (Vec2.dist a b -. Vec2.dist b a) < 1e-9)

let clamp_idempotent =
  QCheck.Test.make ~name:"clamp idempotent & contained" ~count:500 vec_gen
    (fun p ->
      let t = Terrain.create ~width:300. ~height:200. in
      let c = Terrain.clamp t p in
      Terrain.contains t c && Vec2.equal c (Terrain.clamp t c))

(* ---- Cell_index -------------------------------------------------------- *)

let ci_members t ~x ~y ~radius =
  let acc = ref [] in
  Cell_index.iter_disk t ~x ~y ~radius (fun i -> acc := i :: !acc);
  List.sort compare !acc

let cell_index_basic () =
  let t = Cell_index.create ~cell:10. ~width:100. ~height:50. ~ids:8 in
  checkb "empty" true (Cell_index.population t = 0);
  Cell_index.update t 0 ~x:5. ~y:5.;
  Cell_index.update t 1 ~x:6. ~y:6.;
  Cell_index.update t 2 ~x:95. ~y:45.;
  checkb "population" true (Cell_index.population t = 3);
  checkb "mem" true (Cell_index.mem t 1);
  checkb "not mem" false (Cell_index.mem t 3);
  (* Superset contract: everything within the radius is visited. *)
  checkb "disk covers near members" true
    (ci_members t ~x:5. ~y:5. ~radius:3. = [ 0; 1 ]);
  checkb "far member not in small disk" true
    (not (List.mem 2 (ci_members t ~x:5. ~y:5. ~radius:20.)))

let cell_index_move_remove () =
  let t = Cell_index.create ~cell:10. ~width:100. ~height:50. ~ids:4 in
  Cell_index.update t 0 ~x:5. ~y:5.;
  (* Same-cell move is a no-op; cross-cell move relocates. *)
  Cell_index.update t 0 ~x:7. ~y:8.;
  checkb "still one member" true (Cell_index.population t = 1);
  Cell_index.update t 0 ~x:95. ~y:45.;
  checkb "left old cell" true (ci_members t ~x:5. ~y:5. ~radius:4. = []);
  checkb "entered new cell" true
    (List.mem 0 (ci_members t ~x:95. ~y:45. ~radius:4.));
  Cell_index.remove t 0;
  checkb "removed" false (Cell_index.mem t 0);
  Cell_index.remove t 0;
  (* double remove is a no-op *)
  checkb "empty again" true (Cell_index.population t = 0);
  (* Positions outside the arena clamp to border cells, never crash. *)
  Cell_index.update t 1 ~x:(-10.) ~y:500.;
  checkb "clamped member findable" true
    (List.mem 1 (ci_members t ~x:0. ~y:50. ~radius:15.))

let cell_index_vs_naive =
  (* Randomized walks: iter_disk is always a superset of the true disk
     population, and stats stay coherent. *)
  QCheck.Test.make ~name:"iter_disk superset of true disk" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let rng = Sim.Rng.create (seed + 1) in
      let n = 40 in
      let t = Cell_index.create ~cell:25. ~width:200. ~height:100. ~ids:n in
      let xs = Array.make n 0. and ys = Array.make n 0. in
      for i = 0 to n - 1 do
        xs.(i) <- Sim.Rng.float rng 200.;
        ys.(i) <- Sim.Rng.float rng 100.;
        Cell_index.update t i ~x:xs.(i) ~y:ys.(i)
      done;
      (* a couple of random moves *)
      for _ = 1 to 20 do
        let i = Sim.Rng.int rng n in
        xs.(i) <- Sim.Rng.float rng 200.;
        ys.(i) <- Sim.Rng.float rng 100.;
        Cell_index.update t i ~x:xs.(i) ~y:ys.(i)
      done;
      let qx = Sim.Rng.float rng 200. and qy = Sim.Rng.float rng 100. in
      let radius = 30. in
      let visited = ci_members t ~x:qx ~y:qy ~radius in
      let ok = ref true in
      for i = 0 to n - 1 do
        let dx = xs.(i) -. qx and dy = ys.(i) -. qy in
        if (dx *. dx) +. (dy *. dy) <= radius *. radius then
          ok := !ok && List.mem i visited
      done;
      let s = Cell_index.stats t in
      !ok && s.Cell_index.occupied <= s.Cell_index.cells
      && s.Cell_index.max_occupancy <= n
      && Cell_index.population t = n)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "geom"
    [
      ( "vec2",
        [
          Alcotest.test_case "basics" `Quick vec_basic;
          Alcotest.test_case "lerp" `Quick vec_lerp;
          Alcotest.test_case "normalize" `Quick vec_normalize;
          qt triangle_inequality;
          qt dist_symmetric;
        ] );
      ( "terrain",
        [
          Alcotest.test_case "contains" `Quick terrain_contains;
          Alcotest.test_case "clamp" `Quick terrain_clamp;
          Alcotest.test_case "random points inside" `Quick terrain_random_points;
          Alcotest.test_case "invalid" `Quick terrain_invalid;
          Alcotest.test_case "measures" `Quick terrain_measures;
          qt clamp_idempotent;
        ] );
      ( "cell-index",
        [
          Alcotest.test_case "basics" `Quick cell_index_basic;
          Alcotest.test_case "move/remove/clamp" `Quick cell_index_move_remove;
          qt cell_index_vs_naive;
        ] );
    ]
