(** Hand-wired mcheck topologies: a few nodes, explicit links, and a
    timed script of topology changes and data originations.

    The script is the {e timed} skeleton of the schedule space — link
    flaps and originations happen at fixed virtual instants, exactly as
    in the published counterexample walkthroughs — while message
    deliveries between them are floating events the explorer orders
    freely.

    A fixture may split its timeline into a deterministic {e prelude}
    and an explored suffix.  Published counterexamples start "from a
    reachable state in which routes are established"; the prelude is
    how a fixture pins that state down mechanically.  Before
    [explore_from], events fire in deterministic FIFO order — except
    that messages matched by a [hold] directive stay in flight until
    their hold instant, modelling the one delayed delivery the
    walkthrough depends on.  The explorer then branches only over the
    suffix, so the schedule space covers the window where the bug
    lives instead of the whole route-establishment phase.

    Text format ([.topo], one directive per line, [#] comments):
    {v
    name   aodv-loop-3
    nodes  3
    link   0 1
    link   0 2
    at 0.1 origin 1 2
    at 5.0 down 0 2
    at 7.0 origin 0 2
    hold RREP 0 1 until 1.2
    explore_from 4.9
    v} *)

type action =
  | Origin of int * int  (** originate one data packet src, dst *)
  | Link_up of int * int
  | Link_down of int * int

type step = { at : float;  (** virtual seconds *) act : action }

type hold = {
  h_class : string;  (** payload class, e.g. ["RREP"] *)
  h_src : int;
  h_dst : int;
  h_until : float;  (** earliest delivery, virtual seconds *)
}
(** Keep matching in-flight messages undelivered until [h_until]
    during the FIFO prelude.  Matching is by label prefix
    ["CLASS src->dst"], so it applies to every copy of that class on
    that link.  A hold reaching past [explore_from] leaves the message
    pending when exploration starts — "still in flight". *)

type t = {
  name : string;
  nodes : int;
  links : (int * int) list;
  script : step list;  (** sorted by [at] *)
  explore_from : float;
      (** start of the explored window; 0 explores everything *)
  holds : hold list;
}

val aodv_loop_3 : t
(** The three-node counterexample in the style of van Glabbeek et
    al. (arXiv:1512.08891): node 1 routes to 2 via hub 0, the 0–2 link
    dies silently, and a later discovery by 0 can — under the right
    delivery order — install 0→1 while 1 still points at 0.  AODV's
    sequence numbers fail to forbid it (a route that {e expired}
    carries the same number it had when valid, and an intermediate
    node answers on number equality); LDR's SDC refuses the answer. *)

val line_4 : t
(** Four nodes in a line with a mid-script partition and heal — the
    Testnet link edge-case fixture. *)

val builtin : string -> t option
(** Look up a built-in fixture by name. *)

val builtin_names : string list

val parse : name:string -> string -> (t, string) result
(** Parse [.topo] text; [name] is the fallback if no [name] directive. *)

val load : string -> (t, string) result
(** Read a [.topo] file; the file's basename is the fallback name. *)
