(** Periodic runtime telemetry: per-domain engine gauges plus PDES and
    GC health, written as JSONL samples and/or an atomically-replaced
    Prometheus text-format snapshot — the exposition format the future
    [manet_simd] service will stream.

    The collector does not schedule itself: the runner drives
    {!record} from an [Engine.every] cadence (classic runs) or the
    PDES boundary callback (sharded runs, all shards quiesced).
    Recording never touches the simulation — no events scheduled, no
    RNG draws — so enabling telemetry cannot perturb outcomes. *)

(** One engine's gauges, read with {!domain_of_engine}. *)
type domain = {
  dom_pending : int;
  dom_fired : int;
  dom_cal_buckets : int;
  dom_cal_occupancy : float;
}

val domain_of_engine : Sim.Engine.t -> domain

(** Coordinator-level PDES gauges (sharded runs only). *)
type pdes_gauges = {
  pg_windows : int;
  pg_utilization : float;
  pg_mirrors : int;
  pg_worker_minor : float array;  (** live per-worker GC minor words *)
}

type t

val create : ?jsonl:string -> ?prom:string -> unit -> t
(** Open the JSONL stream and/or remember the Prometheus snapshot
    path.  At least one output should be given for the collector to be
    useful; with neither it is inert. *)

val record :
  t -> time:Sim.Time.t -> domains:domain array -> ?pdes:pdes_gauges ->
  ?grid:int * int * int -> unit -> unit
(** Take one sample at virtual time [time]: append a JSONL line and
    atomically rewrite the Prometheus snapshot (write-temp-then-rename,
    so scrapers never see a torn file).  Event rates are computed
    against the previous sample's wall clock and fired counts.
    [grid] is the channel spatial index's [(cells, occupied,
    max_occupancy)] ({!Net.Channel.index_stats}) — classic runs only;
    a sharded run has one index per region and omits it. *)

val close : t -> unit
(** Flush and close the JSONL stream (the snapshot file needs no
    closing; it is complete after every {!record}). *)

val validate_prom : string -> (string list, string) result
(** Parse a Prometheus text-format file, checking metric-name syntax,
    label syntax and numeric values; returns the sorted, deduplicated
    metric names on success (CI greps these for stability) or a
    line-tagged error. *)
