lib/experiment/testnet.mli: Metrics Routing Sim
