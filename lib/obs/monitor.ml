(* Continuous loop-freedom monitor (paper, Section 3).

   LDR's global invariant: for every node n with successor s toward
   destination d,

     sn_s > sn_n  \/  (sn_s = sn_n  /\  fd_s < fd_n)

   — the successor's invariants dominate.  At s, fd only ratchets down
   within a sequence number and sn only grows, so a write at s can
   never break a predecessor's edge; checking each table write against
   the *current* invariants of the successor it installs is therefore
   a complete O(1)-per-write check.  The runner's O(N^2)
   successor-graph audit stays as the heavyweight cross-check. *)

type t = {
  bus : Bus.t;
  lookup : node:int -> dst:int -> Event.inv option;
  ring : Event.t array;
  mutable head : int;  (* next slot to overwrite *)
  mutable filled : int;
  mutable violations : int;
  mutable last_window : string list;
  quiet : bool;
  viol_ev : Event.t;  (* preallocated: dispatch must not reuse bus scratch *)
}

let default_ring = 256

let push t ev =
  let slot = t.ring.(t.head) in
  Event.copy_into ~src:ev ~dst:slot;
  t.head <- (t.head + 1) mod Array.length t.ring;
  if t.filled < Array.length t.ring then t.filled <- t.filled + 1

(* Ring contents oldest-first, filtered to the destination's causal
   neighbourhood, rendered with the bus's intern table. *)
let window t ~dst =
  let k = Array.length t.ring in
  let acc = ref [] in
  for i = 1 to t.filled do
    (* newest-first: head-1, head-2, ... *)
    let idx = (t.head - i + (2 * k)) mod k in
    let ev = t.ring.(idx) in
    if Event.relevant_to ~dst ev then
      acc := Format.asprintf "%a" (Event.pp ~name:(Bus.name t.bus)) ev :: !acc
  done;
  !acc

let violations t = t.violations
let last_window t = t.last_window

let check t (ev : Event.t) =
  (* ev is a Table_write installing successor ev.c; own invariants ride
     in the event (d = dist, e = fd, f = packed sn). *)
  match t.lookup ~node:ev.c ~dst:ev.a with
  | None -> ()
  | Some s ->
      let own_sn = ev.f and own_fd = ev.e in
      let dominated =
        s.Event.i_sn > own_sn || (s.Event.i_sn = own_sn && s.Event.i_fd < own_fd)
      in
      if not dominated then begin
        t.violations <- t.violations + 1;
        (* Window first: it must exclude the violation event itself,
           matching what the analyzer reconstructs from the trace. *)
        let w = window t ~dst:ev.a in
        let v = t.viol_ev in
        v.Event.time <- ev.time;
        v.node <- ev.node;
        v.kind <- Event.Violation;
        v.a <- ev.a;
        v.b <- ev.c;
        v.c <- own_sn;
        v.d <- s.Event.i_sn;
        v.e <- own_fd;
        v.f <- s.Event.i_fd;
        Bus.dispatch t.bus v;
        t.last_window <- w;
        if not t.quiet then begin
          Format.eprintf "%a@."
            (Event.pp ~name:(Bus.name t.bus))
            v;
          Format.eprintf "  last-%d event window for dst n%d:@."
            (Array.length t.ring) ev.a;
          List.iter (fun l -> Format.eprintf "    %s@." l) w
        end
      end

let sink t (ev : Event.t) =
  (* Span records are pure lifecycle telemetry — never
     destination-relevant, so keeping them out of the ring preserves
     the PR-3 window contents (and the analyzer's reconstruction,
     which skips them symmetrically in [Reader.violation_window]). *)
  if ev.kind <> Event.Span then push t ev;
  match ev.kind with
  | Event.Table_write when ev.c >= 0 -> check t ev
  | _ -> ()

let create ?(ring = default_ring) ?(quiet = false) ~lookup bus =
  if ring <= 0 then invalid_arg "Monitor.create: ring must be positive";
  let t =
    {
      bus;
      lookup;
      ring = Array.init ring (fun _ -> Event.make ());
      head = 0;
      filled = 0;
      violations = 0;
      last_window = [];
      quiet;
      viol_ev = Event.make ();
    }
  in
  Bus.add_sink bus (sink t);
  t
