(** DSR path cache.

    Stores complete source routes (node lists).  A lookup for a
    destination returns the hops of the shortest live cached path that
    runs from the owning node to that destination — including paths where
    both appear mid-route, since any contiguous subpath of a valid route
    is valid.  Link removals truncate every path at the broken link. *)

open Packets

type t

val create : engine:Sim.Engine.t -> owner:Node_id.t -> capacity:int -> ttl:Sim.Time.t -> t

val add_path : t -> Node_id.t list -> unit
(** Cache a route (two or more distinct nodes).  Oldest paths are evicted
    beyond capacity. *)

val find : t -> dst:Node_id.t -> Node_id.t list option
(** Hops from the owner to [dst], excluding the owner, including [dst];
    shortest first by construction.  [None] if nothing usable. *)

val remove_link : t -> Node_id.t -> Node_id.t -> unit
(** Drop the directed link (and, links being symmetric, its reverse) from
    every cached path, truncating them. *)

val paths : t -> Node_id.t list list
(** Live cached paths, for tests and debugging. *)

val clear : t -> unit
(** Drop every cached path — churn teardown. *)
