lib/core/protocol.mli: Config Packets Route_table Routing
