test/test_aodv.ml: Alcotest Aodv Engine Experiment List Node_id Packets QCheck QCheck_alcotest Rng Routing Sim Time
