(** Domain-parallel trial execution.

    A chunked work queue (Mutex + Condition, stdlib only) fans indexed
    jobs across OCaml 5 domains.  The executor is generic — it knows
    nothing about scenarios — and {!Sweep} uses it to spread a sweep's
    (seed × parameter-point) trial matrix over cores.

    {b Determinism guarantee.}  [map ~jobs n f] calls [f i] exactly once
    for every [i] in [0 .. n-1] and stores the result at index [i], so
    the caller observes results in index order regardless of which
    domain ran which job or in what order they completed.  Provided [f]
    itself is deterministic and shares no mutable state across calls
    (every {!Runner} trial builds its own engine, RNG, metrics and
    observability bus), the result array is bit-identical for every
    [jobs] value, including the inline [jobs = 1] path.  See
    [docs/PARALLELISM.md]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware-suggested
    worker count, >= 1. *)

val resolve_jobs : int -> int
(** [resolve_jobs j] is [j] for [j >= 1] and {!recommended_jobs}[ ()]
    for [0].  Raises [Invalid_argument] on negative [j].  The CLI's
    [--jobs 0 = auto] convention funnels through here. *)

val effective_jobs : items:int -> int -> int
(** [effective_jobs ~items j] is {!resolve_jobs}[ j] capped at [items]
    (and at least 1): auto mode never spawns more domains than there is
    work — spare domains would only pay startup cost and skew the
    per-domain GC deltas benchmarks report.  {!map} and the CLI's
    [--jobs 0]/[--shards 0] auto modes resolve through here. *)

val on_worker_domain : unit -> bool
(** True while executing inside a {!map} worker domain (domain-local
    flag).  Used to keep process-global observers — e.g. the pretty
    trace sink, which renders through the global [Logs] reporter onto
    one shared formatter — from being attached by concurrent worker
    trials. *)

val map : ?jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [[| f 0; ...; f (n-1) |]].

    [jobs <= 1] (after {!resolve_jobs}) or [n <= 1] runs inline on the
    calling domain in index order — exactly today's sequential
    behaviour, no domain is spawned.  Otherwise [min jobs n] worker
    domains drain a queue of [chunk]-sized index ranges (default: a
    balanced chunk small enough to keep every worker busy, at least 1).

    If any [f i] raises, the first exception (by completion order) is
    re-raised in the caller with its backtrace after all workers have
    stopped; remaining queued chunks are abandoned. *)
