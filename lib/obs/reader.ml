(* Load a JSONL trace back into events and answer the analyzer CLI's
   queries.  Labels are re-interned into a private bus so events print
   through the same [Event.pp] path the live sinks use — analyzer
   output and monitor ring dumps coincide line for line. *)

type t = { events : Event.t array; bus : Bus.t }

let field fields key =
  match List.assoc_opt key fields with
  | Some (Jsonl.Int n) -> n
  | Some (Jsonl.Float _ | Jsonl.Str _) | None -> -1

let event_of_fields bus fields =
  match List.assoc_opt "k" fields with
  | Some (Jsonl.Str k) -> (
      match Event.kind_of_name k with
      | None -> None
      | Some kind ->
          let ev = Event.make () in
          ev.Event.time <- Sim.Time.unsafe_of_ns (Stdlib.max 0 (field fields "t"));
          ev.node <- field fields "n";
          ev.kind <- kind;
          ev.a <- field fields "a";
          ev.b <- field fields "b";
          ev.c <- field fields "c";
          ev.d <- field fields "d";
          ev.e <- field fields "e";
          ev.f <- field fields "f";
          (* Re-intern the label so [a] resolves through our table. *)
          (if Event.has_label kind then
             match List.assoc_opt "s" fields with
             | Some (Jsonl.Str s) -> ev.a <- Bus.intern bus s
             | Some (Jsonl.Int _ | Jsonl.Float _) | None -> ());
          Some ev)
  | Some (Jsonl.Int _ | Jsonl.Float _) | None -> None

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let bus = Bus.create () in
      let events = ref [] in
      let bad = ref 0 in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           if String.length line > 0 then
             match Jsonl.parse_line line with
             | None -> incr bad
             | Some fields -> (
                 match event_of_fields bus fields with
                 | Some ev -> events := ev :: !events
                 | None -> incr bad)
         done
       with End_of_file -> ());
      close_in ic;
      if !bad > 0 then
        Error (Printf.sprintf "%d malformed line(s) in %s" !bad path)
      else Ok { events = Array.of_list (List.rev !events); bus }

let length t = Array.length t.events
let events t = t.events
let name t i = Bus.name t.bus i
let render t ev = Format.asprintf "%a" (Event.pp ~name:(Bus.name t.bus)) ev

(* ---- Queries ----------------------------------------------------------- *)

let tx_class_counts t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (ev : Event.t) ->
      if ev.kind = Event.Tx then begin
        let cls = Bus.name t.bus ev.a in
        let count, bytes =
          match Hashtbl.find_opt tbl cls with Some c -> c | None -> (0, 0)
        in
        Hashtbl.replace tbl cls (count + 1, bytes + ev.c)
      end)
    t.events;
  Hashtbl.fold (fun cls c acc -> (cls, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timeline t ~node =
  Array.to_list t.events
  |> List.filter (fun (ev : Event.t) -> ev.node = node)
  |> List.map (render t)

(* Successor changes per node for one destination: every Table_write
   whose successor actually changed, plus a per-node flap count. *)
let flaps t ~dst =
  let lines = ref [] in
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun (ev : Event.t) ->
      if ev.kind = Event.Table_write && ev.a = dst && ev.b <> ev.c then begin
        lines := render t ev :: !lines;
        let c =
          match Hashtbl.find_opt counts ev.node with Some r -> r | None ->
            let r = ref 0 in
            Hashtbl.replace counts ev.node r;
            r
        in
        incr c
      end)
    t.events;
  let summary =
    Hashtbl.fold (fun node c acc -> (node, !c) :: acc) counts []
    |> List.sort compare
    |> List.map (fun (node, c) ->
           Printf.sprintf "n%d: %d successor change(s)" node c)
  in
  List.rev !lines
  @ (if summary = [] then [ "no route changes for this destination" ]
     else summary)

(* Drop events bucketed over time: reason (or kind for ifq/collision)
   per interval. *)
let drop_report ?(bins = 10) t =
  let span =
    Array.fold_left
      (fun acc (ev : Event.t) -> Stdlib.max acc ((ev.time :> int) + 1))
      1 t.events
  in
  let width = (span + bins - 1) / bins in
  let tbl = Hashtbl.create 32 in
  let bump bin label =
    let key = (bin, label) in
    match Hashtbl.find_opt tbl key with
    | Some r -> incr r
    | None -> Hashtbl.replace tbl key (ref 1)
  in
  Array.iter
    (fun (ev : Event.t) ->
      let bin = (ev.time :> int) / width in
      match ev.kind with
      | Event.Data_drop -> bump bin (Bus.name t.bus ev.a)
      | Event.Ifq_drop -> bump bin "ifq-overflow"
      | Event.Collision -> bump bin "collision"
      | _ -> ())
    t.events;
  let rows =
    Hashtbl.fold (fun (bin, label) r acc -> (bin, label, !r) :: acc) tbl []
    |> List.sort compare
  in
  if rows = [] then [ "no drops recorded" ]
  else
    List.map
      (fun (bin, label, count) ->
        Printf.sprintf "[%6.1f - %6.1f s] %-16s %d"
          (float_of_int (bin * width) /. 1e9)
          (float_of_int ((bin + 1) * width) /. 1e9)
          label count)
      rows

let violation_indices t =
  let acc = ref [] in
  Array.iteri
    (fun i (ev : Event.t) -> if ev.kind = Event.Violation then acc := i :: !acc)
    t.events;
  List.rev !acc

let violations t = List.length (violation_indices t)

(* Reconstruct the monitor's ring dump for the [i]th violation: the
   last [k] raw events before the violation line, filtered by the same
   destination-relevance predicate the monitor uses.  Span events
   never enter the monitor's ring, so they don't consume window
   capacity here either — only non-Span events count toward [k]. *)
let violation_window ?(k = Monitor.default_ring) t i =
  match List.nth_opt (violation_indices t) i with
  | None -> None
  | Some pos ->
      let dst = t.events.(pos).Event.a in
      let acc = ref [] in
      let seen = ref 0 in
      let j = ref (pos - 1) in
      while !j >= 0 && !seen < k do
        let ev = t.events.(!j) in
        if ev.Event.kind <> Event.Span then begin
          incr seen;
          if Event.relevant_to ~dst ev then acc := render t ev :: !acc
        end;
        decr j
      done;
      Some (render t t.events.(pos), !acc)

let summary t =
  let counts = Hashtbl.create 16 in
  let nodes = Hashtbl.create 64 in
  Array.iter
    (fun (ev : Event.t) ->
      Hashtbl.replace nodes ev.Event.node ();
      let key = Event.kind_name ev.kind in
      match Hashtbl.find_opt counts key with
      | Some r -> incr r
      | None -> Hashtbl.replace counts key (ref 1))
    t.events;
  let span =
    Array.fold_left
      (fun acc (ev : Event.t) -> Stdlib.max acc (ev.time :> int))
      0 t.events
  in
  let head =
    Printf.sprintf "%d events, %d nodes, %.3f s span" (Array.length t.events)
      (Hashtbl.length nodes)
      (float_of_int span /. 1e9)
    :: (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counts []
       |> List.sort compare
       |> List.map (fun (k, c) -> Printf.sprintf "  %-6s %d" k c))
  in
  (* Per-class byte totals from the Tx events, so the airtime view is
     available from a JSONL trace alone (previously pcap-only). *)
  match tx_class_counts t with
  | [] -> head
  | classes ->
      head
      @ "tx bytes by class:"
        :: List.map
             (fun (cls, (count, bytes)) ->
               Printf.sprintf "  %-6s %d tx, %d B" cls count bytes)
             classes
