lib/experiment/scenario.ml: Aodv Array Dsr Float Geom Ldr List Net Olsr Sim Stdlib Time Traffic
