lib/stats/quantile.ml: Array Float Int64 Stdlib
