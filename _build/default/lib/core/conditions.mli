(** LDR's loop-freedom conditions (paper, Section 2.1), as pure
    predicates.

    A node's invariants for a destination are its stored sequence number
    [sn], measured distance [dist], and feasible distance [fd] — the
    minimum distance it has held for the current sequence number.
    Distances are hop counts ([infinity] = no usable bound). *)

open Packets

type info = { sn : Seqnum.t; dist : int; fd : int }

val infinity : int
(** Distance standing in for "no information": larger than any real path
    length, safe to add small constants to. *)

val sn_ge_opt : Seqnum.t -> Seqnum.t option -> bool
(** [sn_ge_opt a b]: [a >= b], where an absent [b] compares below
    everything ("the requester knows nothing"). *)

val sn_gt_opt : Seqnum.t -> Seqnum.t option -> bool
val sn_eq_opt : Seqnum.t -> Seqnum.t option -> bool

val ndc : own:info option -> adv_sn:Seqnum.t -> adv_dist:int -> bool
(** Numbered Distance Condition: node may accept an advertisement
    (sequence number [adv_sn], advertised distance [adv_dist]) and change
    its successor with no coordination iff it has no information, or
    [adv_sn > sn], or [adv_sn = sn && adv_dist < fd]. *)

val fdc_requires_reset : own:info option -> req_sn:Seqnum.t option -> req_fd:int -> bool
(** Feasible Distance Condition, contrapositive: a relay must set the
    T bit iff [sn = req_sn && fd >= req_fd].  A relay with no information
    or a different number never violates the ordering. *)

val sdc :
  own:info option ->
  active:bool ->
  req_sn:Seqnum.t option ->
  answer_dist:int ->
  reset:bool ->
  bool
(** Start Distance Condition: node may answer a solicitation iff it has
    an active route and ([sn = req_sn && dist < answer_dist && not reset]
    or [sn > req_sn]). *)

val sdc_ignoring_reset :
  own:info option -> active:bool -> req_sn:Seqnum.t option -> answer_dist:int -> bool
(** SDC with the T bit disregarded — identifies the first node on the
    flood path that converts a reset-requiring RREQ into a unicast to the
    destination. *)
