open Sim
open Packets

type rx = {
  rx_frame : Frame.t;
  tx_dist : float;  (** receiver-to-transmitter distance, for capture *)
  mutable corrupted : bool;
}

type radio = {
  id : Node_id.t;
  position : unit -> Geom.Vec2.t;
  mutable receive : Frame.t -> unit;
  mutable medium : bool -> unit;
  mutable busy_count : int;  (** in-range transmissions currently in the air *)
  mutable tx_count : int;  (** own transmissions in the air (0 or 1) *)
  mutable current_rx : rx option;
}

type t = {
  engine : Engine.t;
  params : Params.t;
  mutable radios : radio list;
  mutable hook : Node_id.t -> Frame.t -> unit;
  mutable tx_total : int;
}

let create ~engine ~params =
  { engine; params; radios = []; hook = (fun _ _ -> ()); tx_total = 0 }

let params t = t.params

let attach t ~id ~position =
  let r =
    {
      id;
      position;
      receive = ignore;
      medium = ignore;
      busy_count = 0;
      tx_count = 0;
      current_rx = None;
    }
  in
  t.radios <- r :: t.radios;
  r

let set_receiver r f = r.receive <- f
let set_medium_listener r f = r.medium <- f
let radio_id r = r.id
let transmitting r = r.tx_count > 0

let carrier_busy r = r.busy_count > 0 || r.tx_count > 0

let busy _t r = carrier_busy r

let in_range t a b =
  Geom.Vec2.dist2 (a.position ()) (b.position ()) <= t.params.range_m *. t.params.range_m

let neighbors_in_range t r =
  List.filter_map
    (fun other ->
      if other != r && in_range t r other then Some other.id else None)
    t.radios

let set_transmit_hook t f = t.hook <- f
let transmissions t = t.tx_total

let mark_busy r =
  let was = carrier_busy r in
  r.busy_count <- r.busy_count + 1;
  if not was then r.medium true

let mark_idle r =
  r.busy_count <- r.busy_count - 1;
  assert (r.busy_count >= 0);
  if not (carrier_busy r) then r.medium false

let transmit t src frame ~duration =
  t.tx_total <- t.tx_total + 1;
  t.hook src.id frame;
  (* Touched radios are fixed at transmission start: node movement within
     one frame airtime (~2 ms) is a fraction of a millimetre.  Radios out
     to the carrier-sense range defer and suffer interference; only those
     within decode range can receive the frame. *)
  let src_pos = src.position () in
  let in_cs r =
    Geom.Vec2.dist2 src_pos (r.position ())
    <= t.params.cs_range_m *. t.params.cs_range_m
  in
  let decodable r =
    Geom.Vec2.dist2 src_pos (r.position ())
    <= t.params.range_m *. t.params.range_m
  in
  let touched = List.filter (fun r -> r != src && in_cs r) t.radios in
  let was_busy_src = carrier_busy src in
  src.tx_count <- src.tx_count + 1;
  if not was_busy_src then src.medium true;
  let deliveries =
    List.map
      (fun r ->
        mark_busy r;
        let dist = Geom.Vec2.dist src_pos (r.position ()) in
        let lock () =
          let rx = { rx_frame = frame; tx_dist = dist; corrupted = false } in
          r.current_rx <- Some rx;
          (r, Some rx)
        in
        (* A radio that is transmitting decodes nothing.  An overlap is
           resolved by the capture effect: the markedly closer (stronger)
           transmitter wins; comparable powers corrupt both frames. *)
        if r.tx_count > 0 then (r, None)
        else
          match r.current_rx with
          | Some rx ->
              let ratio = t.params.capture_distance_ratio in
              if dist >= ratio *. rx.tx_dist then
                (* New arrival too weak to disturb the locked frame. *)
                (r, None)
              else if rx.tx_dist >= ratio *. dist && decodable r then begin
                (* New arrival captures the receiver. *)
                rx.corrupted <- true;
                lock ()
              end
              else begin
                rx.corrupted <- true;
                (r, None)
              end
          | None -> if decodable r then lock () else (r, None))
      touched
  in
  ignore
    (Engine.after t.engine duration (fun () ->
         src.tx_count <- src.tx_count - 1;
         if not (carrier_busy src) then src.medium false;
         List.iter
           (fun (r, rx_opt) ->
             mark_idle r;
             match rx_opt with
             | None -> ()
             | Some rx ->
                 (* Only clear the lock if it is still ours (a corrupting
                    overlap never replaces the lock, so it is). *)
                 (match r.current_rx with
                 | Some cur when cur == rx -> r.current_rx <- None
                 | Some _ | None -> ());
                 (* Starting to transmit mid-reception also kills it. *)
                 if (not rx.corrupted) && r.tx_count = 0 then
                   r.receive rx.rx_frame)
           deliveries))
