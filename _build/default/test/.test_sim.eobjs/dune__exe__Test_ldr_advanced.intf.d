test/test_ldr_advanced.mli:
