(** Conservative synchronous-window PDES coordinator.

    Advances K {!Engine.t}s in lock-step windows of width [lookahead]:
    each window ends at [min (earliest pending event across shards +
    lookahead, next forced boundary, horizon + 1ns)]; shards with work
    inside the window run it, then cross-shard messages buffered by
    {!post} are drained — in shard order, arming order within a shard —
    and the boundary callback fires.  Because {!post} rejects arrivals
    inside the executing window (the lookahead bound), no shard ever
    receives an event in its past and the outcome is independent of the
    worker-domain count: shard [i] is always run by worker [i mod
    workers], so per-shard state stays single-writer.

    The caller owns what "cross-shard" means (the PDES runner in
    [Experiment] shards the arena spatially and posts border-crossing
    transmissions with a delivery latency of at least the lookahead);
    this module only schedules windows and moves messages. *)

type t

val create : ?workers:int -> lookahead:Time.t -> Engine.t array -> t
(** [workers] caps the domain fan-out (default
    [Domain.recommended_domain_count ()]); it is always clamped to
    [1 .. shards] and never affects results, only wall time.  Raises
    [Invalid_argument] on an empty engine array or a non-positive
    lookahead. *)

val shards : t -> int
val engine : t -> int -> Engine.t
val lookahead : t -> Time.t
val workers : t -> int
(** Resolved worker-domain count ([1] means the coordinator runs every
    shard inline). *)

val post : t -> src:int -> dst:int -> Time.t -> (unit -> unit) -> unit
(** Buffer a cross-shard message from shard [src]'s executing event:
    [fn] will be scheduled on shard [dst]'s engine at the given absolute
    time when the current window closes.  Must only be called from
    shard [src]'s own events (outboxes are single-writer).  Raises
    [Invalid_argument] if the arrival time falls inside the executing
    window — that would violate the conservative lookahead bound. *)

val request_boundary : t -> Time.t -> unit
(** Force a window boundary at exactly the given time: no window will
    span it, and events at that time run only after the boundary
    callback.  Used for occupancy refresh cadences and quiesced fault
    injection. *)

val set_on_boundary : t -> (Time.t -> unit) -> unit
(** Callback fired at every window boundary (after message drain) with
    the boundary time, clamped to the run horizon.  All shards are
    quiesced when it runs; it may inspect any shard, schedule events at
    or after the boundary, and call {!request_boundary}. *)

val window_end_ns : t -> int
(** Exclusive end (ns) of the window currently executing, [max_int]
    outside one.  Exposed for tests asserting the lookahead bound. *)

val run : t -> until:Time.t -> unit
(** Drive all shards to the horizon.  Every shard's clock ends at
    [until], as with [Engine.run ~until]. *)

type stats = { windows : int; messages : int }

val stats : t -> stats
(** Windows executed and cross-shard messages delivered so far. *)

val window_utilization : t -> float
(** Mean fraction of shards that had work inside their window, over
    all windows so far; 0 before the first window.  Telemetry gauge. *)

val worker_minor_words : t -> float array
(** Per-worker-domain [Gc.minor_words] totals, recorded when the last
    worker pool shut down (end of {!run}).  Empty when the run executed
    inline on the calling domain (workers = 1). *)

val live_worker_minor_words : t -> float array
(** Per-worker gauges refreshed at the end of every window.  Safe to
    read only while shards are quiesced (the boundary callback); falls
    back to {!worker_minor_words} when no pool is running. *)
