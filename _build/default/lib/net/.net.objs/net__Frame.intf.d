lib/net/frame.mli: Format Node_id Packets Payload
