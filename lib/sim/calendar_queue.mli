(** Pending-event set as a calendar queue (Brown, CACM '88).

    Events are bucketed by time into a wheel spanning one "year";
    far-future events wait in an overflow tier and migrate in when the
    calendar is rebuilt.  Schedule and {b physical} cancel are O(1); pop
    is O(1) amortized while the bucket width tracks the mean inter-event
    gap, which the snapshot-resize policy maintains.  Event slots are
    pooled and recycled through a free list, so steady-state operation
    allocates nothing; handles are generation-checked ints, making
    cancel-after-fire (or after recycling) a detected no-op.

    Ordering is (time, schedule sequence): same-instant events fire in
    schedule order, matching {!Event_queue} event for event. *)

type t

val create : unit -> t

val schedule : t -> Time.t -> (unit -> unit) -> int
(** [schedule q at f] arranges for [f] to run at [at]; returns a handle
    for {!cancel}.  Handles are never 0. *)

val schedule_raw : t -> Time.t -> (Obj.t -> unit) -> Obj.t -> int
(** Closure-free variant: stores the callback and its argument in the
    event slot.  Sound only when [fn] is applied to the [arg] it was
    paired with, which the queue guarantees. *)

val cancel : t -> int -> unit
(** O(1) physical removal: the slot is unlinked and recycled
    immediately (observable via {!live_count}), not at pop time.
    Stale handles — fired, already cancelled, or recycled — are
    detected by generation and ignored. *)

val pop_staged : t -> int -> bool
(** [pop_staged q limit_ns] removes the earliest event if it is due at
    or before [limit_ns] (pass [max_int] for unbounded) and stages it
    for {!staged_time}/{!run_staged}.  False leaves the queue
    untouched.  Staging avoids the option/tuple allocation of a
    returned pop. *)

val staged_time : t -> Time.t
val run_staged : t -> unit

val next_time_ns : t -> int
(** Time of the earliest live event, or [max_int] when empty. *)

val is_empty : t -> bool

val live_count : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events.  O(1). *)

val capacity : t -> int
(** Current slot-pool size — tests use [live_count]/[capacity] to
    observe that cancellation recycles slots immediately. *)

val num_buckets : t -> int
val bucket_width : t -> int

val handle_idx_bits : int
val handle_idx_mask : int
(** Handle layout — [(generation lsl handle_idx_bits) lor slot_index] —
    exposed for {!Engine.Trace}, which maps handles back to the
    schedule ops that produced them. *)
