open Sim

type state = { mutable last_t : Time.t; mutable last_ctl : int }

let emit ~engine ~metrics ~channel ~macs ~(agents : Routing.Agent.t array) ~oc
    st =
  let now = Engine.now engine in
  let stats = Engine.stats engine in
  let ifq = Array.fold_left (fun acc m -> acc + Net.Mac.queue_length m) 0 macs in
  let originated = Metrics.originated metrics in
  let delivered = Metrics.delivered metrics in
  let ratio =
    if originated = 0 then 1. else float_of_int delivered /. float_of_int originated
  in
  let ctl = Metrics.control_transmissions metrics in
  let dt = Time.to_sec (Time.diff now st.last_t) in
  let ctl_rate =
    if dt <= 0. then 0. else float_of_int (ctl - st.last_ctl) /. dt
  in
  st.last_t <- now;
  st.last_ctl <- ctl;
  let entries = ref 0 and finite = ref 0 and fd_sum = ref 0 in
  Array.iter
    (fun (a : Routing.Agent.t) ->
      let e, f, s = a.route_stats () in
      entries := !entries + e;
      finite := !finite + f;
      fd_sum := !fd_sum + s)
    agents;
  let n = Array.length agents in
  let rt_mean = if n = 0 then 0. else float_of_int !entries /. float_of_int n in
  let fd_mean =
    if !finite = 0 then 0. else float_of_int !fd_sum /. float_of_int !finite
  in
  Printf.fprintf oc
    "{\"t\":%d,\"pending\":%d,\"fired\":%d,\"inflight\":%d,\"ifq\":%d,\
     \"originated\":%d,\"delivered\":%d,\"ratio\":%.4f,\"ctl_rate\":%.1f,\
     \"rt_mean\":%.2f,\"fd_mean\":%.2f}\n"
    (now :> int)
    stats.Engine.pending stats.Engine.fired
    (Net.Channel.in_flight channel)
    ifq originated delivered ratio ctl_rate rt_mean fd_mean

let attach ~engine ~metrics ~channel ~macs ~agents ~every ~until ~oc =
  if Time.(every <= Time.zero) then
    invalid_arg "Sampler.attach: interval must be positive";
  let st = { last_t = Engine.now engine; last_ctl = 0 } in
  Engine.every engine ~start:Time.zero ~interval:every ~until (fun () ->
      emit ~engine ~metrics ~channel ~macs ~agents ~oc st);
  (* [Engine.every] fires strictly before [until], so whatever the
     interval the run would otherwise end without a sample at the
     horizon — the one most post-processing scripts read last.  A
     one-shot at exactly [until] closes the series and can never
     duplicate a periodic firing. *)
  ignore
    (Engine.at engine until (fun () ->
         emit ~engine ~metrics ~channel ~macs ~agents ~oc st))
