(** Network-layer payloads: one sum over every protocol's messages. *)

type t =
  | Data of Data_msg.t  (** data routed hop-by-hop (LDR / AODV / OLSR) *)
  | Ldr of Ldr_msg.t
  | Aodv of Aodv_msg.t
  | Dsr of Dsr_msg.t  (** includes DSR's source-routed data *)
  | Olsr of Olsr_msg.t

val classify : t -> [ `Data of Data_msg.t | `Control of string ]
(** Data packets (including data inside DSR source-route headers) vs
    control packets labelled with their metrics bucket
    ("RREQ", "RREP", "RERR", "HELLO", "TC"). *)

val is_data : t -> bool

val data_flow : t -> int
val data_seq : t -> int
(** The data packet's out-of-band trace id (flow id / per-flow seq),
    -1 for control payloads.  Allocation-free; span emission keys on
    these. *)

val class_name : t -> string
(** The {!classify} bucket name without the payload — "DATA" or the
    control kind — allocation-free, for trace labels. *)

val pp : Format.formatter -> t -> unit
