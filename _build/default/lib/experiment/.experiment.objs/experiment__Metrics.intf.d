lib/experiment/metrics.mli: Net Packets Sim
