(** Structured observability events.

    One compact record per event: virtual time, node, kind, and up to
    six int payload fields [a]..[f] whose meaning depends on the kind
    (-1 means absent).  No strings or format work happen on the emit
    path — string-valued payloads (frame classes, drop reasons,
    protocol-event names) are interned to ints by the {!Bus} and only
    resolved back when a sink renders the event.

    Payload field map:
    - [Tx]: a = frame class, b = MAC destination (-1 broadcast),
      c = payload bytes
    - [Rx]: a = frame class, b = sender, c = MAC destination
    - [Collision]: a = frame class of the lost frame, b = its sender
    - [Ifq_drop]: a = frame class, b = MAC destination
    - [Deliver]: a = flow id, b = seq, c = source, d = hops,
      e = latency (ns)
    - [Data_drop]: a = reason, b = flow id, c = seq, d = source,
      e = destination
    - [Link_failure]: a = unreachable next hop
    - [Proto]: a = event name, b = destination the event concerns (-1
      when not destination-specific)
    - [Table_write]: a = destination, b = old successor, c = new
      successor (-1 = route invalidated), d = distance, e = feasible
      distance, f = packed sequence number ({!Packets.Seqnum.pack})
    - [Violation]: a = destination, b = successor, c = own packed sn,
      d = successor's packed sn, e = own fd, f = successor's fd
    - [Span]: a = lifecycle stage code ({!span_stage_name}), b = flow
      id (-1 for discovery stages), c = seq (-1 for discovery stages),
      d/e/f = stage-specific (see {!Span.Stage}) *)

type kind =
  | Tx
  | Rx
  | Collision
  | Ifq_drop
  | Deliver
  | Data_drop
  | Link_failure
  | Proto
  | Table_write
  | Violation
  | Span

type t = {
  mutable time : Sim.Time.t;
  mutable node : int;
  mutable kind : kind;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable e : int;
  mutable f : int;
}

type inv = { i_sn : int; i_dist : int; i_fd : int }
(** A node's stored LDR invariants for one destination, with the
    sequence number packed to a single order-preserving int. *)

val make : unit -> t
(** A blank event (all payload fields -1). *)

val copy_into : src:t -> dst:t -> unit
(** Field-wise copy, no allocation — ring buffers reuse their slots. *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

val span_stage_name : int -> string
(** Name of a [Span] stage code (field [a]); ["?"] for unknown codes. *)

val has_label : kind -> bool
(** Whether field [a] is an interned-string id ({!Bus.name} resolves
    it). *)

val relevant_to : dst:int -> t -> bool
(** The destination-relevance predicate shared by the invariant
    monitor's ring dump and the analyzer's violation-window query. *)

val pp : name:(int -> string) -> Format.formatter -> t -> unit
(** Render one event as a human-readable trace line; [name] resolves
    interned-string ids (use {!Bus.name}). *)
