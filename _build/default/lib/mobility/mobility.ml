open Sim

(* A leg is one linear motion (or pause, when [from = dest]) starting at
   [depart] and ending at [arrive].  Models generate legs on demand. *)
type leg = {
  depart : Time.t;
  arrive : Time.t;
  from_pos : Geom.Vec2.t;
  dest : Geom.Vec2.t;
}

type t = {
  name : string;
  mutable leg : leg;
  mutable last_query : Time.t;
  next_leg : leg -> leg;
      (* Called when a query time passes [leg.arrive]; produces the
         following leg, which must start where the previous ended. *)
}

let model_name t = t.name

let position_on leg t =
  if Time.(t <= leg.depart) then leg.from_pos
  else if Time.(t >= leg.arrive) then leg.dest
  else begin
    let total = Time.to_sec (Time.diff leg.arrive leg.depart) in
    let gone = Time.to_sec (Time.diff t leg.depart) in
    Geom.Vec2.lerp leg.from_pos leg.dest (gone /. total)
  end

let position t time =
  if Time.(time < t.last_query) then
    invalid_arg "Mobility.position: query times must be non-decreasing";
  t.last_query <- time;
  while Time.(time > t.leg.arrive) do
    t.leg <- t.next_leg t.leg
  done;
  position_on t.leg time

let forever = Time.sec 1e9

let static pos =
  let leg = { depart = Time.zero; arrive = forever; from_pos = pos; dest = pos } in
  { name = "static"; leg; last_query = Time.zero; next_leg = (fun l -> { l with depart = l.arrive; arrive = forever }) }

let travel_time a b speed = Time.sec (Geom.Vec2.dist a b /. speed)

let waypoint ~terrain ~rng ~speed_min ~speed_max ~pause ~start =
  if speed_min <= 0. || speed_min > speed_max then
    invalid_arg "Mobility.waypoint: need 0 < speed_min <= speed_max";
  (* Legs alternate pause (from = dest) and motion. *)
  let next_leg prev =
    if Geom.Vec2.equal prev.from_pos prev.dest then begin
      (* Pause done: move to a fresh waypoint. *)
      let dest = Geom.Terrain.random_point terrain rng in
      let speed = Rng.float_in rng speed_min speed_max in
      { depart = prev.arrive;
        arrive = Time.add prev.arrive (travel_time prev.dest dest speed);
        from_pos = prev.dest;
        dest }
    end
    else
      (* Arrived: pause in place. *)
      { depart = prev.arrive;
        arrive = Time.add prev.arrive pause;
        from_pos = prev.dest;
        dest = prev.dest }
  in
  let first = { depart = Time.zero; arrive = pause; from_pos = start; dest = start } in
  { name = "waypoint"; leg = first; last_query = Time.zero; next_leg }

let random_walk ~terrain ~rng ~speed ~epoch ~start =
  if speed <= 0. then invalid_arg "Mobility.random_walk: non-positive speed";
  let next_leg prev =
    let theta = Rng.float rng (2. *. Float.pi) in
    let d = Time.to_sec epoch *. speed in
    let raw = Geom.Vec2.add prev.dest (Geom.Vec2.v (d *. cos theta) (d *. sin theta)) in
    (* Reflection approximated by clamping to the boundary; with short
       epochs the difference from exact reflection is negligible and the
       walk stays uniform enough for test purposes. *)
    let dest = Geom.Terrain.clamp terrain raw in
    { depart = prev.arrive;
      arrive = Time.add prev.arrive (travel_time prev.dest dest speed);
      from_pos = prev.dest;
      dest }
  in
  let first = { depart = Time.zero; arrive = Time.zero; from_pos = start; dest = start } in
  { name = "random_walk"; leg = first; last_query = Time.zero; next_leg }

let scripted points =
  let rec check = function
    | [] | [ _ ] -> ()
    | (t1, _) :: ((t2, _) :: _ as rest) ->
        if Time.(t2 <= t1) then invalid_arg "Mobility.scripted: times must increase";
        check rest
  in
  match points with
  | [] -> invalid_arg "Mobility.scripted: empty trajectory"
  | (t0, p0) :: rest ->
      check points;
      let remaining = ref rest in
      let next_leg prev =
        match !remaining with
        | [] -> { depart = prev.arrive; arrive = forever; from_pos = prev.dest; dest = prev.dest }
        | (t, p) :: tl ->
            remaining := tl;
            { depart = prev.arrive; arrive = t; from_pos = prev.dest; dest = p }
      in
      let first = { depart = Time.zero; arrive = t0; from_pos = p0; dest = p0 } in
      { name = "scripted"; leg = first; last_query = Time.zero; next_leg }
