open Sim
open Packets

type item = { msg : Data_msg.t; buffered_at : Time.t }

type t = {
  engine : Engine.t;
  capacity : int;
  max_age : Time.t;
  on_drop : Data_msg.t -> reason:string -> unit;
  by_dst : item Queue.t Node_id.Table.t;
  mutable count : int;
  obs : Obs.Bus.t;
  owner : int; (* node id for span records, -1 unattributed *)
}

let create ?obs ?(owner = -1) ~engine ~capacity ~max_age ~on_drop () =
  if capacity <= 0 then invalid_arg "Packet_buffer.create: capacity";
  let obs = match obs with Some b -> b | None -> Obs.Bus.create () in
  {
    engine;
    capacity;
    max_age;
    on_drop;
    by_dst = Node_id.Table.create 16;
    count = 0;
    obs;
    owner;
  }

(* Buffer residency spans: enter on push, exit on take.  Packets that
   expire or are evicted get no exit span — their Data_drop event ends
   the path, and the analyzer treats the residency as unterminated. *)
let emit_span t ~stage (msg : Data_msg.t) =
  Obs.Bus.span t.obs
    ~time:(Engine.now t.engine)
    ~node:t.owner ~stage ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
    ~d:(Node_id.to_int msg.Data_msg.dst)
    ~e:(-1) ~f:(-1)

let fresh t item =
  Time.(Time.add item.buffered_at t.max_age > Engine.now t.engine)

(* Drop expired packets at the head of a destination queue. *)
let rec trim_expired t q =
  match Queue.peek_opt q with
  | Some item when not (fresh t item) ->
      ignore (Queue.pop q);
      t.count <- t.count - 1;
      t.on_drop item.msg ~reason:"buffer-timeout";
      trim_expired t q
  | Some _ | None -> ()

let queue_for t dst =
  match Node_id.Table.find_opt t.by_dst dst with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Node_id.Table.replace t.by_dst dst q;
      q

(* Emptied queues leave the table immediately: a long mobile run buffers
   for ever-changing destinations, and keeping a dead queue per
   destination ever seen is an unbounded leak. *)
let prune t dst q = if Queue.is_empty q then Node_id.Table.remove t.by_dst dst

(* Evict the globally oldest packet to make room. *)
let evict_oldest t =
  let oldest = ref None in
  Node_id.Table.iter
    (fun dst q ->
      match Queue.peek_opt q with
      | Some item -> (
          match !oldest with
          | Some (best, _, _) when Time.(best.buffered_at <= item.buffered_at) ->
              ()
          | _ -> oldest := Some (item, dst, q))
      | None -> ())
    t.by_dst;
  match !oldest with
  | None -> ()
  | Some (_, dst, q) ->
      let item = Queue.pop q in
      t.count <- t.count - 1;
      prune t dst q;
      t.on_drop item.msg ~reason:"buffer-evicted"

let push t msg =
  let dst = msg.Data_msg.dst in
  (match Node_id.Table.find_opt t.by_dst dst with
  | Some q ->
      trim_expired t q;
      prune t dst q
  | None -> ());
  if t.count >= t.capacity then evict_oldest t;
  (* Re-fetch: the eviction above may have emptied and removed this
     destination's queue. *)
  let q = queue_for t dst in
  Queue.push { msg; buffered_at = Engine.now t.engine } q;
  t.count <- t.count + 1;
  if Obs.Bus.on t.obs then emit_span t ~stage:Obs.Span.Stage.buf_enter msg

let take t dst =
  match Node_id.Table.find_opt t.by_dst dst with
  | None -> []
  | Some q ->
      trim_expired t q;
      let items = List.of_seq (Queue.to_seq q) in
      t.count <- t.count - Queue.length q;
      Queue.clear q;
      Node_id.Table.remove t.by_dst dst;
      List.map
        (fun i ->
          if Obs.Bus.on t.obs then
            emit_span t ~stage:Obs.Span.Stage.buf_exit i.msg;
          i.msg)
        items

let drop_all t dst ~reason =
  List.iter (fun msg -> t.on_drop msg ~reason) (take t dst)

(* Churn teardown: every buffered packet for every destination is a
   metrics-visible drop (the node died holding them). *)
let clear t ~reason =
  let dsts = Node_id.Table.fold (fun dst _ acc -> dst :: acc) t.by_dst [] in
  List.iter (fun dst -> drop_all t dst ~reason) dsts

let pending t dst =
  match Node_id.Table.find_opt t.by_dst dst with
  | None -> false
  | Some q ->
      trim_expired t q;
      prune t dst q;
      not (Queue.is_empty q)

let length t = t.count

let destinations t = Node_id.Table.length t.by_dst
