open Sim
open Packets

type outcome = {
  metrics : Metrics.t;
  summary : Metrics.summary;
  events_processed : int;
  mac_queue_drops : int;
  mac_unicast_failures : int;
  transmissions : int;
  invariant_violations : int;
  pdes_windows : int;
  pdes_messages : int;
  pdes_worker_minor_words : float array;
}

type sim = {
  engine : Engine.t;
  agents : Routing.Agent.t array;
  macs : Net.Mac.t array;
  channel : Net.Channel.t;
  bus : Obs.Bus.t;
  inject : src:int -> dst:int -> unit;
  sim_metrics : Metrics.t;
  finalize : unit -> unit;
  mutable monitor : Obs.Monitor.t option;
  mutable cleanup : (unit -> unit) list;
}

(* Any loop created by a routing-table write must traverse the edge just
   written, so it suffices to walk successor chains starting at the node
   that changed (for every destination it currently has a successor
   for).  The visited set is a generation-stamped scratch array shared
   across every audit in the run — no per-walk allocation. *)
let audit_from ~scratch ~gen agents metrics n num_nodes =
  let agent : Routing.Agent.t = agents.(n) in
  for d = 0 to num_nodes - 1 do
    if d <> n then begin
      let dst = Node_id.of_int d in
      match agent.Routing.Agent.successor dst with
      | None -> ()
      | Some _ ->
          incr gen;
          let g = !gen in
          let rec walk x =
            let xi = Node_id.to_int x in
            if scratch.(xi) = g then Metrics.loop_violation metrics
            else begin
              scratch.(xi) <- g;
              if not (Node_id.equal x dst) then
                match agents.(xi).Routing.Agent.successor dst with
                | Some next -> walk next
                | None -> ()
            end
          in
          walk (Node_id.of_int n)
    end
  done

let null_agent : Routing.Agent.t =
  {
    Routing.Agent.origin_data = ignore;
    recv = (fun _ ~from:_ -> ());
    overheard = (fun _ ~from:_ ~dst:_ -> ());
    link_failure = (fun _ ~next_hop:_ -> ());
    start = ignore;
    successor = (fun _ -> None);
    own_seqno = (fun () -> 0.);
    invariants = (fun _ -> None);
    route_stats = (fun () -> (0, 0, 0));
    reset = (fun ~crash:_ -> ());
  }

(* Every node's mobility process, drawn in one canonical order shared
   by the classic and PDES paths so all shard counts see identical
   streams: RPGM group centres first (one [Rng.split mobility_rng]
   each), then per node [i] ascending one split per node that draws
   randomness at all.  Static nodes ([speed_max <= 0]) draw nothing —
   exactly the pre-existing waypoint contract. *)
let make_mobs (sc : Scenario.t) ~mobility_rng ~(starts : Geom.Vec2.t array) =
  let n = sc.num_nodes in
  let static = sc.speed_max <= 0. in
  let mobs = Array.make n (Mobility.static (Geom.Vec2.v 0. 0.)) in
  (match sc.mobility with
  | Scenario.Rpgm { groups; radius } when not static ->
      let g = Stdlib.max 1 (Stdlib.min groups n) in
      let centres = Array.make g None in
      for j = 0 to g - 1 do
        (* The centre starts where the group's first member was placed,
           so group clusters respect the scenario's placement. *)
        centres.(j) <-
          Some
            (Mobility.rpgm_group ~terrain:sc.terrain
               ~rng:(Rng.split mobility_rng) ~speed_min:sc.speed_min
               ~speed_max:sc.speed_max ~pause:sc.pause
               ~start:starts.(j * n / g))
      done;
      for i = 0 to n - 1 do
        let r = Rng.split mobility_rng in
        let ang = Rng.float r (2. *. Float.pi) in
        let rad = radius *. sqrt (Rng.float r 1.) in
        let centre =
          match centres.(i * g / n) with Some c -> c | None -> assert false
        in
        mobs.(i) <-
          Mobility.rpgm_member centre ~ox:(rad *. cos ang)
            ~oy:(rad *. sin ang)
      done
  | _ ->
      for i = 0 to n - 1 do
        mobs.(i) <-
          (if static then Mobility.static starts.(i)
           else
             let rng = Rng.split mobility_rng in
             match sc.mobility with
             | Scenario.Manhattan { spacing } ->
                 Mobility.manhattan ~terrain:sc.terrain ~rng ~spacing
                   ~speed_min:sc.speed_min ~speed_max:sc.speed_max
                   ~pause:sc.pause ~start:starts.(i)
             | _ ->
                 Mobility.waypoint ~terrain:sc.terrain ~rng
                   ~speed_min:sc.speed_min ~speed_max:sc.speed_max
                   ~pause:sc.pause ~start:starts.(i))
      done);
  mobs

(* Fresh per call: on a sharded run every region's channel gets its own
   instance (the shadowing memo table is not shared across domains), all
   drawing identical per-pair gains from the same scenario seed. *)
let make_link (sc : Scenario.t) =
  match (sc.shadowing, sc.partition) with
  | None, None -> None
  | sh, pa ->
      let shadowing =
        Option.map
          (fun (s : Scenario.shadowing) ->
            (sc.seed lxor 0x5348_4144, s.Scenario.sigma_db, s.Scenario.eta))
          sh
      in
      let partition =
        Option.map
          (fun (p : Scenario.partition) ->
            ( p.Scenario.part_at,
              p.Scenario.part_heal,
              p.Scenario.part_x_frac *. sc.terrain.Geom.Terrain.width ))
          pa
      in
      Some (Net.Link_model.create ?shadowing ?partition ())

(* One down/up cycle per selected node, precomputed from a stream
   independent of every simulation stream (placement, mobility,
   traffic, MAC, agents), so arming churn changes no other draw.
   [schedule] places the toggles: the classic path uses [Engine.at] on
   the single engine, the sharded path on the node's home engine —
   both are events at exact virtual times, so outcomes agree. *)
let plan_churn (sc : Scenario.t) ~(schedule : int -> Time.t -> (unit -> unit) -> unit)
    ~(take_down : int -> crash:bool -> unit) ~(bring_up : int -> unit) =
  match sc.churn with
  | None -> ()
  | Some c ->
      let churn_rng = Rng.create (sc.seed lxor 0x6368_7572) in
      let window =
        Float.max 0.
          (Time.to_sec c.Scenario.churn_stop
          -. Time.to_sec c.Scenario.churn_start)
      in
      let spread =
        Float.max 0.
          (Time.to_sec c.Scenario.down_max -. Time.to_sec c.Scenario.down_min)
      in
      for i = 0 to sc.num_nodes - 1 do
        let r = Rng.split churn_rng in
        if Rng.float r 1. < c.Scenario.churn_frac then begin
          let t_down =
            Time.add c.Scenario.churn_start
              (Time.sec (if window > 0. then Rng.float r window else 0.))
          in
          let dur =
            Time.to_sec c.Scenario.down_min
            +. (if spread > 0. then Rng.float r spread else 0.)
          in
          let t_up = Time.add t_down (Time.sec dur) in
          let crash = Rng.float r 1. < c.Scenario.crash_frac in
          schedule i t_down (fun () -> take_down i ~crash);
          schedule i t_up (fun () -> bring_up i)
        end
      done

let build ?on_engine ?obs (sc : Scenario.t) =
  let engine =
    Engine.create ~seed:sc.seed
      ~scheduler:(if sc.heap_scheduler then `Heap else `Calendar)
      ()
  in
  (* Instrumentation hook (e.g. [Engine.record_trace] in the engine
     benchmark), called before anything is scheduled so setup-time
     events are captured too. *)
  (match on_engine with Some f -> f engine | None -> ());
  let bus = match obs with Some b -> b | None -> Obs.Bus.create () in
  (* The pretty trace sink renders through the process-global Logs
     reporter onto one shared formatter; concurrent worker trials
     attaching it would interleave lines and race the formatter's
     buffer.  Everything else a trial touches (engine, RNG, metrics,
     bus + intern table, audit scratch) is built per-sim below, so
     worker-domain trials simply skip this one global observer. *)
  if Trace.on () && not (Parallel.on_worker_domain ()) then
    Obs.Bus.add_sink bus (Trace.obs_sink bus);
  let root = Engine.rng engine in
  let placement_rng = Rng.split root in
  let mobility_rng = Rng.split root in
  let traffic_rng = Rng.split root in
  let metrics = Metrics.create () in
  let n = sc.num_nodes in
  let starts = Scenario.positions sc placement_rng in
  let mobs = make_mobs sc ~mobility_rng ~starts in
  let nodes =
    if sc.soa then
      Some
        (Net.Nodes.create ~width:sc.terrain.Geom.Terrain.width
           ~height:sc.terrain.Geom.Terrain.height mobs ~at:Time.zero)
    else None
  in
  let channel =
    Net.Channel.create ~engine
      ~mode:
        (if sc.soa then Net.Channel.Soa
         else if sc.naive_channel then Net.Channel.Naive
         else Net.Channel.Grid)
      ~max_speed:(Float.max sc.speed_max 0.)
      ?world:
        (Option.map
           (fun nd ->
             (Net.Nodes.store nd, Net.Nodes.width nd, Net.Nodes.height nd))
           nodes)
      ?link:(make_link sc) ~obs:bus ~params:sc.net ()
  in
  Net.Channel.add_transmit_hook channel (fun _src frame ->
      Metrics.transmitted metrics frame);
  let agents : Routing.Agent.t array = Array.make n null_agent in
  let audit_scratch = Array.make n (-1) in
  let audit_gen = ref 0 in
  let factory = Scenario.factory sc.protocol in
  let macs = ref [] in
  for i = 0 to n - 1 do
    let id = Node_id.of_int i in
    let mob = mobs.(i) in
    let position () = Mobility.position mob (Engine.now engine) in
    let mac =
      Net.Mac.create ~engine ~channel ~rng:(Rng.split root) ~id ~position
        ?world:(Option.map (fun nd -> (nd, i)) nodes)
        {
          Net.Mac.receive =
            (fun payload ~from ->
              agents.(i).Routing.Agent.recv payload ~from);
          promiscuous =
            (fun payload ~from ~dst ->
              agents.(i).Routing.Agent.overheard payload ~from ~dst);
          link_failure =
            (fun payload ~next_hop ->
              if Obs.Bus.on bus then
                Obs.Bus.link_failure bus ~time:(Engine.now engine) ~node:i
                  ~next_hop:(Node_id.to_int next_hop);
              agents.(i).Routing.Agent.link_failure payload ~next_hop);
        }
    in
    macs := mac :: !macs;
    let ctx =
      {
        Routing.Agent.id;
        engine;
        rng = Rng.split root;
        send = (fun ~dst payload -> Net.Mac.send mac ~dst payload);
        deliver =
          (fun msg ->
            let now = Engine.now engine in
            if Obs.Bus.on bus then
              Obs.Bus.deliver bus ~time:now ~node:i
                ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                ~src:(Node_id.to_int msg.Data_msg.src)
                ~hops:msg.Data_msg.hops
                ~latency_ns:
                  ((Time.diff now msg.Data_msg.origin_time :> int));
            Metrics.data_delivered metrics ~now msg);
        drop_data =
          (fun msg ~reason ->
            if Obs.Bus.on bus then
              Obs.Bus.data_drop bus ~time:(Engine.now engine) ~node:i
                ~reason:(Obs.Bus.intern bus reason)
                ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                ~src:(Node_id.to_int msg.Data_msg.src)
                ~dst:(Node_id.to_int msg.Data_msg.dst);
            Metrics.data_dropped metrics msg ~reason);
        event =
          (fun ?dst name ->
            if Obs.Bus.on bus then
              Obs.Bus.proto bus ~time:(Engine.now engine) ~node:i
                ~name:(Obs.Bus.intern bus name)
                ~dst:
                  (match dst with Some d -> Node_id.to_int d | None -> -1);
            Metrics.protocol_event metrics name);
        table_changed =
          (if sc.audit_loops then fun () ->
             audit_from ~scratch:audit_scratch ~gen:audit_gen agents metrics
               i n
           else ignore);
        obs = bus;
      }
    in
    agents.(i) <- factory ctx
  done;
  Array.iter (fun (a : Routing.Agent.t) -> a.start ()) agents;
  let mac_arr = Array.of_list (List.rev !macs) in
  (* The span trail starts at the application boundary: one Originate
     record per data packet, before the agent sees it. *)
  let span_originate ~src (msg : Data_msg.t) =
    if Obs.Bus.on bus then
      Obs.Bus.span bus ~time:(Engine.now engine) ~node:(Node_id.to_int src)
        ~stage:Obs.Span.Stage.originate ~flow:msg.Data_msg.flow_id
        ~seq:msg.Data_msg.seq
        ~d:(Node_id.to_int msg.Data_msg.dst)
        ~e:msg.Data_msg.payload_bytes ~f:(-1)
  in
  (* A down node originates nothing: the gate is checked at emission
     time against the churn plan, whose toggles are events at exact
     virtual times — so the classic and sharded paths agree on exactly
     which originations are skipped. *)
  let down = Array.make n false in
  Traffic.setup ~engine ~rng:traffic_rng ~num_nodes:n ~config:sc.traffic
    ~until:sc.duration
    ~emit:(fun ~src msg ->
      if not down.(Node_id.to_int src) then begin
        span_originate ~src msg;
        Metrics.data_originated metrics msg;
        agents.(Node_id.to_int src).Routing.Agent.origin_data msg
      end);
  plan_churn sc
    ~schedule:(fun _i at fn -> ignore (Engine.at engine at fn))
    ~take_down:(fun i ~crash ->
      down.(i) <- true;
      (match nodes with Some nd -> Net.Nodes.set_up nd i false | None -> ());
      Net.Channel.set_attached channel (Net.Mac.radio mac_arr.(i)) false;
      Net.Mac.set_down mac_arr.(i) true;
      agents.(i).Routing.Agent.reset ~crash)
    ~bring_up:(fun i ->
      down.(i) <- false;
      (match nodes with Some nd -> Net.Nodes.set_up nd i true | None -> ());
      Net.Channel.set_attached channel (Net.Mac.radio mac_arr.(i)) true;
      Net.Mac.set_down mac_arr.(i) false);
  let injected = ref 0 in
  let inject ~src ~dst =
    incr injected;
    let msg =
      Data_msg.fresh
        ~flow_id:(1_000_000 + !injected)
        ~seq:0 ~src:(Node_id.of_int src) ~dst:(Node_id.of_int dst)
        ~payload_bytes:sc.traffic.Traffic.payload_bytes
        ~origin_time:(Engine.now engine)
    in
    span_originate ~src:(Node_id.of_int src) msg;
    Metrics.data_originated metrics msg;
    agents.(src).Routing.Agent.origin_data msg
  in
  let finalize () =
    let total = ref 0. in
    Array.iter
      (fun (a : Routing.Agent.t) -> total := !total +. a.own_seqno ())
      agents;
    Metrics.set_mean_dest_seqno metrics (!total /. float_of_int n)
  in
  {
    engine;
    agents;
    macs = mac_arr;
    channel;
    bus;
    inject;
    sim_metrics = metrics;
    finalize;
    monitor = None;
    cleanup = [];
  }

let attach_trace sim path =
  let oc = open_out path in
  Obs.Bus.add_sink sim.bus (Obs.Jsonl.sink sim.bus oc);
  sim.cleanup <- (fun () -> close_out oc) :: sim.cleanup

let attach_pcap sim path =
  let sink = Net.Pcap.open_sink path in
  Net.Channel.add_transmit_hook sim.channel (fun _src frame ->
      Net.Pcap.write sink ~time:(Engine.now sim.engine) frame);
  sim.cleanup <- (fun () -> Net.Pcap.close sink) :: sim.cleanup

let attach_monitor ?ring ?quiet sim =
  let lookup ~node ~dst =
    sim.agents.(node).Routing.Agent.invariants (Node_id.of_int dst)
  in
  let m = Obs.Monitor.create ?ring ?quiet ~lookup sim.bus in
  sim.monitor <- Some m;
  m

let attach_telemetry sim ?jsonl ?prom ~every ~until () =
  if Time.(every <= Time.zero) then
    invalid_arg "Runner.attach_telemetry: interval must be positive";
  let c = Obs.Telemetry.create ?jsonl ?prom () in
  let sample () =
    Obs.Telemetry.record c ~time:(Engine.now sim.engine)
      ~domains:[| Obs.Telemetry.domain_of_engine sim.engine |]
      ~grid:(Net.Channel.index_stats sim.channel)
      ()
  in
  Engine.every sim.engine ~start:Time.zero ~interval:every ~until sample;
  (* As with the sampler: [every] stops strictly before [until], so a
     one-shot closes the series at the horizon without duplicating. *)
  ignore (Engine.at sim.engine until sample);
  sim.cleanup <- (fun () -> Obs.Telemetry.close c) :: sim.cleanup

let attach_sampler sim ~every ~until path =
  let oc = open_out path in
  Sampler.attach ~engine:sim.engine ~metrics:sim.sim_metrics
    ~channel:sim.channel ~macs:sim.macs ~agents:sim.agents ~every ~until
    ~oc;
  sim.cleanup <- (fun () -> close_out oc) :: sim.cleanup

let finish sim =
  sim.finalize ();
  List.iter (fun f -> f ()) sim.cleanup;
  sim.cleanup <- []

(* ------------------------------------------------------------------ *)
(* Spatially-sharded conservative PDES (see docs/PARALLELISM.md).      *)

type psim = {
  p_shards : int;
  p_engines : Engine.t array;
  p_agents : Routing.Agent.t array;
  p_home : int array;
  p_request_injection : at:Time.t -> (unit -> unit) -> unit;
}

(* The window width is the cross-shard delivery latency: a frame
   crossing a region border is heard [difs + slot] later than a local
   one — the smallest bound under which a transmission started inside a
   window can still reach the neighbouring shard no earlier than the
   next window boundary.  See docs/PARALLELISM.md for why zero-latency
   crossing is impossible with instantaneous carrier sense. *)
let lookahead_of (net : Net.Params.t) =
  Time.add net.Net.Params.difs net.Net.Params.slot

let resolve_shards (sc : Scenario.t) =
  if sc.shards = 0 then Parallel.effective_jobs ~items:sc.num_nodes 0
  else sc.shards

let run_pdes ?workers ~monitor ?trace_out ?telemetry_out ?telemetry_prom
    ?telemetry_every ?prepare (sc : Scenario.t) ~shards:k =
  let n = sc.num_nodes in
  if n = 0 then invalid_arg "Runner.run: a sharded run needs nodes";
  let part = Geom.Partition.stripes ~terrain:sc.terrain ~k in
  let lookahead = lookahead_of sc.net in
  let scheduler = if sc.heap_scheduler then `Heap else `Calendar in
  let engines =
    Array.init k (fun _ -> Engine.create ~seed:sc.seed ~scheduler ())
  in
  (* The monitor and the loop auditor read other regions' routing
     tables at event time, not just at quiesced boundaries; that is
     only race-free (and deterministic) when one worker domain runs
     every shard, so arming either pins the run to a single worker.
     Worker count never affects results — shard i always runs on
     worker [i mod workers] — so this costs wall time only. *)
  let workers = if monitor || sc.audit_loops then Some 1 else workers in
  let pdes = Pdes.create ?workers ~lookahead engines in
  let buses = Array.init k (fun _ -> Obs.Bus.create ()) in
  let shard_metrics = Array.init k (fun _ -> Metrics.create ~journal:true ()) in
  let max_speed = Float.max sc.speed_max 0. in
  (* Exactly the classic path's setup-stream split order, drawn from an
     identical root (the classic root is the engine's own RNG, which is
     [Rng.create seed]): placement, mobility, traffic, then per node
     [i] its waypoint, MAC and agent streams.  Every node therefore
     sees the same random values whatever K is. *)
  let root = Rng.create sc.seed in
  let placement_rng = Rng.split root in
  let mobility_rng = Rng.split root in
  let traffic_rng = Rng.split root in
  let starts = Scenario.positions sc placement_rng in
  let mobs = make_mobs sc ~mobility_rng ~starts in
  (* One global position store shared by every region's channel: node
     [i]'s row is only ever refreshed by events on its home shard (its
     radio is attached to that channel alone) or at quiesced window
     boundaries, so rows are touched by one domain per window. *)
  let nodes =
    if sc.soa then
      Some
        (Net.Nodes.create ~width:sc.terrain.Geom.Terrain.width
           ~height:sc.terrain.Geom.Terrain.height mobs ~at:Time.zero)
    else None
  in
  let world =
    Option.map
      (fun nd ->
        (Net.Nodes.store nd, Net.Nodes.width nd, Net.Nodes.height nd))
      nodes
  in
  let channels =
    Array.init k (fun r ->
        Net.Channel.create ~engine:engines.(r)
          ~mode:
            (if sc.soa then Net.Channel.Soa
             else if sc.naive_channel then Net.Channel.Naive
             else Net.Channel.Grid)
          ~max_speed ?world ?link:(make_link sc) ~obs:buses.(r)
          ~params:sc.net ())
  in
  Array.iteri
    (fun r ch ->
      Net.Channel.add_transmit_hook ch (fun _src frame ->
          Metrics.transmitted shard_metrics.(r) frame))
    channels;
  (* A node belongs to the region of its initial position for the whole
     run; mobility across a border only widens that region's occupancy
     band. *)
  let home = Array.map (fun p -> Geom.Partition.region_of part p) starts in
  let agents : Routing.Agent.t array = Array.make n null_agent in
  let audit_scratch = Array.make n (-1) in
  let audit_gen = ref 0 in
  let factory = Scenario.factory sc.protocol in
  let macs = ref [] in
  for i = 0 to n - 1 do
    let id = Node_id.of_int i in
    let r = home.(i) in
    let engine = engines.(r) in
    let bus = buses.(r) in
    let metrics = shard_metrics.(r) in
    let mob = mobs.(i) in
    let position () = Mobility.position mob (Engine.now engine) in
    let mac =
      Net.Mac.create ~engine ~channel:channels.(r) ~rng:(Rng.split root) ~id
        ~position
        ?world:(Option.map (fun nd -> (nd, i)) nodes)
        {
          Net.Mac.receive =
            (fun payload ~from ->
              agents.(i).Routing.Agent.recv payload ~from);
          promiscuous =
            (fun payload ~from ~dst ->
              agents.(i).Routing.Agent.overheard payload ~from ~dst);
          link_failure =
            (fun payload ~next_hop ->
              if Obs.Bus.on bus then
                Obs.Bus.link_failure bus ~time:(Engine.now engine) ~node:i
                  ~next_hop:(Node_id.to_int next_hop);
              agents.(i).Routing.Agent.link_failure payload ~next_hop);
        }
    in
    macs := mac :: !macs;
    let ctx =
      {
        Routing.Agent.id;
        engine;
        rng = Rng.split root;
        send = (fun ~dst payload -> Net.Mac.send mac ~dst payload);
        deliver =
          (fun msg ->
            let now = Engine.now engine in
            if Obs.Bus.on bus then
              Obs.Bus.deliver bus ~time:now ~node:i
                ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                ~src:(Node_id.to_int msg.Data_msg.src)
                ~hops:msg.Data_msg.hops
                ~latency_ns:
                  ((Time.diff now msg.Data_msg.origin_time :> int));
            Metrics.data_delivered metrics ~now msg);
        drop_data =
          (fun msg ~reason ->
            if Obs.Bus.on bus then
              Obs.Bus.data_drop bus ~time:(Engine.now engine) ~node:i
                ~reason:(Obs.Bus.intern bus reason)
                ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                ~src:(Node_id.to_int msg.Data_msg.src)
                ~dst:(Node_id.to_int msg.Data_msg.dst);
            Metrics.data_dropped metrics msg ~reason);
        event =
          (fun ?dst name ->
            if Obs.Bus.on bus then
              Obs.Bus.proto bus ~time:(Engine.now engine) ~node:i
                ~name:(Obs.Bus.intern bus name)
                ~dst:
                  (match dst with Some d -> Node_id.to_int d | None -> -1);
            Metrics.protocol_event metrics name);
        table_changed =
          (if sc.audit_loops then fun () ->
             audit_from ~scratch:audit_scratch ~gen:audit_gen agents metrics
               i n
           else ignore);
        obs = bus;
      }
    in
    agents.(i) <- factory ctx
  done;
  Array.iter (fun (a : Routing.Agent.t) -> a.start ()) agents;
  let mac_arr = Array.of_list (List.rev !macs) in
  (* The classic path draws the workload lazily while the clock runs;
     [Traffic.plan] makes the identical draws up front (same stream,
     same order) so each flow can be armed on its source's engine. *)
  let down = Array.make n false in
  let flows =
    Traffic.plan ~rng:traffic_rng ~num_nodes:n ~config:sc.traffic
      ~until:sc.duration
  in
  List.iter
    (fun (f : Traffic.flow) ->
      let r = home.(Node_id.to_int f.Traffic.f_src) in
      Traffic.arm ~engine:engines.(r) ~config:sc.traffic
        ~emit:(fun ~src msg ->
          if not down.(Node_id.to_int src) then begin
            (if Obs.Bus.on buses.(r) then
               Obs.Bus.span buses.(r)
                 ~time:(Engine.now engines.(r))
                 ~node:(Node_id.to_int src) ~stage:Obs.Span.Stage.originate
                 ~flow:msg.Data_msg.flow_id ~seq:msg.Data_msg.seq
                 ~d:(Node_id.to_int msg.Data_msg.dst)
                 ~e:msg.Data_msg.payload_bytes ~f:(-1));
            Metrics.data_originated shard_metrics.(r) msg;
            agents.(Node_id.to_int src).Routing.Agent.origin_data msg
          end)
        f)
    flows;
  (* Churn toggles run as ordinary events on the node's home engine:
     everything they touch (the node's MAC, its radio on the home
     channel, its agent, its store row, its [down] gate read by traffic
     armed on the same engine) is owned by that shard. *)
  plan_churn sc
    ~schedule:(fun i at fn -> ignore (Engine.at engines.(home.(i)) at fn))
    ~take_down:(fun i ~crash ->
      down.(i) <- true;
      (match nodes with Some nd -> Net.Nodes.set_up nd i false | None -> ());
      Net.Channel.set_attached
        channels.(home.(i))
        (Net.Mac.radio mac_arr.(i))
        false;
      Net.Mac.set_down mac_arr.(i) true;
      agents.(i).Routing.Agent.reset ~crash)
    ~bring_up:(fun i ->
      down.(i) <- false;
      (match nodes with Some nd -> Net.Nodes.set_up nd i true | None -> ());
      Net.Channel.set_attached
        channels.(home.(i))
        (Net.Mac.radio mac_arr.(i))
        true;
      Net.Mac.set_down mac_arr.(i) false);
  (* Cross-shard routing: a transmission at x is forwarded to every
     other region whose occupancy band, inflated by the carrier-sense
     range, contains x.  Bands are refreshed at forced boundaries every
     [refresh_period] of virtual time and padded by the furthest any
     node can move in between, so they always over-approximate. *)
  let cs = sc.net.Net.Params.cs_range_m in
  let refresh_period = Time.sec 0.5 in
  let pad = (max_speed *. Time.to_sec refresh_period) +. 1e-6 in
  let band_lo = Array.make k infinity in
  let band_hi = Array.make k neg_infinity in
  let refresh_bands t_now =
    Array.fill band_lo 0 k infinity;
    Array.fill band_hi 0 k neg_infinity;
    for i = 0 to n - 1 do
      (* Runs at quiesced boundaries only, so touching every store row
         from the coordinator is race-free; per-row queries stay
         monotone (every shard's clock is exactly [t_now]). *)
      let x =
        match nodes with
        | Some nd ->
            let st = Net.Nodes.store nd in
            Mobility.Pos_store.refresh st i t_now;
            Mobility.Pos_store.x st i
        | None -> (Mobility.position mobs.(i) t_now).Geom.Vec2.x
      in
      let r = home.(i) in
      if x < band_lo.(r) then band_lo.(r) <- x;
      if x > band_hi.(r) then band_hi.(r) <- x
    done;
    for r = 0 to k - 1 do
      band_lo.(r) <- band_lo.(r) -. pad;
      band_hi.(r) <- band_hi.(r) +. pad
    done
  in
  (* The ACK for a cross-border unicast pays the crossing latency twice
     (data out, ACK back), which the stock ack timeout does not cover. *)
  let grace = Time.mul lookahead 2 in
  Array.iteri
    (fun q ch ->
      Net.Channel.set_remote ch ~grace (fun frame ~src ~duration ->
          let pos = Net.Channel.radio_pos src in
          let x = pos.Geom.Vec2.x in
          let arrival = Time.add (Engine.now engines.(q)) lookahead in
          let src_id = Net.Channel.radio_id src in
          let posted = ref false in
          for r = 0 to k - 1 do
            if r <> q && x >= band_lo.(r) -. cs && x <= band_hi.(r) +. cs
            then begin
              posted := true;
              Pdes.post pdes ~src:q ~dst:r arrival (fun () ->
                  Net.Channel.transmit_from channels.(r) ~src_id ~pos frame
                    ~duration)
            end
          done;
          !posted))
    channels;
  let drain = Time.sec 2. in
  let until = Time.add sc.duration drain in
  let injections = ref [] in
  let request_injection ~at fn =
    Pdes.request_boundary pdes at;
    injections := (at, fn) :: !injections
  in
  (* Telemetry samples ride the existing window-boundary callback (all
     shards quiesced), so enabling it never alters the window schedule
     or any shard's event stream.  Boundaries land every [lookahead]
     (~70 us), far denser than any sensible cadence. *)
  let telemetry =
    match (telemetry_out, telemetry_prom) with
    | None, None -> None
    | jsonl, prom ->
        let every =
          match telemetry_every with Some e -> e | None -> Time.sec 1.
        in
        if Time.(every <= Time.zero) then
          invalid_arg "Runner.run: telemetry interval must be positive";
        Some (Obs.Telemetry.create ?jsonl ?prom (), every, ref every)
  in
  let next_refresh = ref refresh_period in
  Pdes.set_on_boundary pdes (fun tb ->
      if max_speed > 0. && tb >= !next_refresh then begin
        refresh_bands tb;
        next_refresh := Time.add tb refresh_period;
        if !next_refresh <= until then
          Pdes.request_boundary pdes !next_refresh
      end;
      (match telemetry with
      | Some (c, every, next) when tb >= !next && tb < until ->
          let s = Pdes.stats pdes in
          Obs.Telemetry.record c ~time:tb
            ~domains:(Array.map Obs.Telemetry.domain_of_engine engines)
            ~pdes:
              {
                Obs.Telemetry.pg_windows = s.Pdes.windows;
                pg_utilization = Pdes.window_utilization pdes;
                pg_mirrors = s.Pdes.messages;
                pg_worker_minor = Pdes.live_worker_minor_words pdes;
              }
            ();
          while !next <= tb do
            next := Time.add !next every
          done
      | _ -> ());
      match !injections with
      | [] -> ()
      | pending ->
          let due, rest = List.partition (fun (at, _) -> at <= tb) pending in
          injections := rest;
          List.iter (fun (_, fn) -> fn ()) (List.rev due));
  refresh_bands Time.zero;
  if max_speed > 0. then Pdes.request_boundary pdes refresh_period;
  (* One JSONL stream per region, merged by time after the run; as on
     the classic path, trace sinks attach before the monitors so a
     violation's ring dump and the trace agree on event order. *)
  let shard_trace r path = Printf.sprintf "%s.shard%d" path r in
  let trace_ocs =
    match trace_out with
    | None -> [||]
    | Some path ->
        Array.mapi
          (fun r bus ->
            let oc = open_out (shard_trace r path) in
            Obs.Bus.add_sink bus (Obs.Jsonl.sink bus oc);
            oc)
          buses
  in
  let monitors =
    if monitor then
      Array.to_list
        (Array.map
           (fun bus ->
             Obs.Monitor.create
               ~lookup:(fun ~node ~dst ->
                 agents.(node).Routing.Agent.invariants (Node_id.of_int dst))
               bus)
           buses)
    else []
  in
  let psim =
    {
      p_shards = k;
      p_engines = engines;
      p_agents = agents;
      p_home = home;
      p_request_injection = request_injection;
    }
  in
  (match prepare with Some f -> f psim | None -> ());
  Pdes.run pdes ~until;
  (match trace_out with
  | None -> ()
  | Some path ->
      Array.iter close_out trace_ocs;
      let inputs = List.init k (fun r -> shard_trace r path) in
      Obs.Jsonl.merge_time_sorted ~inputs ~output:path;
      List.iter Sys.remove inputs);
  (match telemetry with
  | None -> ()
  | Some (c, _, _) ->
      (* Horizon sample (every shard has quiesced at [until]), matching
         the classic path's final one-shot. *)
      let s = Pdes.stats pdes in
      Obs.Telemetry.record c ~time:until
        ~domains:(Array.map Obs.Telemetry.domain_of_engine engines)
        ~pdes:
          {
            Obs.Telemetry.pg_windows = s.Pdes.windows;
            pg_utilization = Pdes.window_utilization pdes;
            pg_mirrors = s.Pdes.messages;
            pg_worker_minor = Pdes.live_worker_minor_words pdes;
          }
        ();
      Obs.Telemetry.close c);
  let merged = Metrics.merge_all (Array.to_list shard_metrics) in
  let total = ref 0. in
  Array.iter
    (fun (a : Routing.Agent.t) -> total := !total +. a.own_seqno ())
    agents;
  Metrics.set_mean_dest_seqno merged (!total /. float_of_int n);
  let sum f = Array.fold_left (fun acc m -> acc + f m) 0 mac_arr in
  let stats = Pdes.stats pdes in
  {
    metrics = merged;
    summary = Metrics.summary merged;
    events_processed =
      Array.fold_left (fun acc e -> acc + Engine.events_processed e) 0 engines;
    mac_queue_drops = sum Net.Mac.queue_drops;
    mac_unicast_failures = sum Net.Mac.unicast_failures;
    transmissions =
      Array.fold_left
        (fun acc ch -> acc + Net.Channel.transmissions ch)
        0 channels;
    invariant_violations =
      List.fold_left (fun acc m -> acc + Obs.Monitor.violations m) 0 monitors;
    pdes_windows = stats.Pdes.windows;
    pdes_messages = stats.Pdes.messages;
    pdes_worker_minor_words = Pdes.worker_minor_words pdes;
  }

let run_classic ?on_engine ?obs ?monitor ?trace_out ?pcap_out ?sample
    ?sample_out ?telemetry_out ?telemetry_prom ?telemetry_every ?prepare
    (sc : Scenario.t) =
  let sim = build ?on_engine ?obs sc in
  (* Let in-flight packets (and their latency) resolve briefly after the
     last origination. *)
  let drain = Time.sec 2. in
  let until = Time.add sc.duration drain in
  (* File sinks before the monitor, so a violation's ring dump and the
     trace file agree on what precedes the violation line. *)
  (match trace_out with Some path -> attach_trace sim path | None -> ());
  (match pcap_out with Some path -> attach_pcap sim path | None -> ());
  if monitor = Some true then ignore (attach_monitor sim);
  (match (telemetry_out, telemetry_prom) with
  | None, None -> ()
  | jsonl, prom ->
      let every =
        match telemetry_every with Some e -> e | None -> Time.sec 1.
      in
      attach_telemetry sim ?jsonl ?prom ~every ~until ());
  (match sample with
  | Some every ->
      let path = match sample_out with Some p -> p | None -> "samples.jsonl" in
      attach_sampler sim ~every ~until path
  | None -> ());
  (match prepare with Some f -> f sim | None -> ());
  Engine.run ~until sim.engine;
  finish sim;
  let metrics = sim.sim_metrics in
  let sum f = Array.fold_left (fun acc m -> acc + f m) 0 sim.macs in
  {
    metrics;
    summary = Metrics.summary metrics;
    events_processed = Engine.events_processed sim.engine;
    mac_queue_drops = sum Net.Mac.queue_drops;
    mac_unicast_failures = sum Net.Mac.unicast_failures;
    transmissions = Net.Channel.transmissions sim.channel;
    invariant_violations =
      (match sim.monitor with Some m -> Obs.Monitor.violations m | None -> 0);
    pdes_windows = 0;
    pdes_messages = 0;
    pdes_worker_minor_words = [||];
  }

let run ?on_engine ?obs ?monitor ?trace_out ?pcap_out ?sample ?sample_out
    ?telemetry_out ?telemetry_prom ?telemetry_every ?prepare ?prepare_pdes
    ?pdes_workers (sc : Scenario.t) =
  let shards = resolve_shards sc in
  if shards >= 2 then begin
    let reject what o =
      match o with
      | Some _ ->
          invalid_arg
            ("Runner.run: " ^ what ^ " is not supported with shards >= 2")
      | None -> ()
    in
    reject "on_engine" on_engine;
    reject "obs" obs;
    reject "pcap_out" pcap_out;
    reject "sample" sample;
    reject "prepare (use prepare_pdes)" prepare;
    run_pdes ?workers:pdes_workers ~monitor:(monitor = Some true) ?trace_out
      ?telemetry_out ?telemetry_prom ?telemetry_every ?prepare:prepare_pdes
      sc ~shards
  end
  else begin
    (match prepare_pdes with
    | Some _ ->
        invalid_arg
          "Runner.run: prepare_pdes requires shards >= 2 (use prepare)"
    | None -> ());
    run_classic ?on_engine ?obs ?monitor ?trace_out ?pcap_out ?sample
      ?sample_out ?telemetry_out ?telemetry_prom ?telemetry_every ?prepare
      sc
  end
