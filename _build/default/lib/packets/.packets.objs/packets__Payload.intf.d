lib/packets/payload.mli: Aodv_msg Data_msg Dsr_msg Format Ldr_msg Olsr_msg
